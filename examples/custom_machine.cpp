// Portability demo (§8): the conclusion argues the methodology transfers to
// new architectures "without significant retooling by an expert". This
// example runs the whole §4 pipeline on two machines the paper names as
// future targets — an AMD-Zen-like part (L3 shared at CCX granularity,
// finer than the memory controller) and an Intel Haswell-EP with
// cluster-on-die (asymmetric links with only four nodes) — plus a fully
// custom machine built from scratch with the Topology constructor.
//
// Run: ./build/examples/custom_machine
#include <cstdio>

#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/topology/machines.h"
#include "src/topology/topology.h"

namespace {

using namespace numaplace;

void Enumerate(const Topology& machine, int vcpus) {
  const bool asymmetric = InterconnectIsAsymmetric(machine);
  std::printf("\n%s — %d vCPUs, interconnect %s\n", machine.name().c_str(), vcpus,
              asymmetric ? "asymmetric (interconnect concern enabled)" : "symmetric");
  const ImportantPlacementSet set = GenerateImportantPlacements(machine, vcpus, asymmetric);
  std::printf("%zu important placements:\n", set.placements.size());
  for (const ImportantPlacement& p : set.placements) {
    std::printf("  %s\n", p.ToString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Porting the model to new machines (conclusion, §8) ==\n");

  // AMD-Zen-like: the CCX's shared victim L3 takes the pairwise-sharing
  // concern role; nothing else changes.
  Enumerate(AmdZenLike(), /*vcpus=*/16);

  // Haswell-EP cluster-on-die: asymmetric links with only four nodes, the
  // configuration the paper cites from Molka et al.
  Enumerate(HaswellClusterOnDie(), /*vcpus=*/12);

  // A custom machine from scratch: a hypothetical 6-node part with a ring
  // interconnect (each node linked to its two neighbours).
  std::vector<Link> ring;
  for (int n = 0; n < 6; ++n) {
    ring.push_back({n, (n + 1) % 6, n % 2 == 0 ? 16.0 : 12.0});
  }
  PerfParams perf;
  perf.l3_size_mb = 24.0;
  perf.dram_gbps_per_node = 20.0;
  const Topology custom("custom 6-node ring machine", /*num_nodes=*/6,
                        /*cores_per_node=*/8, /*smt_per_core=*/2,
                        /*cores_per_l2_group=*/1, std::move(ring), perf);
  Enumerate(custom, /*vcpus=*/24);

  std::printf("\nNo per-machine model code was written for any of these: the\n");
  std::printf("concern specification plus the topology is the entire input,\n");
  std::printf("which is the paper's central portability claim.\n");
  return 0;
}
