// Quickstart: the full numaplace workflow in one file.
//
//  1. Describe the machine (or pick one from the catalog).
//  2. Generate the important placements for your container size (§4).
//  3. Train a performance model for the machine + vCPU count (§5).
//  4. Let the controller probe, predict and place a container (§1 step 4).
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "src/container/controller.h"
#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

int main() {
  using namespace numaplace;

  // --- Step 1: the machine. AmdOpteron6272() ships the paper's 8-node box;
  // build your own with the Topology constructor for other hardware.
  const Topology machine = AmdOpteron6272();
  std::printf("Machine: %s\n", machine.name().c_str());
  std::printf("Interconnect asymmetric: %s\n",
              InterconnectIsAsymmetric(machine) ? "yes (use the interconnect concern)"
                                                : "no");

  // --- Step 2: important placements for a 16-vCPU container.
  const int vcpus = 16;
  const ImportantPlacementSet placements =
      GenerateImportantPlacements(machine, vcpus, InterconnectIsAsymmetric(machine));
  std::printf("\n%zu important placements for %d vCPUs:\n", placements.placements.size(),
              vcpus);
  for (const ImportantPlacement& p : placements.placements) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // --- Step 3: train the model. On real hardware the measurements come from
  // running workloads in each placement; here the simulator substrate
  // provides them (see DESIGN.md for the substitution).
  PerformanceModel sim(machine, /*noise_sigma=*/0.015, /*noise_seed=*/1);
  ModelPipeline pipeline(placements, sim, /*baseline_id=*/1, /*seed=*/42);
  Rng rng(7);
  PerfModelConfig config;
  const TrainedPerfModel model =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(60, rng), config);
  std::printf("\nModel trained; automatic search picked probe placements #%d and #%d\n",
              model.input_a, model.input_b);

  // --- Step 4: place a container. The controller runs it briefly in the two
  // probe placements, predicts the full performance vector, picks the
  // fewest-nodes placement meeting the goal, and migrates.
  VirtualContainer container;
  container.workload = PaperWorkload("WTbtree");  // a WiredTiger B-tree store
  container.vcpus = vcpus;
  container.goal_fraction = 1.0;  // match the baseline placement's throughput

  PlacementController controller(placements, sim, model, /*baseline_id=*/1);
  const PlacementDecision decision = controller.Place(container);

  std::printf("\nPlacement decision for %s:\n", container.workload.name.c_str());
  for (const TimelineEvent& event : decision.timeline) {
    std::printf("  t=%6.1fs +%6.1fs  %s\n", event.start_seconds, event.duration_seconds,
                event.description.c_str());
  }
  const ImportantPlacement& chosen = placements.ById(decision.chosen_placement_id);
  std::printf("\nChosen: placement #%d — %d NUMA nodes (%s), leaving %d nodes free\n",
              chosen.id, chosen.l3_score, chosen.shares_l2 ? "shared L2" : "private L2",
              machine.num_nodes() - chosen.l3_score);
  std::printf("Predicted throughput %.0f ops/s, measured %.0f ops/s\n",
              decision.predicted_abs_throughput, decision.measured_abs_throughput);
  return 0;
}
