// Migration planner: "Using the container's memory footprint, the user can
// estimate whether the migration cost warrants an online deployment of the
// placement algorithm, or if it is preferable to use it offline for
// placement of recurring jobs." (§7)
//
// Given a container type and how long it will run, this example compares the
// cost of deciding its placement online (two probes + up to two migrations)
// against the steady-state gain the model predicts, and recommends
// online vs. offline placement plus the right migrator.
//
// Run: ./build/examples/migration_planner
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/important.h"
#include "src/migration/migration.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

int main() {
  using namespace numaplace;

  const Topology machine = AmdOpteron6272();
  const int vcpus = 16;
  const ImportantPlacementSet placements = GenerateImportantPlacements(machine, vcpus, true);
  PerformanceModel sim(machine, 0.01, 4);
  ModelPipeline pipeline(placements, sim, 1, 5);
  Rng rng(3);
  PerfModelConfig config;
  const TrainedPerfModel model =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(60, rng), config);

  const FastMigrator fast;
  const ThrottledMigrator throttled(0.05);
  const DefaultLinuxMigrator default_linux;

  std::printf("Migration planning on %s\n\n", machine.name().c_str());
  TablePrinter table({"container", "memory", "fast (s)", "throttled (s)",
                      "default (s)", "gain best vs baseline", "break-even runtime"});
  for (const char* name : {"WTbtree", "postgres-tpcc", "spark-pr-lj", "canneal",
                           "streamcluster"}) {
    const WorkloadProfile& w = PaperWorkload(name);

    // Predicted steady-state gain: best placement vs. the baseline.
    const double pa = pipeline.MeasureAbsolute(w, model.input_a, 0);
    const double pb = pipeline.MeasureAbsolute(w, model.input_b, 0);
    const std::vector<double> predicted = model.Predict(pa, pb);
    double best = 0.0;
    for (double v : predicted) {
      best = std::max(best, v);
    }
    const double gain = best - 1.0;  // relative to baseline

    // Online decision cost: two probes (2 s each) + two fast migrations.
    const double decision_cost = 2.0 * 2.0 + 2.0 * fast.Migrate(w).seconds;
    // Break-even: runtime after which the gain pays for the decision cost.
    const double break_even =
        gain > 0.005 ? decision_cost * (1.0 + gain) / gain : -1.0;

    table.AddRow({w.name, TablePrinter::Num(w.TotalMemoryGb(), 1) + " GB",
                  TablePrinter::Num(fast.Migrate(w).seconds, 1),
                  TablePrinter::Num(throttled.Migrate(w).seconds, 0),
                  TablePrinter::Num(default_linux.Migrate(w).seconds, 1),
                  TablePrinter::Num(100.0 * gain, 1) + "%",
                  break_even < 0.0 ? "offline only"
                                   : TablePrinter::Num(break_even, 0) + " s"});
  }
  table.Print(std::cout);

  std::printf("\nRules of thumb this table encodes:\n");
  std::printf("  * short-lived or placement-insensitive containers: place offline\n");
  std::printf("    using a previously learned decision for the container type;\n");
  std::printf("  * latency-sensitive services: use the throttled migrator (no\n");
  std::printf("    freeze, ~5%% overhead) and accept the longer migration;\n");
  std::printf("  * batch jobs with large gains: the online decision pays for\n");
  std::printf("    itself within minutes.\n");
  return 0;
}
