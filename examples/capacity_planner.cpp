// Capacity planner: the §7 datacenter scenario.
//
// An operator wants to pack as many instances of a given container type onto
// each machine as possible while respecting a performance target. This
// example compares the four policies across a fleet of container types and
// prints a consolidation report: machines needed for 100 instances of each
// type, and whether the target was honoured.
//
// Run: ./build/examples/capacity_planner
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/policy/policies.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

int main() {
  using namespace numaplace;
  constexpr int kFleetInstances = 100;  // instances of each type to host
  constexpr double kGoal = 1.0;         // must match baseline throughput

  const Topology machine = AmdOpteron6272();
  const int vcpus = 16;
  const ImportantPlacementSet placements = GenerateImportantPlacements(machine, vcpus, true);

  PerformanceModel solo(machine, 0.01, 2);
  MultiTenantModel multi(machine, 0.01, 2);
  PackingContext ctx;
  ctx.topo = &machine;
  ctx.ips = &placements;
  ctx.solo_sim = &solo;
  ctx.multi_sim = &multi;
  ctx.vcpus = vcpus;
  ctx.baseline_id = 1;

  ModelPipeline pipeline(placements, solo, 1, 31);
  Rng rng(13);
  PerfModelConfig config;
  const TrainedPerfModel model =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(60, rng), config);

  const ConservativePolicy conservative(ctx);
  const SmartAggressivePolicy smart(ctx);
  const MlPolicy ml(ctx, &model);
  const std::vector<const PackingPolicy*> policies = {&ml, &conservative, &smart};

  std::printf("Capacity plan: %d instances per container type, goal = %.0f%% of the\n",
              kFleetInstances, 100.0 * kGoal);
  std::printf("baseline placement, machine = %s\n\n", machine.name().c_str());

  TablePrinter report({"container", "policy", "inst/machine", "machines for 100",
                       "goal violation"});
  for (const char* type : {"WTbtree", "postgres-tpch", "spark-pr-lj", "kmeans"}) {
    for (const PackingPolicy* policy : policies) {
      Rng trial_rng(99);
      const PolicyResult r =
          policy->Evaluate(PaperWorkload(type), kGoal, trial_rng, /*trials=*/4);
      const int machines = (kFleetInstances + r.instances - 1) / r.instances;
      report.AddRow({type, r.policy, std::to_string(r.instances),
                     std::to_string(machines),
                     TablePrinter::Num(r.violation_pct, 1) + "%"});
    }
  }
  report.Print(std::cout);

  std::printf("\nReading the report: the ML policy packs like Smart-Aggressive when\n");
  std::printf("that is safe, and backs off to larger placements when the model\n");
  std::printf("predicts the target would be missed — so its violation column stays\n");
  std::printf("at zero while using far fewer machines than Conservative.\n");
  return 0;
}
