// Tests for the parallel fleet replay (src/cluster/parallel.h) and its
// deterministic merge stage (src/telemetry/ordered.h):
//
//   * OrderedObserverBuffer unit tests — filled slots drain in sequence
//     order, a reserved hole stalls the drain until its deferred work is
//     ready and then delivers in its own position, and the closing
//     invariants (CheckDrained, gap-free stats) hold.
//   * Serial / parallel equivalence — the same trace replayed serially and
//     through ParallelReplayEngine at --threads {2, 4, 8} produces the
//     byte-identical observer stream, telemetry artifacts (Chrome trace
//     spans, metrics dump, JSONL snapshots) and FleetReport, across
//     fail/drain/rejoin churn, a domain-scoped rack loss under spread
//     dispatch, and a tiered-admission flash crowd.
//   * Randomized stress — random trace shapes x thread counts: every
//     replay's observer sequence numbers drain gap-free and in order
//     (engine/buffer stats), deferred commits only ever land on the worker
//     owning the target machine's cell (NP_CHECKed inside the engine), and
//     the downstream callback stream matches the serial replay exactly.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/domains.h"
#include "src/cluster/fleet.h"
#include "src/cluster/parallel.h"
#include "src/model/pipeline.h"
#include "src/scheduler/scheduler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/metrics_observer.h"
#include "src/telemetry/ordered.h"
#include "src/telemetry/snapshots.h"
#include "src/telemetry/spans.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

// One trained AMD model shared by every test in the binary (training is the
// expensive part; the fleets themselves are cheap).
struct AmdAssets {
  Topology topo = AmdOpteron6272();
  ImportantPlacementSet ips = GenerateImportantPlacements(topo, 16, true);
  PerformanceModel sim{topo, 0.01, 3};
  TrainedPerfModel model;

  AmdAssets() {
    ModelPipeline pipeline(ips, sim, /*baseline_id=*/1, /*seed=*/23);
    PerfModelConfig config;
    config.forest.num_trees = 60;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    Rng rng(7);
    model = pipeline.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
  }
};

const AmdAssets& Assets() {
  static const AmdAssets* assets = new AmdAssets();
  return *assets;
}

FleetScheduler MakeFleet(int num_machines, FleetConfig config) {
  const AmdAssets& assets = Assets();
  MachineSpec spec(AmdOpteron6272());
  spec.scheduler.policy = "model";
  spec.scheduler.baseline_id = 1;
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines), spec);
  FleetScheduler fleet(std::move(specs), std::move(config));
  fleet.GroupRegistry(assets.topo.name()).Register(assets.topo.name(), 16, assets.model);
  fleet.ProvidePlacements(assets.topo.name(), assets.ips);
  return fleet;
}

// ---- OrderedObserverBuffer unit tests ---------------------------------

ObserverRecord DepartureRecord(int container_id) {
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kDeparture;
  record.machine_id = 0;
  record.container_id = container_id;
  record.now = static_cast<double>(container_id);
  return record;
}

TEST(OrderedBuffer, FilledSlotsDrainImmediatelyInSequenceOrder) {
  OutcomeRecorder downstream;
  OrderedObserverBuffer buffer(&downstream);
  EXPECT_EQ(buffer.Emit(DepartureRecord(10)), 0u);
  EXPECT_EQ(buffer.Emit(DepartureRecord(11)), 1u);
  EXPECT_EQ(buffer.Emit(DepartureRecord(12)), 2u);
  ASSERT_EQ(downstream.departures.size(), 3u);
  EXPECT_EQ(downstream.departures[0].second, 10);
  EXPECT_EQ(downstream.departures[2].second, 12);
  buffer.CheckDrained();
  EXPECT_EQ(buffer.stats().emitted, 3u);
  EXPECT_EQ(buffer.stats().drained, 3u);
  EXPECT_EQ(buffer.stats().reserved, 0u);
}

TEST(OrderedBuffer, HoleStallsLaterSlotsAndDeliversInItsOwnPosition) {
  OutcomeRecorder downstream;
  OrderedObserverBuffer buffer(&downstream);
  bool ready = false;
  buffer.Emit(DepartureRecord(1));
  // The hole's content — delivered straight downstream when the drain
  // passes it, exactly like the engine's direct-mode FinishDispatch.
  buffer.Reserve([&ready] { return ready; },
                 [&downstream] { downstream.OnDeparture(0, 2, 2.0); });
  buffer.Emit(DepartureRecord(3));
  buffer.Emit(DepartureRecord(4));
  // Slot 0 drained; everything behind the unready hole is stalled.
  ASSERT_EQ(downstream.departures.size(), 1u);
  EXPECT_EQ(downstream.departures[0].second, 1);
  EXPECT_EQ(buffer.stats().max_buffered, 3u);
  EXPECT_THROW(buffer.CheckDrained(), std::logic_error);

  ready = true;
  buffer.Drain();
  buffer.CheckDrained();
  ASSERT_EQ(downstream.departures.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(downstream.departures[static_cast<size_t>(i)].second, i + 1);
  }
  EXPECT_EQ(buffer.stats().drained, 4u);
  EXPECT_EQ(buffer.stats().emitted + buffer.stats().reserved, 4u);
}

TEST(OrderedBuffer, SequencingObserverDirectModeBypassesTheBuffer) {
  OutcomeRecorder downstream;
  OrderedObserverBuffer buffer(&downstream);
  SequencingObserver sequencer(&buffer, &downstream);
  bool ready = false;
  buffer.Reserve([&ready] { return ready; }, [] {});
  // Buffered mode: the callback parks behind the hole.
  sequencer.OnDeparture(0, 7, 1.0);
  EXPECT_TRUE(downstream.departures.empty());
  // Direct mode: the callback skips the (stalled) buffer entirely.
  sequencer.set_direct(true);
  sequencer.OnDeparture(0, 8, 1.0);
  sequencer.set_direct(false);
  ASSERT_EQ(downstream.departures.size(), 1u);
  EXPECT_EQ(downstream.departures[0].second, 8);
  ready = true;
  buffer.Drain();
  buffer.CheckDrained();
  ASSERT_EQ(downstream.departures.size(), 2u);
  EXPECT_EQ(downstream.departures[1].second, 7);
}

// ---- Serial / parallel equivalence ------------------------------------

// Formats everything an OutcomeRecorder captured, field by field, so two
// replays can be compared as strings (a mismatch prints the full streams).
std::string DumpRecorder(const OutcomeRecorder& recorder) {
  std::ostringstream os;
  os.precision(17);
  for (const FleetOutcome& fo : recorder.outcomes) {
    const ScheduleOutcome& o = fo.outcome;
    os << "outcome m=" << fo.machine_id << " c=" << o.container_id
       << " admitted=" << o.admitted << " placement=" << o.placement_id
       << " predicted=" << o.predicted_abs_throughput
       << " goal=" << o.goal_abs_throughput << " meets=" << o.meets_goal
       << " cached=" << o.reused_cached_probes << " secs=" << o.decision_seconds
       << " timeline=" << o.timeline.size() << "\n";
  }
  for (const auto& [machine_id, container_id] : recorder.departures) {
    os << "departure m=" << machine_id << " c=" << container_id << "\n";
  }
  for (const RebalanceMove& move : recorder.moves) {
    os << "move c=" << move.container_id << " " << move.from_machine << "->"
       << move.to_machine << " queued=" << move.was_queued
       << " reason=" << ToString(move.reason) << " gain=" << move.predicted_gain_ops
       << " cost=" << move.modeled_cost_ops << " move_s=" << move.move_seconds
       << " net_s=" << move.network_seconds << "\n";
  }
  for (const EvacuationReport& e : recorder.evacuations) {
    os << "evacuation m=" << e.machine_id << " reason=" << ToString(e.reason)
       << " at=" << e.start_seconds << " containers=" << e.containers
       << " rehomed=" << e.rehomed << " requeued=" << e.requeued
       << " landing=" << e.last_landing_seconds << " move_s=" << e.move_seconds_total
       << "\n";
  }
  for (const auto& [machine_id, availability] : recorder.availability_changes) {
    os << "availability m=" << machine_id << " " << ToString(availability) << "\n";
  }
  for (const AdmissionDecisionRecord& d : recorder.admission_decisions) {
    os << "admission c=" << d.container_id << " vcpus=" << d.vcpus
       << " tier=" << ToString(d.tier) << " decision=" << ToString(d.decision) << "\n";
  }
  return os.str();
}

// Deterministic text dump of a metrics registry (sorted instrument names,
// exact counts; percentiles are deterministic functions of exact state).
std::string DumpMetrics(const MetricsRegistry& registry) {
  std::ostringstream os;
  os.precision(17);
  for (const std::string& name : registry.CounterNames()) {
    os << "counter " << name << " " << registry.FindCounter(name)->value() << "\n";
  }
  for (const std::string& name : registry.GaugeNames()) {
    os << "gauge " << name << " " << registry.FindGauge(name)->value() << "\n";
  }
  for (const std::string& name : registry.HistogramNames()) {
    if (name == "fleet.search_seconds") {
      // Host wall time — the one documented non-deterministic instrument
      // (docs/OBSERVABILITY.md); deterministic artifacts always skip it.
      continue;
    }
    const Histogram* h = registry.FindHistogram(name);
    os << "histogram " << name << " n=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " max=" << h->max() << " p50=" << h->Percentile(50.0)
       << " p99=" << h->Percentile(99.0) << "\n";
  }
  return os.str();
}

// Everything one replay produced: the downstream callback stream, the three
// telemetry artifacts, and the evaluation report.
struct ReplayArtifacts {
  std::string callbacks;  // DumpRecorder of the downstream observer
  std::string spans;      // Chrome trace-event JSON (--trace-out)
  std::string metrics;    // deterministic metrics dump
  std::string snapshots;  // JSONL time-series (--metrics-out)
  FleetReport report;
};

// Replays `trace` on a fresh fleet with the full telemetry chain attached
// (recorder <- metrics <- spans, snapshots sampling every 300 sim seconds),
// serially when threads == 1 and through ParallelReplayEngine otherwise.
ReplayArtifacts RunReplay(const FleetConfig& config, int num_machines,
                          const EventStream& trace, int threads) {
  FleetScheduler fleet = MakeFleet(num_machines, config);
  OutcomeRecorder recorder;
  MetricsRegistry registry;
  MetricsObserver metrics(&registry, &recorder, fleet.NumMachines());
  SpanCollector spans(&metrics);
  std::ostringstream snapshot_stream;
  FleetSnapshotRecorder snapshots(fleet, 300.0, snapshot_stream);

  ReplayArtifacts artifacts;
  if (threads == 1) {
    artifacts.report = fleet.ReplayWithEvaluation(trace, &spans, &snapshots);
  } else {
    ParallelReplayEngine engine(&fleet, ParallelReplayConfig{threads});
    artifacts.report = engine.ReplayWithEvaluation(trace, &spans, &snapshots);
    // The merge stage's closing property: every sequence number assigned
    // during the replay drained, in order, with none lost to the reorder.
    EXPECT_EQ(engine.stats().sequences_drained, engine.stats().sequences_assigned);
  }
  spans.Finish(trace.EndTime());
  std::ostringstream span_stream;
  spans.WriteChromeTrace(span_stream);
  artifacts.callbacks = DumpRecorder(recorder);
  artifacts.spans = span_stream.str();
  artifacts.metrics = DumpMetrics(registry);
  artifacts.snapshots = snapshot_stream.str();
  return artifacts;
}

void ExpectReportsEqual(const FleetReport& serial, const FleetReport& parallel) {
  // Every field but host wall time must match bit for bit.
  EXPECT_EQ(serial.goal_attainment, parallel.goal_attainment);
  EXPECT_EQ(serial.container_seconds_at_goal, parallel.container_seconds_at_goal);
  EXPECT_EQ(serial.mean_utilization, parallel.mean_utilization);
  EXPECT_EQ(serial.utilization_min, parallel.utilization_min);
  EXPECT_EQ(serial.utilization_max, parallel.utilization_max);
  EXPECT_EQ(serial.mean_queue_wait_seconds, parallel.mean_queue_wait_seconds);
  EXPECT_EQ(serial.decisions, parallel.decisions);
  EXPECT_EQ(serial.machine_utilizations, parallel.machine_utilizations);
  EXPECT_EQ(serial.tier_goal_attainment, parallel.tier_goal_attainment);
  EXPECT_EQ(serial.tier_container_seconds, parallel.tier_container_seconds);
}

void ExpectEquivalentAcrossThreadCounts(const FleetConfig& config, int num_machines,
                                        const EventStream& trace) {
  const ReplayArtifacts serial = RunReplay(config, num_machines, trace, 1);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ReplayArtifacts parallel = RunReplay(config, num_machines, trace, threads);
    EXPECT_EQ(serial.callbacks, parallel.callbacks);
    EXPECT_EQ(serial.spans, parallel.spans);
    EXPECT_EQ(serial.metrics, parallel.metrics);
    EXPECT_EQ(serial.snapshots, parallel.snapshots);
    ExpectReportsEqual(serial.report, parallel.report);
  }
}

TEST(ParallelEquivalence, FailDrainRejoinChurnMidTrace) {
  TraceConfig base;
  base.num_containers = 8;
  base.mean_interarrival_seconds = 90.0;
  base.mean_lifetime_seconds = 900.0;
  Rng rng(17);
  EventStream trace = GenerateFleetTrace(base, /*num_streams=*/4, rng);
  trace = InjectMachineEvents(std::move(trace),
                              {FleetEvent::Fail(600.0, 1), FleetEvent::Drain(1200.0, 2),
                               FleetEvent::Rejoin(2400.0, 1),
                               FleetEvent::Rejoin(3600.0, 2)});
  FleetConfig config;
  config.dispatch = "best-predicted";
  ExpectEquivalentAcrossThreadCounts(config, /*num_machines=*/4, trace);
}

TEST(ParallelEquivalence, DomainScopedRackLossUnderSpreadDispatch) {
  TraceConfig base;
  base.num_containers = 8;
  base.mean_interarrival_seconds = 90.0;
  base.mean_lifetime_seconds = 1200.0;
  Rng rng(29);
  FleetConfig config;
  config.dispatch = "sharded";
  config.domain_racks = 3;
  config.domain_zones = 1;
  config.spread_weight = 0.5;
  // Expand the rack loss against the fleet's own domain topology, exactly
  // as the CLI's --fail rack:0@1500 would.
  const FleetScheduler probe = MakeFleet(6, config);
  EventStream trace = GenerateFleetTrace(base, /*num_streams=*/6, rng);
  trace = InjectMachineEvents(
      std::move(trace),
      {FleetEvent::FailDomain(1500.0, DomainScope::kRack, 0),
       FleetEvent::RejoinDomain(3000.0, DomainScope::kRack, 0)},
      probe.domains());
  ExpectEquivalentAcrossThreadCounts(config, /*num_machines=*/6, trace);
}

TEST(ParallelEquivalence, TieredAdmissionFlashCrowd) {
  FlashCrowdConfig flash;
  flash.base.num_containers = 8;
  flash.base.mean_interarrival_seconds = 120.0;
  flash.base.mean_lifetime_seconds = 900.0;
  flash.bursts = 1;
  flash.burst_containers = 10;
  Rng rng(41);
  const EventStream trace = GenerateFlashCrowdTrace(flash, /*num_streams=*/4, rng);
  FleetConfig config;
  config.admission = "tiered";
  ExpectEquivalentAcrossThreadCounts(config, /*num_machines=*/4, trace);
}

// ---- Randomized stress ------------------------------------------------

TEST(ParallelStress, RandomTracesDrainGapFreeAndMatchSerial) {
  uint64_t total_deferred = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 1000 + 7);
    // Random trace shape: fleet size, stream density, lifetimes and churn
    // all vary with the seed; the comparison is always against the serial
    // replay of the identical trace.
    const int num_machines = 3 + static_cast<int>(rng.NextBelow(5));  // 3..7
    TraceConfig base;
    base.num_containers = 5 + static_cast<int>(rng.NextBelow(8));
    base.mean_interarrival_seconds = 60.0 + 60.0 * rng.NextDouble();
    base.mean_lifetime_seconds = 400.0 + 800.0 * rng.NextDouble();
    EventStream trace = GenerateFleetTrace(base, num_machines, rng);
    if (num_machines > 3) {
      const int victim = 1 + static_cast<int>(rng.NextBelow(
                                 static_cast<uint64_t>(num_machines - 1)));
      const double at = 300.0 + 600.0 * rng.NextDouble();
      trace = InjectMachineEvents(
          std::move(trace),
          {FleetEvent::Fail(at, victim), FleetEvent::Rejoin(at + 1500.0, victim)});
    }
    FleetConfig config;
    config.dispatch = (seed % 2 == 0) ? "sharded" : "least-loaded";

    const ReplayArtifacts serial = RunReplay(config, num_machines, trace, 1);
    const int threads = 2 + static_cast<int>(seed % 7);  // 2..8
    SCOPED_TRACE("threads=" + std::to_string(threads));

    FleetScheduler fleet = MakeFleet(num_machines, config);
    OutcomeRecorder recorder;
    MetricsRegistry registry;
    MetricsObserver metrics(&registry, &recorder, fleet.NumMachines());
    SpanCollector spans(&metrics);
    std::ostringstream snapshot_stream;
    FleetSnapshotRecorder snapshots(fleet, 300.0, snapshot_stream);
    ParallelReplayEngine engine(&fleet, ParallelReplayConfig{threads});
    const FleetReport report = engine.ReplayWithEvaluation(trace, &spans, &snapshots);
    spans.Finish(trace.EndTime());

    // Gap-free, strictly ordered sequence numbers: everything assigned
    // drained (the buffer CHECKs strict front order internally), and the
    // engine routed every deferred commit through the cell-owning worker
    // (NP_CHECKed per ticket in EnqueueDispatchCommit).
    const ParallelReplayEngine::Stats& stats = engine.stats();
    EXPECT_EQ(stats.sequences_drained, stats.sequences_assigned);
    total_deferred += stats.deferred_commits;

    std::ostringstream span_stream;
    spans.WriteChromeTrace(span_stream);
    EXPECT_EQ(serial.callbacks, DumpRecorder(recorder));
    EXPECT_EQ(serial.spans, span_stream.str());
    EXPECT_EQ(serial.metrics, DumpMetrics(registry));
    EXPECT_EQ(serial.snapshots, snapshot_stream.str());
    ExpectReportsEqual(serial.report, report);
  }
  // The stress actually exercised the deferred-commit path (not just
  // batch work): at least one replay routed commits through workers.
  EXPECT_GT(total_deferred, 0u);
}

}  // namespace
}  // namespace numaplace
