// Robustness and edge-case coverage across modules: degenerate inputs,
// boundary sizes, determinism guarantees, and misuse handling that the
// per-module suites do not exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/important.h"
#include "src/ml/forest.h"
#include "src/ml/kmeans.h"
#include "src/ml/tree.h"
#include "src/policy/policies.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

// --- Enumeration edge cases ---

TEST(EnumerationEdge, SingleVcpuContainer) {
  // One vCPU: every score is 1; exactly one important placement per machine.
  const Topology intel = IntelXeonE74830v3();
  const ImportantPlacementSet set = GenerateImportantPlacements(intel, 1, false);
  ASSERT_EQ(set.placements.size(), 1u);
  EXPECT_EQ(set.placements[0].l3_score, 1);
  EXPECT_EQ(set.placements[0].l2_score, 1);
  const Placement p = Realize(set.placements[0], intel, 1);
  EXPECT_EQ(p.NumVcpus(), 1);
}

TEST(EnumerationEdge, WholeMachineContainer) {
  // vCPUs == hardware threads: only the full-machine placement is feasible.
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 64, true);
  for (const ImportantPlacement& p : set.placements) {
    EXPECT_EQ(p.NodeCount(), 8);
    EXPECT_EQ(p.l2_score, 32);  // every module carries 2 of the 64 vCPUs
  }
  const Placement p = Realize(set.placements[0], amd, 64);
  EXPECT_TRUE(p.IsOneVcpuPerHwThread());
  EXPECT_EQ(p.NumVcpus(), 64);
}

TEST(EnumerationEdge, PrimeVcpuCountsStillGetAPlacement) {
  // 7 vCPUs on Intel: 7 mod s == 0 only for s=1 (one node, 7 of 48 L2
  // groups... 7 mod l2s==0 only l2s in {1, 7}; capacity 2 -> l2s=7).
  const Topology intel = IntelXeonE74830v3();
  const ImportantPlacementSet set = GenerateImportantPlacements(intel, 7, false);
  ASSERT_FALSE(set.placements.empty());
  for (const ImportantPlacement& p : set.placements) {
    EXPECT_EQ(7 % p.l3_score, 0);
    EXPECT_EQ(7 % p.l2_score, 0);
  }
}

TEST(EnumerationEdge, DeterministicAcrossCalls) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet a = GenerateImportantPlacements(amd, 16, true);
  const ImportantPlacementSet b = GenerateImportantPlacements(amd, 16, true);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].id, b.placements[i].id);
    EXPECT_EQ(a.placements[i].nodes, b.placements[i].nodes);
    EXPECT_EQ(a.placements[i].l2_score, b.placements[i].l2_score);
  }
}

// --- Simulator degenerate placements ---

TEST(SimulatorEdge, SingleThreadPlacement) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile w = PaperWorkload("gcc");
  Placement solo{{0}};
  const PerfResult r = sim.Evaluate(w, solo);
  EXPECT_GT(r.throughput_ops, 0.0);
  EXPECT_DOUBLE_EQ(r.breakdown.mean_latency_ns, 0.0);  // no pairs
  EXPECT_DOUBLE_EQ(r.breakdown.comm_factor,
                   1.0 + w.comm_intensity * 0.0);  // latency 0 clamps to bonus cap
}

TEST(SimulatorEdge, OversubscribedHardwareThreadsSlowDown) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile w = PaperWorkload("swaptions");
  Placement spread{{0, 2, 4, 6}};   // four own cores
  Placement stacked{{0, 0, 2, 2}};  // two vCPUs per hardware thread
  EXPECT_GT(sim.Evaluate(w, spread).throughput_ops,
            1.5 * sim.Evaluate(w, stacked).throughput_ops);
}

TEST(SimulatorEdge, ZeroMemoryWorkloadIgnoresCaches) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  WorkloadProfile w = PaperWorkload("swaptions");
  w.mem_intensity = 0.0;
  w.comm_intensity = 0.0;
  const Placement two = Realize(
      GenerateImportantPlacements(amd, 16, true).placements.front(), amd, 16);
  const PerfResult r = sim.Evaluate(w, two);
  // cost == 1, pipeline is the only factor.
  EXPECT_NEAR(r.throughput_ops,
              amd.perf().base_ops_per_thread * 16.0 * r.breakdown.pipeline_factor,
              1.0);
}

// --- ML edge cases ---

TEST(MlEdge, TreeWithSingleSample) {
  Dataset d;
  d.features = {{1.0}};
  d.targets = {{5.0}};
  RegressionTree tree;
  Rng rng(1);
  tree.Fit(d, TreeParams{}, rng);
  EXPECT_DOUBLE_EQ(tree.Predict(std::vector<double>{42.0})[0], 5.0);
}

TEST(MlEdge, ForestSingleTreeSingleRow) {
  Dataset d;
  d.features = {{1.0}, {2.0}};
  d.targets = {{1.0}, {3.0}};
  RandomForest forest;
  ForestParams params;
  params.num_trees = 1;
  params.seed = 1;
  forest.Fit(d, params);
  const std::vector<double> p = forest.Predict(std::vector<double>{1.5});
  EXPECT_GE(p[0], 1.0);
  EXPECT_LE(p[0], 3.0);
}

TEST(MlEdge, KMeansSinglePointPerCluster) {
  std::vector<std::vector<double>> points = {{0.0}, {100.0}};
  Rng rng(2);
  const KMeansResult r = KMeans(points, 2, rng);
  EXPECT_NE(r.assignments[0], r.assignments[1]);
}

TEST(MlEdge, KMeansIdenticalPointsDoNotCrash) {
  std::vector<std::vector<double>> points(10, std::vector<double>{3.0, 3.0});
  Rng rng(3);
  const KMeansResult r = KMeans(points, 3, rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(MlEdge, ForestRejectsWrongQueryWidth) {
  Dataset d;
  d.features = {{1.0, 2.0}, {3.0, 4.0}};
  d.targets = {{1.0}, {2.0}};
  RandomForest forest;
  ForestParams params;
  params.num_trees = 2;
  forest.Fit(d, params);
  EXPECT_THROW(forest.Predict(std::vector<double>{1.0}), std::logic_error);
}

// --- Policy edge cases ---

TEST(PolicyEdge, SmartAggressiveOnZenUsesWholeNodes) {
  const Topology zen = AmdZenLike();
  const ImportantPlacementSet ips = GenerateImportantPlacements(zen, 16, false);
  PerformanceModel solo(zen);
  MultiTenantModel multi(zen);
  PackingContext ctx;
  ctx.topo = &zen;
  ctx.ips = &ips;
  ctx.solo_sim = &solo;
  ctx.multi_sim = &multi;
  ctx.vcpus = 16;
  ctx.baseline_id = 1;
  SmartAggressivePolicy policy(ctx);
  Rng rng(4);
  const PolicyResult r = policy.Evaluate(PaperWorkload("gcc"), 0.9, rng, 1);
  EXPECT_EQ(r.instances, 2);  // 32 cores / 16 vCPUs, min set = 2 nodes
}

TEST(PolicyEdge, BaselineThroughputMatchesDirectSimulation) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel solo(amd, 0.05, 9);  // noisy sim must not affect the goal
  MultiTenantModel multi(amd);
  PackingContext ctx;
  ctx.topo = &amd;
  ctx.ips = &ips;
  ctx.solo_sim = &solo;
  ctx.multi_sim = &multi;
  ctx.vcpus = 16;
  ctx.baseline_id = 1;
  PerformanceModel noiseless(amd);
  const WorkloadProfile w = PaperWorkload("wc");
  const double direct =
      noiseless.Evaluate(w, Realize(ips.ById(1), amd, 16)).throughput_ops;
  EXPECT_DOUBLE_EQ(BaselineThroughput(ctx, w), direct);
}

// --- Rng distribution sanity ---

TEST(RngEdge, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngEdge, LargeBoundUnbiasedAtTails) {
  Rng rng(6);
  const uint64_t bound = (1ULL << 63) + 12345;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

}  // namespace
}  // namespace numaplace
