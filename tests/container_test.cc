// Tests for the runtime placement controller (steps 1-4 of §1).
#include <gtest/gtest.h>

#include "src/container/controller.h"
#include "src/core/important.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        sim_(topo_, 0.01, 3),
        pipeline_(ips_, sim_, /*baseline_id=*/1, /*seed=*/23) {
    PerfModelConfig config;
    config.forest.num_trees = 60;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    Rng rng(7);
    model_ = pipeline_.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
  }

  VirtualContainer MakeContainer(const std::string& workload, double goal,
                                 bool latency_sensitive = false) const {
    VirtualContainer c;
    c.workload = PaperWorkload(workload);
    c.vcpus = 16;
    c.goal_fraction = goal;
    c.latency_sensitive = latency_sensitive;
    return c;
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel sim_;
  ModelPipeline pipeline_;
  TrainedPerfModel model_;
};

TEST_F(ControllerTest, ProducesACoherentTimeline) {
  PlacementController controller(ips_, sim_, model_, 1);
  const PlacementDecision d = controller.Place(MakeContainer("gcc", 1.0));
  ASSERT_GE(d.timeline.size(), 3u);  // two probes + final event at minimum
  double clock = 0.0;
  for (const TimelineEvent& e : d.timeline) {
    EXPECT_DOUBLE_EQ(e.start_seconds, clock);
    EXPECT_GE(e.duration_seconds, 0.0);
    clock += e.duration_seconds;
    EXPECT_FALSE(e.description.empty());
  }
  EXPECT_DOUBLE_EQ(d.total_decision_seconds, clock);
}

TEST_F(ControllerTest, ChoosesAValidImportantPlacement) {
  PlacementController controller(ips_, sim_, model_, 1);
  for (const char* name : {"gcc", "WTbtree", "streamcluster", "kmeans"}) {
    const PlacementDecision d = controller.Place(MakeContainer(name, 0.9));
    EXPECT_NO_THROW(ips_.ById(d.chosen_placement_id)) << name;
    EXPECT_EQ(d.predicted_relative.size(), ips_.placements.size()) << name;
    EXPECT_GT(d.measured_abs_throughput, 0.0) << name;
  }
}

TEST_F(ControllerTest, MeasuredThroughputTracksPrediction) {
  PlacementController controller(ips_, sim_, model_, 1);
  const PlacementDecision d = controller.Place(MakeContainer("wc", 1.0));
  EXPECT_NEAR(d.measured_abs_throughput / d.predicted_abs_throughput, 1.0, 0.25);
}

TEST_F(ControllerTest, EasierGoalsAllowFewerNodes) {
  PlacementController controller(ips_, sim_, model_, 1);
  const PlacementDecision easy = controller.Place(MakeContainer("streamcluster", 0.5));
  const PlacementDecision hard = controller.Place(MakeContainer("streamcluster", 1.1));
  const int easy_nodes = ips_.ById(easy.chosen_placement_id).l3_score;
  const int hard_nodes = ips_.ById(hard.chosen_placement_id).l3_score;
  EXPECT_LE(easy_nodes, hard_nodes);
}

TEST_F(ControllerTest, LatencySensitiveContainersMigrateSlowlyButUnfrozen) {
  PlacementController controller(ips_, sim_, model_, 1);
  const PlacementDecision fast = controller.Place(MakeContainer("WTbtree", 1.0, false));
  const PlacementDecision gentle = controller.Place(MakeContainer("WTbtree", 1.0, true));
  // Same decisions, but the throttled path spends longer migrating whenever
  // a migration happens at all.
  double fast_migration = 0.0;
  double gentle_migration = 0.0;
  for (const TimelineEvent& e : fast.timeline) {
    if (e.description.find("migrate") != std::string::npos) {
      fast_migration += e.duration_seconds;
    }
  }
  for (const TimelineEvent& e : gentle.timeline) {
    if (e.description.find("migrate") != std::string::npos) {
      gentle_migration += e.duration_seconds;
    }
  }
  if (fast_migration > 0.0) {
    EXPECT_GT(gentle_migration, fast_migration);
  }
}

TEST_F(ControllerTest, ProbeTimeIsAccounted) {
  PlacementController controller(ips_, sim_, model_, 1, /*probe_seconds=*/3.5);
  const PlacementDecision d = controller.Place(MakeContainer("swaptions", 1.0));
  double probe_time = 0.0;
  for (const TimelineEvent& e : d.timeline) {
    if (e.description.find("probe") != std::string::npos) {
      probe_time += e.duration_seconds;
    }
  }
  EXPECT_DOUBLE_EQ(probe_time, 7.0);  // two probes at 3.5 s
}

TEST_F(ControllerTest, RejectsMismatchedVcpuCount) {
  PlacementController controller(ips_, sim_, model_, 1);
  VirtualContainer c = MakeContainer("gcc", 1.0);
  c.vcpus = 8;
  EXPECT_THROW(controller.Place(c), std::logic_error);
}

}  // namespace
}  // namespace numaplace
