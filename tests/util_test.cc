#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "src/util/check.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace numaplace {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double d = rng.NextDouble(-3.0, 5.5);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.5);
  }
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.Mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.1);
}

TEST(Rng, ForkStreamsAreIndependentOfDrawOrder) {
  Rng parent1(99);
  Rng parent2(99);
  (void)parent2.NextU64();  // advance one parent
  Rng child1 = parent1.Fork(3);
  Rng child2 = parent2.Fork(3);
  EXPECT_EQ(child1.NextU64(), child2.NextU64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanVarianceBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
}

TEST(Stats, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

TEST(Stats, PercentileEmptySpanChecks) {
  const std::vector<double> empty;
  EXPECT_THROW(Percentile(empty, 50.0), std::logic_error);
}

TEST(Stats, PercentileOutOfRangeChecks) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(Percentile(v, -0.1), std::logic_error);
  EXPECT_THROW(Percentile(v, 100.1), std::logic_error);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> v = {7.5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 7.5);
}

TEST(Stats, PercentileUnsortedInputMatchesSorted) {
  const std::vector<double> unsorted = {9.0, 0.0, 5.0, 2.0, 7.0};
  const std::vector<double> sorted = {0.0, 2.0, 5.0, 7.0, 9.0};
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile(unsorted, p), Percentile(sorted, p)) << p;
  }
}

TEST(Stats, MaeAndMape) {
  const std::vector<double> actual = {1.0, 2.0};
  const std::vector<double> predicted = {1.1, 1.8};
  EXPECT_NEAR(MeanAbsoluteError(actual, predicted), 0.15, 1e-12);
  EXPECT_NEAR(MeanAbsolutePercentageError(actual, predicted), 10.0, 1e-9);
}

TEST(Stats, RSquaredPerfectAndBaseline) {
  const std::vector<double> actual = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(RSquared(actual, actual), 1.0);
  const std::vector<double> mean_pred = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(RSquared(actual, mean_pred), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v = {3.0, 7.0, 1.0, 9.0, 4.0};
  RunningStats rs;
  for (double x : v) {
    rs.Add(x);
  }
  EXPECT_DOUBLE_EQ(rs.Mean(), Mean(v));
  EXPECT_NEAR(rs.Variance(), Variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.Min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 9.0);
}

TEST(Stats, EuclideanDistance) {
  const std::vector<double> a = {0.0, 3.0};
  const std::vector<double> b = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(Check, ThrowsLogicErrorWithMessage) {
  EXPECT_THROW(NP_CHECK(1 == 2), std::logic_error);
  try {
    NP_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Table, AlignsColumnsAndCountsRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::Num(1.5)});
  table.AddRow({"b", "x"});
  EXPECT_EQ(table.RowCount(), 2u);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  TablePrinter table({"a", "b"});
  table.AddRow({"has,comma", "has\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsMisshapenRow) {
  TablePrinter table({"one"});
  EXPECT_THROW(table.AddRow({"a", "b"}), std::logic_error);
}

TEST(Json, EmitsObjectsArraysAndScalars) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Field("name", "bench");
  json.Field("count", 3);
  json.Field("ratio", 0.5);
  json.Field("ok", true);
  json.Key("values");
  json.BeginArray();
  json.Number(1.0);
  json.Int(int64_t{2});
  json.String("three");
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(os.str(),
            "{\"name\":\"bench\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"values\":[1,2,\"three\"]}");
}

TEST(Json, EscapesStringsPerRfc8259) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginArray();
  json.String("quote\" backslash\\ newline\n tab\t bell\x07");
  json.EndArray();
  EXPECT_EQ(os.str(), "[\"quote\\\" backslash\\\\ newline\\n tab\\t bell\\u0007\"]");
}

TEST(Json, NonFiniteDoublesBecomeNullNotInvalidTokens) {
  // Regression guard: "nan"/"inf" are not JSON — a consumer of BENCH_*.json
  // would reject the whole document. Non-finite doubles must emit null.
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Field("nan", std::numeric_limits<double>::quiet_NaN());
  json.Field("inf", std::numeric_limits<double>::infinity());
  json.Field("ninf", -std::numeric_limits<double>::infinity());
  json.Key("mixed");
  json.BeginArray();
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.Number(1.5);
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(os.str(),
            "{\"nan\":null,\"inf\":null,\"ninf\":null,\"mixed\":[null,1.5]}");
}

TEST(Json, MisuseIsRejected) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  // An object member needs Key() before its value...
  EXPECT_THROW(json.Number(1.0), std::logic_error);
  // ...and Key() is only valid directly inside an object.
  json.Key("list");
  json.BeginArray();
  EXPECT_THROW(json.Key("nested"), std::logic_error);
  // Closing the wrong container kind is misuse too.
  EXPECT_THROW(json.EndObject(), std::logic_error);
}

}  // namespace
}  // namespace numaplace
