// Unit and property tests for the core placement machinery: Algorithm 1
// (score generation), Algorithm 2 (packings), concerns, score vectors and
// placement realization.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/core/concern.h"
#include "src/core/enumerate.h"
#include "src/core/important.h"
#include "src/core/placement.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"

namespace numaplace {
namespace {

TEST(Algorithm1, AmdPaperScores) {
  const Topology amd = AmdOpteron6272();
  // L3: 16 vCPUs over nodes of capacity 8: s in {2,4,8} (s=1 infeasible).
  L3Concern l3;
  EXPECT_EQ(GenerateScores(16, l3, amd), (std::vector<int>{2, 4, 8}));
  // L2: capacity 2, count 32: s in {8, 16}.
  L2SmtConcern l2;
  EXPECT_EQ(GenerateScores(16, l2, amd), (std::vector<int>{8, 16}));
}

TEST(Algorithm1, IntelPaperScores) {
  const Topology intel = IntelXeonE74830v3();
  L3Concern l3;
  EXPECT_EQ(GenerateScores(24, l3, intel), (std::vector<int>{1, 2, 3, 4}));
  L2SmtConcern l2;
  EXPECT_EQ(GenerateScores(24, l2, intel), (std::vector<int>{12, 24}));
}

TEST(Algorithm1, BalanceAndFeasibilityProperties) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int vcpus = 1 + static_cast<int>(rng.NextBelow(64));
    const int count = 1 + static_cast<int>(rng.NextBelow(64));
    const int capacity = 1 + static_cast<int>(rng.NextBelow(16));
    const std::vector<int> scores = GenerateScores(vcpus, count, capacity);
    for (int s : scores) {
      EXPECT_EQ(vcpus % s, 0);
      EXPECT_LE(vcpus / s, capacity);
      EXPECT_GE(s, 1);
      EXPECT_LE(s, count);
    }
    // Completeness: any score not in the list violates a constraint.
    std::set<int> listed(scores.begin(), scores.end());
    for (int s = 1; s <= count; ++s) {
      if (!listed.count(s)) {
        EXPECT_TRUE(vcpus % s != 0 || vcpus / s > capacity);
      }
    }
  }
}

TEST(Algorithm2, PartitionCountsForEightNodes) {
  // Partitions of 8 nodes into parts of sizes {2,4,8}:
  //   [8]: 1, [4,4]: C(8,4)/2 = 35, [4,2,2]: C(8,4)*3 = 210, [2^4]: 105.
  const std::vector<Packing> packings = GeneratePackings({2, 4, 8}, 8);
  EXPECT_EQ(packings.size(), 1u + 35u + 210u + 105u);

  std::map<std::vector<int>, int> by_shape;
  for (const Packing& p : packings) {
    std::vector<int> shape;
    for (const NodeSet& part : p) {
      shape.push_back(static_cast<int>(part.size()));
    }
    std::sort(shape.begin(), shape.end());
    by_shape[shape]++;
  }
  EXPECT_EQ(by_shape[{8}], 1);
  EXPECT_EQ((by_shape[{4, 4}]), 35);
  EXPECT_EQ((by_shape[{2, 2, 4}]), 210);
  EXPECT_EQ((by_shape[{2, 2, 2, 2}]), 105);
}

TEST(Algorithm2, PackingsAreExactPartitions) {
  const std::vector<Packing> packings = GeneratePackings({1, 2, 4}, 4);
  for (const Packing& p : packings) {
    std::set<int> covered;
    size_t total = 0;
    for (const NodeSet& part : p) {
      EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
      covered.insert(part.begin(), part.end());
      total += part.size();
    }
    EXPECT_EQ(covered.size(), 4u);   // covers all nodes
    EXPECT_EQ(total, 4u);            // no overlaps
    EXPECT_EQ(*covered.begin(), 0);
    EXPECT_EQ(*covered.rbegin(), 3);
  }
}

TEST(Algorithm2, NoDuplicatePackings) {
  const std::vector<Packing> packings = GeneratePackings({2, 4}, 6);
  std::set<std::vector<NodeSet>> seen;
  for (Packing p : packings) {
    std::sort(p.begin(), p.end());
    EXPECT_TRUE(seen.insert(p).second) << "duplicate packing";
  }
}

TEST(Concerns, Table1Flags) {
  const Topology amd = AmdOpteron6272();
  const auto concerns = ConcernsFor(amd, true);
  ASSERT_EQ(concerns.size(), 3u);
  EXPECT_EQ(concerns[0]->name(), "L2/SMT");
  EXPECT_TRUE(concerns[0]->AffectsCost());
  EXPECT_TRUE(concerns[0]->InversePerfPossible());
  EXPECT_EQ(concerns[1]->name(), "L3");
  EXPECT_TRUE(concerns[1]->AffectsCost());
  EXPECT_TRUE(concerns[1]->InversePerfPossible());
  EXPECT_EQ(concerns[2]->name(), "Interconnect");
  EXPECT_FALSE(concerns[2]->AffectsCost());
  EXPECT_FALSE(concerns[2]->InversePerfPossible());

  const auto intel_concerns = ConcernsFor(IntelXeonE74830v3(), false);
  EXPECT_EQ(intel_concerns.size(), 2u);
}

TEST(Concerns, AsymmetryDetection) {
  EXPECT_TRUE(InterconnectIsAsymmetric(AmdOpteron6272()));
  EXPECT_FALSE(InterconnectIsAsymmetric(IntelXeonE74830v3()));
  EXPECT_TRUE(InterconnectIsAsymmetric(HaswellClusterOnDie()));
  EXPECT_FALSE(InterconnectIsAsymmetric(SymmetricMachine(4, 4, 1, 1, 5.0)));
}

TEST(Placement, ScoreVectorCountsDistinctResources) {
  const Topology amd = AmdOpteron6272();
  // Two vCPUs on one CMT module: 1 L2 group, 1 node, IC 0.
  Placement p1{{0, 1}};
  const ScoreVector s1 = ScoreOf(p1, amd);
  EXPECT_EQ(s1.l2_score, 1);
  EXPECT_EQ(s1.l3_score, 1);
  EXPECT_DOUBLE_EQ(s1.interconnect_gbps, 0.0);

  // Two vCPUs on separate modules of nodes 0 and 1: 2 L2 groups, 2 nodes,
  // IC = the 0-1 die link.
  Placement p2{{0, 8}};
  const ScoreVector s2 = ScoreOf(p2, amd);
  EXPECT_EQ(s2.l2_score, 2);
  EXPECT_EQ(s2.l3_score, 2);
  EXPECT_NEAR(s2.interconnect_gbps, 3.50, 1e-9);
}

TEST(Placement, ScoreVectorComparisonToleratesRoundingNoise) {
  const ScoreVector a = {4, 2, 2, 10.0};
  // Same class, interconnect perturbed by accumulation-order noise.
  const ScoreVector b = {4, 2, 2, 10.0 + 1e-9};
  EXPECT_TRUE(a == b);
  // A genuinely different bandwidth is still a different class.
  const ScoreVector c = {4, 2, 2, 10.5};
  EXPECT_FALSE(a == c);
  // Integer scores always compare exactly.
  const ScoreVector d = {4, 2, 3, 10.0};
  EXPECT_FALSE(a == d);
}

TEST(Placement, DetectsOversubscription) {
  Placement balanced{{0, 1, 2}};
  EXPECT_TRUE(balanced.IsOneVcpuPerHwThread());
  Placement doubled{{0, 0, 2}};
  EXPECT_FALSE(doubled.IsOneVcpuPerHwThread());
}

TEST(Placement, MeanPairwiseLatencyGrowsWithSpread) {
  const Topology amd = AmdOpteron6272();
  Placement one_node{{0, 1, 2, 3}};
  Placement two_nodes{{0, 1, 8, 9}};
  EXPECT_LT(one_node.MeanPairwiseLatencyNs(amd), two_nodes.MeanPairwiseLatencyNs(amd));
  Placement single{{0}};
  EXPECT_DOUBLE_EQ(single.MeanPairwiseLatencyNs(amd), 0.0);
}

TEST(Realize, FillsL2GroupsAccordingToSharing) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
  for (const auto& ip : set.placements) {
    const Placement p = Realize(ip, amd, 16);
    // Threads per L2 group must be exactly vcpus / l2_score.
    std::map<int, int> group_counts;
    for (int t : p.hw_threads) {
      group_counts[amd.L2GroupOf(t)]++;
    }
    EXPECT_EQ(group_counts.size(), static_cast<size_t>(ip.l2_score));
    for (const auto& [group, count] : group_counts) {
      EXPECT_EQ(count, 16 / ip.l2_score);
    }
    // Threads per node must be exactly vcpus / l3_score.
    std::map<int, int> node_counts;
    for (int t : p.hw_threads) {
      node_counts[amd.NodeOf(t)]++;
    }
    EXPECT_EQ(node_counts.size(), static_cast<size_t>(ip.l3_score));
    for (const auto& [node, count] : node_counts) {
      EXPECT_EQ(count, 16 / ip.l3_score);
    }
  }
}

TEST(Realize, WorksOnAlternativeNodeSets) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
  const auto two_node = set.WithL3Score(2);
  ASSERT_FALSE(two_node.empty());
  const NodeSet other = {6, 7};
  const Placement p = RealizeOnNodes(two_node[0], other, amd, 16);
  EXPECT_EQ(p.NodesUsed(amd), other);
}

TEST(Realize, RejectsMismatchedNodeCount) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
  const auto two_node = set.WithL3Score(2);
  ASSERT_FALSE(two_node.empty());
  EXPECT_THROW(RealizeOnNodes(two_node[0], {0, 1, 2}, amd, 16), std::logic_error);
}

// Property: on randomized symmetric machines, every important placement is
// balanced, feasible, and scores match realization.
TEST(ImportantPlacementsProperty, RandomSymmetricMachines) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int nodes = 2 << rng.NextBelow(3);              // 2, 4, 8
    const int cores = 2 * (1 + static_cast<int>(rng.NextBelow(6)));  // 2..12
    const int smt = 1 + static_cast<int>(rng.NextBelow(2));          // 1..2
    const int cores_per_l2 = (cores % 2 == 0 && rng.NextBelow(2) == 0) ? 2 : 1;
    const Topology topo = SymmetricMachine(nodes, cores, smt, cores_per_l2, 8.0);
    // Pick a vCPU count that has at least one feasible balanced score.
    const int vcpus = nodes * ((topo.NodeCapacity() >= 4) ? 4 : topo.NodeCapacity());
    if (vcpus > topo.NumHwThreads()) {
      continue;
    }
    const ImportantPlacementSet set = GenerateImportantPlacements(topo, vcpus, false);
    EXPECT_FALSE(set.placements.empty());
    for (const auto& ip : set.placements) {
      EXPECT_EQ(vcpus % ip.l3_score, 0);
      EXPECT_LE(vcpus / ip.l3_score, topo.NodeCapacity());
      EXPECT_EQ(vcpus % ip.l2_score, 0);
      EXPECT_LE(vcpus / ip.l2_score, topo.L2GroupCapacity());
      const Placement realized = Realize(ip, topo, vcpus);
      EXPECT_TRUE(realized.IsOneVcpuPerHwThread());
      const ScoreVector score = ScoreOf(realized, topo);
      EXPECT_EQ(score.l2_score, ip.l2_score);
      EXPECT_EQ(score.l3_score, ip.l3_score);
    }
    // Ids are 1..N and unique.
    std::set<int> ids;
    for (const auto& ip : set.placements) {
      ids.insert(ip.id);
    }
    EXPECT_EQ(ids.size(), set.placements.size());
    EXPECT_EQ(*ids.begin(), 1);
    EXPECT_EQ(*ids.rbegin(), static_cast<int>(set.placements.size()));
  }
}

TEST(ImportantPlacements, ParetoNeverRemovesUndominated) {
  // On the AMD machine, every Pareto-surviving packing must not be strictly
  // dominated by any other survivor with the same shape.
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
  auto key = [&](const Packing& p) {
    std::vector<std::pair<int, double>> k;
    for (const NodeSet& part : p) {
      k.emplace_back(static_cast<int>(part.size()), amd.AggregateBandwidth(part));
    }
    std::sort(k.begin(), k.end());
    return k;
  };
  for (const Packing& a : set.pareto_packings) {
    const auto ka = key(a);
    for (const Packing& b : set.pareto_packings) {
      if (&a == &b) {
        continue;
      }
      const auto kb = key(b);
      if (ka.size() != kb.size()) {
        continue;
      }
      bool same_shape = true;
      for (size_t i = 0; i < ka.size(); ++i) {
        same_shape &= ka[i].first == kb[i].first;
      }
      if (!same_shape) {
        continue;
      }
      bool dominated = true;
      bool strict = false;
      for (size_t i = 0; i < ka.size(); ++i) {
        if (ka[i].second > kb[i].second + 1e-9) {
          dominated = false;
        }
        if (ka[i].second < kb[i].second - 1e-9) {
          strict = true;
        }
      }
      EXPECT_FALSE(dominated && strict) << "survivor dominated by another survivor";
    }
  }
}

TEST(ImportantPlacements, RejectsOversizedContainer) {
  const Topology amd = AmdOpteron6272();
  EXPECT_THROW(GenerateImportantPlacements(amd, 65, true), std::logic_error);
  EXPECT_THROW(GenerateImportantPlacements(amd, 0, true), std::logic_error);
}

}  // namespace
}  // namespace numaplace
