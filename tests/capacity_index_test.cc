// Tests for the per-cell capacity index (src/cluster/capacity_index.h):
// the shared cell layout, the promising-cell ranking, and the central
// property that the incrementally maintained summaries equal a from-scratch
// recomputation after any sequence of fleet events — arrivals, departures,
// fail, drain and rejoin in randomized order. The fleets here run
// model-free machine policies (first-fit) so the index is exercised without
// paying for model training.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/capacity_index.h"
#include "src/cluster/fleet.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

MachineSpec FirstFitAmdSpec() {
  MachineSpec spec(AmdOpteron6272());
  spec.scheduler.policy = "first-fit";
  spec.scheduler.baseline_id = 1;
  return spec;
}

FleetScheduler MakeFirstFitFleet(int num_machines, FleetConfig config) {
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines), FirstFitAmdSpec());
  return FleetScheduler(std::move(specs), config);
}

ContainerRequest MakeRequest(int id, int vcpus) {
  ContainerRequest request;
  request.id = id;
  request.workload = PaperWorkload("gcc");
  request.workload.name += "#" + std::to_string(id);
  request.vcpus = vcpus;
  request.goal_fraction = 0.5;
  return request;
}

// The property oracle: every incrementally maintained cell summary equals
// the from-scratch recomputation over the live membership view.
void ExpectIndexMatchesScratch(const FleetScheduler& fleet, const std::string& where) {
  const CapacityIndex& index = fleet.capacity_index();
  const std::vector<CellCapacity> scratch = index.RecomputeFromScratch();
  ASSERT_EQ(static_cast<int>(scratch.size()), index.NumCells()) << where;
  for (int c = 0; c < index.NumCells(); ++c) {
    const CellCapacity& live = index.cell(c);
    EXPECT_EQ(live.up_machines, scratch[static_cast<size_t>(c)].up_machines)
        << where << " cell " << c;
    EXPECT_EQ(live.free_threads, scratch[static_cast<size_t>(c)].free_threads)
        << where << " cell " << c;
    EXPECT_EQ(live.min_free_threads, scratch[static_cast<size_t>(c)].min_free_threads)
        << where << " cell " << c;
    EXPECT_EQ(live.max_free_threads, scratch[static_cast<size_t>(c)].max_free_threads)
        << where << " cell " << c;
  }
}

TEST(CellLayout, ModuloInterleavesAndAutoPicksSqrtCells) {
  // 9 machines, auto: round(sqrt(9)) = 3 cells, machine m in cell m % 3.
  const CellLayout layout = MakeInterleavedCells(9, 0);
  ASSERT_EQ(layout.NumCells(), 3);
  ASSERT_EQ(layout.NumMachines(), 9);
  EXPECT_EQ(layout.cells[0], (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(layout.cells[1], (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(layout.cells[2], (std::vector<int>{2, 5, 8}));
  for (int m = 0; m < 9; ++m) {
    EXPECT_EQ(layout.cell_of[static_cast<size_t>(m)], m % 3);
  }
  // Every machine lands in exactly one cell.
  std::set<int> seen;
  for (const std::vector<int>& cell : layout.cells) {
    for (int m : cell) {
      EXPECT_TRUE(seen.insert(m).second) << m;
    }
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(CellLayout, CellCountClampsToMachineCount) {
  EXPECT_EQ(MakeInterleavedCells(3, 100).NumCells(), 3);
  EXPECT_EQ(MakeInterleavedCells(1, 0).NumCells(), 1);
  // 2 machines, auto: round(sqrt(2)) = 1 cell holding both.
  const CellLayout two = MakeInterleavedCells(2, 0);
  EXPECT_EQ(two.NumCells(), 1);
  EXPECT_EQ(two.cells[0], (std::vector<int>{0, 1}));
}

TEST(CapacityIndex, BindComputesInitialSummariesAndStartsDirty) {
  FleetConfig config;
  config.fleet_cells = 2;
  FleetScheduler fleet = MakeFirstFitFleet(4, config);
  const CapacityIndex& index = fleet.capacity_index();
  ASSERT_TRUE(index.bound());
  ASSERT_EQ(index.NumCells(), 2);
  // All machines up and empty: each cell holds 2 machines x 64 threads.
  const int threads = fleet.topology(0).NumHwThreads();
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(index.cell(c).up_machines, 2);
    EXPECT_EQ(index.cell(c).free_threads, 2 * threads);
    EXPECT_EQ(index.cell(c).min_free_threads, threads);
    EXPECT_EQ(index.cell(c).max_free_threads, threads);
  }
  EXPECT_TRUE(index.capacity_dirty());
  ExpectIndexMatchesScratch(fleet, "after bind");
}

TEST(CapacityIndex, SummariesTrackAdmissionsAndFailRejoinCycles) {
  FleetConfig config;
  config.fleet_cells = 2;  // cells {0, 2} and {1, 3}
  FleetScheduler fleet = MakeFirstFitFleet(4, config);
  const CapacityIndex& index = fleet.capacity_index();
  const int threads = fleet.topology(0).NumHwThreads();

  // Least-loaded dispatch lands the first container on machine 0 (all
  // equal, lowest id): cell 0 loses 16 free threads.
  fleet.Submit(MakeRequest(1, 16), 1.0);
  EXPECT_EQ(index.cell(0).free_threads, 2 * threads - 16);
  EXPECT_EQ(index.cell(0).min_free_threads, threads - 16);
  EXPECT_EQ(index.cell(0).max_free_threads, threads);
  ExpectIndexMatchesScratch(fleet, "after admission");

  // Fail machine 0: its free threads leave cell 0's up-aggregates and the
  // evacuated container restarts elsewhere; the cell keeps machine 2.
  fleet.Fail(0, 2.0);
  EXPECT_EQ(index.cell(0).up_machines, 1);
  ExpectIndexMatchesScratch(fleet, "after fail");

  // Rejoin restores the machine to the same cell, empty.
  fleet.Rejoin(0, 3.0);
  EXPECT_EQ(index.cell(0).up_machines, 2);
  EXPECT_EQ(index.cell(0).max_free_threads, threads);
  ExpectIndexMatchesScratch(fleet, "after rejoin");
  EXPECT_TRUE(index.capacity_dirty() || fleet.config().rebalance_on_departure);
}

TEST(CapacityIndex, PromisingCellsRanksByHeadroomAndHonorsLimit) {
  FleetConfig config;
  config.fleet_cells = 2;        // cells {0, 2} and {1, 3}
  config.dispatch = "round-robin";  // deterministic fill: m0, m1, m2, m3, ...
  config.rebalance_on_departure = false;
  FleetScheduler fleet = MakeFirstFitFleet(4, config);
  const CapacityIndex& index = fleet.capacity_index();
  const int threads = fleet.topology(0).NumHwThreads();

  // Round-robin five 16-vCPU containers: machines 0..3 hold one each, then
  // machine 0 a second — cell 0 (machines 0, 2) now has less headroom.
  for (int id = 1; id <= 5; ++id) {
    ASSERT_TRUE(fleet.Submit(MakeRequest(id, 16), id * 1.0).outcome.admitted);
  }
  EXPECT_EQ(index.cell(0).max_free_threads, threads - 16);
  EXPECT_EQ(index.cell(1).max_free_threads, threads - 16);
  EXPECT_EQ(index.cell(0).free_threads, 2 * threads - 48);
  EXPECT_EQ(index.cell(1).free_threads, 2 * threads - 32);

  // Equal max headroom: total free breaks the tie toward cell 1.
  const std::vector<int> ranked = index.PromisingCells(16, 0);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1);
  EXPECT_EQ(ranked[1], 0);
  // The limit keeps only the most promising cells.
  EXPECT_EQ(index.PromisingCells(16, 1), (std::vector<int>{1}));
  // No cell can hold a request wider than the best headroom.
  EXPECT_TRUE(index.PromisingCells(threads, 0).empty());
  ExpectIndexMatchesScratch(fleet, "after ranked fill");
}

// The tentpole property: replay a randomized mix of arrivals, departures,
// fails, drains and rejoins through the fleet API and re-derive every cell
// summary from scratch after each event. Any missed update point in the
// fleet (admit, depart, availability flip, rebalance move, evacuation)
// shows up as a divergence here.
TEST(CapacityIndex, IncrementalIndexEqualsScratchRecomputeUnderRandomEvents) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  config.rebalance_on_departure = true;
  FleetScheduler fleet = MakeFirstFitFleet(9, config);  // 3 cells of 3
  ASSERT_EQ(fleet.capacity_index().NumCells(), 3);

  Rng rng(2026);
  std::vector<int> live;  // submitted containers still in the system
  int next_id = 1;
  double now = 0.0;
  int departs = 0;
  int machine_events = 0;
  for (int step = 0; step < 220; ++step) {
    now += 1.0;
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 45 || live.empty()) {
      // Arrival; vary width so free-thread counts take many values.
      const int vcpus = (rng.NextBelow(2) == 0) ? 8 : 16;
      const int id = next_id++;
      fleet.Submit(MakeRequest(id, vcpus), now);
      live.push_back(id);
    } else if (roll < 75) {
      const size_t pick = static_cast<size_t>(rng.NextBelow(live.size()));
      const int id = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      fleet.Depart(id, now);
      ++departs;
    } else {
      const int m = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(fleet.NumMachines())));
      const MachineAvailability state = fleet.availability(m);
      if (state == MachineAvailability::kUp) {
        if (rng.NextBelow(2) == 0) {
          fleet.Fail(m, now);
        } else {
          fleet.Drain(m, now);
        }
      } else {
        fleet.Rejoin(m, now);
      }
      ++machine_events;
    }
    ExpectIndexMatchesScratch(fleet, "step " + std::to_string(step));
    if (HasFailure()) {
      return;  // one divergence is enough; don't drown the log
    }
  }
  // The sequence actually exercised every event family.
  EXPECT_GT(departs, 20);
  EXPECT_GT(machine_events, 20);
}

}  // namespace
}  // namespace numaplace
