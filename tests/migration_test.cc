// Migration model calibration against the paper's Table 2, plus structural
// properties (monotonicity, page-cache accounting, throttled trade-off).
#include <gtest/gtest.h>

#include <vector>

#include "src/migration/migration.h"
#include "src/workloads/profile.h"

namespace numaplace {
namespace {

struct Table2Row {
  const char* name;
  double fast_seconds;
  double default_seconds;
};

// The paper's Table 2 (AMD system). swaptions's default time is reported as
// "0.0" (below measurement resolution); it is checked separately.
const std::vector<Table2Row> kTable2 = {
    {"BLAST", 3.0, 5.9},         {"canneal", 0.3, 3.9},
    {"fluidanimate", 0.3, 2.3},  {"freqmine", 0.3, 4.2},
    {"gcc", 0.3, 2.8},           {"kmeans", 1.5, 6.5},
    {"pca", 2.8, 10.0},          {"postgres-tpch", 5.8, 117.1},
    {"postgres-tpcc", 14.9, 431.0}, {"spark-cc", 3.7, 139.9},
    {"spark-pr-lj", 3.8, 137.0}, {"streamcluster", 0.1, 0.4},
    {"ft.C", 1.3, 19.4},         {"dc.B", 5.4, 51.7},
    {"wc", 3.4, 19.5},           {"wr", 3.6, 18.9},
    {"WTbtree", 6.3, 43.8},
};

// Modeled times must land within 40% of the measured Table 2 values (the
// paper itself reports run-to-run variation; the point is the shape), except
// sub-second rows where a 0.15 s absolute tolerance applies.
void ExpectClose(double modeled, double measured, const char* what) {
  if (measured < 1.0) {
    EXPECT_NEAR(modeled, measured, 0.15) << what;
  } else {
    EXPECT_GT(modeled, measured * 0.60) << what;
    EXPECT_LT(modeled, measured * 1.40) << what;
  }
}

TEST(Migration, FastTimesReproduceTable2) {
  const FastMigrator fast;
  for (const Table2Row& row : kTable2) {
    const MigrationEstimate e = fast.Migrate(PaperWorkload(row.name));
    ExpectClose(e.seconds, row.fast_seconds, row.name);
  }
}

TEST(Migration, DefaultLinuxTimesReproduceTable2) {
  const DefaultLinuxMigrator def;
  for (const Table2Row& row : kTable2) {
    const MigrationEstimate e = def.Migrate(PaperWorkload(row.name));
    ExpectClose(e.seconds, row.default_seconds, row.name);
  }
}

TEST(Migration, FastBeatsDefaultForAllRealWorkloads) {
  const FastMigrator fast;
  const DefaultLinuxMigrator def;
  for (const Table2Row& row : kTable2) {
    const WorkloadProfile& w = PaperWorkload(row.name);
    EXPECT_LT(fast.Migrate(w).seconds, def.Migrate(w).seconds) << row.name;
  }
}

TEST(Migration, SparkSpeedupIsOrderOfMagnitude) {
  // "usually one order of magnitude faster than Default Linux (38x faster
  //  for Spark)".
  const FastMigrator fast;
  const DefaultLinuxMigrator def;
  const WorkloadProfile& spark = PaperWorkload("spark-cc");
  const double speedup = def.Migrate(spark).seconds / fast.Migrate(spark).seconds;
  EXPECT_GT(speedup, 20.0);
  EXPECT_LT(speedup, 60.0);
}

TEST(Migration, TpccIsThePathologicalDefaultCase) {
  // "Linux is especially inefficient for workloads with many processes such
  //  as TPC-C" — TPC-C must be the slowest default-Linux migration.
  const DefaultLinuxMigrator def;
  const double tpcc = def.Migrate(PaperWorkload("postgres-tpcc")).seconds;
  for (const Table2Row& row : kTable2) {
    if (std::string(row.name) != "postgres-tpcc") {
      EXPECT_GT(tpcc, def.Migrate(PaperWorkload(row.name)).seconds) << row.name;
    }
  }
}

TEST(Migration, PageCacheShareOfFastTimeMatchesPaper) {
  // 93% for BLAST, 75% for TPC-C, 62% for TPC-H (§7).
  const FastMigrator fast;
  const auto share = [&](const char* name) {
    const MigrationEstimate e = fast.Migrate(PaperWorkload(name));
    return e.page_cache_seconds / (e.seconds - 0.0);
  };
  EXPECT_NEAR(share("BLAST"), 0.93, 0.03);
  EXPECT_NEAR(share("postgres-tpcc"), 0.75, 0.03);
  EXPECT_NEAR(share("postgres-tpch"), 0.62, 0.03);
}

TEST(Migration, DefaultLinuxSkipsPageCache) {
  const DefaultLinuxMigrator def;
  const MigrationEstimate e = def.Migrate(PaperWorkload("BLAST"));
  EXPECT_FALSE(e.migrates_page_cache);
  EXPECT_DOUBLE_EQ(e.page_cache_seconds, 0.0);
}

TEST(Migration, ThrottledWiredTigerMatchesPaperScenario) {
  // "the overhead of migration for the WiredTiger workload is between 3%
  //  and 6%, and the migration takes 60 seconds."
  const ThrottledMigrator throttled(0.05);
  const MigrationEstimate e = throttled.Migrate(PaperWorkload("WTbtree"));
  EXPECT_GT(e.seconds, 45.0);
  EXPECT_LT(e.seconds, 75.0);
  EXPECT_GE(e.overhead_fraction, 0.03);
  EXPECT_LE(e.overhead_fraction, 0.06);
  EXPECT_FALSE(e.freezes_container);
  EXPECT_TRUE(e.migrates_page_cache);
}

TEST(Migration, ThrottledTradesTimeForOverhead) {
  const ThrottledMigrator gentle(0.03);
  const ThrottledMigrator eager(0.2);
  const WorkloadProfile& w = PaperWorkload("WTbtree");
  EXPECT_GT(gentle.Migrate(w).seconds, eager.Migrate(w).seconds);
  EXPECT_LT(gentle.Migrate(w).overhead_fraction, eager.Migrate(w).overhead_fraction);
}

TEST(Migration, TimeMonotoneInMemorySize) {
  const FastMigrator fast;
  const DefaultLinuxMigrator def;
  WorkloadProfile small = PaperWorkload("gcc");
  WorkloadProfile big = small;
  big.anon_gb *= 4.0;
  big.page_cache_gb *= 4.0;
  EXPECT_GT(fast.Migrate(big).seconds, fast.Migrate(small).seconds);
  EXPECT_GT(def.Migrate(big).seconds, def.Migrate(small).seconds);
}

TEST(Migration, MoreProcessesSlowDefaultLinuxOnly) {
  WorkloadProfile few = PaperWorkload("gcc");
  WorkloadProfile many = few;
  many.num_processes = 150;
  const DefaultLinuxMigrator def;
  EXPECT_GT(def.Migrate(many).seconds, 2.0 * def.Migrate(few).seconds);
  // The fast path keys on task count, not process count.
  const FastMigrator fast;
  EXPECT_NEAR(fast.Migrate(many).seconds, fast.Migrate(few).seconds, 1e-9);
}

TEST(Migration, ThpAndMappingsDriveDefaultRate) {
  WorkloadProfile base = PaperWorkload("canneal");
  const DefaultLinuxMigrator def;
  WorkloadProfile hugepages = base;
  hugepages.thp_fraction = 1.0;
  EXPECT_LT(def.Migrate(hugepages).seconds, def.Migrate(base).seconds);
  WorkloadProfile shared = base;
  shared.avg_page_mappings = 4.0;
  EXPECT_GT(def.Migrate(shared).seconds, def.Migrate(base).seconds);
}

TEST(Migration, SwaptionsIsNearInstant) {
  const FastMigrator fast;
  const DefaultLinuxMigrator def;
  EXPECT_LT(fast.Migrate(PaperWorkload("swaptions")).seconds, 0.2);
  EXPECT_LT(def.Migrate(PaperWorkload("swaptions")).seconds, 0.2);
}

}  // namespace
}  // namespace numaplace
