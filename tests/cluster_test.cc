// Tests for the fleet layer (src/cluster): dispatch policy registry and
// built-ins, probe sharing across machines of one topology group, and the
// cross-machine RebalancePass — including the invariant that no committed
// move's predicted gain is below its modeled migration + network cost.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/capacity_index.h"
#include "src/cluster/dispatch.h"
#include "src/cluster/fleet.h"
#include "src/util/json.h"
#include "src/model/pipeline.h"
#include "src/scheduler/scheduler.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

// One trained AMD model shared by every test in the binary (training is the
// expensive part; the fleets themselves are cheap).
struct AmdAssets {
  Topology topo = AmdOpteron6272();
  ImportantPlacementSet ips = GenerateImportantPlacements(topo, 16, true);
  PerformanceModel sim{topo, 0.01, 3};
  TrainedPerfModel model;

  AmdAssets() {
    ModelPipeline pipeline(ips, sim, /*baseline_id=*/1, /*seed=*/23);
    PerfModelConfig config;
    config.forest.num_trees = 60;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    Rng rng(7);
    model = pipeline.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
  }
};

const AmdAssets& Assets() {
  static const AmdAssets* assets = new AmdAssets();
  return *assets;
}

MachineSpec AmdSpec(const std::string& policy) {
  MachineSpec spec(AmdOpteron6272());
  spec.scheduler.policy = policy;
  spec.scheduler.baseline_id = 1;
  return spec;
}

FleetScheduler MakeAmdFleet(int num_machines, const std::string& machine_policy,
                            FleetConfig config) {
  const AmdAssets& assets = Assets();
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines),
                                 AmdSpec(machine_policy));
  FleetScheduler fleet(std::move(specs), config);
  fleet.GroupRegistry(assets.topo.name()).Register(assets.topo.name(), 16, assets.model);
  fleet.ProvidePlacements(assets.topo.name(), assets.ips);
  return fleet;
}

// As MakeAmdFleet, but with an explicitly configured sharded dispatcher
// through the injecting constructor.
FleetScheduler MakeShardedAmdFleet(int num_machines, const std::string& machine_policy,
                                   FleetConfig config,
                                   const ShardedDispatchConfig& sharded) {
  const AmdAssets& assets = Assets();
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines),
                                 AmdSpec(machine_policy));
  config.dispatch = "sharded";
  FleetScheduler fleet(std::move(specs), config,
                       std::make_unique<ShardedDispatchPolicy>(sharded));
  fleet.GroupRegistry(assets.topo.name()).Register(assets.topo.name(), 16, assets.model);
  fleet.ProvidePlacements(assets.topo.name(), assets.ips);
  return fleet;
}

const ShardedDispatchPolicy& ShardedOf(const FleetScheduler& fleet) {
  return dynamic_cast<const ShardedDispatchPolicy&>(fleet.dispatch());
}

ContainerRequest MakeRequest(int id, const std::string& workload, double goal) {
  ContainerRequest request;
  request.id = id;
  request.workload = PaperWorkload(workload);
  request.workload.name += "#" + std::to_string(id);
  request.vcpus = 16;
  request.goal_fraction = goal;
  return request;
}

int TotalProbeRuns(const FleetScheduler& fleet) {
  int total = 0;
  for (int m = 0; m < fleet.NumMachines(); ++m) {
    total += fleet.machine(m).stats().probe_runs;
  }
  return total;
}

TEST(DispatchRegistry, BuiltInsAreRegisteredAndMisuseThrows) {
  const std::vector<std::string> names = DispatchRegistry::Global().Names();
  for (const char* builtin : {"least-loaded", "round-robin", "best-predicted", "sharded"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end()) << builtin;
    EXPECT_TRUE(DispatchRegistry::Global().Has(builtin));
  }
  EXPECT_THROW(MakeDispatchPolicy("no-such-dispatch"), std::logic_error);
  EXPECT_THROW(DispatchRegistry::Global().Register(
                   "round-robin",
                   [] { return std::unique_ptr<DispatchPolicy>(new RoundRobinDispatch()); }),
               std::logic_error);
  EXPECT_FALSE(MakeDispatchPolicy("round-robin")->NeedsPreviews());
  EXPECT_TRUE(MakeDispatchPolicy("best-predicted")->NeedsPreviews());
  // The registry default: auto cell count, d=2, previewing inner ranking.
  EXPECT_TRUE(MakeDispatchPolicy("sharded")->NeedsPreviews());
}

TEST(DispatchRegistry, UnknownDispatchNameReportsTheCatalog) {
  // The error path a mistyped FleetConfig.dispatch hits: the exception names
  // the offender and lists every registered policy, so the message alone is
  // enough to fix the config.
  std::vector<MachineSpec> specs{AmdSpec("first-fit")};
  FleetConfig config;
  config.dispatch = "no-such-dispatch";
  try {
    FleetScheduler fleet(std::move(specs), config);
    FAIL() << "an unknown dispatch name must throw";
  } catch (const std::logic_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-dispatch"), std::string::npos) << message;
    for (const char* builtin :
         {"least-loaded", "round-robin", "best-predicted", "sharded"}) {
      EXPECT_NE(message.find(builtin), std::string::npos) << message;
    }
  }
}

TEST(ShardedDispatch, ConfigValidationAndAutoCellLayout) {
  ShardedDispatchConfig no_probes;
  no_probes.probes = 0;
  EXPECT_THROW(ShardedDispatchPolicy{no_probes}, std::logic_error);
  ShardedDispatchConfig nested;
  nested.inner = "sharded";
  EXPECT_THROW(ShardedDispatchPolicy{nested}, std::logic_error);
  ShardedDispatchConfig unknown_inner;
  unknown_inner.inner = "no-such-dispatch";
  EXPECT_THROW(ShardedDispatchPolicy{unknown_inner}, std::logic_error);

  // Auto layout: round(sqrt(4)) = 2 cells, machine ids interleaved.
  ShardedDispatchConfig auto_cells;
  auto_cells.inner = "least-loaded";
  FleetScheduler fleet = MakeShardedAmdFleet(4, "first-fit", {}, auto_cells);
  const ShardedDispatchPolicy& sharded = ShardedOf(fleet);
  EXPECT_FALSE(sharded.NeedsPreviews());  // inner least-loaded previews nothing
  EXPECT_EQ(sharded.NumCells(), 2);
  EXPECT_EQ(sharded.CellOf(0), 0);
  EXPECT_EQ(sharded.CellOf(1), 1);
  EXPECT_EQ(sharded.CellOf(2), 0);
  EXPECT_EQ(sharded.CellOf(3), 1);
}

TEST(ShardedDispatch, CellMembershipSurvivesFailRejoinCycle) {
  // 4 machines in 2 cells ({0,2} and {1,3}); d=2 samples both cells on
  // every decision, so only availability — never cell assignment — decides
  // who receives dispatches.
  ShardedDispatchConfig sharded_config;
  sharded_config.cells = 2;
  sharded_config.probes = 2;
  sharded_config.inner = "least-loaded";
  FleetScheduler fleet = MakeShardedAmdFleet(4, "first-fit", {}, sharded_config);
  const ShardedDispatchPolicy& sharded = ShardedOf(fleet);
  ASSERT_EQ(sharded.NumCells(), 2);
  const std::vector<int> cells_before = {sharded.CellOf(0), sharded.CellOf(1),
                                         sharded.CellOf(2), sharded.CellOf(3)};

  fleet.Fail(0, 1.0);
  // The failed machine keeps its cell (membership is static; availability is
  // read live from the fleet's view) but receives no dispatches.
  EXPECT_EQ(sharded.CellOf(0), cells_before[0]);
  for (int id = 1; id <= 6; ++id) {
    const FleetOutcome outcome = fleet.Submit(MakeRequest(id, "gcc", 0.5), 1.0 + id);
    ASSERT_TRUE(outcome.outcome.admitted) << "container " << id;
    EXPECT_NE(outcome.machine_id, 0) << "container " << id;
  }

  fleet.Rejoin(0, 10.0);
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(sharded.CellOf(m), cells_before[static_cast<size_t>(m)]) << m;
  }
  // The rejoined machine is the emptiest of its (always-sampled) cell: the
  // next dispatch lands on it again.
  const FleetOutcome back = fleet.Submit(MakeRequest(7, "gcc", 0.5), 11.0);
  EXPECT_EQ(back.machine_id, 0);
}

TEST(ShardedDispatch, PreselectLimitsPreviewsToSampledCells) {
  // 4 single-machine cells, d=2: a previewing inner dispatcher runs at most
  // 2 admission previews per decision instead of the flat walk's 4.
  ShardedDispatchConfig sharded_config;
  sharded_config.cells = 4;
  sharded_config.probes = 2;
  FleetConfig config;
  FleetScheduler fleet = MakeShardedAmdFleet(4, "model", config, sharded_config);
  const ShardedDispatchPolicy& sharded = ShardedOf(fleet);
  ASSERT_TRUE(sharded.NeedsPreviews());

  const FleetOutcome outcome = fleet.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(outcome.outcome.admitted);
  EXPECT_GT(fleet.stats().dispatch_previews, 0);
  EXPECT_LE(fleet.stats().dispatch_previews, 2);
  // Probes are still paid once per topology group, previews or not.
  EXPECT_EQ(fleet.stats().fleet_probe_runs, 2);

  // The decision stayed within the sampled cells.
  ASSERT_EQ(sharded.LastSampledCells().size(), 2u);
  const std::vector<int>& sampled = sharded.LastSampledCells();
  EXPECT_NE(std::find(sampled.begin(), sampled.end(),
                      sharded.CellOf(outcome.machine_id)),
            sampled.end());
}

TEST(ShardedDispatch, AllMachinesDownParksFleetWideAndRejoinLands) {
  ShardedDispatchConfig sharded_config;
  sharded_config.cells = 2;
  sharded_config.probes = 1;
  sharded_config.inner = "least-loaded";
  FleetScheduler fleet = MakeShardedAmdFleet(2, "first-fit", {}, sharded_config);
  fleet.Fail(0, 1.0);
  fleet.Fail(1, 2.0);

  // No eligible cell: the preselection punts to the fleet, which parks the
  // container fleet-wide exactly like the flat dispatchers.
  const FleetOutcome parked = fleet.Submit(MakeRequest(1, "gcc", 0.5), 3.0);
  EXPECT_FALSE(parked.outcome.admitted);
  EXPECT_EQ(parked.machine_id, kNoMachine);
  ASSERT_EQ(fleet.UnplacedIds().size(), 1u);

  // Rejoin re-dispatches the waiter through the sharded policy onto the
  // only up machine.
  fleet.Rejoin(1, 5.0);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  EXPECT_EQ(fleet.MachineOf(1), 1);
}

TEST(FleetDispatch, RoundRobinCyclesMachines) {
  FleetConfig config;
  config.dispatch = "round-robin";
  FleetScheduler fleet = MakeAmdFleet(3, "first-fit", config);
  for (int id = 1; id <= 6; ++id) {
    const FleetOutcome outcome = fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0);
    EXPECT_TRUE(outcome.outcome.admitted);
    EXPECT_EQ(outcome.machine_id, (id - 1) % 3) << "container " << id;
    EXPECT_EQ(fleet.MachineOf(id), (id - 1) % 3);
  }
  EXPECT_EQ(fleet.stats().dispatched_immediately, 6);
}

TEST(FleetDispatch, RoundRobinCycleSurvivesTooSmallMachineFiltering) {
  // Machine 0 (Zen, 32 threads) cannot fit a 48-vCPU container; the fleet
  // filters it from that decision's candidates. The cycle must keep running
  // over stable machine ids, not over the shrunken candidate list.
  std::vector<MachineSpec> specs;
  specs.emplace_back(AmdZenLike());
  specs.emplace_back(AmdOpteron6272());
  specs.emplace_back(AmdOpteron6272());
  for (MachineSpec& spec : specs) {
    spec.scheduler.policy = "first-fit";
  }
  FleetConfig config;
  config.dispatch = "round-robin";
  FleetScheduler fleet(specs, config);

  const auto request = [](int id, int vcpus) {
    ContainerRequest r = MakeRequest(id, "gcc", 0.5);
    r.vcpus = vcpus;
    return r;
  };
  EXPECT_EQ(fleet.Submit(request(1, 16), 0.0).machine_id, 0);
  // 48 vCPUs: machine 0 is filtered out; the cursor (at machine 1) is
  // unaffected by the filtering.
  EXPECT_EQ(fleet.Submit(request(2, 48), 1.0).machine_id, 1);
  EXPECT_EQ(fleet.Submit(request(3, 16), 2.0).machine_id, 2);
  EXPECT_EQ(fleet.Submit(request(4, 16), 3.0).machine_id, 0);  // wrapped
}

TEST(FleetDispatch, LeastLoadedPicksTheEmptierMachine) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "first-fit", config);
  // Ties break toward machine 0, then dispatch alternates with load.
  EXPECT_EQ(fleet.Submit(MakeRequest(1, "gcc", 0.5), 0.0).machine_id, 0);
  EXPECT_EQ(fleet.Submit(MakeRequest(2, "gcc", 0.5), 1.0).machine_id, 1);
  EXPECT_EQ(fleet.Submit(MakeRequest(3, "gcc", 0.5), 2.0).machine_id, 0);
  EXPECT_EQ(fleet.Submit(MakeRequest(4, "gcc", 0.5), 3.0).machine_id, 1);
}

TEST(FleetDispatch, BestPredictedPaysProbesOncePerTopologyGroup) {
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  const FleetOutcome outcome = fleet.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(outcome.outcome.admitted);

  // One probe pair total, run by the group's probe machine; the dispatched
  // machine admits from the shared cache.
  EXPECT_EQ(fleet.stats().fleet_probe_runs, 2);
  EXPECT_GT(fleet.stats().fleet_probe_seconds, 0.0);
  EXPECT_EQ(TotalProbeRuns(fleet), 2);
  EXPECT_EQ(fleet.machine(outcome.machine_id).stats().cached_probe_reuses, 1);
  EXPECT_EQ(fleet.GroupRegistry(Assets().topo.name()).NumCachedPredictions(), 1u);

  // A true departure forgets the prediction in every group registry.
  fleet.Depart(1, 5.0);
  EXPECT_EQ(fleet.GroupRegistry(Assets().topo.name()).NumCachedPredictions(), 0u);
  EXPECT_EQ(fleet.MachineOf(1), -1);
}

TEST(FleetDispatch, SameInstantSubmissionsOnTwinMachinesHitTheSharedProbeCache) {
  // Two same-topology machines previewing two arrivals in one instant all
  // read and write one shard-locked ModelRegistry prediction cache — the
  // sharing pattern the parallel replay runs from worker threads. Each
  // container pays its probe pair exactly once, fleet-wide; every preview
  // beyond the first is a cache hit.
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  const FleetOutcome first = fleet.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  const FleetOutcome second = fleet.Submit(MakeRequest(2, "canneal", 0.9), 0.0);
  ASSERT_TRUE(first.outcome.admitted);
  ASSERT_TRUE(second.outcome.admitted);

  // One probe pair per container (never per machine), and one cached
  // prediction per container in the shared group registry.
  EXPECT_EQ(fleet.stats().fleet_probe_runs, 4);
  EXPECT_EQ(TotalProbeRuns(fleet), 4);
  const ModelRegistry& registry = fleet.GroupRegistry(Assets().topo.name());
  EXPECT_EQ(registry.NumCachedPredictions(), 2u);
  EXPECT_NE(registry.FindPrediction(1), nullptr);
  EXPECT_NE(registry.FindPrediction(2), nullptr);
  // The second machine previews (and the winner admits) from the cache.
  int reuses = 0;
  for (int m = 0; m < fleet.NumMachines(); ++m) {
    reuses += fleet.machine(m).stats().cached_probe_reuses;
  }
  EXPECT_GE(reuses, 2);
}

TEST(FleetDispatch, BestPredictedPrefersTheMachineWithHigherMargin) {
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Crowd machine 0 (six of eight nodes) behind the fleet's back so only
  // cramped classes are realizable there.
  for (int id = 101; id <= 103; ++id) {
    ASSERT_TRUE(fleet.machine(0).Submit(MakeRequest(id, "gcc", 0.5), 0.0).admitted);
  }
  // A bandwidth-hungry container predicts a far better margin on the empty
  // machine 1 than on machine 0's two remaining nodes.
  const FleetOutcome outcome = fleet.Submit(MakeRequest(1, "streamcluster", 1.0), 1.0);
  ASSERT_TRUE(outcome.outcome.admitted);
  EXPECT_EQ(outcome.machine_id, 1);
  EXPECT_TRUE(outcome.outcome.reused_cached_probes);  // dispatch probe paid already
}

TEST(FleetRebalance, QueuedContainerMovesToTheMachineThatFreedCapacity) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Eight easy containers fill both machines (four 2-node placements each).
  for (int id = 1; id <= 8; ++id) {
    ASSERT_TRUE(fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0).outcome.admitted);
  }
  const FleetOutcome queued = fleet.Submit(MakeRequest(9, "gcc", 0.5), 10.0);
  EXPECT_FALSE(queued.outcome.admitted);
  EXPECT_EQ(fleet.stats().queued, 1);
  const int queue_machine = queued.machine_id;
  const int other_machine = 1 - queue_machine;

  // Depart a container on the *other* machine: its local re-placement pass
  // cannot see the queue, so the fleet RebalancePass must move the waiter.
  int victim = -1;
  for (int id = 1; id <= 8; ++id) {
    if (fleet.MachineOf(id) == other_machine) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  OutcomeRecorder recorder;
  fleet.Depart(victim, 20.0, &recorder);

  ASSERT_EQ(fleet.stats().rebalance_moves, 1);
  const RebalanceMove& move = fleet.rebalance_log().front();
  EXPECT_EQ(move.container_id, 9);
  EXPECT_TRUE(move.was_queued);
  EXPECT_EQ(move.reason, RebalanceMove::Reason::kRebalance);
  EXPECT_EQ(move.from_machine, queue_machine);
  EXPECT_EQ(move.to_machine, other_machine);
  EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops);
  // A queued container never ran: no memory exists, so the move is free.
  EXPECT_DOUBLE_EQ(move.move_seconds, 0.0);
  EXPECT_DOUBLE_EQ(move.modeled_cost_ops, 0.0);
  EXPECT_EQ(fleet.MachineOf(9), other_machine);
  EXPECT_EQ(fleet.stats().queue_admissions, 1);
  EXPECT_DOUBLE_EQ(fleet.stats().queue_wait_seconds, 10.0);
  // The move rides the probe cache — no fleet-wide re-probing.
  EXPECT_EQ(TotalProbeRuns(fleet), 18);  // nine probe pairs at submission, none since
  // The observer saw both the landing admission and the move itself.
  bool moved_reported = false;
  for (const FleetOutcome& outcome : recorder.outcomes) {
    if (outcome.outcome.container_id == 9) {
      moved_reported = outcome.outcome.admitted && outcome.machine_id == other_machine;
    }
  }
  EXPECT_TRUE(moved_reported);
  ASSERT_EQ(recorder.moves.size(), 1u);
  EXPECT_EQ(recorder.moves[0].container_id, 9);

  // The moved container departs cleanly from its new machine.
  fleet.Depart(9, 30.0);
  EXPECT_EQ(fleet.MachineOf(9), -1);
}

TEST(FleetRebalance, DegradedContainerMovesOnlyWhenGainBeatsModeledCost) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  config.rebalance_min_gain = 0.05;
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Least-loaded alternates: machine 0 gets {1,3,5,7}, machine 1 {2,4,6,8}.
  // Container 7 is a bandwidth-bound workload with an unreachable goal,
  // squeezed into machine 0's last two nodes — degraded.
  for (int id = 1; id <= 6; ++id) {
    ASSERT_TRUE(fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0).outcome.admitted);
  }
  const FleetOutcome crowded = fleet.Submit(MakeRequest(7, "streamcluster", 1.1), 7.0);
  ASSERT_TRUE(crowded.outcome.admitted);
  ASSERT_EQ(crowded.machine_id, 0);
  ASSERT_FALSE(crowded.outcome.meets_goal);
  const double crowded_predicted = crowded.outcome.predicted_abs_throughput;
  ASSERT_TRUE(fleet.Submit(MakeRequest(8, "gcc", 0.5), 8.0).outcome.admitted);

  // Two free nodes on machine 1 only fit the class it already has — the
  // gain gate holds the container in place.
  fleet.Depart(2, 10.0);
  EXPECT_EQ(fleet.stats().rebalance_moves, 0);
  EXPECT_EQ(fleet.MachineOf(7), 0);

  // Four free nodes make a strictly better class realizable over there; the
  // predicted gain now clears the migration + network cost.
  fleet.Depart(4, 20.0);
  ASSERT_EQ(fleet.stats().rebalance_moves, 1);
  const RebalanceMove& move = fleet.rebalance_log().front();
  EXPECT_EQ(move.container_id, 7);
  EXPECT_FALSE(move.was_queued);
  EXPECT_EQ(move.from_machine, 0);
  EXPECT_EQ(move.to_machine, 1);
  EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops);
  // A live incumbent pays the migration estimate plus the network copy.
  EXPECT_GT(move.network_seconds, 0.0);
  EXPECT_GT(move.move_seconds, move.network_seconds);
  EXPECT_GT(move.modeled_cost_ops, 0.0);
  EXPECT_EQ(fleet.MachineOf(7), 1);
  const ManagedContainer* moved = fleet.machine(1).Find(7);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state, ContainerState::kRunning);
  EXPECT_GT(moved->predicted_abs_throughput,
            crowded_predicted * (1.0 + config.rebalance_min_gain));
}

TEST(FleetRebalance, TraceReplayDrainsAndEveryMoveHasPositiveSurplus) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);

  TraceConfig trace_config;
  trace_config.num_containers = 6;
  trace_config.vcpus = 16;
  trace_config.goal_fraction = 1.0;
  trace_config.mean_interarrival_seconds = 90.0;
  trace_config.mean_lifetime_seconds = 360.0;
  Rng rng(13);
  const EventStream trace = GenerateFleetTrace(trace_config, 2, rng);
  ASSERT_EQ(trace.size(), 24u);

  const FleetReport report = fleet.ReplayWithEvaluation(trace);
  EXPECT_EQ(fleet.stats().submitted, 12);
  EXPECT_GT(report.decisions, 0);
  EXPECT_GT(report.goal_attainment, 0.0);
  EXPECT_LE(report.goal_attainment, 1.0);
  EXPECT_GE(report.utilization_max, report.utilization_min);

  // The §7-cost gate is an invariant of the pass, not a lucky trace: every
  // committed move carried a strictly positive modeled surplus.
  for (const RebalanceMove& move : fleet.rebalance_log()) {
    EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops)
        << "container " << move.container_id << " moved " << move.from_machine
        << " -> " << move.to_machine;
    EXPECT_GE(move.move_seconds, move.network_seconds);
  }

  // Every container departed: machines drain and all group caches empty.
  for (int m = 0; m < fleet.NumMachines(); ++m) {
    EXPECT_TRUE(fleet.machine(m).RunningIds().empty()) << "machine " << m;
    EXPECT_TRUE(fleet.machine(m).PendingIds().empty()) << "machine " << m;
    EXPECT_EQ(fleet.machine(m).occupancy().BusyThreadCount(), 0) << "machine " << m;
  }
  for (const std::string& group : fleet.GroupNames()) {
    EXPECT_EQ(fleet.GroupRegistry(group).NumCachedPredictions(), 0u) << group;
  }
  for (int id = 1; id <= 12; ++id) {
    EXPECT_EQ(fleet.MachineOf(id), -1) << "container " << id;
  }
}

TEST(FleetEvents, FailEvacuatesStateLostAndRejoinRestoresDispatch) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Least-loaded alternates: container 1 on machine 0, container 2 on 1.
  ASSERT_EQ(fleet.Submit(MakeRequest(1, "gcc", 0.5), 1.0).machine_id, 0);
  ASSERT_EQ(fleet.Submit(MakeRequest(2, "gcc", 0.5), 2.0).machine_id, 1);

  OutcomeRecorder recorder;
  fleet.Fail(0, 10.0, &recorder);

  EXPECT_EQ(fleet.availability(0), MachineAvailability::kFailed);
  EXPECT_EQ(fleet.availability(1), MachineAvailability::kUp);
  // Container 1 restarted on the survivor; the failed machine is empty.
  EXPECT_EQ(fleet.MachineOf(1), 1);
  EXPECT_TRUE(fleet.machine(0).RunningIds().empty());
  EXPECT_TRUE(fleet.machine(0).PendingIds().empty());
  EXPECT_EQ(fleet.machine(1).RunningIds().size(), 2u);

  // Fail = state lost: nothing to migrate or copy, the move itself is free,
  // and it still clears the gain-beats-cost gate.
  ASSERT_EQ(fleet.stats().evacuation_moves, 1);
  ASSERT_EQ(fleet.rebalance_log().size(), 1u);
  const RebalanceMove& move = fleet.rebalance_log().front();
  EXPECT_EQ(move.container_id, 1);
  EXPECT_EQ(move.reason, RebalanceMove::Reason::kFailover);
  EXPECT_FALSE(move.was_queued);
  EXPECT_DOUBLE_EQ(move.move_seconds, 0.0);
  EXPECT_DOUBLE_EQ(move.modeled_cost_ops, 0.0);
  EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops);

  ASSERT_EQ(fleet.evacuation_log().size(), 1u);
  const EvacuationReport& report = fleet.evacuation_log().front();
  EXPECT_EQ(report.machine_id, 0);
  EXPECT_EQ(report.reason, MachineAvailability::kFailed);
  EXPECT_EQ(report.containers, 1);
  EXPECT_EQ(report.rehomed, 1);
  EXPECT_EQ(report.requeued, 0);
  EXPECT_DOUBLE_EQ(report.last_landing_seconds, 0.0);

  // The observer saw the availability flip, the move and the evacuation.
  ASSERT_EQ(recorder.availability_changes.size(), 1u);
  EXPECT_EQ(recorder.availability_changes[0].first, 0);
  EXPECT_EQ(recorder.availability_changes[0].second, MachineAvailability::kFailed);
  EXPECT_EQ(recorder.moves.size(), 1u);
  EXPECT_EQ(recorder.evacuations.size(), 1u);

  // A failed machine receives no dispatches...
  EXPECT_EQ(fleet.Submit(MakeRequest(3, "gcc", 0.5), 11.0).machine_id, 1);
  // ...and failing it twice, or draining it, is API misuse.
  EXPECT_THROW(fleet.Fail(0, 12.0), std::logic_error);
  EXPECT_THROW(fleet.Drain(0, 12.0), std::logic_error);

  // Rejoin restores it to dispatch (least-loaded now prefers the empty box).
  fleet.Rejoin(0, 20.0);
  EXPECT_EQ(fleet.availability(0), MachineAvailability::kUp);
  EXPECT_THROW(fleet.Rejoin(0, 21.0), std::logic_error);
  EXPECT_EQ(fleet.Submit(MakeRequest(4, "gcc", 0.5), 22.0).machine_id, 0);
}

TEST(FleetEvents, DrainMovesLiveContainersUnderTheMigrationCostModel) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // postgres-tpch carries ~27 GB of memory: the graceful move must charge a
  // visible migration + network-copy cost.
  ASSERT_EQ(fleet.Submit(MakeRequest(1, "postgres-tpch", 0.5), 1.0).machine_id, 0);
  ASSERT_EQ(fleet.Submit(MakeRequest(2, "gcc", 0.5), 2.0).machine_id, 1);

  OutcomeRecorder recorder;
  fleet.Drain(0, 10.0, &recorder);

  EXPECT_EQ(fleet.availability(0), MachineAvailability::kDraining);
  EXPECT_EQ(fleet.MachineOf(1), 1);
  EXPECT_TRUE(fleet.machine(0).RunningIds().empty());

  ASSERT_EQ(fleet.rebalance_log().size(), 1u);
  const RebalanceMove& move = fleet.rebalance_log().front();
  EXPECT_EQ(move.reason, RebalanceMove::Reason::kDrain);
  EXPECT_FALSE(move.was_queued);
  // Graceful = the container is alive: §7 migration plus the network copy,
  // and the modeled cost is the rate lost while the move runs — yet the
  // gain (running at all on the survivor) still beats it.
  EXPECT_GT(move.network_seconds, 0.0);
  EXPECT_GT(move.move_seconds, move.network_seconds);
  EXPECT_GT(move.modeled_cost_ops, 0.0);
  EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops);

  ASSERT_EQ(fleet.evacuation_log().size(), 1u);
  const EvacuationReport& report = fleet.evacuation_log().front();
  EXPECT_EQ(report.reason, MachineAvailability::kDraining);
  EXPECT_EQ(report.rehomed, 1);
  EXPECT_DOUBLE_EQ(report.last_landing_seconds, move.move_seconds);
  EXPECT_DOUBLE_EQ(report.move_seconds_total, move.move_seconds);

  // Draining a draining machine is misuse; failing it is legal (a machine
  // can die mid-drain) and finds nothing left to evacuate.
  EXPECT_THROW(fleet.Drain(0, 11.0), std::logic_error);
  fleet.Fail(0, 12.0);
  EXPECT_EQ(fleet.availability(0), MachineAvailability::kFailed);
  ASSERT_EQ(fleet.evacuation_log().size(), 2u);
  EXPECT_EQ(fleet.evacuation_log().back().containers, 0);
}

TEST(FleetEvents, FullSurvivorRequeuesEvacueesAndDepartureLandsThem) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Eight easy containers fill both machines (four 2-node placements each).
  for (int id = 1; id <= 8; ++id) {
    ASSERT_TRUE(fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0).outcome.admitted);
  }

  fleet.Fail(0, 10.0);
  ASSERT_EQ(fleet.evacuation_log().size(), 1u);
  const EvacuationReport& report = fleet.evacuation_log().front();
  EXPECT_EQ(report.containers, 4);
  EXPECT_EQ(report.rehomed, 0);  // the survivor is full
  EXPECT_EQ(report.requeued, 4);
  EXPECT_EQ(fleet.stats().evacuation_requeues, 4);
  // The evacuees now wait in the survivor's queue, not fleet-wide.
  EXPECT_EQ(fleet.machine(1).PendingIds().size(), 4u);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  for (int id : {1, 3, 5, 7}) {
    EXPECT_EQ(fleet.MachineOf(id), 1) << "container " << id;
  }

  // A departure on the survivor admits one of them through its own
  // re-placement pass.
  fleet.Depart(2, 20.0);
  EXPECT_EQ(fleet.machine(1).PendingIds().size(), 3u);
  EXPECT_GE(fleet.stats().queue_admissions, 1);
}

TEST(FleetEvents, NoAvailableMachineParksArrivalsFleetWideUntilRejoin) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  fleet.Fail(0, 1.0);
  fleet.Fail(1, 2.0);

  OutcomeRecorder recorder;
  const FleetOutcome parked = fleet.Submit(MakeRequest(1, "gcc", 0.5), 3.0, &recorder);
  EXPECT_FALSE(parked.outcome.admitted);
  EXPECT_EQ(parked.machine_id, kNoMachine);
  EXPECT_EQ(fleet.MachineOf(1), kNoMachine);
  ASSERT_EQ(fleet.UnplacedIds().size(), 1u);
  EXPECT_EQ(fleet.UnplacedIds().front(), 1);
  ASSERT_EQ(recorder.outcomes.size(), 1u);
  EXPECT_EQ(recorder.outcomes[0].machine_id, kNoMachine);

  // Fleet-wide waiters can still depart cleanly.
  fleet.Submit(MakeRequest(2, "gcc", 0.5), 4.0);
  EXPECT_EQ(fleet.UnplacedIds().size(), 2u);
  fleet.Depart(1, 5.0);
  ASSERT_EQ(fleet.UnplacedIds().size(), 1u);
  EXPECT_EQ(fleet.UnplacedIds().front(), 2);

  // Rejoin drains the fleet-wide queue onto the returned capacity and the
  // wait is credited to the queue stats.
  fleet.Rejoin(0, 10.0, &recorder);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  EXPECT_EQ(fleet.MachineOf(2), 0);
  const ManagedContainer* landed = fleet.machine(0).Find(2);
  ASSERT_NE(landed, nullptr);
  EXPECT_EQ(landed->state, ContainerState::kRunning);
  EXPECT_EQ(fleet.stats().queue_admissions, 1);
  EXPECT_DOUBLE_EQ(fleet.stats().queue_wait_seconds, 6.0);  // waited 4.0 -> 10.0
}

TEST(FleetEvents, ReplayWithInjectedFailureKeepsInvariantsAndDrains) {
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);

  TraceConfig trace_config;
  trace_config.num_containers = 6;
  trace_config.vcpus = 16;
  trace_config.goal_fraction = 1.0;
  trace_config.mean_interarrival_seconds = 90.0;
  trace_config.mean_lifetime_seconds = 360.0;
  Rng rng(13);
  EventStream trace = GenerateFleetTrace(trace_config, 2, rng);
  // Machine 0 fails mid-trace and returns at the three-quarter mark.
  trace = InjectMachineEvents(std::move(trace),
                              {FleetEvent::Fail(0.5 * trace.EndTime(), 0),
                               FleetEvent::Rejoin(0.75 * trace.EndTime(), 0)});

  OutcomeRecorder recorder;
  const FleetReport report = fleet.ReplayWithEvaluation(trace, &recorder);
  EXPECT_EQ(fleet.stats().submitted, 12);
  EXPECT_EQ(fleet.stats().evacuations, 1);
  EXPECT_GT(report.decisions, 0);
  EXPECT_GT(report.goal_attainment, 0.0);
  EXPECT_LE(report.goal_attainment, 1.0);

  // The gain-beats-cost gate holds for every committed move — departure
  // rebalancing and evacuations alike.
  for (const RebalanceMove& move : fleet.rebalance_log()) {
    EXPECT_GT(move.predicted_gain_ops, move.modeled_cost_ops)
        << "container " << move.container_id << " moved " << move.from_machine
        << " -> " << move.to_machine << " (" << ToString(move.reason) << ")";
    EXPECT_GE(move.move_seconds, move.network_seconds);
  }
  // The observer saw exactly the logged moves and evacuation.
  EXPECT_EQ(recorder.moves.size(), fleet.rebalance_log().size());
  EXPECT_EQ(recorder.evacuations.size(), 1u);
  ASSERT_EQ(recorder.availability_changes.size(), 2u);
  EXPECT_EQ(recorder.availability_changes[0].second, MachineAvailability::kFailed);
  EXPECT_EQ(recorder.availability_changes[1].second, MachineAvailability::kUp);

  // Every container departed: machines drain, no fleet-wide waiters remain
  // and all group caches empty.
  for (int m = 0; m < fleet.NumMachines(); ++m) {
    EXPECT_TRUE(fleet.machine(m).RunningIds().empty()) << "machine " << m;
    EXPECT_TRUE(fleet.machine(m).PendingIds().empty()) << "machine " << m;
  }
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  for (const std::string& group : fleet.GroupNames()) {
    EXPECT_EQ(fleet.GroupRegistry(group).NumCachedPredictions(), 0u) << group;
  }
  for (int id = 1; id <= 12; ++id) {
    EXPECT_EQ(fleet.MachineOf(id), kNoMachine) << "container " << id;
  }
}

// Serializes everything deterministic a replay produced — stats, every
// committed move, every evacuation report, every observed outcome — the
// way the CLI's --json does, so "byte-identical output" is checkable with
// a string comparison. Wall-clock timings are the one thing deliberately
// absent: they differ run to run by construction.
std::string ReplayToJson(FleetScheduler& fleet, const EventStream& trace) {
  OutcomeRecorder recorder;
  fleet.Replay(trace, &recorder);
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  const FleetStats& stats = fleet.stats();
  json.Field("submitted", stats.submitted);
  json.Field("dispatched_immediately", stats.dispatched_immediately);
  json.Field("queued", stats.queued);
  json.Field("queue_admissions", stats.queue_admissions);
  json.Field("queue_wait_seconds", stats.queue_wait_seconds);
  json.Field("rebalance_moves", stats.rebalance_moves);
  json.Field("evacuations", stats.evacuations);
  json.Field("evacuation_moves", stats.evacuation_moves);
  json.Field("evacuation_requeues", stats.evacuation_requeues);
  json.Field("cross_machine_move_seconds", stats.cross_machine_move_seconds);
  json.Field("network_copy_seconds", stats.network_copy_seconds);
  json.Field("fleet_probe_runs", stats.fleet_probe_runs);
  json.Field("fleet_probe_seconds", stats.fleet_probe_seconds);
  json.Field("dispatch_previews", stats.dispatch_previews);
  json.Field("dispatch_decisions", stats.dispatch_decisions);
  json.Field("rebalance_previews", stats.rebalance_previews);
  json.Field("rebalance_decisions", stats.rebalance_decisions);
  json.Field("evac_previews", stats.evac_previews);
  json.Field("evac_decisions", stats.evac_decisions);
  json.Field("rebalance_passes", stats.rebalance_passes);
  json.Field("rebalance_passes_skipped", stats.rebalance_passes_skipped);
  json.Key("moves");
  json.BeginArray();
  for (const RebalanceMove& move : fleet.rebalance_log()) {
    json.BeginObject();
    json.Field("container", move.container_id);
    json.Field("from", move.from_machine);
    json.Field("to", move.to_machine);
    json.Field("was_queued", move.was_queued);
    json.Field("reason", ToString(move.reason));
    json.Field("gain_ops", move.predicted_gain_ops);
    json.Field("cost_ops", move.modeled_cost_ops);
    json.Field("move_seconds", move.move_seconds);
    json.Field("network_seconds", move.network_seconds);
    json.EndObject();
  }
  json.EndArray();
  json.Key("evacuations_log");
  json.BeginArray();
  for (const EvacuationReport& report : fleet.evacuation_log()) {
    json.BeginObject();
    json.Field("machine", report.machine_id);
    json.Field("reason", ToString(report.reason));
    json.Field("containers", report.containers);
    json.Field("rehomed", report.rehomed);
    json.Field("requeued", report.requeued);
    json.Field("last_landing_seconds", report.last_landing_seconds);
    json.Field("move_seconds_total", report.move_seconds_total);
    json.EndObject();
  }
  json.EndArray();
  json.Key("outcomes");
  json.BeginArray();
  for (const FleetOutcome& fo : recorder.outcomes) {
    json.BeginObject();
    json.Field("machine", fo.machine_id);
    json.Field("container", fo.outcome.container_id);
    json.Field("admitted", fo.outcome.admitted);
    json.Field("placement", fo.outcome.placement_id);
    json.Field("predicted_abs", fo.outcome.predicted_abs_throughput);
    json.Field("meets_goal", fo.outcome.meets_goal);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return os.str();
}

// One event stream with container churn plus a fail, a drain and both
// rejoins — every fleet operation the capacity index guides.
EventStream ChurnTraceWithMachineEvents(int num_streams, uint64_t seed) {
  // Long-lived containers oversubscribe the fleet on purpose: the
  // rebalance pass needs queued waiters and below-goal incumbents to have
  // anything to move, and the mid-trace fail/drain tightens it further.
  // 16 vCPUs matches the width the shared trained model covers.
  TraceConfig trace_config;
  trace_config.num_containers = 10;
  trace_config.vcpus = 16;
  trace_config.goal_fraction = 0.9;
  trace_config.mean_interarrival_seconds = 60.0;
  trace_config.mean_lifetime_seconds = 2000.0;
  Rng rng(seed);
  EventStream trace = GenerateFleetTrace(trace_config, num_streams, rng);
  const double end = trace.EndTime();
  return InjectMachineEvents(std::move(trace),
                             {FleetEvent::Fail(0.40 * end, 0),
                              FleetEvent::Drain(0.55 * end, 1),
                              FleetEvent::Rejoin(0.70 * end, 0),
                              FleetEvent::Rejoin(0.85 * end, 1)});
}

TEST(FleetCapacityOps, IndexBackedAndFullScanPathsAreByteIdentical) {
  // fleet_probes = 0 descends into every eligible cell, i.e. the forced
  // fallback: the index-backed search must preview exactly the machines
  // the full scan previews, in the same order, and land every container,
  // move and counter identically — byte-identical serialized output.
  FleetConfig indexed;
  indexed.dispatch = "best-predicted";
  indexed.sharded_fleet_ops = true;
  indexed.fleet_probes = 0;
  FleetConfig full_scan = indexed;
  full_scan.sharded_fleet_ops = false;

  FleetScheduler indexed_fleet = MakeAmdFleet(6, "model", indexed);
  FleetScheduler full_scan_fleet = MakeAmdFleet(6, "model", full_scan);
  const EventStream trace = ChurnTraceWithMachineEvents(3, 99);

  const std::string indexed_json = ReplayToJson(indexed_fleet, trace);
  const std::string full_scan_json = ReplayToJson(full_scan_fleet, trace);
  EXPECT_EQ(indexed_json, full_scan_json);
  // The replay exercised the paths it claims to compare.
  EXPECT_GT(indexed_fleet.stats().rebalance_decisions, 0);
  EXPECT_GT(indexed_fleet.stats().evac_decisions, 0);
  EXPECT_GT(indexed_fleet.stats().evacuations, 0);
}

TEST(FleetCapacityOps, ShardedSearchStaysWithinThePreviewBound) {
  // 9 machines, flat dispatch: the index builds its own 3-cell modulo
  // layout; every rebalance/evacuation target search may preview at most
  // the members of fleet_probes promising cells.
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(9, "model", config);
  ASSERT_TRUE(fleet.config().sharded_fleet_ops);
  const CapacityIndex& index = fleet.capacity_index();
  ASSERT_EQ(index.NumCells(), 3);
  size_t cell_cap = 0;
  for (const std::vector<int>& cell : index.layout().cells) {
    cell_cap = std::max(cell_cap, cell.size());
  }

  fleet.Replay(ChurnTraceWithMachineEvents(6, 41));
  const FleetStats& stats = fleet.stats();
  EXPECT_GT(stats.rebalance_decisions, 0);
  EXPECT_GT(stats.evac_decisions, 0);
  const int per_search =
      static_cast<int>(cell_cap) * fleet.config().fleet_probes;
  EXPECT_LE(stats.rebalance_previews, stats.rebalance_decisions * per_search);
  EXPECT_LE(stats.evac_previews, stats.evac_decisions * per_search);
}

TEST(FleetCapacityOps, CleanCapacityFlagSkipsTheRebalancePassEntirely) {
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(2, "model", config);
  // Fill both machines (four 16-vCPU placements each), then queue two more.
  for (int id = 1; id <= 8; ++id) {
    ASSERT_TRUE(fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0).outcome.admitted);
  }
  ASSERT_FALSE(fleet.Submit(MakeRequest(9, "gcc", 0.5), 9.0).outcome.admitted);
  ASSERT_FALSE(fleet.Submit(MakeRequest(10, "gcc", 0.5), 10.0).outcome.admitted);

  // Departing queued 9 frees nothing, but the pass still runs: the
  // queueings above marked capacity changed. With both machines full it
  // finds no target and changes nothing, clearing the flag.
  fleet.Depart(9, 11.0);
  const FleetStats mid = fleet.stats();
  EXPECT_GT(mid.rebalance_passes, 0);
  EXPECT_FALSE(fleet.capacity_index().capacity_dirty());

  // Departing queued 10 frees nothing AND nothing changed since the last
  // pass: the whole pass — unplaced drain, mover searches, previews — is
  // skipped as a proven no-op.
  fleet.Depart(10, 12.0);
  const FleetStats after = fleet.stats();
  EXPECT_EQ(after.rebalance_passes, mid.rebalance_passes);
  EXPECT_EQ(after.rebalance_passes_skipped, mid.rebalance_passes_skipped + 1);
  EXPECT_EQ(after.rebalance_previews, mid.rebalance_previews);
  EXPECT_EQ(after.rebalance_decisions, mid.rebalance_decisions);
  EXPECT_EQ(after.dispatch_decisions, mid.dispatch_decisions);
  EXPECT_EQ(after.dispatch_previews, mid.dispatch_previews);

  // A running departure frees capacity, re-arming the flag and the pass.
  fleet.Depart(1, 13.0);
  EXPECT_EQ(fleet.stats().rebalance_passes, mid.rebalance_passes + 1);
}

TEST(FleetDomains, DomainScopedEventsReplayByteIdenticallyToTheHandList) {
  // The acceptance equivalence: rack 1 of a 6-machine / 3-rack fleet is
  // machines {2, 3}; a domain-scoped fail + rejoin of that rack must drive
  // the fleet through the exact event sequence of the hand-written
  // per-machine list — byte-identical serialized replay output.
  FleetConfig config;
  config.dispatch = "best-predicted";
  config.domain_racks = 3;
  FleetScheduler domain_fleet = MakeAmdFleet(6, "model", config);
  FleetScheduler hand_fleet = MakeAmdFleet(6, "model", config);

  TraceConfig trace_config;
  trace_config.num_containers = 10;
  trace_config.vcpus = 16;
  trace_config.goal_fraction = 0.9;
  trace_config.mean_interarrival_seconds = 60.0;
  trace_config.mean_lifetime_seconds = 2000.0;
  Rng rng(123);
  const EventStream churn = GenerateFleetTrace(trace_config, 3, rng);
  const double end = churn.EndTime();

  EventStream domain_trace = churn;
  domain_trace = InjectMachineEvents(
      std::move(domain_trace),
      {FleetEvent::FailDomain(0.45 * end, DomainScope::kRack, 1),
       FleetEvent::RejoinDomain(0.70 * end, DomainScope::kRack, 1)},
      domain_fleet.domains());
  EventStream hand_trace = churn;
  hand_trace = InjectMachineEvents(
      std::move(hand_trace),
      {FleetEvent::Fail(0.45 * end, 2), FleetEvent::Fail(0.45 * end, 3),
       FleetEvent::Rejoin(0.70 * end, 2), FleetEvent::Rejoin(0.70 * end, 3)});

  const std::string domain_json = ReplayToJson(domain_fleet, domain_trace);
  const std::string hand_json = ReplayToJson(hand_fleet, hand_trace);
  EXPECT_EQ(domain_json, hand_json);
  // The outage actually evacuated something.
  EXPECT_EQ(domain_fleet.stats().evacuations, 2);
}

TEST(FleetDomains, SpreadDispatchAvoidsCoLocatingAGroupInOneRack) {
  // 4 machines over 2 racks ({0,1} and {2,3}). Flat least-loaded dispatch
  // breaks idle ties toward the lower machine id, piling the group's first
  // two replicas into rack 0; the spread penalty makes the second replica
  // skip its rack-mate.
  std::vector<MachineSpec> specs(4, AmdSpec("first-fit"));
  FleetConfig flat;
  flat.dispatch = "least-loaded";
  flat.domain_racks = 2;
  FleetConfig spread = flat;
  spread.spread_weight = 2.0;

  FleetScheduler flat_fleet(std::vector<MachineSpec>(specs), flat);
  ASSERT_FALSE(flat_fleet.SpreadActive());
  EXPECT_EQ(flat_fleet.Submit(MakeRequest(1, "gcc", 0.5), 0.0).machine_id, 0);
  EXPECT_EQ(flat_fleet.Submit(MakeRequest(2, "gcc", 0.5), 1.0).machine_id, 1);
  EXPECT_EQ(flat_fleet.DomainsToLoss(DomainScope::kRack).at("gcc"), 1);

  FleetScheduler spread_fleet(std::move(specs), spread);
  ASSERT_TRUE(spread_fleet.SpreadActive());
  EXPECT_EQ(spread_fleet.Submit(MakeRequest(1, "gcc", 0.5), 0.0).machine_id, 0);
  // Machine 1 ranks first but shares rack 0 with replica 1; machine 2 is
  // one rank down at zero co-location, and 0 + 2.0 * 1 > 1 + 2.0 * 0.
  EXPECT_EQ(spread_fleet.Submit(MakeRequest(2, "gcc", 0.5), 1.0).machine_id, 2);
  EXPECT_EQ(spread_fleet.DomainsToLoss(DomainScope::kRack).at("gcc"), 2);
  // A different group starts fresh: no penalty anywhere, lowest id wins.
  EXPECT_EQ(spread_fleet.Submit(MakeRequest(3, "kmeans", 0.5), 2.0).machine_id, 1);
  const DomainOccupancy& occupancy = spread_fleet.domain_occupancy();
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 0), 1);
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 1), 1);
}

TEST(FleetDomains, SoftRackCapNeverStrandsADispatchableContainer) {
  // One rack, cap 1: every machine is over the cap for the group's second
  // replica, but the cap is soft at dispatch — the container still lands
  // (spread never trades a placement away for spread).
  std::vector<MachineSpec> specs(2, AmdSpec("first-fit"));
  FleetConfig config;
  config.dispatch = "least-loaded";
  config.domain_racks = 1;
  config.spread_max_per_rack = 1;
  FleetScheduler fleet(std::move(specs), config);
  ASSERT_TRUE(fleet.SpreadActive());
  for (int id = 1; id <= 4; ++id) {
    const FleetOutcome outcome = fleet.Submit(MakeRequest(id, "gcc", 0.5), id * 1.0);
    EXPECT_NE(outcome.machine_id, kNoMachine) << "container " << id;
    EXPECT_TRUE(outcome.outcome.admitted) << "container " << id;
  }
  EXPECT_EQ(fleet.domain_occupancy().CountIn("gcc", DomainScope::kRack, 0), 4);
}

TEST(FleetDomains, PerReasonMoveCountersPartitionTheRebalanceLog) {
  // 2 trace streams on 6 machines: enough slack that the mid-trace drain's
  // evacuees land directly (a requeue would not count as a committed move).
  FleetConfig config;
  config.dispatch = "best-predicted";
  FleetScheduler fleet = MakeAmdFleet(6, "model", config);
  fleet.Replay(ChurnTraceWithMachineEvents(2, 99));

  const FleetStats& stats = fleet.stats();
  int rebalance = 0;
  int drain = 0;
  int failover = 0;
  for (const RebalanceMove& move : fleet.rebalance_log()) {
    switch (move.reason) {
      case RebalanceMove::Reason::kRebalance: ++rebalance; break;
      case RebalanceMove::Reason::kDrain: ++drain; break;
      case RebalanceMove::Reason::kFailover: ++failover; break;
    }
  }
  EXPECT_EQ(stats.rebalance_moves, rebalance);
  EXPECT_EQ(stats.drain_moves, drain);
  EXPECT_EQ(stats.failover_moves, failover);
  EXPECT_EQ(stats.evacuation_moves, drain + failover);
  // The churn trace drains machine 1 mid-trace, so the drain path ran.
  EXPECT_GT(stats.drain_moves, 0);
}

}  // namespace
}  // namespace numaplace
