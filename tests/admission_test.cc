// Tests for the SLO-tiered admission layer (src/cluster/admission): tier
// parsing and the naming convention, the policy registry, and the fleet
// wiring invariants — a rejected container never touches fleet state, a
// deferred container lands when capacity returns, preemption removes the
// queued best-effort victim without stranding the premium arrival, and a
// fleet running admit-all is indistinguishable from one with admission off.
// The fleets here run model-free machine policies (first-fit), like the
// capacity-index tests, so the layer is exercised without model training.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/admission.h"
#include "src/cluster/fleet.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/metrics_observer.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

MachineSpec FirstFitAmdSpec() {
  MachineSpec spec(AmdOpteron6272());
  spec.scheduler.policy = "first-fit";
  spec.scheduler.baseline_id = 1;
  return spec;
}

FleetScheduler MakeFleet(int num_machines, FleetConfig config) {
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines), FirstFitAmdSpec());
  return FleetScheduler(std::move(specs), config);
}

// A 16-vCPU request whose service group (the name before '#') carries the
// given name — pass a `<tier>:` prefix to pick the tier by convention.
ContainerRequest MakeRequest(int id, const std::string& group) {
  ContainerRequest request;
  request.id = id;
  request.workload = PaperWorkload("gcc");
  request.workload.name = group + "#" + std::to_string(id);
  request.vcpus = 16;
  request.goal_fraction = 0.5;
  return request;
}

TEST(SloTierParsing, ExactTokensOnly) {
  SloTier tier = SloTier::kStandard;
  EXPECT_TRUE(ParseSloTier("premium", &tier));
  EXPECT_EQ(tier, SloTier::kPremium);
  EXPECT_TRUE(ParseSloTier("standard", &tier));
  EXPECT_EQ(tier, SloTier::kStandard);
  EXPECT_TRUE(ParseSloTier("best-effort", &tier));
  EXPECT_EQ(tier, SloTier::kBestEffort);
  tier = SloTier::kPremium;
  for (const char* bad : {"", "Premium", "best effort", "besteffort", "gold",
                          "premium ", " premium"}) {
    EXPECT_FALSE(ParseSloTier(bad, &tier)) << bad;
    EXPECT_EQ(tier, SloTier::kPremium) << "rejected token must leave *tier alone";
  }
}

TEST(SloTierParsing, GroupNameConvention) {
  EXPECT_EQ(TierFromGroupName("premium:web"), SloTier::kPremium);
  EXPECT_EQ(TierFromGroupName("best-effort:crawl"), SloTier::kBestEffort);
  EXPECT_EQ(TierFromGroupName("standard:api"), SloTier::kStandard);
  // Unknown prefixes, unprefixed names, and a bare tier word without ':'
  // all fall back to standard.
  EXPECT_EQ(TierFromGroupName("gold:web"), SloTier::kStandard);
  EXPECT_EQ(TierFromGroupName("web"), SloTier::kStandard);
  EXPECT_EQ(TierFromGroupName("premium"), SloTier::kStandard);
  EXPECT_EQ(TierFromGroupName(""), SloTier::kStandard);
  // Only the first ':' splits: the rest of the name is opaque.
  EXPECT_EQ(TierFromGroupName("premium:a:b"), SloTier::kPremium);
  EXPECT_EQ(TierFromGroupName(":web"), SloTier::kStandard);
}

TEST(SloTierParsing, FleetTierOfPrefersOverrides) {
  FleetConfig config;
  config.admission = "tiered";
  config.tier_overrides["web"] = "premium";
  config.tier_overrides["premium:api"] = "best-effort";
  const FleetScheduler fleet = MakeFleet(1, config);
  // Overrides are keyed by the full service-group name and win over the
  // naming convention; TierOf takes workload names ('#' suffix stripped).
  EXPECT_EQ(fleet.TierOf("web#3"), SloTier::kPremium);
  EXPECT_EQ(fleet.TierOf("premium:api#1"), SloTier::kBestEffort);
  EXPECT_EQ(fleet.TierOf("premium:db#1"), SloTier::kPremium);
  EXPECT_EQ(fleet.TierOf("plain"), SloTier::kStandard);
}

TEST(AdmissionRegistry, BuiltInsAreRegisteredAndMisuseThrows) {
  const std::vector<std::string> names = AdmissionRegistry::Global().Names();
  for (const char* builtin : {"admit-all", "tiered"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end()) << builtin;
    EXPECT_TRUE(AdmissionRegistry::Global().Has(builtin));
  }
  EXPECT_THROW(MakeAdmissionPolicy("no-such-policy"), std::logic_error);
  EXPECT_EQ(MakeAdmissionPolicy("tiered")->name(), "tiered");
}

TEST(AdmissionConfig, BadNamesThrowAtConstruction) {
  FleetConfig bad_policy;
  bad_policy.admission = "no-such-policy";
  EXPECT_THROW(MakeFleet(1, bad_policy), std::logic_error);
  FleetConfig bad_tier;
  bad_tier.tier_overrides["web"] = "gold";
  EXPECT_THROW(MakeFleet(1, bad_tier), std::logic_error);
  FleetConfig bad_limit;
  bad_limit.admission_defer_limit = -1;
  EXPECT_THROW(MakeFleet(1, bad_limit), std::logic_error);
}

// A shed best-effort container never touches fleet state: no outcome, no
// queue entry, no machine, and its later departure is a silent no-op.
TEST(TieredAdmission, RejectedContainerNeverEntersTheFleet) {
  FleetConfig config;
  config.admission = "tiered";
  FleetScheduler fleet = MakeFleet(1, config);
  OutcomeRecorder recorder;
  // Three standard admits fill the 64-thread machine to 48 occupied.
  for (int id = 1; id <= 3; ++id) {
    fleet.Submit(MakeRequest(id, "standard:web"), /*now=*/10.0 * id, &recorder);
  }
  ASSERT_EQ(recorder.outcomes.size(), 3u);
  // Best-effort now sees 16 free < 3x its 16-vCPU demand: shed on the spot.
  const FleetOutcome outcome =
      fleet.Submit(MakeRequest(9, "best-effort:crawl"), /*now=*/40.0, &recorder);
  EXPECT_EQ(outcome.machine_id, kNoMachine);
  EXPECT_FALSE(outcome.outcome.admitted);
  EXPECT_EQ(recorder.outcomes.size(), 3u) << "no OnAdmission/OnQueued for a shed id";
  ASSERT_EQ(recorder.admission_decisions.size(), 4u);
  EXPECT_EQ(recorder.admission_decisions.back().decision, AdmissionDecision::kReject);
  EXPECT_EQ(recorder.admission_decisions.back().tier, SloTier::kBestEffort);
  EXPECT_EQ(fleet.MachineOf(9), kNoMachine);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  EXPECT_EQ(fleet.RejectedIds(), std::set<int>{9});
  EXPECT_EQ(fleet.stats().tier_rejected[static_cast<size_t>(SloTier::kBestEffort)], 1);
  // The trace's matching departure event is a no-op, not a CHECK failure.
  fleet.Depart(9, /*now=*/50.0, &recorder);
  EXPECT_TRUE(recorder.departures.empty());
  EXPECT_TRUE(fleet.RejectedIds().empty()) << "the tombstone is consumed";
}

// A deferred standard container waits fleet-wide and is placed — through
// the ordinary rebalance drain, no admission re-run — once a departure
// frees capacity.
TEST(TieredAdmission, DeferredContainerLandsWhenCapacityReturns) {
  FleetConfig config;
  config.admission = "tiered";
  FleetScheduler fleet = MakeFleet(1, config);
  OutcomeRecorder recorder;
  for (int id = 1; id <= 3; ++id) {
    fleet.Submit(MakeRequest(id, "standard:web"), /*now=*/10.0 * id, &recorder);
  }
  // 16 free < 2x demand: standard defers while the wait pool has room.
  const FleetOutcome deferred =
      fleet.Submit(MakeRequest(4, "standard:web"), /*now=*/40.0, &recorder);
  EXPECT_EQ(deferred.machine_id, kNoMachine);
  EXPECT_FALSE(deferred.outcome.admitted);
  EXPECT_EQ(recorder.admission_decisions.back().decision, AdmissionDecision::kDefer);
  EXPECT_EQ(fleet.UnplacedIds(), std::vector<int>{4});
  EXPECT_EQ(fleet.stats().tier_deferred[static_cast<size_t>(SloTier::kStandard)], 1);
  // A departure frees 16 threads; the rebalance pass drains the wait pool.
  fleet.Depart(1, /*now=*/60.0, &recorder);
  EXPECT_EQ(fleet.MachineOf(4), 0);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  EXPECT_GE(fleet.stats().queue_admissions, 1);
}

// Premium preempts a queued best-effort victim and is never stranded: the
// victim leaves the wait set for the rejected tombstones, the premium
// arrival stays tracked, and lands once capacity rejoins.
TEST(TieredAdmission, PreemptionNeverStrandsPremium) {
  FleetConfig config;
  config.admission = "tiered";
  FleetScheduler fleet = MakeFleet(2, config);
  OutcomeRecorder recorder;
  // Best-effort admits into the empty fleet (128 free, nothing waiting).
  ASSERT_NE(fleet.Submit(MakeRequest(1, "best-effort:crawl"), 1.0, &recorder).machine_id,
            kNoMachine);
  const int be_machine = fleet.MachineOf(1);
  // Premium fillers take every remaining slot (premium always admits).
  for (int id = 2; id <= 8; ++id) {
    fleet.Submit(MakeRequest(id, "premium:web"), 1.0 + id, &recorder);
  }
  // Failing the best-effort container's machine requeues every evacuee:
  // the surviving machine is full but could hold them, so they wait on its
  // queue — still tracked, still unseated.
  fleet.Fail(be_machine, /*now=*/20.0, &recorder);
  const int survivor = 1 - be_machine;
  ASSERT_EQ(fleet.MachineOf(1), survivor) << "the evacuated victim waits, queued";
  // A premium arrival finds nothing fitting and a queued best-effort
  // victim: the policy rules preempt and the victim is shed.
  fleet.Submit(MakeRequest(99, "premium:web"), /*now=*/30.0, &recorder);
  // Two rulings land: the premium arrival's kPreempt, then the victim's
  // kReject (preemption is how the rejection happened).
  ASSERT_GE(recorder.admission_decisions.size(), 2u);
  const AdmissionDecisionRecord& premium_ruling =
      recorder.admission_decisions[recorder.admission_decisions.size() - 2];
  const AdmissionDecisionRecord& victim_ruling = recorder.admission_decisions.back();
  EXPECT_EQ(premium_ruling.container_id, 99);
  EXPECT_EQ(premium_ruling.decision, AdmissionDecision::kPreempt);
  EXPECT_EQ(victim_ruling.container_id, 1);
  EXPECT_EQ(victim_ruling.tier, SloTier::kBestEffort);
  EXPECT_EQ(victim_ruling.decision, AdmissionDecision::kReject);
  EXPECT_EQ(fleet.RejectedIds(), std::set<int>{1});
  EXPECT_EQ(fleet.MachineOf(1), kNoMachine);
  EXPECT_EQ(fleet.MachineOf(99), survivor) << "premium takes the victim's wait slot";
  const auto be = static_cast<size_t>(SloTier::kBestEffort);
  EXPECT_EQ(fleet.stats().tier_preempted[be], 1);
  EXPECT_EQ(fleet.stats().tier_rejected[be], 1);
  // The machine rejoins; the rebalance pass seats the premium arrival.
  fleet.Rejoin(be_machine, /*now=*/40.0, &recorder);
  EXPECT_NE(fleet.MachineOf(99), kNoMachine);
  EXPECT_TRUE(fleet.UnplacedIds().empty());
  // The victim's trace departure stays a silent no-op.
  const size_t departures_before = recorder.departures.size();
  fleet.Depart(1, /*now=*/50.0, &recorder);
  EXPECT_EQ(recorder.departures.size(), departures_before);
}

// admit-all is the null contender: byte-for-byte the same dispatch
// decisions, stats and report as a fleet with admission off — only the
// per-tier accounting differs (populated vs all-zero).
TEST(AdmitAllPolicy, MatchesAdmissionOffOnAReplay) {
  TraceConfig base;
  base.num_containers = 12;
  base.mean_interarrival_seconds = 60.0;
  base.goal_fraction = 0.5;
  FlashCrowdConfig crowd;
  crowd.base = base;
  crowd.bursts = 1;
  crowd.burst_containers = 6;
  Rng rng_a(11);
  Rng rng_b(11);
  const EventStream trace_a = GenerateFlashCrowdTrace(crowd, /*num_streams=*/2, rng_a);
  const EventStream trace_b = GenerateFlashCrowdTrace(crowd, /*num_streams=*/2, rng_b);
  FleetConfig off;
  FleetConfig admit_all = off;
  admit_all.admission = "admit-all";
  FleetScheduler fleet_off = MakeFleet(2, off);
  FleetScheduler fleet_all = MakeFleet(2, admit_all);
  OutcomeRecorder rec_off;
  OutcomeRecorder rec_all;
  const FleetReport report_off = fleet_off.ReplayWithEvaluation(trace_a, &rec_off);
  const FleetReport report_all = fleet_all.ReplayWithEvaluation(trace_b, &rec_all);
  EXPECT_EQ(report_off.goal_attainment, report_all.goal_attainment);
  EXPECT_EQ(report_off.mean_queue_wait_seconds, report_all.mean_queue_wait_seconds);
  EXPECT_EQ(report_off.decisions, report_all.decisions);
  EXPECT_EQ(fleet_off.stats().submitted, fleet_all.stats().submitted);
  EXPECT_EQ(fleet_off.stats().queued, fleet_all.stats().queued);
  ASSERT_EQ(rec_off.outcomes.size(), rec_all.outcomes.size());
  for (size_t i = 0; i < rec_off.outcomes.size(); ++i) {
    EXPECT_EQ(rec_off.outcomes[i].machine_id, rec_all.outcomes[i].machine_id) << i;
    EXPECT_EQ(rec_off.outcomes[i].outcome.container_id,
              rec_all.outcomes[i].outcome.container_id)
        << i;
  }
  // Admission off records nothing and counts nothing per tier; admit-all
  // records one kAdmit ruling per arrival.
  EXPECT_TRUE(rec_off.admission_decisions.empty());
  int total_arrivals = 0;
  for (size_t t = 0; t < kNumSloTiers; ++t) {
    EXPECT_EQ(fleet_off.stats().tier_arrivals[t], 0);
    total_arrivals += fleet_all.stats().tier_arrivals[t];
    EXPECT_EQ(fleet_all.stats().tier_rejected[t], 0);
  }
  EXPECT_EQ(total_arrivals, fleet_all.stats().submitted);
  EXPECT_EQ(rec_all.admission_decisions.size(),
            static_cast<size_t>(total_arrivals));
  for (const AdmissionDecisionRecord& record : rec_all.admission_decisions) {
    EXPECT_EQ(record.decision, AdmissionDecision::kAdmit);
  }
}

TEST(FlashCrowdTrace, DeterministicTieredAndWellFormed) {
  FlashCrowdConfig config;
  config.base.num_containers = 8;
  config.bursts = 2;
  config.burst_containers = 5;
  Rng rng_a(42);
  Rng rng_b(42);
  const EventStream a = GenerateFlashCrowdTrace(config, /*num_streams=*/3, rng_a);
  const EventStream b = GenerateFlashCrowdTrace(config, /*num_streams=*/3, rng_b);
  // One arrival + one departure per container, per stream.
  const size_t per_stream = static_cast<size_t>(config.base.num_containers) +
                            static_cast<size_t>(config.bursts) *
                                static_cast<size_t>(config.burst_containers);
  ASSERT_EQ(a.size(), 2 * 3 * per_stream);
  ASSERT_EQ(b.size(), a.size());
  std::set<int> arrival_ids;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_seconds, b[i].time_seconds) << i;
    EXPECT_EQ(a[i].kind(), b[i].kind()) << i;
    EXPECT_EQ(a[i].container_id(), b[i].container_id()) << i;
    if (a[i].arrival() != nullptr) {
      ASSERT_NE(b[i].arrival(), nullptr) << i;
      EXPECT_EQ(a[i].arrival()->workload.name, b[i].arrival()->workload.name) << i;
      EXPECT_TRUE(arrival_ids.insert(a[i].container_id()).second)
          << "duplicate container id " << a[i].container_id();
      // Every name is `<tier>:<base>#<id>`: a valid tier prefix, by
      // construction — TierFromGroupName must never fall back here.
      const std::string& name = a[i].arrival()->workload.name;
      const auto colon = name.find(':');
      ASSERT_NE(colon, std::string::npos) << name;
      SloTier tier = SloTier::kStandard;
      EXPECT_TRUE(ParseSloTier(name.substr(0, colon), &tier)) << name;
      EXPECT_NE(name.find('#'), std::string::npos) << name;
    }
  }
  EXPECT_EQ(arrival_ids.size(), 3 * per_stream);
}

// Adding bursts must not disturb the baseline process: with one stream the
// baseline container ids coincide, and their arrival times are identical
// because burst randomness draws after baseline randomness in the stream's
// forked RNG. (The admission benchmark leans on this: its baseline and
// flash-crowd scenarios share the exact same premium arrival set.)
TEST(FlashCrowdTrace, BurstsLeaveTheBaselineProcessUntouched) {
  FlashCrowdConfig calm;
  calm.base.num_containers = 10;
  calm.bursts = 0;
  FlashCrowdConfig spiky = calm;
  spiky.bursts = 2;
  spiky.burst_containers = 7;
  Rng rng_a(7);
  Rng rng_b(7);
  const EventStream a = GenerateFlashCrowdTrace(calm, /*num_streams=*/1, rng_a);
  const EventStream b = GenerateFlashCrowdTrace(spiky, /*num_streams=*/1, rng_b);
  std::map<int, std::pair<double, std::string>> baseline_arrivals;
  for (const FleetEvent& event : a) {
    if (event.arrival() != nullptr) {
      baseline_arrivals[event.container_id()] = {event.time_seconds,
                                                 event.arrival()->workload.name};
    }
  }
  ASSERT_EQ(baseline_arrivals.size(), 10u);
  size_t matched = 0;
  for (const FleetEvent& event : b) {
    if (event.arrival() == nullptr) {
      continue;
    }
    const auto it = baseline_arrivals.find(event.container_id());
    if (it == baseline_arrivals.end()) {
      continue;
    }
    EXPECT_EQ(event.time_seconds, it->second.first) << event.container_id();
    EXPECT_EQ(event.arrival()->workload.name, it->second.second)
        << event.container_id();
    ++matched;
  }
  EXPECT_EQ(matched, baseline_arrivals.size());
}

TEST(EventStreamAppendAll, MatchesSequentialAppendsIncludingTies) {
  const auto arrival_at = [](int id, double time) {
    ContainerArrival arrival;
    arrival.container_id = id;
    arrival.workload = PaperWorkload("gcc");
    arrival.workload.name = "standard:web#" + std::to_string(id);
    arrival.vcpus = 16;
    return FleetEvent::Arrival(time, arrival);
  };
  std::vector<FleetEvent> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(arrival_at(100 + i, /*time=*/i % 2 == 0 ? 5.0 : 3.0));
  }
  batch.push_back(FleetEvent::Departure(/*time_seconds=*/5.0, /*container_id=*/100));
  EventStream sequential;
  EventStream bulk;
  // Pre-existing events share times with the batch: the tie rule (existing
  // first, batch keeps its own order) must hold for both paths.
  for (EventStream* stream : {&sequential, &bulk}) {
    stream->Append(arrival_at(1, 3.0));
    stream->Append(arrival_at(2, 5.0));
  }
  for (const FleetEvent& event : batch) {
    sequential.Append(event);
  }
  bulk.AppendAll(batch);
  ASSERT_EQ(bulk.size(), sequential.size());
  for (size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(bulk[i].time_seconds, sequential[i].time_seconds) << i;
    EXPECT_EQ(bulk[i].kind(), sequential[i].kind()) << i;
    EXPECT_EQ(bulk[i].container_id(), sequential[i].container_id()) << i;
  }
}

// The per-tier metric catalog: every tier x decision counter exists up
// front, rulings increment exactly one of them, and a defer's wait is
// observed when the container finally seats.
TEST(MetricsObserverAdmission, TierCatalogAndDeferWait) {
  MetricsRegistry registry;
  MetricsObserver metrics(&registry, /*next=*/nullptr, /*up_machines=*/1);
  for (const char* tier : {"premium", "standard", "best-effort"}) {
    for (const char* decision : {"admitted", "deferred", "rejected", "preempted"}) {
      const std::string name =
          std::string("fleet.admission.") + tier + "." + decision;
      ASSERT_NE(registry.FindCounter(name), nullptr) << name;
      EXPECT_EQ(registry.FindCounter(name)->value(), 0) << name;
    }
  }
  ASSERT_NE(registry.FindHistogram("fleet.admission.rejected_vcpus"), nullptr);
  ASSERT_NE(registry.FindHistogram("fleet.admission.defer_wait_seconds"), nullptr);
  metrics.OnAdmissionDecision(7, 16, SloTier::kBestEffort,
                              AdmissionDecision::kReject, 10.0);
  EXPECT_EQ(registry.FindCounter("fleet.admission.best-effort.rejected")->value(), 1);
  EXPECT_EQ(registry.FindHistogram("fleet.admission.rejected_vcpus")->count(), 1);
  metrics.OnAdmissionDecision(8, 16, SloTier::kStandard,
                              AdmissionDecision::kDefer, 20.0);
  EXPECT_EQ(registry.FindCounter("fleet.admission.standard.deferred")->value(), 1);
  EXPECT_EQ(registry.FindHistogram("fleet.admission.defer_wait_seconds")->count(), 0)
      << "the wait is observed at seating, not at the defer";
  ScheduleOutcome outcome;
  outcome.container_id = 8;
  outcome.admitted = true;
  metrics.OnAdmission(0, outcome, 50.0);
  const Histogram* wait = registry.FindHistogram("fleet.admission.defer_wait_seconds");
  ASSERT_EQ(wait->count(), 1);
  EXPECT_EQ(wait->sum(), 30.0);
}

}  // namespace
}  // namespace numaplace
