// Tests for the performance simulator: directional physics checks, Fig. 1
// qualitative shapes, multi-tenant interference, HPE sampler, Linux mapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/core/important.h"
#include "src/sim/hpe.h"
#include "src/sim/linux_mapper.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/profile.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

Placement PlaceOn(const Topology& topo, const NodeSet& nodes, int vcpus, bool share_l2) {
  ImportantPlacement ip;
  ip.nodes = nodes;
  ip.l3_score = static_cast<int>(nodes.size());
  ip.l2_score = share_l2 ? vcpus / 2 : vcpus;
  return RealizeOnNodes(ip, nodes, topo, vcpus);
}

TEST(PerfModel, Fig1IntelShape) {
  // "On the Intel system, the application performs significantly better when
  //  all of its threads run on a single node."
  const Topology intel = IntelXeonE74830v3();
  PerformanceModel sim(intel);
  const WorkloadProfile wt = PaperWorkload("WTbtree");
  const double one = sim.Evaluate(wt, PlaceOn(intel, {0}, 16, true)).throughput_ops;
  const double two = sim.Evaluate(wt, PlaceOn(intel, {0, 1}, 16, false)).throughput_ops;
  const double four = sim.Evaluate(wt, PlaceOn(intel, {0, 1, 2, 3}, 16, false)).throughput_ops;
  EXPECT_GT(one, two);
  EXPECT_GT(two, four);
}

TEST(PerfModel, Fig1AmdShape) {
  // "On the AMD system, four nodes are better than two, only if we do not
  //  use SMT, but using eight nodes does not buy you better performance."
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile wt = PaperWorkload("WTbtree");
  const double two_smt = sim.Evaluate(wt, PlaceOn(amd, {0, 1}, 16, true)).throughput_ops;
  const double four_no = sim.Evaluate(wt, PlaceOn(amd, {2, 3, 4, 5}, 16, false)).throughput_ops;
  const double four_smt = sim.Evaluate(wt, PlaceOn(amd, {2, 3, 4, 5}, 16, true)).throughput_ops;
  const double eight_no =
      sim.Evaluate(wt, PlaceOn(amd, {0, 1, 2, 3, 4, 5, 6, 7}, 16, false)).throughput_ops;
  EXPECT_GT(four_no, two_smt);          // 4 nodes beat 2...
  EXPECT_GT(four_no, four_smt);         // ...only without SMT
  EXPECT_LT(eight_no, 1.1 * four_no);   // 8 nodes buy nothing
}

TEST(PerfModel, CommunicationLatencyHurtsCommHeavyOnly) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  WorkloadProfile chatty = PaperWorkload("WTbtree");      // comm 0.8
  WorkloadProfile silent = PaperWorkload("gcc");          // comm 0.0
  const Placement near = PlaceOn(amd, {0, 1}, 16, true);
  const Placement far = PlaceOn(amd, {0, 7}, 16, true);   // no direct link
  const double chatty_drop =
      sim.Evaluate(chatty, far).throughput_ops / sim.Evaluate(chatty, near).throughput_ops;
  const double silent_drop =
      sim.Evaluate(silent, far).throughput_ops / sim.Evaluate(silent, near).throughput_ops;
  EXPECT_LT(chatty_drop, 0.9);
  EXPECT_GT(silent_drop, 0.95);
}

TEST(PerfModel, BandwidthBoundWorkloadScalesWithNodes) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile sc = PaperWorkload("streamcluster");
  const double two = sim.Evaluate(sc, PlaceOn(amd, {0, 1}, 16, true)).throughput_ops;
  const double eight =
      sim.Evaluate(sc, PlaceOn(amd, {0, 1, 2, 3, 4, 5, 6, 7}, 16, false)).throughput_ops;
  EXPECT_GT(eight, 1.3 * two);
}

TEST(PerfModel, SmtFriendlyWorkloadPrefersSharing) {
  // kmeans was "the only benchmark in our training set that preferred SMT".
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile km = PaperWorkload("kmeans");
  const double shared = sim.Evaluate(km, PlaceOn(amd, {2, 3, 4, 5}, 16, true)).throughput_ops;
  const double spread = sim.Evaluate(km, PlaceOn(amd, {2, 3, 4, 5}, 16, false)).throughput_ops;
  EXPECT_GT(shared, 0.98 * spread);
}

TEST(PerfModel, ComputeBoundWorkloadIsPlacementInsensitive) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  const WorkloadProfile sw = PaperWorkload("swaptions");
  std::vector<double> values;
  values.push_back(sim.Evaluate(sw, PlaceOn(amd, {0, 1}, 16, true)).throughput_ops);
  values.push_back(sim.Evaluate(sw, PlaceOn(amd, {2, 3, 4, 5}, 16, false)).throughput_ops);
  values.push_back(
      sim.Evaluate(sw, PlaceOn(amd, {0, 1, 2, 3, 4, 5, 6, 7}, 16, false)).throughput_ops);
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  EXPECT_LT((hi - lo) / hi, 0.15);
}

TEST(PerfModel, UnbalancedSmtStackingCreatesStragglers) {
  // Unpinned Linux sometimes stacks some vCPUs on SMT siblings while whole
  // cores idle ("Linux may map vCPUs unevenly to shared resources"). For a
  // barrier-synchronized workload, the stacked stragglers gate everyone.
  const Topology intel = IntelXeonE74830v3();
  PerformanceModel sim(intel);
  WorkloadProfile barrier = PaperWorkload("streamcluster");  // barrier 0.6
  const Placement balanced = PlaceOn(intel, {0, 1}, 16, false);  // 16 own cores
  Placement stacked;
  for (int c = 0; c < 4; ++c) {
    stacked.hw_threads.push_back(2 * c);      // cores 0..3 doubly loaded
    stacked.hw_threads.push_back(2 * c + 1);  // (both SMT siblings)
  }
  for (int c = 12; c < 20; ++c) {
    stacked.hw_threads.push_back(2 * c);      // 8 vCPUs on their own node-1 cores
  }
  const double bal = sim.Evaluate(barrier, balanced).throughput_ops;
  const double skew = sim.Evaluate(barrier, stacked).throughput_ops;
  EXPECT_LT(skew, 0.9 * bal);
}

TEST(PerfModel, NoiseIsBoundedAndSeedStable) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel noisy(amd, 0.02, 7);
  const WorkloadProfile w = PaperWorkload("gcc");
  const Placement p = PlaceOn(amd, {0, 1}, 16, true);
  const double a = noisy.Evaluate(w, p, 1).throughput_ops;
  const double b = noisy.Evaluate(w, p, 1).throughput_ops;
  EXPECT_DOUBLE_EQ(a, b);  // same run index -> same measurement
  const double c = noisy.Evaluate(w, p, 2).throughput_ops;
  EXPECT_NE(a, c);         // different run -> different noise
  EXPECT_NEAR(a / c, 1.0, 0.2);
  PerformanceModel clean(amd);
  const double det = clean.Evaluate(w, p).throughput_ops;
  EXPECT_NEAR(a / det, 1.0, 0.1);
}

TEST(MultiTenant, NodeSharingInterferesDisjointDoesNot) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel solo(amd);
  MultiTenantModel multi(amd);
  const WorkloadProfile sc = PaperWorkload("streamcluster");

  const Placement p01 = PlaceOn(amd, {0, 1}, 16, true);
  const Placement p23 = PlaceOn(amd, {2, 3}, 16, true);
  const double alone = solo.Evaluate(sc, p01).throughput_ops;

  // Disjoint co-location: both tenants keep ~solo throughput.
  {
    const auto results = multi.Evaluate({{&sc, p01}, {&sc, p23}});
    EXPECT_NEAR(results[0].throughput_ops / alone, 1.0, 0.05);
    EXPECT_NEAR(results[1].throughput_ops / alone, 1.0, 0.05);
  }
  // Same-node co-location (SMT halves of the same cores are already taken,
  // so stack a second tenant on nodes {0,1} using the other module cores):
  // bandwidth and cache are shared -> both lose throughput.
  {
    Placement other_half;
    for (int t : p01.hw_threads) {
      other_half.hw_threads.push_back(t + 1);  // the sibling core in the module
    }
    const auto results = multi.Evaluate({{&sc, p01}, {&sc, other_half}});
    EXPECT_LT(results[0].throughput_ops, 0.8 * alone);
    EXPECT_LT(results[1].throughput_ops, 0.8 * alone);
  }
}

TEST(Hpe, CounterCountAndNames) {
  const Topology intel = IntelXeonE74830v3();
  PerformanceModel sim(intel);
  HpeSampler sampler(sim, 41, 5);
  EXPECT_EQ(sampler.CounterNames().size(), 41u);
  EXPECT_EQ(sampler.CounterNames()[0], "ipc");
  const WorkloadProfile w = PaperWorkload("canneal");
  const Placement p = PlaceOn(intel, {0}, 24, true);
  const std::vector<double> v = sampler.Sample(w, p);
  EXPECT_EQ(v.size(), 41u);
  for (double x : v) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Hpe, InformativeCountersTrackPlacement) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  HpeSampler sampler(sim, 25, 5);
  const WorkloadProfile sc = PaperWorkload("streamcluster");
  const auto few = sampler.Sample(sc, PlaceOn(amd, {0, 1}, 16, true));
  const auto many = sampler.Sample(sc, PlaceOn(amd, {0, 1, 2, 3, 4, 5, 6, 7}, 16, false));
  // L3 miss rate (index 2) falls with more cache; remote fraction (5) rises.
  EXPECT_GT(few[2], many[2] * 0.99);
  EXPECT_LT(few[5], many[5]);
}

TEST(Hpe, NoiseCountersCarryNoPlacementSignal) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  HpeSampler sampler(sim, 25, 5);
  const WorkloadProfile w = PaperWorkload("gcc");
  const auto a = sampler.Sample(w, PlaceOn(amd, {0, 1}, 16, true));
  const auto b = sampler.Sample(w, PlaceOn(amd, {2, 3, 4, 5}, 16, false));
  // The trailing noise counters differ only by measurement noise (3%).
  for (size_t i = HpeSampler::kNumInformativeCounters; i < a.size(); ++i) {
    EXPECT_NEAR(a[i] / b[i], 1.0, 0.2) << "counter " << i;
  }
}

TEST(LinuxMapper, ProducesValidPlacements) {
  const Topology intel = IntelXeonE74830v3();
  LinuxMapper mapper(intel);
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    const Placement p = mapper.Map(24, rng);
    EXPECT_EQ(p.NumVcpus(), 24);
    EXPECT_TRUE(p.IsOneVcpuPerHwThread());
    for (int t : p.hw_threads) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, intel.NumHwThreads());
    }
  }
}

TEST(LinuxMapper, RespectsOccupiedThreadsAndAllowedNodes) {
  const Topology amd = AmdOpteron6272();
  LinuxMapper mapper(amd);
  Rng rng(72);
  const NodeSet allowed = {2, 3};
  std::vector<int> occupied;
  for (int t : amd.HwThreadsOnNode(2)) {
    occupied.push_back(t);
  }
  const Placement p = mapper.Map(8, allowed, occupied, rng);
  for (int t : p.hw_threads) {
    EXPECT_EQ(amd.NodeOf(t), 3);  // node 2 fully occupied
  }
  EXPECT_THROW(mapper.Map(9, allowed, occupied, rng), std::logic_error);
}

TEST(LinuxMapper, ImbalanceProducesNodeSkewSometimes) {
  const Topology amd = AmdOpteron6272();
  LinuxMapper mapper(amd, 0.4);
  Rng rng(73);
  int skewed_trials = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const Placement p = mapper.Map(16, rng);
    std::map<int, int> per_node;
    for (int t : p.hw_threads) {
      per_node[amd.NodeOf(t)]++;
    }
    int max_count = 0;
    for (const auto& [node, count] : per_node) {
      max_count = std::max(max_count, count);
    }
    if (max_count >= 4) {
      ++skewed_trials;  // 16 threads over 8 nodes balanced would be 2 each
    }
  }
  EXPECT_GT(skewed_trials, 5);
}

TEST(Synth, ArchetypesProduceDistinctBehaviours) {
  const Topology intel = IntelXeonE74830v3();
  PerformanceModel sim(intel);
  Rng rng(74);
  const WorkloadProfile latency =
      SampleWorkload(WorkloadArchetype::kLatencySensitive, rng);
  const WorkloadProfile compute = SampleWorkload(WorkloadArchetype::kComputeBound, rng);
  const Placement one = PlaceOn(intel, {0}, 24, true);
  const Placement four = PlaceOn(intel, {0, 1, 2, 3}, 24, false);
  const double lat_ratio =
      sim.Evaluate(latency, one).throughput_ops / sim.Evaluate(latency, four).throughput_ops;
  const double cpu_ratio =
      sim.Evaluate(compute, one).throughput_ops / sim.Evaluate(compute, four).throughput_ops;
  EXPECT_GT(lat_ratio, 1.1);            // latency-bound prefers one node
  EXPECT_NEAR(cpu_ratio, 1.0, 0.35);    // compute-bound roughly indifferent
}

TEST(Synth, DeterministicPerSeedAndValidRanges) {
  Rng rng1(75);
  Rng rng2(75);
  const auto a = SampleTrainingWorkloads(30, rng1);
  const auto b = SampleTrainingWorkloads(30, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].mem_intensity, b[i].mem_intensity);
    EXPECT_GE(a[i].mem_intensity, 0.0);
    EXPECT_LE(a[i].mem_intensity, 1.0);
    EXPECT_GT(a[i].smt_combined, 1.0);
    EXPECT_GE(a[i].comm_intensity, 0.0);
    EXPECT_LE(a[i].comm_intensity, 1.0);
    EXPECT_GE(a[i].l2_locality, 0.0);
    EXPECT_LE(a[i].l2_locality, 1.0);
  }
}

}  // namespace
}  // namespace numaplace
