// Tests for the ModelRegistry: (machine, vcpus) keyed model lookup, text
// round-trips through the registry, and the per-container prediction cache.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/model/registry.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        sim_(topo_, 0.01, 3),
        pipeline_(ips_, sim_, /*baseline_id=*/1, /*seed=*/23) {
    PerfModelConfig config;
    config.forest.num_trees = 40;
    config.runs_per_workload = 2;
    Rng rng(7);
    model_ = pipeline_.TrainPerf(SampleTrainingWorkloads(24, rng), 1, 8, config);
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel sim_;
  ModelPipeline pipeline_;
  TrainedPerfModel model_;
};

TEST_F(RegistryTest, RegisterAndLookup) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Has(topo_.name(), 16));
  registry.Register(topo_.name(), 16, model_);
  EXPECT_TRUE(registry.Has(topo_.name(), 16));
  EXPECT_FALSE(registry.Has(topo_.name(), 24));
  EXPECT_FALSE(registry.Has("other-machine", 16));
  EXPECT_EQ(registry.NumModels(), 1u);
  const TrainedPerfModel& stored = registry.Get(topo_.name(), 16);
  EXPECT_EQ(stored.input_a, model_.input_a);
  EXPECT_EQ(stored.input_b, model_.input_b);
  EXPECT_THROW(registry.Get(topo_.name(), 24), std::logic_error);
}

TEST_F(RegistryTest, DuplicateRegistrationIsRejected) {
  ModelRegistry registry;
  registry.Register(topo_.name(), 16, model_);
  EXPECT_THROW(registry.Register(topo_.name(), 16, model_), std::logic_error);
  // A different size is a different key.
  registry.Register(topo_.name(), 32, model_);
  EXPECT_EQ(registry.NumModels(), 2u);
}

TEST_F(RegistryTest, SaveLoadRoundTripThroughRegistry) {
  ModelRegistry source;
  source.Register(topo_.name(), 16, model_);
  std::stringstream buffer;
  source.SaveTextTo(topo_.name(), 16, buffer);

  ModelRegistry loaded;
  loaded.RegisterFromText(topo_.name(), 16, buffer);
  const TrainedPerfModel& restored = loaded.Get(topo_.name(), 16);
  EXPECT_EQ(restored.input_a, model_.input_a);
  EXPECT_EQ(restored.input_b, model_.input_b);
  EXPECT_EQ(restored.baseline_id, model_.baseline_id);
  EXPECT_EQ(restored.placement_ids, model_.placement_ids);

  // The restored forest must predict identically, not just structurally.
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const double perf_a = rng.NextDouble(0.5, 2.0) * 1e6;
    const double perf_b = rng.NextDouble(0.5, 2.0) * 1e6;
    EXPECT_EQ(model_.Predict(perf_a, perf_b), restored.Predict(perf_a, perf_b));
  }
}

TEST_F(RegistryTest, PredictionCacheStoresAndForgets) {
  ModelRegistry registry;
  registry.Register(topo_.name(), 16, model_);
  EXPECT_EQ(registry.FindPrediction(7), nullptr);

  const CachedPrediction& entry = registry.Predict(7, topo_.name(), 16, 1.5e6, 1.8e6);
  EXPECT_DOUBLE_EQ(entry.perf_a, 1.5e6);
  EXPECT_DOUBLE_EQ(entry.perf_b, 1.8e6);
  EXPECT_EQ(entry.input_a, model_.input_a);
  EXPECT_EQ(entry.input_b, model_.input_b);
  EXPECT_EQ(entry.predicted_relative, model_.Predict(1.5e6, 1.8e6));
  EXPECT_EQ(registry.NumCachedPredictions(), 1u);

  const CachedPrediction* found = registry.FindPrediction(7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->predicted_relative, entry.predicted_relative);

  // Probes are paid once per container: double caching is a bug.
  EXPECT_THROW(registry.Predict(7, topo_.name(), 16, 1.5e6, 1.8e6), std::logic_error);

  registry.Forget(7);
  EXPECT_EQ(registry.FindPrediction(7), nullptr);
  EXPECT_NO_THROW(registry.Predict(7, topo_.name(), 16, 1.5e6, 1.8e6));
}

TEST_F(RegistryTest, PredictOrGetReturnsTheCacheWithoutRepredicting) {
  ModelRegistry registry;
  registry.Register(topo_.name(), 16, model_);

  // First call behaves exactly like Predict.
  const CachedPrediction& fresh = registry.PredictOrGet(7, topo_.name(), 16, 1.5e6, 1.8e6);
  EXPECT_DOUBLE_EQ(fresh.perf_a, 1.5e6);
  EXPECT_EQ(registry.NumCachedPredictions(), 1u);

  // A repeat — as a re-placement pass might issue — returns the cached entry
  // untouched even with different (ignored) probe measurements, where
  // Predict() would CHECK-fail on the duplicate id.
  const CachedPrediction& again = registry.PredictOrGet(7, topo_.name(), 16, 9.9e6, 9.9e6);
  EXPECT_EQ(&again, &fresh);
  EXPECT_DOUBLE_EQ(again.perf_a, 1.5e6);
  EXPECT_EQ(registry.NumCachedPredictions(), 1u);
  EXPECT_THROW(registry.Predict(7, topo_.name(), 16, 1.5e6, 1.8e6), std::logic_error);

  // Forget() restores the fresh-probe path (the Forget()-first contract).
  registry.Forget(7);
  const CachedPrediction& after = registry.PredictOrGet(7, topo_.name(), 16, 2.0e6, 2.2e6);
  EXPECT_DOUBLE_EQ(after.perf_a, 2.0e6);
}

TEST_F(RegistryTest, PredictWithoutModelIsRejected) {
  ModelRegistry registry;
  EXPECT_THROW(registry.Predict(1, topo_.name(), 16, 1.0, 1.0), std::logic_error);
}

// Satellite guard: the measurement cache in the pipeline is keyed by
// workload name, so dataset building must reject duplicates outright.
TEST_F(RegistryTest, DatasetBuildingRejectsDuplicateWorkloadNames) {
  Rng rng(3);
  std::vector<WorkloadProfile> workloads = SampleTrainingWorkloads(6, rng);
  PerfModelConfig config;
  config.runs_per_workload = 1;
  EXPECT_NO_THROW(pipeline_.BuildPerfDataset(workloads, 1, 8, config));
  workloads[3].name = workloads[0].name;  // same name, different profile
  EXPECT_THROW(pipeline_.BuildPerfDataset(workloads, 1, 8, config), std::logic_error);
}

}  // namespace
}  // namespace numaplace
