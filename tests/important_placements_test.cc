// The paper's headline structural results (§4): 13 important placements on
// the AMD system with 16 vCPUs, 7 on the Intel system with 24 vCPUs, and the
// specific Pareto relationships the paper walks through.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/topology/machines.h"

namespace numaplace {
namespace {

TEST(AmdImportantPlacements, ThirteenTotalWithPaperComposition) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);

  // "For our AMD system we have 13 of them: two 8-node placements (one
  //  sharing L2 caches and one not), three 2-node placements ... and eight
  //  4-node placements (half sharing L2 caches, half not)."
  EXPECT_EQ(set.placements.size(), 13u);

  std::map<int, int> by_l3;
  for (const auto& p : set.placements) {
    by_l3[p.l3_score]++;
  }
  EXPECT_EQ(by_l3[2], 3);
  EXPECT_EQ(by_l3[4], 8);
  EXPECT_EQ(by_l3[8], 2);

  int four_node_sharing = 0;
  int four_node_not = 0;
  for (const auto& p : set.placements) {
    if (p.l3_score == 4) {
      (p.shares_l2 ? four_node_sharing : four_node_not)++;
    }
  }
  EXPECT_EQ(four_node_sharing, 4);
  EXPECT_EQ(four_node_not, 4);

  // 2-node placements can only use the shared-L2 configuration (L2 score 8).
  for (const auto& p : set.placements) {
    if (p.l3_score == 2) {
      EXPECT_EQ(p.l2_score, 8);
      EXPECT_TRUE(p.shares_l2);
    }
  }

  // 8-node: one sharing L2 (score 8), one not (score 16).
  std::set<int> eight_node_l2;
  for (const auto& p : set.placements) {
    if (p.l3_score == 8) {
      eight_node_l2.insert(p.l2_score);
    }
  }
  EXPECT_EQ(eight_node_l2, (std::set<int>{8, 16}));
}

TEST(AmdImportantPlacements, PaperParetoWalkthrough) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);

  // {2,3,4,5} is the best 4-node placement...
  double best_ic = -1.0;
  NodeSet best_nodes;
  for (const auto& p : set.placements) {
    if (p.l3_score == 4 && p.interconnect_gbps > best_ic) {
      best_ic = p.interconnect_gbps;
      best_nodes = p.nodes;
    }
  }
  EXPECT_EQ(best_nodes, (NodeSet{2, 3, 4, 5}));

  // ...therefore {0,1,6,7} is also an important placement (its packing
  // companion), and {0,2,4,6}/{1,3,5,7} are kept while {0,1,4,5}/{2,3,6,7}
  // are removed.
  std::set<NodeSet> four_node_sets;
  for (const auto& p : set.placements) {
    if (p.l3_score == 4) {
      four_node_sets.insert(p.nodes);
    }
  }
  EXPECT_TRUE(four_node_sets.count(NodeSet{0, 1, 6, 7}));
  EXPECT_TRUE(four_node_sets.count(NodeSet{0, 2, 4, 6}));
  EXPECT_TRUE(four_node_sets.count(NodeSet{1, 3, 5, 7}));
  EXPECT_FALSE(four_node_sets.count(NodeSet{0, 1, 4, 5}));
  EXPECT_FALSE(four_node_sets.count(NodeSet{2, 3, 6, 7}));
  EXPECT_EQ(four_node_sets.size(), 4u);  // four interconnect classes

  // Nodes (0,5) and (3,6) are two hops apart (the paper's packing example).
  EXPECT_EQ(amd.HopDistance(0, 5), 2);
  EXPECT_EQ(amd.HopDistance(3, 6), 2);

  // The 8-node placement's interconnect score is 35 GB/s (score 35000 in the
  // paper's MB/s units), and the example score vectors of §4 hold:
  // [16, 8, 35000] without SMT-style sharing, [8, 8, 35000] with.
  for (const auto& p : set.placements) {
    if (p.l3_score == 8) {
      EXPECT_NEAR(p.interconnect_gbps, 35.0, 1e-9);
    }
  }
}

TEST(AmdImportantPlacements, TwoNodeClassesAreBestSecondBestAndCompanion) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);

  std::vector<double> two_node_ic;
  for (const auto& p : set.placements) {
    if (p.l3_score == 2) {
      two_node_ic.push_back(p.interconnect_gbps);
    }
  }
  std::sort(two_node_ic.rbegin(), two_node_ic.rend());
  ASSERT_EQ(two_node_ic.size(), 3u);
  EXPECT_NEAR(two_node_ic[0], 3.52, 1e-9);  // best pair {2,3}
  EXPECT_NEAR(two_node_ic[1], 3.51, 1e-9);  // second-best pair {4,5}
  EXPECT_NEAR(two_node_ic[2], 3.50, 1e-9);  // companion pairs {0,1}/{6,7}
}

TEST(IntelImportantPlacements, SevenTotalWithPaperComposition) {
  const Topology intel = IntelXeonE74830v3();
  // The Intel system's interconnect is symmetric; the paper uses only the
  // L2/SMT and L3 concerns there.
  EXPECT_FALSE(InterconnectIsAsymmetric(intel));
  const ImportantPlacementSet set = GenerateImportantPlacements(intel, 24, false);

  // "With 24 virtual cores per container, it has seven important placements:
  //  a one node placement sharing L2 caches, two 2-node placements, two
  //  3-node placements, and two 4-node placements."
  EXPECT_EQ(set.placements.size(), 7u);
  std::map<int, int> by_l3;
  for (const auto& p : set.placements) {
    by_l3[p.l3_score]++;
  }
  EXPECT_EQ(by_l3[1], 1);
  EXPECT_EQ(by_l3[2], 2);
  EXPECT_EQ(by_l3[3], 2);
  EXPECT_EQ(by_l3[4], 2);

  // The single-node placement must share L2 (all 24 threads on 12 cores).
  for (const auto& p : set.placements) {
    if (p.l3_score == 1) {
      EXPECT_TRUE(p.shares_l2);
      EXPECT_EQ(p.l2_score, 12);
    }
  }
}

TEST(ImportantPlacements, AmdScoreVectorExampleFromPaper) {
  // "for a 16-vCPU container in an eight-node placement without SMT the
  //  score vector for the AMD system is [16, 8, 35000] ... with SMT
  //  [8, 8, 35000]".
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
  bool saw_unshared = false;
  bool saw_shared = false;
  for (const auto& p : set.placements) {
    if (p.l3_score != 8) {
      continue;
    }
    const Placement realized = Realize(p, amd, 16);
    const ScoreVector score = ScoreOf(realized, amd);
    EXPECT_EQ(score.l3_score, 8);
    EXPECT_NEAR(score.interconnect_gbps, 35.0, 1e-9);
    if (p.l2_score == 16) {
      EXPECT_EQ(score.l2_score, 16);
      saw_unshared = true;
    } else {
      EXPECT_EQ(score.l2_score, 8);
      saw_shared = true;
    }
  }
  EXPECT_TRUE(saw_unshared);
  EXPECT_TRUE(saw_shared);
}

TEST(ImportantPlacements, RealizedPlacementsMatchTheirAdvertisedScores) {
  for (bool amd : {true, false}) {
    const Topology topo = amd ? AmdOpteron6272() : IntelXeonE74830v3();
    const int vcpus = amd ? 16 : 24;
    const ImportantPlacementSet set = GenerateImportantPlacements(topo, vcpus, amd);
    for (const auto& p : set.placements) {
      const Placement realized = Realize(p, topo, vcpus);
      EXPECT_TRUE(realized.IsOneVcpuPerHwThread()) << p.ToString();
      const ScoreVector score = ScoreOf(realized, topo);
      EXPECT_EQ(score.l2_score, p.l2_score) << p.ToString();
      EXPECT_EQ(score.l3_score, p.l3_score) << p.ToString();
      EXPECT_NEAR(score.interconnect_gbps, p.interconnect_gbps, 1e-9) << p.ToString();
    }
  }
}

}  // namespace
}  // namespace numaplace
