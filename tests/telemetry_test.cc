// Tests for the telemetry layer (src/telemetry): histogram bucketing and
// percentile edge cases, registry instrument identity, the MetricsObserver
// event tap (queue-wait clocking, availability transitions, per-reason move
// counters), Chrome-trace span serialization, and end-to-end determinism —
// the same fleet + trace + flags must produce byte-identical trace and
// snapshot artifacts, and attaching the observers must not perturb the
// replay's report or stats.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/fleet.h"
#include "src/core/important.h"
#include "src/scheduler/events.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/metrics_observer.h"
#include "src/telemetry/snapshots.h"
#include "src/telemetry/spans.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

TEST(Histogram, UpperInclusiveBucketing) {
  Histogram h({0.0, 1.0, 5.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 boundaries + overflow
  h.Observe(0.0);   // lands in [.., 0]
  h.Observe(0.5);   // (0, 1]
  h.Observe(1.0);   // exactly on the boundary: upper-inclusive, still (0, 1]
  h.Observe(5.0);   // (1, 5]
  h.Observe(7.0);   // overflow
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_EQ(h.bucket_counts()[1], 2);
  EXPECT_EQ(h.bucket_counts()[2], 1);
  EXPECT_EQ(h.bucket_counts()[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.7);
}

TEST(Histogram, EmptyBoundariesDegenerateToSummaryStats) {
  Histogram h({});
  ASSERT_EQ(h.bucket_counts().size(), 1u);  // overflow only
  h.Observe(3.0);
  h.Observe(9.0);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 9.0);
}

TEST(Histogram, RejectsNonIncreasingBoundaries) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty({0.0, 1.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  Histogram h({0.0, 1.0, 5.0});
  h.Observe(0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.25);  // single sample: every p hits it
  h.Observe(4.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.25);    // exact min
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 4.0);   // exact max
  EXPECT_THROW(h.Percentile(-1.0), std::logic_error);
  EXPECT_THROW(h.Percentile(100.5), std::logic_error);
}

TEST(Histogram, ZeroHeavyDistributionKeepsZeroMedian) {
  // The exact-zero leading bucket: when most observations are 0, the median
  // must be 0, not smeared into the first non-zero bucket.
  Histogram h({0.0, 1.0, 5.0});
  for (int i = 0; i < 6; ++i) {
    h.Observe(0.0);
  }
  h.Observe(1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  // The tail interpolates inside the (0, 1] bucket and p=100 is exact max.
  EXPECT_GT(h.Percentile(99.0), 0.0);
  EXPECT_LE(h.Percentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1.0);
}

TEST(Histogram, PercentileClampsToObservedRange) {
  Histogram h({0.0, 10.0, 100.0});
  h.Observe(2.0);
  h.Observe(3.0);
  h.Observe(4.0);
  for (double p : {1.0, 50.0, 99.0}) {
    const double estimate = h.Percentile(p);
    EXPECT_GE(estimate, 2.0) << p;
    EXPECT_LE(estimate, 4.0) << p;
  }
}

TEST(MetricsRegistry, InstrumentIdentityAndLookup) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("a.count");
  counter.Increment();
  EXPECT_EQ(&registry.GetCounter("a.count"), &counter);
  EXPECT_EQ(registry.GetCounter("a.count").value(), 1);

  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);

  registry.GetHistogram("a.hist", {0.0, 1.0});
  EXPECT_NE(registry.FindHistogram("a.hist"), nullptr);
  // Re-registration with matching boundaries returns the same instrument;
  // mismatched boundaries are a programming error.
  EXPECT_NO_THROW(registry.GetHistogram("a.hist", {0.0, 1.0}));
  EXPECT_THROW(registry.GetHistogram("a.hist", {0.0, 2.0}), std::logic_error);

  registry.GetGauge("z.gauge");
  registry.GetGauge("b.gauge");
  const std::vector<std::string> gauges = registry.GaugeNames();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0], "b.gauge");
  EXPECT_EQ(gauges[1], "z.gauge");
}

ScheduleOutcome Outcome(int container_id, bool admitted, double decision_seconds = 0.0) {
  ScheduleOutcome outcome;
  outcome.container_id = container_id;
  outcome.admitted = admitted;
  outcome.placement_id = admitted ? 3 : 0;
  outcome.decision_seconds = decision_seconds;
  return outcome;
}

TEST(MetricsObserver, QueueWaitClockAndDepth) {
  MetricsRegistry registry;
  OutcomeRecorder downstream;
  MetricsObserver metrics(&registry, &downstream, /*up_machines=*/2);

  metrics.OnQueued(0, Outcome(7, false), 10.0);
  metrics.OnQueued(0, Outcome(7, false), 25.0);  // requeue must not reset the clock
  metrics.OnQueued(0, Outcome(8, false), 12.0);
  EXPECT_EQ(metrics.queue_depth(), 2);
  EXPECT_DOUBLE_EQ(registry.GetGauge("fleet.queue_depth").value(), 2.0);

  metrics.OnAdmission(1, Outcome(7, true, 4.0), 30.0);
  const Histogram& wait = *registry.FindHistogram("fleet.queue_wait_seconds");
  EXPECT_EQ(wait.count(), 1);
  EXPECT_DOUBLE_EQ(wait.max(), 20.0);  // 30 - 10, not 30 - 25
  EXPECT_EQ(metrics.queue_depth(), 1);

  metrics.OnDeparture(kNoMachine, 8, 40.0);  // departed while still waiting
  EXPECT_EQ(metrics.queue_depth(), 0);
  EXPECT_EQ(wait.count(), 1);  // never admitted -> no wait sample
  EXPECT_EQ(registry.GetCounter("fleet.departures").value(), 1);

  // The tap forwarded everything unchanged: 3 queueings + 1 admission.
  EXPECT_EQ(downstream.outcomes.size(), 4u);
  ASSERT_EQ(downstream.departures.size(), 1u);
  EXPECT_EQ(downstream.departures[0].second, 8);
}

TEST(MetricsObserver, AvailabilityTransitionsMoveTheGaugeOnce) {
  MetricsRegistry registry;
  MetricsObserver metrics(&registry, nullptr, /*up_machines=*/3);
  const Gauge& up = *registry.FindGauge("fleet.up_machines");
  EXPECT_DOUBLE_EQ(up.value(), 3.0);

  metrics.OnMachineAvailability(0, MachineAvailability::kDraining, 100.0);
  EXPECT_DOUBLE_EQ(up.value(), 2.0);
  // Draining machine then fails: still one machine down, not two.
  metrics.OnMachineAvailability(0, MachineAvailability::kFailed, 110.0);
  EXPECT_DOUBLE_EQ(up.value(), 2.0);
  metrics.OnMachineAvailability(0, MachineAvailability::kUp, 200.0);
  EXPECT_DOUBLE_EQ(up.value(), 3.0);
  EXPECT_EQ(registry.GetCounter("fleet.machines_draining").value(), 1);
  EXPECT_EQ(registry.GetCounter("fleet.machines_failed").value(), 1);
  EXPECT_EQ(registry.GetCounter("fleet.machines_rejoined").value(), 1);
}

TEST(MetricsObserver, MovesEvacuationsAndSearches) {
  MetricsRegistry registry;
  MetricsObserver metrics(&registry, nullptr, /*up_machines=*/2);

  RebalanceMove move;
  move.container_id = 5;
  move.from_machine = 0;
  move.to_machine = 1;
  move.reason = RebalanceMove::Reason::kDrain;
  move.move_seconds = 12.0;
  metrics.OnMove(move, 50.0);
  EXPECT_EQ(registry.GetCounter("fleet.moves").value(), 1);
  EXPECT_EQ(registry.GetCounter("fleet.moves.drain").value(), 1);
  EXPECT_EQ(registry.GetCounter("fleet.moves.rebalance").value(), 0);

  EvacuationReport evacuation;
  evacuation.machine_id = 0;
  evacuation.last_landing_seconds = 42.0;
  metrics.OnEvacuation(evacuation, 60.0);
  EXPECT_EQ(registry.GetCounter("fleet.evacuations").value(), 1);
  EXPECT_DOUBLE_EQ(
      registry.FindHistogram("fleet.evacuation_latency_seconds")->max(), 42.0);

  TargetSearchStats search;
  search.kind = TargetSearchStats::Kind::kEvacuation;
  search.previews = 8;
  search.host_seconds = 1e-4;
  metrics.OnTargetSearch(search, 60.0);
  EXPECT_EQ(registry.FindHistogram("fleet.search_previews")->count(), 1);
  EXPECT_DOUBLE_EQ(registry.FindHistogram("fleet.search_previews")->max(), 8.0);
}

TEST(SpanCollector, SerializationIsDeterministicAndStructured) {
  SpanCollector spans;
  spans.OnQueued(kNoMachine, Outcome(4, false), 10.0);
  spans.OnAdmission(1, Outcome(4, true), 30.0);
  RebalanceMove move;
  move.container_id = 4;
  move.from_machine = 1;
  move.to_machine = 0;
  spans.OnMove(move, 45.0);
  spans.OnAdmission(0, Outcome(4, true), 45.0);
  spans.OnDeparture(0, 4, 80.0);
  spans.OnMachineAvailability(1, MachineAvailability::kFailed, 90.0);
  spans.Finish(100.0);

  std::ostringstream first;
  std::ostringstream second;
  spans.WriteChromeTrace(first);
  spans.WriteChromeTrace(second);
  EXPECT_EQ(first.str(), second.str());

  const std::string trace = first.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"queued\""), std::string::npos);
  EXPECT_NE(trace.find("running #3"), std::string::npos);
  EXPECT_NE(trace.find("move:rebalance"), std::string::npos);
  EXPECT_NE(trace.find("availability:failed"), std::string::npos);
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  // pid 0 is the fleet-wide wait pool (machine id kNoMachine = -1).
  EXPECT_NE(trace.find("\"fleet\""), std::string::npos);
  EXPECT_GT(spans.event_count(), 0u);
}

// --- End-to-end: a small first-fit fleet, no trained model needed. ---

FleetScheduler MakeFleet(int num_machines) {
  MachineSpec spec(AmdOpteron6272());
  spec.scheduler.policy = "first-fit";
  spec.scheduler.baseline_id = 1;
  std::vector<MachineSpec> specs(static_cast<size_t>(num_machines), spec);
  FleetConfig config;
  config.dispatch = "least-loaded";
  FleetScheduler fleet(std::move(specs), config);
  fleet.ProvidePlacements(AmdOpteron6272().name(),
                          GenerateImportantPlacements(AmdOpteron6272(), 16, true));
  return fleet;
}

EventStream MakeTrace() {
  TraceConfig config;
  config.num_containers = 6;
  config.vcpus = 16;
  config.goal_fraction = 1.0;
  config.mean_interarrival_seconds = 150.0;
  config.mean_lifetime_seconds = 400.0;
  Rng rng(11);
  EventStream trace = GenerateFleetTrace(config, 2, rng);
  const double end = trace.EndTime();
  return InjectMachineEvents(std::move(trace), {FleetEvent::Fail(0.5 * end, 0),
                                                FleetEvent::Rejoin(0.75 * end, 0)});
}

struct Artifacts {
  std::string trace_json;
  std::string metrics_jsonl;
  FleetReport report;
  FleetStats stats;
};

Artifacts RunInstrumented() {
  FleetScheduler fleet = MakeFleet(2);
  const EventStream trace = MakeTrace();
  MetricsRegistry registry;
  MetricsObserver metrics(&registry, nullptr, fleet.NumMachines());
  SpanCollector spans(&metrics);
  std::ostringstream snapshot_stream;
  FleetSnapshotRecorder snapshots(fleet, 120.0, snapshot_stream);
  Artifacts artifacts;
  artifacts.report = fleet.ReplayWithEvaluation(trace, &spans, &snapshots);
  artifacts.stats = fleet.stats();
  spans.Finish(trace.EndTime());
  std::ostringstream trace_stream;
  spans.WriteChromeTrace(trace_stream);
  artifacts.trace_json = trace_stream.str();
  artifacts.metrics_jsonl = snapshot_stream.str();
  EXPECT_GT(snapshots.samples(), 0);
  return artifacts;
}

TEST(TelemetryEndToEnd, ArtifactsAreByteIdenticalAcrossRuns) {
  const Artifacts first = RunInstrumented();
  const Artifacts second = RunInstrumented();
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.metrics_jsonl, second.metrics_jsonl);
  EXPECT_FALSE(first.trace_json.empty());
  EXPECT_FALSE(first.metrics_jsonl.empty());
}

TEST(TelemetryEndToEnd, SnapshotTimesAreMonotoneMultiplesOfTheInterval) {
  const Artifacts artifacts = RunInstrumented();
  std::istringstream lines(artifacts.metrics_jsonl);
  std::string line;
  double expected = 120.0;
  int count = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"t\":";
    ASSERT_EQ(line.rfind(prefix, 0), 0u) << line;
    EXPECT_EQ(std::stod(line.substr(prefix.size())), expected) << line;
    expected += 120.0;
    ++count;
  }
  EXPECT_GT(count, 1);
}

TEST(TelemetryEndToEnd, ObserversDoNotPerturbTheReplay) {
  FleetScheduler bare = MakeFleet(2);
  const EventStream trace = MakeTrace();
  const FleetReport bare_report = bare.ReplayWithEvaluation(trace);
  const FleetStats bare_stats = bare.stats();

  const Artifacts instrumented = RunInstrumented();
  EXPECT_EQ(instrumented.report.goal_attainment, bare_report.goal_attainment);
  EXPECT_EQ(instrumented.report.mean_queue_wait_seconds,
            bare_report.mean_queue_wait_seconds);
  EXPECT_EQ(instrumented.report.decisions, bare_report.decisions);
  EXPECT_EQ(instrumented.stats.queue_admissions, bare_stats.queue_admissions);
  EXPECT_EQ(instrumented.stats.rebalance_moves, bare_stats.rebalance_moves);
  EXPECT_EQ(instrumented.stats.evacuation_moves, bare_stats.evacuation_moves);
  EXPECT_EQ(instrumented.stats.dispatch_previews, bare_stats.dispatch_previews);
}

}  // namespace
}  // namespace numaplace
