// Tests for the failure-domain subsystem (src/cluster/domains.h): the
// machine -> rack -> zone topology and its validation, the expansion of
// domain-scoped fail/drain/rejoin events into canonical per-machine
// events — including same-instant ordering and the fail-vs-rejoin
// tie-break — and the per-service-group DomainOccupancy view behind
// spread-aware dispatch.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/cluster/domains.h"
#include "src/cluster/fleet.h"
#include "src/topology/machines.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

TEST(FailureDomainTopology, UniformLayoutIsContiguousAndDeterministic) {
  // 8 machines over 4 racks: contiguous pairs; 2 zones of 2 racks each.
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(8, 4, 2);
  EXPECT_EQ(topo.NumMachines(), 8);
  EXPECT_EQ(topo.NumRacks(), 4);
  EXPECT_EQ(topo.NumZones(), 2);
  EXPECT_EQ(topo.NumDomains(DomainScope::kMachine), 8);
  EXPECT_EQ(topo.NumDomains(DomainScope::kRack), 4);
  EXPECT_EQ(topo.NumDomains(DomainScope::kZone), 2);
  for (int m = 0; m < 8; ++m) {
    EXPECT_EQ(topo.RackOf(m), m / 2) << "machine " << m;
    EXPECT_EQ(topo.ZoneOf(m), m / 4) << "machine " << m;
    EXPECT_EQ(topo.DomainOf(m, DomainScope::kMachine), m);
    EXPECT_EQ(topo.DomainOf(m, DomainScope::kRack), m / 2);
    EXPECT_EQ(topo.DomainOf(m, DomainScope::kZone), m / 4);
  }
  EXPECT_EQ(topo.MachinesInRack(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.MachinesInZone(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.MachinesIn(DomainScope::kMachine, 5), (std::vector<int>{5}));
  EXPECT_EQ(topo.ZoneOfRack(3), 1);
}

TEST(FailureDomainTopology, DefaultFanOutIsRoundSqrt) {
  // round(sqrt(16)) = 4 racks of 4, round(sqrt(4)) = 2 zones of 2 racks.
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(16);
  EXPECT_EQ(topo.NumRacks(), 4);
  EXPECT_EQ(topo.NumZones(), 2);
  EXPECT_EQ(topo.MachinesInRack(0), (std::vector<int>{0, 1, 2, 3}));
  // A one-machine fleet degenerates to one rack in one zone.
  const FailureDomainTopology one = FailureDomainTopology::Uniform(1);
  EXPECT_EQ(one.NumRacks(), 1);
  EXPECT_EQ(one.NumZones(), 1);
  EXPECT_EQ(one.RackOf(0), 0);
}

TEST(FailureDomainTopology, UniformRejectsImpossibleFanOuts) {
  EXPECT_THROW(FailureDomainTopology::Uniform(0), std::logic_error);
  EXPECT_THROW(FailureDomainTopology::Uniform(4, 5), std::logic_error);
  EXPECT_THROW(FailureDomainTopology::Uniform(4, -1), std::logic_error);
  EXPECT_THROW(FailureDomainTopology::Uniform(8, 2, 3), std::logic_error);
}

TEST(FailureDomainTopology, FromAssignmentsValidatesDensity) {
  // A valid non-contiguous layout: racks interleave across machine ids.
  const FailureDomainTopology topo =
      FailureDomainTopology::FromAssignments({1, 0, 1, 0}, {0, 0});
  EXPECT_EQ(topo.NumRacks(), 2);
  EXPECT_EQ(topo.NumZones(), 1);
  EXPECT_EQ(topo.MachinesInRack(0), (std::vector<int>{1, 3}));
  EXPECT_EQ(topo.MachinesInRack(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(topo.MachinesInZone(0), (std::vector<int>{0, 1, 2, 3}));

  // No machines at all.
  EXPECT_THROW(FailureDomainTopology::FromAssignments({}, {0}), std::logic_error);
  // Rack id outside the declared rack list.
  EXPECT_THROW(FailureDomainTopology::FromAssignments({0, 2}, {0, 0}),
               std::logic_error);
  EXPECT_THROW(FailureDomainTopology::FromAssignments({0, -1}, {0}),
               std::logic_error);
  // Rack 1 declared but empty: ids must be dense.
  EXPECT_THROW(FailureDomainTopology::FromAssignments({0, 0}, {0, 0}),
               std::logic_error);
  // Zone ids likewise: zone 0 unused while zone 1 is not.
  EXPECT_THROW(FailureDomainTopology::FromAssignments({0, 1}, {1, 1}),
               std::logic_error);
  EXPECT_THROW(FailureDomainTopology::FromAssignments({0, 1}, {0, -1}),
               std::logic_error);
}

TEST(DomainEvents, ExpansionIsDeterministicAndOrderPreserving) {
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(8, 4, 2);
  // Mixed input: a zone drain, a bare machine fail, a rack rejoin — all at
  // distinct times; each domain event is replaced in place by its member
  // machines ascending, with input order preserved.
  const std::vector<FleetEvent> expanded = ExpandDomainEvents(
      topo, {FleetEvent::DrainDomain(10.0, DomainScope::kZone, 1),
             FleetEvent::Fail(20.0, 1),
             FleetEvent::RejoinDomain(30.0, DomainScope::kRack, 0)});
  ASSERT_EQ(expanded.size(), 7u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(expanded[i].kind(), FleetEventKind::kMachineDrain);
    EXPECT_EQ(expanded[i].machine_id(), 4 + i);
    EXPECT_EQ(expanded[i].time_seconds, 10.0);
    EXPECT_EQ(expanded[i].domain_scope(), DomainScope::kMachine);
  }
  EXPECT_EQ(expanded[4].kind(), FleetEventKind::kMachineFail);
  EXPECT_EQ(expanded[4].machine_id(), 1);
  EXPECT_EQ(expanded[5].machine_id(), 0);
  EXPECT_EQ(expanded[6].machine_id(), 1);
  EXPECT_EQ(expanded[5].kind(), FleetEventKind::kMachineRejoin);

  // Domain indices outside the topology and container events are rejected.
  EXPECT_THROW(
      ExpandDomainEvents(topo, {FleetEvent::FailDomain(0.0, DomainScope::kRack, 4)}),
      std::logic_error);
  EXPECT_THROW(
      ExpandDomainEvents(topo, {FleetEvent::FailDomain(0.0, DomainScope::kZone, -1)}),
      std::logic_error);
  EXPECT_THROW(ExpandDomainEvents(topo, {FleetEvent::Departure(0.0, 1)}),
               std::logic_error);
}

TEST(DomainEvents, SameInstantDomainEventsKeepCanonicalOrder) {
  // Two same-instant domain events of different kinds plus a same-instant
  // single-machine rejoin: the injected stream must order the expanded
  // events by kind (fail < drain < rejoin) regardless of input order, and
  // within one (time, kind) keep the expansion's machine order.
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(8, 4, 2);
  EventStream stream = InjectMachineEvents(
      EventStream{}, {FleetEvent::RejoinDomain(5.0, DomainScope::kRack, 3),
                      FleetEvent::DrainDomain(5.0, DomainScope::kRack, 1),
                      FleetEvent::FailDomain(5.0, DomainScope::kZone, 0),
                      FleetEvent::Rejoin(5.0, 2)},
      topo);
  ASSERT_EQ(stream.size(), 9u);
  // Zone 0's fail (machines 0..3) first, then rack 1's drain (2, 3), then
  // the rejoins: rack 3's members (6, 7) precede the bare rejoin of 2
  // because the rack event came first in the input.
  const std::vector<FleetEventKind> kinds = {
      FleetEventKind::kMachineFail,   FleetEventKind::kMachineFail,
      FleetEventKind::kMachineFail,   FleetEventKind::kMachineFail,
      FleetEventKind::kMachineDrain,  FleetEventKind::kMachineDrain,
      FleetEventKind::kMachineRejoin, FleetEventKind::kMachineRejoin,
      FleetEventKind::kMachineRejoin};
  const std::vector<int> machines = {0, 1, 2, 3, 2, 3, 6, 7, 2};
  for (size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(stream[i].kind(), kinds[i]) << "event " << i;
    EXPECT_EQ(stream[i].machine_id(), machines[i]) << "event " << i;
    EXPECT_EQ(stream[i].time_seconds, 5.0);
  }
}

TEST(DomainEvents, SameInstantRackFailAndMachineRejoinSettleAsFailThenRejoin) {
  // The documented tie-break: a rack fail and a member machine's rejoin at
  // the same instant replay fail-first (kind 0 before kind 2), so the
  // machine ends the instant up — and empty, because the fail evicted it.
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(4, 2);
  std::vector<MachineSpec> specs;
  for (int m = 0; m < 4; ++m) {
    MachineSpec spec(AmdOpteron6272());
    spec.scheduler.policy = "first-fit";
    specs.push_back(std::move(spec));
  }
  FleetConfig config;
  config.domain_racks = 2;
  FleetScheduler fleet(std::move(specs), config);

  ContainerRequest request;
  request.id = 1;
  request.workload = PaperWorkload("gcc");
  request.workload.name += "#1";
  request.vcpus = 16;
  request.goal_fraction = 0.5;
  EventStream trace;
  ContainerArrival arrival;
  arrival.container_id = request.id;
  arrival.workload = request.workload;
  arrival.vcpus = request.vcpus;
  arrival.goal_fraction = request.goal_fraction;
  trace.Append(FleetEvent::Arrival(1.0, arrival));
  trace = InjectMachineEvents(std::move(trace),
                              {FleetEvent::FailDomain(10.0, DomainScope::kRack, 0),
                               FleetEvent::Rejoin(10.0, 0)},
                              topo);
  // Stream order at t=10: fail 0, fail 1, rejoin 0.
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[1].kind(), FleetEventKind::kMachineFail);
  EXPECT_EQ(trace[3].kind(), FleetEventKind::kMachineRejoin);

  fleet.Replay(trace);
  EXPECT_EQ(fleet.availability(0), MachineAvailability::kUp);
  EXPECT_EQ(fleet.availability(1), MachineAvailability::kFailed);
  EXPECT_TRUE(fleet.machine(0).RunningIds().empty());
  // The failover re-dispatched the container onto the surviving rack.
  const int home = fleet.MachineOf(1);
  EXPECT_TRUE(home == 2 || home == 3) << home;
}

TEST(DomainEvents, FlatInjectorRejectsDomainScopedEvents) {
  // The 2-arg InjectMachineEvents carries no topology: a rack/zone event
  // must be expanded first, and slipping one through is a logic error.
  EXPECT_THROW(InjectMachineEvents(
                   EventStream{}, {FleetEvent::FailDomain(1.0, DomainScope::kRack, 0)}),
               std::logic_error);
  EXPECT_THROW(
      InjectMachineEvents(EventStream{},
                          {FleetEvent::DrainDomain(1.0, DomainScope::kZone, 0)}),
      std::logic_error);
}

TEST(ServiceGroups, GroupKeyIsTheNameBeforeTheHash) {
  EXPECT_EQ(ServiceGroupOf("gcc#12"), "gcc");
  EXPECT_EQ(ServiceGroupOf("gcc"), "gcc");
  EXPECT_EQ(ServiceGroupOf("a#b#c"), "a");
  EXPECT_EQ(ServiceGroupOf("#7"), "");
}

TEST(DomainOccupancy, CountsMovesAndRemovalsPerDomain) {
  const FailureDomainTopology topo = FailureDomainTopology::Uniform(8, 4, 2);
  DomainOccupancy occupancy;
  EXPECT_FALSE(occupancy.bound());
  occupancy.Bind(&topo);
  ASSERT_TRUE(occupancy.bound());

  occupancy.Add(1, "gcc", 0);  // rack 0, zone 0
  occupancy.Add(2, "gcc", 1);  // rack 0, zone 0
  occupancy.Add(3, "gcc", 4);  // rack 2, zone 1
  occupancy.Add(4, "lbm", 4);
  EXPECT_EQ(occupancy.Replicas("gcc"), 3);
  EXPECT_EQ(occupancy.Replicas("lbm"), 1);
  EXPECT_EQ(occupancy.Replicas("unknown"), 0);
  EXPECT_EQ(occupancy.Groups(), (std::vector<std::string>{"gcc", "lbm"}));
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 0), 2);
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 2), 1);
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kZone, 0), 2);
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kMachine, 1), 1);
  EXPECT_EQ(occupancy.CountIn("unknown", DomainScope::kRack, 0), 0);
  EXPECT_EQ(occupancy.DomainsToLoss("gcc", DomainScope::kRack), 2);
  EXPECT_EQ(occupancy.DomainsToLoss("gcc", DomainScope::kZone), 2);
  EXPECT_EQ(occupancy.DomainsToLoss("gcc", DomainScope::kMachine), 3);
  EXPECT_EQ(occupancy.DomainsToLoss("lbm", DomainScope::kRack), 1);
  EXPECT_EQ(occupancy.DomainsToLoss("unknown", DomainScope::kRack), 0);

  // A move re-domiciles the replica; counts follow.
  occupancy.Move(2, 6);  // rack 0 -> rack 3, zone 0 -> zone 1
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 0), 1);
  EXPECT_EQ(occupancy.CountIn("gcc", DomainScope::kRack, 3), 1);
  EXPECT_EQ(occupancy.DomainsToLoss("gcc", DomainScope::kRack), 3);

  occupancy.Remove(1);
  occupancy.Remove(3);
  occupancy.Remove(2);
  EXPECT_EQ(occupancy.Replicas("gcc"), 0);
  EXPECT_EQ(occupancy.DomainsToLoss("gcc", DomainScope::kRack), 0);
  EXPECT_EQ(occupancy.Groups(), (std::vector<std::string>{"lbm"}));
  // Removing an untracked id is a no-op (fleet-wide waiters never landed).
  occupancy.Remove(99);
  // Double-adding a tracked id is a bug in the caller.
  EXPECT_THROW(occupancy.Add(4, "lbm", 0), std::logic_error);
}

}  // namespace
}  // namespace numaplace
