// Round-trip tests for model persistence: trees, forests and the full
// TrainedPerfModel (train offline, load in the scheduler).
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/important.h"
#include "src/ml/forest.h"
#include "src/ml/tree.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

Dataset MakeData(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0.0, 10.0);
    const double y = rng.NextDouble(0.0, 1.0);
    d.features.push_back({x, y});
    d.targets.push_back({2.0 * x + y, x - 3.0 * y});
  }
  return d;
}

TEST(TreeSerialize, RoundTripPreservesPredictions) {
  const Dataset data = MakeData(200, 1);
  RegressionTree tree;
  Rng rng(2);
  tree.Fit(data, TreeParams{}, rng);

  std::stringstream buffer;
  tree.SerializeTo(buffer);
  RegressionTree loaded;
  loaded.DeserializeFrom(buffer);

  EXPECT_EQ(loaded.NumNodes(), tree.NumNodes());
  Rng qrng(3);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> q = {qrng.NextDouble(0.0, 10.0), qrng.NextDouble()};
    EXPECT_EQ(tree.Predict(q), loaded.Predict(q));
  }
}

TEST(TreeSerialize, RejectsGarbageAndTruncation) {
  RegressionTree tree;
  std::stringstream garbage("not-a-tree 1 2");
  EXPECT_THROW(tree.DeserializeFrom(garbage), std::logic_error);

  const Dataset data = MakeData(50, 4);
  RegressionTree fitted;
  Rng rng(5);
  fitted.Fit(data, TreeParams{}, rng);
  std::stringstream buffer;
  fitted.SerializeTo(buffer);
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  RegressionTree broken;
  EXPECT_THROW(broken.DeserializeFrom(truncated), std::logic_error);
}

TEST(TreeSerialize, UnfittedTreeCannotSerialize) {
  RegressionTree tree;
  std::stringstream buffer;
  EXPECT_THROW(tree.SerializeTo(buffer), std::logic_error);
}

TEST(ForestSerialize, RoundTripPreservesPredictions) {
  const Dataset data = MakeData(300, 6);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 30;
  params.seed = 7;
  forest.Fit(data, params);

  std::stringstream buffer;
  forest.SerializeTo(buffer);
  RandomForest loaded;
  loaded.DeserializeFrom(buffer);

  EXPECT_EQ(loaded.NumTrees(), forest.NumTrees());
  Rng qrng(8);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> q = {qrng.NextDouble(0.0, 10.0), qrng.NextDouble()};
    EXPECT_EQ(forest.Predict(q), loaded.Predict(q));
  }
}

TEST(ForestSerialize, OobUnavailableAfterLoad) {
  const Dataset data = MakeData(100, 9);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 10;
  params.seed = 10;
  forest.Fit(data, params);
  std::stringstream buffer;
  forest.SerializeTo(buffer);
  RandomForest loaded;
  loaded.DeserializeFrom(buffer);
  EXPECT_THROW(loaded.OutOfBagMae(data), std::logic_error);
}

TEST(ModelSerialize, FullModelRoundTrip) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd, 0.015, 99);
  ModelPipeline pipeline(ips, sim, 1, 7);
  Rng rng(11);
  PerfModelConfig config;
  config.forest.num_trees = 30;
  config.runs_per_workload = 2;
  const TrainedPerfModel model =
      pipeline.TrainPerf(SampleTrainingWorkloads(24, rng), 1, 13, config);

  std::stringstream buffer;
  model.SaveText(buffer);
  const TrainedPerfModel loaded = TrainedPerfModel::LoadText(buffer);

  EXPECT_EQ(loaded.input_a, model.input_a);
  EXPECT_EQ(loaded.input_b, model.input_b);
  EXPECT_EQ(loaded.baseline_id, model.baseline_id);
  EXPECT_DOUBLE_EQ(loaded.ipc_scale, model.ipc_scale);
  EXPECT_EQ(loaded.placement_ids, model.placement_ids);

  // Identical predictions for unseen workloads.
  for (const char* name : {"gcc", "WTbtree", "streamcluster"}) {
    const WorkloadProfile& w = PaperWorkload(name);
    const double pa = pipeline.MeasureAbsolute(w, model.input_a, 777);
    const double pb = pipeline.MeasureAbsolute(w, model.input_b, 777);
    EXPECT_EQ(model.Predict(pa, pb), loaded.Predict(pa, pb)) << name;
  }
}

TEST(ModelSerialize, RejectsWrongFormatTag) {
  std::stringstream buffer("some-other-format-v9\n1 2 3\n");
  EXPECT_THROW(TrainedPerfModel::LoadText(buffer), std::logic_error);
}

}  // namespace
}  // namespace numaplace
