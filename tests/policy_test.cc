// Tests for the §7 packing policies: instance counts, goal violations, and
// the orderings the paper reports in Fig. 5.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/policy/policies.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        solo_(topo_, 0.01, 3),
        multi_(topo_, 0.01, 3),
        pipeline_(ips_, solo_, /*baseline_id=*/1, /*seed=*/11) {
    ctx_.topo = &topo_;
    ctx_.ips = &ips_;
    ctx_.solo_sim = &solo_;
    ctx_.multi_sim = &multi_;
    ctx_.vcpus = 16;
    ctx_.baseline_id = 1;

    PerfModelConfig config;
    config.forest.num_trees = 60;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    Rng rng(21);
    model_ = pipeline_.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel solo_;
  MultiTenantModel multi_;
  ModelPipeline pipeline_;
  TrainedPerfModel model_;
  PackingContext ctx_;
};

TEST_F(PolicyTest, BaselineThroughputIsDeterministicAndPositive) {
  const WorkloadProfile w = PaperWorkload("gcc");
  const double a = BaselineThroughput(ctx_, w);
  const double b = BaselineThroughput(ctx_, w);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST_F(PolicyTest, ConservativePacksExactlyOne) {
  ConservativePolicy policy(ctx_);
  Rng rng(31);
  const PolicyResult r = policy.Evaluate(PaperWorkload("gcc"), 1.0, rng, 5);
  EXPECT_EQ(r.instances, 1);
  EXPECT_GE(r.violation_pct, 0.0);
}

TEST_F(PolicyTest, ConservativeCanViolateForFewNodeLovers) {
  // The paper's surprise: the whole-machine Conservative policy can violate
  // targets, because unpinned Linux maps vCPUs unevenly onto shared
  // resources. WTbtree wants few nodes; spread over the machine at an
  // ambitious goal it falls short (the non-zero Conservative stars in
  // Fig. 5a).
  ConservativePolicy policy(ctx_);
  Rng rng(32);
  const PolicyResult r = policy.Evaluate(PaperWorkload("WTbtree"), 1.1, rng, 10);
  EXPECT_GT(r.violation_pct, 1.0);
}

TEST_F(PolicyTest, AggressivePacksMaximumInstances) {
  AggressivePolicy policy(ctx_);
  Rng rng(33);
  const PolicyResult r = policy.Evaluate(PaperWorkload("streamcluster"), 1.0, rng, 3);
  EXPECT_EQ(r.instances, 4);  // 64 cores / 16 vCPUs
}

TEST_F(PolicyTest, AggressiveViolatesWorstForContendedWorkloads) {
  AggressivePolicy aggressive(ctx_);
  SmartAggressivePolicy smart(ctx_);
  Rng rng(34);
  const WorkloadProfile w = PaperWorkload("WTbtree");
  const PolicyResult ra = aggressive.Evaluate(w, 1.0, rng, 5);
  const PolicyResult rs = smart.Evaluate(w, 1.0, rng, 1);
  // Smart pins to the best minimum node sets; plain Aggressive shares nodes
  // and unbalances -> worse violations (Fig. 5 ordering).
  EXPECT_GT(ra.violation_pct, rs.violation_pct);
}

TEST_F(PolicyTest, SmartAggressiveUsesBestMinimumSets) {
  SmartAggressivePolicy policy(ctx_);
  Rng rng(35);
  const PolicyResult r = policy.Evaluate(PaperWorkload("gcc"), 0.9, rng, 1);
  EXPECT_EQ(r.instances, 4);  // four 2-node slots on the AMD machine
}

TEST_F(PolicyTest, MlMeetsGoalsWithNearZeroViolation) {
  MlPolicy policy(ctx_, &model_);
  Rng rng(36);
  for (const char* name : {"gcc", "kmeans", "wc", "WTbtree"}) {
    const PolicyResult r = policy.Evaluate(PaperWorkload(name), 0.9, rng, 1);
    EXPECT_LT(r.violation_pct, 5.0) << name;
    EXPECT_GE(r.instances, 1) << name;
  }
}

TEST_F(PolicyTest, MlPacksMoreThanConservativeAtModestGoals) {
  MlPolicy ml(ctx_, &model_);
  Rng rng(37);
  int ml_instances = 0;
  for (const char* name : {"gcc", "swaptions", "kmeans"}) {
    ml_instances += ml.Evaluate(PaperWorkload(name), 0.9, rng, 1).instances;
  }
  EXPECT_GT(ml_instances, 3);  // conservative would give exactly 3
}

TEST_F(PolicyTest, MlAllocatesMoreNodesForHarderGoals) {
  MlPolicy policy(ctx_, &model_);
  const WorkloadProfile w = PaperWorkload("streamcluster");  // scales with nodes
  const ImportantPlacement& easy = policy.ChoosePlacement(w, 0.9);
  const ImportantPlacement& hard = policy.ChoosePlacement(w, 1.1);
  EXPECT_GE(hard.l3_score, easy.l3_score);
}

TEST_F(PolicyTest, DisjointRealizationsCoverDisjointNodeSets) {
  for (const ImportantPlacement& ip : ips_.placements) {
    const std::vector<Placement> slots = DisjointRealizations(ctx_, ip);
    EXPECT_GE(slots.size(), 1u) << ip.ToString();
    std::set<int> seen_nodes;
    for (const Placement& slot : slots) {
      for (int node : slot.NodesUsed(topo_)) {
        EXPECT_TRUE(seen_nodes.insert(node).second) << "node reuse in " << ip.ToString();
      }
    }
  }
}

TEST_F(PolicyTest, TwoNodeClassYieldsFourSlots) {
  const auto two_node = ips_.WithL3Score(2);
  ASSERT_FALSE(two_node.empty());
  EXPECT_EQ(DisjointRealizations(ctx_, two_node[0]).size(), 4u);
  const auto eight_node = ips_.WithL3Score(8);
  ASSERT_FALSE(eight_node.empty());
  EXPECT_EQ(DisjointRealizations(ctx_, eight_node[0]).size(), 1u);
}

TEST_F(PolicyTest, ViolationIsZeroWhenGoalTrivial) {
  // A goal of 10% of baseline is met by any placement.
  MlPolicy ml(ctx_, &model_);
  SmartAggressivePolicy smart(ctx_);
  Rng rng(38);
  EXPECT_NEAR(ml.Evaluate(PaperWorkload("gcc"), 0.1, rng, 1).violation_pct, 0.0, 1e-9);
  EXPECT_NEAR(smart.Evaluate(PaperWorkload("gcc"), 0.1, rng, 1).violation_pct, 0.0, 1e-9);
}

TEST_F(PolicyTest, IntelMachinePoliciesWork) {
  // Same battery on the Intel box: 4 instances of 24 vCPUs.
  const Topology intel = IntelXeonE74830v3();
  const ImportantPlacementSet ips = GenerateImportantPlacements(intel, 24, false);
  PerformanceModel solo(intel, 0.01, 5);
  MultiTenantModel multi(intel, 0.01, 5);
  PackingContext ctx;
  ctx.topo = &intel;
  ctx.ips = &ips;
  ctx.solo_sim = &solo;
  ctx.multi_sim = &multi;
  ctx.vcpus = 24;
  ctx.baseline_id = 2;

  Rng rng(39);
  AggressivePolicy aggressive(ctx);
  EXPECT_EQ(aggressive.Evaluate(PaperWorkload("wc"), 1.0, rng, 2).instances, 4);
  SmartAggressivePolicy smart(ctx);
  EXPECT_EQ(smart.Evaluate(PaperWorkload("wc"), 1.0, rng, 1).instances, 4);  // 1 node each

  ModelPipeline pipeline(ips, solo, 2, 17);
  PerfModelConfig config;
  config.forest.num_trees = 60;
  config.cv_trees = 25;
  config.runs_per_workload = 3;
  Rng trng(40);
  const TrainedPerfModel model = pipeline.TrainPerfAuto(SampleTrainingWorkloads(48, trng), config);
  MlPolicy ml(ctx, &model);
  const PolicyResult r = ml.Evaluate(PaperWorkload("wc"), 0.9, rng, 1);
  EXPECT_GE(r.instances, 1);
  EXPECT_LT(r.violation_pct, 10.0);
}

}  // namespace
}  // namespace numaplace
