// Catalog integrity: the 18 paper workloads carry Table 2's memory data and
// physically sensible execution profiles. Plus trace-generator guarantees
// the fleet layer builds on: determinism under a fixed seed and disjoint
// container-id namespaces via TraceConfig::first_container_id.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/workloads/profile.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

TEST(Catalog, HasAllEighteenPaperWorkloads) {
  const auto catalog = PaperWorkloads();
  EXPECT_EQ(catalog.size(), 18u);
  const std::set<std::string> expected = {
      "BLAST",       "canneal",       "fluidanimate", "freqmine",      "gcc",
      "kmeans",      "pca",           "postgres-tpch", "postgres-tpcc", "spark-cc",
      "spark-pr-lj", "streamcluster", "swaptions",    "ft.C",          "dc.B",
      "wc",          "wr",            "WTbtree"};
  std::set<std::string> actual;
  for (const auto& w : catalog) {
    actual.insert(w.name);
  }
  EXPECT_EQ(actual, expected);
}

TEST(Catalog, Table2MemoryTotalsMatchPaper) {
  // Table 2's "Memory (GB)" column: anon + page cache.
  const std::vector<std::pair<std::string, double>> table2 = {
      {"BLAST", 18.5},        {"canneal", 1.1},       {"fluidanimate", 0.7},
      {"freqmine", 1.3},      {"gcc", 1.4},           {"kmeans", 7.2},
      {"pca", 12.0},          {"postgres-tpch", 26.8}, {"postgres-tpcc", 37.7},
      {"spark-cc", 17.0},     {"spark-pr-lj", 17.1},  {"streamcluster", 0.1},
      {"swaptions", 0.01},    {"ft.C", 5.0},          {"dc.B", 27.3},
      {"wc", 15.4},           {"wr", 17.1},           {"WTbtree", 36.3}};
  for (const auto& [name, gb] : table2) {
    EXPECT_NEAR(PaperWorkload(name).TotalMemoryGb(), gb, 0.01) << name;
  }
}

TEST(Catalog, PageCacheSharesMatchPaperPercentages) {
  // §7: page-cache migration is 93% of fast-migration time for BLAST, 75%
  // for TPC-C, 62% for TPC-H; time is proportional to bytes in our model.
  const auto share = [](const WorkloadProfile& w) {
    return w.page_cache_gb / w.TotalMemoryGb();
  };
  EXPECT_NEAR(share(PaperWorkload("BLAST")), 0.93, 0.01);
  EXPECT_NEAR(share(PaperWorkload("postgres-tpcc")), 0.75, 0.01);
  EXPECT_NEAR(share(PaperWorkload("postgres-tpch")), 0.62, 0.01);
}

TEST(Catalog, ProfilesWithinPhysicalRanges) {
  for (const auto& w : PaperWorkloads()) {
    EXPECT_GE(w.mem_intensity, 0.0) << w.name;
    EXPECT_LE(w.mem_intensity, 1.0) << w.name;
    EXPECT_GT(w.ws_private_mb, 0.0) << w.name;
    EXPECT_GE(w.ws_shared_mb, 0.0) << w.name;
    EXPECT_GE(w.comm_intensity, 0.0) << w.name;
    EXPECT_LE(w.comm_intensity, 1.0) << w.name;
    EXPECT_GT(w.smt_combined, 1.0) << w.name;
    EXPECT_LE(w.smt_combined, 2.3) << w.name;
    EXPECT_GE(w.cache_coop, 0.0) << w.name;
    EXPECT_LE(w.cache_coop, 1.0) << w.name;
    EXPECT_GE(w.l2_locality, 0.0) << w.name;
    EXPECT_LE(w.l2_locality, 1.0) << w.name;
    EXPECT_GE(w.barrier_sensitivity, 0.0) << w.name;
    EXPECT_LE(w.barrier_sensitivity, 1.0) << w.name;
    EXPECT_GE(w.num_tasks, 1) << w.name;
    EXPECT_GE(w.num_processes, 1) << w.name;
    EXPECT_LE(w.num_processes, w.num_tasks) << w.name;
    EXPECT_GE(w.avg_page_mappings, 1.0) << w.name;
    EXPECT_GE(w.thp_fraction, 0.0) << w.name;
    EXPECT_LE(w.thp_fraction, 1.0) << w.name;
  }
}

TEST(Catalog, SemanticSpotChecks) {
  // WiredTiger is the paper's latency-sensitivity example; kmeans the
  // SMT-friendly outlier; streamcluster the bandwidth hog; TPC-C the
  // many-process migration pathology.
  EXPECT_GT(PaperWorkload("WTbtree").comm_intensity, 0.6);
  EXPECT_GT(PaperWorkload("kmeans").smt_combined, 2.0);
  EXPECT_GT(PaperWorkload("streamcluster").bw_per_thread_gbps, 3.0);
  EXPECT_GT(PaperWorkload("postgres-tpcc").num_processes, 100);
  EXPECT_LT(PaperWorkload("swaptions").mem_intensity, 0.1);
}

TEST(Catalog, LookupThrowsOnUnknownName) {
  EXPECT_THROW(PaperWorkload("no-such-workload"), std::logic_error);
}

TEST(Synth, RoundRobinCoversAllArchetypes) {
  Rng rng(42);
  const auto batch = SampleTrainingWorkloads(12, rng);
  std::set<std::string> prefixes;
  for (const auto& w : batch) {
    prefixes.insert(w.name.substr(0, w.name.rfind('-')));
  }
  EXPECT_EQ(prefixes.size(), AllArchetypes().size());
}

TEST(Synth, NamesAreUnique) {
  Rng rng(43);
  const auto batch = SampleTrainingWorkloads(60, rng);
  std::set<std::string> names;
  for (const auto& w : batch) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
  }
}

TEST(Synth, ArchetypeNamesAreStable) {
  for (WorkloadArchetype a : AllArchetypes()) {
    EXPECT_FALSE(ArchetypeName(a).empty());
  }
}

bool SameEvents(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_seconds != b[i].time_seconds || a[i].type != b[i].type ||
        a[i].container_id != b[i].container_id ||
        a[i].workload.name != b[i].workload.name ||
        a[i].latency_sensitive != b[i].latency_sensitive) {
      return false;
    }
  }
  return true;
}

TEST(TraceGenerator, DeterministicUnderAFixedSeed) {
  TraceConfig config;
  config.num_containers = 25;
  Rng rng_a(77);
  Rng rng_b(77);
  const std::vector<TraceEvent> first = GeneratePoissonTrace(config, rng_a);
  const std::vector<TraceEvent> second = GeneratePoissonTrace(config, rng_b);
  EXPECT_TRUE(SameEvents(first, second));

  // A different seed produces a genuinely different stream.
  Rng rng_c(78);
  EXPECT_FALSE(SameEvents(first, GeneratePoissonTrace(config, rng_c)));
}

TEST(TraceGenerator, FirstContainerIdCarvesDisjointNamespaces) {
  // Two traces meant to share one registry/scheduler: the second starts its
  // ids where the first ends.
  TraceConfig low;
  low.num_containers = 15;
  low.first_container_id = 1;
  TraceConfig high = low;
  high.first_container_id = low.first_container_id + low.num_containers;

  Rng rng(5);
  const std::vector<TraceEvent> first = GeneratePoissonTrace(low, rng);
  const std::vector<TraceEvent> second = GeneratePoissonTrace(high, rng);
  std::set<int> ids;
  for (const std::vector<TraceEvent>* trace : {&first, &second}) {
    for (const TraceEvent& event : *trace) {
      if (event.type == TraceEventType::kArrival) {
        EXPECT_TRUE(ids.insert(event.container_id).second)
            << "container id " << event.container_id << " in both traces";
      }
    }
  }
  EXPECT_EQ(ids.size(), 30u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 30);

  // Merging is legal exactly because the namespaces are disjoint...
  const std::vector<TraceEvent> merged = MergeTraces({first, second});
  EXPECT_EQ(merged.size(), 60u);
  double last = 0.0;
  for (const TraceEvent& event : merged) {
    EXPECT_GE(event.time_seconds, last);
    last = event.time_seconds;
  }
  // ...and a collision is rejected rather than silently aliasing containers.
  EXPECT_THROW(MergeTraces({first, first}), std::logic_error);
}

TEST(TraceGenerator, FleetTraceIsMergedDisjointAndDeterministic) {
  TraceConfig base;
  base.num_containers = 8;
  base.first_container_id = 100;
  Rng rng_a(21);
  const std::vector<TraceEvent> fleet = GenerateFleetTrace(base, 3, rng_a);
  ASSERT_EQ(fleet.size(), 48u);

  std::set<int> ids;
  double last = 0.0;
  for (const TraceEvent& event : fleet) {
    EXPECT_GE(event.time_seconds, last);
    last = event.time_seconds;
    if (event.type == TraceEventType::kArrival) {
      EXPECT_TRUE(ids.insert(event.container_id).second);
    }
  }
  EXPECT_EQ(ids.size(), 24u);
  EXPECT_EQ(*ids.begin(), 100);   // stream 0 starts at base.first_container_id
  EXPECT_EQ(*ids.rbegin(), 123);  // stream 2 ends at 100 + 3*8 - 1

  Rng rng_b(21);
  EXPECT_TRUE(SameEvents(fleet, GenerateFleetTrace(base, 3, rng_b)));
}

}  // namespace
}  // namespace numaplace
