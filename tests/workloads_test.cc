// Catalog integrity: the 18 paper workloads carry Table 2's memory data and
// physically sensible execution profiles. Plus trace-generator guarantees
// the fleet layer builds on: determinism under a fixed seed and disjoint
// container-id namespaces via TraceConfig::first_container_id.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/workloads/profile.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

TEST(Catalog, HasAllEighteenPaperWorkloads) {
  const auto catalog = PaperWorkloads();
  EXPECT_EQ(catalog.size(), 18u);
  const std::set<std::string> expected = {
      "BLAST",       "canneal",       "fluidanimate", "freqmine",      "gcc",
      "kmeans",      "pca",           "postgres-tpch", "postgres-tpcc", "spark-cc",
      "spark-pr-lj", "streamcluster", "swaptions",    "ft.C",          "dc.B",
      "wc",          "wr",            "WTbtree"};
  std::set<std::string> actual;
  for (const auto& w : catalog) {
    actual.insert(w.name);
  }
  EXPECT_EQ(actual, expected);
}

TEST(Catalog, Table2MemoryTotalsMatchPaper) {
  // Table 2's "Memory (GB)" column: anon + page cache.
  const std::vector<std::pair<std::string, double>> table2 = {
      {"BLAST", 18.5},        {"canneal", 1.1},       {"fluidanimate", 0.7},
      {"freqmine", 1.3},      {"gcc", 1.4},           {"kmeans", 7.2},
      {"pca", 12.0},          {"postgres-tpch", 26.8}, {"postgres-tpcc", 37.7},
      {"spark-cc", 17.0},     {"spark-pr-lj", 17.1},  {"streamcluster", 0.1},
      {"swaptions", 0.01},    {"ft.C", 5.0},          {"dc.B", 27.3},
      {"wc", 15.4},           {"wr", 17.1},           {"WTbtree", 36.3}};
  for (const auto& [name, gb] : table2) {
    EXPECT_NEAR(PaperWorkload(name).TotalMemoryGb(), gb, 0.01) << name;
  }
}

TEST(Catalog, PageCacheSharesMatchPaperPercentages) {
  // §7: page-cache migration is 93% of fast-migration time for BLAST, 75%
  // for TPC-C, 62% for TPC-H; time is proportional to bytes in our model.
  const auto share = [](const WorkloadProfile& w) {
    return w.page_cache_gb / w.TotalMemoryGb();
  };
  EXPECT_NEAR(share(PaperWorkload("BLAST")), 0.93, 0.01);
  EXPECT_NEAR(share(PaperWorkload("postgres-tpcc")), 0.75, 0.01);
  EXPECT_NEAR(share(PaperWorkload("postgres-tpch")), 0.62, 0.01);
}

TEST(Catalog, ProfilesWithinPhysicalRanges) {
  for (const auto& w : PaperWorkloads()) {
    EXPECT_GE(w.mem_intensity, 0.0) << w.name;
    EXPECT_LE(w.mem_intensity, 1.0) << w.name;
    EXPECT_GT(w.ws_private_mb, 0.0) << w.name;
    EXPECT_GE(w.ws_shared_mb, 0.0) << w.name;
    EXPECT_GE(w.comm_intensity, 0.0) << w.name;
    EXPECT_LE(w.comm_intensity, 1.0) << w.name;
    EXPECT_GT(w.smt_combined, 1.0) << w.name;
    EXPECT_LE(w.smt_combined, 2.3) << w.name;
    EXPECT_GE(w.cache_coop, 0.0) << w.name;
    EXPECT_LE(w.cache_coop, 1.0) << w.name;
    EXPECT_GE(w.l2_locality, 0.0) << w.name;
    EXPECT_LE(w.l2_locality, 1.0) << w.name;
    EXPECT_GE(w.barrier_sensitivity, 0.0) << w.name;
    EXPECT_LE(w.barrier_sensitivity, 1.0) << w.name;
    EXPECT_GE(w.num_tasks, 1) << w.name;
    EXPECT_GE(w.num_processes, 1) << w.name;
    EXPECT_LE(w.num_processes, w.num_tasks) << w.name;
    EXPECT_GE(w.avg_page_mappings, 1.0) << w.name;
    EXPECT_GE(w.thp_fraction, 0.0) << w.name;
    EXPECT_LE(w.thp_fraction, 1.0) << w.name;
  }
}

TEST(Catalog, SemanticSpotChecks) {
  // WiredTiger is the paper's latency-sensitivity example; kmeans the
  // SMT-friendly outlier; streamcluster the bandwidth hog; TPC-C the
  // many-process migration pathology.
  EXPECT_GT(PaperWorkload("WTbtree").comm_intensity, 0.6);
  EXPECT_GT(PaperWorkload("kmeans").smt_combined, 2.0);
  EXPECT_GT(PaperWorkload("streamcluster").bw_per_thread_gbps, 3.0);
  EXPECT_GT(PaperWorkload("postgres-tpcc").num_processes, 100);
  EXPECT_LT(PaperWorkload("swaptions").mem_intensity, 0.1);
}

TEST(Catalog, LookupThrowsOnUnknownName) {
  EXPECT_THROW(PaperWorkload("no-such-workload"), std::logic_error);
}

TEST(Synth, RoundRobinCoversAllArchetypes) {
  Rng rng(42);
  const auto batch = SampleTrainingWorkloads(12, rng);
  std::set<std::string> prefixes;
  for (const auto& w : batch) {
    prefixes.insert(w.name.substr(0, w.name.rfind('-')));
  }
  EXPECT_EQ(prefixes.size(), AllArchetypes().size());
}

TEST(Synth, NamesAreUnique) {
  Rng rng(43);
  const auto batch = SampleTrainingWorkloads(60, rng);
  std::set<std::string> names;
  for (const auto& w : batch) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
  }
}

TEST(Synth, ArchetypeNamesAreStable) {
  for (WorkloadArchetype a : AllArchetypes()) {
    EXPECT_FALSE(ArchetypeName(a).empty());
  }
}

bool SameEvents(const EventStream& a, const EventStream& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_seconds != b[i].time_seconds || a[i].kind() != b[i].kind()) {
      return false;
    }
    if (a[i].IsMachineEvent()) {
      if (a[i].machine_id() != b[i].machine_id()) {
        return false;
      }
      continue;
    }
    if (a[i].container_id() != b[i].container_id()) {
      return false;
    }
    const ContainerArrival* arrival_a = a[i].arrival();
    const ContainerArrival* arrival_b = b[i].arrival();
    if (arrival_a != nullptr &&
        (arrival_a->workload.name != arrival_b->workload.name ||
         arrival_a->latency_sensitive != arrival_b->latency_sensitive)) {
      return false;
    }
  }
  return true;
}

ContainerArrival MakeArrival(int id) {
  ContainerArrival arrival;
  arrival.container_id = id;
  arrival.workload.name = "w#" + std::to_string(id);
  arrival.vcpus = 4;
  return arrival;
}

TEST(TraceGenerator, DeterministicUnderAFixedSeed) {
  TraceConfig config;
  config.num_containers = 25;
  Rng rng_a(77);
  Rng rng_b(77);
  const EventStream first = GeneratePoissonTrace(config, rng_a);
  const EventStream second = GeneratePoissonTrace(config, rng_b);
  EXPECT_TRUE(SameEvents(first, second));

  // A different seed produces a genuinely different stream.
  Rng rng_c(78);
  EXPECT_FALSE(SameEvents(first, GeneratePoissonTrace(config, rng_c)));
}

TEST(TraceGenerator, FirstContainerIdCarvesDisjointNamespaces) {
  // Two traces meant to share one registry/scheduler: the second starts its
  // ids where the first ends.
  TraceConfig low;
  low.num_containers = 15;
  low.first_container_id = 1;
  TraceConfig high = low;
  high.first_container_id = low.first_container_id + low.num_containers;

  Rng rng(5);
  const EventStream first = GeneratePoissonTrace(low, rng);
  const EventStream second = GeneratePoissonTrace(high, rng);
  std::set<int> ids;
  for (const EventStream* trace : {&first, &second}) {
    for (const FleetEvent& event : *trace) {
      if (const ContainerArrival* arrival = event.arrival()) {
        EXPECT_TRUE(ids.insert(arrival->container_id).second)
            << "container id " << arrival->container_id << " in both traces";
      }
    }
  }
  EXPECT_EQ(ids.size(), 30u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 30);

  // Merging is legal exactly because the namespaces are disjoint...
  const EventStream merged = MergeTraces({first, second});
  EXPECT_EQ(merged.size(), 60u);
  double last = 0.0;
  for (const FleetEvent& event : merged) {
    EXPECT_GE(event.time_seconds, last);
    last = event.time_seconds;
  }
  // ...and a collision is rejected rather than silently aliasing containers.
  EXPECT_THROW(MergeTraces({first, first}), std::logic_error);
}

TEST(TraceGenerator, FleetTraceIsMergedDisjointAndDeterministic) {
  TraceConfig base;
  base.num_containers = 8;
  base.first_container_id = 100;
  Rng rng_a(21);
  const EventStream fleet = GenerateFleetTrace(base, 3, rng_a);
  ASSERT_EQ(fleet.size(), 48u);

  std::set<int> ids;
  double last = 0.0;
  for (const FleetEvent& event : fleet) {
    EXPECT_GE(event.time_seconds, last);
    last = event.time_seconds;
    if (const ContainerArrival* arrival = event.arrival()) {
      EXPECT_TRUE(ids.insert(arrival->container_id).second);
    }
  }
  EXPECT_EQ(ids.size(), 24u);
  EXPECT_EQ(*ids.begin(), 100);   // stream 0 starts at base.first_container_id
  EXPECT_EQ(*ids.rbegin(), 123);  // stream 2 ends at 100 + 3*8 - 1

  Rng rng_b(21);
  EXPECT_TRUE(SameEvents(fleet, GenerateFleetTrace(base, 3, rng_b)));
}

TEST(EventStream, CanonicalOrderAtOneInstant) {
  // All five kinds at the same time, appended in reverse canonical order:
  // machine availability settles first (fail, drain, rejoin), then arrivals,
  // then departures.
  EventStream stream;
  stream.Append(FleetEvent::Departure(10.0, 7));
  stream.Append(FleetEvent::Arrival(10.0, MakeArrival(1)));
  stream.Append(FleetEvent::Rejoin(10.0, 2));
  stream.Append(FleetEvent::Drain(10.0, 1));
  stream.Append(FleetEvent::Fail(10.0, 0));
  ASSERT_EQ(stream.size(), 5u);
  EXPECT_EQ(stream[0].kind(), FleetEventKind::kMachineFail);
  EXPECT_EQ(stream[1].kind(), FleetEventKind::kMachineDrain);
  EXPECT_EQ(stream[2].kind(), FleetEventKind::kMachineRejoin);
  EXPECT_EQ(stream[3].kind(), FleetEventKind::kContainerArrival);
  EXPECT_EQ(stream[4].kind(), FleetEventKind::kContainerDeparture);
  EXPECT_EQ(stream.EndTime(), 10.0);
}

TEST(MergeTraces, ArrivalPrecedesDepartureOnTiesAcrossStreams) {
  // Stream a's departure and stream b's arrival collide at t=5: the arrival
  // must come first in the merged stream even though stream a is listed
  // first.
  const EventStream a(std::vector<FleetEvent>{
      FleetEvent::Arrival(1.0, MakeArrival(1)), FleetEvent::Departure(5.0, 1)});
  const EventStream b(std::vector<FleetEvent>{
      FleetEvent::Arrival(5.0, MakeArrival(10)), FleetEvent::Departure(9.0, 10)});
  const EventStream merged = MergeTraces({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].container_id(), 1);
  EXPECT_EQ(merged[0].kind(), FleetEventKind::kContainerArrival);
  EXPECT_EQ(merged[1].container_id(), 10);
  EXPECT_EQ(merged[1].kind(), FleetEventKind::kContainerArrival);
  EXPECT_EQ(merged[2].container_id(), 1);
  EXPECT_EQ(merged[2].kind(), FleetEventKind::kContainerDeparture);
  EXPECT_EQ(merged[3].container_id(), 10);
}

TEST(MergeTraces, StableAcrossStreamsAtEqualTimeAndKind) {
  // Three streams with arrivals at the identical instant: the merge keeps
  // stream order, whichever way the streams are listed.
  const EventStream s1(std::vector<FleetEvent>{FleetEvent::Arrival(3.0, MakeArrival(1))});
  const EventStream s2(std::vector<FleetEvent>{FleetEvent::Arrival(3.0, MakeArrival(2))});
  const EventStream s3(std::vector<FleetEvent>{FleetEvent::Arrival(3.0, MakeArrival(3))});

  const EventStream forward = MergeTraces({s1, s2, s3});
  ASSERT_EQ(forward.size(), 3u);
  EXPECT_EQ(forward[0].container_id(), 1);
  EXPECT_EQ(forward[1].container_id(), 2);
  EXPECT_EQ(forward[2].container_id(), 3);

  const EventStream backward = MergeTraces({s3, s2, s1});
  EXPECT_EQ(backward[0].container_id(), 3);
  EXPECT_EQ(backward[1].container_id(), 2);
  EXPECT_EQ(backward[2].container_id(), 1);
}

TEST(InjectMachineEvents, InterleavesInCanonicalOrder) {
  TraceConfig config;
  config.num_containers = 6;
  Rng rng(3);
  const EventStream trace = GeneratePoissonTrace(config, rng);
  ASSERT_FALSE(trace.empty());

  // Collide a fail with the first arrival's exact timestamp and put a rejoin
  // strictly inside the stream: the fail must precede the same-time arrival,
  // and the whole stream must stay canonically sorted.
  const double first_arrival_time = trace[0].time_seconds;
  const double mid_time = trace.EndTime() * 0.5;
  const EventStream injected = InjectMachineEvents(
      trace, {FleetEvent::Rejoin(mid_time, 0), FleetEvent::Fail(first_arrival_time, 0)});
  ASSERT_EQ(injected.size(), trace.size() + 2);

  EXPECT_EQ(injected[0].kind(), FleetEventKind::kMachineFail);
  EXPECT_EQ(injected[0].time_seconds, first_arrival_time);
  EXPECT_EQ(injected[1].kind(), FleetEventKind::kContainerArrival);

  for (size_t i = 1; i < injected.size(); ++i) {
    EXPECT_FALSE(CanonicalBefore(injected[i], injected[i - 1]))
        << "event " << i << " out of canonical order";
  }
  bool saw_rejoin = false;
  for (const FleetEvent& event : injected) {
    if (event.kind() == FleetEventKind::kMachineRejoin) {
      saw_rejoin = true;
      EXPECT_EQ(event.time_seconds, mid_time);
    }
  }
  EXPECT_TRUE(saw_rejoin);

  // Container events are not machine events; the injector rejects them, as
  // it does negative machine ids.
  EXPECT_THROW(
      InjectMachineEvents(trace, {FleetEvent::Arrival(1.0, MakeArrival(99))}),
      std::logic_error);
  EXPECT_THROW(InjectMachineEvents(trace, {FleetEvent::Fail(1.0, -1)}),
               std::logic_error);
}

}  // namespace
}  // namespace numaplace
