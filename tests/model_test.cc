// Tests for the §5 model pipeline: measurement vectors, dataset
// construction, input-pair search, prediction accuracy, HPE variant, and the
// leave-one-workload-out harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/sim/hpe.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

// Shared fixture: AMD machine, important placements, noisy simulator.
class ModelPipelineTest : public ::testing::Test {
 protected:
  ModelPipelineTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        sim_(topo_, 0.015, 99),
        pipeline_(ips_, sim_, /*baseline_id=*/1, /*seed=*/7) {}

  static PerfModelConfig FastConfig() {
    PerfModelConfig config;
    config.forest.num_trees = 50;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    return config;
  }

  std::vector<WorkloadProfile> TrainingSet(int count) {
    Rng rng(5);
    return SampleTrainingWorkloads(count, rng);
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel sim_;
  ModelPipeline pipeline_;
};

TEST_F(ModelPipelineTest, MeasureVectorIsRelativeToBaseline) {
  const PerformanceVector v = pipeline_.MeasureVector(PaperWorkload("gcc"), 0);
  ASSERT_EQ(v.relative.size(), ips_.placements.size());
  // Entry for the baseline placement (id 1 = index 0 in our ordering).
  size_t baseline_index = 0;
  for (size_t i = 0; i < ips_.placements.size(); ++i) {
    if (ips_.placements[i].id == 1) {
      baseline_index = i;
    }
  }
  EXPECT_DOUBLE_EQ(v.relative[baseline_index], 1.0);
  for (double r : v.relative) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 10.0);
  }
}

TEST_F(ModelPipelineTest, MeasurementCacheIsConsistent) {
  const WorkloadProfile w = PaperWorkload("kmeans");
  const double first = pipeline_.MeasureAbsolute(w, 3, 5);
  const double second = pipeline_.MeasureAbsolute(w, 3, 5);
  EXPECT_DOUBLE_EQ(first, second);
  // Different run index gives a different noisy measurement.
  EXPECT_NE(pipeline_.MeasureAbsolute(w, 3, 6), first);
}

TEST_F(ModelPipelineTest, DatasetShape) {
  const auto train = TrainingSet(12);
  const PerfModelConfig config = FastConfig();
  const Dataset d = pipeline_.BuildPerfDataset(train, 1, 8, config);
  EXPECT_EQ(d.NumSamples(), train.size() * static_cast<size_t>(config.runs_per_workload));
  // Features: the two normalized measurements plus their ratio.
  EXPECT_EQ(d.NumFeatures(), 3u);
  EXPECT_EQ(d.NumTargets(), ips_.placements.size());
}

TEST_F(ModelPipelineTest, TrainedModelPredictsHeldOutWorkloads) {
  const auto train = TrainingSet(48);
  const TrainedPerfModel model = pipeline_.TrainPerfAuto(train, FastConfig());
  EXPECT_NE(model.input_a, model.input_b);

  // Accuracy on the full paper catalog, none of which was trained on.
  double total_mae = 0.0;
  int count = 0;
  for (const WorkloadProfile& w : PaperWorkloads()) {
    const double pa = pipeline_.MeasureAbsolute(w, model.input_a, 500);
    const double pb = pipeline_.MeasureAbsolute(w, model.input_b, 500);
    const std::vector<double> pred = model.Predict(pa, pb);
    const std::vector<double> actual = pipeline_.MeasureVector(w, 500).relative;
    total_mae += MeanAbsoluteError(actual, pred);
    ++count;
  }
  // The paper reports 4.4% mean error on AMD; grant the smaller test-sized
  // training set a slack budget.
  EXPECT_LT(total_mae / count, 0.12);
}

TEST_F(ModelPipelineTest, PredictionsRespondToProbeMeasurements) {
  const auto train = TrainingSet(24);
  const TrainedPerfModel model = pipeline_.TrainPerf(train, 1, 8, FastConfig());
  // A container that speeds up strongly from input A to input B must get a
  // higher predicted value at B's index than one that slows down.
  size_t index_b = 0;
  for (size_t i = 0; i < model.placement_ids.size(); ++i) {
    if (model.placement_ids[i] == model.input_b) {
      index_b = i;
    }
  }
  const double unit = 1.0 / model.ipc_scale;  // 1.0 in feature space
  const std::vector<double> rising = model.Predict(0.3 * unit, 0.6 * unit);
  const std::vector<double> falling = model.Predict(0.3 * unit, 0.2 * unit);
  EXPECT_GT(rising[index_b], falling[index_b]);
}

TEST_F(ModelPipelineTest, CrossValidationDiscriminatesInputPairs) {
  const auto train = TrainingSet(24);
  const PerfModelConfig config = FastConfig();
  // Any valid pair produces a finite score; scores differ across pairs
  // (otherwise the auto-search would be pointless).
  const double e18 = pipeline_.CrossValidatedMae(train, 1, 8, config);
  const double e23 = pipeline_.CrossValidatedMae(train, 2, 3, config);
  EXPECT_GT(e18, 0.0);
  EXPECT_GT(e23, 0.0);
  EXPECT_NE(e18, e23);
}

TEST_F(ModelPipelineTest, HpeModelTrainsAndSelectsInformativeCounters) {
  const auto train = TrainingSet(30);
  HpeSampler sampler(sim_, 25, 13);
  const TrainedHpeModel model =
      pipeline_.TrainHpe(train, sampler, /*sample_placement_id=*/1, 6, FastConfig());
  EXPECT_FALSE(model.selected_counters.empty());
  EXPECT_LE(model.selected_counters.size(), 6u);
  // Selected counters should be mostly informative ones (first 12), not the
  // pure-noise tail.
  int informative = 0;
  for (size_t idx : model.selected_counters) {
    if (idx < static_cast<size_t>(HpeSampler::kNumInformativeCounters)) {
      ++informative;
    }
  }
  EXPECT_GE(informative * 2, static_cast<int>(model.selected_counters.size()));

  const std::vector<double> counters =
      pipeline_.SampleHpe(sampler, PaperWorkload("gcc"), 1);
  const std::vector<double> pred = model.Predict(counters);
  EXPECT_EQ(pred.size(), ips_.placements.size());
}

TEST_F(ModelPipelineTest, PerfModelBeatsHpeModelAcrossTheCatalog) {
  // The paper's central §6 claim: across the benchmark suite, the model fed
  // two performance observations is noticeably more accurate than the model
  // fed single-placement HPEs — even on the AMD system, where HPEs "produced
  // good results overall".
  const auto train = TrainingSet(60);
  const PerfModelConfig config = FastConfig();
  const TrainedPerfModel perf_model = pipeline_.TrainPerfAuto(train, config);
  HpeSampler sampler(sim_, 25, 13);
  const TrainedHpeModel hpe_model = pipeline_.TrainHpe(train, sampler, 1, 6, config);

  double perf_mae_sum = 0.0;
  double hpe_mae_sum = 0.0;
  int count = 0;
  for (const WorkloadProfile& w : PaperWorkloads()) {
    const std::vector<double> actual = pipeline_.MeasureVector(w, 600).relative;
    const double pa = pipeline_.MeasureAbsolute(w, perf_model.input_a, 600);
    const double pb = pipeline_.MeasureAbsolute(w, perf_model.input_b, 600);
    perf_mae_sum += MeanAbsoluteError(actual, perf_model.Predict(pa, pb));
    const std::vector<double> counters = pipeline_.SampleHpe(sampler, w, 1);
    hpe_mae_sum += MeanAbsoluteError(actual, hpe_model.Predict(counters));
    ++count;
  }
  EXPECT_LT(perf_mae_sum / count, hpe_mae_sum / count);
  // And the perf-observation model is in the paper's accuracy ballpark.
  EXPECT_LT(perf_mae_sum / count, 0.12);
}

TEST_F(ModelPipelineTest, WorkloadFamilyGrouping) {
  EXPECT_EQ(WorkloadFamily("spark-cc"), "spark");
  EXPECT_EQ(WorkloadFamily("spark-pr-lj"), "spark");
  EXPECT_EQ(WorkloadFamily("postgres-tpch"), "postgres");
  EXPECT_EQ(WorkloadFamily("gcc"), "gcc");
}

TEST_F(ModelPipelineTest, LeaveOneOutProducesARowPerWorkload) {
  // Small configuration to keep the test quick; the full run lives in the
  // Fig. 4 benchmark.
  std::vector<WorkloadProfile> catalog;
  for (const char* name : {"gcc", "swaptions", "WTbtree", "streamcluster"}) {
    catalog.push_back(PaperWorkload(name));
  }
  const auto synthetic = TrainingSet(24);
  HpeSampler sampler(sim_, 25, 13);
  const auto rows =
      LeaveOneWorkloadOut(pipeline_, catalog, synthetic, sampler, FastConfig());
  ASSERT_EQ(rows.size(), catalog.size());
  for (const CrossValidationRow& row : rows) {
    EXPECT_EQ(row.actual.size(), ips_.placements.size());
    EXPECT_EQ(row.predicted_perf.size(), ips_.placements.size());
    EXPECT_EQ(row.predicted_hpe.size(), ips_.placements.size());
    EXPECT_GE(row.mae_perf, 0.0);
    EXPECT_GE(row.mae_hpe, 0.0);
    EXPECT_LT(row.mae_perf, 0.5) << row.workload;
  }
}

TEST_F(ModelPipelineTest, RejectsInvalidConstruction) {
  EXPECT_THROW(ModelPipeline(ips_, sim_, /*baseline_id=*/999, 1), std::logic_error);
  EXPECT_THROW(pipeline_.BuildPerfDataset({}, 1, 1, FastConfig()), std::logic_error);
}

}  // namespace
}  // namespace numaplace
