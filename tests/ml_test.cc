// Tests for the from-scratch ML substrate: dataset, CART tree, random
// forest, k-means + silhouette, SFS and k-fold helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/ml/dataset.h"
#include "src/ml/forest.h"
#include "src/ml/kmeans.h"
#include "src/ml/selection.h"
#include "src/ml/tree.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace numaplace {
namespace {

Dataset MakeLinear(int n, uint64_t seed, double noise = 0.0) {
  // y0 = 2x0 + 1, y1 = -x0 + 3 (multi-output, single feature).
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0.0, 10.0);
    d.features.push_back({x});
    d.targets.push_back({2.0 * x + 1.0 + rng.NextGaussian(0.0, noise),
                         -x + 3.0 + rng.NextGaussian(0.0, noise)});
  }
  return d;
}

TEST(Dataset, ValidateRejectsRaggedRows) {
  Dataset d;
  d.features = {{1.0, 2.0}, {3.0}};
  d.targets = {{1.0}, {2.0}};
  EXPECT_THROW(d.Validate(), std::logic_error);
  d.features = {{1.0}, {2.0}};
  d.targets = {{1.0}};
  EXPECT_THROW(d.Validate(), std::logic_error);
}

TEST(Dataset, SubsetAndFeatureProjection) {
  Dataset d;
  d.features = {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  d.targets = {{1.0}, {2.0}, {3.0}};
  const Dataset sub = d.Subset({2, 0});
  EXPECT_EQ(sub.NumSamples(), 2u);
  EXPECT_DOUBLE_EQ(sub.features[0][0], 3.0);
  const Dataset proj = d.WithFeatureSubset({1});
  EXPECT_EQ(proj.NumFeatures(), 1u);
  EXPECT_DOUBLE_EQ(proj.features[1][0], 20.0);
}

TEST(Dataset, AppendConcatenatesRows) {
  Dataset a = MakeLinear(5, 1);
  const Dataset b = MakeLinear(7, 2);
  a.Append(b);
  EXPECT_EQ(a.NumSamples(), 12u);
  a.Validate();
}

TEST(RegressionTree, FitsDeterministicStep) {
  // A step function is exactly representable by one split.
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    const double x = i < 10 ? 0.0 + i * 0.05 : 5.0 + i * 0.05;
    d.features.push_back({x});
    d.targets.push_back({i < 10 ? 1.0 : 9.0});
  }
  RegressionTree tree;
  Rng rng(3);
  tree.Fit(d, TreeParams{}, rng);
  EXPECT_NEAR(tree.Predict(std::vector<double>{0.2})[0], 1.0, 1e-9);
  EXPECT_NEAR(tree.Predict(std::vector<double>{5.5})[0], 9.0, 1e-9);
}

TEST(RegressionTree, MultiOutputPredictsBothTargets) {
  const Dataset d = MakeLinear(200, 11);
  RegressionTree tree;
  Rng rng(4);
  tree.Fit(d, TreeParams{}, rng);
  const std::vector<double> p = tree.Predict(std::vector<double>{5.0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 11.0, 0.5);
  EXPECT_NEAR(p[1], -2.0, 0.5);
}

TEST(RegressionTree, RespectsMaxDepth) {
  const Dataset d = MakeLinear(256, 12);
  RegressionTree tree;
  Rng rng(5);
  TreeParams params;
  params.max_depth = 3;
  tree.Fit(d, params, rng);
  EXPECT_LE(tree.Depth(), 3 + 1);  // depth counts nodes; root at depth 1
}

TEST(RegressionTree, MinSamplesLeafHonored) {
  const Dataset d = MakeLinear(64, 13);
  RegressionTree tree;
  Rng rng(6);
  TreeParams params;
  params.min_samples_leaf = 8;
  tree.Fit(d, params, rng);
  // With >= 8 samples per leaf, the tree has at most 64/8 leaves; total
  // nodes bounded by 2*8-1.
  EXPECT_LE(tree.NumNodes(), 15u);
}

TEST(RegressionTree, ConstantTargetsGiveSingleLeaf) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.targets.push_back({42.0});
  }
  RegressionTree tree;
  Rng rng(7);
  tree.Fit(d, TreeParams{}, rng);
  EXPECT_NEAR(tree.Predict(std::vector<double>{3.0})[0], 42.0, 1e-12);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.Predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RandomForest, LearnsNoisyLinearFunction) {
  const Dataset train = MakeLinear(400, 21, 0.2);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 60;
  params.seed = 9;
  forest.Fit(train, params);
  double max_err = 0.0;
  for (double x = 1.0; x < 9.0; x += 0.5) {
    const std::vector<double> p = forest.Predict(std::vector<double>{x});
    max_err = std::max(max_err, std::abs(p[0] - (2.0 * x + 1.0)));
  }
  EXPECT_LT(max_err, 0.6);
}

TEST(RandomForest, DeterministicPerSeed) {
  const Dataset train = MakeLinear(100, 22, 0.1);
  RandomForest a;
  RandomForest b;
  ForestParams params;
  params.num_trees = 20;
  params.seed = 33;
  a.Fit(train, params);
  b.Fit(train, params);
  const std::vector<double> q = {4.2};
  EXPECT_EQ(a.Predict(q), b.Predict(q));
}

TEST(RandomForest, TrainingOrderInvariance) {
  // Permuting rows changes bootstrap draws, but accuracy must be unaffected
  // (the learned function is the same up to noise).
  Dataset train = MakeLinear(300, 23, 0.1);
  Dataset shuffled = train;
  std::vector<size_t> order(train.NumSamples());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(8);
  rng.Shuffle(order);
  shuffled = train.Subset(order);
  ForestParams params;
  params.num_trees = 40;
  params.seed = 5;
  RandomForest a;
  a.Fit(train, params);
  RandomForest b;
  b.Fit(shuffled, params);
  for (double x = 2.0; x < 8.0; x += 1.0) {
    const double pa = a.Predict(std::vector<double>{x})[0];
    const double pb = b.Predict(std::vector<double>{x})[0];
    EXPECT_NEAR(pa, pb, 0.4);
  }
}

TEST(RandomForest, OutOfBagErrorReasonable) {
  const Dataset train = MakeLinear(200, 24, 0.1);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 50;
  params.seed = 2;
  forest.Fit(train, params);
  const double oob = forest.OutOfBagMae(train);
  EXPECT_GT(oob, 0.0);
  EXPECT_LT(oob, 1.0);
}

TEST(RandomForest, IrrelevantFeaturesTolerated) {
  // Add 5 noise features; the forest must still find the signal.
  Rng rng(25);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.NextDouble(0.0, 10.0);
    std::vector<double> row = {x};
    for (int f = 0; f < 5; ++f) {
      row.push_back(rng.NextDouble());
    }
    d.features.push_back(row);
    d.targets.push_back({2.0 * x});
  }
  RandomForest forest;
  ForestParams params;
  params.num_trees = 60;
  params.seed = 3;
  params.feature_fraction = 0.5;
  forest.Fit(d, params);
  std::vector<double> q = {5.0, 0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_NEAR(forest.Predict(q)[0], 10.0, 1.0);
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(31);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      points.push_back({c * 10.0 + rng.NextGaussian(0.0, 0.5),
                        c * -5.0 + rng.NextGaussian(0.0, 0.5)});
    }
  }
  const KMeansResult result = KMeans(points, 3, rng);
  // Every original cluster maps to exactly one k-means cluster.
  for (int c = 0; c < 3; ++c) {
    std::set<int> labels;
    for (int i = 0; i < 30; ++i) {
      labels.insert(result.assignments[static_cast<size_t>(c * 30 + i)]);
    }
    EXPECT_EQ(labels.size(), 1u) << "cluster " << c << " split";
  }
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(32);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.NextDouble(0.0, 100.0)});
  }
  const double inertia2 = KMeans(points, 2, rng).inertia;
  const double inertia8 = KMeans(points, 8, rng).inertia;
  EXPECT_LT(inertia8, inertia2);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}, {9.0}};
  Rng rng(33);
  const KMeansResult result = KMeans(points, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(Silhouette, HighForSeparatedLowForOverlapping) {
  Rng rng(34);
  std::vector<std::vector<double>> separated;
  std::vector<std::vector<double>> overlapping;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 25; ++i) {
      separated.push_back({c * 20.0 + rng.NextGaussian(0.0, 0.5)});
      overlapping.push_back({c * 0.5 + rng.NextGaussian(0.0, 1.0)});
    }
  }
  const KMeansResult rs = KMeans(separated, 2, rng);
  const KMeansResult ro = KMeans(overlapping, 2, rng);
  const double sep = MeanSilhouette(separated, rs.assignments, 2);
  const double ovl = MeanSilhouette(overlapping, ro.assignments, 2);
  EXPECT_GT(sep, 0.85);
  EXPECT_LT(ovl, 0.6);
  EXPECT_GT(sep, ovl);
}

TEST(Silhouette, ChoosesTrueK) {
  Rng rng(35);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({c * 15.0 + rng.NextGaussian(0.0, 0.6),
                        (c % 2) * 12.0 + rng.NextGaussian(0.0, 0.6)});
    }
  }
  const SilhouetteSelection sel = ChooseKBySilhouette(points, 2, 8, rng);
  EXPECT_EQ(sel.best_k, 4);
  EXPECT_EQ(sel.scores.size(), 7u);
}

TEST(Sfs, FindsTheInformativeFeature) {
  // Feature 2 is the only informative one; SFS must pick it first.
  Rng rng(36);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0.0, 1.0);
    d.features.push_back({rng.NextDouble(), rng.NextDouble(), x, rng.NextDouble()});
    d.targets.push_back({3.0 * x});
  }
  ForestParams params;
  params.num_trees = 30;
  params.seed = 11;
  const FeatureSubsetScorer scorer = [&](const std::vector<size_t>& cols) {
    RandomForest forest;
    forest.Fit(d.WithFeatureSubset(cols), params);
    return forest.OutOfBagMae(d.WithFeatureSubset(cols));
  };
  const SfsResult result = SequentialForwardSelection(4, 2, scorer);
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected[0], 2u);
}

TEST(Sfs, StopsWhenNoImprovement) {
  // Scorer: error 1.0 with one feature, no subset improves on that.
  const FeatureSubsetScorer scorer = [](const std::vector<size_t>& cols) {
    return 1.0 + 0.1 * static_cast<double>(cols.size() - 1);
  };
  const SfsResult result = SequentialForwardSelection(5, 5, scorer, 0.01);
  EXPECT_EQ(result.selected.size(), 1u);
}

TEST(KFold, PartitionsAllIndicesExactlyOnce) {
  Rng rng(37);
  const auto folds = KFoldIndices(23, 4, rng);
  ASSERT_EQ(folds.size(), 4u);
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    for (size_t i : fold) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(*seen.rbegin(), 22u);
}

TEST(KFold, RejectsDegenerateRequests) {
  Rng rng(38);
  EXPECT_THROW(KFoldIndices(3, 5, rng), std::logic_error);
  EXPECT_THROW(KFoldIndices(10, 1, rng), std::logic_error);
}

}  // namespace
}  // namespace numaplace
