#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/topology/machines.h"
#include "src/topology/topology.h"

namespace numaplace {
namespace {

TEST(AmdTopology, MatchesPaperFigure2) {
  const Topology amd = AmdOpteron6272();
  EXPECT_EQ(amd.num_nodes(), 8);
  EXPECT_EQ(amd.NumCores(), 64);
  EXPECT_EQ(amd.NumHwThreads(), 64);   // no SMT threads; CMT pairs share L2
  EXPECT_EQ(amd.NumL2Groups(), 32);    // "an L2Count of 32 for example"
  EXPECT_EQ(amd.L2GroupCapacity(), 2);
  EXPECT_EQ(amd.NodeCapacity(), 8);    // "eight hardware threads per L3 cache"
  EXPECT_EQ(amd.L2GroupsPerNode(), 4);
}

TEST(IntelTopology, MatchesPaperFigure2) {
  const Topology intel = IntelXeonE74830v3();
  EXPECT_EQ(intel.num_nodes(), 4);
  EXPECT_EQ(intel.NumCores(), 48);
  EXPECT_EQ(intel.NumHwThreads(), 96);  // 12 cores/node with SMT
  EXPECT_EQ(intel.NumL2Groups(), 48);
  EXPECT_EQ(intel.L2GroupCapacity(), 2);
  EXPECT_EQ(intel.NodeCapacity(), 24);
}

TEST(AmdTopology, LinkTableSumsTo35GBs) {
  const Topology amd = AmdOpteron6272();
  double total = 0.0;
  for (const Link& link : amd.links()) {
    total += link.bandwidth_gbps;
  }
  EXPECT_NEAR(total, 35.0, 1e-9);
  std::vector<int> all(8);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_NEAR(amd.AggregateBandwidth(all), 35.0, 1e-9);
}

TEST(AmdTopology, EveryNodeHasFourLinksAndDiameterTwo) {
  const Topology amd = AmdOpteron6272();
  for (int n = 0; n < 8; ++n) {
    int degree = 0;
    for (int m = 0; m < 8; ++m) {
      if (amd.LinkBandwidth(n, m) > 0.0) {
        ++degree;
      }
    }
    EXPECT_EQ(degree, 4) << "node " << n;
  }
  int max_hops = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      max_hops = std::max(max_hops, amd.HopDistance(a, b));
    }
  }
  EXPECT_EQ(max_hops, 2);
}

TEST(Topology, HwThreadLayoutAmd) {
  const Topology amd = AmdOpteron6272();
  // Thread 0..7 on node 0, thread 8 starts node 1.
  EXPECT_EQ(amd.NodeOf(0), 0);
  EXPECT_EQ(amd.NodeOf(7), 0);
  EXPECT_EQ(amd.NodeOf(8), 1);
  // CMT: threads 0,1 share an L2 group; 2,3 the next.
  EXPECT_EQ(amd.L2GroupOf(0), amd.L2GroupOf(1));
  EXPECT_NE(amd.L2GroupOf(1), amd.L2GroupOf(2));
  // Distinct cores within the module.
  EXPECT_NE(amd.CoreOf(0), amd.CoreOf(1));
}

TEST(Topology, HwThreadLayoutIntel) {
  const Topology intel = IntelXeonE74830v3();
  // SMT siblings 0,1 share a core (and therefore an L2 group).
  EXPECT_EQ(intel.CoreOf(0), intel.CoreOf(1));
  EXPECT_EQ(intel.L2GroupOf(0), intel.L2GroupOf(1));
  EXPECT_NE(intel.CoreOf(1), intel.CoreOf(2));
  EXPECT_EQ(intel.SmtSiblingIndexOf(0), 0);
  EXPECT_EQ(intel.SmtSiblingIndexOf(1), 1);
  // 24 threads per node.
  EXPECT_EQ(intel.NodeOf(23), 0);
  EXPECT_EQ(intel.NodeOf(24), 1);
}

TEST(Topology, HwThreadsOnNodeIsContiguousRange) {
  const Topology intel = IntelXeonE74830v3();
  const std::vector<int> threads = intel.HwThreadsOnNode(2);
  ASSERT_EQ(threads.size(), 24u);
  EXPECT_EQ(threads.front(), 48);
  EXPECT_EQ(threads.back(), 71);
}

TEST(Topology, AggregateBandwidthOfSubsets) {
  const Topology amd = AmdOpteron6272();
  // Single node: no internal links.
  const std::vector<int> one = {3};
  EXPECT_DOUBLE_EQ(amd.AggregateBandwidth(one), 0.0);
  // The paper's best 4-node set.
  const std::vector<int> best = {2, 3, 4, 5};
  EXPECT_NEAR(amd.AggregateBandwidth(best), 3.52 + 3.51 + 3.50 + 3.50, 1e-9);
  // Unconnected pair contributes nothing.
  const std::vector<int> unlinked = {0, 5};
  EXPECT_DOUBLE_EQ(amd.AggregateBandwidth(unlinked), 0.0);
}

TEST(Topology, CommunicationLatencyOrdering) {
  const Topology intel = IntelXeonE74830v3();
  const double same_core = intel.CommunicationLatencyNs(0, 1);
  const double same_node = intel.CommunicationLatencyNs(0, 2);
  const double cross_node = intel.CommunicationLatencyNs(0, 24);
  EXPECT_LT(same_core, same_node);
  EXPECT_LT(same_node, cross_node);
  EXPECT_DOUBLE_EQ(intel.CommunicationLatencyNs(5, 5), 0.0);

  const Topology amd = AmdOpteron6272();
  const double one_hop = amd.CommunicationLatencyNs(0, 8);        // nodes 0-1
  const double two_hop = amd.CommunicationLatencyNs(0, 5 * 8);    // nodes 0-5
  EXPECT_LT(one_hop, two_hop);
}

TEST(Topology, SymmetricMachineHelper) {
  const Topology sym = SymmetricMachine(4, 4, 2, 1, 10.0);
  EXPECT_EQ(sym.num_nodes(), 4);
  EXPECT_EQ(sym.NumHwThreads(), 32);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_DOUBLE_EQ(sym.LinkBandwidth(a, b), 10.0);
        EXPECT_EQ(sym.HopDistance(a, b), 1);
      }
    }
  }
}

TEST(Topology, RejectsInvalidConstruction) {
  PerfParams perf;
  // L2 group straddling nodes.
  EXPECT_THROW(Topology("bad", 2, 3, 1, 2, {}, perf), std::logic_error);
  // Self link.
  EXPECT_THROW(Topology("bad", 2, 2, 1, 1, {{0, 0, 1.0}}, perf), std::logic_error);
  // Duplicate link.
  EXPECT_THROW(Topology("bad", 2, 2, 1, 1, {{0, 1, 1.0}, {1, 0, 2.0}}, perf),
               std::logic_error);
  // Non-positive bandwidth.
  EXPECT_THROW(Topology("bad", 2, 2, 1, 1, {{0, 1, 0.0}}, perf), std::logic_error);
  // Out-of-range node.
  EXPECT_THROW(Topology("bad", 2, 2, 1, 1, {{0, 5, 1.0}}, perf), std::logic_error);
}

TEST(Topology, ExtensionMachinesConstruct) {
  const Topology zen = AmdZenLike();
  EXPECT_EQ(zen.num_nodes(), 4);
  // Split L3 (§8): two 4-core CCXs per node, private per-core L2.
  EXPECT_TRUE(zen.HasSplitL3());
  EXPECT_EQ(zen.NumL3Groups(), 8);
  EXPECT_EQ(zen.L3GroupCapacity(), 4);
  EXPECT_EQ(zen.L3GroupsPerNode(), 2);
  EXPECT_EQ(zen.L2GroupCapacity(), 1);
  // Threads 0-3 share a CCX; thread 4 starts the next; node boundary at 8.
  EXPECT_EQ(zen.L3GroupOf(0), zen.L3GroupOf(3));
  EXPECT_NE(zen.L3GroupOf(3), zen.L3GroupOf(4));
  EXPECT_EQ(zen.NodeOf(4), 0);
  EXPECT_EQ(zen.NodeOf(8), 1);
  // Cross-CCX latency exceeds intra-CCX latency on the same node.
  EXPECT_LT(zen.CommunicationLatencyNs(0, 1), zen.CommunicationLatencyNs(0, 4));
  EXPECT_LT(zen.CommunicationLatencyNs(0, 4), zen.CommunicationLatencyNs(0, 8));

  const Topology cod = HaswellClusterOnDie();
  EXPECT_EQ(cod.num_nodes(), 4);
  EXPECT_FALSE(cod.HasSplitL3());
  // Cluster-on-die is asymmetric: on-die link wider than cross-socket.
  EXPECT_GT(cod.LinkBandwidth(0, 1), cod.LinkBandwidth(0, 2));

  // Classic machines: one L3 per node, so the split-L3 accessors degenerate.
  const Topology amd = AmdOpteron6272();
  EXPECT_FALSE(amd.HasSplitL3());
  EXPECT_EQ(amd.NumL3Groups(), amd.num_nodes());
  EXPECT_EQ(amd.L3GroupCapacity(), amd.NodeCapacity());

  // L2 groups straddling L3 groups are rejected.
  PerfParams perf;
  EXPECT_THROW(Topology("bad", 2, 8, 1, 4, {{0, 1, 1.0}}, perf, /*l3=*/2),
               std::logic_error);
}

}  // namespace
}  // namespace numaplace
