// The §8 Zen scenario: machines where the L3 cache is shared at a finer
// granularity than the memory controller. The concern hierarchy gains a
// third level and the enumeration distinguishes placements by how many CCXs
// they occupy per node — "without significant retooling by an expert".
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/workloads/profile.h"

namespace numaplace {
namespace {

TEST(SplitL3, ZenConcernSetIncludesMemoryController) {
  const Topology zen = AmdZenLike();
  ASSERT_TRUE(zen.HasSplitL3());
  const auto concerns = ConcernsFor(zen, false);
  ASSERT_EQ(concerns.size(), 3u);  // L2/SMT, L3, MemCtl (no interconnect)
  EXPECT_EQ(concerns[0]->name(), "L2/SMT");
  EXPECT_EQ(concerns[1]->name(), "L3");
  EXPECT_EQ(concerns[2]->name(), "MemCtl");
  EXPECT_TRUE(concerns[2]->AffectsCost());
  EXPECT_TRUE(concerns[2]->InversePerfPossible());
}

TEST(SplitL3, ClassicMachinesDoNotGrowAConcern) {
  EXPECT_EQ(ConcernsFor(AmdOpteron6272(), true).size(), 3u);   // L2, L3, IC
  EXPECT_EQ(ConcernsFor(IntelXeonE74830v3(), false).size(), 2u);
}

TEST(SplitL3, ZenEnumerationDistinguishesCcxSharing) {
  const Topology zen = AmdZenLike();
  const ImportantPlacementSet set = GenerateImportantPlacements(zen, 16, false);
  // 16 vCPUs on 4 nodes x 2 CCXs x 4 cores (capacity 4 per CCX, private L2):
  //   2 nodes -> must use all 4 CCXs (4 per CCX);
  //   4 nodes -> either 4 CCXs (4 per CCX, one per node) or all 8 (2 per CCX).
  ASSERT_EQ(set.placements.size(), 3u);
  std::set<std::pair<int, int>> classes;  // (node count, l3 score)
  for (const ImportantPlacement& p : set.placements) {
    classes.insert({p.NodeCount(), p.l3_score});
    EXPECT_EQ(p.l2_score, 16);  // private L2s: one per vCPU, always
  }
  EXPECT_TRUE(classes.count({2, 4}));
  EXPECT_TRUE(classes.count({4, 4}));
  EXPECT_TRUE(classes.count({4, 8}));
}

TEST(SplitL3, ZenScoreVectorsRoundTrip) {
  const Topology zen = AmdZenLike();
  const ImportantPlacementSet set = GenerateImportantPlacements(zen, 16, false);
  for (const ImportantPlacement& p : set.placements) {
    const Placement realized = Realize(p, zen, 16);
    EXPECT_TRUE(realized.IsOneVcpuPerHwThread());
    const ScoreVector score = ScoreOf(realized, zen);
    EXPECT_EQ(score.l3_score, p.l3_score) << p.ToString();
    EXPECT_EQ(score.mem_score, p.NodeCount()) << p.ToString();
    EXPECT_EQ(score.l2_score, p.l2_score) << p.ToString();
    // Threads spread evenly over the used CCXs.
    std::map<int, int> per_ccx;
    for (int t : realized.hw_threads) {
      per_ccx[zen.L3GroupOf(t)]++;
    }
    EXPECT_EQ(per_ccx.size(), static_cast<size_t>(p.l3_score));
    for (const auto& [ccx, count] : per_ccx) {
      EXPECT_EQ(count, 16 / p.l3_score);
    }
  }
}

TEST(SplitL3, CacheCapacityFollowsTheCcx) {
  // A cache-sensitive workload sees twice the aggregate L3 when spread over
  // all 8 CCXs instead of 4 — the simulator must price that in.
  const Topology zen = AmdZenLike();
  PerformanceModel sim(zen);
  const ImportantPlacementSet set = GenerateImportantPlacements(zen, 16, false);
  const ImportantPlacement* four_ccx = nullptr;
  const ImportantPlacement* eight_ccx = nullptr;
  for (const ImportantPlacement& p : set.placements) {
    if (p.NodeCount() == 4 && p.l3_score == 4) {
      four_ccx = &p;
    }
    if (p.NodeCount() == 4 && p.l3_score == 8) {
      eight_ccx = &p;
    }
  }
  ASSERT_NE(four_ccx, nullptr);
  ASSERT_NE(eight_ccx, nullptr);

  WorkloadProfile w = PaperWorkload("canneal");  // big shared WS, coop
  w.cache_coop = 0.0;                            // isolate the capacity effect
  w.comm_intensity = 0.0;                        // and the latency effect
  const double four = sim.Evaluate(w, Realize(*four_ccx, zen, 16)).throughput_ops;
  const double eight = sim.Evaluate(w, Realize(*eight_ccx, zen, 16)).throughput_ops;
  EXPECT_GT(eight, four);

  // A latency-bound workload prefers the tighter 4-CCX packing instead.
  WorkloadProfile chatty = PaperWorkload("WTbtree");
  const double four_chatty =
      sim.Evaluate(chatty, Realize(*four_ccx, zen, 16)).throughput_ops;
  const double eight_chatty =
      sim.Evaluate(chatty, Realize(*eight_ccx, zen, 16)).throughput_ops;
  // 4 CCXs over 4 nodes put 4 threads per CCX at 28ns instead of spreading
  // pairs across CCXs at 60ns.
  EXPECT_GT(four_chatty, eight_chatty);
}

TEST(SplitL3, ScoreVectorPrintsMemCtlOnlyWhenSplit) {
  ScoreVector classic{8, 4, 4, 10.0};
  EXPECT_EQ(classic.ToString().find("MemCtl"), std::string::npos);
  ScoreVector split{16, 8, 4, 10.0};
  EXPECT_NE(split.ToString().find("MemCtl"), std::string::npos);
}

}  // namespace
}  // namespace numaplace
