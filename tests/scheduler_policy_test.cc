// Tests for the pluggable SchedulingPolicy API: the PolicyRegistry (named
// construction, duplicates, plugins), the behavior of the built-in policies
// through a policy-agnostic MachineScheduler, and the ReplacementPass edge
// cases (empty queue, upgrade margin, FIFO admission order).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/core/occupancy.h"
#include "src/model/registry.h"
#include "src/scheduler/policy.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

TrainedPerfModel TrainSmallModel(const ImportantPlacementSet& ips,
                                 const PerformanceModel& sim, int baseline_id) {
  ModelPipeline pipeline(ips, sim, baseline_id, /*seed=*/23);
  PerfModelConfig config;
  config.forest.num_trees = 60;
  config.cv_trees = 25;
  config.runs_per_workload = 2;
  Rng rng(7);
  return pipeline.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
}

class SchedulerPolicyTest : public ::testing::Test {
 protected:
  SchedulerPolicyTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        sim_(topo_, 0.01, 3),
        model_(TrainSmallModel(ips_, sim_, /*baseline_id=*/1)) {
    registry_.Register(topo_.name(), 16, model_);
  }

  MachineScheduler MakeScheduler(const std::string& policy,
                                 SchedulerConfig config = {}) {
    config.policy = policy;
    config.baseline_id = 1;
    MachineScheduler scheduler(topo_, sim_, &registry_, config);
    scheduler.ProvidePlacements(ips_);
    return scheduler;
  }

  ContainerRequest MakeRequest(int id, const std::string& workload, double goal,
                               int vcpus = 16) const {
    ContainerRequest request;
    request.id = id;
    request.workload = PaperWorkload(workload);
    request.workload.name += "#" + std::to_string(id);
    request.vcpus = vcpus;
    request.goal_fraction = goal;
    return request;
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel sim_;
  TrainedPerfModel model_;
  ModelRegistry registry_;
};

// --- registry ---

TEST(PolicyRegistry, BuiltinsAreConstructibleByName) {
  const std::vector<std::string> names = PolicyRegistry::Global().Names();
  for (const char* expected : {"model", "first-fit", "best-fit", "spread"}) {
    EXPECT_TRUE(PolicyRegistry::Global().Has(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
    const std::unique_ptr<SchedulingPolicy> policy = MakePolicy(expected);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), expected);
  }
  EXPECT_TRUE(MakePolicy("model")->UsesModel());
  EXPECT_FALSE(MakePolicy("first-fit")->UsesModel());
  EXPECT_FALSE(MakePolicy("best-fit")->UsesModel());
  EXPECT_FALSE(MakePolicy("spread")->UsesModel());
}

TEST(PolicyRegistry, UnknownAndDuplicateNamesAreRejected) {
  EXPECT_FALSE(PolicyRegistry::Global().Has("no-such-policy"));
  EXPECT_THROW(MakePolicy("no-such-policy"), std::logic_error);
  EXPECT_THROW(PolicyRegistry::Global().Register(
                   "model", [] { return std::make_unique<FirstFitPolicy>(); }),
               std::logic_error);
}

// A plugin: ranks candidates by id descending — nonsense as a strategy, but
// observably different from every built-in.
class ReversePolicy final : public SchedulingPolicy {
 public:
  const std::string& name() const override {
    static const std::string kName = "test-reverse";
    return kName;
  }
  std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const override {
    const std::vector<int>& ids = *ctx.placement_ids;
    std::vector<size_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return ids[a] > ids[b]; });
    return order;
  }
};

TEST_F(SchedulerPolicyTest, RegisteredPluginAndInjectedPolicyBothSchedule) {
  if (!PolicyRegistry::Global().Has("test-reverse")) {
    PolicyRegistry::Global().Register(
        "test-reverse", [] { return std::make_unique<ReversePolicy>(); });
  }
  MachineScheduler by_name = MakeScheduler("test-reverse");
  const ScheduleOutcome via_name = by_name.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(via_name.admitted);
  EXPECT_EQ(by_name.policy().name(), "test-reverse");

  SchedulerConfig config;
  config.baseline_id = 1;
  config.policy = "not-even-registered";  // ignored with an injected policy
  MachineScheduler injected(topo_, sim_, &registry_, config,
                            std::make_unique<ReversePolicy>());
  injected.ProvidePlacements(ips_);
  const ScheduleOutcome via_ptr = injected.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(via_ptr.admitted);
  // Both schedulers made the same (reversed: highest id realizable) choice.
  EXPECT_EQ(via_ptr.placement_id, via_name.placement_id);
  EXPECT_EQ(via_name.placement_id, ips_.placements.back().id);
}

// --- built-in policy behavior through the scheduler ---

TEST_F(SchedulerPolicyTest, ModelFreePoliciesScheduleWithoutProbesOrModels) {
  ModelRegistry empty_registry;  // no trained model: must not be consulted
  for (const char* name : {"first-fit", "best-fit", "spread"}) {
    SchedulerConfig config;
    config.policy = name;
    config.baseline_id = 1;
    MachineScheduler scheduler(topo_, sim_, &empty_registry, config);
    scheduler.ProvidePlacements(ips_);
    const ScheduleOutcome outcome = scheduler.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
    ASSERT_TRUE(outcome.admitted) << name;
    EXPECT_EQ(scheduler.stats().probe_runs, 0) << name;
    EXPECT_EQ(outcome.predicted_abs_throughput, 0.0) << name;
    EXPECT_FALSE(outcome.meets_goal) << name;
    EXPECT_EQ(outcome.decision_seconds, 0.0) << name;
  }
}

TEST_F(SchedulerPolicyTest, SpreadMaximizesAndBestFitMinimizesNodeFootprint) {
  MachineScheduler best_fit = MakeScheduler("best-fit");
  MachineScheduler spread = MakeScheduler("spread");
  const ScheduleOutcome tight = best_fit.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  const ScheduleOutcome wide = spread.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(tight.admitted);
  ASSERT_TRUE(wide.admitted);

  // 16 vCPUs on 8-thread nodes: the tightest fit fills 2 nodes exactly, the
  // widest realizable class spans every node of the machine.
  const int tight_nodes = ips_.ById(tight.placement_id).NodeCount();
  const int wide_nodes = ips_.ById(wide.placement_id).NodeCount();
  EXPECT_EQ(tight_nodes, 2);
  EXPECT_EQ(wide_nodes, topo_.num_nodes());
  for (int node : tight.placement.NodesUsed(topo_)) {
    EXPECT_EQ(best_fit.occupancy().FreeThreadsOnNode(node), 0);
  }

  // A second spread container still fits: it interleaves onto the threads
  // the first one left free on the same nodes.
  const ScheduleOutcome second = spread.Submit(MakeRequest(2, "wc", 0.9), 1.0);
  ASSERT_TRUE(second.admitted);
  std::set<int> threads(wide.placement.hw_threads.begin(),
                        wide.placement.hw_threads.end());
  for (int t : second.placement.hw_threads) {
    EXPECT_TRUE(threads.insert(t).second) << "thread " << t << " double-booked";
  }
}

TEST_F(SchedulerPolicyTest, FirstFitMatchesBestFitOnEmptyMachineByNodeCount) {
  MachineScheduler first_fit = MakeScheduler("first-fit");
  const ScheduleOutcome outcome = first_fit.Submit(MakeRequest(1, "gcc", 0.9), 0.0);
  ASSERT_TRUE(outcome.admitted);
  EXPECT_EQ(ips_.ById(outcome.placement_id).NodeCount(), 2);
}

// --- ReplacementPass edge cases ---

TEST_F(SchedulerPolicyTest, DepartureWithEmptyQueueAndHealthyTenantsReplacesNothing) {
  MachineScheduler scheduler = MakeScheduler("model");
  ASSERT_TRUE(scheduler.Submit(MakeRequest(1, "gcc", 0.5), 0.0).admitted);
  const ScheduleOutcome second = scheduler.Submit(MakeRequest(2, "gcc", 0.5), 1.0);
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.meets_goal);

  // Nothing queued and the incumbent meets its goal: the pass is a no-op.
  const std::vector<ScheduleOutcome> replaced = scheduler.Depart(1, 2.0);
  EXPECT_TRUE(replaced.empty());
  EXPECT_EQ(scheduler.stats().upgrades, 0);
  EXPECT_EQ(scheduler.stats().admitted_from_queue, 0);

  // Departing the last container drains the machine without incident.
  EXPECT_TRUE(scheduler.Depart(2, 3.0).empty());
  EXPECT_EQ(scheduler.occupancy().BusyThreadCount(), 0);
}

TEST_F(SchedulerPolicyTest, UpgradeIsSkippedWhenGainIsBelowTheMargin) {
  // An unreachable goal keeps every candidate in the not-meeting bucket,
  // where the margin is the only gate on migration churn.
  const auto run_with_margin = [&](double margin) {
    SchedulerConfig config;
    config.upgrade_margin = margin;
    MachineScheduler scheduler = MakeScheduler("model", config);
    for (int id = 1; id <= 3; ++id) {
      EXPECT_TRUE(scheduler.Submit(MakeRequest(id, "gcc", 0.5), 0.0).admitted);
    }
    const ScheduleOutcome crowded =
        scheduler.Submit(MakeRequest(9, "streamcluster", 3.0), 1.0);
    EXPECT_TRUE(crowded.admitted);
    EXPECT_FALSE(crowded.meets_goal);
    scheduler.Depart(1, 2.0);
    scheduler.Depart(2, 3.0);
    scheduler.Depart(3, 4.0);
    return scheduler.stats().upgrades;
  };

  // With no margin the freed capacity is worth a strictly better placement…
  EXPECT_GE(run_with_margin(0.0), 1);
  // …but an impossible margin blocks every not-meeting upgrade.
  EXPECT_EQ(run_with_margin(1e9), 0);
}

TEST_F(SchedulerPolicyTest, QueueAdmissionStaysFifoWhenSeveralContainersFit) {
  // first-fit exercises the queue path without needing models: two 32-vCPU
  // containers fill the 64-thread machine, three 16-vCPU containers queue
  // behind them.
  MachineScheduler scheduler = MakeScheduler("first-fit");
  ASSERT_TRUE(scheduler.Submit(MakeRequest(1, "gcc", 1.0, 32), 0.0).admitted);
  ASSERT_TRUE(scheduler.Submit(MakeRequest(2, "wc", 1.0, 32), 1.0).admitted);
  EXPECT_EQ(scheduler.occupancy().FreeThreadCount(), 0);
  for (int id = 3; id <= 5; ++id) {
    EXPECT_FALSE(scheduler.Submit(MakeRequest(id, "gcc", 1.0), 2.0 + id).admitted);
  }
  EXPECT_EQ(scheduler.PendingIds(), (std::vector<int>{3, 4, 5}));

  // One departure frees four nodes — room for exactly two of the three
  // queued containers, admitted in submission order.
  const std::vector<ScheduleOutcome> replaced = scheduler.Depart(1, 10.0);
  ASSERT_EQ(replaced.size(), 2u);
  EXPECT_EQ(replaced[0].container_id, 3);
  EXPECT_EQ(replaced[1].container_id, 4);
  EXPECT_TRUE(replaced[0].admitted);
  EXPECT_TRUE(replaced[1].admitted);
  EXPECT_EQ(scheduler.PendingIds(), std::vector<int>{5});
  EXPECT_EQ(scheduler.stats().admitted_from_queue, 2);

  // The next departure admits the straggler: order never inverted.
  const std::vector<ScheduleOutcome> next = scheduler.Depart(2, 11.0);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].container_id, 5);
  EXPECT_TRUE(scheduler.PendingIds().empty());
}

}  // namespace
}  // namespace numaplace
