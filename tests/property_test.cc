// Parameterized property sweeps across machines, vCPU counts and workloads:
// invariants that must hold for ANY input the library accepts, not just the
// paper's two evaluation systems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "src/core/concern.h"
#include "src/migration/migration.h"
#include "src/core/important.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

// ---------------------------------------------------------------------------
// Enumeration invariants over (machine, vCPU count).
// ---------------------------------------------------------------------------

struct MachineCase {
  std::string label;
  Topology (*make)();
  int vcpus;
};

void PrintTo(const MachineCase& c, std::ostream* os) { *os << c.label; }

class EnumerationProperty : public ::testing::TestWithParam<MachineCase> {};

TEST_P(EnumerationProperty, EveryImportantPlacementIsBalancedAndFeasible) {
  const MachineCase& param = GetParam();
  const Topology topo = param.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet set =
      GenerateImportantPlacements(topo, param.vcpus, use_ic);
  ASSERT_FALSE(set.placements.empty());
  for (const ImportantPlacement& p : set.placements) {
    // Balance: vCPUs divide evenly over nodes, L3 groups and L2 groups, and
    // each finer level spreads evenly over the coarser one.
    EXPECT_EQ(param.vcpus % p.NodeCount(), 0) << p.ToString();
    EXPECT_EQ(param.vcpus % p.l3_score, 0) << p.ToString();
    EXPECT_EQ(param.vcpus % p.l2_score, 0) << p.ToString();
    EXPECT_EQ(p.l3_score % p.NodeCount(), 0) << p.ToString();
    EXPECT_EQ(p.l2_score % p.l3_score, 0) << p.ToString();
    // Feasibility: per-instance loads within capacity.
    EXPECT_LE(param.vcpus / p.NodeCount(), topo.NodeCapacity()) << p.ToString();
    EXPECT_LE(param.vcpus / p.l3_score, topo.L3GroupCapacity()) << p.ToString();
    EXPECT_LE(param.vcpus / p.l2_score, topo.L2GroupCapacity()) << p.ToString();
    EXPECT_LE(p.l3_score / p.NodeCount(), topo.L3GroupsPerNode()) << p.ToString();
    // On classic one-L3-per-node machines, the L3 score IS the node count.
    if (!topo.HasSplitL3()) {
      EXPECT_EQ(static_cast<int>(p.nodes.size()), p.l3_score) << p.ToString();
    }
  }
}

TEST_P(EnumerationProperty, ScoreVectorsAreUniqueAcrossImportantPlacements) {
  const MachineCase& param = GetParam();
  const Topology topo = param.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet set =
      GenerateImportantPlacements(topo, param.vcpus, use_ic);
  std::set<std::tuple<int, int, int64_t>> seen;
  for (const ImportantPlacement& p : set.placements) {
    const auto key = std::make_tuple(
        p.l2_score, p.l3_score,
        static_cast<int64_t>(std::llround(p.interconnect_gbps * 1e6)));
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate score vector " << p.ToString();
  }
}

TEST_P(EnumerationProperty, RealizationRoundTripsScores) {
  const MachineCase& param = GetParam();
  const Topology topo = param.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet set =
      GenerateImportantPlacements(topo, param.vcpus, use_ic);
  for (const ImportantPlacement& p : set.placements) {
    const Placement realized = Realize(p, topo, param.vcpus);
    EXPECT_TRUE(realized.IsOneVcpuPerHwThread()) << p.ToString();
    const ScoreVector score = ScoreOf(realized, topo);
    EXPECT_EQ(score.l2_score, p.l2_score) << p.ToString();
    EXPECT_EQ(score.l3_score, p.l3_score) << p.ToString();
    EXPECT_NEAR(score.interconnect_gbps, p.interconnect_gbps, 1e-9) << p.ToString();
  }
}

TEST_P(EnumerationProperty, ParetoPackingsPartitionTheMachine) {
  const MachineCase& param = GetParam();
  const Topology topo = param.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet set =
      GenerateImportantPlacements(topo, param.vcpus, use_ic);
  ASSERT_FALSE(set.pareto_packings.empty());
  for (const Packing& packing : set.pareto_packings) {
    std::set<int> covered;
    for (const NodeSet& part : packing) {
      for (int node : part) {
        EXPECT_TRUE(covered.insert(node).second) << "node reused in a packing";
      }
    }
    EXPECT_EQ(covered.size(), static_cast<size_t>(topo.num_nodes()));
  }
}

TEST_P(EnumerationProperty, EveryImportantPlacementAppearsInSomePacking) {
  const MachineCase& param = GetParam();
  const Topology topo = param.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet set =
      GenerateImportantPlacements(topo, param.vcpus, use_ic);
  for (const ImportantPlacement& p : set.placements) {
    bool found = false;
    for (const Packing& packing : set.pareto_packings) {
      for (const NodeSet& part : packing) {
        if (static_cast<int>(part.size()) != p.NodeCount()) {
          continue;
        }
        if (!use_ic ||
            std::abs(topo.AggregateBandwidth(part) - p.interconnect_gbps) < 1e-9) {
          found = true;
        }
      }
    }
    EXPECT_TRUE(found) << p.ToString() << " not backed by any Pareto packing";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EnumerationProperty,
    ::testing::Values(
        MachineCase{"amd16", &AmdOpteron6272, 16},
        MachineCase{"amd32", &AmdOpteron6272, 32},
        MachineCase{"amd64", &AmdOpteron6272, 64},
        MachineCase{"amd8", &AmdOpteron6272, 8},
        MachineCase{"intel24", &IntelXeonE74830v3, 24},
        MachineCase{"intel48", &IntelXeonE74830v3, 48},
        MachineCase{"intel96", &IntelXeonE74830v3, 96},
        MachineCase{"intel12", &IntelXeonE74830v3, 12},
        MachineCase{"zen16", &AmdZenLike, 16},
        MachineCase{"zen32", &AmdZenLike, 32},
        MachineCase{"cod12", &HaswellClusterOnDie, 12},
        MachineCase{"cod36", &HaswellClusterOnDie, 36}),
    [](const ::testing::TestParamInfo<MachineCase>& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Simulator physics invariants over workload archetypes.
// ---------------------------------------------------------------------------

class SimulatorProperty : public ::testing::TestWithParam<WorkloadArchetype> {
 protected:
  static Placement PlaceOn(const Topology& topo, const NodeSet& nodes, int vcpus,
                           bool share_l2) {
    ImportantPlacement ip;
    ip.nodes = nodes;
    ip.l3_score = static_cast<int>(nodes.size());
    ip.l2_score = share_l2 ? vcpus / 2 : vcpus;
    return RealizeOnNodes(ip, nodes, topo, vcpus);
  }
};

TEST_P(SimulatorProperty, ThroughputIsPositiveAndFinite) {
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  Rng rng(101 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const WorkloadProfile w = SampleWorkload(GetParam(), rng);
    for (const NodeSet& nodes :
         {NodeSet{0, 1}, NodeSet{2, 3, 4, 5}, NodeSet{0, 1, 2, 3, 4, 5, 6, 7}}) {
      const PerfResult r = sim.Evaluate(w, PlaceOn(amd, nodes, 16, true));
      EXPECT_GT(r.throughput_ops, 0.0);
      EXPECT_TRUE(std::isfinite(r.throughput_ops));
      EXPECT_GE(r.breakdown.l2_hit, 0.0);
      EXPECT_LE(r.breakdown.l2_hit, 1.0);
      EXPECT_GE(r.breakdown.l3_hit, 0.0);
      EXPECT_LE(r.breakdown.l3_hit, 1.0);
      EXPECT_GT(r.breakdown.bandwidth_factor, 0.0);
      EXPECT_LE(r.breakdown.bandwidth_factor, 1.0);
    }
  }
}

TEST_P(SimulatorProperty, MoreCacheNeverHurtsHitRates) {
  // Spreading the same thread count over more nodes cannot lower the
  // per-thread L3 hit fraction for coop-free workloads (more aggregate cache,
  // same demand per thread or less).
  const Topology amd = AmdOpteron6272();
  PerformanceModel sim(amd);
  Rng rng(202 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadProfile w = SampleWorkload(GetParam(), rng);
    w.cache_coop = 0.0;  // coop rewards co-location; exclude it here
    const PerfResult two = sim.Evaluate(w, PlaceOn(amd, {0, 1}, 16, true));
    const PerfResult eight =
        sim.Evaluate(w, PlaceOn(amd, {0, 1, 2, 3, 4, 5, 6, 7}, 16, true));
    EXPECT_GE(eight.breakdown.l3_hit, two.breakdown.l3_hit - 1e-9);
  }
}

TEST_P(SimulatorProperty, InterferenceNeverHelps) {
  // Adding a co-tenant on the same nodes can only reduce throughput.
  const Topology amd = AmdOpteron6272();
  PerformanceModel solo(amd);
  MultiTenantModel multi(amd);
  Rng rng(303 + static_cast<uint64_t>(GetParam()));
  const WorkloadProfile w = SampleWorkload(GetParam(), rng);
  const WorkloadProfile noisy_neighbor = PaperWorkload("streamcluster");

  const Placement mine = PlaceOn(amd, {0, 1}, 16, true);
  Placement theirs;
  for (int t : mine.hw_threads) {
    theirs.hw_threads.push_back(t + 1);  // other module cores, same nodes
  }
  const double alone = solo.Evaluate(w, mine).throughput_ops;
  const auto results = multi.Evaluate({{&w, mine}, {&noisy_neighbor, theirs}});
  EXPECT_LE(results[0].throughput_ops, alone * 1.001);
}

TEST_P(SimulatorProperty, NoiseIsMultiplicativeAndSmall) {
  const Topology intel = IntelXeonE74830v3();
  PerformanceModel clean(intel);
  PerformanceModel noisy(intel, 0.02, 77);
  Rng rng(404 + static_cast<uint64_t>(GetParam()));
  const WorkloadProfile w = SampleWorkload(GetParam(), rng);
  const Placement p = PlaceOn(intel, {0, 1}, 24, true);
  const double base = clean.Evaluate(w, p).throughput_ops;
  for (uint64_t run = 0; run < 20; ++run) {
    const double sample = noisy.Evaluate(w, p, run).throughput_ops;
    EXPECT_NEAR(sample / base, 1.0, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Archetypes, SimulatorProperty,
    ::testing::Values(WorkloadArchetype::kComputeBound,
                      WorkloadArchetype::kLatencySensitive,
                      WorkloadArchetype::kBandwidthBound,
                      WorkloadArchetype::kCacheSensitive,
                      WorkloadArchetype::kSmtFriendly,
                      WorkloadArchetype::kBalancedMixed),
    [](const ::testing::TestParamInfo<WorkloadArchetype>& info) {
      std::string name = ArchetypeName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Algorithm 1 sweep: balance/feasibility/completeness on a grid.
// ---------------------------------------------------------------------------

class ScoreGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScoreGridProperty, GeneratedScoresAreExactlyTheValidOnes) {
  const auto [vcpus, count, capacity] = GetParam();
  const std::vector<int> scores = GenerateScores(vcpus, count, capacity);
  std::set<int> generated(scores.begin(), scores.end());
  EXPECT_EQ(generated.size(), scores.size()) << "duplicates";
  EXPECT_TRUE(std::is_sorted(scores.begin(), scores.end()));
  for (int s = 1; s <= count; ++s) {
    const bool valid = vcpus % s == 0 && vcpus / s <= capacity;
    EXPECT_EQ(generated.count(s) == 1, valid)
        << "score " << s << " for v=" << vcpus << " count=" << count
        << " cap=" << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ScoreGridProperty,
                         ::testing::Combine(::testing::Values(4, 12, 16, 24, 36, 64),
                                            ::testing::Values(4, 8, 32, 48),
                                            ::testing::Values(1, 2, 8, 24)));

// ---------------------------------------------------------------------------
// Migration model invariants across the catalog.
// ---------------------------------------------------------------------------

class MigrationProperty : public ::testing::TestWithParam<int> {};

TEST_P(MigrationProperty, EstimatesAreConsistent) {
  const WorkloadProfile w = PaperWorkloads()[static_cast<size_t>(GetParam())];
  const FastMigrator fast;
  const DefaultLinuxMigrator def;
  const ThrottledMigrator throttled(0.05);
  for (const Migrator* migrator :
       std::initializer_list<const Migrator*>{&fast, &def, &throttled}) {
    const MigrationEstimate e = migrator->Migrate(w);
    EXPECT_GE(e.seconds, 0.0) << migrator->name() << "/" << w.name;
    EXPECT_GE(e.page_cache_seconds, 0.0);
    EXPECT_LE(e.page_cache_seconds, e.seconds + 1e-9);
    EXPECT_GE(e.overhead_fraction, 0.0);
    EXPECT_LE(e.overhead_fraction, 1.0);
    if (!e.migrates_page_cache) {
      EXPECT_DOUBLE_EQ(e.page_cache_seconds, 0.0);
    }
  }
  // The throttled path must be gentler but slower than freezing.
  EXPECT_LT(throttled.Migrate(w).overhead_fraction, fast.Migrate(w).overhead_fraction);
  if (w.TotalMemoryGb() > 1.0) {
    EXPECT_GT(throttled.Migrate(w).seconds, fast.Migrate(w).seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, MigrationProperty, ::testing::Range(0, 18),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               PaperWorkloads()[static_cast<size_t>(info.param)].name;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace numaplace
