// End-to-end integration: the full §1 workflow across modules, on both
// machines — enumerate, train, persist, reload, place, pack — asserting the
// cross-module contracts rather than per-module behaviour.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/container/controller.h"
#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/migration/migration.h"
#include "src/model/pipeline.h"
#include "src/policy/policies.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

struct MachineSetup {
  std::string label;
  Topology (*make)();
  int vcpus;
  int baseline_id;
};

void PrintTo(const MachineSetup& s, std::ostream* os) { *os << s.label; }

class EndToEnd : public ::testing::TestWithParam<MachineSetup> {};

TEST_P(EndToEnd, FullWorkflowProducesConsistentDecisions) {
  const MachineSetup& setup = GetParam();
  const Topology topo = setup.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);

  // Step 1+2: concerns and important placements.
  const ImportantPlacementSet ips =
      GenerateImportantPlacements(topo, setup.vcpus, use_ic);
  ASSERT_GE(ips.placements.size(), 3u);

  // Step 3: train, persist, reload.
  PerformanceModel sim(topo, 0.015, 3);
  ModelPipeline pipeline(ips, sim, setup.baseline_id, 11);
  Rng rng(21);
  PerfModelConfig config;
  config.forest.num_trees = 60;
  config.cv_trees = 25;
  config.runs_per_workload = 2;
  const TrainedPerfModel trained =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(48, rng), config);
  std::stringstream buffer;
  trained.SaveText(buffer);
  const TrainedPerfModel model = TrainedPerfModel::LoadText(buffer);

  // Step 4: the controller places unseen containers.
  PlacementController controller(ips, sim, model, setup.baseline_id);
  for (const char* name : {"WTbtree", "gcc", "streamcluster"}) {
    VirtualContainer container;
    container.workload = PaperWorkload(name);
    container.vcpus = setup.vcpus;
    container.goal_fraction = 0.95;
    const PlacementDecision decision = controller.Place(container);

    // The decision references a real placement, the prediction roughly
    // matches the measurement, and the timeline is bounded by two probes
    // plus two migrations of this container's memory. streamcluster is the
    // documented outlier (EXPERIMENTS.md: no close training neighbour), so
    // it only gets the structural checks.
    const ImportantPlacement& chosen = ips.ById(decision.chosen_placement_id);
    EXPECT_GE(chosen.NodeCount(), 1) << name;
    if (std::string(name) != "streamcluster") {
      EXPECT_NEAR(decision.measured_abs_throughput / decision.predicted_abs_throughput,
                  1.0, 0.35)
          << name;
    }
    const double max_migration =
        2.0 * FastMigrator().Migrate(container.workload).seconds;
    EXPECT_LE(decision.total_decision_seconds, 2 * 2.0 + max_migration + 1e-9) << name;
  }

  // The same model drives the packing policy without violations at a mild
  // goal.
  MultiTenantModel multi(topo, 0.015, 3);
  PackingContext ctx;
  ctx.topo = &topo;
  ctx.ips = &ips;
  ctx.solo_sim = &sim;
  ctx.multi_sim = &multi;
  ctx.vcpus = setup.vcpus;
  ctx.baseline_id = setup.baseline_id;
  MlPolicy policy(ctx, &model);
  Rng prng(5);
  const PolicyResult r = policy.Evaluate(PaperWorkload("gcc"), 0.8, prng, 1);
  EXPECT_GE(r.instances, 1);
  EXPECT_LT(r.violation_pct, 8.0);
}

TEST_P(EndToEnd, BaselinePlacementPredictsAsUnity) {
  const MachineSetup& setup = GetParam();
  const Topology topo = setup.make();
  const bool use_ic = InterconnectIsAsymmetric(topo);
  const ImportantPlacementSet ips =
      GenerateImportantPlacements(topo, setup.vcpus, use_ic);
  PerformanceModel sim(topo, 0.0, 0);  // noise-free
  ModelPipeline pipeline(ips, sim, setup.baseline_id, 11);
  const PerformanceVector v = pipeline.MeasureVector(PaperWorkload("wc"), 0);
  size_t baseline_index = 0;
  for (size_t i = 0; i < ips.placements.size(); ++i) {
    if (ips.placements[i].id == setup.baseline_id) {
      baseline_index = i;
    }
  }
  EXPECT_DOUBLE_EQ(v.relative[baseline_index], 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EndToEnd,
    ::testing::Values(MachineSetup{"amd", &AmdOpteron6272, 16, 1},
                      MachineSetup{"intel", &IntelXeonE74830v3, 24, 2},
                      MachineSetup{"zen", &AmdZenLike, 16, 1}),
    [](const ::testing::TestParamInfo<MachineSetup>& info) { return info.param.label; });

}  // namespace
}  // namespace numaplace
