// Tests for the multi-tenant MachineScheduler: concurrent containers with
// disjoint hardware-thread sets, probe caching across re-placements, the
// arrival -> probe -> place -> depart -> re-place lifecycle, and the split-L3
// (Zen) topology.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/occupancy.h"
#include "src/model/registry.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace numaplace {
namespace {

TrainedPerfModel TrainSmallModel(const ImportantPlacementSet& ips,
                                 const PerformanceModel& sim, int baseline_id) {
  ModelPipeline pipeline(ips, sim, baseline_id, /*seed=*/23);
  PerfModelConfig config;
  config.forest.num_trees = 60;
  config.cv_trees = 25;
  config.runs_per_workload = 2;
  Rng rng(7);
  return pipeline.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        sim_(topo_, 0.01, 3),
        model_(TrainSmallModel(ips_, sim_, /*baseline_id=*/1)) {
    registry_.Register(topo_.name(), 16, model_);
  }

  MachineScheduler MakeScheduler() {
    SchedulerConfig config;
    config.baseline_id = 1;
    MachineScheduler scheduler(topo_, sim_, &registry_, config);
    scheduler.ProvidePlacements(ips_);
    return scheduler;
  }

  ContainerRequest MakeRequest(int id, const std::string& workload, double goal) const {
    ContainerRequest request;
    request.id = id;
    request.workload = PaperWorkload(workload);
    request.workload.name += "#" + std::to_string(id);
    request.vcpus = 16;
    request.goal_fraction = goal;
    return request;
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel sim_;
  TrainedPerfModel model_;
  ModelRegistry registry_;
};

TEST_F(SchedulerTest, PlacesConcurrentContainersOnDisjointThreads) {
  MachineScheduler scheduler = MakeScheduler();
  std::set<int> all_threads;
  int total = 0;
  int id = 1;
  for (const char* name : {"gcc", "streamcluster", "kmeans"}) {
    const ScheduleOutcome outcome = scheduler.Submit(MakeRequest(id, name, 0.9), 0.0);
    ASSERT_TRUE(outcome.admitted) << name;
    EXPECT_NO_THROW(ips_.ById(outcome.placement_id)) << name;
    for (int t : outcome.placement.hw_threads) {
      EXPECT_TRUE(all_threads.insert(t).second)
          << "thread " << t << " assigned twice (container " << id << ")";
    }
    total += static_cast<int>(outcome.placement.hw_threads.size());
    ++id;
  }
  EXPECT_EQ(total, 48);
  EXPECT_EQ(scheduler.occupancy().BusyThreadCount(), 48);
  EXPECT_EQ(scheduler.occupancy().NumContainers(), 3);
  EXPECT_EQ(scheduler.RunningIds().size(), 3u);
  // Occupancy agrees with the outcomes thread for thread.
  for (int cid : scheduler.RunningIds()) {
    const ManagedContainer* c = scheduler.Find(cid);
    ASSERT_NE(c, nullptr);
    std::vector<int> owned = scheduler.occupancy().ThreadsOf(cid);
    std::vector<int> placed = c->placement.hw_threads;
    std::sort(placed.begin(), placed.end());
    EXPECT_EQ(owned, placed);
  }
}

TEST_F(SchedulerTest, QueuedContainerIsAdmittedOnDepartureReusingProbes) {
  MachineScheduler scheduler = MakeScheduler();
  // Easy goals pick the fewest-node (2-node) placement; four of them fill
  // the 8-node machine exactly.
  for (int id = 1; id <= 4; ++id) {
    ASSERT_TRUE(scheduler.Submit(MakeRequest(id, "gcc", 0.5), 0.0).admitted);
  }
  EXPECT_EQ(scheduler.occupancy().FreeThreadCount(), 0);

  const ScheduleOutcome queued = scheduler.Submit(MakeRequest(5, "gcc", 0.5), 10.0);
  EXPECT_FALSE(queued.admitted);
  EXPECT_EQ(scheduler.PendingIds(), std::vector<int>{5});
  // The probes ran anyway and the prediction is cached for the retry.
  EXPECT_NE(registry_.FindPrediction(5), nullptr);
  const int probes_before = scheduler.stats().probe_runs;
  EXPECT_EQ(probes_before, 10);  // five fresh probe pairs

  const std::vector<ScheduleOutcome> replaced = scheduler.Depart(1, 20.0);
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(replaced[0].container_id, 5);
  EXPECT_TRUE(replaced[0].admitted);
  EXPECT_TRUE(replaced[0].reused_cached_probes);
  EXPECT_EQ(scheduler.stats().probe_runs, probes_before);  // no re-probing
  EXPECT_GE(scheduler.stats().cached_probe_reuses, 1);
  EXPECT_TRUE(scheduler.PendingIds().empty());
  EXPECT_EQ(scheduler.stats().admitted_from_queue, 1);
}

TEST_F(SchedulerTest, DegradedContainerIsUpgradedAfterDeparturesWithoutReprobing) {
  MachineScheduler scheduler = MakeScheduler();
  // Fill six nodes with easy containers, leaving two free.
  for (int id = 1; id <= 3; ++id) {
    ASSERT_TRUE(scheduler.Submit(MakeRequest(id, "gcc", 0.5), 0.0).admitted);
  }
  // A bandwidth-bound container with an unreachable goal is forced into the
  // remaining two nodes, well below its best placement.
  const ScheduleOutcome crowded =
      scheduler.Submit(MakeRequest(9, "streamcluster", 1.1), 1.0);
  ASSERT_TRUE(crowded.admitted);
  EXPECT_FALSE(crowded.meets_goal);
  const double crowded_predicted = crowded.predicted_abs_throughput;
  const int probes_before = scheduler.stats().probe_runs;

  // As capacity frees up, the re-placement pass migrates it to a better
  // class using the cached probes.
  scheduler.Depart(1, 2.0);
  scheduler.Depart(2, 3.0);
  scheduler.Depart(3, 4.0);

  const ManagedContainer* upgraded = scheduler.Find(9);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_EQ(upgraded->state, ContainerState::kRunning);
  EXPECT_GE(upgraded->replacements, 1);
  EXPECT_GT(upgraded->predicted_abs_throughput, crowded_predicted);
  EXPECT_GE(scheduler.stats().upgrades, 1);
  EXPECT_GE(scheduler.stats().cached_probe_reuses, 1);
  EXPECT_EQ(scheduler.stats().probe_runs, probes_before);
}

TEST_F(SchedulerTest, TraceReplayRunsTheFullLifecycle) {
  MachineScheduler scheduler = MakeScheduler();
  TraceConfig config;
  config.num_containers = 12;
  config.mean_interarrival_seconds = 60.0;
  config.mean_lifetime_seconds = 240.0;
  config.vcpus = 16;
  config.goal_fraction = 0.9;
  Rng rng(5);
  const EventStream trace = GeneratePoissonTrace(config, rng);
  ASSERT_EQ(trace.size(), 24u);

  OutcomeRecorder recorder;
  scheduler.Replay(trace, &recorder);
  // One admission or queueing per arrival, plus re-placements.
  EXPECT_GE(recorder.outcomes.size(), 12u);
  for (const FleetOutcome& outcome : recorder.outcomes) {
    EXPECT_EQ(outcome.machine_id, 0);  // a standalone scheduler is machine 0
  }

  const SchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 12);
  EXPECT_EQ(stats.departed, 12);
  EXPECT_EQ(stats.admitted_immediately + stats.queued, 12);
  // Every container departed: the machine drains and the cache empties.
  EXPECT_EQ(scheduler.occupancy().BusyThreadCount(), 0);
  EXPECT_TRUE(scheduler.RunningIds().empty());
  EXPECT_TRUE(scheduler.PendingIds().empty());
  EXPECT_EQ(registry_.NumCachedPredictions(), 0u);
  EXPECT_GT(scheduler.TimeAveragedUtilization(), 0.0);
  EXPECT_LT(scheduler.TimeAveragedUtilization(), 1.0);
}

TEST_F(SchedulerTest, StepRoutesContainerEventsAndRejectsMachineEvents) {
  MachineScheduler scheduler = MakeScheduler();

  ContainerArrival arrival;
  arrival.container_id = 1;
  arrival.workload = PaperWorkload("gcc");
  arrival.workload.name += "#1";
  arrival.vcpus = 16;
  arrival.goal_fraction = 0.9;

  OutcomeRecorder recorder;
  scheduler.Step(FleetEvent::Arrival(0.0, arrival), &recorder);
  ASSERT_EQ(recorder.outcomes.size(), 1u);
  EXPECT_TRUE(recorder.outcomes[0].outcome.admitted);
  EXPECT_EQ(recorder.outcomes[0].outcome.container_id, 1);

  scheduler.Step(FleetEvent::Departure(5.0, 1), &recorder);
  EXPECT_TRUE(scheduler.RunningIds().empty());
  EXPECT_EQ(scheduler.stats().departed, 1);

  // Machine lifecycle events address a fleet, not a single machine.
  EXPECT_THROW(scheduler.Step(FleetEvent::Fail(6.0, 0)), std::logic_error);
  EXPECT_THROW(scheduler.Step(FleetEvent::Drain(6.0, 0)), std::logic_error);
  EXPECT_THROW(scheduler.Step(FleetEvent::Rejoin(6.0, 0)), std::logic_error);
}

TEST_F(SchedulerTest, RejectsLiveDuplicateIdsAndUnknownDepartures) {
  MachineScheduler scheduler = MakeScheduler();
  ASSERT_TRUE(scheduler.Submit(MakeRequest(1, "gcc", 0.9), 0.0).admitted);
  EXPECT_THROW(scheduler.Submit(MakeRequest(1, "wc", 0.9), 1.0), std::logic_error);
  EXPECT_THROW(scheduler.Depart(99, 2.0), std::logic_error);
  scheduler.Depart(1, 3.0);
  EXPECT_THROW(scheduler.Depart(1, 4.0), std::logic_error);
  // A departed id may be reused.
  EXPECT_TRUE(scheduler.Submit(MakeRequest(1, "wc", 0.9), 5.0).admitted);
}

TEST(SchedulerZen, SplitL3LifecyclePreservesClassStructure) {
  const Topology zen = AmdZenLike();
  const ImportantPlacementSet ips = GenerateImportantPlacements(zen, 16, false);
  PerformanceModel sim(zen, 0.01, 3);
  const TrainedPerfModel model = TrainSmallModel(ips, sim, /*baseline_id=*/1);
  ModelRegistry registry;
  registry.Register(zen.name(), 16, model);

  SchedulerConfig config;
  config.baseline_id = 1;
  config.use_interconnect_concern = false;
  MachineScheduler scheduler(zen, sim, &registry, config);
  scheduler.ProvidePlacements(ips);

  const auto make_request = [&](int id, const char* workload) {
    ContainerRequest request;
    request.id = id;
    request.workload = PaperWorkload(workload);
    request.workload.name += "#" + std::to_string(id);
    request.vcpus = 16;
    request.goal_fraction = 0.8;
    return request;
  };

  // Two 16-vCPU containers fill the 32-thread machine.
  const ScheduleOutcome first = scheduler.Submit(make_request(1, "canneal"), 0.0);
  const ScheduleOutcome second = scheduler.Submit(make_request(2, "gcc"), 1.0);
  ASSERT_TRUE(first.admitted);
  ASSERT_TRUE(second.admitted);
  std::set<int> threads(first.placement.hw_threads.begin(),
                        first.placement.hw_threads.end());
  for (int t : second.placement.hw_threads) {
    EXPECT_TRUE(threads.insert(t).second) << "thread " << t << " double-booked";
  }
  EXPECT_EQ(scheduler.occupancy().FreeThreadCount(), 0);

  // Occupancy-constrained realization preserved each class's split-L3
  // structure: the realized CCX (L3 group) count matches the class score.
  for (const ScheduleOutcome* outcome : {&first, &second}) {
    const ImportantPlacement& ip = ips.ById(outcome->placement_id);
    const ScoreVector score = ScoreOf(outcome->placement, zen);
    EXPECT_EQ(score.l3_score, ip.l3_score);
    EXPECT_EQ(score.mem_score, ip.NodeCount());
    EXPECT_EQ(score.l2_score, ip.l2_score);
  }

  // Third container queues, then is re-placed on departure with its cached
  // probes — the full arrival -> probe -> place -> depart -> re-place loop
  // on a split-L3 machine.
  const ScheduleOutcome queued = scheduler.Submit(make_request(3, "streamcluster"), 1.0);
  EXPECT_FALSE(queued.admitted);
  const int probes_before = scheduler.stats().probe_runs;
  const std::vector<ScheduleOutcome> replaced = scheduler.Depart(1, 2.0);
  ASSERT_GE(replaced.size(), 1u);
  EXPECT_EQ(replaced[0].container_id, 3);
  EXPECT_TRUE(replaced[0].admitted);
  EXPECT_TRUE(replaced[0].reused_cached_probes);
  EXPECT_EQ(scheduler.stats().probe_runs, probes_before);
  const ScoreVector score = ScoreOf(replaced[0].placement, zen);
  EXPECT_EQ(score.l3_score, ips.ById(replaced[0].placement_id).l3_score);
}

TEST(OccupancyMap, AcquireReleaseAndFreeCapacityQueries) {
  const Topology amd = AmdOpteron6272();
  OccupancyMap occ(amd);
  EXPECT_EQ(occ.FreeThreadCount(), amd.NumHwThreads());
  EXPECT_EQ(occ.FullyFreeNodes().size(), 8u);

  Placement p;
  p.hw_threads = amd.HwThreadsOnNode(2);
  occ.Acquire(7, p);
  EXPECT_EQ(occ.BusyThreadCount(), amd.NodeCapacity());
  EXPECT_EQ(occ.FreeThreadsOnNode(2), 0);
  EXPECT_EQ(occ.FreeThreadsOnNode(3), amd.NodeCapacity());
  EXPECT_EQ(occ.FullyFreeNodes().size(), 7u);
  EXPECT_EQ(occ.OwnerOf(p.hw_threads[0]), 7);
  EXPECT_EQ(occ.NumContainers(), 1);

  // Double-booking is rejected and leaves the map unchanged.
  Placement overlap;
  overlap.hw_threads = {p.hw_threads[0]};
  EXPECT_THROW(occ.Acquire(8, overlap), std::logic_error);
  EXPECT_EQ(occ.BusyThreadCount(), amd.NodeCapacity());

  EXPECT_EQ(occ.Release(7), amd.NodeCapacity());
  EXPECT_EQ(occ.FreeThreadCount(), amd.NumHwThreads());
  EXPECT_EQ(occ.Release(7), 0);
}

TEST(Trace, PoissonTraceIsWellFormed) {
  TraceConfig config;
  config.num_containers = 20;
  Rng rng(11);
  const EventStream trace = GeneratePoissonTrace(config, rng);
  ASSERT_EQ(trace.size(), 40u);
  double last = 0.0;
  std::set<int> arrived;
  std::set<int> departed;
  std::set<std::string> names;
  for (const FleetEvent& event : trace) {
    EXPECT_GE(event.time_seconds, last);
    last = event.time_seconds;
    if (const ContainerArrival* arrival = event.arrival()) {
      EXPECT_TRUE(arrived.insert(arrival->container_id).second);
      EXPECT_TRUE(names.insert(arrival->workload.name).second)
          << "duplicate workload name " << arrival->workload.name;
      EXPECT_EQ(arrival->vcpus, config.vcpus);
    } else {
      const ContainerDeparture* departure = event.departure();
      ASSERT_NE(departure, nullptr);
      EXPECT_TRUE(arrived.count(departure->container_id))
          << "departure before arrival for " << departure->container_id;
      EXPECT_TRUE(departed.insert(departure->container_id).second);
    }
  }
  EXPECT_EQ(arrived.size(), 20u);
  EXPECT_EQ(departed.size(), 20u);
}

}  // namespace
}  // namespace numaplace
