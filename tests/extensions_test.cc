// Tests for the §3 extension policies: random placement search and
// interleaving with safe containers.
#include <gtest/gtest.h>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/policy/extensions.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace numaplace {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : topo_(AmdOpteron6272()),
        ips_(GenerateImportantPlacements(topo_, 16, true)),
        solo_(topo_, 0.01, 3),
        multi_(topo_, 0.01, 3),
        pipeline_(ips_, solo_, 1, 11) {
    ctx_.topo = &topo_;
    ctx_.ips = &ips_;
    ctx_.solo_sim = &solo_;
    ctx_.multi_sim = &multi_;
    ctx_.vcpus = 16;
    ctx_.baseline_id = 1;

    PerfModelConfig config;
    config.forest.num_trees = 60;
    config.cv_trees = 25;
    config.runs_per_workload = 2;
    Rng rng(21);
    model_ = pipeline_.TrainPerfAuto(SampleTrainingWorkloads(36, rng), config);
  }

  Topology topo_;
  ImportantPlacementSet ips_;
  PerformanceModel solo_;
  MultiTenantModel multi_;
  ModelPipeline pipeline_;
  TrainedPerfModel model_;
  PackingContext ctx_;
};

TEST_F(ExtensionsTest, RandomSearchFindsValidPlacements) {
  RandomSearchPolicy policy(ctx_, /*samples=*/10);
  Rng rng(5);
  const auto result = policy.Search(PaperWorkload("gcc"), rng);
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_EQ(result.best.NumVcpus(), 16);
  EXPECT_TRUE(result.best.IsOneVcpuPerHwThread());
  EXPECT_GT(result.samples_used, 0);
  EXPECT_LE(result.samples_used, 10);
}

TEST_F(ExtensionsTest, RandomSearchQualityImprovesWithBudget) {
  Rng rng(6);
  const WorkloadProfile w = PaperWorkload("WTbtree");
  double few_best = 0.0;
  double many_best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    few_best += RandomSearchPolicy(ctx_, 2).Search(w, rng).best_throughput;
    many_best += RandomSearchPolicy(ctx_, 50).Search(w, rng).best_throughput;
  }
  EXPECT_GT(many_best, few_best);
}

TEST_F(ExtensionsTest, RandomSearchDecisionCostScalesWithSamples) {
  Rng rng(7);
  const WorkloadProfile w = PaperWorkload("postgres-tpch");  // heavy memory
  const auto cheap = RandomSearchPolicy(ctx_, 3).Search(w, rng);
  const auto costly = RandomSearchPolicy(ctx_, 30).Search(w, rng);
  EXPECT_GT(costly.decision_cost_seconds, 3.0 * cheap.decision_cost_seconds);
}

TEST_F(ExtensionsTest, RandomSearchEvaluateReportsSingleInstance) {
  RandomSearchPolicy policy(ctx_, 5);
  Rng rng(8);
  const PolicyResult r = policy.Evaluate(PaperWorkload("gcc"), 0.9, rng, 2);
  EXPECT_EQ(r.instances, 1);
  EXPECT_GE(r.violation_pct, 0.0);
}

TEST_F(ExtensionsTest, InterleavingAdmitsSafeFillersOnly) {
  const WorkloadProfile safe = PaperWorkload("swaptions");
  const WorkloadProfile noisy = PaperWorkload("streamcluster");
  const WorkloadProfile primary = PaperWorkload("postgres-tpch");

  const InterleavedMlPolicy with_safe(ctx_, &model_, &safe, 8);
  const InterleavedMlPolicy with_noisy(ctx_, &model_, &noisy, 8);
  const auto safe_result = with_safe.EvaluateDetailed(primary, 1.0);
  const auto noisy_result = with_noisy.EvaluateDetailed(primary, 1.0);

  // The admission check keeps the primaries safe in both cases...
  EXPECT_LT(safe_result.primary.violation_pct, 5.0);
  EXPECT_LT(noisy_result.primary.violation_pct, 5.0);
  // ...and compute-bound fillers get at least as many slots as the
  // bandwidth hog.
  EXPECT_GE(safe_result.filler_instances, noisy_result.filler_instances);
}

TEST_F(ExtensionsTest, InterleavingNeverViolatesPrimaryGoal) {
  const WorkloadProfile filler = PaperWorkload("swaptions");
  const InterleavedMlPolicy policy(ctx_, &model_, &filler, 8);
  for (const char* primary : {"WTbtree", "gcc", "kmeans"}) {
    const auto r = policy.EvaluateDetailed(PaperWorkload(primary), 0.9);
    EXPECT_LT(r.primary.violation_pct, 5.0) << primary;
  }
}

TEST_F(ExtensionsTest, InterleavingWithFullMachineAdmitsNoFillers) {
  // At an easy goal the ML policy packs 4 primaries over all 8 nodes/64
  // cores; no idle threads remain for fillers.
  const WorkloadProfile filler = PaperWorkload("swaptions");
  const InterleavedMlPolicy policy(ctx_, &model_, &filler, 8);
  const auto r = policy.EvaluateDetailed(PaperWorkload("gcc"), 0.5);
  if (r.primary.instances == 4) {
    EXPECT_EQ(r.filler_instances, 0);
  }
}

TEST_F(ExtensionsTest, FillerPerformanceReportedWhenAdmitted) {
  const WorkloadProfile filler = PaperWorkload("swaptions");
  const InterleavedMlPolicy policy(ctx_, &model_, &filler, 8);
  const auto r = policy.EvaluateDetailed(PaperWorkload("postgres-tpch"), 1.0);
  if (r.filler_instances > 0) {
    EXPECT_GT(r.filler_mean_perf_vs_solo, 0.3);
    EXPECT_LE(r.filler_mean_perf_vs_solo, 1.05);
  }
}

TEST_F(ExtensionsTest, ConstructorValidation) {
  EXPECT_THROW(RandomSearchPolicy(ctx_, 0), std::logic_error);
  const WorkloadProfile filler = PaperWorkload("swaptions");
  EXPECT_THROW(InterleavedMlPolicy(ctx_, nullptr, &filler, 8), std::logic_error);
  EXPECT_THROW(InterleavedMlPolicy(ctx_, &model_, nullptr, 8), std::logic_error);
  EXPECT_THROW(InterleavedMlPolicy(ctx_, &model_, &filler, 0), std::logic_error);
}

}  // namespace
}  // namespace numaplace
