#include "src/core/occupancy.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace numaplace {

OccupancyMap::OccupancyMap(const Topology& topo)
    : topo_(&topo),
      owner_(static_cast<size_t>(topo.NumHwThreads()), kFree),
      free_count_(topo.NumHwThreads()) {}

int OccupancyMap::OwnerOf(int hw_thread) const {
  NP_CHECK(hw_thread >= 0 && hw_thread < topo_->NumHwThreads());
  return owner_[static_cast<size_t>(hw_thread)];
}

void OccupancyMap::Acquire(int container_id, const Placement& placement) {
  NP_CHECK_MSG(container_id >= 0, "container ids must be non-negative");
  // Validate the whole claim before mutating anything, so a failed Acquire
  // leaves the map unchanged.
  for (int t : placement.hw_threads) {
    NP_CHECK_MSG(IsFree(t), "hardware thread " << t << " already owned by container "
                                               << OwnerOf(t));
  }
  for (int t : placement.hw_threads) {
    owner_[static_cast<size_t>(t)] = container_id;
  }
  free_count_ -= static_cast<int>(placement.hw_threads.size());
}

int OccupancyMap::Release(int container_id) {
  NP_CHECK(container_id >= 0);
  int released = 0;
  for (int& o : owner_) {
    if (o == container_id) {
      o = kFree;
      ++released;
    }
  }
  free_count_ += released;
  return released;
}

std::vector<int> OccupancyMap::ThreadsOf(int container_id) const {
  std::vector<int> out;
  for (int t = 0; t < topo_->NumHwThreads(); ++t) {
    if (owner_[static_cast<size_t>(t)] == container_id) {
      out.push_back(t);
    }
  }
  return out;
}

double OccupancyMap::Utilization() const {
  return static_cast<double>(BusyThreadCount()) / topo_->NumHwThreads();
}

namespace {

int CountFree(const OccupancyMap& occ, const std::vector<int>& threads) {
  int free = 0;
  for (int t : threads) {
    if (occ.IsFree(t)) {
      ++free;
    }
  }
  return free;
}

}  // namespace

int OccupancyMap::FreeThreadsOnNode(int node) const {
  return CountFree(*this, topo_->HwThreadsOnNode(node));
}

int OccupancyMap::FreeThreadsInL3Group(int l3_group) const {
  return CountFree(*this, topo_->HwThreadsInL3Group(l3_group));
}

int OccupancyMap::FreeThreadsInL2Group(int l2_group) const {
  return CountFree(*this, topo_->HwThreadsInL2Group(l2_group));
}

std::vector<int> OccupancyMap::FullyFreeNodes() const {
  std::vector<int> out;
  for (int node = 0; node < topo_->num_nodes(); ++node) {
    if (FreeThreadsOnNode(node) == topo_->NodeCapacity()) {
      out.push_back(node);
    }
  }
  return out;
}

int OccupancyMap::NumContainers() const {
  std::vector<int> ids;
  for (int o : owner_) {
    if (o != kFree) {
      ids.push_back(o);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return static_cast<int>(ids.size());
}

std::optional<Placement> RealizeOnFreeThreads(const ImportantPlacement& ip,
                                              const NodeSet& nodes, const Topology& topo,
                                              int vcpus, const OccupancyMap& occ) {
  const int node_count = static_cast<int>(nodes.size());
  NP_CHECK(node_count == ip.NodeCount());
  NP_CHECK_MSG(vcpus % node_count == 0, "unbalanced: vcpus not divisible by node count");
  NP_CHECK_MSG(ip.l3_score % node_count == 0, "unbalanced: L3 groups not even per node");
  NP_CHECK_MSG(ip.l2_score % ip.l3_score == 0,
               "unbalanced: L2 groups not even per L3 group");
  const int l3_per_node = ip.l3_score / node_count;
  const int l2_per_l3 = ip.l2_score / ip.l3_score;
  const int threads_per_l2 = vcpus / ip.l2_score;
  NP_CHECK(l3_per_node <= topo.L3GroupsPerNode());
  NP_CHECK(l2_per_l3 <= topo.L2GroupsPerL3Group());
  NP_CHECK(threads_per_l2 <= topo.L2GroupCapacity());

  Placement placement;
  placement.hw_threads.reserve(static_cast<size_t>(vcpus));
  for (int node : nodes) {
    NP_CHECK(node >= 0 && node < topo.num_nodes());
    // An L3 group qualifies when it still has l2_per_l3 L2 groups with
    // threads_per_l2 free threads each; first-fit in id order keeps the
    // result deterministic and packs low ids first, mirroring Realize().
    int l3_taken = 0;
    for (int l3_group : topo.L3GroupsOnNode(node)) {
      if (l3_taken == l3_per_node) {
        break;
      }
      std::vector<int> usable_l2;
      for (int l2_group : topo.L2GroupsInL3Group(l3_group)) {
        if (occ.FreeThreadsInL2Group(l2_group) >= threads_per_l2) {
          usable_l2.push_back(l2_group);
          if (static_cast<int>(usable_l2.size()) == l2_per_l3) {
            break;
          }
        }
      }
      if (static_cast<int>(usable_l2.size()) < l2_per_l3) {
        continue;
      }
      for (int l2_group : usable_l2) {
        int taken = 0;
        for (int t : topo.HwThreadsInL2Group(l2_group)) {
          if (taken == threads_per_l2) {
            break;
          }
          if (occ.IsFree(t)) {
            placement.hw_threads.push_back(t);
            ++taken;
          }
        }
        NP_CHECK(taken == threads_per_l2);
      }
      ++l3_taken;
    }
    if (l3_taken < l3_per_node) {
      return std::nullopt;
    }
  }
  NP_CHECK(static_cast<int>(placement.hw_threads.size()) == vcpus);
  return placement;
}

namespace {

// All node subsets of the given size, lexicographic.
void EnumerateNodeSets(int num_nodes, int size, NodeSet& prefix,
                       std::vector<NodeSet>& out) {
  if (static_cast<int>(prefix.size()) == size) {
    out.push_back(prefix);
    return;
  }
  const int start = prefix.empty() ? 0 : prefix.back() + 1;
  for (int node = start; node <= num_nodes - (size - static_cast<int>(prefix.size()));
       ++node) {
    prefix.push_back(node);
    EnumerateNodeSets(num_nodes, size, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::optional<Placement> RealizeAnywhereFree(const ImportantPlacement& ip,
                                             const Topology& topo, int vcpus,
                                             const OccupancyMap& occ) {
  std::vector<NodeSet> candidates;
  NodeSet prefix;
  EnumerateNodeSets(topo.num_nodes(), ip.NodeCount(), prefix, candidates);

  struct Ranked {
    int busy_nodes = 0;
    double bandwidth = 0.0;
    bool class_exact = false;
    const NodeSet* nodes = nullptr;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  const int threads_per_node = vcpus / ip.NodeCount();
  for (const NodeSet& nodes : candidates) {
    // Cheap pre-filter: every node needs at least threads_per_node free.
    bool enough = true;
    int busy_nodes = 0;
    for (int node : nodes) {
      const int free = occ.FreeThreadsOnNode(node);
      if (free < threads_per_node) {
        enough = false;
        break;
      }
      if (free < topo.NodeCapacity()) {
        ++busy_nodes;
      }
    }
    if (!enough) {
      continue;
    }
    const double bw = topo.AggregateBandwidth(nodes);
    ranked.push_back(
        {busy_nodes, bw, BandwidthNearlyEqual(bw, ip.interconnect_gbps), &nodes});
  }
  // Prefer node sets sharing the fewest nodes with incumbent containers
  // (co-tenancy on a node means contending for its memory controller), then
  // ones preserving the class's interconnect score, then higher bandwidth;
  // stable sort keeps lexicographic order within ties.
  std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.busy_nodes != b.busy_nodes) {
      return a.busy_nodes < b.busy_nodes;
    }
    if (a.class_exact != b.class_exact) {
      return a.class_exact;
    }
    return a.bandwidth > b.bandwidth;
  });

  for (const Ranked& candidate : ranked) {
    std::optional<Placement> placement =
        RealizeOnFreeThreads(ip, *candidate.nodes, topo, vcpus, occ);
    if (placement.has_value()) {
      return placement;
    }
  }
  return std::nullopt;
}

}  // namespace numaplace
