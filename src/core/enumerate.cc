#include "src/core/enumerate.h"

#include <algorithm>

#include "src/util/check.h"

namespace numaplace {

std::vector<int> GenerateScores(int vcpus, int count, int capacity) {
  NP_CHECK(vcpus > 0);
  NP_CHECK(count > 0);
  NP_CHECK(capacity > 0);
  std::vector<int> scores;
  for (int s = 1; s <= count; ++s) {
    if (vcpus % s == 0 && vcpus / s <= capacity) {
      scores.push_back(s);
    }
  }
  return scores;
}

std::vector<int> GenerateScores(int vcpus, const CountableConcern& concern,
                                const Topology& topo) {
  return GenerateScores(vcpus, concern.Count(topo), concern.Capacity(topo));
}

namespace {

// Recursively extends `current` with one more part containing the smallest
// uncovered node. `remaining` is sorted ascending.
void GenPack(const std::vector<int>& part_sizes, const std::vector<int>& remaining,
             Packing& current, std::vector<Packing>& out) {
  if (remaining.empty()) {
    out.push_back(current);
    return;
  }
  const int anchor = remaining.front();
  const int n_rest = static_cast<int>(remaining.size()) - 1;
  for (int size : part_sizes) {
    if (size > static_cast<int>(remaining.size())) {
      continue;
    }
    // Choose (size - 1) companions for the anchor from remaining[1..].
    std::vector<int> selector(static_cast<size_t>(n_rest), 0);
    std::fill(selector.begin(), selector.begin() + (size - 1), 1);
    // Iterate all combinations via prev_permutation on the selector mask
    // (starts at the lexicographically largest arrangement).
    do {
      NodeSet part = {anchor};
      std::vector<int> rest;
      for (int i = 0; i < n_rest; ++i) {
        if (selector[static_cast<size_t>(i)] != 0) {
          part.push_back(remaining[static_cast<size_t>(i) + 1]);
        } else {
          rest.push_back(remaining[static_cast<size_t>(i) + 1]);
        }
      }
      current.push_back(std::move(part));
      GenPack(part_sizes, rest, current, out);
      current.pop_back();
    } while (std::prev_permutation(selector.begin(), selector.end()));
  }
}

}  // namespace

std::vector<Packing> GeneratePackings(const std::vector<int>& l3_scores, int num_nodes) {
  NP_CHECK(num_nodes > 0);
  NP_CHECK(!l3_scores.empty());
  std::vector<int> nodes(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes[static_cast<size_t>(i)] = i;
  }
  std::vector<Packing> out;
  Packing current;
  GenPack(l3_scores, nodes, current, out);
  return out;
}

}  // namespace numaplace
