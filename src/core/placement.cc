#include "src/core/placement.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

std::vector<int> DistinctMapped(const std::vector<int>& hw_threads, const Topology& topo,
                                int (Topology::*mapper)(int) const) {
  std::set<int> distinct;
  for (int t : hw_threads) {
    distinct.insert((topo.*mapper)(t));
  }
  return {distinct.begin(), distinct.end()};
}

}  // namespace

NodeSet Placement::NodesUsed(const Topology& topo) const {
  return DistinctMapped(hw_threads, topo, &Topology::NodeOf);
}

std::vector<int> Placement::L3GroupsUsed(const Topology& topo) const {
  return DistinctMapped(hw_threads, topo, &Topology::L3GroupOf);
}

std::vector<int> Placement::L2GroupsUsed(const Topology& topo) const {
  return DistinctMapped(hw_threads, topo, &Topology::L2GroupOf);
}

std::vector<int> Placement::CoresUsed(const Topology& topo) const {
  return DistinctMapped(hw_threads, topo, &Topology::CoreOf);
}

bool Placement::IsOneVcpuPerHwThread() const {
  std::set<int> distinct(hw_threads.begin(), hw_threads.end());
  return distinct.size() == hw_threads.size();
}

double Placement::MeanPairwiseLatencyNs(const Topology& topo) const {
  const size_t n = hw_threads.size();
  if (n < 2) {
    return 0.0;
  }
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      total += topo.CommunicationLatencyNs(hw_threads[i], hw_threads[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

std::string Placement::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < hw_threads.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << hw_threads[i];
  }
  os << "]";
  return os.str();
}

std::string ScoreVector::ToString() const {
  std::ostringstream os;
  os << "[L2=" << l2_score << ", L3=" << l3_score;
  if (mem_score != l3_score) {
    os << ", MemCtl=" << mem_score;
  }
  os << ", IC=" << interconnect_gbps << "]";
  return os.str();
}

ScoreVector ScoreOf(const Placement& placement, const Topology& topo) {
  NP_CHECK(!placement.hw_threads.empty());
  ScoreVector score;
  score.l2_score = static_cast<int>(placement.L2GroupsUsed(topo).size());
  score.l3_score = static_cast<int>(placement.L3GroupsUsed(topo).size());
  const NodeSet nodes = placement.NodesUsed(topo);
  score.mem_score = static_cast<int>(nodes.size());
  score.interconnect_gbps = topo.AggregateBandwidth(nodes);
  return score;
}

}  // namespace numaplace
