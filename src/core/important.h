// Algorithm 3 (§4): filter the packings down to the Pareto-efficient set and
// expand the surviving placement classes with their compatible L2 scores,
// producing the machine's important placements for a given vCPU count.
#ifndef NUMAPLACE_SRC_CORE_IMPORTANT_H_
#define NUMAPLACE_SRC_CORE_IMPORTANT_H_

#include <string>
#include <vector>

#include "src/core/enumerate.h"
#include "src/core/placement.h"
#include "src/topology/topology.h"

namespace numaplace {

// One important placement: a placement class (identified by its score
// vector) together with a representative node set it can be realized on.
struct ImportantPlacement {
  int id = 0;               // 1-based; stable deterministic ordering
  NodeSet nodes;            // representative node set
  int l3_score = 0;         // L3 caches in use (== nodes.size() classically)
  int l2_score = 0;         // L2 groups in use
  double interconnect_gbps = 0.0;
  bool shares_l2 = false;   // more than one vCPU per L2 group

  // NUMA nodes in use — the resource-allocation unit (§3). On machines with
  // one L3 per node this equals l3_score.
  int NodeCount() const { return static_cast<int>(nodes.size()); }

  ScoreVector Score() const {
    return {l2_score, l3_score, NodeCount(), interconnect_gbps};
  }
  std::string ToString() const;
};

struct ImportantPlacementSet {
  int vcpus = 0;
  std::vector<ImportantPlacement> placements;
  // The Pareto-efficient packings that produced them; the packing policies
  // use these to co-locate several containers without interference.
  std::vector<Packing> pareto_packings;

  const ImportantPlacement& ById(int id) const;
  // Placements whose L3 score is exactly `l3_score`.
  std::vector<ImportantPlacement> WithL3Score(int l3_score) const;
  // Placements spanning exactly `nodes` NUMA nodes.
  std::vector<ImportantPlacement> WithNodeCount(int nodes) const;
};

// Runs the full §4 pipeline: Algorithm 1 (scores), Algorithm 2 (packings),
// duplicate removal, the interconnect Pareto filter, and L2 expansion.
//
// `use_interconnect_concern` should be true on machines with an asymmetric
// interconnect (see InterconnectIsAsymmetric); with it false, packings are
// deduplicated purely by their L3-score multiset, which is what the paper
// does on the Intel system.
//
// Deviation from the paper's pseudocode, documented in DESIGN.md: packings
// with identical sorted score vectors would remove each other under the
// printed permutation loop; we deduplicate by score first and then remove
// only strictly dominated packings.
ImportantPlacementSet GenerateImportantPlacements(const Topology& topo, int vcpus,
                                                  bool use_interconnect_concern);

// Realizes an important placement as a concrete vCPU -> hardware-thread
// assignment on its representative nodes: vCPUs are spread evenly over the
// nodes, then over l3_score/NodeCount L3 groups per node, then over
// l2_score/l3_score L2 groups per L3 group (lowest hardware-thread ids
// first).
Placement Realize(const ImportantPlacement& ip, const Topology& topo, int vcpus);

// Realizes the same placement class on a different node set of equal size
// (used when packing multiple containers).
Placement RealizeOnNodes(const ImportantPlacement& ip, const NodeSet& nodes,
                         const Topology& topo, int vcpus);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CORE_IMPORTANT_H_
