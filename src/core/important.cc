#include "src/core/important.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

// Bandwidths come from a fixed measured table, so exact comparison is almost
// right; quantization guards against accumulation-order noise in sums.
int64_t QuantizeBw(double gbps) { return static_cast<int64_t>(std::llround(gbps * 1e6)); }

// Sorted multiset of (part size, quantized interconnect score): the identity
// of a packing with respect to resource sharing.
using PackingKey = std::vector<std::pair<int, int64_t>>;

PackingKey KeyOf(const Packing& packing, const Topology& topo, bool use_ic) {
  PackingKey key;
  key.reserve(packing.size());
  for (const NodeSet& part : packing) {
    const int64_t ic = use_ic ? QuantizeBw(topo.AggregateBandwidth(part)) : 0;
    key.emplace_back(static_cast<int>(part.size()), ic);
  }
  std::sort(key.begin(), key.end());
  return key;
}

// Sorted multiset of part sizes only (the L3-score multiset).
std::vector<int> SizesOf(const PackingKey& key) {
  std::vector<int> sizes;
  sizes.reserve(key.size());
  for (const auto& [size, ic] : key) {
    sizes.push_back(size);
  }
  return sizes;  // already sorted: key is sorted with size as primary
}

// True when every element of a's sorted IC vector is <= b's and at least one
// is strictly smaller. Both keys must have the same L3-score multiset and
// therefore the same length.
bool StrictlyDominated(const PackingKey& a, const PackingKey& b) {
  NP_CHECK(a.size() == b.size());
  bool any_strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    NP_CHECK(a[i].first == b[i].first);
    if (a[i].second > b[i].second) {
      return false;
    }
    if (a[i].second < b[i].second) {
      any_strict = true;
    }
  }
  return any_strict;
}

}  // namespace

std::string ImportantPlacement::ToString() const {
  std::ostringstream os;
  os << "#" << id << " nodes={";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << nodes[i];
  }
  os << "} L3=" << l3_score << " L2=" << l2_score << (shares_l2 ? " (shared L2)" : "")
     << " IC=" << interconnect_gbps;
  if (l3_score != NodeCount()) {
    os << " (split L3: " << NodeCount() << " memory controllers)";
  }
  return os.str();
}

const ImportantPlacement& ImportantPlacementSet::ById(int id) const {
  for (const ImportantPlacement& p : placements) {
    if (p.id == id) {
      return p;
    }
  }
  NP_CHECK_MSG(false, "no important placement with id " << id);
  __builtin_unreachable();
}

std::vector<ImportantPlacement> ImportantPlacementSet::WithL3Score(int l3_score) const {
  std::vector<ImportantPlacement> out;
  for (const ImportantPlacement& p : placements) {
    if (p.l3_score == l3_score) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<ImportantPlacement> ImportantPlacementSet::WithNodeCount(int nodes) const {
  std::vector<ImportantPlacement> out;
  for (const ImportantPlacement& p : placements) {
    if (p.NodeCount() == nodes) {
      out.push_back(p);
    }
  }
  return out;
}

ImportantPlacementSet GenerateImportantPlacements(const Topology& topo, int vcpus,
                                                  bool use_interconnect_concern) {
  NP_CHECK(vcpus > 0);
  NP_CHECK_MSG(vcpus <= topo.NumHwThreads(),
               "container has more vCPUs than the machine has hardware threads");

  // Algorithm 1: balanced + feasible scores per countable concern. The node
  // (memory-controller) scores size the packings, because the NUMA node is
  // the unit of resource allocation (§3); on the paper's machines the L3
  // concern coincides with it, on split-L3 machines (Zen, §8) the L3 scores
  // become an extra expansion dimension like the L2 scores.
  const std::vector<int> mem_scores =
      GenerateScores(vcpus, topo.num_nodes(), topo.NodeCapacity());
  const std::vector<int> l3_scores =
      GenerateScores(vcpus, topo.NumL3Groups(), topo.L3GroupCapacity());
  const std::vector<int> l2_scores =
      GenerateScores(vcpus, topo.NumL2Groups(), topo.L2GroupCapacity());
  NP_CHECK_MSG(!mem_scores.empty(),
               "no feasible balanced node count for " << vcpus << " vCPUs");
  NP_CHECK_MSG(!l3_scores.empty(), "no feasible balanced L3 score for " << vcpus << " vCPUs");
  NP_CHECK_MSG(!l2_scores.empty(), "no feasible balanced L2 score for " << vcpus << " vCPUs");

  // Algorithm 2: all packings of the nodes into node-score-sized parts.
  const std::vector<Packing> all_packings = GeneratePackings(mem_scores, topo.num_nodes());

  // Duplicate removal: keep one representative packing per score-multiset.
  std::map<PackingKey, Packing> unique;
  for (const Packing& packing : all_packings) {
    unique.try_emplace(KeyOf(packing, topo, use_interconnect_concern), packing);
  }

  // Algorithm 3, Pareto phase: within each group of packings with identical
  // L3-score multisets, drop the ones strictly dominated on the sorted
  // interconnect-score vector. (The interconnect concern does not affect cost
  // and can never have an inverse relationship with performance; the L2 and
  // L3 concerns can, so no filtering happens on them.) Strict domination is
  // irreflexive and transitive, so filtering against the full group is safe:
  // a dominator always survives or is itself dominated by a survivor.
  std::vector<std::pair<PackingKey, Packing>> survivors;
  if (use_interconnect_concern) {
    for (const auto& [key, packing] : unique) {
      bool dominated = false;
      const std::vector<int> sizes = SizesOf(key);
      for (const auto& [other_key, other] : unique) {
        if (&other == &packing || SizesOf(other_key) != sizes) {
          continue;
        }
        if (StrictlyDominated(key, other_key)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        survivors.emplace_back(key, packing);
      }
    }
  } else {
    survivors.assign(unique.begin(), unique.end());
  }

  // Collect distinct placement classes (l3 score, interconnect score) with a
  // representative node set from the surviving packings.
  std::map<std::pair<int, int64_t>, NodeSet> classes;
  for (const auto& [key, packing] : survivors) {
    for (const NodeSet& part : packing) {
      const int64_t ic =
          use_interconnect_concern ? QuantizeBw(topo.AggregateBandwidth(part)) : 0;
      classes.try_emplace({static_cast<int>(part.size()), ic}, part);
    }
  }

  // Algorithm 3, cache expansion: each node-set class is paired with every
  // compatible L3 score (split-L3 machines only; degenerate otherwise) and
  // every compatible L2 score. Compatibility keeps the placement balanced:
  // the finer level's score must divide evenly over the coarser level's
  // instances, and the chosen instances must physically exist underneath.
  ImportantPlacementSet result;
  result.vcpus = vcpus;
  const int l3_groups_per_node = topo.L3GroupsPerNode();
  const int l2_groups_per_l3 = topo.L2GroupsPerL3Group();
  for (const auto& [class_key, nodes] : classes) {
    const int node_count = class_key.first;
    for (int l3s : l3_scores) {
      if (l3s % node_count != 0 || l3s / node_count > l3_groups_per_node) {
        continue;
      }
      for (int l2s : l2_scores) {
        if (l2s % l3s != 0 || l2s / l3s > l2_groups_per_l3) {
          continue;
        }
        ImportantPlacement ip;
        ip.nodes = nodes;
        ip.l3_score = l3s;
        ip.l2_score = l2s;
        ip.interconnect_gbps = topo.AggregateBandwidth(nodes);
        ip.shares_l2 = vcpus / l2s > 1;
        result.placements.push_back(std::move(ip));
      }
    }
  }

  // Deterministic numbering: by node count, then L3 score, then L2 score,
  // then decreasing interconnect bandwidth. Placement #1 is thus the
  // fewest-node, most-shared configuration (the AMD baseline in the paper).
  std::sort(result.placements.begin(), result.placements.end(),
            [](const ImportantPlacement& a, const ImportantPlacement& b) {
              if (a.NodeCount() != b.NodeCount()) {
                return a.NodeCount() < b.NodeCount();
              }
              if (a.l3_score != b.l3_score) {
                return a.l3_score < b.l3_score;
              }
              if (a.l2_score != b.l2_score) {
                return a.l2_score < b.l2_score;
              }
              return a.interconnect_gbps > b.interconnect_gbps;
            });
  for (size_t i = 0; i < result.placements.size(); ++i) {
    result.placements[i].id = static_cast<int>(i) + 1;
  }

  for (auto& [key, packing] : survivors) {
    result.pareto_packings.push_back(std::move(packing));
  }
  return result;
}

Placement RealizeOnNodes(const ImportantPlacement& ip, const NodeSet& nodes,
                         const Topology& topo, int vcpus) {
  const int node_count = static_cast<int>(nodes.size());
  NP_CHECK(node_count == ip.NodeCount());
  NP_CHECK_MSG(vcpus % node_count == 0, "unbalanced: vcpus not divisible by node count");
  NP_CHECK_MSG(ip.l3_score % node_count == 0, "unbalanced: L3 groups not even per node");
  NP_CHECK_MSG(ip.l2_score % ip.l3_score == 0,
               "unbalanced: L2 groups not even per L3 group");
  const int threads_per_node = vcpus / node_count;
  const int l3_per_node = ip.l3_score / node_count;
  const int l2_per_l3 = ip.l2_score / ip.l3_score;
  const int threads_per_l2 = vcpus / ip.l2_score;
  NP_CHECK(l3_per_node <= topo.L3GroupsPerNode());
  NP_CHECK(l2_per_l3 <= topo.L2GroupsPerL3Group());
  NP_CHECK(threads_per_l2 <= topo.L2GroupCapacity());
  NP_CHECK(threads_per_node <= topo.NodeCapacity());

  Placement placement;
  placement.hw_threads.reserve(static_cast<size_t>(vcpus));
  for (int node : nodes) {
    NP_CHECK(node >= 0 && node < topo.num_nodes());
    const int first_core = node * topo.cores_per_node();
    for (int g3 = 0; g3 < l3_per_node; ++g3) {
      const int l3_first_core = first_core + g3 * topo.cores_per_l3_group();
      for (int g2 = 0; g2 < l2_per_l3; ++g2) {
        // First hardware thread of the g2-th L2 group in this L3 group.
        const int group_first_thread =
            (l3_first_core + g2 * topo.cores_per_l2_group()) * topo.smt_per_core();
        for (int t = 0; t < threads_per_l2; ++t) {
          placement.hw_threads.push_back(group_first_thread + t);
        }
      }
    }
  }
  NP_CHECK(static_cast<int>(placement.hw_threads.size()) == vcpus);
  return placement;
}

Placement Realize(const ImportantPlacement& ip, const Topology& topo, int vcpus) {
  return RealizeOnNodes(ip, ip.nodes, topo, vcpus);
}

}  // namespace numaplace
