// Placement of a container's virtual cores onto hardware threads, and the
// score vector that identifies a placement class (§4 of the paper).
#ifndef NUMAPLACE_SRC_CORE_PLACEMENT_H_
#define NUMAPLACE_SRC_CORE_PLACEMENT_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace numaplace {

// A set of NUMA nodes, sorted ascending, no duplicates.
using NodeSet = std::vector<int>;

// A concrete assignment: hw_threads[i] is the hardware thread hosting vCPU i.
// Balanced placements (the only kind the model considers, §3) assign at most
// one vCPU per hardware thread; the general struct also represents unbalanced
// assignments produced by the simulated unpinned Linux mapper.
struct Placement {
  std::vector<int> hw_threads;

  int NumVcpus() const { return static_cast<int>(hw_threads.size()); }

  // Distinct nodes / L3 groups / L2 groups / cores touched by this placement.
  NodeSet NodesUsed(const Topology& topo) const;
  std::vector<int> L3GroupsUsed(const Topology& topo) const;
  std::vector<int> L2GroupsUsed(const Topology& topo) const;
  std::vector<int> CoresUsed(const Topology& topo) const;

  // True when every vCPU has a hardware thread to itself.
  bool IsOneVcpuPerHwThread() const;

  // Mean pairwise cross-vCPU communication latency (ns); 0 for <2 vCPUs.
  double MeanPairwiseLatencyNs(const Topology& topo) const;

  std::string ToString() const;
};

// Interconnect scores are sums of measured link bandwidths, so two
// realizations of one class can differ in the last bits depending on
// accumulation order. This is the one tolerance everything comparing
// bandwidths as class identity must share: absolute, matching the 1e-6 GB/s
// quantum the dedup pipeline quantizes to (important.cc) — sub-quantum
// differences are accumulation noise, anything at or above the quantum is a
// genuinely different class.
inline bool BandwidthNearlyEqual(double a, double b) {
  return std::abs(a - b) < 1e-6;
}

// The vector of scheduling-concern scores identifying a placement class.
// Placements with identical score vectors are deemed to perform identically
// (§3 "Identically scored placements yield identical performance").
struct ScoreVector {
  int l2_score = 0;             // number of L2 groups in use
  int l3_score = 0;             // number of L3 caches in use
  // Number of NUMA nodes (memory controllers) in use; equals l3_score on
  // machines with one L3 per node, differs on split-L3 machines (Zen, §8).
  int mem_score = 0;
  double interconnect_gbps = 0.0;

  // Epsilon-tolerant on the interconnect score: exact floating-point
  // comparison would split one class on rounding noise.
  friend bool operator==(const ScoreVector& a, const ScoreVector& b) {
    return a.l2_score == b.l2_score && a.l3_score == b.l3_score &&
           a.mem_score == b.mem_score &&
           BandwidthNearlyEqual(a.interconnect_gbps, b.interconnect_gbps);
  }
  std::string ToString() const;
};

// Computes the score vector of a realized placement.
ScoreVector ScoreOf(const Placement& placement, const Topology& topo);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CORE_PLACEMENT_H_
