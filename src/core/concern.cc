#include "src/core/concern.h"

#include <cmath>

namespace numaplace {

namespace {

const std::string kL2Name = "L2/SMT";
const std::string kL2Resources =
    "L2 cache, instruction fetch and decode, and floating point units";
const std::string kL3Name = "L3";
const std::string kL3Resources = "L3 cache, memory controller, and bandwidth to DRAM";
const std::string kMemCtlName = "MemCtl";
const std::string kMemCtlResources = "Memory controller and bandwidth to DRAM";
const std::string kIcName = "Interconnect";
const std::string kIcResources = "Interconnect bandwidth";

}  // namespace

const std::string& L2SmtConcern::name() const { return kL2Name; }
const std::string& L2SmtConcern::resources() const { return kL2Resources; }

double L2SmtConcern::Score(const Placement& placement, const Topology& topo) const {
  return static_cast<double>(placement.L2GroupsUsed(topo).size());
}

const std::string& L3Concern::name() const { return kL3Name; }
const std::string& L3Concern::resources() const { return kL3Resources; }

double L3Concern::Score(const Placement& placement, const Topology& topo) const {
  return static_cast<double>(placement.L3GroupsUsed(topo).size());
}

const std::string& MemoryControllerConcern::name() const { return kMemCtlName; }
const std::string& MemoryControllerConcern::resources() const { return kMemCtlResources; }

double MemoryControllerConcern::Score(const Placement& placement,
                                      const Topology& topo) const {
  return static_cast<double>(placement.NodesUsed(topo).size());
}

const std::string& InterconnectConcern::name() const { return kIcName; }
const std::string& InterconnectConcern::resources() const { return kIcResources; }

double InterconnectConcern::Score(const Placement& placement, const Topology& topo) const {
  const NodeSet nodes = placement.NodesUsed(topo);
  return topo.AggregateBandwidth(nodes);
}

std::vector<std::unique_ptr<Concern>> ConcernsFor(const Topology& topo,
                                                  bool use_interconnect_concern) {
  std::vector<std::unique_ptr<Concern>> concerns;
  concerns.push_back(std::make_unique<L2SmtConcern>());
  concerns.push_back(std::make_unique<L3Concern>());
  if (topo.HasSplitL3()) {
    concerns.push_back(std::make_unique<MemoryControllerConcern>());
  }
  if (use_interconnect_concern) {
    concerns.push_back(std::make_unique<InterconnectConcern>());
  }
  return concerns;
}

bool InterconnectIsAsymmetric(const Topology& topo) {
  // Symmetric means: every distinct node pair has the same link bandwidth.
  double reference = -1.0;
  for (int a = 0; a < topo.num_nodes(); ++a) {
    for (int b = a + 1; b < topo.num_nodes(); ++b) {
      const double bw = topo.LinkBandwidth(a, b);
      if (reference < 0.0) {
        reference = bw;
      } else if (std::abs(bw - reference) > 1e-9) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace numaplace
