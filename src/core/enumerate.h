// Algorithm 1 (§4): generate the concern scores that satisfy the balance and
// feasibility properties, and Algorithm 2: generate all packings of
// placements onto the machine's NUMA nodes.
#ifndef NUMAPLACE_SRC_CORE_ENUMERATE_H_
#define NUMAPLACE_SRC_CORE_ENUMERATE_H_

#include <vector>

#include "src/core/concern.h"
#include "src/core/placement.h"
#include "src/topology/topology.h"

namespace numaplace {

// Algorithm 1 for one countable concern: all scores s in [1, count] with
//   balance:      vcpus mod s == 0
//   feasibility:  vcpus / s <= capacity
// returned ascending.
std::vector<int> GenerateScores(int vcpus, int count, int capacity);

// Convenience overload reading count/capacity from the concern.
std::vector<int> GenerateScores(int vcpus, const CountableConcern& concern,
                                const Topology& topo);

// A packing: a list of disjoint node sets, jointly covering all nodes, where
// each set hosts one (potential) container placement (Algorithm 2's output).
using Packing = std::vector<NodeSet>;

// Algorithm 2 (GenPack): every partition of the machine's nodes into parts
// whose sizes are valid L3 scores. Unlike the paper's pseudocode, parts are
// generated in canonical order (each part contains the smallest node not yet
// covered), so no duplicate permutations are produced and the explicit
// "remove duplicates" pass only has to collapse score-identical packings.
std::vector<Packing> GeneratePackings(const std::vector<int>& l3_scores, int num_nodes);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CORE_ENUMERATE_H_
