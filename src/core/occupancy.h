// Hardware-thread occupancy of a multi-tenant machine, and occupancy-aware
// realization of important placements.
//
// The paper's pipeline (§4) realizes a placement class on an otherwise empty
// machine. A datacenter machine is never empty: containers arrive and depart
// over time, and each new placement must be carved out of the hardware
// threads the incumbents left free. The OccupancyMap tracks which container
// owns which hardware thread; RealizeOnFreeThreads/RealizeAnywhereFree
// re-run the §4 realization rules (spread over nodes, then L3 groups, then
// L2 groups) restricted to free threads, so a realized placement keeps the
// score vector of its class — co-runner interference aside, the trained
// model's prediction for the class still applies.
#ifndef NUMAPLACE_SRC_CORE_OCCUPANCY_H_
#define NUMAPLACE_SRC_CORE_OCCUPANCY_H_

#include <optional>
#include <vector>

#include "src/core/important.h"
#include "src/core/placement.h"
#include "src/topology/topology.h"

namespace numaplace {

class OccupancyMap {
 public:
  // Marks an unowned hardware thread.
  static constexpr int kFree = -1;

  explicit OccupancyMap(const Topology& topo);

  const Topology& topology() const { return *topo_; }

  // Owner container id of a hardware thread, or kFree.
  int OwnerOf(int hw_thread) const;
  bool IsFree(int hw_thread) const { return OwnerOf(hw_thread) == kFree; }

  // Claims every thread of `placement` for `container_id` (>= 0). CHECK-fails
  // if any thread is already owned (including by `container_id` itself —
  // re-placement must Release first).
  void Acquire(int container_id, const Placement& placement);

  // Frees every thread owned by `container_id`; returns how many were freed
  // (0 when the container owns nothing).
  int Release(int container_id);

  // All threads currently owned by `container_id`, ascending.
  std::vector<int> ThreadsOf(int container_id) const;

  // Free-capacity queries, the occupancy-side complement of the Topology
  // structural enumeration.
  int FreeThreadCount() const { return free_count_; }
  int BusyThreadCount() const { return topo_->NumHwThreads() - free_count_; }
  double Utilization() const;  // busy / total, in [0, 1]
  int FreeThreadsOnNode(int node) const;
  int FreeThreadsInL3Group(int l3_group) const;
  int FreeThreadsInL2Group(int l2_group) const;
  // Nodes with no owned thread at all, ascending.
  std::vector<int> FullyFreeNodes() const;
  // Distinct containers currently owning at least one thread.
  int NumContainers() const;

 private:
  const Topology* topo_;
  std::vector<int> owner_;  // per hw thread
  int free_count_;
};

// Realizes `ip`'s placement class on the node set `nodes` using only
// hardware threads free in `occ`: per node, l3_score/NodeCount free L3
// groups are chosen, each contributing l2_score/l3_score L2 groups that
// still have vcpus/l2_score free threads (lowest ids first). Returns
// std::nullopt when the node set lacks the free cache structure. Does not
// modify `occ`; callers Acquire() the result to commit.
std::optional<Placement> RealizeOnFreeThreads(const ImportantPlacement& ip,
                                              const NodeSet& nodes, const Topology& topo,
                                              int vcpus, const OccupancyMap& occ);

// Searches all node sets of size ip.NodeCount() for one where the class can
// be realized on free threads. Candidate sets whose aggregate interconnect
// bandwidth matches the class score are preferred (realizing on a different
// bandwidth would change the class identity on asymmetric machines), then
// higher bandwidth, then lexicographic order for determinism.
std::optional<Placement> RealizeAnywhereFree(const ImportantPlacement& ip,
                                             const Topology& topo, int vcpus,
                                             const OccupancyMap& occ);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CORE_OCCUPANCY_H_
