// Scheduling concerns (§4): one concern per shared hardware resource (or per
// inseparable set of resources). A concern's job is to produce a numeric
// score for a vCPU placement — the static utilization of that resource —
// plus two bits of metadata the important-placement generator needs:
//   * AffectsCost: is a lower score cheaper for the user (fewer NUMA nodes ->
//     denser packing)? If so, lower-scoring placements must be kept even when
//     a higher-scoring one performs better.
//   * InversePerfPossible: can a *lower* score ever perform better (e.g.
//     cooperative cache sharing)? If not and the score does not affect cost,
//     dominated placements can be filtered (the interconnect concern).
#ifndef NUMAPLACE_SRC_CORE_CONCERN_H_
#define NUMAPLACE_SRC_CORE_CONCERN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/placement.h"
#include "src/topology/topology.h"

namespace numaplace {

class Concern {
 public:
  virtual ~Concern() = default;

  virtual const std::string& name() const = 0;
  // Human-readable list of the hardware resources the concern covers
  // (column 3 of the paper's Table 1).
  virtual const std::string& resources() const = 0;
  virtual double Score(const Placement& placement, const Topology& topo) const = 0;
  virtual bool AffectsCost() const = 0;
  virtual bool InversePerfPossible() const = 0;
};

// A concern over a countable, symmetric resource (L2 groups, L3 caches):
// Count is how many instances exist on the machine, Capacity how many
// hardware threads one instance can host. These drive Algorithm 1.
class CountableConcern : public Concern {
 public:
  virtual int Count(const Topology& topo) const = 0;
  virtual int Capacity(const Topology& topo) const = 0;
};

// Number of L2 groups in use. Covers the L2 cache plus whatever is
// inseparable from it on the machine: the SMT pipeline on Intel, the CMT
// module front-end and FPU on AMD.
class L2SmtConcern final : public CountableConcern {
 public:
  const std::string& name() const override;
  const std::string& resources() const override;
  double Score(const Placement& placement, const Topology& topo) const override;
  bool AffectsCost() const override { return true; }
  bool InversePerfPossible() const override { return true; }
  int Count(const Topology& topo) const override { return topo.NumL2Groups(); }
  int Capacity(const Topology& topo) const override { return topo.L2GroupCapacity(); }
};

// Number of L3 caches in use. On the paper's machines one L3 equals one
// NUMA node, so this concern covers the L3 cache, the memory controller and
// the DRAM bandwidth behind it, and defines the unit of resource allocation
// (§3). On split-L3 machines (Zen CCX, §8) it covers the L3 cache only, and
// the MemoryControllerConcern takes over the node-level resources.
class L3Concern final : public CountableConcern {
 public:
  const std::string& name() const override;
  const std::string& resources() const override;
  double Score(const Placement& placement, const Topology& topo) const override;
  bool AffectsCost() const override { return true; }
  bool InversePerfPossible() const override { return true; }
  int Count(const Topology& topo) const override { return topo.NumL3Groups(); }
  int Capacity(const Topology& topo) const override { return topo.L3GroupCapacity(); }
};

// Number of NUMA nodes (memory controllers) in use. Only a separate concern
// on machines where the L3 is shared at finer granularity than the memory
// controller — "AMD's newly introduced Zen architecture has L3 cache sharing
// separate from sharing the memory controller" (§8). The node remains the
// unit of resource allocation.
class MemoryControllerConcern final : public CountableConcern {
 public:
  const std::string& name() const override;
  const std::string& resources() const override;
  double Score(const Placement& placement, const Topology& topo) const override;
  bool AffectsCost() const override { return true; }
  bool InversePerfPossible() const override { return true; }
  int Count(const Topology& topo) const override { return topo.num_nodes(); }
  int Capacity(const Topology& topo) const override { return topo.NodeCapacity(); }
};

// Aggregate bandwidth of the interconnect links internal to the node set in
// use. More bandwidth never hurts and is not billed to the user, so
// placements dominated on this score can be discarded (Algorithm 3).
class InterconnectConcern final : public Concern {
 public:
  const std::string& name() const override;
  const std::string& resources() const override;
  double Score(const Placement& placement, const Topology& topo) const override;
  bool AffectsCost() const override { return false; }
  bool InversePerfPossible() const override { return false; }
};

// The concern set for a machine, in the paper's Table 1 order. Machines with
// a symmetric interconnect (the Intel system) omit the interconnect concern.
std::vector<std::unique_ptr<Concern>> ConcernsFor(const Topology& topo,
                                                  bool use_interconnect_concern);

// True when the machine's interconnect is asymmetric (some node-pair link
// bandwidths differ, including absent links among connected diameters), in
// which case the interconnect concern is worth enabling.
bool InterconnectIsAsymmetric(const Topology& topo);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CORE_CONCERN_H_
