#include "src/scheduler/events.h"

namespace numaplace {

const char* ToString(MachineAvailability availability) {
  switch (availability) {
    case MachineAvailability::kUp:
      return "up";
    case MachineAvailability::kDraining:
      return "draining";
    case MachineAvailability::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* ToString(TargetSearchStats::Kind kind) {
  switch (kind) {
    case TargetSearchStats::Kind::kDispatch:
      return "dispatch";
    case TargetSearchStats::Kind::kRebalance:
      return "rebalance";
    case TargetSearchStats::Kind::kEvacuation:
      return "evacuation";
  }
  return "unknown";
}

const char* ToString(SloTier tier) {
  switch (tier) {
    case SloTier::kPremium:
      return "premium";
    case SloTier::kStandard:
      return "standard";
    case SloTier::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

const char* ToString(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admitted";
    case AdmissionDecision::kDefer:
      return "deferred";
    case AdmissionDecision::kReject:
      return "rejected";
    case AdmissionDecision::kPreempt:
      return "preempted";
  }
  return "unknown";
}

const char* ToString(RebalanceMove::Reason reason) {
  switch (reason) {
    case RebalanceMove::Reason::kRebalance:
      return "rebalance";
    case RebalanceMove::Reason::kDrain:
      return "drain";
    case RebalanceMove::Reason::kFailover:
      return "failover";
  }
  return "unknown";
}

}  // namespace numaplace
