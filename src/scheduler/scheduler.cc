#include "src/scheduler/scheduler.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

std::string DescribePlacement(const ImportantPlacement& ip) {
  std::ostringstream os;
  os << "placement #" << ip.id << " (" << ip.NodeCount() << " nodes, "
     << (ip.shares_l2 ? "shared L2" : "private L2") << ")";
  return os.str();
}

size_t IndexOf(const std::vector<int>& placement_ids, int id) {
  for (size_t i = 0; i < placement_ids.size(); ++i) {
    if (placement_ids[i] == id) {
      return i;
    }
  }
  NP_CHECK_MSG(false, "placement id " << id << " not in the model's output order");
  __builtin_unreachable();
}

}  // namespace

ContainerRequest RequestFromArrival(const ContainerArrival& arrival) {
  ContainerRequest request;
  request.id = arrival.container_id;
  request.workload = arrival.workload;
  request.vcpus = arrival.vcpus;
  request.goal_fraction = arrival.goal_fraction;
  request.latency_sensitive = arrival.latency_sensitive;
  return request;
}

MachineScheduler::MachineScheduler(const Topology& topo, const PerformanceModel& solo_sim,
                                   ModelRegistry* registry, SchedulerConfig config)
    : MachineScheduler(topo, solo_sim, registry, config, MakePolicy(config.policy)) {}

MachineScheduler::MachineScheduler(const Topology& topo, const PerformanceModel& solo_sim,
                                   ModelRegistry* registry, SchedulerConfig config,
                                   std::unique_ptr<SchedulingPolicy> policy)
    : topo_(&topo),
      solo_sim_(&solo_sim),
      registry_(registry),
      config_(std::move(config)),
      policy_(std::move(policy)),
      occupancy_(topo),
      fast_migrator_(),
      throttled_migrator_() {
  NP_CHECK(registry_ != nullptr);
  NP_CHECK(policy_ != nullptr);
  NP_CHECK(config_.probe_seconds > 0.0);
  NP_CHECK(&solo_sim.topology() == &topo);
}

void MachineScheduler::ProvidePlacements(const ImportantPlacementSet& ips) {
  NP_CHECK(ips.vcpus > 0);
  placements_by_vcpus_.insert_or_assign(ips.vcpus, ips);
}

const ImportantPlacementSet& MachineScheduler::PlacementsFor(int vcpus) const {
  const auto it = placements_by_vcpus_.find(vcpus);
  if (it != placements_by_vcpus_.end()) {
    return it->second;
  }
  return placements_by_vcpus_
      .emplace(vcpus, GenerateImportantPlacements(*topo_, vcpus,
                                                  config_.use_interconnect_concern))
      .first->second;
}

const Migrator& MachineScheduler::MigratorFor(const ContainerRequest& request) const {
  return request.latency_sensitive ? static_cast<const Migrator&>(throttled_migrator_)
                                   : static_cast<const Migrator&>(fast_migrator_);
}

void MachineScheduler::AdvanceClock(double now) {
  NP_CHECK_MSG(now >= stats_.last_event_seconds - 1e-9,
               "events must be submitted in time order");
  const double dt = std::max(0.0, now - stats_.last_event_seconds);
  stats_.busy_thread_seconds += occupancy_.BusyThreadCount() * dt;
  stats_.last_event_seconds = std::max(stats_.last_event_seconds, now);
}

double MachineScheduler::BaselineAbsThroughput(const ContainerRequest& request) const {
  const ImportantPlacementSet& ips = PlacementsFor(request.vcpus);
  const ImportantPlacement& baseline = ips.ById(config_.baseline_id);
  const Placement realized = Realize(baseline, *topo_, request.vcpus);
  // Run 0: a fixed noise draw, so the goal is a stable per-workload constant.
  return solo_sim_->Evaluate(request.workload, realized, /*run=*/0).throughput_ops;
}

PolicyContext MachineScheduler::MakePolicyContext(
    const ImportantPlacementSet& ips, const OccupancyMap& occupancy, int vcpus,
    const std::vector<int>& placement_ids, const std::vector<double>& predicted_abs,
    double goal_abs) const {
  PolicyContext ctx;
  ctx.topo = topo_;
  ctx.ips = &ips;
  ctx.occupancy = &occupancy;
  ctx.vcpus = vcpus;
  ctx.placement_ids = &placement_ids;
  ctx.predicted_abs = &predicted_abs;
  ctx.goal_abs = goal_abs;
  ctx.fallback_slack = config_.fallback_slack;
  return ctx;
}

MachineScheduler::PredictionView MachineScheduler::BuildPredictionView(
    const ContainerRequest& request, const CachedPrediction& cached) const {
  const TrainedPerfModel& model = registry_->Get(topo_->name(), request.vcpus);
  PredictionView view;
  view.placement_ids = model.placement_ids;
  const size_t index_a = IndexOf(view.placement_ids, cached.input_a);
  const size_t index_baseline = IndexOf(view.placement_ids, config_.baseline_id);
  NP_CHECK(cached.predicted_relative[index_a] > 0.0);
  const double abs_unit = cached.perf_a / cached.predicted_relative[index_a];
  view.predicted_abs.reserve(view.placement_ids.size());
  for (double rel : cached.predicted_relative) {
    view.predicted_abs.push_back(abs_unit * rel);
  }
  view.decision_goal = request.goal_fraction * abs_unit *
                       cached.predicted_relative[index_baseline];
  return view;
}

MachineScheduler::ProbeCharge MachineScheduler::EnsureProbes(
    const ContainerRequest& request) {
  ProbeCharge charge;
  if (!policy_->UsesModel() || registry_->FindPrediction(request.id) != nullptr) {
    return charge;
  }
  const ImportantPlacementSet& ips = PlacementsFor(request.vcpus);
  const TrainedPerfModel& model = registry_->Get(topo_->name(), request.vcpus);
  const auto add_event = [&](double duration, const std::string& what) {
    charge.timeline.push_back({charge.seconds, duration, what});
    charge.seconds += duration;
  };
  // Probe measurements are solo-machine properties of the workload — the
  // same quantities the training pipeline measured — so they are taken on
  // the canonical realization of the probe placements.
  const ImportantPlacement& ip_a = ips.ById(model.input_a);
  const ImportantPlacement& ip_b = ips.ById(model.input_b);
  add_event(config_.probe_seconds, "probe in " + DescribePlacement(ip_a));
  const double perf_a =
      solo_sim_->Evaluate(request.workload, Realize(ip_a, *topo_, request.vcpus),
                          /*run=*/41)
          .throughput_ops;
  if (ip_a.nodes != ip_b.nodes) {
    const MigrationEstimate m = MigratorFor(request).Migrate(request.workload);
    add_event(m.seconds, "migrate memory to " + DescribePlacement(ip_b) + " (" +
                             MigratorFor(request).name() + ")");
  }
  add_event(config_.probe_seconds, "probe in " + DescribePlacement(ip_b));
  const double perf_b =
      solo_sim_->Evaluate(request.workload, Realize(ip_b, *topo_, request.vcpus),
                          /*run=*/42)
          .throughput_ops;
  stats_.probe_runs += 2;
  registry_->Predict(request.id, topo_->name(), request.vcpus, perf_a, perf_b);
  charge.ran = true;
  charge.memory_nodes = ip_b.nodes;  // memory sits where probe B ran
  return charge;
}

MachineScheduler::AdmissionPreview MachineScheduler::PreviewAdmission(
    const ContainerRequest& request) const {
  NP_CHECK(request.vcpus > 0);
  const ImportantPlacementSet& ips = PlacementsFor(request.vcpus);
  std::vector<int> placement_ids;
  std::vector<double> predicted_abs;
  double decision_goal = 0.0;
  if (policy_->UsesModel()) {
    const CachedPrediction* cached = registry_->FindPrediction(request.id);
    NP_CHECK_MSG(cached != nullptr, "PreviewAdmission for container "
                                        << request.id
                                        << " requires cached probes under a "
                                           "model policy — call EnsureProbes first");
    PredictionView view = BuildPredictionView(request, *cached);
    placement_ids = std::move(view.placement_ids);
    predicted_abs = std::move(view.predicted_abs);
    decision_goal = view.decision_goal;
  } else {
    ModelFreeCandidates(ips, placement_ids, predicted_abs);
  }

  AdmissionPreview preview;
  preview.goal_abs = decision_goal;
  const PolicyContext ctx = MakePolicyContext(ips, occupancy_, request.vcpus,
                                              placement_ids, predicted_abs,
                                              decision_goal);
  for (size_t idx : policy_->RankForAdmission(ctx)) {
    NP_CHECK_MSG(idx < placement_ids.size(),
                 "policy '" << policy_->name() << "' ranked candidate index " << idx
                            << " out of range");
    const ImportantPlacement& ip = ips.ById(placement_ids[idx]);
    if (!RealizeAnywhereFree(ip, *topo_, request.vcpus, occupancy_).has_value()) {
      continue;
    }
    preview.realizable = true;
    preview.placement_id = ip.id;
    preview.predicted_abs = predicted_abs[idx];
    preview.meets_goal = policy_->UsesModel() && predicted_abs[idx] >= decision_goal;
    break;
  }
  return preview;
}

ScheduleOutcome MachineScheduler::TryPlace(ManagedContainer& container, double now) {
  NP_CHECK(container.state == ContainerState::kPending);
  const ContainerRequest& request = container.request;
  const ImportantPlacementSet& ips = PlacementsFor(request.vcpus);

  ScheduleOutcome outcome;
  outcome.container_id = request.id;
  outcome.goal_abs_throughput = container.goal_abs_throughput;
  double clock = 0.0;
  const auto add_event = [&](double duration, const std::string& what) {
    outcome.timeline.push_back({clock, duration, what});
    clock += duration;
  };

  std::vector<int> placement_ids;
  std::vector<double> predicted_abs;
  double decision_goal = 0.0;
  bool from_cache = false;

  if (policy_->UsesModel()) {
    const CachedPrediction* cached = registry_->FindPrediction(request.id);
    if (cached == nullptr) {
      const ProbeCharge charge = EnsureProbes(request);
      for (const TimelineEvent& event : charge.timeline) {
        outcome.timeline.push_back(
            {clock + event.start_seconds, event.duration_seconds, event.description});
      }
      clock += charge.seconds;
      container.memory_nodes = charge.memory_nodes;
      cached = registry_->FindPrediction(request.id);
      NP_CHECK(cached != nullptr);
    } else {
      // Probes were paid earlier — an admission retry on this machine, or a
      // fleet dispatch/rebalance probe on a machine of the same topology
      // group sharing this registry. When the container never ran here,
      // memory_nodes stays empty: its memory lands wherever the first
      // placement puts it, with no intra-machine migration charge.
      from_cache = true;
    }

    const PredictionView view = BuildPredictionView(request, *cached);
    placement_ids = view.placement_ids;
    predicted_abs = view.predicted_abs;
    decision_goal = view.decision_goal;
  } else {
    ModelFreeCandidates(ips, placement_ids, predicted_abs);
  }

  const PolicyContext ctx = MakePolicyContext(ips, occupancy_, request.vcpus,
                                              placement_ids, predicted_abs,
                                              decision_goal);
  const std::vector<size_t> order = policy_->RankForAdmission(ctx);
  for (size_t idx : order) {
    NP_CHECK_MSG(idx < placement_ids.size(),
                 "policy '" << policy_->name() << "' ranked candidate index " << idx
                            << " out of range");
    const ImportantPlacement& ip = ips.ById(placement_ids[idx]);
    const std::optional<Placement> realized =
        RealizeAnywhereFree(ip, *topo_, request.vcpus, occupancy_);
    if (!realized.has_value()) {
      continue;
    }

    const NodeSet new_nodes = realized->NodesUsed(*topo_);
    if (!container.memory_nodes.empty() && container.memory_nodes != new_nodes) {
      const MigrationEstimate m = MigratorFor(request).Migrate(request.workload);
      add_event(m.seconds, "migrate memory to final " + DescribePlacement(ip) + " (" +
                               MigratorFor(request).name() + ")");
    } else {
      add_event(0.0, "final " + DescribePlacement(ip) + " (no migration needed)");
    }

    occupancy_.Acquire(request.id, *realized);
    container.state = ContainerState::kRunning;
    container.placement_id = ip.id;
    container.placement = *realized;
    container.memory_nodes = new_nodes;
    container.predicted_abs_throughput = predicted_abs[idx];
    container.meets_goal = policy_->UsesModel() && predicted_abs[idx] >= decision_goal;
    container.placed_seconds = now + clock;

    outcome.admitted = true;
    outcome.placement_id = ip.id;
    outcome.placement = *realized;
    outcome.predicted_abs_throughput = predicted_abs[idx];
    outcome.meets_goal = container.meets_goal;
    outcome.decision_seconds = clock;
    // Only a committed decision counts as a cache hit; a failed admission
    // retry consumed nothing.
    outcome.reused_cached_probes = from_cache;
    if (from_cache) {
      ++stats_.cached_probe_reuses;
    }
    return outcome;
  }

  // Nothing realizable under the current occupancy: the container stays
  // pending (its probes, if any, are cached for the admission retry).
  outcome.decision_seconds = clock;
  return outcome;
}

ScheduleOutcome MachineScheduler::Submit(const ContainerRequest& request, double now) {
  NP_CHECK(request.id >= 0);
  NP_CHECK(request.vcpus > 0);
  NP_CHECK_MSG(request.vcpus <= topo_->NumHwThreads(),
               "container larger than the machine");
  NP_CHECK(request.goal_fraction > 0.0);
  const auto it = containers_.find(request.id);
  NP_CHECK_MSG(it == containers_.end() || it->second.state == ContainerState::kDeparted,
               "container id " << request.id << " is already live");

  AdvanceClock(now);
  ++stats_.submitted;

  ManagedContainer container;
  container.request = request;
  container.submit_seconds = now;
  container.goal_abs_throughput = request.goal_fraction * BaselineAbsThroughput(request);
  ManagedContainer& stored = containers_.insert_or_assign(request.id, container).first->second;

  ScheduleOutcome outcome = TryPlace(stored, now);
  if (outcome.admitted) {
    ++stats_.admitted_immediately;
  } else {
    pending_.push_back(request.id);
    ++stats_.queued;
  }
  return outcome;
}

std::vector<ScheduleOutcome> MachineScheduler::Depart(int container_id, double now,
                                                      bool forget_probes, bool replace) {
  AdvanceClock(now);
  const auto it = containers_.find(container_id);
  NP_CHECK_MSG(it != containers_.end(), "unknown container " << container_id);
  ManagedContainer& container = it->second;
  NP_CHECK_MSG(container.state != ContainerState::kDeparted,
               "container " << container_id << " departed twice");

  if (container.state == ContainerState::kRunning) {
    occupancy_.Release(container_id);
  } else {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), container_id),
                   pending_.end());
  }
  container.state = ContainerState::kDeparted;
  ++stats_.departed;
  if (forget_probes) {
    registry_->Forget(container_id);
  }

  if (!replace || !config_.replace_on_departure) {
    return {};
  }
  return ReplacementPass(now);
}

std::vector<ScheduleOutcome> MachineScheduler::ReplacementPass(double now) {
  std::vector<ScheduleOutcome> outcomes;

  // Queue admission, FIFO by submit order.
  std::vector<int> still_pending;
  for (int id : pending_) {
    ManagedContainer& container = containers_.at(id);
    ScheduleOutcome outcome = TryPlace(container, now);
    if (outcome.admitted) {
      ++stats_.admitted_from_queue;
      outcomes.push_back(std::move(outcome));
    } else {
      still_pending.push_back(id);
    }
  }
  pending_ = std::move(still_pending);

  // Upgrade degraded incumbents. Policies that never upgrade (the default)
  // skip the per-incumbent search outright; upgrading policies without the
  // model see zero predictions and a zero goal, exactly as at admission.
  if (!policy_->Upgrades()) {
    return outcomes;
  }
  for (auto& [id, container] : containers_) {
    if (container.state != ContainerState::kRunning || container.meets_goal) {
      continue;
    }
    const ImportantPlacementSet& ips = PlacementsFor(container.request.vcpus);
    std::vector<int> placement_ids;
    std::vector<double> predicted_abs;
    double decision_goal = 0.0;
    if (policy_->UsesModel()) {
      const CachedPrediction* cached = registry_->FindPrediction(id);
      NP_CHECK_MSG(cached != nullptr, "running container " << id << " lost its probes");
      PredictionView view = BuildPredictionView(container.request, *cached);
      placement_ids = std::move(view.placement_ids);
      predicted_abs = std::move(view.predicted_abs);
      decision_goal = view.decision_goal;
    } else {
      ModelFreeCandidates(ips, placement_ids, predicted_abs);
    }

    // Search with the container's own threads treated as free: it can move
    // onto any mix of its current and newly freed threads.
    OccupancyMap scratch = occupancy_;
    scratch.Release(id);
    const PolicyContext ctx = MakePolicyContext(ips, scratch, container.request.vcpus,
                                                placement_ids, predicted_abs,
                                                decision_goal);
    UpgradeState incumbent;
    incumbent.current_placement_id = container.placement_id;
    incumbent.current_predicted_abs = container.predicted_abs_throughput;
    incumbent.meets_goal = container.meets_goal;
    incumbent.upgrade_margin = config_.upgrade_margin;
    const std::vector<size_t> proposals = policy_->ProposeUpgrades(ctx, incumbent);
    for (size_t idx : proposals) {
      NP_CHECK_MSG(idx < placement_ids.size(),
                   "policy '" << policy_->name() << "' proposed upgrade index " << idx
                              << " out of range");
      const ImportantPlacement& ip = ips.ById(placement_ids[idx]);
      // A proposal of the incumbent's own class is never an upgrade, whatever
      // the policy claims: committing it would re-realize the class on other
      // threads and charge a pointless migration.
      if (ip.id == container.placement_id) {
        continue;
      }
      const bool cand_meets =
          policy_->UsesModel() && predicted_abs[idx] >= decision_goal;
      const std::optional<Placement> realized =
          RealizeAnywhereFree(ip, *topo_, container.request.vcpus, scratch);
      if (!realized.has_value()) {
        continue;
      }

      ScheduleOutcome outcome;
      outcome.container_id = id;
      outcome.admitted = true;
      outcome.goal_abs_throughput = container.goal_abs_throughput;
      // A model-driven re-place is served from the prediction cache; a
      // structural one never probed.
      if (policy_->UsesModel()) {
        outcome.reused_cached_probes = true;
        ++stats_.cached_probe_reuses;
      }
      // Memory follows only when the node set changes; a same-node upgrade
      // (different cache-sharing class) is a cheap vCPU remap.
      const NodeSet new_nodes = realized->NodesUsed(*topo_);
      if (container.memory_nodes != new_nodes) {
        const MigrationEstimate m =
            MigratorFor(container.request).Migrate(container.request.workload);
        outcome.timeline.push_back({0.0, m.seconds,
                                    "re-place to " + DescribePlacement(ip) + " (" +
                                        MigratorFor(container.request).name() + ")"});
        outcome.decision_seconds = m.seconds;
      } else {
        outcome.timeline.push_back(
            {0.0, 0.0, "re-place to " + DescribePlacement(ip) + " (no migration needed)"});
      }

      occupancy_.Release(id);
      occupancy_.Acquire(id, *realized);
      container.placement_id = ip.id;
      container.placement = *realized;
      container.memory_nodes = new_nodes;
      container.predicted_abs_throughput = predicted_abs[idx];
      container.meets_goal = cand_meets;
      container.placed_seconds = now + outcome.decision_seconds;
      ++container.replacements;
      ++stats_.upgrades;

      outcome.placement_id = ip.id;
      outcome.placement = *realized;
      outcome.predicted_abs_throughput = predicted_abs[idx];
      outcome.meets_goal = cand_meets;
      outcomes.push_back(std::move(outcome));
      break;
    }
  }
  return outcomes;
}

void MachineScheduler::Step(const FleetEvent& event, EventObserver* observer) {
  if (const ContainerArrival* arrival = event.arrival()) {
    const ScheduleOutcome outcome =
        Submit(RequestFromArrival(*arrival), event.time_seconds);
    if (observer != nullptr) {
      if (outcome.admitted) {
        observer->OnAdmission(0, outcome, event.time_seconds);
      } else {
        observer->OnQueued(0, outcome, event.time_seconds);
      }
    }
    return;
  }
  if (const ContainerDeparture* departure = event.departure()) {
    const std::vector<ScheduleOutcome> replaced =
        Depart(departure->container_id, event.time_seconds);
    if (observer != nullptr) {
      observer->OnDeparture(0, departure->container_id, event.time_seconds);
      // Everything the re-placement pass reports is a committed placement or
      // upgrade.
      for (const ScheduleOutcome& outcome : replaced) {
        observer->OnAdmission(0, outcome, event.time_seconds);
      }
    }
    return;
  }
  NP_CHECK_MSG(false, ToString(event.kind())
                          << " event at t=" << event.time_seconds
                          << " addresses a fleet — a single MachineScheduler has "
                             "no machine namespace; route it through "
                             "FleetScheduler::Step");
}

void MachineScheduler::Replay(const EventStream& trace, EventObserver* observer) {
  for (const FleetEvent& event : trace) {
    Step(event, observer);
  }
}

const ManagedContainer* MachineScheduler::Find(int container_id) const {
  const auto it = containers_.find(container_id);
  return it == containers_.end() ? nullptr : &it->second;
}

std::vector<int> MachineScheduler::RunningIds() const {
  std::vector<int> out;
  for (const auto& [id, container] : containers_) {
    if (container.state == ContainerState::kRunning) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<int> MachineScheduler::PendingIds() const { return pending_; }

double MachineScheduler::TimeAveragedUtilization() const {
  if (stats_.last_event_seconds <= 0.0) {
    return occupancy_.Utilization();
  }
  return stats_.busy_thread_seconds /
         (static_cast<double>(topo_->NumHwThreads()) * stats_.last_event_seconds);
}

std::vector<MachineScheduler::TenantSnapshot> MachineScheduler::SnapshotPerformance(
    const MultiTenantModel& multi) const {
  std::vector<int> running = RunningIds();
  if (running.empty()) {
    return {};
  }
  std::vector<MultiTenantModel::Tenant> tenants;
  tenants.reserve(running.size());
  for (int id : running) {
    const ManagedContainer& container = containers_.at(id);
    tenants.push_back({&container.request.workload, container.placement});
  }
  const std::vector<PerfResult> results = multi.Evaluate(tenants);
  std::vector<TenantSnapshot> out;
  out.reserve(running.size());
  for (size_t i = 0; i < running.size(); ++i) {
    const ManagedContainer& container = containers_.at(running[i]);
    out.push_back({running[i], results[i].throughput_ops,
                   container.goal_abs_throughput});
  }
  return out;
}

TenancyReport ReplayWithEvaluation(MachineScheduler& scheduler,
                                   const EventStream& trace,
                                   const MultiTenantModel& multi,
                                   EventObserver* observer) {
  TenancyReport report;
  AdmissionCounter counter(observer);
  double last_time = 0.0;
  double attainment_weight = 0.0;
  double at_goal_weight = 0.0;
  double container_seconds = 0.0;

  for (const FleetEvent& event : trace) {
    const double dt = event.time_seconds - last_time;
    if (dt > 0.0) {
      for (const MachineScheduler::TenantSnapshot& snap :
           scheduler.SnapshotPerformance(multi)) {
        const double ratio =
            snap.goal_abs_throughput > 0.0
                ? std::min(1.0, snap.measured_abs_throughput / snap.goal_abs_throughput)
                : 1.0;
        attainment_weight += ratio * dt;
        if (ratio >= 0.999) {
          at_goal_weight += dt;
        }
        container_seconds += dt;
      }
      last_time = event.time_seconds;
    }

    const auto start = std::chrono::steady_clock::now();
    scheduler.Step(event, &counter);
    report.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  report.decisions = counter.admissions;
  report.goal_attainment =
      container_seconds > 0.0 ? attainment_weight / container_seconds : 1.0;
  report.container_seconds_at_goal =
      container_seconds > 0.0 ? at_goal_weight / container_seconds : 1.0;
  report.mean_utilization = scheduler.TimeAveragedUtilization();
  return report;
}

}  // namespace numaplace
