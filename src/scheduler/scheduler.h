// Occupancy-aware, event-driven multi-tenant machine scheduler.
//
// The paper's placement controller (§1) answers one question — where should
// this container run on an empty machine. The scheduler generalizes it into
// the stateful subsystem a datacenter node agent needs:
//
//   * it owns a hardware-thread OccupancyMap (src/core/occupancy.h) and
//     admits a stream of container arrival/departure events;
//   * placements are realized against the *remaining free* threads, so
//     concurrent containers always hold disjoint hardware-thread sets;
//   * probe measurements and model predictions are cached per container in
//     the ModelRegistry (src/model/registry.h) and reused when the container
//     is re-placed — probes cost container runtime and are paid once;
//   * departures trigger a re-placement pass: queued containers are admitted
//     and degraded incumbents (running below their goal because the machine
//     was crowded when they arrived) are migrated up using the existing
//     migrators and the cached predictions.
//
// Decision logic is delegated to a pluggable SchedulingPolicy
// (src/scheduler/policy.h), selected by name through the PolicyRegistry —
// the scheduler itself is policy-agnostic.
#ifndef NUMAPLACE_SRC_SCHEDULER_SCHEDULER_H_
#define NUMAPLACE_SRC_SCHEDULER_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/important.h"
#include "src/core/occupancy.h"
#include "src/migration/migration.h"
#include "src/model/registry.h"
#include "src/scheduler/events.h"
#include "src/scheduler/policy.h"
#include "src/sim/perf_model.h"
#include "src/workloads/profile.h"
#include "src/workloads/trace.h"

namespace numaplace {

// A container as submitted to the scheduler.
struct ContainerRequest {
  int id = 0;  // unique among live containers, >= 0
  WorkloadProfile workload;
  int vcpus = 0;
  // Operator goal relative to the baseline placement (1.0 = match it).
  double goal_fraction = 1.0;
  // Latency-sensitive containers use the throttled migrator (§7).
  bool latency_sensitive = false;
};

// The request a ContainerArrival event carries, as both schedulers submit it.
ContainerRequest RequestFromArrival(const ContainerArrival& arrival);

enum class ContainerState { kPending, kRunning, kDeparted };

// Scheduler-side record of a container.
struct ManagedContainer {
  ContainerRequest request;
  ContainerState state = ContainerState::kPending;
  int placement_id = 0;
  Placement placement;
  double predicted_abs_throughput = 0.0;
  double goal_abs_throughput = 0.0;
  bool meets_goal = false;
  double submit_seconds = 0.0;
  double placed_seconds = 0.0;
  int replacements = 0;  // migrations after the initial placement
  // NUMA nodes currently holding the container's memory: set by the probe
  // runs and every committed placement, empty until either. Placing onto a
  // different node set charges a memory migration.
  NodeSet memory_nodes;
};

struct SchedulerConfig {
  // Name of the SchedulingPolicy to instantiate through the PolicyRegistry
  // ("model", "first-fit", "best-fit", "spread", or any registered plugin).
  std::string policy = "model";
  double probe_seconds = 2.0;
  // The placement whose solo throughput defines every goal (the paper uses
  // #1 on the AMD system, #2 on the Intel system).
  int baseline_id = 1;
  // Passed to GenerateImportantPlacements for sizes not provided up front.
  bool use_interconnect_concern = true;
  // Run the re-placement pass (queue admission + degraded upgrades) on every
  // departure.
  bool replace_on_departure = true;
  // A degraded container not meeting its goal is upgraded to another
  // not-meeting placement only for at least this relative prediction gain
  // (bounds migration churn).
  double upgrade_margin = 0.05;
  // When no placement meets the goal, candidates predicted within this
  // relative slack of the best prediction count as equally good and the one
  // with the fewest nodes wins — a container that can never reach its goal
  // should not grab the whole machine for the last percent.
  double fallback_slack = 0.03;
};

struct SchedulerStats {
  int submitted = 0;
  int admitted_immediately = 0;
  int queued = 0;
  int admitted_from_queue = 0;
  int departed = 0;
  int upgrades = 0;           // degraded containers migrated to a better class
  int probe_runs = 0;         // individual probe executions (2 per fresh pair)
  int cached_probe_reuses = 0;  // decisions served from the prediction cache
  // Integral of busy hardware threads over trace time (thread-seconds).
  double busy_thread_seconds = 0.0;
  double last_event_seconds = 0.0;
};

class MachineScheduler {
 public:
  // `topo`, `solo_sim` and `registry` must outlive the scheduler. The
  // registry must hold a model for (topo.name(), vcpus) of every submitted
  // container size when the active policy uses the model. The policy is
  // built from config.policy via the PolicyRegistry.
  MachineScheduler(const Topology& topo, const PerformanceModel& solo_sim,
                   ModelRegistry* registry, SchedulerConfig config = {});

  // As above with an explicitly constructed (e.g. unregistered plugin)
  // policy; config.policy is ignored.
  MachineScheduler(const Topology& topo, const PerformanceModel& solo_sim,
                   ModelRegistry* registry, SchedulerConfig config,
                   std::unique_ptr<SchedulingPolicy> policy);

  // Injects a precomputed important-placement set for its vCPU count
  // (otherwise sets are generated lazily on first use of a size). Const
  // because previews call it: the lazy fill goes into a mutable cache keyed
  // per machine, so concurrent previews of *different* machines never touch
  // the same cache (the parallel replay engine relies on this).
  void ProvidePlacements(const ImportantPlacementSet& ips);
  const ImportantPlacementSet& PlacementsFor(int vcpus) const;

  // Admits a container at trace time `now`, placing it on free hardware
  // threads when possible and queueing it otherwise.
  ScheduleOutcome Submit(const ContainerRequest& request, double now = 0.0);

  // Removes a container (running or queued), freeing its threads, then runs
  // the re-placement pass; returns one outcome per container the pass placed
  // or migrated. `forget_probes` drops the container's cached prediction
  // (the default — a departed container never comes back); the fleet layer
  // passes false when *moving* a container to another machine of the same
  // topology so the probes it already paid for transfer with it. `replace`
  // false skips the re-placement pass regardless of config — the fleet
  // passes it when emptying a failed or draining machine, whose queue must
  // not be re-admitted onto the machine being evacuated.
  std::vector<ScheduleOutcome> Depart(int container_id, double now = 0.0,
                                      bool forget_probes = true, bool replace = true);

  // What probing the container cost (nothing on a cache hit or under a
  // model-free policy).
  struct ProbeCharge {
    bool ran = false;             // probes actually executed
    double seconds = 0.0;         // simulated probe + inter-probe migration time
    NodeSet memory_nodes;         // where probe B left the container's memory
    std::vector<TimelineEvent> timeline;
  };

  // Runs the model's two probe placements for the container and caches the
  // prediction in the registry, unless the active policy is model-free or a
  // prediction is already cached (then a no-op). The fleet dispatcher calls
  // this once per topology group so machines sharing a registry never
  // re-probe — probes are paid once fleet-wide.
  ProbeCharge EnsureProbes(const ContainerRequest& request);

  // What TryPlace would commit for the request right now, without mutating
  // any observable state (const: only the lazy placement-set cache may fill
  // in). Requires a cached prediction (see EnsureProbes) when the active
  // policy uses the model. Model-free policies report zero predicted/goal
  // throughput. Safe to call concurrently for *different* machines — the
  // parallel replay engine batches previews one machine per task.
  struct AdmissionPreview {
    bool realizable = false;      // some ranked candidate fits the free threads
    int placement_id = 0;
    double predicted_abs = 0.0;
    double goal_abs = 0.0;        // decision goal derived from the probes
    bool meets_goal = false;
  };
  AdmissionPreview PreviewAdmission(const ContainerRequest& request) const;

  // Processes one FleetEvent: arrivals submit, departures free capacity and
  // run the re-placement pass, and every outcome is reported through the
  // observer (machine_id 0 — a standalone scheduler has no fleet
  // namespace). Machine events CHECK-fail: they address a fleet; route them
  // through FleetScheduler::Step.
  void Step(const FleetEvent& event, EventObserver* observer = nullptr);

  // Thin loop over Step.
  void Replay(const EventStream& trace, EventObserver* observer = nullptr);

  const Topology& topology() const { return *topo_; }
  const OccupancyMap& occupancy() const { return occupancy_; }
  const SchedulerStats& stats() const { return stats_; }
  const SchedulerConfig& config() const { return config_; }
  const SchedulingPolicy& policy() const { return *policy_; }

  // nullptr when the id was never submitted (departed containers remain).
  const ManagedContainer* Find(int container_id) const;
  std::vector<int> RunningIds() const;
  std::vector<int> PendingIds() const;

  // Time-averaged machine utilization over the replayed span, in [0, 1].
  double TimeAveragedUtilization() const;

  // Advances the stats clock without processing an event, so machines that
  // went a while without traffic still integrate busy-thread time up to
  // `now`. The fleet layer syncs every machine on every fleet event to keep
  // per-machine utilization averages comparable.
  void SyncClock(double now) { AdvanceClock(now); }

  // Measured multi-tenant throughput of every running container under the
  // given co-location model, with its goal for slowdown reporting.
  struct TenantSnapshot {
    int container_id = 0;
    double measured_abs_throughput = 0.0;
    double goal_abs_throughput = 0.0;
  };
  std::vector<TenantSnapshot> SnapshotPerformance(const MultiTenantModel& multi) const;

 private:
  // Advances the stats clock to `now`, integrating busy-thread time.
  void AdvanceClock(double now);

  // Deterministic solo baseline throughput anchoring the container's goal.
  double BaselineAbsThroughput(const ContainerRequest& request) const;

  // Probes (or reuses cached probes), predicts, picks a placement realizable
  // on free threads, and commits it. Returns admitted=false when no
  // candidate fits the current occupancy. Callers pass pending containers
  // only; upgrades of running containers go through ReplacementPass.
  ScheduleOutcome TryPlace(ManagedContainer& container, double now);

  // Absolute per-placement predictions and the decision goal derived from a
  // container's cached probes (shared by placement, upgrade and preview
  // decisions).
  struct PredictionView {
    std::vector<int> placement_ids;
    std::vector<double> predicted_abs;
    double decision_goal = 0.0;
  };
  PredictionView BuildPredictionView(const ContainerRequest& request,
                                     const CachedPrediction& cached) const;

  // Assembles the context handed to the policy for one decision against the
  // given occupancy view (the live map for admissions, a scratch map with
  // the incumbent freed for upgrades). The context borrows every argument;
  // all must outlive the policy call.
  PolicyContext MakePolicyContext(const ImportantPlacementSet& ips,
                                  const OccupancyMap& occupancy, int vcpus,
                                  const std::vector<int>& placement_ids,
                                  const std::vector<double>& predicted_abs,
                                  double goal_abs) const;

  // Queue admission + degraded-container upgrades after capacity was freed.
  std::vector<ScheduleOutcome> ReplacementPass(double now);

  const Migrator& MigratorFor(const ContainerRequest& request) const;

  const Topology* topo_;
  const PerformanceModel* solo_sim_;
  ModelRegistry* registry_;
  SchedulerConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  OccupancyMap occupancy_;
  // Lazily filled by PlacementsFor (mutable so const preview paths can
  // fill it). Per-machine: only this scheduler's decisions touch it.
  mutable std::map<int, ImportantPlacementSet> placements_by_vcpus_;
  std::map<int, ManagedContainer> containers_;
  std::vector<int> pending_;  // FIFO by submit time
  SchedulerStats stats_;
  FastMigrator fast_migrator_;
  ThrottledMigrator throttled_migrator_;
};

// Replays a trace while evaluating the co-running tenants with the
// multi-tenant model between events, producing the aggregate numbers the
// tenancy benchmark and the CLI `schedule` mode report. Per-decision
// outcomes flow through the optional observer, not the report.
struct TenancyReport {
  // Time-weighted mean over running containers of
  // min(1, measured / goal): 1.0 = every container met its goal whenever it
  // ran.
  double goal_attainment = 0.0;
  // Time-weighted mean of min(1, measured / goal) == 1 share: fraction of
  // container-seconds spent at or above goal.
  double container_seconds_at_goal = 0.0;
  double mean_utilization = 0.0;  // time-averaged busy-thread fraction
  int decisions = 0;              // placements + upgrades performed
  double wall_seconds = 0.0;      // host time spent deciding (for decisions/s)
};

TenancyReport ReplayWithEvaluation(MachineScheduler& scheduler,
                                   const EventStream& trace,
                                   const MultiTenantModel& multi,
                                   EventObserver* observer = nullptr);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SCHEDULER_SCHEDULER_H_
