// Pluggable scheduling policies for the multi-tenant MachineScheduler.
//
// The paper's claim (§7) is comparative: the model-driven policy beats
// simpler packing policies under the same operator goals. Comparing policies
// head-to-head requires them to be interchangeable, so the scheduler's
// decision logic lives behind this strategy interface: given a PolicyContext
// (topology, occupancy view, important-placement set, per-placement
// predictions and the goal when the policy probes), a SchedulingPolicy
// returns candidate placements in preference order for admission and,
// separately, upgrade proposals for the departure re-placement pass. The
// scheduler stays policy-agnostic — it realizes the first candidate that
// fits the free threads and owns all bookkeeping.
//
// Policies are constructible by name through the PolicyRegistry, so new
// scenarios ("conservative operator", "tightest packer", ...) are drop-in
// plugins comparable under the same trace harness. Built in:
//
//   model      probe, predict, fewest nodes meeting the goal (the paper)
//   first-fit  fewest nodes that fit, id order, no probes, no upgrades
//   best-fit   tightest packing: fewest free threads left on the chosen nodes
//   spread     worst fit / interleave: maximize nodes used (conservative)
#ifndef NUMAPLACE_SRC_SCHEDULER_POLICY_H_
#define NUMAPLACE_SRC_SCHEDULER_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/important.h"
#include "src/core/occupancy.h"
#include "src/topology/topology.h"
#include "src/util/registry.h"

namespace numaplace {

// Everything a policy may consult for one decision. Pointers are non-owning
// and valid only for the duration of the call.
struct PolicyContext {
  const Topology* topo = nullptr;
  const ImportantPlacementSet* ips = nullptr;
  // Current occupancy; during an upgrade decision the incumbent's own
  // threads are already treated as free.
  const OccupancyMap* occupancy = nullptr;
  int vcpus = 0;
  // Candidate placement ids (the model's output order when the policy uses
  // the model, id order otherwise) and the absolute predicted throughput per
  // candidate — all zeros for policies that do not probe.
  const std::vector<int>* placement_ids = nullptr;
  const std::vector<double>* predicted_abs = nullptr;
  // Absolute throughput goal for this decision (0 when the policy has no
  // notion of a goal).
  double goal_abs = 0.0;
  // When no placement meets the goal, predictions within this relative slack
  // of the best count as equally good (see SchedulerConfig::fallback_slack).
  double fallback_slack = 0.0;
};

// The incumbent being reconsidered during the departure re-placement pass.
struct UpgradeState {
  int current_placement_id = 0;
  double current_predicted_abs = 0.0;
  bool meets_goal = false;
  // Minimum relative prediction gain for an upgrade between two placements
  // that both miss the goal (bounds migration churn).
  double upgrade_margin = 0.0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual const std::string& name() const = 0;

  // Whether the scheduler should probe the container and build predictions
  // before asking for a ranking (and whether meets-goal is meaningful).
  virtual bool UsesModel() const { return false; }

  // Whether the policy ever proposes upgrades. The scheduler skips the
  // per-incumbent upgrade search entirely when false, so a policy overriding
  // ProposeUpgrades must return true here to be consulted.
  virtual bool Upgrades() const { return false; }

  // Candidate indices into *ctx.placement_ids in preference order for
  // admitting a pending container; the scheduler commits the first candidate
  // realizable on free hardware threads. Returning every index keeps the
  // container admissible whenever anything fits.
  virtual std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const = 0;

  // Candidate indices worth migrating a degraded incumbent to, best first;
  // the scheduler commits the first realizable proposal (skipping the
  // incumbent's own placement class). An empty vector (the default) means
  // the policy never upgrades — pair an override with Upgrades() = true.
  virtual std::vector<size_t> ProposeUpgrades(const PolicyContext& ctx,
                                              const UpgradeState& incumbent) const {
    (void)ctx;
    (void)incumbent;
    return {};
  }
};

// Candidate list for decisions made without the model: every placement id of
// `ips` in set order, with an aligned all-zero prediction vector. Shared by
// the scheduler's admission/upgrade paths and the packing adapter so the
// model-free candidate enumeration cannot diverge between them.
void ModelFreeCandidates(const ImportantPlacementSet& ips,
                         std::vector<int>& placement_ids,
                         std::vector<double>& predicted_abs);

// The paper's decision rule (§1): prefer placements predicted to meet the
// goal, among those the fewest NUMA nodes (ties to the higher prediction);
// when nothing meets the goal, the near-best predictions (within
// ctx.fallback_slack of the maximum) count as equally good and the fewest
// nodes among them wins. Upgrades propose strictly better placements only.
class ModelPolicy final : public SchedulingPolicy {
 public:
  const std::string& name() const override;
  bool UsesModel() const override { return true; }
  bool Upgrades() const override { return true; }
  std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const override;
  std::vector<size_t> ProposeUpgrades(const PolicyContext& ctx,
                                      const UpgradeState& incumbent) const override;
};

// Fewest nodes that fit, id order within a node count; no probes, no goals,
// no upgrades (the baseline the tenancy benchmark compares against).
class FirstFitPolicy final : public SchedulingPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const override;
};

// Tightest packing: among realizable candidates, the one leaving the fewest
// free hardware threads on the nodes it lands on (ties to fewer nodes, then
// id order). Keeps whole nodes free for future large containers.
class BestFitPolicy final : public SchedulingPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const override;
};

// Worst fit / interleave: maximize the nodes used (ties to the candidate
// leaving the most free threads on them, then id order) — the conservative
// operator who buys interference isolation with machine span.
class SpreadPolicy final : public SchedulingPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> RankForAdmission(const PolicyContext& ctx) const override;
};

// Name -> factory registry (shared FactoryRegistry machinery: duplicate
// names CHECK-fail, unknown names CHECK-fail listing what is registered).
// The built-in policies above are pre-registered; plugins may Register
// additional names at startup.
class PolicyRegistry : public FactoryRegistry<SchedulingPolicy> {
 public:
  PolicyRegistry() : FactoryRegistry("scheduling policy") {}

  // The process-wide registry (built-ins registered on first use).
  static PolicyRegistry& Global();
};

// Shorthand for PolicyRegistry::Global().Make(name).
std::unique_ptr<SchedulingPolicy> MakePolicy(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SCHEDULER_POLICY_H_
