#include "src/scheduler/policy.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

const std::string kModelName = "model";
const std::string kFirstFitName = "first-fit";
const std::string kBestFitName = "best-fit";
const std::string kSpreadName = "spread";

void ValidateContext(const PolicyContext& ctx) {
  NP_CHECK(ctx.topo != nullptr);
  NP_CHECK(ctx.ips != nullptr);
  NP_CHECK(ctx.occupancy != nullptr);
  NP_CHECK(ctx.vcpus > 0);
  NP_CHECK(ctx.placement_ids != nullptr);
  NP_CHECK(ctx.predicted_abs != nullptr);
  NP_CHECK(ctx.predicted_abs->size() == ctx.placement_ids->size());
}

std::vector<size_t> IdentityOrder(size_t n) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// Free hardware threads left on the nodes the candidate would land on, after
// it lands there, or nullopt when the class has no realization on the
// current free threads. The probe realization is discarded; the scheduler
// re-realizes whichever candidate it commits.
std::optional<int> LeftoverFreeThreads(const PolicyContext& ctx,
                                       const ImportantPlacement& ip) {
  const std::optional<Placement> realized =
      RealizeAnywhereFree(ip, *ctx.topo, ctx.vcpus, *ctx.occupancy);
  if (!realized.has_value()) {
    return std::nullopt;
  }
  int free_on_nodes = 0;
  for (int node : realized->NodesUsed(*ctx.topo)) {
    free_on_nodes += ctx.occupancy->FreeThreadsOnNode(node);
  }
  return free_on_nodes - ctx.vcpus;
}

}  // namespace

void ModelFreeCandidates(const ImportantPlacementSet& ips,
                         std::vector<int>& placement_ids,
                         std::vector<double>& predicted_abs) {
  placement_ids.clear();
  placement_ids.reserve(ips.placements.size());
  for (const ImportantPlacement& ip : ips.placements) {
    placement_ids.push_back(ip.id);
  }
  predicted_abs.assign(placement_ids.size(), 0.0);
}

// --- model ---

const std::string& ModelPolicy::name() const { return kModelName; }

std::vector<size_t> ModelPolicy::RankForAdmission(const PolicyContext& ctx) const {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.placement_ids->size());
  double best_pred = 0.0;
  for (double p : *ctx.predicted_abs) {
    best_pred = std::max(best_pred, p);
  }
  const double near_best = best_pred * (1.0 - ctx.fallback_slack);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const bool meets_a = (*ctx.predicted_abs)[a] >= ctx.goal_abs;
    const bool meets_b = (*ctx.predicted_abs)[b] >= ctx.goal_abs;
    if (meets_a != meets_b) {
      return meets_a;
    }
    const bool near_a = meets_a || (*ctx.predicted_abs)[a] >= near_best;
    const bool near_b = meets_b || (*ctx.predicted_abs)[b] >= near_best;
    if (near_a != near_b) {
      return near_a;
    }
    if (near_a) {
      const int nodes_a = ctx.ips->ById((*ctx.placement_ids)[a]).NodeCount();
      const int nodes_b = ctx.ips->ById((*ctx.placement_ids)[b]).NodeCount();
      if (nodes_a != nodes_b) {
        return nodes_a < nodes_b;
      }
    }
    return (*ctx.predicted_abs)[a] > (*ctx.predicted_abs)[b];
  });
  return order;
}

std::vector<size_t> ModelPolicy::ProposeUpgrades(const PolicyContext& ctx,
                                                 const UpgradeState& incumbent) const {
  if (incumbent.meets_goal) {
    return {};
  }
  // The admission rank is a preference order, not monotone in prediction
  // (the near-best bucket sorts by node count), so every candidate clearing
  // the gain gate is proposed; the scheduler commits the first realizable.
  std::vector<size_t> proposals;
  for (size_t idx : RankForAdmission(ctx)) {
    if ((*ctx.placement_ids)[idx] == incumbent.current_placement_id) {
      continue;
    }
    const bool cand_meets = (*ctx.predicted_abs)[idx] >= ctx.goal_abs;
    const bool better = cand_meets ||
                        (*ctx.predicted_abs)[idx] >
                            incumbent.current_predicted_abs *
                                (1.0 + incumbent.upgrade_margin);
    if (better) {
      proposals.push_back(idx);
    }
  }
  return proposals;
}

// --- first-fit ---

const std::string& FirstFitPolicy::name() const { return kFirstFitName; }

std::vector<size_t> FirstFitPolicy::RankForAdmission(const PolicyContext& ctx) const {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.placement_ids->size());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ctx.ips->ById((*ctx.placement_ids)[a]).NodeCount() <
           ctx.ips->ById((*ctx.placement_ids)[b]).NodeCount();
  });
  return order;
}

// --- best-fit ---

const std::string& BestFitPolicy::name() const { return kBestFitName; }

std::vector<size_t> BestFitPolicy::RankForAdmission(const PolicyContext& ctx) const {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.placement_ids->size());
  // Unrealizable candidates sort last (the scheduler would skip them anyway)
  // ranked as infinitely loose fits.
  std::vector<int> leftover(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    leftover[i] = LeftoverFreeThreads(ctx, ctx.ips->ById((*ctx.placement_ids)[i]))
                      .value_or(std::numeric_limits<int>::max());
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (leftover[a] != leftover[b]) {
      return leftover[a] < leftover[b];
    }
    return ctx.ips->ById((*ctx.placement_ids)[a]).NodeCount() <
           ctx.ips->ById((*ctx.placement_ids)[b]).NodeCount();
  });
  return order;
}

// --- spread ---

const std::string& SpreadPolicy::name() const { return kSpreadName; }

std::vector<size_t> SpreadPolicy::RankForAdmission(const PolicyContext& ctx) const {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.placement_ids->size());
  std::vector<int> leftover(order.size());
  std::vector<char> realizable(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const std::optional<int> left =
        LeftoverFreeThreads(ctx, ctx.ips->ById((*ctx.placement_ids)[i]));
    realizable[i] = left.has_value() ? 1 : 0;
    leftover[i] = left.value_or(-1);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (realizable[a] != realizable[b]) {
      return realizable[a] > realizable[b];
    }
    const int nodes_a = ctx.ips->ById((*ctx.placement_ids)[a]).NodeCount();
    const int nodes_b = ctx.ips->ById((*ctx.placement_ids)[b]).NodeCount();
    if (nodes_a != nodes_b) {
      return nodes_a > nodes_b;
    }
    return leftover[a] > leftover[b];
  });
  return order;
}

// --- registry ---

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    r->Register(kModelName, [] { return std::make_unique<ModelPolicy>(); });
    r->Register(kFirstFitName, [] { return std::make_unique<FirstFitPolicy>(); });
    r->Register(kBestFitName, [] { return std::make_unique<BestFitPolicy>(); });
    r->Register(kSpreadName, [] { return std::make_unique<SpreadPolicy>(); });
    return r;
  }();
  return *registry;
}

std::unique_ptr<SchedulingPolicy> MakePolicy(const std::string& name) {
  return PolicyRegistry::Global().Make(name);
}

}  // namespace numaplace
