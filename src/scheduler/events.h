// Outcome side of the unified fleet event API.
//
// src/workloads/trace.h defines what goes *into* a scheduler (FleetEvent,
// EventStream); this header defines what comes *out*: the outcome records a
// Step() produces and the EventObserver interface through which consumers
// watch them happen. Benches, the CLI and tests attach an observer instead
// of collecting returned vectors, so the machine scheduler, the fleet
// scheduler and any future layer report through one channel:
//
//   OnAdmission    a container was placed (initial admission, queue
//                  admission, upgrade, or the landing half of a move)
//   OnQueued       a container is waiting (on a machine's queue, or
//                  fleet-wide when machine_id is kNoMachine)
//   OnDeparture    a container left the fleet (trace departure event)
//   OnMove         a committed cross-machine move with its gain/cost model
//   OnEvacuation   a machine was emptied by a fail or drain event
//   OnMachineAvailability   a machine changed availability
//   OnTargetSearch one target-search pass finished (dispatch, rebalance
//                  or evacuation), with its preview count and host cost
//
// The move/evacuation/availability callbacks only fire from the fleet layer
// (a single MachineScheduler has no machine namespace); all types here are
// plain data so the machine layer can reference them without depending on
// src/cluster.
#ifndef NUMAPLACE_SRC_SCHEDULER_EVENTS_H_
#define NUMAPLACE_SRC_SCHEDULER_EVENTS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/placement.h"
#include "src/workloads/trace.h"

namespace numaplace {

/// Machine id for outcomes attached to no machine: the fleet reports it for
/// containers waiting fleet-wide because no available machine fits them,
/// and MachineOf() returns it for ids not live anywhere. A standalone
/// MachineScheduler always reports machine id 0.
inline constexpr int kNoMachine = -1;

/// One step of a scheduling decision, in seconds relative to decision
/// start.
struct TimelineEvent {
  /// Offset from the start of the decision.
  double start_seconds = 0.0;
  /// How long the step ran.
  double duration_seconds = 0.0;
  /// Human-readable step label ("probe #1", "migrate", ...).
  std::string description;
};

/// What a scheduler did in response to one event for one container.
struct ScheduleOutcome {
  /// The container the decision was about.
  int container_id = 0;
  /// True when placed; false means queued until capacity frees up.
  bool admitted = false;
  /// Chosen important placement (0 when queued).
  int placement_id = 0;
  /// The realized placement on the machine's hardware threads.
  Placement placement;
  /// Model prediction for the committed placement (0 under a model-free
  /// policy such as first-fit).
  double predicted_abs_throughput = 0.0;
  /// goal_fraction x solo baseline: the bar the container should meet.
  double goal_abs_throughput = 0.0;
  /// Whether the prediction clears the goal.
  bool meets_goal = false;
  /// True when no probe runs were needed (prediction cache hit).
  bool reused_cached_probes = false;
  /// Simulated probe + migration time the decision cost.
  double decision_seconds = 0.0;
  /// The decision's steps in order (probes, migrations).
  std::vector<TimelineEvent> timeline;
};

/// Machine lifecycle states; only kUp machines receive dispatches.
enum class MachineAvailability { kUp, kDraining, kFailed };

/// Lower-case state name ("up", "draining", "failed").
const char* ToString(MachineAvailability availability);

/// SLO tier of a container's service group: the fleet's admission layer
/// (src/cluster/admission.h) sheds best-effort work first under saturation
/// and lets premium preempt queued best-effort work. Declared here — like
/// MachineAvailability — so the observer vocabulary stays free of cluster
/// types. The numeric order is protection order: lower sheds later.
enum class SloTier { kPremium = 0, kStandard = 1, kBestEffort = 2 };

/// Tiers, for per-tier counters ranging over the enum.
inline constexpr int kNumSloTiers = 3;

/// Lower-case tier name ("premium", "standard", "best-effort").
const char* ToString(SloTier tier);

/// What the admission layer decided for one arrival (or, for kReject
/// reported against an already-queued container, a preemption victim):
///   kAdmit    proceed to dispatch (may still queue on a machine)
///   kDefer    skip dispatch, wait fleet-wide until capacity returns
///   kReject   shed: the container never enters the fleet
///   kPreempt  admit after shedding a queued best-effort victim
enum class AdmissionDecision { kAdmit, kDefer, kReject, kPreempt };

/// Lower-case decision name ("admitted", "deferred", "rejected",
/// "preempted") — the metric-suffix spelling of the decision.
const char* ToString(AdmissionDecision decision);

/// One committed cross-machine move, with the gain/cost model that
/// justified it. Invariant (asserted in tests/cluster_test.cc):
/// predicted_gain_ops > modeled_cost_ops for every logged move, evacuations
/// included.
struct RebalanceMove {
  /// Why the fleet moved the container.
  enum class Reason {
    kRebalance,  ///< departure freed capacity somewhere better
    kDrain,      ///< graceful evacuation: live migration off a draining machine
    kFailover,   ///< state-lost evacuation: re-dispatch off a failed machine
  };

  /// The container that moved.
  int container_id = 0;
  /// Source machine id.
  int from_machine = 0;
  /// Destination machine id.
  int to_machine = 0;
  /// Moved out of a queue rather than migrated live (a queued container has
  /// no state: the move is free).
  bool was_queued = false;
  /// Why the move happened.
  Reason reason = Reason::kRebalance;
  /// Predicted throughput delta x rebalance horizon.
  double predicted_gain_ops = 0.0;
  /// Ops lost while the move runs (overhead fraction x current rate).
  double modeled_cost_ops = 0.0;
  /// §7 migration estimate + network copy, wall seconds.
  double move_seconds = 0.0;
  /// The network-copy share of move_seconds.
  double network_seconds = 0.0;
};

/// Lower-case reason name ("rebalance", "drain", "failover").
const char* ToString(RebalanceMove::Reason reason);

/// One target-search pass: how many candidate placements were previewed to
/// reach one decision, and what the search cost in host wall time. Preview
/// counts are deterministic for a given trace + flags; host_seconds is wall
/// time and must never be written into deterministic artifacts.
struct TargetSearchStats {
  /// Which fleet operation ran the search.
  enum class Kind {
    kDispatch,    ///< admission-time placement search
    kRebalance,   ///< departure-triggered rebalance pass
    kEvacuation,  ///< drain/fail evacuation pass
  };

  /// The operation that searched.
  Kind kind = Kind::kDispatch;
  /// Candidate placements previewed during this search.
  long long previews = 0;
  /// Host wall time the search took (0 when the caller does not time it).
  double host_seconds = 0.0;
};

/// Lower-case kind name ("dispatch", "rebalance", "evacuation").
const char* ToString(TargetSearchStats::Kind kind);

/// Summary of one machine evacuation (fail or drain event).
struct EvacuationReport {
  /// The machine that was emptied.
  int machine_id = 0;
  /// kFailed or kDraining — which event emptied the machine.
  MachineAvailability reason = MachineAvailability::kFailed;
  /// Stream time of the fail/drain event.
  double start_seconds = 0.0;
  /// Live containers (running + queued) the machine held.
  int containers = 0;
  /// Placed on another machine by the evacuation pass — via a gain-gated
  /// move, or via an instant restart when no live migration was worth its
  /// modeled cost.
  int rehomed = 0;
  /// Sent back through dispatch and left waiting.
  int requeued = 0;
  /// Evacuation latency: completion offset of the slowest committed move.
  /// Zero for a pure state-lost failover — restarts are instant in the
  /// model; the damage shows up as queueing and goal attainment instead.
  double last_landing_seconds = 0.0;
  /// Total §7 migration + network-copy seconds across the evacuation.
  double move_seconds_total = 0.0;
  /// The network-copy share of move_seconds_total.
  double network_seconds_total = 0.0;
};

/// Consumer interface for Step()/Replay(). Default implementations ignore
/// everything, so observers override only what they care about. `now` is
/// the stream time of the event that produced the callback.
class EventObserver {
 public:
  virtual ~EventObserver() = default;

  /// A container was placed (admission, queue admission, upgrade, or the
  /// landing half of a move).
  virtual void OnAdmission(int /*machine_id*/, const ScheduleOutcome& /*outcome*/,
                           double /*now*/) {}
  /// A container is waiting (machine queue, or fleet-wide at kNoMachine).
  virtual void OnQueued(int /*machine_id*/, const ScheduleOutcome& /*outcome*/,
                        double /*now*/) {}
  /// A container left (trace departure event). machine_id is where it was
  /// running, kNoMachine when it departed from the fleet-wide wait set.
  virtual void OnDeparture(int /*machine_id*/, int /*container_id*/,
                           double /*now*/) {}
  /// A committed cross-machine move (fleet layer only).
  virtual void OnMove(const RebalanceMove& /*move*/, double /*now*/) {}
  /// A machine was emptied by a fail or drain event (fleet layer only).
  virtual void OnEvacuation(const EvacuationReport& /*report*/, double /*now*/) {}
  /// A machine changed availability (fleet layer only).
  virtual void OnMachineAvailability(int /*machine_id*/,
                                     MachineAvailability /*availability*/,
                                     double /*now*/) {}
  /// One target-search pass finished (fleet layer only).
  virtual void OnTargetSearch(const TargetSearchStats& /*search*/,
                              double /*now*/) {}
  /// The admission layer ruled on an arrival — or, for a kReject against a
  /// container id seen earlier, shed a queued preemption victim. Fires only
  /// when an admission policy is configured (fleet layer only); kAdmit /
  /// kPreempt arrivals still get the usual OnAdmission/OnQueued callbacks
  /// from the dispatch they proceed into.
  virtual void OnAdmissionDecision(int /*container_id*/, int /*vcpus*/,
                                   SloTier /*tier*/,
                                   AdmissionDecision /*decision*/,
                                   double /*now*/) {}
};

/// Periodic sampling hook for ReplayWithEvaluation: the replay calls
/// Sample() at every multiple of IntervalSeconds() of stream time, with the
/// evaluation integrals interpolated to that instant. Declared here (plain
/// interface, no cluster types) so src/telemetry can implement it without a
/// dependency cycle.
class ReplaySampler {
 public:
  virtual ~ReplaySampler() = default;

  /// Sim-time spacing between samples; must be > 0.
  virtual double IntervalSeconds() const = 0;
  /// One sample at stream time `t`. `attainment_so_far` and
  /// `at_goal_so_far` are the run-so-far time-weighted means over live
  /// container-seconds (1.0 while nothing has run yet).
  virtual void Sample(double t, double attainment_so_far,
                      double at_goal_so_far) = 0;
};

/// Forwards every callback to `next` (which may be null); base class for
/// observers that tap some callbacks and pass everything through.
class ForwardingObserver : public EventObserver {
 public:
  explicit ForwardingObserver(EventObserver* next) : next_(next) {}

  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override {
    if (next_ != nullptr) {
      next_->OnAdmission(machine_id, outcome, now);
    }
  }
  void OnQueued(int machine_id, const ScheduleOutcome& outcome, double now) override {
    if (next_ != nullptr) {
      next_->OnQueued(machine_id, outcome, now);
    }
  }
  void OnDeparture(int machine_id, int container_id, double now) override {
    if (next_ != nullptr) {
      next_->OnDeparture(machine_id, container_id, now);
    }
  }
  void OnMove(const RebalanceMove& move, double now) override {
    if (next_ != nullptr) {
      next_->OnMove(move, now);
    }
  }
  void OnEvacuation(const EvacuationReport& report, double now) override {
    if (next_ != nullptr) {
      next_->OnEvacuation(report, now);
    }
  }
  void OnMachineAvailability(int machine_id, MachineAvailability availability,
                             double now) override {
    if (next_ != nullptr) {
      next_->OnMachineAvailability(machine_id, availability, now);
    }
  }
  void OnTargetSearch(const TargetSearchStats& search, double now) override {
    if (next_ != nullptr) {
      next_->OnTargetSearch(search, now);
    }
  }
  void OnAdmissionDecision(int container_id, int vcpus, SloTier tier,
                           AdmissionDecision decision, double now) override {
    if (next_ != nullptr) {
      next_->OnAdmissionDecision(container_id, vcpus, tier, decision, now);
    }
  }

 private:
  EventObserver* next_;
};

/// Counts committed placements while forwarding everything — the
/// ReplayWithEvaluation implementations use it for their `decisions` tally.
class AdmissionCounter final : public ForwardingObserver {
 public:
  using ForwardingObserver::ForwardingObserver;

  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override {
    ++admissions;
    ForwardingObserver::OnAdmission(machine_id, outcome, now);
  }

  /// Placements observed so far.
  int admissions = 0;
};

/// A machine-level outcome tagged with the machine that produced it
/// (kNoMachine for fleet-wide waits).
struct FleetOutcome {
  int machine_id = 0;
  ScheduleOutcome outcome;
};

/// One admission-layer ruling, as recorded by OutcomeRecorder.
struct AdmissionDecisionRecord {
  int container_id = 0;
  int vcpus = 0;
  SloTier tier = SloTier::kStandard;
  AdmissionDecision decision = AdmissionDecision::kAdmit;
};

/// Records everything it observes, in callback order — the
/// batteries-included collector the observer tests and the CLI use in place
/// of the old returned-vector APIs.
class OutcomeRecorder : public EventObserver {
 public:
  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override {
    (void)now;
    outcomes.push_back({machine_id, outcome});
  }
  void OnQueued(int machine_id, const ScheduleOutcome& outcome, double now) override {
    (void)now;
    outcomes.push_back({machine_id, outcome});
  }
  void OnDeparture(int machine_id, int container_id, double now) override {
    (void)now;
    departures.emplace_back(machine_id, container_id);
  }
  void OnMove(const RebalanceMove& move, double now) override {
    (void)now;
    moves.push_back(move);
  }
  void OnEvacuation(const EvacuationReport& report, double now) override {
    (void)now;
    evacuations.push_back(report);
  }
  void OnMachineAvailability(int machine_id, MachineAvailability availability,
                             double now) override {
    (void)now;
    availability_changes.emplace_back(machine_id, availability);
  }
  void OnAdmissionDecision(int container_id, int vcpus, SloTier tier,
                           AdmissionDecision decision, double now) override {
    (void)now;
    admission_decisions.push_back({container_id, vcpus, tier, decision});
  }

  /// Admissions (outcome.admitted) and queueings, interleaved in event
  /// order.
  std::vector<FleetOutcome> outcomes;
  /// (machine id, container id) per departure, in event order.
  std::vector<std::pair<int, int>> departures;
  /// Committed cross-machine moves, in commit order.
  std::vector<RebalanceMove> moves;
  /// One report per processed fail/drain event.
  std::vector<EvacuationReport> evacuations;
  /// (machine id, new availability) pairs, in event order.
  std::vector<std::pair<int, MachineAvailability>> availability_changes;
  /// Admission-layer rulings, in event order (empty with admission off).
  std::vector<AdmissionDecisionRecord> admission_decisions;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SCHEDULER_EVENTS_H_
