// Container memory-migration model (§7, Table 2).
//
// The paper improves on Lepers et al.'s migration scheme by also migrating
// the page cache and reducing locking overhead, reaching roughly an order of
// magnitude over default Linux (38x on Spark), with a throttled non-freezing
// mode for latency-sensitive workloads. We model the three mechanisms:
//
//  * DefaultLinuxMigrator — serial move_pages()-style migration. Costs per
//    page scale with the rmap walk (one unmap/remap per mapping of the
//    page), small pages dominate (THP helps), and each task in the container
//    pays a cpuset update when the container's cpuset changes — the paper
//    calls out TPC-C's many processes as the pathological case. The page
//    cache is NOT migrated.
//  * FastMigrator — freezes the container, migrates with concurrent worker
//    threads at near-DRAM copy bandwidth, includes the page cache, and pays
//    a small per-task freeze/thaw cost. Lock contention grows mildly with
//    task count.
//  * ThrottledMigrator — no freeze; migration bandwidth is capped so the
//    running container keeps most of its performance; exposes both the
//    migration duration and the expected slowdown while it runs.
//
// Constants are calibrated against Table 2 (see migration_test.cc: modeled
// times must be within 35% of the paper's measurements for all 18 workloads,
// and the Fast/Default ratio ordering must hold).
#ifndef NUMAPLACE_SRC_MIGRATION_MIGRATION_H_
#define NUMAPLACE_SRC_MIGRATION_MIGRATION_H_

#include <string>

#include "src/workloads/profile.h"

namespace numaplace {

struct MigrationEstimate {
  double seconds = 0.0;
  double page_cache_seconds = 0.0;  // share of `seconds` spent on page cache
  // Fraction of the container's normal performance lost while the migration
  // runs (1.0 = fully frozen).
  double overhead_fraction = 0.0;
  bool migrates_page_cache = false;
  bool freezes_container = false;
};

class Migrator {
 public:
  virtual ~Migrator() = default;
  virtual const std::string& name() const = 0;
  virtual MigrationEstimate Migrate(const WorkloadProfile& workload) const = 0;
};

// Default Linux migrate_pages()/cpuset path.
class DefaultLinuxMigrator final : public Migrator {
 public:
  const std::string& name() const override;
  MigrationEstimate Migrate(const WorkloadProfile& workload) const override;
};

// The paper's fast migration: freeze + concurrent workers + page cache.
class FastMigrator final : public Migrator {
 public:
  explicit FastMigrator(int worker_threads = 8);
  const std::string& name() const override;
  MigrationEstimate Migrate(const WorkloadProfile& workload) const override;

 private:
  int worker_threads_;
};

// Non-freezing, bandwidth-throttled variant for latency-sensitive containers.
class ThrottledMigrator final : public Migrator {
 public:
  // `max_overhead` is the targeted performance loss while migrating (the
  // paper reports 3-6% for WiredTiger at ~60s).
  explicit ThrottledMigrator(double max_overhead = 0.05);
  const std::string& name() const override;
  MigrationEstimate Migrate(const WorkloadProfile& workload) const override;

 private:
  double max_overhead_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_MIGRATION_MIGRATION_H_
