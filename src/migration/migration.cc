#include "src/migration/migration.h"

#include <algorithm>

#include "src/util/check.h"

namespace numaplace {

namespace {

// --- Default Linux migrate_pages() path ---
// Base migration rate for 4 KiB pages with a single rmap entry each, and the
// rate for transparent huge pages (512x fewer page operations per byte; the
// copy itself then dominates). Mappings divide the rate: each additional
// mapper costs another unmap/remap in the rmap walk.
constexpr double kSmallPageRateGbps = 0.25;
constexpr double kHugePageRateGbps = 1.2;
// Cost of the per-process cpuset update, per process and per GB of the
// process's address space that the cpuset walk has to traverse.
constexpr double kCpusetCostPerProcessGb = 0.145;
constexpr double kDefaultSetupSeconds = 0.05;

// --- The paper's fast migration ---
constexpr double kFastPerWorkerRateGbps = 5.5 / 8.0;  // 8 workers reach 5.5 GB/s
constexpr int kFastSaturationWorkers = 8;             // beyond this, locks saturate
constexpr double kFastSetupSeconds = 0.08;            // freeze + bookkeeping
// Residual lock contention per task beyond a baseline container.
constexpr double kFastPerTaskLock = 0.004;
constexpr int kFastBaselineTasks = 16;

// --- Throttled (non-freezing) migration ---
// The migration worker may consume this share of one node's DRAM bandwidth
// per unit of tolerated overhead: a 5% overhead budget yields 0.6 GB/s on
// the AMD system, which reproduces the paper's ~60 s WiredTiger migration.
constexpr double kNodeDramGbps = 12.0;

const std::string kDefaultName = "default-linux";
const std::string kFastName = "fast-migration";
const std::string kThrottledName = "throttled-migration";

}  // namespace

const std::string& DefaultLinuxMigrator::name() const { return kDefaultName; }

MigrationEstimate DefaultLinuxMigrator::Migrate(const WorkloadProfile& w) const {
  NP_CHECK(w.anon_gb >= 0.0);
  NP_CHECK(w.avg_page_mappings >= 1.0);
  NP_CHECK(w.thp_fraction >= 0.0 && w.thp_fraction <= 1.0);
  const double rate =
      (kSmallPageRateGbps +
       (kHugePageRateGbps - kSmallPageRateGbps) * w.thp_fraction) /
      w.avg_page_mappings;
  const double move_seconds = w.anon_gb / rate;
  const double cpuset_seconds = kCpusetCostPerProcessGb *
                                static_cast<double>(std::max(0, w.num_processes - 1)) *
                                w.anon_gb;
  MigrationEstimate e;
  e.seconds = kDefaultSetupSeconds + move_seconds + cpuset_seconds;
  e.page_cache_seconds = 0.0;  // default Linux does not migrate the page cache
  e.migrates_page_cache = false;
  e.freezes_container = true;  // Linux effectively freezes for seconds (§7)
  e.overhead_fraction = 1.0;
  return e;
}

FastMigrator::FastMigrator(int worker_threads) : worker_threads_(worker_threads) {
  NP_CHECK(worker_threads_ >= 1);
}

const std::string& FastMigrator::name() const { return kFastName; }

MigrationEstimate FastMigrator::Migrate(const WorkloadProfile& w) const {
  const double workers =
      static_cast<double>(std::min(worker_threads_, kFastSaturationWorkers));
  const double lock_factor =
      1.0 + kFastPerTaskLock *
                static_cast<double>(std::max(0, w.num_tasks - kFastBaselineTasks));
  const double rate = kFastPerWorkerRateGbps * workers / lock_factor;
  const double total = w.TotalMemoryGb();
  MigrationEstimate e;
  e.seconds = kFastSetupSeconds + total / rate;
  // The paper reports page-cache migration as a (large) share of the fast
  // path's time: proportional to its share of the bytes moved.
  e.page_cache_seconds =
      total > 0.0 ? (e.seconds - kFastSetupSeconds) * (w.page_cache_gb / total) : 0.0;
  e.migrates_page_cache = true;
  e.freezes_container = true;
  e.overhead_fraction = 1.0;
  return e;
}

ThrottledMigrator::ThrottledMigrator(double max_overhead) : max_overhead_(max_overhead) {
  NP_CHECK(max_overhead_ > 0.0 && max_overhead_ <= 0.5);
}

const std::string& ThrottledMigrator::name() const { return kThrottledName; }

MigrationEstimate ThrottledMigrator::Migrate(const WorkloadProfile& w) const {
  const double rate = kNodeDramGbps * max_overhead_;
  MigrationEstimate e;
  const double total = w.TotalMemoryGb();
  e.seconds = total / rate;
  e.page_cache_seconds = total > 0.0 ? e.seconds * (w.page_cache_gb / total) : 0.0;
  e.migrates_page_cache = true;
  e.freezes_container = false;
  e.overhead_fraction = max_overhead_;
  return e;
}

}  // namespace numaplace
