#include "src/model/registry.h"

#include "src/util/check.h"

namespace numaplace {

void ModelRegistry::Register(const std::string& machine, int vcpus,
                             TrainedPerfModel model) {
  NP_CHECK(vcpus > 0);
  const auto [it, inserted] = models_.try_emplace({machine, vcpus}, std::move(model));
  (void)it;
  NP_CHECK_MSG(inserted, "a model for (" << machine << ", " << vcpus
                                         << " vCPUs) is already registered");
}

void ModelRegistry::RegisterFromText(const std::string& machine, int vcpus,
                                     std::istream& is) {
  Register(machine, vcpus, TrainedPerfModel::LoadText(is));
}

void ModelRegistry::SaveTextTo(const std::string& machine, int vcpus,
                               std::ostream& os) const {
  Get(machine, vcpus).SaveText(os);
}

bool ModelRegistry::Has(const std::string& machine, int vcpus) const {
  return models_.count({machine, vcpus}) > 0;
}

const TrainedPerfModel& ModelRegistry::Get(const std::string& machine, int vcpus) const {
  const auto it = models_.find({machine, vcpus});
  NP_CHECK_MSG(it != models_.end(),
               "no model registered for (" << machine << ", " << vcpus << " vCPUs)");
  return it->second;
}

const CachedPrediction& ModelRegistry::Predict(int container_id,
                                               const std::string& machine, int vcpus,
                                               double perf_a, double perf_b) {
  NP_CHECK(container_id >= 0);
  NP_CHECK_MSG(predictions_.count(container_id) == 0,
               "container " << container_id
                            << " already has a cached prediction; Forget() it first");
  const TrainedPerfModel& model = Get(machine, vcpus);
  CachedPrediction entry;
  entry.perf_a = perf_a;
  entry.perf_b = perf_b;
  entry.input_a = model.input_a;
  entry.input_b = model.input_b;
  entry.predicted_relative = model.Predict(perf_a, perf_b);
  return predictions_.emplace(container_id, std::move(entry)).first->second;
}

const CachedPrediction& ModelRegistry::PredictOrGet(int container_id,
                                                    const std::string& machine,
                                                    int vcpus, double perf_a,
                                                    double perf_b) {
  const CachedPrediction* cached = FindPrediction(container_id);
  if (cached != nullptr) {
    return *cached;
  }
  return Predict(container_id, machine, vcpus, perf_a, perf_b);
}

const CachedPrediction* ModelRegistry::FindPrediction(int container_id) const {
  const auto it = predictions_.find(container_id);
  return it == predictions_.end() ? nullptr : &it->second;
}

void ModelRegistry::Forget(int container_id) { predictions_.erase(container_id); }

}  // namespace numaplace
