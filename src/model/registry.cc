#include "src/model/registry.h"

#include "src/util/check.h"

namespace numaplace {

void ModelRegistry::Register(const std::string& machine, int vcpus,
                             TrainedPerfModel model) {
  NP_CHECK(vcpus > 0);
  const auto [it, inserted] = models_.try_emplace({machine, vcpus}, std::move(model));
  (void)it;
  NP_CHECK_MSG(inserted, "a model for (" << machine << ", " << vcpus
                                         << " vCPUs) is already registered");
}

void ModelRegistry::RegisterFromText(const std::string& machine, int vcpus,
                                     std::istream& is) {
  Register(machine, vcpus, TrainedPerfModel::LoadText(is));
}

void ModelRegistry::SaveTextTo(const std::string& machine, int vcpus,
                               std::ostream& os) const {
  Get(machine, vcpus).SaveText(os);
}

bool ModelRegistry::Has(const std::string& machine, int vcpus) const {
  return models_.count({machine, vcpus}) > 0;
}

const TrainedPerfModel& ModelRegistry::Get(const std::string& machine, int vcpus) const {
  const auto it = models_.find({machine, vcpus});
  NP_CHECK_MSG(it != models_.end(),
               "no model registered for (" << machine << ", " << vcpus << " vCPUs)");
  return it->second;
}

const CachedPrediction& ModelRegistry::Predict(int container_id,
                                               const std::string& machine, int vcpus,
                                               double perf_a, double perf_b) {
  NP_CHECK(container_id >= 0);
  // The model run happens outside the shard lock: Predict is a pure function
  // of (model, perf_a, perf_b), so concurrent predictions for different
  // containers only contend for the brief map insert.
  const TrainedPerfModel& model = Get(machine, vcpus);
  CachedPrediction entry;
  entry.perf_a = perf_a;
  entry.perf_b = perf_b;
  entry.input_a = model.input_a;
  entry.input_b = model.input_b;
  entry.predicted_relative = model.Predict(perf_a, perf_b);
  PredictionShard& shard = ShardFor(container_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.entries.emplace(container_id, std::move(entry));
  NP_CHECK_MSG(inserted, "container " << container_id
                                      << " already has a cached prediction; Forget() "
                                         "it first");
  return it->second;
}

const CachedPrediction& ModelRegistry::PredictOrGet(int container_id,
                                                    const std::string& machine,
                                                    int vcpus, double perf_a,
                                                    double perf_b) {
  const CachedPrediction* cached = FindPrediction(container_id);
  if (cached != nullptr) {
    return *cached;
  }
  return Predict(container_id, machine, vcpus, perf_a, perf_b);
}

const CachedPrediction* ModelRegistry::FindPrediction(int container_id) const {
  if (container_id < 0) {
    return nullptr;
  }
  const PredictionShard& shard = ShardFor(container_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(container_id);
  return it == shard.entries.end() ? nullptr : &it->second;
}

void ModelRegistry::Forget(int container_id) {
  if (container_id < 0) {
    return;
  }
  PredictionShard& shard = ShardFor(container_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries.erase(container_id);
}

size_t ModelRegistry::NumCachedPredictions() const {
  size_t total = 0;
  for (const PredictionShard& shard : predictions_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace numaplace
