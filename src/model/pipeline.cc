#include "src/model/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "src/ml/selection.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace numaplace {

namespace {

// Index of a placement id within the set's ordering.
size_t IndexOf(const ImportantPlacementSet& ips, int id) {
  for (size_t i = 0; i < ips.placements.size(); ++i) {
    if (ips.placements[i].id == id) {
      return i;
    }
  }
  NP_CHECK_MSG(false, "placement id " << id << " not in the important set");
  __builtin_unreachable();
}

// The measurement cache is keyed by workload name; a duplicate name would
// silently alias two different workloads' measurements.
void CheckUniqueWorkloadNames(const std::vector<WorkloadProfile>& workloads) {
  std::set<std::string> names;
  for (const WorkloadProfile& w : workloads) {
    NP_CHECK_MSG(names.insert(w.name).second,
                 "duplicate workload name '" << w.name
                                             << "' in a training set — measurements are "
                                                "cached per name and would be aliased");
  }
}

}  // namespace

std::vector<double> TrainedPerfModel::Predict(double perf_in_a, double perf_in_b) const {
  NP_CHECK_MSG(perf_in_a > 0.0, "non-positive probe measurement");
  const std::vector<double> features = {perf_in_a * ipc_scale, perf_in_b * ipc_scale,
                                        perf_in_b / perf_in_a};
  return forest.Predict(features);
}

namespace {
constexpr char kModelFormatTag[] = "numaplace-perf-model-v1";
}  // namespace

void TrainedPerfModel::SaveText(std::ostream& os) const {
  os << kModelFormatTag << "\n";
  os << input_a << " " << input_b << " " << baseline_id << "\n";
  const auto previous_precision = os.precision(17);
  os << ipc_scale << "\n";
  os.precision(previous_precision);
  os << placement_ids.size();
  for (int id : placement_ids) {
    os << " " << id;
  }
  os << "\n";
  forest.SerializeTo(os);
}

TrainedPerfModel TrainedPerfModel::LoadText(std::istream& is) {
  std::string tag;
  is >> tag;
  NP_CHECK_MSG(tag == kModelFormatTag, "unknown model format: " << tag);
  TrainedPerfModel model;
  is >> model.input_a >> model.input_b >> model.baseline_id >> model.ipc_scale;
  size_t count = 0;
  is >> count;
  NP_CHECK_MSG(is.good() && count >= 1 && count < 10000, "malformed placement-id list");
  model.placement_ids.resize(count);
  for (int& id : model.placement_ids) {
    is >> id;
  }
  NP_CHECK_MSG(!is.fail(), "truncated placement-id list");
  NP_CHECK_MSG(model.ipc_scale > 0.0, "non-positive ipc scale");
  model.forest.DeserializeFrom(is);
  return model;
}

std::vector<double> TrainedHpeModel::Predict(const std::vector<double>& counters) const {
  std::vector<double> features;
  features.reserve(selected_counters.size());
  for (size_t idx : selected_counters) {
    NP_CHECK(idx < counters.size());
    features.push_back(counters[idx]);
  }
  return forest.Predict(features);
}

ModelPipeline::ModelPipeline(const ImportantPlacementSet& ips, const PerformanceModel& sim,
                             int baseline_id, uint64_t seed)
    : ips_(&ips), sim_(&sim), baseline_id_(baseline_id), seed_(seed) {
  IndexOf(ips, baseline_id);  // validates
}

double ModelPipeline::MeasureAbsolute(const WorkloadProfile& profile, int placement_id,
                                      uint64_t run) const {
  const auto key = std::make_tuple(profile.name, placement_id, run);
  const auto it = measurement_cache_.find(key);
  if (it != measurement_cache_.end()) {
    return it->second;
  }
  const ImportantPlacement& ip = ips_->ById(placement_id);
  const Placement realized = Realize(ip, sim_->topology(), ips_->vcpus);
  const double value = sim_->Evaluate(profile, realized, run).throughput_ops;
  measurement_cache_.emplace(key, value);
  return value;
}

PerformanceVector ModelPipeline::MeasureVector(const WorkloadProfile& profile,
                                               uint64_t run) const {
  PerformanceVector v;
  v.workload = profile.name;
  const double baseline = MeasureAbsolute(profile, baseline_id_, run);
  NP_CHECK(baseline > 0.0);
  v.relative.reserve(ips_->placements.size());
  for (const ImportantPlacement& ip : ips_->placements) {
    v.relative.push_back(MeasureAbsolute(profile, ip.id, run) / baseline);
  }
  return v;
}

Dataset ModelPipeline::BuildPerfDataset(const std::vector<WorkloadProfile>& workloads,
                                        int input_a, int input_b,
                                        const PerfModelConfig& config) const {
  NP_CHECK(input_a != input_b);
  CheckUniqueWorkloadNames(workloads);
  const double scale = IpcScale();
  Dataset data;
  for (const WorkloadProfile& w : workloads) {
    for (int run = 0; run < config.runs_per_workload; ++run) {
      const auto run_id = static_cast<uint64_t>(run);
      const double pa = MeasureAbsolute(w, input_a, run_id);
      const double pb = MeasureAbsolute(w, input_b, run_id);
      NP_CHECK(pa > 0.0);
      data.features.push_back({pa * scale, pb * scale, pb / pa});
      data.targets.push_back(MeasureVector(w, run_id).relative);
    }
  }
  data.Validate();
  return data;
}

double ModelPipeline::IpcScale() const {
  return 1.0 / (sim_->topology().perf().base_ops_per_thread *
                static_cast<double>(ips_->vcpus));
}

TrainedPerfModel ModelPipeline::TrainPerf(const std::vector<WorkloadProfile>& workloads,
                                          int input_a, int input_b,
                                          const PerfModelConfig& config) const {
  TrainedPerfModel model;
  model.input_a = input_a;
  model.input_b = input_b;
  model.baseline_id = baseline_id_;
  model.ipc_scale = IpcScale();
  for (const ImportantPlacement& ip : ips_->placements) {
    model.placement_ids.push_back(ip.id);
  }
  const Dataset data = BuildPerfDataset(workloads, input_a, input_b, config);
  ForestParams params = config.forest;
  params.seed = seed_;
  model.forest.Fit(data, params);
  return model;
}

double ModelPipeline::CrossValidatedMae(const std::vector<WorkloadProfile>& workloads,
                                        int input_a, int input_b,
                                        const PerfModelConfig& config) const {
  // Fold over *workloads*, not rows, so repeated runs of one workload never
  // straddle the train/test divide (that would leak the answer).
  Rng rng(SplitMix64(seed_ ^ 0xf01d5));
  const std::vector<std::vector<size_t>> fold_sets =
      KFoldIndices(workloads.size(), static_cast<size_t>(config.cv_folds), rng);
  double total_mae = 0.0;
  int scored = 0;
  for (const std::vector<size_t>& test_rows : fold_sets) {
    std::vector<WorkloadProfile> train;
    std::vector<WorkloadProfile> test;
    std::vector<bool> in_test(workloads.size(), false);
    for (size_t i : test_rows) {
      in_test[i] = true;
    }
    for (size_t i = 0; i < workloads.size(); ++i) {
      (in_test[i] ? test : train).push_back(workloads[i]);
    }
    if (train.empty() || test.empty()) {
      continue;
    }
    PerfModelConfig cv_config = config;
    cv_config.forest.num_trees = config.cv_trees;
    const TrainedPerfModel model = TrainPerf(train, input_a, input_b, cv_config);
    for (const WorkloadProfile& w : test) {
      const uint64_t probe_run = 1000;  // unseen measurement noise
      const double pa = MeasureAbsolute(w, input_a, probe_run);
      const double pb = MeasureAbsolute(w, input_b, probe_run);
      const std::vector<double> predicted = model.Predict(pa, pb);
      const std::vector<double> actual = MeasureVector(w, probe_run).relative;
      // Score with a blend of mean and worst-entry error: the scheduler acts
      // on individual entries of the vector (it commits a container to the
      // placement it picks), so an input pair that nails the average but
      // badly misses one placement is a bad probe pair.
      double mean_err = 0.0;
      double max_err = 0.0;
      for (size_t k = 0; k < actual.size(); ++k) {
        const double err = std::abs(actual[k] - predicted[k]);
        mean_err += err;
        max_err = std::max(max_err, err);
      }
      mean_err /= static_cast<double>(actual.size());
      total_mae += 0.5 * mean_err + 0.5 * max_err;
      ++scored;
    }
  }
  NP_CHECK(scored > 0);
  return total_mae / scored;
}

TrainedPerfModel ModelPipeline::TrainPerfAuto(const std::vector<WorkloadProfile>& workloads,
                                              const PerfModelConfig& config) const {
  double best_error = std::numeric_limits<double>::infinity();
  int best_a = 0;
  int best_b = 0;
  for (size_t i = 0; i < ips_->placements.size(); ++i) {
    for (size_t j = i + 1; j < ips_->placements.size(); ++j) {
      const int a = ips_->placements[i].id;
      const int b = ips_->placements[j].id;
      const double error = CrossValidatedMae(workloads, a, b, config);
      if (error < best_error) {
        best_error = error;
        best_a = a;
        best_b = b;
      }
    }
  }
  NP_CHECK(best_a != best_b);
  return TrainPerf(workloads, best_a, best_b, config);
}

namespace {

// Full-width HPE dataset: one row per (workload, run), all candidate
// counters as features.
Dataset BuildHpeDataset(const ModelPipeline& pipeline, const HpeSampler& sampler,
                        const std::vector<WorkloadProfile>& workloads,
                        int sample_placement_id, const PerfModelConfig& config) {
  CheckUniqueWorkloadNames(workloads);
  Dataset data;
  for (const WorkloadProfile& w : workloads) {
    const std::vector<double> counters =
        pipeline.SampleHpe(sampler, w, sample_placement_id);
    for (int run = 0; run < config.runs_per_workload; ++run) {
      data.features.push_back(counters);
      data.targets.push_back(pipeline.MeasureVector(w, static_cast<uint64_t>(run)).relative);
    }
  }
  data.Validate();
  return data;
}

}  // namespace

TrainedHpeModel ModelPipeline::TrainHpe(const std::vector<WorkloadProfile>& workloads,
                                        const HpeSampler& sampler, int sample_placement_id,
                                        size_t max_features,
                                        const PerfModelConfig& config) const {
  const Dataset data =
      BuildHpeDataset(*this, sampler, workloads, sample_placement_id, config);

  // SFS: score a counter subset by out-of-bag MAE of a small forest (fast
  // proxy for k-fold CV; both are unbiased enough to rank subsets).
  ForestParams sfs_params = config.forest;
  sfs_params.num_trees = 40;
  sfs_params.seed = seed_ ^ 0x5f5;
  const FeatureSubsetScorer scorer = [&](const std::vector<size_t>& columns) {
    const Dataset projected = data.WithFeatureSubset(columns);
    RandomForest forest;
    forest.Fit(projected, sfs_params);
    return forest.OutOfBagMae(projected);
  };
  const SfsResult sfs =
      SequentialForwardSelection(data.NumFeatures(), max_features, scorer);
  return TrainHpeGivenCounters(workloads, sampler, sample_placement_id, sfs.selected,
                               config);
}

TrainedHpeModel ModelPipeline::TrainHpeGivenCounters(
    const std::vector<WorkloadProfile>& workloads, const HpeSampler& sampler,
    int sample_placement_id, const std::vector<size_t>& counters,
    const PerfModelConfig& config) const {
  NP_CHECK(!counters.empty());
  const Dataset data =
      BuildHpeDataset(*this, sampler, workloads, sample_placement_id, config);
  TrainedHpeModel model;
  model.sample_placement_id = sample_placement_id;
  model.baseline_id = baseline_id_;
  model.selected_counters = counters;
  for (const ImportantPlacement& p : ips_->placements) {
    model.placement_ids.push_back(p.id);
  }
  ForestParams params = config.forest;
  params.seed = seed_;
  params.feature_fraction = 1.0 / 3.0;
  model.forest.Fit(data.WithFeatureSubset(counters), params);
  return model;
}

std::vector<double> ModelPipeline::SampleHpe(const HpeSampler& sampler,
                                             const WorkloadProfile& profile,
                                             int placement_id) const {
  const ImportantPlacement& ip = ips_->ById(placement_id);
  const Placement realized = Realize(ip, sim_->topology(), ips_->vcpus);
  return sampler.Sample(profile, realized);
}

std::string WorkloadFamily(const std::string& name) {
  const size_t dash = name.find('-');
  return dash == std::string::npos ? name : name.substr(0, dash);
}

std::vector<CrossValidationRow> LeaveOneWorkloadOut(
    const ModelPipeline& pipeline, const std::vector<WorkloadProfile>& catalog,
    const std::vector<WorkloadProfile>& synthetic, const HpeSampler& sampler,
    const PerfModelConfig& config) {
  std::vector<CrossValidationRow> rows;
  rows.reserve(catalog.size());

  // The probe-pair search and the SFS counter selection run once, on the
  // synthetic set only. Catalog workloads never influence them, so there is
  // no leakage into the held-out predictions; only the final forests are
  // refit per held-out workload.
  const TrainedPerfModel pair_model = pipeline.TrainPerfAuto(synthetic, config);
  const TrainedHpeModel counter_model =
      pipeline.TrainHpe(synthetic, sampler, pipeline.baseline_id(), 6, config);

  for (const WorkloadProfile& held_out : catalog) {
    const std::string family = WorkloadFamily(held_out.name);
    std::vector<WorkloadProfile> train = synthetic;
    for (const WorkloadProfile& other : catalog) {
      if (WorkloadFamily(other.name) != family) {
        train.push_back(other);
      }
    }

    const TrainedPerfModel perf_model =
        pipeline.TrainPerf(train, pair_model.input_a, pair_model.input_b, config);
    const TrainedHpeModel hpe_model = pipeline.TrainHpeGivenCounters(
        train, sampler, pipeline.baseline_id(), counter_model.selected_counters, config);

    const uint64_t probe_run = 2000;  // measurement noise unseen in training
    CrossValidationRow row;
    row.workload = held_out.name;
    row.actual = pipeline.MeasureVector(held_out, probe_run).relative;

    const double pa = pipeline.MeasureAbsolute(held_out, perf_model.input_a, probe_run);
    const double pb = pipeline.MeasureAbsolute(held_out, perf_model.input_b, probe_run);
    row.predicted_perf = perf_model.Predict(pa, pb);
    row.mae_perf = MeanAbsoluteError(row.actual, row.predicted_perf);

    const std::vector<double> counters =
        pipeline.SampleHpe(sampler, held_out, hpe_model.sample_placement_id);
    row.predicted_hpe = hpe_model.Predict(counters);
    row.mae_hpe = MeanAbsoluteError(row.actual, row.predicted_hpe);

    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace numaplace
