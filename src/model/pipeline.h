// The §5 model-building pipeline.
//
// Two model variants, as evaluated in the paper:
//  * Performance-observation model (the paper's contribution): the container
//    is measured in two important placements; the two normalized
//    measurements (plus their ratio, for convenience of the trees) are the
//    model inputs, and the output is the vector of relative performance
//    across all important placements. The training procedure automatically
//    searches for the input pair with the best cross-validated accuracy.
//  * HPE model (the baseline the paper argues against): hardware counters
//    sampled in a single placement are the inputs, reduced by Sequential
//    Forward Selection from a plausible candidate set.
//
// A separate model is trained per machine and per vCPU count, matching the
// paper's fixed-instance-size assumption (§3).
#ifndef NUMAPLACE_SRC_MODEL_PIPELINE_H_
#define NUMAPLACE_SRC_MODEL_PIPELINE_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/important.h"
#include "src/ml/dataset.h"
#include "src/ml/forest.h"
#include "src/sim/hpe.h"
#include "src/sim/perf_model.h"
#include "src/workloads/profile.h"

namespace numaplace {

// Ground-truth measurement of one workload across all important placements,
// relative to the baseline placement.
struct PerformanceVector {
  std::string workload;
  std::vector<double> relative;  // indexed by placement order in the set
};

struct PerfModelConfig {
  int runs_per_workload = 3;   // noisy measurement repetitions per placement
  int cv_trees = 40;           // smaller forest while scoring input pairs
  int cv_folds = 3;
  ForestParams forest;
  PerfModelConfig() {
    forest.num_trees = 120;
    forest.tree.max_depth = 12;
    forest.tree.min_samples_leaf = 2;
    forest.feature_fraction = 1.0;  // ratio models have few features
  }
};

// A trained performance-observation model.
//
// Features are the two probe measurements themselves, normalized to a
// per-hardware-thread rate (the paper's canonical metric is IPC, which is
// comparable across workloads; any consistent per-container metric works as
// long as the same normalization is used at training and prediction time).
// Feeding both measurements rather than just their ratio lets the forest
// separate categories that share a ratio but run at different absolute
// memory-boundedness.
struct TrainedPerfModel {
  int input_a = 0;             // placement ids of the two probe placements
  int input_b = 0;
  int baseline_id = 0;         // the id the output vector is relative to
  double ipc_scale = 1.0;      // measurement -> feature normalization
  std::vector<int> placement_ids;  // output order
  RandomForest forest;

  // Predicts the relative performance vector from the two probe
  // measurements (same unit as used at training time).
  std::vector<double> Predict(double perf_in_a, double perf_in_b) const;

  // Plain-text persistence: train offline, ship the model file, load it in
  // the scheduler. The format is versioned; Load throws std::logic_error on
  // version or structure mismatches.
  void SaveText(std::ostream& os) const;
  static TrainedPerfModel LoadText(std::istream& is);
};

// A trained HPE model.
struct TrainedHpeModel {
  int sample_placement_id = 0;     // counters are sampled here
  int baseline_id = 0;
  std::vector<size_t> selected_counters;  // indices into the sampler's names
  std::vector<int> placement_ids;
  RandomForest forest;

  std::vector<double> Predict(const std::vector<double>& counters) const;
};

class ModelPipeline {
 public:
  // `ips` and `sim` must outlive the pipeline. The baseline id follows the
  // paper: placement #1 on the AMD system, #2 on the Intel system.
  ModelPipeline(const ImportantPlacementSet& ips, const PerformanceModel& sim,
                int baseline_id, uint64_t seed);

  // Measures the workload in every important placement (run-indexed noise)
  // and returns throughput relative to the baseline placement.
  PerformanceVector MeasureVector(const WorkloadProfile& profile, uint64_t run) const;

  // Absolute throughput in one important placement.
  double MeasureAbsolute(const WorkloadProfile& profile, int placement_id,
                         uint64_t run) const;

  // Builds the training set for the (a, b) input pair: one row per workload
  // per run; features are the two normalized measurements and their ratio.
  Dataset BuildPerfDataset(const std::vector<WorkloadProfile>& workloads, int input_a,
                           int input_b, const PerfModelConfig& config) const;

  // Trains with a fixed input pair.
  TrainedPerfModel TrainPerf(const std::vector<WorkloadProfile>& workloads, int input_a,
                             int input_b, const PerfModelConfig& config) const;

  // The paper's automatic variant: tries every unordered pair of important
  // placements containing the baseline or not, scores each by k-fold
  // cross-validated MAE, and trains the final model on the best pair.
  TrainedPerfModel TrainPerfAuto(const std::vector<WorkloadProfile>& workloads,
                                 const PerfModelConfig& config) const;

  // HPE variant: counters sampled in `sample_placement_id` (the baseline by
  // default), reduced with SFS to at most `max_features` counters.
  TrainedHpeModel TrainHpe(const std::vector<WorkloadProfile>& workloads,
                           const HpeSampler& sampler, int sample_placement_id,
                           size_t max_features, const PerfModelConfig& config) const;

  // HPE variant with a counter subset already selected (skips the SFS pass;
  // used by the leave-one-out harness, which selects counters once on the
  // synthetic set).
  TrainedHpeModel TrainHpeGivenCounters(const std::vector<WorkloadProfile>& workloads,
                                        const HpeSampler& sampler, int sample_placement_id,
                                        const std::vector<size_t>& counters,
                                        const PerfModelConfig& config) const;

  // Samples HPE counters for a workload realized in the given important
  // placement (the HPE model's runtime input path).
  std::vector<double> SampleHpe(const HpeSampler& sampler, const WorkloadProfile& profile,
                                int placement_id) const;

  // k-fold cross-validated MAE of a candidate input pair (used by
  // TrainPerfAuto; exposed for the ablation benchmark).
  double CrossValidatedMae(const std::vector<WorkloadProfile>& workloads, int input_a,
                           int input_b, const PerfModelConfig& config) const;

  const ImportantPlacementSet& important() const { return *ips_; }
  int baseline_id() const { return baseline_id_; }

 private:
  // Normalization from simulator throughput to a per-hardware-thread rate
  // (the "IPC" the paper uses as its canonical cross-workload metric).
  double IpcScale() const;

  // Training sweeps re-measure the same (workload, placement, run) triples
  // thousands of times; measurements are deterministic per triple, so they
  // are memoized. Keyed by workload *name*: dataset building CHECK-fails on
  // duplicate names, which would otherwise alias cache entries.
  mutable std::map<std::tuple<std::string, int, uint64_t>, double> measurement_cache_;

  const ImportantPlacementSet* ips_;
  const PerformanceModel* sim_;
  int baseline_id_;
  uint64_t seed_;
};

// Leave-one-workload-family-out evaluation for Fig. 4: for each catalog
// workload, trains on the synthetic set plus every catalog workload of a
// *different* family (spark-cc and spark-pr-lj are one family, the postgres
// pair another) and predicts the held-out one.
struct CrossValidationRow {
  std::string workload;
  std::vector<double> actual;        // relative performance vector
  std::vector<double> predicted_perf;  // performance-observation model
  std::vector<double> predicted_hpe;   // HPE model
  double mae_perf = 0.0;             // mean |pred-actual| over placements
  double mae_hpe = 0.0;
};

std::vector<CrossValidationRow> LeaveOneWorkloadOut(
    const ModelPipeline& pipeline, const std::vector<WorkloadProfile>& catalog,
    const std::vector<WorkloadProfile>& synthetic, const HpeSampler& sampler,
    const PerfModelConfig& config);

// Family key for the leave-one-out exclusion ("spark-cc" -> "spark").
std::string WorkloadFamily(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_MODEL_PIPELINE_H_
