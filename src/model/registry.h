// Model registry for the multi-tenant scheduler (src/scheduler).
//
// The paper trains one model per (machine, vCPU count) — §3's fixed-instance
// -size assumption. A scheduler admitting a stream of containers of several
// sizes therefore needs a registry to look the right model up, and — because
// probe runs cost real seconds of container time — a per-container cache of
// the probe measurements and the predicted performance vector, so that
// re-placing a container after a departure reuses the probes it already paid
// for instead of running them again.
#ifndef NUMAPLACE_SRC_MODEL_REGISTRY_H_
#define NUMAPLACE_SRC_MODEL_REGISTRY_H_

#include <array>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/model/pipeline.h"

namespace numaplace {

// Probe measurements and the resulting prediction for one container.
struct CachedPrediction {
  double perf_a = 0.0;  // raw probe measurement in the model's input A
  double perf_b = 0.0;
  int input_a = 0;      // probe placement ids the measurements belong to
  int input_b = 0;
  std::vector<double> predicted_relative;  // model output, model's id order
};

// Thread-safety: the *prediction cache* is sharded by container id with a
// mutex per shard, so concurrent Predict/PredictOrGet/FindPrediction calls
// for different containers proceed in parallel (the parallel fleet replay
// probes distinct containers from worker threads). Returned pointers stay
// valid across concurrent inserts (std::map nodes are stable); callers must
// still ensure nobody Forget()s a container while another thread reads its
// entry — the fleet only forgets at coordinator barriers. The *model* table
// has no lock: models are registered before replay starts and read-only
// afterwards.
class ModelRegistry {
 public:
  // Registers a trained model for (machine, vcpus). CHECK-fails on a
  // duplicate key: silently replacing a model would invalidate every cached
  // prediction made with the old one.
  void Register(const std::string& machine, int vcpus, TrainedPerfModel model);

  // Text-format persistence pass-throughs (train offline, ship the file,
  // load it into the scheduler's registry).
  void RegisterFromText(const std::string& machine, int vcpus, std::istream& is);
  void SaveTextTo(const std::string& machine, int vcpus, std::ostream& os) const;

  bool Has(const std::string& machine, int vcpus) const;
  // CHECK-fails when absent; use Has() to probe.
  const TrainedPerfModel& Get(const std::string& machine, int vcpus) const;
  size_t NumModels() const { return models_.size(); }

  // Runs the (machine, vcpus) model on the two probe measurements and caches
  // the result under `container_id`. CHECK-fails if the container already
  // has a cached prediction — probes are paid once, so a duplicate means the
  // caller re-probed a live container or reused its id without Forget()ing
  // it first (the Forget()-first contract). Decision paths that may be
  // retried, like the departure re-placement pass, should use PredictOrGet.
  const CachedPrediction& Predict(int container_id, const std::string& machine, int vcpus,
                                  double perf_a, double perf_b);

  // Like Predict, but when the container already has a cached prediction it
  // is returned as-is and the probe measurements are ignored — safe to call
  // from re-placement passes that cannot know whether probes were paid.
  const CachedPrediction& PredictOrGet(int container_id, const std::string& machine,
                                       int vcpus, double perf_a, double perf_b);

  // The cached prediction for a container, or nullptr when it never probed.
  const CachedPrediction* FindPrediction(int container_id) const;

  // Drops the container's cached prediction (no-op when absent).
  void Forget(int container_id);
  size_t NumCachedPredictions() const;

 private:
  static constexpr size_t kPredictionShards = 16;

  struct PredictionShard {
    mutable std::mutex mu;
    std::map<int, CachedPrediction> entries;
  };

  PredictionShard& ShardFor(int container_id) const {
    return predictions_[static_cast<size_t>(container_id) % kPredictionShards];
  }

  std::map<std::pair<std::string, int>, TrainedPerfModel> models_;
  mutable std::array<PredictionShard, kPredictionShards> predictions_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_MODEL_REGISTRY_H_
