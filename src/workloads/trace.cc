#include "src/workloads/trace.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/check.h"
#include "src/workloads/synth.h"

namespace numaplace {

namespace {

double NextExponential(Rng& rng, double mean) {
  // NextDouble() is in [0, 1); 1-u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.NextDouble());
}

void SortEvents(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time_seconds != b.time_seconds) {
                       return a.time_seconds < b.time_seconds;
                     }
                     return a.type == TraceEventType::kArrival &&
                            b.type == TraceEventType::kDeparture;
                   });
}

}  // namespace

std::vector<TraceEvent> GeneratePoissonTrace(const TraceConfig& config, Rng& rng) {
  NP_CHECK(config.num_containers > 0);
  NP_CHECK(config.mean_interarrival_seconds > 0.0);
  NP_CHECK(config.mean_lifetime_seconds > 0.0);
  NP_CHECK(config.vcpus > 0);
  NP_CHECK(config.goal_fraction > 0.0);

  const std::vector<WorkloadProfile> catalog =
      config.use_catalog ? PaperWorkloads() : std::vector<WorkloadProfile>{};

  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(config.num_containers) * 2);
  double clock = 0.0;
  for (int i = 0; i < config.num_containers; ++i) {
    clock += NextExponential(rng, config.mean_interarrival_seconds);
    const int id = config.first_container_id + i;

    TraceEvent arrival;
    arrival.time_seconds = clock;
    arrival.type = TraceEventType::kArrival;
    arrival.container_id = id;
    if (config.use_catalog) {
      arrival.workload = catalog[rng.NextBelow(catalog.size())];
    } else {
      const std::vector<WorkloadArchetype>& archetypes = AllArchetypes();
      arrival.workload =
          SampleWorkload(archetypes[rng.NextBelow(archetypes.size())], rng);
    }
    // One container = one tenant; uniquify so per-name measurement caches and
    // per-name dataset checks stay sound when the same application recurs.
    arrival.workload.name += "#" + std::to_string(id);
    arrival.vcpus = config.vcpus;
    arrival.goal_fraction = config.goal_fraction;
    arrival.latency_sensitive = rng.NextDouble() < config.latency_sensitive_fraction;
    events.push_back(arrival);

    TraceEvent departure;
    departure.time_seconds = clock + NextExponential(rng, config.mean_lifetime_seconds);
    departure.type = TraceEventType::kDeparture;
    departure.container_id = id;
    departure.vcpus = config.vcpus;
    events.push_back(departure);
  }

  SortEvents(events);
  return events;
}

std::vector<TraceEvent> MergeTraces(const std::vector<std::vector<TraceEvent>>& traces) {
  std::vector<TraceEvent> merged;
  std::set<int> seen;
  for (const std::vector<TraceEvent>& trace : traces) {
    for (const TraceEvent& event : trace) {
      if (event.type == TraceEventType::kArrival) {
        NP_CHECK_MSG(seen.insert(event.container_id).second,
                     "container id " << event.container_id
                                     << " appears in two merged traces — give each "
                                        "stream a disjoint first_container_id");
      }
      merged.push_back(event);
    }
  }
  SortEvents(merged);
  return merged;
}

std::vector<TraceEvent> GenerateFleetTrace(const TraceConfig& base, int num_streams,
                                           Rng& rng) {
  NP_CHECK(num_streams > 0);
  std::vector<std::vector<TraceEvent>> streams;
  streams.reserve(static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    TraceConfig config = base;
    config.first_container_id = base.first_container_id + s * base.num_containers;
    Rng stream_rng = rng.Fork(static_cast<uint64_t>(s));
    streams.push_back(GeneratePoissonTrace(config, stream_rng));
  }
  return MergeTraces(streams);
}

}  // namespace numaplace
