#include "src/workloads/trace.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/check.h"
#include "src/workloads/synth.h"

namespace numaplace {

namespace {

double NextExponential(Rng& rng, double mean) {
  // NextDouble() is in [0, 1); 1-u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.NextDouble());
}

}  // namespace

const char* ToString(DomainScope scope) {
  switch (scope) {
    case DomainScope::kMachine:
      return "machine";
    case DomainScope::kRack:
      return "rack";
    case DomainScope::kZone:
      return "zone";
  }
  return "unknown";
}

const char* ToString(FleetEventKind kind) {
  switch (kind) {
    case FleetEventKind::kMachineFail:
      return "machine-fail";
    case FleetEventKind::kMachineDrain:
      return "machine-drain";
    case FleetEventKind::kMachineRejoin:
      return "machine-rejoin";
    case FleetEventKind::kContainerArrival:
      return "arrival";
    case FleetEventKind::kContainerDeparture:
      return "departure";
  }
  return "unknown";
}

int FleetEvent::machine_id() const {
  if (const MachineFail* fail = std::get_if<MachineFail>(&payload)) {
    return fail->machine_id;
  }
  if (const MachineDrain* drain = std::get_if<MachineDrain>(&payload)) {
    return drain->machine_id;
  }
  if (const MachineRejoin* rejoin = std::get_if<MachineRejoin>(&payload)) {
    return rejoin->machine_id;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no machine id");
  __builtin_unreachable();
}

int FleetEvent::container_id() const {
  if (const ContainerArrival* a = arrival()) {
    return a->container_id;
  }
  if (const ContainerDeparture* d = departure()) {
    return d->container_id;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no container id");
  __builtin_unreachable();
}

FleetEvent FleetEvent::Arrival(double time_seconds, ContainerArrival arrival) {
  return {time_seconds, Payload{std::move(arrival)}};
}

FleetEvent FleetEvent::Departure(double time_seconds, int container_id) {
  return {time_seconds, Payload{ContainerDeparture{container_id}}};
}

FleetEvent FleetEvent::Fail(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineFail{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::Drain(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineDrain{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::Rejoin(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineRejoin{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::FailDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineFail{index, scope}}};
}

FleetEvent FleetEvent::DrainDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineDrain{index, scope}}};
}

FleetEvent FleetEvent::RejoinDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineRejoin{index, scope}}};
}

DomainScope FleetEvent::domain_scope() const {
  if (const MachineFail* fail = std::get_if<MachineFail>(&payload)) {
    return fail->scope;
  }
  if (const MachineDrain* drain = std::get_if<MachineDrain>(&payload)) {
    return drain->scope;
  }
  if (const MachineRejoin* rejoin = std::get_if<MachineRejoin>(&payload)) {
    return rejoin->scope;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no domain scope");
  __builtin_unreachable();
}

bool CanonicalBefore(const FleetEvent& a, const FleetEvent& b) {
  if (a.time_seconds != b.time_seconds) {
    return a.time_seconds < b.time_seconds;
  }
  return a.payload.index() < b.payload.index();
}

EventStream::EventStream(std::vector<FleetEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(), CanonicalBefore);
}

void EventStream::Append(FleetEvent event) {
  const auto position =
      std::upper_bound(events_.begin(), events_.end(), event, CanonicalBefore);
  events_.insert(position, std::move(event));
}

void EventStream::AppendAll(std::vector<FleetEvent> events) {
  if (events.empty()) {
    return;
  }
  // stable_sort keeps the batch's relative order at equal (time, kind), and
  // inplace_merge puts first-range (existing) events before equal
  // second-range (batch) ones — together exactly the order of sequential
  // upper_bound Appends, without their per-insert O(n) shifts.
  std::stable_sort(events.begin(), events.end(), CanonicalBefore);
  const auto mid = static_cast<std::vector<FleetEvent>::difference_type>(events_.size());
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
  std::inplace_merge(events_.begin(), events_.begin() + mid, events_.end(),
                     CanonicalBefore);
}

EventStream GeneratePoissonTrace(const TraceConfig& config, Rng& rng) {
  NP_CHECK(config.num_containers > 0);
  NP_CHECK(config.mean_interarrival_seconds > 0.0);
  NP_CHECK(config.mean_lifetime_seconds > 0.0);
  NP_CHECK(config.vcpus > 0);
  NP_CHECK(config.goal_fraction > 0.0);

  const std::vector<WorkloadProfile> catalog =
      config.use_catalog ? PaperWorkloads() : std::vector<WorkloadProfile>{};

  std::vector<FleetEvent> events;
  events.reserve(static_cast<size_t>(config.num_containers) * 2);
  double clock = 0.0;
  for (int i = 0; i < config.num_containers; ++i) {
    clock += NextExponential(rng, config.mean_interarrival_seconds);
    const int id = config.first_container_id + i;

    ContainerArrival arrival;
    arrival.container_id = id;
    if (config.use_catalog) {
      arrival.workload = catalog[rng.NextBelow(catalog.size())];
    } else {
      const std::vector<WorkloadArchetype>& archetypes = AllArchetypes();
      arrival.workload =
          SampleWorkload(archetypes[rng.NextBelow(archetypes.size())], rng);
    }
    // One container = one tenant; uniquify so per-name measurement caches and
    // per-name dataset checks stay sound when the same application recurs.
    arrival.workload.name += "#" + std::to_string(id);
    arrival.vcpus = config.vcpus;
    arrival.goal_fraction = config.goal_fraction;
    arrival.latency_sensitive = rng.NextDouble() < config.latency_sensitive_fraction;
    events.push_back(FleetEvent::Arrival(clock, std::move(arrival)));

    events.push_back(FleetEvent::Departure(
        clock + NextExponential(rng, config.mean_lifetime_seconds), id));
  }

  return EventStream(std::move(events));
}

EventStream MergeTraces(const std::vector<EventStream>& traces) {
  std::vector<FleetEvent> merged;
  std::set<int> seen;
  for (const EventStream& trace : traces) {
    for (const FleetEvent& event : trace) {
      if (const ContainerArrival* arrival = event.arrival()) {
        NP_CHECK_MSG(seen.insert(arrival->container_id).second,
                     "container id " << arrival->container_id
                                     << " appears in two merged traces — give each "
                                        "stream a disjoint first_container_id");
      }
      merged.push_back(event);
    }
  }
  return EventStream(std::move(merged));
}

EventStream GenerateFleetTrace(const TraceConfig& base, int num_streams, Rng& rng) {
  NP_CHECK(num_streams > 0);
  std::vector<EventStream> streams;
  streams.reserve(static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    TraceConfig config = base;
    config.first_container_id = base.first_container_id + s * base.num_containers;
    Rng stream_rng = rng.Fork(static_cast<uint64_t>(s));
    streams.push_back(GeneratePoissonTrace(config, stream_rng));
  }
  return MergeTraces(streams);
}

namespace {

// SLO-tier prefix for a drawn tier-mix coordinate: premium first, then
// best-effort, standard takes the remainder. The `<tier>:` spelling is the
// naming convention src/cluster/admission.h parses.
const char* TierPrefix(double draw, double premium_fraction,
                       double best_effort_fraction) {
  if (draw < premium_fraction) {
    return "premium:";
  }
  if (draw < premium_fraction + best_effort_fraction) {
    return "best-effort:";
  }
  return "standard:";
}

}  // namespace

EventStream GenerateFlashCrowdTrace(const FlashCrowdConfig& config, int num_streams,
                                    Rng& rng) {
  NP_CHECK(num_streams > 0);
  NP_CHECK(config.base.num_containers > 0);
  NP_CHECK(config.base.mean_interarrival_seconds > 0.0);
  NP_CHECK(config.base.mean_lifetime_seconds > 0.0);
  NP_CHECK(config.base.vcpus > 0);
  NP_CHECK(config.base.goal_fraction > 0.0);
  NP_CHECK_MSG(config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0,
               "diurnal_amplitude must be in [0, 1)");
  NP_CHECK(config.diurnal_period_seconds > 0.0);
  NP_CHECK(config.bursts >= 0);
  NP_CHECK(config.bursts == 0 || config.burst_containers > 0);
  NP_CHECK(config.burst_mean_interarrival_seconds > 0.0);
  NP_CHECK(config.burst_mean_lifetime_seconds > 0.0);
  NP_CHECK(config.premium_fraction >= 0.0 && config.best_effort_fraction >= 0.0 &&
           config.premium_fraction + config.best_effort_fraction <= 1.0);
  NP_CHECK(config.burst_premium_fraction >= 0.0 &&
           config.burst_best_effort_fraction >= 0.0 &&
           config.burst_premium_fraction + config.burst_best_effort_fraction <= 1.0);

  const std::vector<WorkloadProfile> catalog =
      config.base.use_catalog ? PaperWorkloads() : std::vector<WorkloadProfile>{};
  const int per_stream =
      config.base.num_containers + config.bursts * config.burst_containers;

  std::vector<EventStream> streams;
  streams.reserve(static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    Rng stream_rng = rng.Fork(static_cast<uint64_t>(s));
    std::vector<FleetEvent> events;
    events.reserve(static_cast<size_t>(per_stream) * 2);
    int next_id = config.base.first_container_id + s * per_stream;

    const auto emit_arrival = [&](double clock, double mean_lifetime,
                                  double premium_fraction,
                                  double best_effort_fraction) {
      const int id = next_id++;
      ContainerArrival arrival;
      arrival.container_id = id;
      if (config.base.use_catalog) {
        arrival.workload = catalog[stream_rng.NextBelow(catalog.size())];
      } else {
        const std::vector<WorkloadArchetype>& archetypes = AllArchetypes();
        arrival.workload = SampleWorkload(
            archetypes[stream_rng.NextBelow(archetypes.size())], stream_rng);
      }
      // Tier prefix first, then the usual per-container uniquification, so
      // the service group ("premium:gcc") carries the tier and recurring
      // applications still get distinct tenant names.
      arrival.workload.name =
          TierPrefix(stream_rng.NextDouble(), premium_fraction, best_effort_fraction) +
          arrival.workload.name + "#" + std::to_string(id);
      arrival.vcpus = config.base.vcpus;
      arrival.goal_fraction = config.base.goal_fraction;
      arrival.latency_sensitive =
          stream_rng.NextDouble() < config.base.latency_sensitive_fraction;
      events.push_back(FleetEvent::Arrival(clock, std::move(arrival)));
      events.push_back(
          FleetEvent::Departure(clock + NextExponential(stream_rng, mean_lifetime), id));
    };

    // Diurnal baseline: Lewis–Shedler thinning of a homogeneous process at
    // the peak rate, accepting each candidate with rate(t) / peak — an
    // exact sample of the rate-modulated Poisson process.
    const double base_rate = 1.0 / config.base.mean_interarrival_seconds;
    const double peak_rate = base_rate * (1.0 + config.diurnal_amplitude);
    double clock = 0.0;
    for (int i = 0; i < config.base.num_containers; ++i) {
      for (;;) {
        clock += NextExponential(stream_rng, 1.0 / peak_rate);
        constexpr double kTwoPi = 6.283185307179586;
        const double rate =
            base_rate * (1.0 + config.diurnal_amplitude *
                                   std::sin(kTwoPi * clock /
                                            config.diurnal_period_seconds));
        if (stream_rng.NextDouble() * peak_rate < rate) {
          break;
        }
      }
      emit_arrival(clock, config.base.mean_lifetime_seconds,
                   config.premium_fraction, config.best_effort_fraction);
    }
    const double baseline_span = clock;

    // Flash crowds: deterministic epochs spread across the baseline span
    // (burst b of B starts at span * (b + 1) / (B + 1)), each a tight run
    // of exponential gaps at the burst interarrival.
    for (int b = 0; b < config.bursts; ++b) {
      double burst_clock = baseline_span * static_cast<double>(b + 1) /
                           static_cast<double>(config.bursts + 1);
      for (int i = 0; i < config.burst_containers; ++i) {
        burst_clock +=
            NextExponential(stream_rng, config.burst_mean_interarrival_seconds);
        emit_arrival(burst_clock, config.burst_mean_lifetime_seconds,
                     config.burst_premium_fraction,
                     config.burst_best_effort_fraction);
      }
    }

    streams.push_back(EventStream(std::move(events)));
  }
  return MergeTraces(streams);
}

EventStream InjectMachineEvents(EventStream stream,
                                const std::vector<FleetEvent>& machine_events) {
  for (const FleetEvent& event : machine_events) {
    NP_CHECK_MSG(event.IsMachineEvent(),
                 "InjectMachineEvents takes machine fail/drain/rejoin events, got "
                     << ToString(event.kind()) << " at t=" << event.time_seconds);
    NP_CHECK_MSG(event.domain_scope() == DomainScope::kMachine,
                 ToString(event.domain_scope())
                     << "-scoped " << ToString(event.kind()) << " at t="
                     << event.time_seconds
                     << " names no machines — expand it through the fleet's "
                        "FailureDomainTopology (src/cluster/domains.h) first");
    NP_CHECK(event.machine_id() >= 0);
    NP_CHECK(event.time_seconds >= 0.0);
  }
  // Validate-then-bulk-merge: one AppendAll instead of per-event insertion
  // shifts, so large injected sets (domain expansions, scripted storms)
  // stay O(n + k log k).
  stream.AppendAll(machine_events);
  return stream;
}

}  // namespace numaplace
