#include "src/workloads/trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/workloads/synth.h"

namespace numaplace {

namespace {

double NextExponential(Rng& rng, double mean) {
  // NextDouble() is in [0, 1); 1-u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.NextDouble());
}

}  // namespace

std::vector<TraceEvent> GeneratePoissonTrace(const TraceConfig& config, Rng& rng) {
  NP_CHECK(config.num_containers > 0);
  NP_CHECK(config.mean_interarrival_seconds > 0.0);
  NP_CHECK(config.mean_lifetime_seconds > 0.0);
  NP_CHECK(config.vcpus > 0);
  NP_CHECK(config.goal_fraction > 0.0);

  const std::vector<WorkloadProfile> catalog =
      config.use_catalog ? PaperWorkloads() : std::vector<WorkloadProfile>{};

  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(config.num_containers) * 2);
  double clock = 0.0;
  for (int i = 0; i < config.num_containers; ++i) {
    clock += NextExponential(rng, config.mean_interarrival_seconds);
    const int id = config.first_container_id + i;

    TraceEvent arrival;
    arrival.time_seconds = clock;
    arrival.type = TraceEventType::kArrival;
    arrival.container_id = id;
    if (config.use_catalog) {
      arrival.workload = catalog[rng.NextBelow(catalog.size())];
    } else {
      const std::vector<WorkloadArchetype>& archetypes = AllArchetypes();
      arrival.workload =
          SampleWorkload(archetypes[rng.NextBelow(archetypes.size())], rng);
    }
    // One container = one tenant; uniquify so per-name measurement caches and
    // per-name dataset checks stay sound when the same application recurs.
    arrival.workload.name += "#" + std::to_string(id);
    arrival.vcpus = config.vcpus;
    arrival.goal_fraction = config.goal_fraction;
    arrival.latency_sensitive = rng.NextDouble() < config.latency_sensitive_fraction;
    events.push_back(arrival);

    TraceEvent departure;
    departure.time_seconds = clock + NextExponential(rng, config.mean_lifetime_seconds);
    departure.type = TraceEventType::kDeparture;
    departure.container_id = id;
    departure.vcpus = config.vcpus;
    events.push_back(departure);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time_seconds != b.time_seconds) {
                       return a.time_seconds < b.time_seconds;
                     }
                     return a.type == TraceEventType::kArrival &&
                            b.type == TraceEventType::kDeparture;
                   });
  return events;
}

}  // namespace numaplace
