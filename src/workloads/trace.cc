#include "src/workloads/trace.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/check.h"
#include "src/workloads/synth.h"

namespace numaplace {

namespace {

double NextExponential(Rng& rng, double mean) {
  // NextDouble() is in [0, 1); 1-u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.NextDouble());
}

}  // namespace

const char* ToString(DomainScope scope) {
  switch (scope) {
    case DomainScope::kMachine:
      return "machine";
    case DomainScope::kRack:
      return "rack";
    case DomainScope::kZone:
      return "zone";
  }
  return "unknown";
}

const char* ToString(FleetEventKind kind) {
  switch (kind) {
    case FleetEventKind::kMachineFail:
      return "machine-fail";
    case FleetEventKind::kMachineDrain:
      return "machine-drain";
    case FleetEventKind::kMachineRejoin:
      return "machine-rejoin";
    case FleetEventKind::kContainerArrival:
      return "arrival";
    case FleetEventKind::kContainerDeparture:
      return "departure";
  }
  return "unknown";
}

int FleetEvent::machine_id() const {
  if (const MachineFail* fail = std::get_if<MachineFail>(&payload)) {
    return fail->machine_id;
  }
  if (const MachineDrain* drain = std::get_if<MachineDrain>(&payload)) {
    return drain->machine_id;
  }
  if (const MachineRejoin* rejoin = std::get_if<MachineRejoin>(&payload)) {
    return rejoin->machine_id;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no machine id");
  __builtin_unreachable();
}

int FleetEvent::container_id() const {
  if (const ContainerArrival* a = arrival()) {
    return a->container_id;
  }
  if (const ContainerDeparture* d = departure()) {
    return d->container_id;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no container id");
  __builtin_unreachable();
}

FleetEvent FleetEvent::Arrival(double time_seconds, ContainerArrival arrival) {
  return {time_seconds, Payload{std::move(arrival)}};
}

FleetEvent FleetEvent::Departure(double time_seconds, int container_id) {
  return {time_seconds, Payload{ContainerDeparture{container_id}}};
}

FleetEvent FleetEvent::Fail(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineFail{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::Drain(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineDrain{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::Rejoin(double time_seconds, int machine_id) {
  return {time_seconds, Payload{MachineRejoin{machine_id, DomainScope::kMachine}}};
}

FleetEvent FleetEvent::FailDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineFail{index, scope}}};
}

FleetEvent FleetEvent::DrainDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineDrain{index, scope}}};
}

FleetEvent FleetEvent::RejoinDomain(double time_seconds, DomainScope scope, int index) {
  return {time_seconds, Payload{MachineRejoin{index, scope}}};
}

DomainScope FleetEvent::domain_scope() const {
  if (const MachineFail* fail = std::get_if<MachineFail>(&payload)) {
    return fail->scope;
  }
  if (const MachineDrain* drain = std::get_if<MachineDrain>(&payload)) {
    return drain->scope;
  }
  if (const MachineRejoin* rejoin = std::get_if<MachineRejoin>(&payload)) {
    return rejoin->scope;
  }
  NP_CHECK_MSG(false, ToString(kind()) << " event at t=" << time_seconds
                                       << " carries no domain scope");
  __builtin_unreachable();
}

bool CanonicalBefore(const FleetEvent& a, const FleetEvent& b) {
  if (a.time_seconds != b.time_seconds) {
    return a.time_seconds < b.time_seconds;
  }
  return a.payload.index() < b.payload.index();
}

EventStream::EventStream(std::vector<FleetEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(), CanonicalBefore);
}

void EventStream::Append(FleetEvent event) {
  const auto position =
      std::upper_bound(events_.begin(), events_.end(), event, CanonicalBefore);
  events_.insert(position, std::move(event));
}

EventStream GeneratePoissonTrace(const TraceConfig& config, Rng& rng) {
  NP_CHECK(config.num_containers > 0);
  NP_CHECK(config.mean_interarrival_seconds > 0.0);
  NP_CHECK(config.mean_lifetime_seconds > 0.0);
  NP_CHECK(config.vcpus > 0);
  NP_CHECK(config.goal_fraction > 0.0);

  const std::vector<WorkloadProfile> catalog =
      config.use_catalog ? PaperWorkloads() : std::vector<WorkloadProfile>{};

  std::vector<FleetEvent> events;
  events.reserve(static_cast<size_t>(config.num_containers) * 2);
  double clock = 0.0;
  for (int i = 0; i < config.num_containers; ++i) {
    clock += NextExponential(rng, config.mean_interarrival_seconds);
    const int id = config.first_container_id + i;

    ContainerArrival arrival;
    arrival.container_id = id;
    if (config.use_catalog) {
      arrival.workload = catalog[rng.NextBelow(catalog.size())];
    } else {
      const std::vector<WorkloadArchetype>& archetypes = AllArchetypes();
      arrival.workload =
          SampleWorkload(archetypes[rng.NextBelow(archetypes.size())], rng);
    }
    // One container = one tenant; uniquify so per-name measurement caches and
    // per-name dataset checks stay sound when the same application recurs.
    arrival.workload.name += "#" + std::to_string(id);
    arrival.vcpus = config.vcpus;
    arrival.goal_fraction = config.goal_fraction;
    arrival.latency_sensitive = rng.NextDouble() < config.latency_sensitive_fraction;
    events.push_back(FleetEvent::Arrival(clock, std::move(arrival)));

    events.push_back(FleetEvent::Departure(
        clock + NextExponential(rng, config.mean_lifetime_seconds), id));
  }

  return EventStream(std::move(events));
}

EventStream MergeTraces(const std::vector<EventStream>& traces) {
  std::vector<FleetEvent> merged;
  std::set<int> seen;
  for (const EventStream& trace : traces) {
    for (const FleetEvent& event : trace) {
      if (const ContainerArrival* arrival = event.arrival()) {
        NP_CHECK_MSG(seen.insert(arrival->container_id).second,
                     "container id " << arrival->container_id
                                     << " appears in two merged traces — give each "
                                        "stream a disjoint first_container_id");
      }
      merged.push_back(event);
    }
  }
  return EventStream(std::move(merged));
}

EventStream GenerateFleetTrace(const TraceConfig& base, int num_streams, Rng& rng) {
  NP_CHECK(num_streams > 0);
  std::vector<EventStream> streams;
  streams.reserve(static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    TraceConfig config = base;
    config.first_container_id = base.first_container_id + s * base.num_containers;
    Rng stream_rng = rng.Fork(static_cast<uint64_t>(s));
    streams.push_back(GeneratePoissonTrace(config, stream_rng));
  }
  return MergeTraces(streams);
}

EventStream InjectMachineEvents(EventStream stream,
                                const std::vector<FleetEvent>& machine_events) {
  for (const FleetEvent& event : machine_events) {
    NP_CHECK_MSG(event.IsMachineEvent(),
                 "InjectMachineEvents takes machine fail/drain/rejoin events, got "
                     << ToString(event.kind()) << " at t=" << event.time_seconds);
    NP_CHECK_MSG(event.domain_scope() == DomainScope::kMachine,
                 ToString(event.domain_scope())
                     << "-scoped " << ToString(event.kind()) << " at t="
                     << event.time_seconds
                     << " names no machines — expand it through the fleet's "
                        "FailureDomainTopology (src/cluster/domains.h) first");
    NP_CHECK(event.machine_id() >= 0);
    NP_CHECK(event.time_seconds >= 0.0);
    stream.Append(event);
  }
  return stream;
}

}  // namespace numaplace
