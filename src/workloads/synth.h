// Synthetic workload generation for model training.
//
// The paper trains its Random Forest on executions of many applications; the
// model works because workloads fall into a handful of natural categories
// with similar performance-vector shapes (§5, Fig. 3). The generator below
// samples profiles around six archetypes matching those categories, so the
// training sets used for the Fig. 4 reproduction span the same behaviour
// space the paper's benchmark suites do.
#ifndef NUMAPLACE_SRC_WORKLOADS_SYNTH_H_
#define NUMAPLACE_SRC_WORKLOADS_SYNTH_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/workloads/profile.h"

namespace numaplace {

enum class WorkloadArchetype {
  kComputeBound,     // placement-insensitive (swaptions-like)
  kLatencySensitive, // cross-thread communication dominates (WTbtree-like)
  kBandwidthBound,   // streaming, DRAM-limited (streamcluster/ft.C-like)
  kCacheSensitive,   // large shared working set, L3-capacity bound (canneal)
  kSmtFriendly,      // benefits from sharing L2 groups (kmeans-like)
  kBalancedMixed,    // moderate everything (BLAST/postgres-like)
};

// All six archetypes, for iteration.
const std::vector<WorkloadArchetype>& AllArchetypes();

std::string ArchetypeName(WorkloadArchetype archetype);

// Samples one profile near the archetype's center (lognormal-ish jitter on
// sizes, clamped uniform jitter on rates).
WorkloadProfile SampleWorkload(WorkloadArchetype archetype, Rng& rng);

// Samples `count` profiles round-robin across all archetypes.
std::vector<WorkloadProfile> SampleTrainingWorkloads(int count, Rng& rng);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_WORKLOADS_SYNTH_H_
