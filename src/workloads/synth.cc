#include "src/workloads/synth.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

const std::vector<WorkloadArchetype>& AllArchetypes() {
  static const std::vector<WorkloadArchetype> kAll = {
      WorkloadArchetype::kComputeBound,     WorkloadArchetype::kLatencySensitive,
      WorkloadArchetype::kBandwidthBound,   WorkloadArchetype::kCacheSensitive,
      WorkloadArchetype::kSmtFriendly,      WorkloadArchetype::kBalancedMixed,
  };
  return kAll;
}

std::string ArchetypeName(WorkloadArchetype archetype) {
  switch (archetype) {
    case WorkloadArchetype::kComputeBound:
      return "compute-bound";
    case WorkloadArchetype::kLatencySensitive:
      return "latency-sensitive";
    case WorkloadArchetype::kBandwidthBound:
      return "bandwidth-bound";
    case WorkloadArchetype::kCacheSensitive:
      return "cache-sensitive";
    case WorkloadArchetype::kSmtFriendly:
      return "smt-friendly";
    case WorkloadArchetype::kBalancedMixed:
      return "balanced-mixed";
  }
  NP_CHECK_MSG(false, "unhandled archetype");
  __builtin_unreachable();
}

namespace {

double Jitter(Rng& rng, double center, double rel, double lo, double hi) {
  const double v = center * std::exp(rng.NextGaussian(0.0, rel));
  return std::clamp(v, lo, hi);
}

double JitterLin(Rng& rng, double center, double abs, double lo, double hi) {
  return std::clamp(center + rng.NextDouble(-abs, abs), lo, hi);
}

}  // namespace

WorkloadProfile SampleWorkload(WorkloadArchetype archetype, Rng& rng) {
  WorkloadProfile p;
  switch (archetype) {
    case WorkloadArchetype::kComputeBound:
      p.mem_intensity = JitterLin(rng, 0.07, 0.05, 0.01, 0.2);
      p.ws_private_mb = Jitter(rng, 0.6, 0.5, 0.05, 4.0);
      p.ws_l2_mb = Jitter(rng, 0.06, 0.4, 0.01, 0.2);
      p.l2_locality = JitterLin(rng, 0.85, 0.08, 0.6, 0.95);
      p.ws_shared_mb = Jitter(rng, 1.0, 0.8, 0.0, 10.0);
      p.bw_per_thread_gbps = Jitter(rng, 0.25, 0.4, 0.05, 0.8);
      p.comm_intensity = JitterLin(rng, 0.03, 0.03, 0.0, 0.1);
      p.smt_combined = JitterLin(rng, 1.85, 0.1, 1.6, 2.0);
      p.cache_coop = JitterLin(rng, 0.05, 0.05, 0.0, 0.2);
      p.barrier_sensitivity = JitterLin(rng, 0.05, 0.05, 0.0, 0.2);
      break;
    case WorkloadArchetype::kLatencySensitive:
      p.mem_intensity = JitterLin(rng, 0.28, 0.08, 0.1, 0.45);
      p.ws_private_mb = Jitter(rng, 0.8, 0.5, 0.1, 4.0);
      p.ws_l2_mb = Jitter(rng, 0.15, 0.4, 0.03, 0.4);
      p.l2_locality = JitterLin(rng, 0.5, 0.1, 0.3, 0.7);
      p.ws_shared_mb = Jitter(rng, 250.0, 0.5, 30.0, 600.0);
      p.bw_per_thread_gbps = Jitter(rng, 1.8, 0.3, 0.8, 3.0);
      p.comm_intensity = JitterLin(rng, 0.6, 0.3, 0.3, 0.95);
      p.smt_combined = JitterLin(rng, 1.6, 0.15, 1.35, 1.85);
      p.cache_coop = JitterLin(rng, 0.25, 0.15, 0.0, 0.5);
      p.barrier_sensitivity = JitterLin(rng, 0.15, 0.1, 0.0, 0.4);
      break;
    case WorkloadArchetype::kBandwidthBound:
      p.mem_intensity = JitterLin(rng, 0.62, 0.1, 0.45, 0.8);
      p.ws_private_mb = Jitter(rng, 16.0, 0.6, 2.0, 64.0);
      p.ws_l2_mb = Jitter(rng, 0.5, 0.3, 0.2, 1.0);
      p.l2_locality = JitterLin(rng, 0.3, 0.08, 0.15, 0.45);
      p.ws_shared_mb = Jitter(rng, 80.0, 0.7, 5.0, 300.0);
      p.bw_per_thread_gbps = Jitter(rng, 3.0, 0.25, 1.8, 5.0);
      p.comm_intensity = JitterLin(rng, 0.3, 0.2, 0.0, 0.55);
      p.smt_combined = JitterLin(rng, 1.35, 0.1, 1.15, 1.55);
      p.cache_coop = JitterLin(rng, 0.0, 0.05, 0.0, 0.15);
      p.barrier_sensitivity = JitterLin(rng, 0.45, 0.2, 0.1, 0.7);
      break;
    case WorkloadArchetype::kCacheSensitive:
      p.mem_intensity = JitterLin(rng, 0.48, 0.1, 0.3, 0.65);
      p.ws_private_mb = Jitter(rng, 5.0, 0.6, 1.0, 24.0);
      p.ws_l2_mb = Jitter(rng, 0.2, 0.4, 0.05, 0.5);
      p.l2_locality = JitterLin(rng, 0.3, 0.1, 0.15, 0.5);
      p.ws_shared_mb = Jitter(rng, 350.0, 0.5, 80.0, 900.0);
      p.bw_per_thread_gbps = Jitter(rng, 1.6, 0.3, 0.8, 3.0);
      p.comm_intensity = JitterLin(rng, 0.12, 0.1, 0.0, 0.3);
      p.smt_combined = JitterLin(rng, 1.5, 0.12, 1.3, 1.75);
      p.cache_coop = JitterLin(rng, 0.35, 0.15, 0.1, 0.6);
      p.barrier_sensitivity = JitterLin(rng, 0.1, 0.1, 0.0, 0.3);
      break;
    case WorkloadArchetype::kSmtFriendly:
      p.mem_intensity = JitterLin(rng, 0.42, 0.1, 0.25, 0.6);
      p.ws_private_mb = Jitter(rng, 3.0, 0.5, 0.5, 12.0);
      p.ws_l2_mb = Jitter(rng, 0.3, 0.3, 0.1, 0.6);
      p.l2_locality = JitterLin(rng, 0.6, 0.1, 0.4, 0.8);
      p.ws_shared_mb = Jitter(rng, 50.0, 0.6, 5.0, 200.0);
      p.bw_per_thread_gbps = Jitter(rng, 2.0, 0.3, 1.0, 3.5);
      p.comm_intensity = JitterLin(rng, 0.06, 0.05, 0.0, 0.2);
      p.smt_combined = JitterLin(rng, 2.1, 0.08, 1.95, 2.25);
      p.cache_coop = JitterLin(rng, 0.5, 0.15, 0.25, 0.75);
      p.barrier_sensitivity = JitterLin(rng, 0.2, 0.1, 0.0, 0.4);
      break;
    case WorkloadArchetype::kBalancedMixed:
      p.mem_intensity = JitterLin(rng, 0.38, 0.15, 0.15, 0.6);
      p.ws_private_mb = Jitter(rng, 10.0, 0.7, 1.0, 40.0);
      p.ws_l2_mb = Jitter(rng, 0.3, 0.5, 0.05, 0.6);
      p.l2_locality = JitterLin(rng, 0.5, 0.15, 0.25, 0.75);
      p.ws_shared_mb = Jitter(rng, 150.0, 0.8, 10.0, 500.0);
      p.bw_per_thread_gbps = Jitter(rng, 2.0, 0.4, 0.8, 3.5);
      p.comm_intensity = JitterLin(rng, 0.25, 0.2, 0.0, 0.6);
      p.smt_combined = JitterLin(rng, 1.6, 0.15, 1.3, 1.9);
      p.cache_coop = JitterLin(rng, 0.1, 0.1, 0.0, 0.35);
      p.barrier_sensitivity = JitterLin(rng, 0.25, 0.15, 0.0, 0.55);
      break;
  }
  // Footprint fields only matter for migration experiments; give them
  // plausible spreads anyway so any consumer sees realistic values.
  p.anon_gb = Jitter(rng, 8.0, 0.9, 0.01, 40.0);
  p.page_cache_gb = Jitter(rng, 2.0, 1.0, 0.0, 30.0);
  p.num_tasks = 8 + static_cast<int>(rng.NextBelow(120));
  p.num_processes = 1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(p.num_tasks)));
  p.avg_page_mappings = JitterLin(rng, 1.2, 0.5, 1.0, 4.0);
  p.thp_fraction = JitterLin(rng, 0.5, 0.3, 0.0, 0.9);
  return p;
}

std::vector<WorkloadProfile> SampleTrainingWorkloads(int count, Rng& rng) {
  NP_CHECK(count > 0);
  std::vector<WorkloadProfile> out;
  out.reserve(static_cast<size_t>(count));
  const auto& archetypes = AllArchetypes();
  for (int i = 0; i < count; ++i) {
    const WorkloadArchetype archetype = archetypes[static_cast<size_t>(i) % archetypes.size()];
    WorkloadProfile p = SampleWorkload(archetype, rng);
    std::ostringstream name;
    name << "synth-" << ArchetypeName(archetype) << "-" << i;
    p.name = name.str();
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace numaplace
