// Workload profiles: the per-application parameters that drive the
// performance simulator (src/sim) and the migration model (src/migration).
//
// The paper runs real applications (NAS, Parsec, Metis, BLAST, gcc, Spark,
// TPC-C/H on Postgres, WiredTiger) inside lxc containers on real NUMA
// hardware. This environment has no NUMA hardware, so each application is
// replaced by a profile of the physical quantities that determine how its
// performance responds to placement — memory intensity, working-set sizes,
// communication rate, SMT friendliness, cooperative sharing — and the
// simulator maps (profile, placement) to throughput from first principles.
// The *learning* problem the paper poses (predict the full performance
// vector from two observations) is therefore preserved.
#ifndef NUMAPLACE_SRC_WORKLOADS_PROFILE_H_
#define NUMAPLACE_SRC_WORKLOADS_PROFILE_H_

#include <string>
#include <vector>

namespace numaplace {

struct WorkloadProfile {
  std::string name;

  // --- Execution profile (performance simulator inputs) ---
  // Fraction of work that touches memory beyond the L1 (0 = pure compute).
  double mem_intensity = 0.2;
  // Per-thread private working set and the per-thread L2-resident hot set.
  double ws_private_mb = 1.0;
  double ws_l2_mb = 0.15;
  // Fraction of beyond-L1 accesses that target the hot set (and therefore
  // hit L2 when the hot set fits); the remainder walk the full working set.
  double l2_locality = 0.5;
  // Working set shared by all threads; each L3 cache in use keeps its own
  // copy of the hot part.
  double ws_shared_mb = 0.0;
  // DRAM traffic one thread generates at full speed if every access missed
  // the caches (GB/s); cache hits filter this.
  double bw_per_thread_gbps = 1.0;
  // Sensitivity to cross-thread communication latency (0 = threads never
  // talk, 1 = latency-bound).
  double comm_intensity = 0.0;
  // Combined throughput of two threads sharing an L2 group (SMT siblings on
  // Intel, CMT module cores on AMD), relative to one thread running alone.
  // 2.0 = perfect scaling, <2 = pipeline contention, >2 = cooperative
  // sharing (prefetching for each other), as seen for kmeans in the paper.
  double smt_combined = 1.7;
  // Fraction of shared-working-set misses saved by co-locating threads
  // (cooperative cache sharing, §1).
  double cache_coop = 0.0;
  // Fraction of progress gated on the slowest thread (barrier-style
  // synchronization). Makes unbalanced mappings produce stragglers.
  double barrier_sensitivity = 0.0;

  // --- Memory footprint (migration model inputs; Table 2 data) ---
  double anon_gb = 1.0;        // anonymous (process) memory
  double page_cache_gb = 0.0;  // page cache associated with the container
  int num_tasks = 16;          // threads + processes (freeze/thaw cost)
  // Distinct processes (separate mm): each pays the cpuset-update walk that
  // makes default Linux pathological for TPC-C (§7).
  int num_processes = 1;
  double avg_page_mappings = 1.0;  // mean rmap entries per page
  double thp_fraction = 0.5;   // share of anon memory in transparent huge pages

  // Reporting metric, e.g. "ops/s" or "transactions/s".
  std::string metric = "ops/s";

  double TotalMemoryGb() const { return anon_gb + page_cache_gb; }
};

// The 18 applications of the paper's evaluation (§6, Table 2).
std::vector<WorkloadProfile> PaperWorkloads();

// Looks up a paper workload by name; throws std::logic_error when absent.
const WorkloadProfile& PaperWorkload(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_WORKLOADS_PROFILE_H_
