#include "src/workloads/profile.h"

#include "src/util/check.h"

namespace numaplace {

namespace {

// Builder keeping the table below readable. Memory figures (anon + page
// cache, task counts) follow Table 2 of the paper; the page-cache split uses
// the paper's §7 percentages where given (93% of BLAST's fast-migration time
// is page cache, 75% for TPC-C, 62% for TPC-H).
WorkloadProfile Make(const std::string& name, double m, double ws_p, double ws_l2,
                     double l2loc, double ws_s, double bw, double comm, double smt,
                     double coop, double barrier, double anon_gb, double cache_gb,
                     int tasks, int processes, double mappings, double thp,
                     const std::string& metric) {
  WorkloadProfile p;
  p.name = name;
  p.mem_intensity = m;
  p.ws_private_mb = ws_p;
  p.ws_l2_mb = ws_l2;
  p.l2_locality = l2loc;
  p.ws_shared_mb = ws_s;
  p.bw_per_thread_gbps = bw;
  p.comm_intensity = comm;
  p.smt_combined = smt;
  p.cache_coop = coop;
  p.barrier_sensitivity = barrier;
  p.anon_gb = anon_gb;
  p.page_cache_gb = cache_gb;
  p.num_tasks = tasks;
  p.num_processes = processes;
  p.avg_page_mappings = mappings;
  p.thp_fraction = thp;
  p.metric = metric;
  return p;
}

}  // namespace

std::vector<WorkloadProfile> PaperWorkloads() {
  std::vector<WorkloadProfile> out;
  // name              m     ws_p  ws_l2 l2loc ws_s   bw   comm  smt   coop  barr
  //                  anon  cache tasks map  thp
  out.push_back(Make("BLAST", 0.25, 2.0, 0.10, 0.60, 60.0, 1.2, 0.05, 1.75, 0.10, 0.0,
                     1.3, 17.2, 16, 1, 1.0, 0.0, "alignments/s"));
  out.push_back(Make("canneal", 0.50, 4.0, 0.20, 0.25, 400.0, 1.5, 0.15, 1.50, 0.35, 0.1,
                     1.0, 0.1, 16, 1, 1.0, 0.0, "swaps/s"));
  out.push_back(Make("fluidanimate", 0.30, 8.0, 0.20, 0.50, 30.0, 1.2, 0.35, 1.60, 0.05, 0.5,
                     0.6, 0.1, 16, 1, 1.0, 0.0, "frames/s"));
  out.push_back(Make("freqmine", 0.35, 6.0, 0.20, 0.50, 80.0, 1.3, 0.10, 1.55, 0.20, 0.1,
                     1.2, 0.1, 16, 1, 1.0, 0.0, "ops/s"));
  out.push_back(Make("gcc", 0.30, 12.0, 0.25, 0.65, 5.0, 1.0, 0.00, 1.70, 0.00, 0.0,
                     1.0, 0.4, 20, 4, 1.0, 0.25, "files/s"));
  out.push_back(Make("kmeans", 0.45, 3.0, 0.30, 0.60, 50.0, 2.2, 0.05, 2.15, 0.50, 0.2,
                     6.8, 0.4, 16, 1, 1.0, 0.9, "iterations/s"));
  out.push_back(Make("pca", 0.55, 24.0, 0.50, 0.35, 10.0, 2.8, 0.05, 1.40, 0.00, 0.3,
                     11.6, 0.4, 16, 1, 1.0, 0.9, "iterations/s"));
  out.push_back(Make("postgres-tpch", 0.50, 8.0, 0.40, 0.35, 250.0, 2.4, 0.10, 1.55, 0.10, 0.1,
                     10.2, 16.6, 40, 16, 3.0, 0.05, "queries/h"));
  out.push_back(Make("postgres-tpcc", 0.35, 4.0, 0.25, 0.45, 200.0, 1.4, 0.45, 1.60, 0.15, 0.1,
                     9.4, 28.3, 220, 200, 3.5, 0.0, "transactions/s"));
  out.push_back(Make("spark-cc", 0.45, 20.0, 0.50, 0.40, 150.0, 2.0, 0.20, 1.65, 0.05, 0.4,
                     16.2, 0.8, 120, 2, 3.0, 0.1, "iterations/s"));
  out.push_back(Make("spark-pr-lj", 0.50, 20.0, 0.50, 0.40, 180.0, 2.2, 0.25, 1.60, 0.05, 0.4,
                     16.3, 0.8, 120, 2, 3.0, 0.1, "iterations/s"));
  out.push_back(Make("streamcluster", 0.70, 1.0, 0.50, 0.30, 120.0, 3.5, 0.50, 1.30, 0.00, 0.6,
                     0.1, 0.0, 16, 1, 1.0, 0.0, "points/s"));
  out.push_back(Make("swaptions", 0.05, 0.5, 0.05, 0.90, 0.0, 0.2, 0.00, 1.90, 0.00, 0.0,
                     0.01, 0.0, 16, 1, 1.0, 0.0, "swaptions/s"));
  out.push_back(Make("ft.C", 0.60, 16.0, 0.50, 0.35, 60.0, 3.0, 0.30, 1.35, 0.00, 0.5,
                     4.9, 0.1, 16, 1, 1.0, 0.0, "mop/s"));
  out.push_back(Make("dc.B", 0.55, 40.0, 0.50, 0.40, 80.0, 2.5, 0.10, 1.50, 0.00, 0.2,
                     14.0, 13.3, 16, 1, 1.0, 0.05, "mop/s"));
  out.push_back(Make("wc", 0.45, 10.0, 0.50, 0.45, 40.0, 2.0, 0.10, 1.70, 0.00, 0.3,
                     10.0, 5.4, 16, 1, 1.0, 0.35, "MB/s"));
  out.push_back(Make("wr", 0.50, 12.0, 0.50, 0.45, 40.0, 2.2, 0.12, 1.65, 0.00, 0.3,
                     11.7, 5.4, 16, 1, 1.0, 0.45, "MB/s"));
  out.push_back(Make("WTbtree", 0.25, 0.5, 0.15, 0.50, 300.0, 2.0, 0.80, 1.60, 0.25, 0.1,
                     14.5, 21.8, 24, 1, 1.3, 0.15, "operations/s"));
  return out;
}

const WorkloadProfile& PaperWorkload(const std::string& name) {
  static const std::vector<WorkloadProfile> catalog = PaperWorkloads();
  for (const WorkloadProfile& p : catalog) {
    if (p.name == name) {
      return p;
    }
  }
  NP_CHECK_MSG(false, "unknown paper workload: " << name);
  __builtin_unreachable();
}

}  // namespace numaplace
