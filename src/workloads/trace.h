// Arrival/departure traces for the multi-tenant scheduler (src/scheduler).
//
// The paper evaluates one container at a time; a datacenter machine sees a
// stream of them. The generator below produces the standard open-system
// model: container arrivals form a Poisson process (exponential
// inter-arrival times) and each container runs for an exponentially
// distributed lifetime, the M/G/∞-style workload used throughout the
// cluster-scheduling literature. Workloads are drawn either from the paper's
// 18-application catalog or from the synthetic archetypes of src/workloads.
#ifndef NUMAPLACE_SRC_WORKLOADS_TRACE_H_
#define NUMAPLACE_SRC_WORKLOADS_TRACE_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/workloads/profile.h"

namespace numaplace {

enum class TraceEventType { kArrival, kDeparture };

struct TraceEvent {
  double time_seconds = 0.0;
  TraceEventType type = TraceEventType::kArrival;
  int container_id = 0;
  // Populated for arrivals; departures carry only the id.
  WorkloadProfile workload;
  int vcpus = 0;
  double goal_fraction = 1.0;
  bool latency_sensitive = false;
};

struct TraceConfig {
  int num_containers = 32;
  // Poisson arrival process: mean seconds between arrivals.
  double mean_interarrival_seconds = 120.0;
  // Exponential lifetime per container.
  double mean_lifetime_seconds = 600.0;
  int vcpus = 16;
  double goal_fraction = 0.9;
  // Probability a container is latency-sensitive (throttled migrator, §7).
  double latency_sensitive_fraction = 0.25;
  // Draw from the paper's application catalog instead of synthetic
  // archetype samples.
  bool use_catalog = true;
  // Container ids start here (lets several traces share a registry).
  int first_container_id = 1;
};

// Generates the event stream, sorted by time (arrival before departure on
// ties). Each arrival has exactly one matching departure. Workload names are
// uniquified with the container id so duplicate-name checks downstream hold.
std::vector<TraceEvent> GeneratePoissonTrace(const TraceConfig& config, Rng& rng);

// Merges several time-sorted event streams into one time-sorted stream
// (arrival before departure on ties, stable across streams). Container ids
// must be disjoint across the inputs — the merged trace addresses one fleet-
// wide id namespace — and a collision CHECK-fails.
std::vector<TraceEvent> MergeTraces(const std::vector<std::vector<TraceEvent>>& traces);

// Fleet workload: `num_streams` independent Poisson streams (one per tenant
// population feeding the cluster), each a copy of `base` with a disjoint
// container-id namespace carved out via TraceConfig::first_container_id
// (stream s starts at base.first_container_id + s * base.num_containers),
// merged into one trace of num_streams * base.num_containers containers.
// Stream randomness forks deterministically from `rng`, so the result is a
// pure function of (base, num_streams, rng seed).
std::vector<TraceEvent> GenerateFleetTrace(const TraceConfig& base, int num_streams,
                                           Rng& rng);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_WORKLOADS_TRACE_H_
