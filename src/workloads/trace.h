// Unified fleet event model and trace generators.
//
// The paper evaluates one container at a time; a datacenter machine sees a
// stream of them, and a datacenter *fleet* additionally sees machines fail,
// drain for maintenance and rejoin. Every such happening is one FleetEvent —
// a typed variant of
//
//   ContainerArrival / ContainerDeparture   container traffic
//   MachineFail / MachineDrain / MachineRejoin   machine lifecycle
//
// carried in a time-sorted EventStream. Schedulers consume streams one
// FleetEvent at a time through their Step() entry points (src/scheduler,
// src/cluster); the generators below produce container traffic as the
// standard open-system model (Poisson arrivals, exponential lifetimes, the
// M/G/∞-style workload of the cluster-scheduling literature), and
// InjectMachineEvents folds scripted machine events into a generated stream.
// Workloads are drawn either from the paper's 18-application catalog or from
// the synthetic archetypes of src/workloads.
#ifndef NUMAPLACE_SRC_WORKLOADS_TRACE_H_
#define NUMAPLACE_SRC_WORKLOADS_TRACE_H_

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "src/util/rng.h"
#include "src/workloads/profile.h"

namespace numaplace {

// A container entering the system, with everything a scheduler needs to
// admit it.
struct ContainerArrival {
  int container_id = 0;
  WorkloadProfile workload;
  int vcpus = 0;
  double goal_fraction = 1.0;
  bool latency_sensitive = false;
};

// A container leaving the system (it carries only the id — the scheduler
// owns the rest of its state).
struct ContainerDeparture {
  int container_id = 0;
};

// Granularity of a machine-lifecycle event. Production failures are
// correlated: a rack's power feed or a zone's switch takes out every machine
// behind it at once. A domain-scoped event ("rack 3 fails at t") addresses
// one failure domain of the fleet's FailureDomainTopology
// (src/cluster/domains.h) and is expanded there into canonical per-machine
// events — schedulers only ever replay kMachine-scoped events, so the
// domain path cannot drift from a hand-written per-machine list.
enum class DomainScope { kMachine = 0, kRack = 1, kZone = 2 };

// Lower-case scope name ("machine", "rack", "zone").
const char* ToString(DomainScope scope);

// The machine dies: its containers lose their state and must be re-dispatched
// from scratch elsewhere. Under a non-kMachine scope, `machine_id` is the
// rack/zone index and the event stands for the simultaneous failure of every
// member machine (see DomainScope).
struct MachineFail {
  int machine_id = 0;
  DomainScope scope = DomainScope::kMachine;
};

// The machine leaves service gracefully (maintenance): its containers are
// alive and migrate off under the §7 migration + network-copy cost model.
// Scope as in MachineFail.
struct MachineDrain {
  int machine_id = 0;
  DomainScope scope = DomainScope::kMachine;
};

// A failed or drained machine returns to service, empty. Scope as in
// MachineFail.
struct MachineRejoin {
  int machine_id = 0;
  DomainScope scope = DomainScope::kMachine;
};

// Kinds in canonical same-time processing order (== the variant alternative
// order): machine availability settles before the container traffic of that
// instant — a machine failing at t must not receive t's arrivals, and one
// rejoining at t may — and arrivals precede departures, the tie-break the
// generators have always guaranteed.
enum class FleetEventKind {
  kMachineFail = 0,
  kMachineDrain = 1,
  kMachineRejoin = 2,
  kContainerArrival = 3,
  kContainerDeparture = 4,
};

const char* ToString(FleetEventKind kind);

struct FleetEvent {
  using Payload = std::variant<MachineFail, MachineDrain, MachineRejoin,
                               ContainerArrival, ContainerDeparture>;

  double time_seconds = 0.0;
  Payload payload;

  FleetEventKind kind() const { return static_cast<FleetEventKind>(payload.index()); }
  bool IsMachineEvent() const { return payload.index() <= 2; }
  bool IsContainerEvent() const { return !IsMachineEvent(); }

  // nullptr when the event is of a different kind.
  const ContainerArrival* arrival() const {
    return std::get_if<ContainerArrival>(&payload);
  }
  const ContainerDeparture* departure() const {
    return std::get_if<ContainerDeparture>(&payload);
  }

  // CHECK-fails when the event is not of the matching family. For a
  // domain-scoped machine event, machine_id() is the rack/zone index.
  int machine_id() const;
  int container_id() const;

  // Scope of a machine event (kMachine unless the event is domain-scoped);
  // CHECK-fails on container events.
  DomainScope domain_scope() const;

  static FleetEvent Arrival(double time_seconds, ContainerArrival arrival);
  static FleetEvent Departure(double time_seconds, int container_id);
  static FleetEvent Fail(double time_seconds, int machine_id);
  static FleetEvent Drain(double time_seconds, int machine_id);
  static FleetEvent Rejoin(double time_seconds, int machine_id);
  // Domain-scoped fail/drain/rejoin of one rack or zone (`index` is the
  // domain index). Expand through the fleet's FailureDomainTopology
  // (src/cluster/domains.h) before replay.
  static FleetEvent FailDomain(double time_seconds, DomainScope scope, int index);
  static FleetEvent DrainDomain(double time_seconds, DomainScope scope, int index);
  static FleetEvent RejoinDomain(double time_seconds, DomainScope scope, int index);
};

// Canonical event order: time, then FleetEventKind. Returns false for
// events equal under both, so std::stable_sort preserves insertion order
// there (cross-stream merge stability).
bool CanonicalBefore(const FleetEvent& a, const FleetEvent& b);

// A time-sorted sequence of FleetEvents. Construction and Append() maintain
// canonical order, so consumers can always replay front-to-back.
class EventStream {
 public:
  EventStream() = default;
  // Takes any event order and canonical-sorts it (stable).
  explicit EventStream(std::vector<FleetEvent> events);

  // Inserts in canonical order, after existing events with the same
  // (time, kind).
  void Append(FleetEvent event);

  // Bulk Append: one stable sort of the batch plus one linear merge, so
  // injecting k events into a stream of n costs O(n + k log k) instead of
  // the O(n * k) per-event insertion shifts of k Append calls. Order is
  // exactly k sequential Appends: at equal (time, kind), existing events
  // come first and the batch keeps its own relative order.
  void AppendAll(std::vector<FleetEvent> events);

  const std::vector<FleetEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const FleetEvent& operator[](size_t i) const { return events_[i]; }
  std::vector<FleetEvent>::const_iterator begin() const { return events_.begin(); }
  std::vector<FleetEvent>::const_iterator end() const { return events_.end(); }
  // Time of the last event (0 when empty) — the stream's horizon.
  double EndTime() const { return events_.empty() ? 0.0 : events_.back().time_seconds; }

 private:
  std::vector<FleetEvent> events_;
};

struct TraceConfig {
  int num_containers = 32;
  // Poisson arrival process: mean seconds between arrivals.
  double mean_interarrival_seconds = 120.0;
  // Exponential lifetime per container.
  double mean_lifetime_seconds = 600.0;
  int vcpus = 16;
  double goal_fraction = 0.9;
  // Probability a container is latency-sensitive (throttled migrator, §7).
  double latency_sensitive_fraction = 0.25;
  // Draw from the paper's application catalog instead of synthetic
  // archetype samples.
  bool use_catalog = true;
  // Container ids start here (lets several traces share a registry).
  int first_container_id = 1;
};

// Generates the container event stream. Each arrival has exactly one
// matching departure. Workload names are uniquified with the container id so
// duplicate-name checks downstream hold.
EventStream GeneratePoissonTrace(const TraceConfig& config, Rng& rng);

// Merges several streams into one canonical-order stream, stable across
// inputs (at equal time and kind, stream i's events precede stream j's for
// i < j). Container ids must be disjoint across the inputs — the merged
// trace addresses one fleet-wide id namespace — and a collision CHECK-fails.
EventStream MergeTraces(const std::vector<EventStream>& traces);

// Fleet workload: `num_streams` independent Poisson streams (one per tenant
// population feeding the cluster), each a copy of `base` with a disjoint
// container-id namespace carved out via TraceConfig::first_container_id
// (stream s starts at base.first_container_id + s * base.num_containers),
// merged into one trace of num_streams * base.num_containers containers.
// Stream randomness forks deterministically from `rng`, so the result is a
// pure function of (base, num_streams, rng seed).
EventStream GenerateFleetTrace(const TraceConfig& base, int num_streams, Rng& rng);

// Flash-crowd workload: a diurnal baseline with Poisson-burst arrival
// spikes, the overload shape the admission layer (src/cluster/admission.h)
// is built to survive. Each stream lays down `base.num_containers` baseline
// arrivals from a sinusoidally rate-modulated Poisson process (Lewis–
// Shedler thinning at peak rate (1 + diurnal_amplitude) / mean
// interarrival), then superimposes `bursts` flash crowds — tightly spaced
// arrival spikes at deterministic epochs across the baseline span. Every
// container's service group carries its SLO tier as a `<tier>:` name prefix
// drawn from the mix fractions: the baseline skews standard, the bursts
// skew best-effort (flash crowds are the traffic tiers exist to shed).
struct FlashCrowdConfig {
  // Baseline traffic shape (containers, mean interarrival, lifetimes,
  // vcpus, goal, id namespace), exactly as GeneratePoissonTrace reads it.
  TraceConfig base;
  // Relative swing of the diurnal arrival rate: rate(t) = base_rate *
  // (1 + amplitude * sin(2*pi*t / period)). In [0, 1).
  double diurnal_amplitude = 0.5;
  double diurnal_period_seconds = 43200.0;
  // Flash crowds per stream, their size, and their (much tighter) arrival
  // spacing and (shorter) lifetimes.
  int bursts = 2;
  int burst_containers = 16;
  double burst_mean_interarrival_seconds = 5.0;
  double burst_mean_lifetime_seconds = 300.0;
  // Baseline tier mix (standard gets the remainder).
  double premium_fraction = 0.3;
  double best_effort_fraction = 0.2;
  // Burst tier mix — best-effort heavy by default.
  double burst_premium_fraction = 0.1;
  double burst_best_effort_fraction = 0.7;
};

// Generates the flash-crowd event stream over `num_streams` independent
// streams, Fork-per-stream like GenerateFleetTrace: stream s forks
// rng.Fork(s) and owns the id block of
// base.num_containers + bursts * burst_containers containers starting at
// base.first_container_id + s * that block size. Deterministic function of
// (config, num_streams, rng seed).
EventStream GenerateFlashCrowdTrace(const FlashCrowdConfig& config, int num_streams,
                                    Rng& rng);

// Folds scripted machine lifecycle events into a generated stream — the
// injector behind the CLI's --fail/--drain/--rejoin flags and the failure
// scenarios of bench_fleet. Every injected event must be a machine event
// with a non-negative machine id and time; container events CHECK-fail, and
// so do domain-scoped (rack/zone) events — those carry no machine list and
// must go through the expanding overload in src/cluster/domains.h, which
// turns them into the canonical per-machine events this function takes.
EventStream InjectMachineEvents(EventStream stream,
                                const std::vector<FleetEvent>& machine_events);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_WORKLOADS_TRACE_H_
