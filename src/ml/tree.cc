#include "src/ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <numeric>

#include "src/util/check.h"

namespace numaplace {

namespace {

// Mean target vector of a row range.
std::vector<double> MeanTargets(const Dataset& data, std::span<const size_t> rows) {
  std::vector<double> mean(data.NumTargets(), 0.0);
  for (size_t row : rows) {
    for (size_t k = 0; k < mean.size(); ++k) {
      mean[k] += data.targets[row][k];
    }
  }
  for (double& v : mean) {
    v /= static_cast<double>(rows.size());
  }
  return mean;
}

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double sse = std::numeric_limits<double>::infinity();  // left + right SSE
  size_t left_count = 0;
};

}  // namespace

void RegressionTree::Fit(const Dataset& data, std::span<const size_t> rows,
                         const TreeParams& params, Rng& rng) {
  data.Validate();
  NP_CHECK(!rows.empty());
  NP_CHECK(data.NumTargets() > 0);
  NP_CHECK(params.max_depth >= 1);
  NP_CHECK(params.min_samples_leaf >= 1);
  NP_CHECK(params.min_samples_split >= 2);
  nodes_.clear();
  num_features_ = data.NumFeatures();
  std::vector<size_t> work(rows.begin(), rows.end());
  BuildNode(data, work, 0, work.size(), /*depth=*/0, params, rng);
}

void RegressionTree::Fit(const Dataset& data, const TreeParams& params, Rng& rng) {
  std::vector<size_t> rows(data.NumSamples());
  std::iota(rows.begin(), rows.end(), 0);
  Fit(data, rows, params, rng);
}

int RegressionTree::BuildNode(const Dataset& data, std::vector<size_t>& rows, size_t begin,
                              size_t end, int depth, const TreeParams& params, Rng& rng) {
  const size_t n = end - begin;
  const size_t m = data.NumTargets();
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  auto make_leaf = [&]() {
    nodes_[static_cast<size_t>(node_index)].value =
        MeanTargets(data, std::span<const size_t>(rows.data() + begin, n));
    return node_index;
  };

  if (n < static_cast<size_t>(params.min_samples_split) || depth >= params.max_depth) {
    return make_leaf();
  }

  // Candidate features: all, or a uniform random subset of the given size.
  std::vector<int> candidates(num_features_);
  std::iota(candidates.begin(), candidates.end(), 0);
  if (params.features_per_split > 0 &&
      params.features_per_split < static_cast<int>(num_features_)) {
    rng.Shuffle(candidates);
    candidates.resize(static_cast<size_t>(params.features_per_split));
  }

  // Scan each candidate feature for the threshold minimizing total SSE.
  SplitCandidate best;
  std::vector<std::pair<double, size_t>> order(n);  // (feature value, row)
  std::vector<double> prefix_sum(m);
  std::vector<double> total_sum(m, 0.0);
  std::vector<double> prefix_sq(m);
  std::vector<double> total_sq(m, 0.0);

  for (size_t i = 0; i < n; ++i) {
    const size_t row = rows[begin + i];
    for (size_t k = 0; k < m; ++k) {
      const double y = data.targets[row][k];
      total_sum[k] += y;
      total_sq[k] += y * y;
    }
  }

  for (int feature : candidates) {
    for (size_t i = 0; i < n; ++i) {
      const size_t row = rows[begin + i];
      order[i] = {data.features[row][static_cast<size_t>(feature)], row};
    }
    std::sort(order.begin(), order.end());
    if (order.front().first == order.back().first) {
      continue;  // constant feature in this node
    }
    std::fill(prefix_sum.begin(), prefix_sum.end(), 0.0);
    std::fill(prefix_sq.begin(), prefix_sq.end(), 0.0);
    for (size_t i = 0; i + 1 < n; ++i) {
      const size_t row = order[i].second;
      for (size_t k = 0; k < m; ++k) {
        const double y = data.targets[row][k];
        prefix_sum[k] += y;
        prefix_sq[k] += y * y;
      }
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(params.min_samples_leaf) ||
          right_n < static_cast<size_t>(params.min_samples_leaf)) {
        continue;
      }
      // No split between identical feature values.
      if (order[i].first == order[i + 1].first) {
        continue;
      }
      double sse = 0.0;
      for (size_t k = 0; k < m; ++k) {
        const double ls = prefix_sum[k];
        const double rs = total_sum[k] - ls;
        const double lq = prefix_sq[k];
        const double rq = total_sq[k] - lq;
        sse += lq - ls * ls / static_cast<double>(left_n);
        sse += rq - rs * rs / static_cast<double>(right_n);
      }
      if (sse < best.sse) {
        best.sse = sse;
        best.feature = feature;
        best.threshold = 0.5 * (order[i].first + order[i + 1].first);
        best.left_count = left_n;
      }
    }
  }

  if (best.feature < 0) {
    return make_leaf();
  }

  // Partition rows[begin, end) by the chosen split. std::stable_partition
  // keeps the layout deterministic.
  const auto mid_it = std::stable_partition(
      rows.begin() + static_cast<ptrdiff_t>(begin), rows.begin() + static_cast<ptrdiff_t>(end),
      [&](size_t row) {
        return data.features[row][static_cast<size_t>(best.feature)] <= best.threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());
  NP_CHECK(mid > begin && mid < end);

  const int left = BuildNode(data, rows, begin, mid, depth + 1, params, rng);
  const int right = BuildNode(data, rows, mid, end, depth + 1, params, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

std::vector<double> RegressionTree::Predict(std::span<const double> features) const {
  NP_CHECK_MSG(IsFitted(), "Predict called before Fit");
  NP_CHECK(features.size() == num_features_);
  int index = 0;
  while (nodes_[static_cast<size_t>(index)].left >= 0) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    index = features[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                          : node.right;
  }
  return nodes_[static_cast<size_t>(index)].value;
}

void RegressionTree::SerializeTo(std::ostream& os) const {
  NP_CHECK_MSG(IsFitted(), "cannot serialize an unfitted tree");
  os << "tree " << nodes_.size() << " " << num_features_ << "\n";
  // Full round-trip precision on thresholds and leaf values.
  const auto previous_precision = os.precision(17);
  for (const Node& node : nodes_) {
    os << node.feature << " " << node.threshold << " " << node.left << " " << node.right
       << " " << node.value.size();
    for (double v : node.value) {
      os << " " << v;
    }
    os << "\n";
  }
  os.precision(previous_precision);
}

void RegressionTree::DeserializeFrom(std::istream& is) {
  std::string tag;
  size_t num_nodes = 0;
  is >> tag >> num_nodes >> num_features_;
  NP_CHECK_MSG(is.good() && tag == "tree", "malformed tree header");
  NP_CHECK(num_nodes >= 1);
  nodes_.assign(num_nodes, Node{});
  for (Node& node : nodes_) {
    size_t value_count = 0;
    is >> node.feature >> node.threshold >> node.left >> node.right >> value_count;
    NP_CHECK_MSG(is.good(), "truncated tree node");
    node.value.resize(value_count);
    for (double& v : node.value) {
      is >> v;
    }
    NP_CHECK_MSG(!is.fail(), "truncated tree leaf values");
    // Structural validation: children in range, leaves have values.
    NP_CHECK(node.left == -1 || (node.left > 0 && node.left < static_cast<int>(num_nodes)));
    NP_CHECK(node.right == -1 ||
             (node.right > 0 && node.right < static_cast<int>(num_nodes)));
    NP_CHECK((node.left == -1) == (node.right == -1));
    if (node.left == -1) {
      NP_CHECK_MSG(!node.value.empty(), "leaf without values");
    } else {
      NP_CHECK(node.feature >= 0 && node.feature < static_cast<int>(num_features_));
    }
  }
}

int RegressionTree::Depth() const {
  if (nodes_.empty()) {
    return 0;
  }
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<int, int>> stack = {{0, 1}};
  int depth = 0;
  while (!stack.empty()) {
    const auto [index, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.left >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

}  // namespace numaplace
