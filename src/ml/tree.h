// Multi-output CART regression tree: the base learner of the Random Forest
// in §5. Splits minimize the summed per-output variance (equivalently the
// trace of the within-node target covariance), which generalizes the usual
// single-output variance-reduction criterion to performance vectors.
#ifndef NUMAPLACE_SRC_ML_TREE_H_
#define NUMAPLACE_SRC_ML_TREE_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "src/ml/dataset.h"
#include "src/util/rng.h"

namespace numaplace {

struct TreeParams {
  int max_depth = 16;
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  // Number of candidate features examined per split; 0 means all features
  // (plain CART). Forests set this to ~d/3 for decorrelation.
  int features_per_split = 0;
};

class RegressionTree {
 public:
  // Fits on the rows listed in `rows` (bootstrap support). The dataset must
  // outlive the call only; the tree copies what it needs.
  void Fit(const Dataset& data, std::span<const size_t> rows, const TreeParams& params,
           Rng& rng);

  // Convenience overload over all rows.
  void Fit(const Dataset& data, const TreeParams& params, Rng& rng);

  // Predicts the target vector for one feature row.
  std::vector<double> Predict(std::span<const double> features) const;

  bool IsFitted() const { return !nodes_.empty(); }
  size_t NumNodes() const { return nodes_.size(); }
  int Depth() const;

  // Plain-text (de)serialization, for shipping trained models from an
  // offline training run into a scheduler. The format is line-oriented and
  // versioned by the caller (RandomForest / model-level headers).
  void SerializeTo(std::ostream& os) const;
  void DeserializeFrom(std::istream& is);

 private:
  struct Node {
    // Internal nodes: feature/threshold valid, children set.
    // Leaves: left == -1, value holds the mean target vector.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> value;
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& rows, size_t begin, size_t end,
                int depth, const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_ML_TREE_H_
