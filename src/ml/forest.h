// Multi-output Random Forest regressor (§5): bagged CART trees with random
// feature subsets per split. "RF is a machine learning technique known for
// its ability to learn non-linear functions with very little or no tuning" —
// the defaults here are the standard regression-forest settings.
#ifndef NUMAPLACE_SRC_ML_FOREST_H_
#define NUMAPLACE_SRC_ML_FOREST_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "src/ml/dataset.h"
#include "src/ml/tree.h"

namespace numaplace {

struct ForestParams {
  int num_trees = 100;
  TreeParams tree;
  // Fraction of features tried per split; the per-tree features_per_split is
  // derived as max(1, round(fraction * d)) unless tree.features_per_split is
  // already set explicitly.
  double feature_fraction = 1.0 / 3.0;
  uint64_t seed = 1;
};

class RandomForest {
 public:
  void Fit(const Dataset& data, const ForestParams& params);

  std::vector<double> Predict(std::span<const double> features) const;

  // Out-of-bag mean absolute error per target (averaged over targets when
  // reduce_targets is true): an internal generalization estimate that needs
  // no held-out data.
  double OutOfBagMae(const Dataset& data) const;

  bool IsFitted() const { return !trees_.empty(); }
  size_t NumTrees() const { return trees_.size(); }

  // Plain-text (de)serialization. Bootstrap bookkeeping is not persisted, so
  // OutOfBagMae is unavailable on a loaded forest; Predict works normally.
  void SerializeTo(std::ostream& os) const;
  void DeserializeFrom(std::istream& is);

 private:
  std::vector<RegressionTree> trees_;
  std::vector<std::vector<size_t>> bootstrap_rows_;  // per tree, for OOB
  size_t num_targets_ = 0;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_ML_FOREST_H_
