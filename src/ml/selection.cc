#include "src/ml/selection.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace numaplace {

SfsResult SequentialForwardSelection(size_t num_features, size_t max_features,
                                     const FeatureSubsetScorer& scorer,
                                     double min_improvement) {
  NP_CHECK(num_features >= 1);
  NP_CHECK(max_features >= 1);
  SfsResult result;
  std::vector<bool> used(num_features, false);
  double current_error = std::numeric_limits<double>::infinity();

  while (result.selected.size() < std::min(max_features, num_features)) {
    size_t best_feature = num_features;
    double best_error = std::numeric_limits<double>::infinity();
    for (size_t f = 0; f < num_features; ++f) {
      if (used[f]) {
        continue;
      }
      std::vector<size_t> candidate = result.selected;
      candidate.push_back(f);
      const double error = scorer(candidate);
      if (error < best_error) {
        best_error = error;
        best_feature = f;
      }
    }
    NP_CHECK(best_feature < num_features);
    if (!result.selected.empty() && best_error > current_error - min_improvement) {
      break;  // no feature improves enough
    }
    used[best_feature] = true;
    result.selected.push_back(best_feature);
    result.error_trace.push_back(best_error);
    current_error = best_error;
  }
  return result;
}

std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t folds, Rng& rng) {
  NP_CHECK(folds >= 2);
  NP_CHECK_MSG(folds <= n, "more folds than samples");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(order[i]);
  }
  return out;
}

}  // namespace numaplace
