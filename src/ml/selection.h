// Sequential Forward Selection (§5) and cross-validation index helpers.
//
// The paper's HPE-based model variant starts from a plausible candidate set
// of hardware events and greedily adds the feature that most improves
// cross-validated accuracy — the classic SFS wrapper method. The scorer is a
// callback so that the same driver works for any model.
#ifndef NUMAPLACE_SRC_ML_SELECTION_H_
#define NUMAPLACE_SRC_ML_SELECTION_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/util/rng.h"

namespace numaplace {

// Returns the error (lower is better) of a model trained on the given
// feature columns.
using FeatureSubsetScorer = std::function<double(const std::vector<size_t>& columns)>;

struct SfsResult {
  std::vector<size_t> selected;             // in selection order
  std::vector<double> error_trace;          // error after each addition
};

// Greedy forward selection: starting empty, repeatedly add the feature whose
// addition minimizes the scorer, until `max_features` are selected or no
// addition improves the error by more than `min_improvement`.
SfsResult SequentialForwardSelection(size_t num_features, size_t max_features,
                                     const FeatureSubsetScorer& scorer,
                                     double min_improvement = 0.0);

// Shuffled k-fold split: returns per-fold test-row index lists covering
// [0, n) exactly once.
std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t folds, Rng& rng);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_ML_SELECTION_H_
