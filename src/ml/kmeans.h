// k-means clustering with k-means++ seeding, plus the mean Silhouette
// coefficient used to pick k automatically (§5: "we select the k that
// maximizes the average Silhouette coefficient over all data points, which
// is the standard practice in the field"). Used to reproduce Fig. 3's
// workload categories.
#ifndef NUMAPLACE_SRC_ML_KMEANS_H_
#define NUMAPLACE_SRC_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace numaplace {

struct KMeansResult {
  int k = 0;
  std::vector<int> assignments;                  // cluster id per point
  std::vector<std::vector<double>> centroids;    // k x d
  double inertia = 0.0;                          // sum of squared distances
};

// Lloyd's algorithm with k-means++ initialization; runs `restarts`
// independent initializations and keeps the lowest-inertia result.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k, Rng& rng,
                    int max_iters = 100, int restarts = 4);

// Mean silhouette coefficient over all points; requires k >= 2 and at least
// one point per cluster. Points alone in their cluster contribute 0 (the
// scikit-learn convention).
double MeanSilhouette(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& assignments, int k);

struct SilhouetteSelection {
  int best_k = 0;
  KMeansResult best;
  std::vector<std::pair<int, double>> scores;  // (k, mean silhouette)
};

// Runs k-means for every k in [k_min, k_max] and returns the clustering with
// the maximum mean silhouette.
SilhouetteSelection ChooseKBySilhouette(const std::vector<std::vector<double>>& points,
                                        int k_min, int k_max, Rng& rng);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_ML_KMEANS_H_
