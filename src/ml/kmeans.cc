#include "src/ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace numaplace {

namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<std::vector<double>>& points, int k, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(points[rng.NextBelow(points.size())]);
  std::vector<double> d2(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, Dist2(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; fall back to uniform.
      centroids.push_back(points[rng.NextBelow(points.size())]);
      continue;
    }
    double pick = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult LloydOnce(const std::vector<std::vector<double>>& points, int k, Rng& rng,
                       int max_iters) {
  const size_t n = points.size();
  const size_t d = points[0].size();
  KMeansResult result;
  result.k = k;
  result.centroids = KMeansPlusPlusInit(points, k, rng);
  result.assignments.assign(n, -1);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double dist = Dist2(points[i], result.centroids[static_cast<size_t>(c)]);
        if (dist < best_d) {
          best_d = dist;
          best_c = c;
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      break;
    }
    // Recompute centroids; empty clusters are reseeded from the farthest
    // point to keep exactly k clusters.
    std::vector<std::vector<double>> sums(static_cast<size_t>(k),
                                          std::vector<double>(d, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(result.assignments[i]);
      for (size_t j = 0; j < d; ++j) {
        sums[c][j] += points[i][j];
      }
      counts[c]++;
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        size_t farthest = 0;
        double farthest_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double dist =
              Dist2(points[i],
                    result.centroids[static_cast<size_t>(result.assignments[i])]);
          if (dist > farthest_d) {
            farthest_d = dist;
            farthest = i;
          }
        }
        result.centroids[static_cast<size_t>(c)] = points[farthest];
        result.assignments[farthest] = c;
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        result.centroids[static_cast<size_t>(c)][j] =
            sums[static_cast<size_t>(c)][j] /
            static_cast<double>(counts[static_cast<size_t>(c)]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        Dist2(points[i], result.centroids[static_cast<size_t>(result.assignments[i])]);
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k, Rng& rng,
                    int max_iters, int restarts) {
  NP_CHECK(!points.empty());
  NP_CHECK(k >= 1);
  NP_CHECK_MSG(static_cast<size_t>(k) <= points.size(),
               "k=" << k << " exceeds point count " << points.size());
  NP_CHECK(restarts >= 1);
  for (const auto& p : points) {
    NP_CHECK_MSG(p.size() == points[0].size(), "ragged point set");
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < restarts; ++r) {
    Rng restart_rng = rng.Fork(static_cast<uint64_t>(r) + 1000);
    KMeansResult candidate = LloydOnce(points, k, restart_rng, max_iters);
    if (candidate.inertia < best.inertia) {
      best = std::move(candidate);
    }
  }
  return best;
}

double MeanSilhouette(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& assignments, int k) {
  NP_CHECK(points.size() == assignments.size());
  NP_CHECK(k >= 2);
  const size_t n = points.size();
  std::vector<int> cluster_size(static_cast<size_t>(k), 0);
  for (int a : assignments) {
    NP_CHECK(a >= 0 && a < k);
    cluster_size[static_cast<size_t>(a)]++;
  }

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int own = assignments[i];
    if (cluster_size[static_cast<size_t>(own)] <= 1) {
      continue;  // silhouette of a singleton is defined as 0
    }
    // Mean distance to own cluster (a) and the minimum mean distance to any
    // other cluster (b).
    std::vector<double> sum_d(static_cast<size_t>(k), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      sum_d[static_cast<size_t>(assignments[j])] +=
          std::sqrt(Dist2(points[i], points[j]));
    }
    const double a =
        sum_d[static_cast<size_t>(own)] /
        static_cast<double>(cluster_size[static_cast<size_t>(own)] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == own || cluster_size[static_cast<size_t>(c)] == 0) {
        continue;
      }
      b = std::min(b, sum_d[static_cast<size_t>(c)] /
                          static_cast<double>(cluster_size[static_cast<size_t>(c)]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

SilhouetteSelection ChooseKBySilhouette(const std::vector<std::vector<double>>& points,
                                        int k_min, int k_max, Rng& rng) {
  NP_CHECK(k_min >= 2);
  NP_CHECK(k_max >= k_min);
  NP_CHECK(static_cast<size_t>(k_max) <= points.size());
  SilhouetteSelection selection;
  double best_score = -2.0;
  for (int k = k_min; k <= k_max; ++k) {
    Rng k_rng = rng.Fork(static_cast<uint64_t>(k));
    KMeansResult result = KMeans(points, k, k_rng);
    const double score = MeanSilhouette(points, result.assignments, k);
    selection.scores.emplace_back(k, score);
    if (score > best_score) {
      best_score = score;
      selection.best_k = k;
      selection.best = std::move(result);
    }
  }
  return selection;
}

}  // namespace numaplace
