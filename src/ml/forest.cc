#include "src/ml/forest.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace numaplace {

void RandomForest::Fit(const Dataset& data, const ForestParams& params) {
  data.Validate();
  NP_CHECK(params.num_trees >= 1);
  NP_CHECK(data.NumSamples() >= 1);
  trees_.clear();
  bootstrap_rows_.clear();
  num_targets_ = data.NumTargets();

  TreeParams tree_params = params.tree;
  if (tree_params.features_per_split == 0 && params.feature_fraction < 1.0) {
    tree_params.features_per_split = std::max(
        1, static_cast<int>(std::lround(params.feature_fraction *
                                        static_cast<double>(data.NumFeatures()))));
  }

  Rng rng(params.seed);
  const size_t n = data.NumSamples();
  trees_.resize(static_cast<size_t>(params.num_trees));
  bootstrap_rows_.resize(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    Rng tree_rng = rng.Fork(t);
    std::vector<size_t>& rows = bootstrap_rows_[t];
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<size_t>(tree_rng.NextBelow(n));
    }
    trees_[t].Fit(data, rows, tree_params, tree_rng);
  }
}

std::vector<double> RandomForest::Predict(std::span<const double> features) const {
  NP_CHECK_MSG(IsFitted(), "Predict called before Fit");
  std::vector<double> acc(num_targets_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<double> p = tree.Predict(features);
    for (size_t k = 0; k < acc.size(); ++k) {
      acc[k] += p[k];
    }
  }
  for (double& v : acc) {
    v /= static_cast<double>(trees_.size());
  }
  return acc;
}

void RandomForest::SerializeTo(std::ostream& os) const {
  NP_CHECK_MSG(IsFitted(), "cannot serialize an unfitted forest");
  os << "forest " << trees_.size() << " " << num_targets_ << "\n";
  for (const RegressionTree& tree : trees_) {
    tree.SerializeTo(os);
  }
}

void RandomForest::DeserializeFrom(std::istream& is) {
  std::string tag;
  size_t num_trees = 0;
  is >> tag >> num_trees >> num_targets_;
  NP_CHECK_MSG(is.good() && tag == "forest", "malformed forest header");
  NP_CHECK(num_trees >= 1);
  trees_.assign(num_trees, RegressionTree{});
  bootstrap_rows_.clear();  // not persisted; OOB unavailable after a load
  for (RegressionTree& tree : trees_) {
    tree.DeserializeFrom(is);
  }
}

double RandomForest::OutOfBagMae(const Dataset& data) const {
  NP_CHECK_MSG(IsFitted(), "OutOfBagMae called before Fit");
  NP_CHECK_MSG(!bootstrap_rows_.empty(),
               "out-of-bag error unavailable on a deserialized forest");
  data.Validate();
  double total_err = 0.0;
  size_t total_terms = 0;
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    std::vector<double> acc(num_targets_, 0.0);
    int voters = 0;
    for (size_t t = 0; t < trees_.size(); ++t) {
      // Tree t votes on row i only if i was not in its bootstrap sample.
      if (std::find(bootstrap_rows_[t].begin(), bootstrap_rows_[t].end(), i) !=
          bootstrap_rows_[t].end()) {
        continue;
      }
      const std::vector<double> p = trees_[t].Predict(data.features[i]);
      for (size_t k = 0; k < acc.size(); ++k) {
        acc[k] += p[k];
      }
      ++voters;
    }
    if (voters == 0) {
      continue;  // row in every bootstrap sample; rare for >30 trees
    }
    for (size_t k = 0; k < acc.size(); ++k) {
      total_err += std::abs(acc[k] / voters - data.targets[i][k]);
      ++total_terms;
    }
  }
  NP_CHECK_MSG(total_terms > 0, "no out-of-bag rows; too few trees");
  return total_err / static_cast<double>(total_terms);
}

}  // namespace numaplace
