#include "src/ml/dataset.h"

#include "src/util/check.h"

namespace numaplace {

void Dataset::Validate() const {
  NP_CHECK_MSG(features.size() == targets.size(),
               "feature rows " << features.size() << " != target rows " << targets.size());
  const size_t d = NumFeatures();
  const size_t m = NumTargets();
  for (size_t i = 0; i < features.size(); ++i) {
    NP_CHECK_MSG(features[i].size() == d, "ragged feature row " << i);
    NP_CHECK_MSG(targets[i].size() == m, "ragged target row " << i);
  }
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out;
  out.features.reserve(rows.size());
  out.targets.reserve(rows.size());
  for (size_t row : rows) {
    NP_CHECK(row < features.size());
    out.features.push_back(features[row]);
    out.targets.push_back(targets[row]);
  }
  return out;
}

Dataset Dataset::WithFeatureSubset(const std::vector<size_t>& columns) const {
  Dataset out;
  out.targets = targets;
  out.features.reserve(features.size());
  for (const auto& row : features) {
    std::vector<double> projected;
    projected.reserve(columns.size());
    for (size_t col : columns) {
      NP_CHECK(col < row.size());
      projected.push_back(row[col]);
    }
    out.features.push_back(std::move(projected));
  }
  return out;
}

void Dataset::Append(const Dataset& other) {
  NP_CHECK(features.empty() || other.features.empty() ||
           (NumFeatures() == other.NumFeatures() && NumTargets() == other.NumTargets()));
  features.insert(features.end(), other.features.begin(), other.features.end());
  targets.insert(targets.end(), other.targets.begin(), other.targets.end());
}

}  // namespace numaplace
