// Tabular dataset shared by the ML components: n rows of d features and m
// regression targets (the model is multi-output: one target per important
// placement).
#ifndef NUMAPLACE_SRC_ML_DATASET_H_
#define NUMAPLACE_SRC_ML_DATASET_H_

#include <cstddef>
#include <vector>

namespace numaplace {

struct Dataset {
  // features[i][j]: feature j of sample i. All rows must have equal width.
  std::vector<std::vector<double>> features;
  // targets[i][k]: target k of sample i. All rows must have equal width.
  std::vector<std::vector<double>> targets;

  size_t NumSamples() const { return features.size(); }
  size_t NumFeatures() const { return features.empty() ? 0 : features[0].size(); }
  size_t NumTargets() const { return targets.empty() ? 0 : targets[0].size(); }

  // Throws std::logic_error when shapes are inconsistent.
  void Validate() const;

  // Row subset (copies).
  Dataset Subset(const std::vector<size_t>& rows) const;

  // Column subset of the features (targets unchanged).
  Dataset WithFeatureSubset(const std::vector<size_t>& columns) const;

  void Append(const Dataset& other);
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_ML_DATASET_H_
