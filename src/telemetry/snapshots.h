// Periodic time-series snapshots of a fleet replay, written as JSONL (one
// JSON object per line) at a fixed sim-time interval.
//
// FleetSnapshotRecorder implements the ReplaySampler hook of
// FleetScheduler::ReplayWithEvaluation: the replay calls Sample() at every
// multiple of the interval with the attainment integrals interpolated to
// that instant, and the recorder reads the rest of the snapshot — queue
// depth, running containers, up machines, busy/free threads, per-cell and
// per-rack occupancy — straight off the fleet it watches. Everything
// recorded is sim-time and fleet state, so the JSONL artifact is
// byte-identical across runs of the same trace + flags. The line schema is
// documented in docs/OBSERVABILITY.md.
#ifndef NUMAPLACE_SRC_TELEMETRY_SNAPSHOTS_H_
#define NUMAPLACE_SRC_TELEMETRY_SNAPSHOTS_H_

#include <ostream>

#include "src/cluster/fleet.h"
#include "src/scheduler/events.h"

namespace numaplace {

class FleetSnapshotRecorder final : public ReplaySampler {
 public:
  /// Snapshots `fleet` every `interval_seconds` (> 0) of stream time into
  /// `os`, one JSON object per line. Both must outlive the recorder.
  FleetSnapshotRecorder(const FleetScheduler& fleet, double interval_seconds,
                        std::ostream& os);

  double IntervalSeconds() const override { return interval_seconds_; }
  void Sample(double t, double attainment_so_far, double at_goal_so_far) override;

  /// Lines written so far.
  int samples() const { return samples_; }

 private:
  const FleetScheduler& fleet_;
  double interval_seconds_;
  std::ostream& os_;
  int samples_ = 0;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TELEMETRY_SNAPSHOTS_H_
