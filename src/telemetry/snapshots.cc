#include "src/telemetry/snapshots.h"

#include <vector>

#include "src/util/check.h"
#include "src/util/json.h"

namespace numaplace {

FleetSnapshotRecorder::FleetSnapshotRecorder(const FleetScheduler& fleet,
                                             double interval_seconds,
                                             std::ostream& os)
    : fleet_(fleet), interval_seconds_(interval_seconds), os_(os) {
  NP_CHECK_MSG(interval_seconds_ > 0.0,
               "snapshot interval must be positive, got " << interval_seconds_);
}

void FleetSnapshotRecorder::Sample(double t, double attainment_so_far,
                                   double at_goal_so_far) {
  // Per-machine live state, read once and aggregated per cell and per rack.
  const int num_machines = fleet_.NumMachines();
  int up_machines = 0;
  int running = 0;
  int machine_queued = 0;
  int busy_threads = 0;
  int free_threads = 0;
  std::vector<int> machine_up(num_machines, 0);
  std::vector<int> machine_busy(num_machines, 0);
  std::vector<int> machine_free(num_machines, 0);
  for (int m = 0; m < num_machines; ++m) {
    const MachineScheduler& scheduler = fleet_.machine(m);
    const bool up = fleet_.availability(m) == MachineAvailability::kUp;
    machine_up[m] = up ? 1 : 0;
    machine_busy[m] = scheduler.occupancy().BusyThreadCount();
    machine_free[m] = scheduler.occupancy().FreeThreadCount();
    up_machines += machine_up[m];
    running += static_cast<int>(scheduler.RunningIds().size());
    machine_queued += static_cast<int>(scheduler.PendingIds().size());
    busy_threads += machine_busy[m];
    free_threads += machine_free[m];
  }
  const int unplaced = static_cast<int>(fleet_.UnplacedIds().size());

  JsonWriter json(os_);
  json.BeginObject();
  json.Field("t", t);
  json.Field("attainment_so_far", attainment_so_far);
  json.Field("at_goal_so_far", at_goal_so_far);
  json.Field("queue_depth", machine_queued + unplaced);
  json.Field("unplaced", unplaced);
  json.Field("running", running);
  json.Field("up_machines", up_machines);
  json.Field("busy_threads", busy_threads);
  json.Field("free_threads", free_threads);

  const CapacityIndex& index = fleet_.capacity_index();
  json.Key("cells");
  json.BeginArray();
  for (int c = 0; c < index.NumCells(); ++c) {
    int cell_up = 0;
    int cell_busy = 0;
    int cell_free = 0;
    for (int m : index.layout().cells[c]) {
      cell_up += machine_up[m];
      // Only up members count as capacity, matching the index's semantics.
      if (machine_up[m] != 0) {
        cell_busy += machine_busy[m];
        cell_free += machine_free[m];
      }
    }
    json.BeginObject();
    json.Field("cell", c);
    json.Field("up", cell_up);
    json.Field("busy_threads", cell_busy);
    json.Field("free_threads", cell_free);
    json.EndObject();
  }
  json.EndArray();

  const FailureDomainTopology& domains = fleet_.domains();
  json.Key("racks");
  json.BeginArray();
  for (int r = 0; r < domains.NumRacks(); ++r) {
    int rack_up = 0;
    int rack_busy = 0;
    int rack_free = 0;
    for (int m : domains.MachinesInRack(r)) {
      rack_up += machine_up[m];
      if (machine_up[m] != 0) {
        rack_busy += machine_busy[m];
        rack_free += machine_free[m];
      }
    }
    json.BeginObject();
    json.Field("rack", r);
    json.Field("up", rack_up);
    json.Field("busy_threads", rack_busy);
    json.Field("free_threads", rack_free);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  os_ << "\n";
  ++samples_;
}

}  // namespace numaplace
