// Per-container lifecycle spans over the event pipeline, emitted as Chrome
// trace-event JSON (chrome://tracing, Perfetto).
//
// Mapping: pid = machine_id + 1 (so the fleet-wide wait pool, machine id
// kNoMachine = -1, becomes pid 0), tid = container_id, ts = stream time in
// microseconds. Each container's life renders as complete ("X") slices —
// "queued" from first OnQueued to the admission that seats it, and
// "running #<placement>" from each admission to the next admission (an
// upgrade or a move landing), departure, or evacuation. Moves, evacuations
// and availability flips appear as instant ("i") events carrying their
// gain/cost numbers in args.
//
// Everything recorded is sim-time and event-ordered, so the serialized
// trace is byte-identical across runs of the same trace + flags.
#ifndef NUMAPLACE_SRC_TELEMETRY_SPANS_H_
#define NUMAPLACE_SRC_TELEMETRY_SPANS_H_

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/scheduler/events.h"

namespace numaplace {

class SpanCollector final : public ForwardingObserver {
 public:
  explicit SpanCollector(EventObserver* next = nullptr);

  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override;
  void OnQueued(int machine_id, const ScheduleOutcome& outcome, double now) override;
  void OnDeparture(int machine_id, int container_id, double now) override;
  void OnMove(const RebalanceMove& move, double now) override;
  void OnEvacuation(const EvacuationReport& report, double now) override;
  void OnMachineAvailability(int machine_id, MachineAvailability availability,
                             double now) override;

  /// Closes every still-open slice at `end_seconds` (containers alive when
  /// the trace ran out). Call once, after the replay.
  void Finish(double end_seconds);

  /// Serializes {"traceEvents": [...]} — the Chrome trace-event JSON array
  /// format — in recorded order, preceded by process-name metadata.
  void WriteChromeTrace(std::ostream& os) const;

  /// Events recorded so far (metadata events are generated at write time).
  size_t event_count() const { return events_.size(); }

 private:
  struct TraceEvent {
    std::string name;
    char phase = 'i';       // 'X' complete slice, 'i' instant, 'M' metadata
    double ts_micros = 0.0;
    double dur_micros = 0.0;  // 'X' only
    int pid = 0;
    int tid = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  struct OpenSlice {
    std::string name;
    double start_seconds = 0.0;
    int pid = 0;
  };

  void CloseSlice(std::map<int, OpenSlice>& open, int container_id,
                  double end_seconds);

  std::vector<TraceEvent> events_;
  std::map<int, OpenSlice> open_queued_;   // container id -> open "queued"
  std::map<int, OpenSlice> open_running_;  // container id -> open "running"
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TELEMETRY_SPANS_H_
