// EventObserver tap that feeds a MetricsRegistry from the unified event
// pipeline. Insert it between a scheduler and any downstream observer:
//
//   MetricsRegistry registry;
//   MetricsObserver metrics(&registry, &downstream);   // downstream may be null
//   fleet.ReplayWithEvaluation(trace, &metrics);
//
// It forwards every callback unchanged (ForwardingObserver), so attaching
// it never perturbs what downstream observers — or the scheduler — see.
// The metric catalog it populates is documented in docs/OBSERVABILITY.md.
#ifndef NUMAPLACE_SRC_TELEMETRY_METRICS_OBSERVER_H_
#define NUMAPLACE_SRC_TELEMETRY_METRICS_OBSERVER_H_

#include <map>

#include "src/scheduler/events.h"
#include "src/telemetry/metrics.h"

namespace numaplace {

class MetricsObserver final : public ForwardingObserver {
 public:
  /// `registry` must outlive the observer; `next` may be null. `up_machines`
  /// seeds the fleet.up_machines gauge (machines start kUp; pass 0 for a
  /// standalone MachineScheduler where availability never changes).
  explicit MetricsObserver(MetricsRegistry* registry, EventObserver* next = nullptr,
                           int up_machines = 0);

  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override;
  void OnQueued(int machine_id, const ScheduleOutcome& outcome, double now) override;
  void OnDeparture(int machine_id, int container_id, double now) override;
  void OnMove(const RebalanceMove& move, double now) override;
  void OnEvacuation(const EvacuationReport& report, double now) override;
  void OnMachineAvailability(int machine_id, MachineAvailability availability,
                             double now) override;
  void OnTargetSearch(const TargetSearchStats& search, double now) override;
  void OnAdmissionDecision(int container_id, int vcpus, SloTier tier,
                           AdmissionDecision decision, double now) override;

  /// Containers currently waiting (first OnQueued seen, no admission or
  /// departure yet).
  int queue_depth() const { return static_cast<int>(queued_since_.size()); }

 private:
  MetricsRegistry* registry_;
  // container id -> stream time of its *first* OnQueued since it last ran;
  // queue wait is measured from there to the admission that seats it.
  std::map<int, double> queued_since_;
  // container id -> stream time of its admission-layer defer; defer wait is
  // measured from there to the admission that seats it (erased, like
  // queued_since_, when the container departs or is shed instead).
  std::map<int, double> deferred_since_;
  // machine id -> last reported availability (absent = kUp), so the
  // up-machines gauge only moves on real up<->down transitions (a
  // draining machine that then fails must not be subtracted twice).
  std::map<int, MachineAvailability> availability_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TELEMETRY_METRICS_OBSERVER_H_
