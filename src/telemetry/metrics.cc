#include "src/telemetry/metrics.h"

#include <algorithm>

#include "src/util/check.h"

namespace numaplace {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size() + 1, 0) {
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    NP_CHECK_MSG(boundaries_[i - 1] < boundaries_[i],
                 "histogram boundaries must be strictly increasing; got "
                     << boundaries_[i - 1] << " before " << boundaries_[i]);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper boundary admits the value; past-the-end means
  // the overflow bucket.
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  ++counts_[static_cast<size_t>(it - boundaries_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double p) const {
  NP_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile " << p << " outside [0, 100]");
  if (count_ == 0) {
    return 0.0;
  }
  if (p <= 0.0) {
    return min_;
  }
  if (p >= 100.0) {
    return max_;
  }
  const double rank = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double in_bucket = static_cast<double>(counts_[i]);
    if (static_cast<double>(cumulative) + in_bucket >= rank) {
      // Bucket edges, clamped to the observed range so sparse tails don't
      // stretch the estimate past real data.
      const double lower = i == 0 ? min_ : std::max(boundaries_[i - 1], min_);
      const double upper = i < boundaries_.size() ? std::min(boundaries_[i], max_) : max_;
      if (upper <= lower) {
        return std::clamp(lower, min_, max_);
      }
      const double frac = (rank - static_cast<double>(cumulative)) / in_bucket;
      return std::clamp(lower + frac * (upper - lower), min_, max_);
    }
    cumulative += counts_[i];
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> boundaries) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(boundaries))).first;
  } else {
    NP_CHECK_MSG(it->second.boundaries() == boundaries,
                 "histogram " << name << " re-registered with different boundaries");
  }
  return it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace {
template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, unused] : map) {
    (void)unused;
    names.push_back(name);
  }
  return names;  // std::map iterates in sorted key order already.
}
}  // namespace

std::vector<std::string> MetricsRegistry::CounterNames() const {
  return SortedKeys(counters_);
}
std::vector<std::string> MetricsRegistry::GaugeNames() const {
  return SortedKeys(gauges_);
}
std::vector<std::string> MetricsRegistry::HistogramNames() const {
  return SortedKeys(histograms_);
}

}  // namespace numaplace
