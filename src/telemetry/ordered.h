// Deterministic observer reordering for the parallel fleet replay
// (src/cluster/parallel.h).
//
// The parallel replay engine defers dispatch *commits* to worker threads
// while keeping every scheduling *decision* — and therefore every observer
// callback — on the coordinator thread. Decisions still finish out of their
// serial order: an arrival's OnAdmission fires only when its deferred
// commit lands, which may be several decisions after the OnTargetSearch it
// belongs behind. This header restores the serial callback order:
//
//   SequencingObserver    tags each callback with the next sequence number
//                         at the moment it fires (decision time) and parks
//                         it in the buffer
//   OrderedObserverBuffer a coordinator-only reorder buffer: filled slots
//                         and reserved holes drain to the downstream
//                         observer strictly in sequence order, holes
//                         blocking the drain until their deferred work is
//                         ready to run
//
// Everything here runs on the coordinator thread; worker threads never
// touch the buffer (they only flip the ticket atomics the hole-readiness
// predicates poll). Downstream consumers — telemetry spans, metrics, the
// CLI's JSON writers — therefore observe the exact callback sequence the
// serial replay produces, which is what makes the parallel path's artifacts
// byte-identical.
#ifndef NUMAPLACE_SRC_TELEMETRY_ORDERED_H_
#define NUMAPLACE_SRC_TELEMETRY_ORDERED_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/scheduler/events.h"

namespace numaplace {

/// One buffered observer callback, tagged with which of the EventObserver
/// methods produced it. Only the fields of the active kind are meaningful;
/// the struct is plain data so slots can be queued by value.
struct ObserverRecord {
  enum class Kind {
    kAdmission,
    kQueued,
    kDeparture,
    kMove,
    kEvacuation,
    kMachineAvailability,
    kTargetSearch,
    kAdmissionDecision,
  };

  Kind kind = Kind::kAdmission;
  double now = 0.0;
  int machine_id = kNoMachine;              // kAdmission/kQueued/kDeparture/
                                            // kMachineAvailability
  ScheduleOutcome outcome;                  // kAdmission/kQueued
  int container_id = 0;                     // kDeparture/kAdmissionDecision
  RebalanceMove move;                       // kMove
  EvacuationReport evacuation;              // kEvacuation
  MachineAvailability availability =        // kMachineAvailability
      MachineAvailability::kUp;
  TargetSearchStats search;                 // kTargetSearch
  int vcpus = 0;                            // kAdmissionDecision
  SloTier tier = SloTier::kStandard;        // kAdmissionDecision
  AdmissionDecision decision =              // kAdmissionDecision
      AdmissionDecision::kAdmit;
};

/// Replays one record as the observer call it was captured from.
void DeliverRecord(const ObserverRecord& record, EventObserver* downstream);

/// Coordinator-thread reorder buffer. Slots are assigned sequence numbers
/// in arrival order; Drain() releases the contiguous prefix to the
/// downstream observer. A *hole* is a slot whose content does not exist yet
/// — a deferred dispatch commit whose OnAdmission/OnQueued will only be
/// emitted when the commit lands. The hole carries a readiness predicate
/// and an action; when the drain reaches a ready hole it runs the action
/// (which emits the callbacks directly, see SequencingObserver's direct
/// mode) and advances. An unready hole stalls the drain — later filled
/// slots wait buffered — preserving strict sequence order.
///
/// Single-threaded by contract: every method must be called from the
/// coordinator thread. Readiness predicates may read atomics written by
/// workers; nothing else crosses threads.
class OrderedObserverBuffer {
 public:
  explicit OrderedObserverBuffer(EventObserver* downstream)
      : downstream_(downstream) {}

  /// Progress counters for the equivalence/property tests: a fully drained
  /// replay has drained == emitted + reserved and next_seq == drained.
  struct Stats {
    uint64_t emitted = 0;     ///< filled slots queued via Emit()
    uint64_t reserved = 0;    ///< holes queued via Reserve()
    uint64_t drained = 0;     ///< slots released downstream, in seq order
    uint64_t max_buffered = 0;  ///< peak queue depth (reorder window)
  };

  /// Queues a filled slot under the next sequence number, then drains.
  /// Returns the assigned sequence number.
  uint64_t Emit(ObserverRecord record);

  /// Queues a hole under the next sequence number, then drains. `ready`
  /// must be repeatable (it is polled once per drain attempt); `action`
  /// runs exactly once, when the drain passes the hole.
  uint64_t Reserve(std::function<bool()> ready, std::function<void()> action);

  /// Releases the contiguous ready prefix to the downstream observer.
  /// Idempotent; called internally by Emit()/Reserve() so consumers only
  /// need it after flipping external readiness state (e.g. a worker flush).
  void Drain();

  /// CHECK-fails unless every queued slot has drained — the post-flush
  /// invariant (all commits landed => no hole can be unready).
  void CheckDrained() const;

  uint64_t NextSequence() const { return next_seq_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    uint64_t seq = 0;
    bool is_hole = false;
    ObserverRecord record;                // filled slot payload
    std::function<bool()> ready;          // hole only
    std::function<void()> action;         // hole only
  };

  EventObserver* downstream_;
  std::deque<Slot> slots_;
  uint64_t next_seq_ = 0;     // next sequence number to assign
  uint64_t next_drain_ = 0;   // sequence number the drain front expects
  Stats stats_;
};

/// The observer the parallel engine hands to the fleet. In its normal mode
/// every callback becomes a filled buffer slot, sequence-numbered at the
/// moment the fleet emits it — decision order, the serial order. In
/// *direct* mode (enabled by the engine around a hole's deferred
/// FinishDispatch) callbacks bypass the buffer and go straight downstream:
/// they are the hole's own content being delivered in the hole's sequence
/// position, so re-buffering them would deadlock the drain.
class SequencingObserver final : public EventObserver {
 public:
  SequencingObserver(OrderedObserverBuffer* buffer, EventObserver* downstream)
      : buffer_(buffer), downstream_(downstream) {}

  void set_direct(bool direct) { direct_ = direct; }
  bool direct() const { return direct_; }

  void OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                   double now) override;
  void OnQueued(int machine_id, const ScheduleOutcome& outcome,
                double now) override;
  void OnDeparture(int machine_id, int container_id, double now) override;
  void OnMove(const RebalanceMove& move, double now) override;
  void OnEvacuation(const EvacuationReport& report, double now) override;
  void OnMachineAvailability(int machine_id, MachineAvailability availability,
                             double now) override;
  void OnTargetSearch(const TargetSearchStats& search, double now) override;
  void OnAdmissionDecision(int container_id, int vcpus, SloTier tier,
                           AdmissionDecision decision, double now) override;

 private:
  void Route(ObserverRecord record);

  OrderedObserverBuffer* buffer_;
  EventObserver* downstream_;
  bool direct_ = false;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TELEMETRY_ORDERED_H_
