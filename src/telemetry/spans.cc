#include "src/telemetry/spans.h"

#include <algorithm>
#include <set>

#include "src/util/json.h"

namespace numaplace {

namespace {
constexpr double kMicrosPerSecond = 1e6;
}  // namespace

SpanCollector::SpanCollector(EventObserver* next) : ForwardingObserver(next) {}

void SpanCollector::CloseSlice(std::map<int, OpenSlice>& open, int container_id,
                               double end_seconds) {
  const auto it = open.find(container_id);
  if (it == open.end()) {
    return;
  }
  TraceEvent event;
  event.name = std::move(it->second.name);
  event.phase = 'X';
  event.ts_micros = it->second.start_seconds * kMicrosPerSecond;
  event.dur_micros =
      std::max(0.0, end_seconds - it->second.start_seconds) * kMicrosPerSecond;
  event.pid = it->second.pid;
  event.tid = container_id;
  events_.push_back(std::move(event));
  open.erase(it);
}

void SpanCollector::OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                                double now) {
  CloseSlice(open_queued_, outcome.container_id, now);
  // An upgrade or move landing ends the previous placement's slice.
  CloseSlice(open_running_, outcome.container_id, now);
  OpenSlice slice;
  slice.name = "running #" + std::to_string(outcome.placement_id);
  slice.start_seconds = now;
  slice.pid = machine_id + 1;
  open_running_.emplace(outcome.container_id, std::move(slice));
  ForwardingObserver::OnAdmission(machine_id, outcome, now);
}

void SpanCollector::OnQueued(int machine_id, const ScheduleOutcome& outcome,
                             double now) {
  CloseSlice(open_running_, outcome.container_id, now);
  // Re-reports while already waiting (evacuation requeues) keep the
  // original slice — the wait started at the first queueing.
  if (open_queued_.find(outcome.container_id) == open_queued_.end()) {
    OpenSlice slice;
    slice.name = "queued";
    slice.start_seconds = now;
    slice.pid = machine_id + 1;
    open_queued_.emplace(outcome.container_id, std::move(slice));
  }
  ForwardingObserver::OnQueued(machine_id, outcome, now);
}

void SpanCollector::OnDeparture(int machine_id, int container_id, double now) {
  CloseSlice(open_queued_, container_id, now);
  CloseSlice(open_running_, container_id, now);
  TraceEvent event;
  event.name = "depart";
  event.phase = 'i';
  event.ts_micros = now * kMicrosPerSecond;
  event.pid = machine_id + 1;
  event.tid = container_id;
  events_.push_back(std::move(event));
  ForwardingObserver::OnDeparture(machine_id, container_id, now);
}

void SpanCollector::OnMove(const RebalanceMove& move, double now) {
  TraceEvent event;
  event.name = std::string("move:") + ToString(move.reason);
  event.phase = 'i';
  event.ts_micros = now * kMicrosPerSecond;
  event.pid = move.from_machine + 1;
  event.tid = move.container_id;
  event.args = {{"to_machine", static_cast<double>(move.to_machine)},
                {"predicted_gain_ops", move.predicted_gain_ops},
                {"modeled_cost_ops", move.modeled_cost_ops},
                {"move_seconds", move.move_seconds}};
  events_.push_back(std::move(event));
  ForwardingObserver::OnMove(move, now);
}

void SpanCollector::OnEvacuation(const EvacuationReport& report, double now) {
  TraceEvent event;
  event.name = std::string("evacuation:") + ToString(report.reason);
  event.phase = 'i';
  event.ts_micros = now * kMicrosPerSecond;
  event.pid = report.machine_id + 1;
  event.tid = 0;
  event.args = {{"containers", static_cast<double>(report.containers)},
                {"rehomed", static_cast<double>(report.rehomed)},
                {"requeued", static_cast<double>(report.requeued)},
                {"last_landing_seconds", report.last_landing_seconds}};
  events_.push_back(std::move(event));
  ForwardingObserver::OnEvacuation(report, now);
}

void SpanCollector::OnMachineAvailability(int machine_id,
                                          MachineAvailability availability,
                                          double now) {
  TraceEvent event;
  event.name = std::string("availability:") + ToString(availability);
  event.phase = 'i';
  event.ts_micros = now * kMicrosPerSecond;
  event.pid = machine_id + 1;
  event.tid = 0;
  events_.push_back(std::move(event));
  ForwardingObserver::OnMachineAvailability(machine_id, availability, now);
}

void SpanCollector::Finish(double end_seconds) {
  // Deterministic close order: maps iterate by container id.
  while (!open_queued_.empty()) {
    CloseSlice(open_queued_, open_queued_.begin()->first, end_seconds);
  }
  while (!open_running_.empty()) {
    CloseSlice(open_running_, open_running_.begin()->first, end_seconds);
  }
}

void SpanCollector::WriteChromeTrace(std::ostream& os) const {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  // Process-name metadata first, sorted by pid: pid 0 is the fleet-wide
  // wait pool, pid m+1 is machine m.
  std::set<int> pids;
  for (const TraceEvent& event : events_) {
    pids.insert(event.pid);
  }
  for (int pid : pids) {
    json.BeginObject();
    json.Field("name", "process_name");
    json.Field("ph", "M");
    json.Field("pid", pid);
    json.Field("tid", 0);
    json.Key("args");
    json.BeginObject();
    json.Field("name", pid == 0 ? std::string("fleet")
                                : "machine " + std::to_string(pid - 1));
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& event : events_) {
    json.BeginObject();
    json.Field("name", event.name);
    json.Field("ph", std::string(1, event.phase));
    json.Field("ts", event.ts_micros);
    if (event.phase == 'X') {
      json.Field("dur", event.dur_micros);
    }
    json.Field("pid", event.pid);
    json.Field("tid", event.tid);
    if (!event.args.empty()) {
      json.Key("args");
      json.BeginObject();
      for (const auto& [key, value] : event.args) {
        json.Field(key, value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
}

}  // namespace numaplace
