#include "src/telemetry/metrics_observer.h"

#include <string>
#include <vector>

namespace numaplace {

namespace {

// Every boundary set leads with an exact-zero bucket: instant restarts,
// preview-free dispatches and cache-hit decisions are common, and keeping
// them out of the first real bucket stops interpolation from smearing a
// zero-heavy distribution.

// Seconds-valued latency boundaries: sub-minute detail, then the coarse
// minutes/hours tail queue waits actually reach under overload.
const std::vector<double> kLatencyBoundaries = {0, 1, 5, 15, 60, 300, 900, 3600};

// Move durations are dominated by §7 migration + network copy — seconds to
// a few minutes.
const std::vector<double> kMoveBoundaries = {0, 0.5, 1, 2, 5, 10, 30, 60, 180};

// Decision cost (probes + migration) at machine level.
const std::vector<double> kDecisionBoundaries = {0, 0.1, 0.5, 1, 2, 5, 10, 30};

// Previews per target search; the sharded index keeps this sublinear in
// fleet size, so the interesting range is small.
const std::vector<double> kPreviewBoundaries = {0,  1,  2,   4,   8,
                                                16, 32, 64, 128, 256};

// Host wall time per target search. Never emitted into deterministic
// artifacts — console/bench-JSON only.
const std::vector<double> kSearchSecondsBoundaries = {0,    1e-6, 1e-5, 1e-4,
                                                      1e-3, 1e-2, 0.1,  1};

// vCPU width of rejected containers — what the admission layer sheds.
const std::vector<double> kVcpuBoundaries = {0, 1, 2, 4, 8, 16, 32, 64};

// Per-tier admission-decision counter, e.g.
// "fleet.admission.best-effort.rejected".
std::string AdmissionCounterName(SloTier tier, AdmissionDecision decision) {
  return std::string("fleet.admission.") + ToString(tier) + "." +
         ToString(decision);
}

}  // namespace

MetricsObserver::MetricsObserver(MetricsRegistry* registry, EventObserver* next,
                                 int up_machines)
    : ForwardingObserver(next), registry_(registry) {
  // Materialize the catalog up front so emission sees every instrument even
  // when a run never triggers some event (deterministic schema).
  registry_->GetCounter("fleet.admissions");
  registry_->GetCounter("fleet.queued_events");
  registry_->GetCounter("fleet.departures");
  registry_->GetCounter("fleet.moves");
  registry_->GetCounter("fleet.moves.rebalance");
  registry_->GetCounter("fleet.moves.drain");
  registry_->GetCounter("fleet.moves.failover");
  registry_->GetCounter("fleet.evacuations");
  registry_->GetCounter("fleet.machines_failed");
  registry_->GetCounter("fleet.machines_draining");
  registry_->GetCounter("fleet.machines_rejoined");
  registry_->GetGauge("fleet.queue_depth");
  registry_->GetGauge("fleet.up_machines").Set(up_machines);
  registry_->GetHistogram("fleet.queue_wait_seconds", kLatencyBoundaries);
  registry_->GetHistogram("fleet.evacuation_latency_seconds", kLatencyBoundaries);
  registry_->GetHistogram("fleet.move_seconds", kMoveBoundaries);
  registry_->GetHistogram("fleet.decision_seconds", kDecisionBoundaries);
  registry_->GetHistogram("fleet.search_previews", kPreviewBoundaries);
  registry_->GetHistogram("fleet.search_seconds", kSearchSecondsBoundaries);
  // The admission layer's tier-labeled catalog (one counter per tier x
  // decision, all zero when no admission policy is configured).
  for (const SloTier tier :
       {SloTier::kPremium, SloTier::kStandard, SloTier::kBestEffort}) {
    for (const AdmissionDecision decision :
         {AdmissionDecision::kAdmit, AdmissionDecision::kDefer,
          AdmissionDecision::kReject, AdmissionDecision::kPreempt}) {
      registry_->GetCounter(AdmissionCounterName(tier, decision));
    }
  }
  registry_->GetHistogram("fleet.admission.rejected_vcpus", kVcpuBoundaries);
  registry_->GetHistogram("fleet.admission.defer_wait_seconds", kLatencyBoundaries);
}

void MetricsObserver::OnAdmission(int machine_id, const ScheduleOutcome& outcome,
                                  double now) {
  registry_->GetCounter("fleet.admissions").Increment();
  registry_->GetHistogram("fleet.decision_seconds", kDecisionBoundaries)
      .Observe(outcome.decision_seconds);
  const auto it = queued_since_.find(outcome.container_id);
  if (it != queued_since_.end()) {
    registry_->GetHistogram("fleet.queue_wait_seconds", kLatencyBoundaries)
        .Observe(now - it->second);
    queued_since_.erase(it);
    registry_->GetGauge("fleet.queue_depth").Set(queue_depth());
  }
  const auto deferred = deferred_since_.find(outcome.container_id);
  if (deferred != deferred_since_.end()) {
    registry_->GetHistogram("fleet.admission.defer_wait_seconds", kLatencyBoundaries)
        .Observe(now - deferred->second);
    deferred_since_.erase(deferred);
  }
  ForwardingObserver::OnAdmission(machine_id, outcome, now);
}

void MetricsObserver::OnQueued(int machine_id, const ScheduleOutcome& outcome,
                               double now) {
  registry_->GetCounter("fleet.queued_events").Increment();
  // Only the first queueing starts the wait clock: re-reports while still
  // waiting (e.g. an evacuation requeue) must not reset it.
  queued_since_.emplace(outcome.container_id, now);
  registry_->GetGauge("fleet.queue_depth").Set(queue_depth());
  ForwardingObserver::OnQueued(machine_id, outcome, now);
}

void MetricsObserver::OnDeparture(int machine_id, int container_id, double now) {
  registry_->GetCounter("fleet.departures").Increment();
  if (queued_since_.erase(container_id) > 0) {
    registry_->GetGauge("fleet.queue_depth").Set(queue_depth());
  }
  deferred_since_.erase(container_id);
  ForwardingObserver::OnDeparture(machine_id, container_id, now);
}

void MetricsObserver::OnMove(const RebalanceMove& move, double now) {
  registry_->GetCounter("fleet.moves").Increment();
  registry_->GetCounter(std::string("fleet.moves.") + ToString(move.reason))
      .Increment();
  registry_->GetHistogram("fleet.move_seconds", kMoveBoundaries)
      .Observe(move.move_seconds);
  ForwardingObserver::OnMove(move, now);
}

void MetricsObserver::OnEvacuation(const EvacuationReport& report, double now) {
  registry_->GetCounter("fleet.evacuations").Increment();
  registry_->GetHistogram("fleet.evacuation_latency_seconds", kLatencyBoundaries)
      .Observe(report.last_landing_seconds);
  ForwardingObserver::OnEvacuation(report, now);
}

void MetricsObserver::OnMachineAvailability(int machine_id,
                                            MachineAvailability availability,
                                            double now) {
  switch (availability) {
    case MachineAvailability::kUp:
      registry_->GetCounter("fleet.machines_rejoined").Increment();
      break;
    case MachineAvailability::kDraining:
      registry_->GetCounter("fleet.machines_draining").Increment();
      break;
    case MachineAvailability::kFailed:
      registry_->GetCounter("fleet.machines_failed").Increment();
      break;
  }
  const auto it = availability_.find(machine_id);
  const bool was_up = it == availability_.end() || it->second == MachineAvailability::kUp;
  const bool is_up = availability == MachineAvailability::kUp;
  if (was_up != is_up) {
    registry_->GetGauge("fleet.up_machines").Add(is_up ? 1.0 : -1.0);
  }
  availability_[machine_id] = availability;
  ForwardingObserver::OnMachineAvailability(machine_id, availability, now);
}

void MetricsObserver::OnTargetSearch(const TargetSearchStats& search, double now) {
  registry_->GetHistogram("fleet.search_previews", kPreviewBoundaries)
      .Observe(static_cast<double>(search.previews));
  registry_->GetHistogram("fleet.search_seconds", kSearchSecondsBoundaries)
      .Observe(search.host_seconds);
  ForwardingObserver::OnTargetSearch(search, now);
}

void MetricsObserver::OnAdmissionDecision(int container_id, int vcpus, SloTier tier,
                                          AdmissionDecision decision, double now) {
  registry_->GetCounter(AdmissionCounterName(tier, decision)).Increment();
  switch (decision) {
    case AdmissionDecision::kReject:
      registry_->GetHistogram("fleet.admission.rejected_vcpus", kVcpuBoundaries)
          .Observe(static_cast<double>(vcpus));
      break;
    case AdmissionDecision::kDefer:
      // First defer starts the wait clock; OnAdmission observes and clears.
      deferred_since_.emplace(container_id, now);
      break;
    case AdmissionDecision::kAdmit:
    case AdmissionDecision::kPreempt:
      break;
  }
  ForwardingObserver::OnAdmissionDecision(container_id, vcpus, tier, decision, now);
}

}  // namespace numaplace
