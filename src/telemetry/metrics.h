// Metrics core of the telemetry layer: named counters, gauges and
// fixed-boundary histograms collected into a MetricsRegistry.
//
// Everything here is deterministic given a deterministic feed: histograms
// keep exact per-bucket counts plus min/max/sum, and Percentile() resolves
// inside a bucket by linear interpolation over exact edges, so the same
// sequence of Observe() calls always yields the same summary. Host wall
// time may be *recorded* here (fleet.search_seconds), but callers writing
// deterministic artifacts must skip wall-time metrics — see
// docs/OBSERVABILITY.md.
//
// The registry owns its instruments; handles returned by Counter()/Gauge()/
// Histogram() stay valid for the registry's lifetime (node-stable map
// storage). Instruments are identified by name; asking twice for the same
// name returns the same instrument (histogram boundaries must then match).
#ifndef NUMAPLACE_SRC_TELEMETRY_METRICS_H_
#define NUMAPLACE_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace numaplace {

/// Monotonically increasing count.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram with upper-inclusive buckets: a value v lands
/// in the first bucket with v <= boundary[i], or in the overflow bucket
/// when v exceeds every boundary. Tracks exact count/sum/min/max alongside
/// the bucket counts so percentile estimates can clamp to observed range.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing; may be empty (the histogram
  /// then degenerates to count/sum/min/max plus one overflow bucket).
  explicit Histogram(std::vector<double> boundaries);

  void Observe(double value);

  /// Upper-inclusive bucket boundaries, as constructed.
  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Per-bucket counts; size() == boundaries().size() + 1, last = overflow.
  const std::vector<int64_t>& bucket_counts() const { return counts_; }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// 0.0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  /// 0.0 when empty.
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// sum/count; 0.0 when empty.
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Deterministic percentile estimate, p in [0, 100]: walks the cumulative
  /// bucket counts to the target rank, interpolates linearly within the
  /// bucket, and clamps edges to the observed [min, max]. Exact for p=0
  /// (min) and p=100 (max); 0.0 when the histogram is empty.
  double Percentile(double p) const;

 private:
  std::vector<double> boundaries_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed collection of instruments. std::map keeps iteration (and
/// therefore any emission order derived from it) sorted and deterministic.
class MetricsRegistry {
 public:
  /// Finds or creates the named counter.
  Counter& GetCounter(const std::string& name);
  /// Finds or creates the named gauge.
  Gauge& GetGauge(const std::string& name);
  /// Finds or creates the named histogram. When the histogram already
  /// exists the boundaries must match the existing ones.
  Histogram& GetHistogram(const std::string& name, std::vector<double> boundaries);

  /// Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Sorted instrument names, for deterministic emission.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TELEMETRY_METRICS_H_
