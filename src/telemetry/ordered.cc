#include "src/telemetry/ordered.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace numaplace {

void DeliverRecord(const ObserverRecord& record, EventObserver* downstream) {
  if (downstream == nullptr) {
    return;
  }
  switch (record.kind) {
    case ObserverRecord::Kind::kAdmission:
      downstream->OnAdmission(record.machine_id, record.outcome, record.now);
      return;
    case ObserverRecord::Kind::kQueued:
      downstream->OnQueued(record.machine_id, record.outcome, record.now);
      return;
    case ObserverRecord::Kind::kDeparture:
      downstream->OnDeparture(record.machine_id, record.container_id, record.now);
      return;
    case ObserverRecord::Kind::kMove:
      downstream->OnMove(record.move, record.now);
      return;
    case ObserverRecord::Kind::kEvacuation:
      downstream->OnEvacuation(record.evacuation, record.now);
      return;
    case ObserverRecord::Kind::kMachineAvailability:
      downstream->OnMachineAvailability(record.machine_id, record.availability,
                                        record.now);
      return;
    case ObserverRecord::Kind::kTargetSearch:
      downstream->OnTargetSearch(record.search, record.now);
      return;
    case ObserverRecord::Kind::kAdmissionDecision:
      downstream->OnAdmissionDecision(record.container_id, record.vcpus,
                                      record.tier, record.decision, record.now);
      return;
  }
  NP_CHECK_MSG(false, "unhandled ObserverRecord kind");
}

uint64_t OrderedObserverBuffer::Emit(ObserverRecord record) {
  Slot slot;
  slot.seq = next_seq_++;
  slot.is_hole = false;
  slot.record = std::move(record);
  slots_.push_back(std::move(slot));
  ++stats_.emitted;
  stats_.max_buffered = std::max<uint64_t>(stats_.max_buffered, slots_.size());
  const uint64_t seq = next_seq_ - 1;
  Drain();
  return seq;
}

uint64_t OrderedObserverBuffer::Reserve(std::function<bool()> ready,
                                        std::function<void()> action) {
  Slot slot;
  slot.seq = next_seq_++;
  slot.is_hole = true;
  slot.ready = std::move(ready);
  slot.action = std::move(action);
  slots_.push_back(std::move(slot));
  ++stats_.reserved;
  stats_.max_buffered = std::max<uint64_t>(stats_.max_buffered, slots_.size());
  const uint64_t seq = next_seq_ - 1;
  Drain();
  return seq;
}

void OrderedObserverBuffer::Drain() {
  while (!slots_.empty()) {
    Slot& front = slots_.front();
    // The deque is the assignment order, so the front always carries the
    // sequence number the downstream expects next — gaps are impossible by
    // construction; the CHECK pins the invariant for the property tests.
    NP_CHECK_MSG(front.seq == next_drain_,
                 "reorder buffer out of sequence: front slot " << front.seq
                     << ", expected " << next_drain_);
    if (front.is_hole) {
      if (!front.ready()) {
        return;  // stall: later slots wait until the deferred work lands
      }
      // Move the action out before running it: the action may emit further
      // (direct-mode) callbacks but must not mutate this queue's front.
      std::function<void()> action = std::move(front.action);
      slots_.pop_front();
      ++next_drain_;
      ++stats_.drained;
      action();
    } else {
      ObserverRecord record = std::move(front.record);
      slots_.pop_front();
      ++next_drain_;
      ++stats_.drained;
      DeliverRecord(record, downstream_);
    }
  }
}

void OrderedObserverBuffer::CheckDrained() const {
  NP_CHECK_MSG(slots_.empty(), "reorder buffer not drained: "
                                   << slots_.size() << " slot(s) still queued, "
                                   << "next to drain " << next_drain_ << " of "
                                   << next_seq_);
}

void SequencingObserver::Route(ObserverRecord record) {
  buffer_->Emit(std::move(record));
}

void SequencingObserver::OnAdmission(int machine_id,
                                     const ScheduleOutcome& outcome,
                                     double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnAdmission(machine_id, outcome, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kAdmission;
  record.machine_id = machine_id;
  record.outcome = outcome;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnQueued(int machine_id, const ScheduleOutcome& outcome,
                                  double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnQueued(machine_id, outcome, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kQueued;
  record.machine_id = machine_id;
  record.outcome = outcome;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnDeparture(int machine_id, int container_id,
                                     double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnDeparture(machine_id, container_id, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kDeparture;
  record.machine_id = machine_id;
  record.container_id = container_id;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnMove(const RebalanceMove& move, double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnMove(move, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kMove;
  record.move = move;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnEvacuation(const EvacuationReport& report,
                                      double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnEvacuation(report, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kEvacuation;
  record.evacuation = report;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnMachineAvailability(int machine_id,
                                               MachineAvailability availability,
                                               double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnMachineAvailability(machine_id, availability, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kMachineAvailability;
  record.machine_id = machine_id;
  record.availability = availability;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnTargetSearch(const TargetSearchStats& search,
                                        double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnTargetSearch(search, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kTargetSearch;
  record.search = search;
  record.now = now;
  Route(std::move(record));
}

void SequencingObserver::OnAdmissionDecision(int container_id, int vcpus,
                                             SloTier tier,
                                             AdmissionDecision decision,
                                             double now) {
  if (direct_) {
    if (downstream_ != nullptr) {
      downstream_->OnAdmissionDecision(container_id, vcpus, tier, decision, now);
    }
    return;
  }
  ObserverRecord record;
  record.kind = ObserverRecord::Kind::kAdmissionDecision;
  record.container_id = container_id;
  record.vcpus = vcpus;
  record.tier = tier;
  record.decision = decision;
  record.now = now;
  Route(std::move(record));
}

}  // namespace numaplace
