#include "src/container/controller.h"

#include "src/model/registry.h"
#include "src/util/check.h"

namespace numaplace {

PlacementController::PlacementController(const ImportantPlacementSet& ips,
                                         const PerformanceModel& sim,
                                         const TrainedPerfModel& model, int baseline_id,
                                         double probe_seconds)
    : ips_(&ips),
      sim_(&sim),
      baseline_id_(baseline_id),
      probe_seconds_(probe_seconds) {
  NP_CHECK(probe_seconds_ > 0.0);
  registry_.Register(sim.topology().name(), ips.vcpus, model);
  SchedulerConfig config;
  config.probe_seconds = probe_seconds_;
  config.baseline_id = baseline_id_;
  // The paper's one-shot rule: when nothing meets the goal, take the highest
  // prediction outright — there are no co-tenants to leave room for.
  config.fallback_slack = 0.0;
  scheduler_.emplace(sim.topology(), sim, &registry_, config);
  scheduler_->ProvidePlacements(ips);
}

PlacementDecision PlacementController::Place(const VirtualContainer& container) const {
  NP_CHECK(container.vcpus == ips_->vcpus);
  // Serializes access to the shared scheduler (and its fixed container id).
  const std::lock_guard<std::mutex> lock(mutex_);

  ContainerRequest request;
  request.id = 0;
  request.workload = container.workload;
  request.vcpus = container.vcpus;
  request.goal_fraction = container.goal_fraction;
  request.latency_sensitive = container.latency_sensitive;

  // Drop anything an exception in a previous Place() left behind.
  registry_.Forget(request.id);
  if (const ManagedContainer* stale = scheduler_->Find(request.id);
      stale != nullptr && stale->state != ContainerState::kDeparted) {
    scheduler_->Depart(request.id, /*now=*/0.0);
  }

  // One-shot view: the scheduler's occupancy map is empty between calls, so
  // this arrival sees the whole machine, exactly as the paper's controller
  // did. The scheduler owns the probe/predict/decide/migrate sequence; this
  // adapter only translates the result.
  const ScheduleOutcome outcome = scheduler_->Submit(request, /*now=*/0.0);
  NP_CHECK_MSG(outcome.admitted, "an empty machine rejected a container");

  PlacementDecision decision;
  decision.chosen_placement_id = outcome.placement_id;
  const CachedPrediction* cached = registry_.FindPrediction(request.id);
  NP_CHECK(cached != nullptr);
  decision.predicted_relative = cached->predicted_relative;
  decision.predicted_abs_throughput = outcome.predicted_abs_throughput;
  decision.timeline = outcome.timeline;
  decision.total_decision_seconds = outcome.decision_seconds;
  decision.measured_abs_throughput =
      sim_->Evaluate(container.workload, outcome.placement, /*run=*/43).throughput_ops;
  // One-shot: release the machine and the cached probes for the next call.
  scheduler_->Depart(request.id, /*now=*/0.0);
  return decision;
}

}  // namespace numaplace
