#include "src/container/controller.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

bool SameNodes(const NodeSet& a, const NodeSet& b) { return a == b; }

std::string DescribePlacement(const ImportantPlacement& ip) {
  std::ostringstream os;
  os << "placement #" << ip.id << " (" << ip.NodeCount() << " nodes, "
     << (ip.shares_l2 ? "shared L2" : "private L2") << ")";
  return os.str();
}

}  // namespace

PlacementController::PlacementController(const ImportantPlacementSet& ips,
                                         const PerformanceModel& sim,
                                         const TrainedPerfModel& model, int baseline_id,
                                         double probe_seconds)
    : ips_(&ips),
      sim_(&sim),
      model_(&model),
      baseline_id_(baseline_id),
      probe_seconds_(probe_seconds),
      fast_migrator_(),
      throttled_migrator_() {
  NP_CHECK(probe_seconds_ > 0.0);
}

PlacementDecision PlacementController::Place(const VirtualContainer& container) const {
  NP_CHECK(container.vcpus == ips_->vcpus);
  const Topology& topo = sim_->topology();
  PlacementDecision decision;
  double clock = 0.0;

  auto add_event = [&](double duration, const std::string& what) {
    decision.timeline.push_back({clock, duration, what});
    clock += duration;
  };

  const Migrator& migrator =
      container.latency_sensitive
          ? static_cast<const Migrator&>(throttled_migrator_)
          : static_cast<const Migrator&>(fast_migrator_);

  // Probe A: the container starts in input placement A.
  const ImportantPlacement& ip_a = ips_->ById(model_->input_a);
  const ImportantPlacement& ip_b = ips_->ById(model_->input_b);
  const Placement placement_a = Realize(ip_a, topo, container.vcpus);
  const Placement placement_b = Realize(ip_b, topo, container.vcpus);

  add_event(probe_seconds_, "probe in " + DescribePlacement(ip_a));
  const double perf_a =
      sim_->Evaluate(container.workload, placement_a, /*run=*/41).throughput_ops;

  // Remap to B. vCPU remapping is cheap; memory follows only when the node
  // sets differ.
  if (!SameNodes(ip_a.nodes, ip_b.nodes)) {
    const MigrationEstimate m = migrator.Migrate(container.workload);
    add_event(m.seconds, "migrate memory to " + DescribePlacement(ip_b) + " (" +
                             migrator.name() + ")");
  }
  add_event(probe_seconds_, "probe in " + DescribePlacement(ip_b));
  const double perf_b =
      sim_->Evaluate(container.workload, placement_b, /*run=*/42).throughput_ops;

  // Predict the full vector and choose the cheapest placement meeting the
  // goal (fewest nodes; ties to the higher prediction).
  decision.predicted_relative = model_->Predict(perf_a, perf_b);

  size_t index_a = 0;
  size_t index_baseline = 0;
  for (size_t i = 0; i < model_->placement_ids.size(); ++i) {
    if (model_->placement_ids[i] == model_->input_a) {
      index_a = i;
    }
    if (model_->placement_ids[i] == baseline_id_) {
      index_baseline = i;
    }
  }
  NP_CHECK(decision.predicted_relative[index_a] > 0.0);
  const double abs_unit = perf_a / decision.predicted_relative[index_a];
  const double goal =
      container.goal_fraction * abs_unit * decision.predicted_relative[index_baseline];

  const ImportantPlacement* chosen = nullptr;
  double chosen_abs = 0.0;
  for (size_t i = 0; i < model_->placement_ids.size(); ++i) {
    const ImportantPlacement& ip = ips_->ById(model_->placement_ids[i]);
    const double abs_pred = abs_unit * decision.predicted_relative[i];
    const bool meets = abs_pred >= goal;
    if (chosen == nullptr) {
      chosen = &ip;
      chosen_abs = abs_pred;
      continue;
    }
    const bool chosen_meets = chosen_abs >= goal;
    if (meets && (!chosen_meets || ip.NodeCount() < chosen->NodeCount() ||
                  (ip.NodeCount() == chosen->NodeCount() && abs_pred > chosen_abs))) {
      chosen = &ip;
      chosen_abs = abs_pred;
    } else if (!meets && !chosen_meets && abs_pred > chosen_abs) {
      chosen = &ip;
      chosen_abs = abs_pred;
    }
  }
  NP_CHECK(chosen != nullptr);

  if (!SameNodes(ip_b.nodes, chosen->nodes)) {
    const MigrationEstimate m = migrator.Migrate(container.workload);
    add_event(m.seconds, "migrate memory to final " + DescribePlacement(*chosen) + " (" +
                             migrator.name() + ")");
  } else {
    add_event(0.0, "final " + DescribePlacement(*chosen) + " (no migration needed)");
  }

  decision.chosen_placement_id = chosen->id;
  decision.predicted_abs_throughput = chosen_abs;
  const Placement final_placement = Realize(*chosen, topo, container.vcpus);
  decision.measured_abs_throughput =
      sim_->Evaluate(container.workload, final_placement, /*run=*/43).throughput_ops;
  decision.total_decision_seconds = clock;
  return decision;
}

}  // namespace numaplace
