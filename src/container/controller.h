// Virtual-container runtime: the online placement controller of §1.
//
// Steps the paper's system performs when a container launches:
//   1. The machine's shared-resource specification (concerns) exists.
//   2. The important placements were generated for the container's size.
//   3. A model was trained for (machine, vCPU count).
//   4. At runtime the scheduler runs the container in the model's two input
//      placements for a couple of seconds each, feeds the two measurements
//      to the model, obtains the predicted performance vector, picks a
//      placement meeting the operator's goal with the fewest nodes, and
//      remaps the vCPUs — migrating memory when the node sets differ.
//
// The controller is the one-shot, single-container view of that pipeline:
// since the multi-tenant refactor it is a thin adapter over the
// MachineScheduler (src/scheduler), submitting one arrival to a scheduler
// with an empty occupancy map. Code managing a stream of containers should
// use MachineScheduler directly.
#ifndef NUMAPLACE_SRC_CONTAINER_CONTROLLER_H_
#define NUMAPLACE_SRC_CONTAINER_CONTROLLER_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/model/registry.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/workloads/profile.h"

namespace numaplace {

// A container instance as the controller sees it.
struct VirtualContainer {
  WorkloadProfile workload;
  int vcpus = 0;
  // Operator goal relative to the baseline placement (1.0 = match it).
  double goal_fraction = 1.0;
  // Latency-sensitive containers use the throttled migrator (§7).
  bool latency_sensitive = false;
};

struct PlacementDecision {
  int chosen_placement_id = 0;
  std::vector<double> predicted_relative;  // model output vector
  double predicted_abs_throughput = 0.0;
  double measured_abs_throughput = 0.0;    // in the chosen placement
  double total_decision_seconds = 0.0;     // probes + migrations
  std::vector<TimelineEvent> timeline;
};

class PlacementController {
 public:
  // All references must outlive the controller.
  PlacementController(const ImportantPlacementSet& ips, const PerformanceModel& sim,
                      const TrainedPerfModel& model, int baseline_id,
                      double probe_seconds = 2.0);

  // Runs step 4: probe, predict, decide, migrate, on an otherwise empty
  // machine. Returns the decision with a full timeline (probe runs, memory
  // migrations, final placement).
  PlacementDecision Place(const VirtualContainer& container) const;

 private:
  const ImportantPlacementSet* ips_;
  const PerformanceModel* sim_;
  int baseline_id_;
  double probe_seconds_;
  // One model copy and one scheduler, built at construction; each Place()
  // call submits a container to the scheduler and departs it again, so the
  // occupancy map is empty between calls (the one-shot view). The mutex
  // keeps Place() safe to call concurrently, as the pre-scheduler stateless
  // implementation was. The scheduler points into registry_, so the
  // controller is neither copyable nor movable (the mutex enforces that).
  mutable std::mutex mutex_;
  mutable ModelRegistry registry_;
  mutable std::optional<MachineScheduler> scheduler_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CONTAINER_CONTROLLER_H_
