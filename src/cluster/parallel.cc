#include "src/cluster/parallel.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace numaplace {

WorkerPool::WorkerPool(int workers) {
  NP_CHECK_MSG(workers >= 1, "a worker pool needs at least one worker");
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    Worker* worker = workers_.back().get();
    worker->thread = std::thread([this, worker] { Run(worker); });
  }
}

namespace {

// Spin budget before a waiter gives up and sleeps on its condition
// variable. Replay batches are mostly shorter than a futex round trip, so
// both the coordinator's Flush and an idle worker briefly poll the atomic
// counters first; the bound keeps a genuinely long wait from burning a
// core.
constexpr int kSpinIterations = 1 << 14;

}  // namespace

WorkerPool::~WorkerPool() {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop.store(true, std::memory_order_relaxed);
    }
    worker->work_cv.notify_all();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->thread.join();
  }
}

void WorkerPool::Run(Worker* worker) {
  for (;;) {
    // Poll for the next batch before sleeping: if work lands within the
    // spin budget the condition variable below never blocks.
    for (int i = 0; i < kSpinIterations; ++i) {
      if (worker->stop.load(std::memory_order_relaxed) ||
          worker->enqueued.load(std::memory_order_acquire) >
              worker->done.load(std::memory_order_relaxed)) {
        break;
      }
      std::this_thread::yield();
    }
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->work_cv.wait(lock, [worker] {
        return worker->stop.load(std::memory_order_relaxed) ||
               !worker->queue.empty();
      });
      if (worker->queue.empty()) {
        return;  // stop requested and nothing left to run
      }
      task = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->done.fetch_add(1, std::memory_order_release);
    }
    worker->done_cv.notify_all();
  }
}

void WorkerPool::Enqueue(int worker_id, std::function<void()> task) {
  NP_CHECK(worker_id >= 0 && worker_id < NumWorkers());
  Worker& worker = *workers_[static_cast<size_t>(worker_id)];
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.enqueued.fetch_add(1, std::memory_order_release);
    worker.queue.push_back(std::move(task));
  }
  worker.work_cv.notify_one();
}

void WorkerPool::Flush(int worker_id) {
  NP_CHECK(worker_id >= 0 && worker_id < NumWorkers());
  Worker& worker = *workers_[static_cast<size_t>(worker_id)];
  const auto drained = [&worker] {
    return worker.done.load(std::memory_order_acquire) ==
           worker.enqueued.load(std::memory_order_acquire);
  };
  for (int i = 0; i < kSpinIterations; ++i) {
    if (drained()) {
      return;
    }
  }
  std::unique_lock<std::mutex> lock(worker.mu);
  worker.done_cv.wait(lock, drained);
}

void WorkerPool::FlushAllWorkers() {
  for (int w = 0; w < NumWorkers(); ++w) {
    Flush(w);
  }
}

ParallelReplayEngine::ParallelReplayEngine(FleetScheduler* fleet,
                                           const ParallelReplayConfig& config)
    : fleet_(fleet), pool_(std::max(1, config.threads)) {
  NP_CHECK(fleet != nullptr);
  cell_of_ = &fleet->capacity_index().layout().cell_of;
  NP_CHECK_MSG(static_cast<int>(cell_of_->size()) == fleet->NumMachines(),
               "fleet cell layout covers " << cell_of_->size() << " machines, fleet has "
                                           << fleet->NumMachines());
  pending_commits_.reserve(static_cast<size_t>(fleet->NumMachines()));
  for (int m = 0; m < fleet->NumMachines(); ++m) {
    pending_commits_.push_back(std::make_unique<std::atomic<int>>(0));
  }
}

ParallelReplayEngine::~ParallelReplayEngine() = default;

int ParallelReplayEngine::WorkerForMachine(int machine_id) const {
  // Cells map to workers modulo the pool size, so one cell's commits always
  // land on one worker queue — per-cell FIFO, single writer per machine.
  const int cell = (*cell_of_)[static_cast<size_t>(machine_id)];
  return cell % pool_.NumWorkers();
}

void ParallelReplayEngine::AccumulateBufferStats(
    const OrderedObserverBuffer& buffer) {
  stats_.sequences_assigned += buffer.stats().emitted + buffer.stats().reserved;
  stats_.sequences_drained += buffer.stats().drained;
  stats_.max_reorder_depth =
      std::max(stats_.max_reorder_depth, buffer.stats().max_buffered);
}

namespace {

// Installs the engine as the fleet's hooks for one replay; removes them on
// every exit path so a failed replay does not leave the fleet wired to a
// dead engine.
class HookInstallation {
 public:
  HookInstallation(FleetScheduler* fleet, FleetParallelHooks* hooks)
      : fleet_(fleet) {
    fleet_->SetParallelHooks(hooks);
  }
  ~HookInstallation() { fleet_->SetParallelHooks(nullptr); }

 private:
  FleetScheduler* fleet_;
};

}  // namespace

void ParallelReplayEngine::Replay(const EventStream& trace,
                                  EventObserver* observer) {
  OrderedObserverBuffer buffer(observer);
  SequencingObserver sequencer(&buffer, observer);
  buffer_ = &buffer;
  sequencer_ = &sequencer;
  HookInstallation installation(fleet_, this);
  fleet_->Replay(trace, &sequencer);
  // Fleet Replay ends with a FlushAll, so the buffer is already drained;
  // the CHECK is the merge stage's closing invariant.
  buffer.CheckDrained();
  AccumulateBufferStats(buffer);
  buffer_ = nullptr;
  sequencer_ = nullptr;
}

FleetReport ParallelReplayEngine::ReplayWithEvaluation(const EventStream& trace,
                                                       EventObserver* observer,
                                                       ReplaySampler* sampler) {
  OrderedObserverBuffer buffer(observer);
  SequencingObserver sequencer(&buffer, observer);
  buffer_ = &buffer;
  sequencer_ = &sequencer;
  FleetReport report;
  {
    HookInstallation installation(fleet_, this);
    report = fleet_->ReplayWithEvaluation(trace, &sequencer, sampler);
  }
  buffer.CheckDrained();
  AccumulateBufferStats(buffer);
  buffer_ = nullptr;
  sequencer_ = nullptr;
  return report;
}

void ParallelReplayEngine::RunBatch(std::vector<std::function<void()>>* tasks) {
  ++stats_.batches;
  stats_.batch_tasks += tasks->size();
  // One contiguous chunk per worker, shipped as a single composite task:
  // a 1024-machine snapshot batch costs one lock + notify per worker, not
  // per machine. The trailing flush is the barrier the hook contract
  // promises (results are fully written when RunBatch returns).
  const size_t workers = static_cast<size_t>(pool_.NumWorkers());
  const size_t chunk = (tasks->size() + workers - 1) / workers;
  for (size_t w = 0; w * chunk < tasks->size(); ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(begin + chunk, tasks->size());
    pool_.Enqueue(static_cast<int>(w), [tasks, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        (*tasks)[i]();
      }
    });
  }
  pool_.FlushAllWorkers();
}

void ParallelReplayEngine::EnqueueDispatchCommit(
    std::shared_ptr<PendingDispatch> ticket) {
  NP_CHECK_MSG(buffer_ != nullptr && sequencer_ != nullptr,
               "dispatch commit enqueued outside a replay");
  const int machine_id = ticket->machine_id;
  NP_CHECK(machine_id >= 0 && machine_id < fleet_->NumMachines());
  // The routing invariant the property tests assert: a commit only ever
  // reaches the worker owning its machine's cell, and the machine really is
  // a member of that cell (cells are ascending machine-id lists).
  const CellLayout& layout = fleet_->capacity_index().layout();
  const int cell = layout.cell_of[static_cast<size_t>(machine_id)];
  const std::vector<int>& members = layout.cells[static_cast<size_t>(cell)];
  NP_CHECK_MSG(std::binary_search(members.begin(), members.end(), machine_id),
               "machine " << machine_id << " routed to cell " << cell
                          << " it does not belong to");
  ++stats_.deferred_commits;
  std::atomic<int>* pending = pending_commits_[static_cast<size_t>(machine_id)].get();
  // Count the commit as in flight before anything can observe the ticket:
  // the hole's readiness predicate requires *both* this ticket committed
  // and zero in-flight commits on the machine, because FinishDispatch reads
  // the machine's live occupancy and must not race a later commit to it.
  pending->fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<PendingDispatch> shared = std::move(ticket);
  buffer_->Reserve(
      [shared, pending] {
        return shared->committed.load(std::memory_order_acquire) &&
               pending->load(std::memory_order_acquire) == 0;
      },
      [this, shared] {
        // The hole's content is the dispatch tail's own emissions; they
        // bypass the buffer (direct mode) because they are being delivered
        // *in* the hole's sequence position.
        sequencer_->set_direct(true);
        fleet_->FinishDispatch(*shared);
        sequencer_->set_direct(false);
      });
  pool_.Enqueue(WorkerForMachine(machine_id), [this, shared, pending] {
    fleet_->CommitDispatch(shared.get());
    pending->fetch_sub(1, std::memory_order_release);
  });
}

void ParallelReplayEngine::FlushMachines(const std::vector<int>& machine_ids) {
  ++stats_.flushes;
  // Flushing the owning workers over-waits (their queues may hold other
  // machines' commits) but is simple and safe; dedupe so shared workers
  // flush once.
  std::vector<int> workers;
  workers.reserve(machine_ids.size());
  for (const int machine_id : machine_ids) {
    workers.push_back(WorkerForMachine(machine_id));
  }
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  for (const int worker : workers) {
    pool_.Flush(worker);
  }
  if (buffer_ != nullptr) {
    buffer_->Drain();  // opportunistic: bound the reorder window
  }
}

void ParallelReplayEngine::FlushAll() {
  ++stats_.flushes;
  pool_.FlushAllWorkers();
  if (buffer_ != nullptr) {
    buffer_->Drain();
    // Every commit has landed, so every hole was ready: a stalled slot
    // here means the merge stage lost a sequence number.
    buffer_->CheckDrained();
  }
}

}  // namespace numaplace
