// Parallel fleet replay with a deterministic merge stage.
//
// The serial replay (FleetScheduler::Replay) interleaves three kinds of
// work: coordinator-only *decisions* (admission, target choice, fleet
// bookkeeping), per-machine *commits* (MachineScheduler::Submit), and
// per-machine *read-only* batch work (clock sync, previews, performance
// snapshots). Only the first kind orders the simulation; the other two are
// embarrassingly parallel across machines. ParallelReplayEngine exploits
// exactly that split:
//
//   - Decisions stay on the coordinator thread, in trace order. Same-
//     instant ContainerArrival events are admitted and routed there; the
//     fleet's decision-time bookkeeping (membership, domain occupancy)
//     updates before the next decision runs, so every decision sees the
//     same state it would have seen serially.
//   - The chosen machine's commit is enqueued — as a PendingDispatch
//     ticket — on the worker owning that machine's dispatch cell. One
//     worker per cell group (cell % threads) keeps each cell's commits
//     FIFO and single-writer, so two same-instant arrivals routed to one
//     machine serialize naturally.
//   - Batch work (SyncClocks, preview fills, per-machine performance
//     snapshots) fans out over all workers between decisions, behind the
//     fleet's flush barriers.
//
// Determinism is restored at the merge stage: every observer callback is
// sequence-numbered at decision time by a SequencingObserver and drained
// through an OrderedObserverBuffer (src/telemetry/ordered.h), with each
// deferred commit holding a reserved hole at its serial position. Telemetry
// spans, metrics, traces and --json output are therefore byte-identical to
// the serial replay; the engine's machinery is invisible downstream.
//
// Machine events (fail/drain/rejoin), rebalance passes and evacuations run
// at coordinator barriers between instants — the fleet flushes all workers
// before touching fleet-wide state (see FleetParallelHooks in fleet.h for
// the contract).
#ifndef NUMAPLACE_SRC_CLUSTER_PARALLEL_H_
#define NUMAPLACE_SRC_CLUSTER_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cluster/fleet.h"
#include "src/telemetry/ordered.h"

namespace numaplace {

/// A fixed pool of workers, each with its own FIFO task queue. Work routed
/// to one worker runs in enqueue order on one thread — the property the
/// engine's cell -> worker mapping relies on. Flush(w) blocks the caller
/// until worker w's queue is empty and its in-flight task finished.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int NumWorkers() const { return static_cast<int>(workers_.size()); }
  void Enqueue(int worker, std::function<void()> task);
  /// Blocks until every task enqueued to `worker` so far has finished.
  void Flush(int worker);
  /// Blocks until every queue is empty and every in-flight task finished.
  void FlushAllWorkers();

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable work_cv;   // signals the worker: task or stop
    std::condition_variable done_cv;   // signals flushers: done advanced
    std::deque<std::function<void()>> queue;
    // Counters are atomic so Flush can spin on them lock-free before
    // falling back to the condition variable: replay batches are mostly
    // microsecond-scale, and a futex sleep/wake per batch would cost more
    // than the batch itself. Increments still happen under mu, so the cv
    // predicate re-check under the lock stays race-free.
    std::atomic<uint64_t> enqueued{0};  // tasks ever enqueued
    std::atomic<uint64_t> done{0};      // tasks fully executed
    std::atomic<bool> stop{false};
    std::thread thread;
  };

  void Run(Worker* worker);

  std::vector<std::unique_ptr<Worker>> workers_;
};

struct ParallelReplayConfig {
  /// Worker threads committing and batching alongside the coordinator.
  /// Must be >= 1; the CLI maps --threads 1 to the plain serial path and
  /// only constructs an engine for 2+.
  int threads = 2;
};

/// Drives a FleetScheduler replay over a worker pool. Install-once,
/// replay-many: each Replay/ReplayWithEvaluation call installs the engine
/// as the fleet's parallel hooks for its duration and removes them on
/// return, so the same fleet can run serial and parallel replays
/// back-to-back (the equivalence tests do exactly that on twin fleets).
class ParallelReplayEngine final : public FleetParallelHooks {
 public:
  ParallelReplayEngine(FleetScheduler* fleet, const ParallelReplayConfig& config);
  ~ParallelReplayEngine() override;

  /// Mirrors FleetScheduler::Replay, parallelized. Observer callbacks
  /// arrive in the exact serial order.
  void Replay(const EventStream& trace, EventObserver* observer = nullptr);

  /// Mirrors FleetScheduler::ReplayWithEvaluation, parallelized. The
  /// returned report is byte-identical to the serial one.
  FleetReport ReplayWithEvaluation(const EventStream& trace,
                                   EventObserver* observer = nullptr,
                                   ReplaySampler* sampler = nullptr);

  // FleetParallelHooks — called by the fleet while a replay runs.
  void RunBatch(std::vector<std::function<void()>>* tasks) override;
  void EnqueueDispatchCommit(std::shared_ptr<PendingDispatch> ticket) override;
  void FlushMachines(const std::vector<int>& machine_ids) override;
  void FlushAll() override;

  /// Cross-replay engine counters, for the property tests.
  struct Stats {
    uint64_t deferred_commits = 0;  ///< tickets routed to workers
    uint64_t batches = 0;           ///< RunBatch calls
    uint64_t batch_tasks = 0;       ///< tasks across all batches
    uint64_t flushes = 0;           ///< FlushMachines + FlushAll calls
    /// Buffer totals accumulated over finished replays: a gap-free ordered
    /// drain has sequences_drained == sequences_assigned.
    uint64_t sequences_assigned = 0;
    uint64_t sequences_drained = 0;
    uint64_t max_reorder_depth = 0;  ///< peak buffered slots in any replay
  };
  const Stats& stats() const { return stats_; }

  int threads() const { return pool_.NumWorkers(); }

 private:
  int WorkerForMachine(int machine_id) const;
  void AccumulateBufferStats(const OrderedObserverBuffer& buffer);

  FleetScheduler* fleet_;
  WorkerPool pool_;
  const std::vector<int>* cell_of_ = nullptr;  // fleet's machine -> cell map
  // Per-machine count of enqueued-but-unfinished commits. Incremented on
  // the coordinator before the ticket is enqueued, decremented by the
  // worker after the commit lands; a deferred FinishDispatch is only ready
  // once its ticket committed *and* no other commit is in flight on the
  // same machine (FinishDispatch reads that machine's live occupancy).
  std::vector<std::unique_ptr<std::atomic<int>>> pending_commits_;
  // Per-replay observer plumbing; valid only while a replay is running.
  OrderedObserverBuffer* buffer_ = nullptr;
  SequencingObserver* sequencer_ = nullptr;
  Stats stats_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_PARALLEL_H_
