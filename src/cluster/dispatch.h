// Pluggable fleet-level dispatch policies for the FleetScheduler.
//
// The paper answers "where on *this* machine should the container run"; a
// datacenter answers "which machine" first. Machine-level decision logic is
// already pluggable (src/scheduler/policy.h); this mirrors that design one
// layer up: given a DispatchContext (the request plus a per-machine
// candidate view — load, queue depth and, when the dispatcher asks for
// them, each machine's own admission preview), a DispatchPolicy returns
// machine indices in preference order. The FleetScheduler stays
// dispatch-agnostic and owns all bookkeeping.
//
// Policies are constructible by name through the DispatchRegistry. Built in:
//
//   least-loaded    lowest busy-thread fraction (ties: shorter queue, more
//                   free threads, lower machine id)
//   round-robin     cycle machine ids in submission order, load-blind
//   best-predicted  ask every machine's SchedulingPolicy for its top
//                   candidate (probes paid once per topology group through
//                   the shared ModelRegistry) and pick the machine with the
//                   highest predicted throughput-vs-goal margin
#ifndef NUMAPLACE_SRC_CLUSTER_DISPATCH_H_
#define NUMAPLACE_SRC_CLUSTER_DISPATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/scheduler/scheduler.h"
#include "src/util/registry.h"

namespace numaplace {

// One machine as seen by a dispatch decision. Pointers are non-owning and
// valid only for the duration of the call.
struct MachineCandidate {
  int machine_id = 0;
  const MachineScheduler* scheduler = nullptr;
  double utilization = 0.0;  // instantaneous busy-thread fraction
  int free_threads = 0;
  int pending = 0;           // containers queued on the machine
  // Populated by the fleet only when the dispatcher's NeedsPreviews() is
  // true: what the machine's own SchedulingPolicy would commit right now.
  bool preview_valid = false;
  MachineScheduler::AdmissionPreview preview;
};

struct DispatchContext {
  const ContainerRequest* request = nullptr;
  const std::vector<MachineCandidate>* machines = nullptr;
};

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  virtual const std::string& name() const = 0;

  // Whether the fleet must probe the container once per topology group and
  // attach per-machine admission previews before asking for a ranking.
  virtual bool NeedsPreviews() const { return false; }

  // Machine indices into *ctx.machines in preference order. When previews
  // are available the fleet submits to the first ranked machine whose
  // preview is realizable (falling back to the first-ranked machine, where
  // the container queues); preview-less dispatchers commit to their first
  // choice. May mutate policy state (round-robin's cursor), hence non-const.
  virtual std::vector<size_t> Rank(const DispatchContext& ctx) = 0;
};

// Lowest instantaneous utilization first; ties go to the shorter queue, then
// more free threads, then the lower machine id.
class LeastLoadedDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> Rank(const DispatchContext& ctx) override;
};

// Cycles through machine ids, one step per dispatch decision — the
// load-blind baseline every comparison starts from. The cycle runs over
// stable machine ids, so machines filtered from one decision (container too
// large) do not skew the rotation of the next.
class RoundRobinDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> Rank(const DispatchContext& ctx) override;

 private:
  int next_machine_id_ = 0;
};

// Highest predicted margin (top candidate's predicted throughput / decision
// goal, saturated at the goal) among machines whose preview is realizable,
// ties toward the least-loaded machine; machines with model-free policies
// rank by realizability alone, and unrealizable machines come last in
// least-loaded order.
class BestPredictedDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  bool NeedsPreviews() const override { return true; }
  std::vector<size_t> Rank(const DispatchContext& ctx) override;
};

// Name -> factory registry, the same FactoryRegistry machinery as the
// machine-level PolicyRegistry. The built-ins above are pre-registered;
// plugins may Register additional names at startup.
class DispatchRegistry : public FactoryRegistry<DispatchPolicy> {
 public:
  DispatchRegistry() : FactoryRegistry("dispatch policy") {}

  // The process-wide registry (built-ins registered on first use).
  static DispatchRegistry& Global();
};

// Shorthand for DispatchRegistry::Global().Make(name).
std::unique_ptr<DispatchPolicy> MakeDispatchPolicy(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_DISPATCH_H_
