// Pluggable fleet-level dispatch policies for the FleetScheduler.
//
// The paper answers "where on *this* machine should the container run"; a
// datacenter answers "which machine" first. Machine-level decision logic is
// already pluggable (src/scheduler/policy.h); this mirrors that design one
// layer up: given a DispatchContext (the request plus a per-machine
// candidate view — load, queue depth and, when the dispatcher asks for
// them, each machine's own admission preview), a DispatchPolicy returns
// machine indices in preference order. The FleetScheduler stays
// dispatch-agnostic and owns all bookkeeping.
//
// Policies are constructible by name through the DispatchRegistry. Built in:
//
//   least-loaded    lowest busy-thread fraction (ties: shorter queue, more
//                   free threads, lower machine id)
//   round-robin     cycle machine ids in submission order, load-blind
//   best-predicted  ask every machine's SchedulingPolicy for its top
//                   candidate (probes paid once per topology group through
//                   the shared ModelRegistry) and pick the machine with the
//                   highest predicted throughput-vs-goal margin
//   sharded         two-level power-of-d-choices for 100+ machine fleets:
//                   partition machines into cells, sample d cells and run
//                   the inner per-machine previews only within the sampled
//                   cells — O(machines/cells * d) preview cost instead of
//                   O(machines)
#ifndef NUMAPLACE_SRC_CLUSTER_DISPATCH_H_
#define NUMAPLACE_SRC_CLUSTER_DISPATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/scheduler/scheduler.h"
#include "src/util/registry.h"
#include "src/util/rng.h"

namespace numaplace {

class FailureDomainTopology;
class DomainOccupancy;

/// Static machine -> cell partition shared by the sharded dispatcher and
/// the fleet's per-cell capacity index (src/cluster/capacity_index.h).
/// Built once at BindMembership time; never rebuilt on availability churn,
/// so structures derived from it survive fail/drain/rejoin cycles.
struct CellLayout {
  /// Machine ids per cell, ascending within each cell.
  std::vector<std::vector<int>> cells;
  /// Machine id -> cell index.
  std::vector<int> cell_of;

  int NumCells() const { return static_cast<int>(cells.size()); }
  int NumMachines() const { return static_cast<int>(cell_of.size()); }
};

/// Modulo-interleaved cell layout over machine ids 0..num_machines-1:
/// machine m lands in cell m % cells, so a fleet built from repeating
/// heterogeneous blocks (amd,intel,amd,intel,...) spreads every topology
/// group over every cell. `requested_cells` 0 picks
/// round(sqrt(num_machines)) — cell count and cell size grow together and
/// per-decision scan cost stays O(sqrt(machines) * probes).
CellLayout MakeInterleavedCells(int num_machines, int requested_cells);

/// One machine as seen by a single dispatch decision. Pointers are
/// non-owning and valid only for the duration of the call.
struct MachineCandidate {
  /// Stable fleet-wide machine id (index into the fleet's machine list).
  int machine_id = 0;
  /// The machine's scheduler, for policies that inspect it directly.
  const MachineScheduler* scheduler = nullptr;
  /// Instantaneous busy-thread fraction.
  double utilization = 0.0;
  /// Hardware threads currently unoccupied.
  int free_threads = 0;
  /// Containers queued on the machine.
  int pending = 0;
  /// True when the fleet attached `preview` (only when the dispatcher's
  /// NeedsPreviews() is true).
  bool preview_valid = false;
  /// What the machine's own SchedulingPolicy would commit right now.
  MachineScheduler::AdmissionPreview preview;
};

/// The request plus the candidate machines of one dispatch decision.
struct DispatchContext {
  /// The container being dispatched (non-owning, call-scoped).
  const ContainerRequest* request = nullptr;
  /// Candidate views, ascending machine-id order (non-owning, call-scoped).
  const std::vector<MachineCandidate>* machines = nullptr;
};

/// Availability and capacity of one machine as continuously maintained by
/// the owning fleet (see DispatchPolicy::BindMembership). Unlike the
/// per-decision MachineCandidate, this view is long-lived: the fleet updates
/// `availability` in place on every fail/drain/rejoin event, so cell-aware
/// dispatchers track membership incrementally instead of re-deriving it per
/// decision.
struct MachineMembership {
  /// Stable fleet-wide machine id; equals the entry's index in the view.
  int machine_id = 0;
  /// Hardware-thread capacity (containers needing more never fit here).
  int hw_threads = 0;
  /// Non-owning handle for cheap occupancy statistics; outlives the policy.
  const MachineScheduler* scheduler = nullptr;
  /// Live availability, updated in place by the fleet on machine events.
  MachineAvailability availability = MachineAvailability::kUp;
};

/// Strategy interface: ranks the candidate machines of one dispatch
/// decision. Constructible by name through the DispatchRegistry.
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  /// Registry name of the policy (stable, used in configs and reports).
  virtual const std::string& name() const = 0;

  /// Whether the fleet must probe the container once per topology group and
  /// attach per-machine admission previews before asking for a ranking.
  virtual bool NeedsPreviews() const { return false; }

  /// Called once by the owning FleetScheduler, before the first decision,
  /// with its long-lived membership view (one entry per machine, machine-id
  /// order). The vector outlives the policy and its availability entries
  /// are updated in place on machine fail/drain/rejoin, so structures
  /// derived here — like the sharded cell index — survive availability
  /// churn without rebuilding. Flat policies ignore the call.
  virtual void BindMembership(const std::vector<MachineMembership>* /*membership*/) {}

  /// Called once by the owning FleetScheduler, after BindMembership, with
  /// its failure-domain topology and live per-service-group domain-occupancy
  /// view (src/cluster/domains.h). Both outlive the policy; the occupancy
  /// view is updated in place as containers land, move and depart. The
  /// fleet itself applies the spread dimension (rack co-location penalties
  /// in its machine choice and evacuation/rebalance target searches), so
  /// built-in policies ignore the call — the hook exists for plugin
  /// dispatchers that want domain-aware preselection or ranking.
  virtual void BindDomains(const FailureDomainTopology* /*domains*/,
                           const DomainOccupancy* /*occupancy*/) {}

  /// Machine ids the fleet should build candidates (and, under
  /// NeedsPreviews(), admission previews) for on this decision; empty means
  /// every machine. This hook is where a sharded dispatcher cuts dispatch
  /// cost: the fleet probes and previews only the preselected machines. A
  /// preselection that yields no candidate falls back to the full machine
  /// list, so a narrow (or stale) preselection can cost performance but
  /// never strands a dispatchable container.
  virtual std::vector<int> Preselect(const ContainerRequest& /*request*/) {
    return {};
  }

  /// Machine indices into *ctx.machines in preference order. When previews
  /// are available the fleet submits to the first ranked machine whose
  /// preview is realizable (falling back to the first-ranked machine, where
  /// the container queues); preview-less dispatchers commit to their first
  /// choice. May mutate policy state (round-robin's cursor), hence
  /// non-const.
  virtual std::vector<size_t> Rank(const DispatchContext& ctx) = 0;
};

/// Lowest instantaneous utilization first; ties go to the shorter queue,
/// then more free threads, then the lower machine id.
class LeastLoadedDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> Rank(const DispatchContext& ctx) override;
};

/// Cycles through machine ids, one step per dispatch decision — the
/// load-blind baseline every comparison starts from. The cycle runs over
/// stable machine ids, so machines filtered from one decision (container
/// too large) do not skew the rotation of the next.
class RoundRobinDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  std::vector<size_t> Rank(const DispatchContext& ctx) override;

 private:
  int next_machine_id_ = 0;
};

/// Highest predicted margin (top candidate's predicted throughput /
/// decision goal, saturated at the goal) among machines whose preview is
/// realizable, ties toward the least-loaded machine; machines with
/// model-free policies rank by realizability alone, and unrealizable
/// machines come last in least-loaded order.
class BestPredictedDispatch final : public DispatchPolicy {
 public:
  const std::string& name() const override;
  bool NeedsPreviews() const override { return true; }
  std::vector<size_t> Rank(const DispatchContext& ctx) override;
};

/// Tuning knobs of the sharded two-level dispatcher.
struct ShardedDispatchConfig {
  /// Number of dispatch cells the fleet is partitioned into; 0 picks
  /// round(sqrt(machines)), so cell count and cell size grow together and
  /// preview cost per decision stays O(sqrt(machines) * probes).
  int cells = 0;
  /// d of the power-of-d-choices step: eligible cells sampled per decision
  /// (clamped to the number of eligible cells). 2 is the classic sweet
  /// spot — near-uniform load at a fraction of the probing.
  int probes = 2;
  /// Registered name of the inner dispatcher that ranks candidates within
  /// the sampled cells.
  std::string inner = "best-predicted";
  /// Seed of the deterministic cell-sampling stream (decisions are
  /// reproducible run-to-run for a fixed seed and event sequence).
  uint64_t seed = 17;
};

/// Two-level "power of d choices" dispatch for 100+ machine fleets.
///
/// Machines are partitioned into cells at BindMembership time (modulo
/// assignment, so repeating heterogeneous blocks like amd,intel,amd,intel
/// spread every topology group over every cell). Each decision samples
/// `probes` cells uniformly from the cells that still hold an up machine
/// the container fits on and preselects only their member machines — so
/// occupancy probes and admission previews run on
/// O(machines/cells * probes) machines instead of all of them. The inner
/// dispatcher then picks the best machine within that union (level two:
/// its per-machine comparison — load, or predicted margin with load
/// tie-breaks — is the choice among the sampled cells, a sharper signal
/// than any cell-aggregate statistic). Cell membership is static;
/// availability flips (fail/drain/rejoin) are read live from the fleet's
/// membership view, so a failed machine drops out of its cell's eligible
/// set and returns to the same cell on rejoin.
class ShardedDispatchPolicy final : public DispatchPolicy {
 public:
  explicit ShardedDispatchPolicy(ShardedDispatchConfig config = {});

  const std::string& name() const override;
  bool NeedsPreviews() const override;
  void BindMembership(const std::vector<MachineMembership>* membership) override;
  std::vector<int> Preselect(const ContainerRequest& request) override;
  std::vector<size_t> Rank(const DispatchContext& ctx) override;

  /// Cells actually built (valid after BindMembership).
  int NumCells() const { return layout_.NumCells(); }
  /// Cell holding the machine; stable across fail/drain/rejoin.
  int CellOf(int machine_id) const;
  /// The full partition (valid after BindMembership) — the fleet's
  /// capacity index mirrors it so rebalance/evacuation target searches
  /// and dispatch sampling agree on what a cell is.
  const CellLayout& layout() const { return layout_; }
  /// Cells sampled by the most recent Preselect, in sample order.
  const std::vector<int>& LastSampledCells() const { return last_sampled_; }
  /// The configuration the policy was built with.
  const ShardedDispatchConfig& config() const { return config_; }

 private:
  ShardedDispatchConfig config_;
  std::unique_ptr<DispatchPolicy> inner_;
  const std::vector<MachineMembership>* membership_ = nullptr;
  CellLayout layout_;  // static partition built at BindMembership time
  std::vector<int> last_sampled_;
  Rng rng_;
};

/// Name -> factory registry, the same FactoryRegistry machinery as the
/// machine-level PolicyRegistry. The built-ins above are pre-registered;
/// plugins may Register additional names at startup.
class DispatchRegistry : public FactoryRegistry<DispatchPolicy> {
 public:
  DispatchRegistry() : FactoryRegistry("dispatch policy") {}

  /// The process-wide registry (built-ins registered on first use).
  static DispatchRegistry& Global();
};

/// Shorthand for DispatchRegistry::Global().Make(name). Unknown names throw
/// std::logic_error listing every registered policy.
std::unique_ptr<DispatchPolicy> MakeDispatchPolicy(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_DISPATCH_H_
