// Fleet layer: a cluster scheduler over N per-machine schedulers.
//
// The FleetScheduler owns one MachineScheduler per machine of a (possibly
// heterogeneous) fleet and consumes a unified FleetEvent stream, one
// Step() at a time:
//
//   * ContainerArrival is routed to an available machine by a pluggable
//     DispatchPolicy (src/cluster/dispatch.h) — least-loaded, round-robin,
//     best-predicted (asks every machine's own SchedulingPolicy for its top
//     candidate and picks the highest predicted margin), or sharded (cuts
//     that preview walk to a sampled subset of dispatch cells on 100+
//     machine fleets). When no available machine can hold the container at
//     all, it waits fleet-wide (UnplacedIds) until capacity returns;
//   * machines of the same topology share one ModelRegistry, so a
//     container's two probe runs are paid once per topology group fleet-wide
//     — dispatch previews, the dispatched machine's admission and any later
//     same-group move all reuse the cached prediction;
//   * ContainerDeparture first runs the machine's own re-placement pass,
//     then a cross-machine RebalancePass: queued containers and degraded
//     incumbents are considered for a move to another machine, the move is
//     charged with the §7 migration cost model (src/migration) plus a
//     configurable network-copy penalty, and only moves whose predicted
//     gain over the rebalance horizon beats that modeled cost are proposed.
//     Target searches (rebalance, drain, failover — all through one shared
//     gain-over-cost helper) consult the per-cell capacity index
//     (src/cluster/capacity_index.h) first and preview only machines inside
//     the most promising cells, so fleet operations stay
//     O(machines/cells * probes) previews per decision like dispatch; the
//     whole pass is skipped when the index's capacity-changed flag is clear
//     (a no-op pass performs zero previews);
//   * MachineFail / MachineDrain take the machine out of dispatch and
//     evacuate it through the same gain/cost machinery. A failed machine's
//     containers lose their state: nothing to migrate or copy, so they are
//     re-dispatched (instant restart in the model) or requeued. A draining
//     machine's containers are alive: each pays the §7 migration estimate
//     plus the network copy to move. Either way, evacuees no up machine can
//     admit go back through dispatch and wait. MachineRejoin restores the
//     machine and immediately runs a RebalancePass so waiting work lands on
//     the returned capacity.
//
// Consumers watch admissions, queueing, moves, evacuations and availability
// flips through the EventObserver (src/scheduler/events.h); Replay is a
// thin loop over Step.
#ifndef NUMAPLACE_SRC_CLUSTER_FLEET_H_
#define NUMAPLACE_SRC_CLUSTER_FLEET_H_

#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/admission.h"
#include "src/cluster/capacity_index.h"
#include "src/cluster/dispatch.h"
#include "src/cluster/domains.h"
#include "src/migration/migration.h"
#include "src/model/registry.h"
#include "src/scheduler/events.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/topology/topology.h"
#include "src/workloads/trace.h"

namespace numaplace {

/// One machine of the fleet as configured by the caller. Machines with
/// equal topology names form a topology group sharing a ModelRegistry; the
/// caller registers one trained model per (group, vCPU count) via
/// GroupRegistry().
struct MachineSpec {
  explicit MachineSpec(Topology machine_topo, SchedulerConfig scheduler_config = {})
      : topo(std::move(machine_topo)), scheduler(std::move(scheduler_config)) {}

  /// The machine's hardware topology (also names its topology group).
  Topology topo;
  /// Per-machine scheduler configuration: policy name, baseline placement
  /// id (the paper uses #1 on AMD, #2 on Intel), interconnect concern,
  /// margins.
  SchedulerConfig scheduler;
};

/// Fleet-wide configuration: dispatch policy, rebalancing gates and the
/// cost model of cross-machine moves.
struct FleetConfig {
  /// Name of the DispatchPolicy to instantiate through the DispatchRegistry.
  std::string dispatch = "least-loaded";
  /// Run the cross-machine RebalancePass after every departure.
  bool rebalance_on_departure = true;
  /// Cross-machine moves copy the container's memory (anon + page cache)
  /// over the network; seconds per GB on top of the §7 migration estimate.
  double network_seconds_per_gb = 0.5;
  /// A move's predicted throughput gain is credited over this horizon (the
  /// expected residual lifetime under the trace generator's exponential
  /// lifetimes) and must beat the ops lost while the move runs.
  double rebalance_horizon_seconds = 600.0;
  /// A degraded incumbent moves only for at least this relative prediction
  /// gain (bounds cross-machine churn; queued containers are exempt —
  /// running anywhere beats waiting).
  double rebalance_min_gain = 0.1;
  /// Measurement noise of the per-machine simulators; machine m draws from
  /// noise_seed + m, so identical boxes still measure like distinct
  /// hardware.
  double noise_sigma = 0.01;
  /// Base seed of the per-machine noise streams.
  uint64_t noise_seed = 5;
  /// Route rebalance and evacuation target searches through the per-cell
  /// capacity index (summary-before-scan): preview only machines inside
  /// the most promising cells. false restores the legacy full-scan search
  /// previewing every up machine with enough free threads — the reference
  /// path the equivalence test replays against.
  bool sharded_fleet_ops = true;
  /// Capacity-index cell count; 0 mirrors the sharded dispatcher's layout
  /// when one is active, else builds the same modulo layout with
  /// round(sqrt(machines)) cells.
  int fleet_cells = 0;
  /// Most promising cells consulted per rebalance/evacuation target
  /// search; 0 descends into every eligible cell, which previews exactly
  /// the machines the full-scan path would (byte-identical outcomes).
  int fleet_probes = 2;
  /// Failure-domain layout (src/cluster/domains.h): racks of the uniform
  /// machine -> rack -> zone topology, 0 for the round(sqrt(machines))
  /// default. The topology always exists — domain-scoped events need it —
  /// but costs nothing unless the spread knobs below are set. Explicit
  /// layouts go through ProvideDomains.
  int domain_racks = 0;
  /// Zones of the uniform layout, 0 for the round(sqrt(racks)) default.
  int domain_zones = 0;
  /// Spread dimension: rack co-location penalty per replica of the
  /// container's service group already in a candidate's rack. Dispatch adds
  /// spread_weight * count to a candidate's rank position; fleet-op target
  /// searches divide a target's gain-over-cost surplus by
  /// (1 + spread_weight * count). 0 (with spread_max_per_rack 0) disables
  /// the dimension entirely — decisions are byte-identical to a fleet
  /// without it.
  double spread_weight = 0.0;
  /// Hard cap: candidates whose rack already holds this many replicas of
  /// the group are skipped by fleet-op target searches and heavily
  /// penalized (never preferred over an uncapped candidate) at dispatch —
  /// soft there, so a container is still placed when every rack is capped.
  /// 0 means no cap.
  int spread_max_per_rack = 0;
  /// Name of the AdmissionPolicy to instantiate through the
  /// AdmissionRegistry; empty disables the admission layer entirely —
  /// every arrival proceeds straight to dispatch and replays are
  /// byte-identical to a fleet built before the layer existed.
  std::string admission;
  /// Service-group name -> tier name ("premium" / "standard" /
  /// "best-effort"). Overrides the `<tier>:<base>` naming convention for
  /// the listed groups (keys are full group names, prefix included).
  /// Unknown tier names CHECK-fail at construction.
  std::map<std::string, std::string> tier_overrides;
  /// Fleet-wide waiting count at which deferring admission policies switch
  /// to rejecting (the tiered policy's standard-tier bound).
  int admission_defer_limit = 8;
};

/// Dispatch, queueing, rebalancing and probe counters accumulated over the
/// fleet's lifetime.
struct FleetStats {
  int submitted = 0;
  int dispatched_immediately = 0;  // admitted by the dispatched machine at once
  int queued = 0;                  // left waiting at submission (machine or fleet)
  int queue_admissions = 0;        // previously queued containers that got placed
  double queue_wait_seconds = 0.0; // total wait of those admissions
  int rebalance_moves = 0;         // departure-triggered cross-machine moves
  int evacuations = 0;             // machine fail/drain events processed
  int evacuation_moves = 0;        // evacuees rehomed straight onto another machine
  int evacuation_requeues = 0;     // evacuees sent back through dispatch to wait
  // evacuation_moves by reason: drain_moves paid the §7 migration + network
  // copy, failover_moves restarted from lost state. Together with
  // rebalance_moves these partition the rebalance_log by
  // RebalanceMove::Reason.
  int drain_moves = 0;
  int failover_moves = 0;
  double cross_machine_move_seconds = 0.0;  // migration + network, all moves
  double network_copy_seconds = 0.0;
  int fleet_probe_runs = 0;        // dispatch/rebalance probes (per group)
  double fleet_probe_seconds = 0.0;
  // Admission previews built for dispatch decisions; the sharded
  // dispatcher's whole point is keeping this sublinear in fleet size.
  int dispatch_previews = 0;
  // Dispatch decisions that built candidates (arrivals, evacuation
  // requeues, unplaced retries) — the denominator of the dispatch
  // preview-per-decision bound.
  int dispatch_decisions = 0;
  // Admission previews built by RebalancePass target searches, and the
  // searches themselves; previews / decisions stays O(machines/cells * d)
  // under sharded fleet ops.
  int rebalance_previews = 0;
  int rebalance_decisions = 0;
  // The same pair for evacuation (fail/drain) target searches.
  int evac_previews = 0;
  int evac_decisions = 0;
  // Host wall time inside FindBestTarget — the cost the capacity index
  // makes sublinear. Rebalance/evac search throughput is
  // (rebalance_decisions + evac_decisions) / fleet_op_search_seconds.
  double fleet_op_search_seconds = 0.0;
  // RebalancePass invocations that ran vs. were skipped because the
  // capacity index's dirty flag proved them no-ops (zero previews).
  int rebalance_passes = 0;
  int rebalance_passes_skipped = 0;
  // Admission-layer tallies, indexed by SloTier (all zero with admission
  // off). tier_arrivals partitions into admitted + deferred + rejected;
  // tier_preempted counts the best-effort victims premium arrivals shed
  // (each victim is also counted in tier_rejected — preemption is how the
  // rejection happened, not a separate fate).
  std::array<int, kNumSloTiers> tier_arrivals{};
  std::array<int, kNumSloTiers> tier_admitted{};
  std::array<int, kNumSloTiers> tier_deferred{};
  std::array<int, kNumSloTiers> tier_rejected{};
  std::array<int, kNumSloTiers> tier_preempted{};
};

/// Fleet-wide evaluation of one replayed trace (the cluster analog of
/// TenancyReport). Queued and fleet-wide-waiting containers count as
/// attaining nothing — a fleet that parks work while other machines idle
/// pays for it here. Per-decision outcomes flow through the observer.
struct FleetReport {
  double goal_attainment = 0.0;
  double container_seconds_at_goal = 0.0;
  double mean_utilization = 0.0;       // thread-weighted across machines
  double utilization_min = 0.0;        // spread of per-machine time averages
  double utilization_max = 0.0;
  double mean_queue_wait_seconds = 0.0;
  int decisions = 0;
  double wall_seconds = 0.0;
  std::vector<double> machine_utilizations;
  // Per-tier goal attainment over the tier's live container-seconds
  // (1.0 when the tier never had a live container), indexed by SloTier.
  // Aggregate fields above are computed exactly as before the admission
  // layer — these are parallel accumulators, not a re-derivation.
  std::array<double, kNumSloTiers> tier_goal_attainment{};
  std::array<double, kNumSloTiers> tier_container_seconds{};
};

/// A dispatch commit decided on the coordinator but executed on a worker:
/// the coordinator fixed the target machine (admission + dispatch ordering
/// is unchanged), the worker runs the machine-local Submit, and the
/// coordinator finishes the fleet-side bookkeeping (capacity index, wait
/// set, observer callbacks) in decision order when the reorder buffer
/// reaches the ticket. `committed` is the worker -> coordinator handoff.
struct PendingDispatch {
  ContainerRequest request;
  int machine_id = kNoMachine;
  double now = 0.0;
  /// Observer captured at decision time, so the drained callbacks pass
  /// through the same chain (e.g. the replay's AdmissionCounter) a serial
  /// dispatch would.
  EventObserver* observer = nullptr;
  ScheduleOutcome outcome;
  std::atomic<bool> committed{false};
};

/// The hooks a parallel replay engine (src/cluster/parallel.h) installs on a
/// FleetScheduler via SetParallelHooks. With no hooks installed (the
/// default) the fleet runs exactly the serial code path. The contract:
///
///   * RunBatch runs independent tasks, each touching a different machine,
///     possibly concurrently, and returns when all are done (a barrier);
///   * EnqueueDispatchCommit queues a decided dispatch: some worker calls
///     FleetScheduler::CommitDispatch on the ticket, and the engine calls
///     FleetScheduler::FinishDispatch in decision order once the ticket's
///     machine has no commit in flight;
///   * FlushMachines waits until every queued commit targeting the given
///     machines has run (their schedulers are safe to read);
///   * FlushAll waits until every queued commit ran AND every ticket was
///     finished and every buffered observer callback was delivered — after
///     it, fleet and observer state is exactly what a serial replay of the
///     same prefix would have produced.
class FleetParallelHooks {
 public:
  virtual ~FleetParallelHooks() = default;
  virtual void RunBatch(std::vector<std::function<void()>>* tasks) = 0;
  virtual void EnqueueDispatchCommit(std::shared_ptr<PendingDispatch> ticket) = 0;
  virtual void FlushMachines(const std::vector<int>& machine_ids) = 0;
  virtual void FlushAll() = 0;
};

/// Cluster scheduler owning one MachineScheduler per machine; see the file
/// comment for the event-processing semantics.
class FleetScheduler {
 public:
  /// The dispatch policy is built from config.dispatch via the
  /// DispatchRegistry; the second form injects an explicitly constructed
  /// (e.g. unregistered plugin, or a ShardedDispatchPolicy with custom
  /// cells/probes) dispatcher and ignores config.dispatch.
  explicit FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config = {});
  FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config,
                 std::unique_ptr<DispatchPolicy> dispatch);

  /// Number of machines the fleet was built with (fixed for its lifetime).
  int NumMachines() const { return static_cast<int>(machines_.size()); }
  /// The machine's scheduler (CHECKs the id).
  MachineScheduler& machine(int machine_id);
  const MachineScheduler& machine(int machine_id) const;
  /// The machine's hardware topology.
  const Topology& topology(int machine_id) const;
  /// The machine's multi-tenant evaluation model.
  const MultiTenantModel& multi_model(int machine_id) const;
  /// Current availability (kUp machines receive dispatches).
  MachineAvailability availability(int machine_id) const;

  /// Topology-group names in machine order (deduplicated).
  std::vector<std::string> GroupNames() const;
  /// The shared registry of one group — register trained models here before
  /// submitting containers to machines whose policy uses the model.
  ModelRegistry& GroupRegistry(const std::string& group);

  /// Injects a precomputed important-placement set into every machine of
  /// the group (otherwise each machine generates sets lazily).
  void ProvidePlacements(const std::string& group, const ImportantPlacementSet& ips);

  /// Replaces the fleet's failure-domain topology with an explicit layout
  /// (the constructor builds the uniform one from config.domain_racks /
  /// domain_zones). CHECKs the machine count matches and that no container
  /// is live yet — domain membership, like cell membership, is fixed before
  /// traffic.
  void ProvideDomains(FailureDomainTopology domains);

  /// Processes one FleetEvent — the core every other entry point loops over.
  void Step(const FleetEvent& event, EventObserver* observer = nullptr);

  /// Thin loop over Step.
  void Replay(const EventStream& trace, EventObserver* observer = nullptr);

  /// Dispatches the container to an available machine and submits it there;
  /// the container queues on that machine when nothing fits anywhere, and
  /// waits fleet-wide (machine_id kNoMachine) when every machine that could
  /// hold it is failed or draining.
  FleetOutcome Submit(const ContainerRequest& request, double now = 0.0,
                      EventObserver* observer = nullptr);

  /// Removes the container (running, queued or waiting fleet-wide), then
  /// runs the departed machine's re-placement pass and the fleet
  /// RebalancePass; every placement and move is reported through the
  /// observer.
  void Depart(int container_id, double now = 0.0, EventObserver* observer = nullptr);

  /// Machine lifecycle (the Step handlers for MachineFail / MachineDrain /
  /// MachineRejoin, also callable directly). Fail and Drain evacuate the
  /// machine; Rejoin restores it and rebalances waiting work onto it.
  void Fail(int machine_id, double now = 0.0, EventObserver* observer = nullptr);
  void Drain(int machine_id, double now = 0.0, EventObserver* observer = nullptr);
  void Rejoin(int machine_id, double now = 0.0, EventObserver* observer = nullptr);

  /// Replays a merged, time-ordered fleet trace, evaluating every machine's
  /// co-running tenants with its multi-tenant model between events. When a
  /// `sampler` is given, it is called at every multiple of its
  /// IntervalSeconds() of stream time with the run-so-far attainment
  /// integrals linearly interpolated to that instant (the tenant set is
  /// constant between events, so the interpolation is exact).
  FleetReport ReplayWithEvaluation(const EventStream& trace,
                                   EventObserver* observer = nullptr,
                                   ReplaySampler* sampler = nullptr);

  /// Machine currently holding the container (running or queued),
  /// kNoMachine when the id waits fleet-wide or is not live at all.
  int MachineOf(int container_id) const;

  /// Containers waiting fleet-wide because no available machine fits them,
  /// oldest submission first.
  std::vector<int> UnplacedIds() const;

  /// Lifetime counters (see FleetStats).
  const FleetStats& stats() const { return stats_; }
  /// Every committed cross-machine move, in commit order.
  const std::vector<RebalanceMove>& rebalance_log() const { return rebalance_log_; }
  /// One report per processed fail/drain event.
  const std::vector<EvacuationReport>& evacuation_log() const { return evacuations_; }
  /// The configuration the fleet was built with.
  const FleetConfig& config() const { return config_; }
  /// The active dispatch policy (read-only; the fleet owns it).
  const DispatchPolicy& dispatch() const { return *dispatch_; }
  /// The per-cell capacity index (read-only; kept current by the fleet at
  /// every occupancy/availability-changing point).
  const CapacityIndex& capacity_index() const { return capacity_index_; }
  /// The failure-domain topology (uniform by default; see ProvideDomains).
  const FailureDomainTopology& domains() const { return *domains_; }
  /// Live per-service-group domain occupancy, updated at every point a
  /// container gains, loses or changes its machine.
  const DomainOccupancy& domain_occupancy() const { return *domain_occupancy_; }
  /// Whether either spread knob is set — when false, dispatch and fleet-op
  /// decisions are byte-identical to a fleet without the spread dimension.
  bool SpreadActive() const {
    return config_.spread_weight > 0.0 || config_.spread_max_per_rack > 0;
  }
  /// Whether an admission policy is configured — when false, every arrival
  /// proceeds straight to dispatch and replays are byte-identical to a
  /// fleet without the admission layer.
  bool AdmissionActive() const { return admission_ != nullptr; }
  /// The active admission policy (CHECKs AdmissionActive(); read-only, the
  /// fleet owns it).
  const AdmissionPolicy& admission() const;
  /// SLO tier of a workload or service-group name: the FleetConfig
  /// tier_overrides entry for its service group when present, else the
  /// `<tier>:<base>` naming convention, else standard.
  SloTier TierOf(const std::string& workload_name) const;
  /// Container ids the admission layer rejected (arrival sheds and
  /// preemption victims); their later trace departure events are no-ops.
  const std::set<int>& RejectedIds() const { return rejected_; }
  /// Domains-to-loss (distinct occupied domains of `scope`) per service
  /// group with at least one placed replica, name-ascending — the fleet's
  /// availability scoreboard: a group at k survives any k-1 simultaneous
  /// domain failures.
  std::map<std::string, int> DomainsToLoss(DomainScope scope) const;

  /// Per-machine time-averaged utilizations, machine order.
  std::vector<double> TimeAveragedUtilizations() const;

  /// Installs (or, with nullptr, removes) the parallel replay hooks. While
  /// hooks are installed, Submit-path dispatch commits are deferred to the
  /// engine and the fleet's own Submit return value carries a placeholder
  /// outcome — replay through the engine, not by calling Submit directly.
  void SetParallelHooks(FleetParallelHooks* hooks) { hooks_ = hooks; }
  /// Whether parallel hooks are currently installed.
  bool ParallelHooksInstalled() const { return hooks_ != nullptr; }

  /// Worker-side half of a deferred dispatch: runs the machine-local Submit
  /// for the ticket's decided target and publishes the outcome. The only
  /// state it touches is the target machine's scheduler (plus the group
  /// registry behind its shard locks), so commits for different machines
  /// are safe to run concurrently.
  void CommitDispatch(PendingDispatch* ticket);
  /// Coordinator-side half, called by the engine in decision order once the
  /// ticket's machine has no commit in flight: capacity-index update, wait
  /// set and queue-wait bookkeeping, submit counters, and the OnAdmission /
  /// OnQueued callback through the ticket's observer.
  void FinishDispatch(const PendingDispatch& ticket);

 private:
  struct Machine {
    std::unique_ptr<Topology> topo;  // stable address: schedulers keep pointers
    std::unique_ptr<PerformanceModel> solo;
    std::unique_ptr<MultiTenantModel> multi;
    std::unique_ptr<MachineScheduler> scheduler;
    std::string group;
    MachineAvailability availability = MachineAvailability::kUp;
  };
  struct Group {
    std::unique_ptr<ModelRegistry> registry;
    std::vector<int> machine_ids;  // first up machine runs the group's probes
  };

  // Advances every machine's stats clock to `now` so per-machine utilization
  // averages integrate over the same span. Skipped when the fleet already
  // synced to exactly `now` (AdvanceClock with dt == 0 is a bitwise no-op,
  // so the skip changes nothing on the serial path and saves the
  // same-instant barrier on the parallel one).
  void SyncClocks(double now);

  // Probes the container once for the group when its registry lacks a
  // prediction and any up machine needs the model, charging the fleet stats.
  void EnsureGroupProbes(const std::string& group, const ContainerRequest& request);

  // The machine EnsureGroupProbes would run the group's probes on right now
  // (its first up, model-using member), kNoMachine when the group has none —
  // the parallel path must flush that machine before probing through it.
  int GroupProberMachine(const std::string& group) const;

  // Candidate views (available machines the container fits on — possibly
  // none) for one dispatch decision; probes the groups of the candidate
  // machines first when the dispatcher needs previews. `only` restricts the
  // build to those machine ids (the dispatcher's preselection — cell-aware
  // dispatchers keep this far smaller than the fleet); nullptr means every
  // machine. A full build CHECK-fails only when the container is larger
  // than every machine of the fleet, up or not — a configuration error.
  std::vector<MachineCandidate> BuildCandidates(const ContainerRequest& request,
                                                bool with_previews,
                                                const std::vector<int>* only = nullptr);

  // Runs the dispatch policy over the candidates (non-empty) and returns
  // the chosen machine id.
  int ChooseMachine(const ContainerRequest& request,
                    std::vector<MachineCandidate>& candidates);

  // Who asked for the dispatch. Submit-path dispatches (fresh arrivals) may
  // be deferred to a worker under parallel hooks; fleet-op dispatches
  // (evacuation requeues, the unplaced drain) run at coordinator barriers
  // and need the outcome synchronously, so they always commit inline.
  enum class DispatchOrigin { kSubmit, kFleetOp };

  // Dispatch core shared by Submit, evacuation requeues and the unplaced
  // drain: asks the policy for a preselection, routes through the dispatch
  // policy, queueing on the chosen machine or fleet-wide when no available
  // machine fits. The container's submit_time_ entry must already exist.
  // Under parallel hooks a kSubmit dispatch returns a placeholder outcome
  // (the commit is deferred); kFleetOp commits inline either way.
  FleetOutcome Dispatch(const ContainerRequest& request, double now,
                        EventObserver* observer,
                        DispatchOrigin origin = DispatchOrigin::kFleetOp);

  // The post-commit tail of a dispatch, shared by the serial path and
  // FinishDispatch: capacity-index notification, wait-set and queue-wait
  // bookkeeping, the OnAdmission / OnQueued callback, and (for Submit-path
  // dispatches) the dispatched_immediately / queued counters.
  void FinishDispatchTail(int machine_id, const ScheduleOutcome& outcome, double now,
                          EventObserver* observer, bool from_submit);

  // Queue-wait bookkeeping for an admission outcome observed at `now`.
  void RecordAdmission(const ScheduleOutcome& outcome, double now);

  // The admission layer's saturation summary for one arrival, assembled
  // from the capacity index's per-cell summaries and the wait set.
  AdmissionContext BuildAdmissionContext(const ContainerRequest& request,
                                         SloTier tier) const;

  // Sheds the oldest queued best-effort container (waiting_ order — a
  // sorted set, so the choice is deterministic) to make room for a premium
  // arrival: removed through the same machine-level Depart primitive the
  // evacuation path uses (a queued container has no state, so the shed is
  // free), counted as a best-effort rejection, and its future trace
  // departure becomes a no-op. No-op when no queued best-effort container
  // exists.
  void PreemptQueuedBestEffort(double now, EventObserver* observer);

  // Re-dispatches fleet-wide waiting containers whenever capacity may have
  // returned (start of every RebalancePass that the capacity index's dirty
  // flag lets run).
  void DrainUnplaced(double now, EventObserver* observer);

  // Cross-machine moves of queued and degraded containers. Skipped
  // entirely — zero previews — when the capacity index's dirty flag is
  // clear: nothing capacity-relevant changed since the last pass, so the
  // pass would reproduce its decisions.
  void RebalancePass(double now, EventObserver* observer);

  // One cross-machine target search, shared by rebalance, drain and
  // failover: scores candidate targets by gain-over-cost surplus and
  // returns the best machine id (-1 when no move beats its modeled cost),
  // filling `best_move` with the winning move's gain/cost model.
  struct TargetSearch {
    const ContainerRequest* request = nullptr;
    int exclude_machine = kNoMachine;  // the mover's source, never a target
    double current_abs = 0.0;   // producing rate now (0: queued/state lost)
    double goal_abs = 0.0;      // gain fallback under model-free targets
    bool improvement_only = false;  // live incumbent: min-gain gated delta
    bool pay_migration = false;     // live container: §7 estimate + copy
    bool was_queued = false;
    RebalanceMove::Reason reason = RebalanceMove::Reason::kRebalance;
    int* previews = nullptr;    // stats counter charged per preview
  };
  int FindBestTarget(const TargetSearch& search, RebalanceMove* best_move);

  // Candidate target machine ids (ascending) for one fleet-op decision:
  // up machines != exclude_machine with >= vcpus free hardware threads.
  // Under sharded fleet ops only machines inside the most promising cells
  // (capacity index, config.fleet_probes) are returned, falling back to
  // the full walk when the index proves no cell can fit the request.
  std::vector<int> SelectFleetOpTargets(const ContainerRequest& request,
                                        int exclude_machine) const;

  // Replicas of the request's service group already in the machine's rack —
  // the co-location count the spread knobs act on.
  int RackColocation(const ContainerRequest& request, int machine_id) const;

  // Availability flip (mirrored into the dispatch membership view) +
  // evacuation/rebalance shared by Fail/Drain/Rejoin.
  void SetAvailability(int machine_id, MachineAvailability availability, double now,
                       EventObserver* observer);

  // Empties a failed (graceful=false) or draining (graceful=true) machine,
  // rehoming every container it can and requeueing the rest.
  void Evacuate(int machine_id, bool graceful, double now, EventObserver* observer);

  const Migrator& MigratorFor(const ContainerRequest& request) const;

  FleetConfig config_;
  std::unique_ptr<DispatchPolicy> dispatch_;
  // Null unless config_.admission names a policy; see AdmissionActive().
  std::unique_ptr<AdmissionPolicy> admission_;
  // config_.tier_overrides parsed at construction (group -> tier).
  std::map<std::string, SloTier> tier_map_;
  // Ids the admission layer shed (rejected arrivals, preempted victims):
  // their trace departure events are silent no-ops. Always empty with
  // admission off.
  std::set<int> rejected_;
  // Tier of every live or waiting container, for the per-tier attainment
  // accumulators in ReplayWithEvaluation. Only maintained while admission
  // is active (the per-tier report is all-standard otherwise).
  std::map<int, SloTier> tier_of_;
  std::vector<Machine> machines_;
  // Long-lived membership view handed to the dispatch policy via
  // BindMembership; availability entries mirror machines_[].availability.
  // Heap-allocated so the pointer the policy holds survives moving the
  // fleet (factory helpers return FleetScheduler by value).
  std::unique_ptr<std::vector<MachineMembership>> membership_;
  // Per-cell capacity summaries over membership_, updated in place at
  // every occupancy/availability-changing point (see capacity_index.h).
  CapacityIndex capacity_index_;
  // Hardware threads across currently-up machines, maintained by
  // SetAvailability — AdmissionContext::total_threads without a machine
  // walk per arrival.
  long long up_threads_ = 0;
  // Failure-domain topology handed to the dispatch policy via BindDomains;
  // heap-allocated for the same reason as membership_ (pointer stability
  // across moves of the fleet).
  std::unique_ptr<FailureDomainTopology> domains_;
  // Per-service-group domain occupancy, updated alongside machine_of_;
  // heap-allocated likewise (BindDomains hands the policy its address).
  std::unique_ptr<DomainOccupancy> domain_occupancy_;
  std::map<std::string, Group> groups_;
  std::map<int, int> machine_of_;      // containers live on some machine
  std::map<int, ContainerRequest> unplaced_;  // waiting fleet-wide, no machine
  std::map<int, double> submit_time_;
  std::set<int> waiting_;              // submitted but not yet placed
  // Parallel replay hooks (null = serial path; see FleetParallelHooks).
  FleetParallelHooks* hooks_ = nullptr;
  // Instant every machine clock was last synced to, so same-instant events
  // skip the no-op machine walk (and, under hooks, the barrier it implies).
  double last_synced_ = -std::numeric_limits<double>::infinity();
  FleetStats stats_;
  std::vector<RebalanceMove> rebalance_log_;
  std::vector<EvacuationReport> evacuations_;
  FastMigrator fast_migrator_;
  ThrottledMigrator throttled_migrator_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_FLEET_H_
