// Fleet layer: a cluster scheduler over N per-machine schedulers.
//
// The FleetScheduler owns one MachineScheduler per machine of a (possibly
// heterogeneous) fleet and consumes a single merged arrival/departure trace:
//
//   * each arrival is routed to a machine by a pluggable DispatchPolicy
//     (src/cluster/dispatch.h) — least-loaded, round-robin, or
//     best-predicted, which asks every machine's own SchedulingPolicy for
//     its top candidate and picks the highest predicted margin;
//   * machines of the same topology share one ModelRegistry, so a
//     container's two probe runs are paid once per topology group fleet-wide
//     — dispatch previews, the dispatched machine's admission and any later
//     same-group move all reuse the cached prediction;
//   * departures first run the machine's own re-placement pass, then a
//     cross-machine RebalancePass: queued containers and degraded
//     incumbents are considered for a move to another machine, the move is
//     charged with the §7 migration cost model (src/migration) plus a
//     configurable network-copy penalty, and only moves whose predicted
//     gain over the rebalance horizon beats that modeled cost are proposed.
#ifndef NUMAPLACE_SRC_CLUSTER_FLEET_H_
#define NUMAPLACE_SRC_CLUSTER_FLEET_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/dispatch.h"
#include "src/migration/migration.h"
#include "src/model/registry.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/topology/topology.h"
#include "src/workloads/trace.h"

namespace numaplace {

// One machine of the fleet as configured by the caller. Machines with equal
// topology names form a topology group sharing a ModelRegistry; the caller
// registers one trained model per (group, vCPU count) via GroupRegistry().
struct MachineSpec {
  explicit MachineSpec(Topology machine_topo, SchedulerConfig scheduler_config = {})
      : topo(std::move(machine_topo)), scheduler(std::move(scheduler_config)) {}

  Topology topo;
  // Per-machine scheduler configuration: policy name, baseline placement id
  // (the paper uses #1 on AMD, #2 on Intel), interconnect concern, margins.
  SchedulerConfig scheduler;
};

struct FleetConfig {
  // Name of the DispatchPolicy to instantiate through the DispatchRegistry.
  std::string dispatch = "least-loaded";
  // Run the cross-machine RebalancePass after every departure.
  bool rebalance_on_departure = true;
  // Cross-machine moves copy the container's memory (anon + page cache) over
  // the network; seconds per GB on top of the §7 migration estimate.
  double network_seconds_per_gb = 0.5;
  // A move's predicted throughput gain is credited over this horizon (the
  // expected residual lifetime under the trace generator's exponential
  // lifetimes) and must beat the ops lost while the move runs.
  double rebalance_horizon_seconds = 600.0;
  // A degraded incumbent moves only for at least this relative prediction
  // gain (bounds cross-machine churn; queued containers are exempt — running
  // anywhere beats waiting).
  double rebalance_min_gain = 0.1;
  // Measurement noise of the per-machine simulators; machine m draws from
  // noise_seed + m, so identical boxes still measure like distinct hardware.
  double noise_sigma = 0.01;
  uint64_t noise_seed = 5;
};

// One committed cross-machine move, with the gain/cost model that justified
// it. Invariant (asserted in tests/cluster_test.cc): predicted_gain_ops >
// modeled_cost_ops for every logged move.
struct RebalanceMove {
  int container_id = 0;
  int from_machine = 0;
  int to_machine = 0;
  bool was_queued = false;        // moved out of a queue rather than migrated live
  double predicted_gain_ops = 0.0;  // throughput delta x rebalance horizon
  double modeled_cost_ops = 0.0;    // ops lost while the move runs
  double move_seconds = 0.0;        // §7 migration estimate + network copy
  double network_seconds = 0.0;     // the network-copy share of move_seconds
};

struct FleetStats {
  int submitted = 0;
  int dispatched_immediately = 0;  // admitted by the dispatched machine at once
  int queued = 0;                  // left waiting on the dispatched machine
  int queue_admissions = 0;        // previously queued containers that got placed
  double queue_wait_seconds = 0.0; // total wait of those admissions
  int rebalance_moves = 0;
  double cross_machine_move_seconds = 0.0;  // migration + network, all moves
  double network_copy_seconds = 0.0;
  int fleet_probe_runs = 0;        // dispatch/rebalance probes (per group)
  double fleet_probe_seconds = 0.0;
};

// A machine-level outcome tagged with the machine that produced it.
struct FleetOutcome {
  int machine_id = 0;
  ScheduleOutcome outcome;
};

// Fleet-wide evaluation of one replayed trace (the cluster analog of
// TenancyReport). Queued containers count as attaining nothing — a fleet
// that parks work in queues while other machines idle pays for it here.
struct FleetReport {
  double goal_attainment = 0.0;
  double container_seconds_at_goal = 0.0;
  double mean_utilization = 0.0;       // thread-weighted across machines
  double utilization_min = 0.0;        // spread of per-machine time averages
  double utilization_max = 0.0;
  double mean_queue_wait_seconds = 0.0;
  int decisions = 0;
  double wall_seconds = 0.0;
  std::vector<double> machine_utilizations;
  std::vector<FleetOutcome> outcomes;
};

class FleetScheduler {
 public:
  // The dispatch policy is built from config.dispatch via the
  // DispatchRegistry; the second form injects an explicitly constructed
  // (e.g. unregistered plugin) dispatcher and ignores config.dispatch.
  explicit FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config = {});
  FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config,
                 std::unique_ptr<DispatchPolicy> dispatch);

  int NumMachines() const { return static_cast<int>(machines_.size()); }
  MachineScheduler& machine(int machine_id);
  const MachineScheduler& machine(int machine_id) const;
  const Topology& topology(int machine_id) const;
  const MultiTenantModel& multi_model(int machine_id) const;

  // Topology-group names in machine order (deduplicated), and the shared
  // registry of one group — register trained models here before submitting
  // containers to machines whose policy uses the model.
  std::vector<std::string> GroupNames() const;
  ModelRegistry& GroupRegistry(const std::string& group);

  // Injects a precomputed important-placement set into every machine of the
  // group (otherwise each machine generates sets lazily).
  void ProvidePlacements(const std::string& group, const ImportantPlacementSet& ips);

  // Dispatches the container to a machine and submits it there; the
  // container queues on that machine when nothing fits anywhere.
  FleetOutcome Submit(const ContainerRequest& request, double now = 0.0);

  // Routes the departure to the machine currently running (or queueing) the
  // container, then runs that machine's re-placement pass and the fleet
  // RebalancePass; returns every placement/migration performed.
  std::vector<FleetOutcome> Depart(int container_id, double now = 0.0);

  // Replays a merged, time-ordered fleet trace, evaluating every machine's
  // co-running tenants with its multi-tenant model between events.
  FleetReport ReplayWithEvaluation(const std::vector<TraceEvent>& trace);

  // Machine currently holding the container (running or queued), -1 when
  // the id is not live fleet-wide.
  int MachineOf(int container_id) const;

  const FleetStats& stats() const { return stats_; }
  const std::vector<RebalanceMove>& rebalance_log() const { return rebalance_log_; }
  const FleetConfig& config() const { return config_; }
  const DispatchPolicy& dispatch() const { return *dispatch_; }

  // Per-machine time-averaged utilizations, machine order.
  std::vector<double> TimeAveragedUtilizations() const;

 private:
  struct Machine {
    std::unique_ptr<Topology> topo;  // stable address: schedulers keep pointers
    std::unique_ptr<PerformanceModel> solo;
    std::unique_ptr<MultiTenantModel> multi;
    std::unique_ptr<MachineScheduler> scheduler;
    std::string group;
  };
  struct Group {
    std::unique_ptr<ModelRegistry> registry;
    std::vector<int> machine_ids;  // first entry runs the group's probes
  };

  // Advances every machine's stats clock to `now` so per-machine utilization
  // averages integrate over the same span.
  void SyncClocks(double now);

  // Probes the container once for the group when its registry lacks a
  // prediction and any machine needs the model, charging the fleet stats.
  void EnsureGroupProbes(const std::string& group, const ContainerRequest& request);

  // Candidate views for one dispatch decision; probes every group first when
  // the dispatcher needs previews.
  std::vector<MachineCandidate> BuildCandidates(const ContainerRequest& request,
                                                bool with_previews);

  // Queue-wait bookkeeping for an admission outcome observed at `now`.
  void RecordAdmission(const ScheduleOutcome& outcome, double now);

  // Cross-machine moves of queued and degraded containers; appends every
  // placement it causes to `outcomes`.
  void RebalancePass(double now, std::vector<FleetOutcome>& outcomes);

  const Migrator& MigratorFor(const ContainerRequest& request) const;

  FleetConfig config_;
  std::unique_ptr<DispatchPolicy> dispatch_;
  std::vector<Machine> machines_;
  std::map<std::string, Group> groups_;
  std::map<int, int> machine_of_;      // live containers only
  std::map<int, double> submit_time_;
  std::set<int> waiting_;              // submitted but not yet placed
  FleetStats stats_;
  std::vector<RebalanceMove> rebalance_log_;
  FastMigrator fast_migrator_;
  ThrottledMigrator throttled_migrator_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_FLEET_H_
