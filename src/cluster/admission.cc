#include "src/cluster/admission.h"

namespace numaplace {
namespace {

const std::string kAdmitAllName = "admit-all";
const std::string kTieredName = "tiered";

// Tier-reserved headroom, the classic overload-protection shape: each tier
// below premium only admits while the fleet could still absorb this
// container with margin to spare, so a flash crowd of lower-tier arrivals
// stops filling the fleet before the last slots — the ones premium work
// lands in without queueing — are gone. Best-effort needs more spare
// capacity than standard: it is the first tier to shed.
//
// Two margins compose per tier. The per-container factor (free threads vs
// multiples of this arrival's demand) is the binding one on small fleets;
// the utilization ceiling (free threads as a fraction of total up
// capacity) is what matters at scale, where a few container-widths of
// slack is a rounding error — and where keeping the fleet under the
// ceiling keeps every machine uncrowded enough that already-running
// premium work stays at goal.
constexpr int kStandardHeadroomFactor = 2;
constexpr int kBestEffortHeadroomFactor = 3;
// free * kNum >= total * kDen  <=>  free/total >= kDen/kNum. Standard needs
// 3/10 of the fleet free (utilization <= 70%), best-effort 2/5 (<= 60%).
constexpr long long kStandardFreeFractionNum = 10;
constexpr long long kStandardFreeFractionDen = 3;
constexpr long long kBestEffortFreeFractionNum = 5;
constexpr long long kBestEffortFreeFractionDen = 2;

}  // namespace

bool ParseSloTier(const std::string& token, SloTier* tier) {
  if (token == "premium") {
    *tier = SloTier::kPremium;
    return true;
  }
  if (token == "standard") {
    *tier = SloTier::kStandard;
    return true;
  }
  if (token == "best-effort") {
    *tier = SloTier::kBestEffort;
    return true;
  }
  return false;
}

SloTier TierFromGroupName(const std::string& group) {
  const auto colon = group.find(':');
  if (colon == std::string::npos) {
    return SloTier::kStandard;
  }
  SloTier tier = SloTier::kStandard;
  ParseSloTier(group.substr(0, colon), &tier);
  return tier;
}

const std::string& AdmitAllPolicy::name() const { return kAdmitAllName; }

AdmissionDecision AdmitAllPolicy::Decide(const AdmissionContext& ctx) {
  (void)ctx;
  return AdmissionDecision::kAdmit;
}

const std::string& TieredAdmissionPolicy::name() const { return kTieredName; }

AdmissionDecision TieredAdmissionPolicy::Decide(const AdmissionContext& ctx) {
  switch (ctx.tier) {
    case SloTier::kPremium:
      if (ctx.fits_now) {
        return AdmissionDecision::kAdmit;
      }
      // Nothing fits: shed a queued best-effort container when one exists.
      // With no victim, admit anyway — premium queues rather than sheds.
      return ctx.queued_best_effort ? AdmissionDecision::kPreempt
                                    : AdmissionDecision::kAdmit;
    case SloTier::kStandard:
      if (ctx.fits_now &&
          ctx.free_threads >=
              static_cast<long long>(kStandardHeadroomFactor) * ctx.vcpus &&
          ctx.free_threads * kStandardFreeFractionNum >=
              ctx.total_threads * kStandardFreeFractionDen) {
        return AdmissionDecision::kAdmit;
      }
      return ctx.waiting < ctx.defer_limit ? AdmissionDecision::kDefer
                                           : AdmissionDecision::kReject;
    case SloTier::kBestEffort:
      if (ctx.fits_now && ctx.waiting == 0 &&
          ctx.free_threads >=
              static_cast<long long>(kBestEffortHeadroomFactor) * ctx.vcpus &&
          ctx.free_threads * kBestEffortFreeFractionNum >=
              ctx.total_threads * kBestEffortFreeFractionDen) {
        return AdmissionDecision::kAdmit;
      }
      return AdmissionDecision::kReject;
  }
  return AdmissionDecision::kAdmit;
}

AdmissionRegistry& AdmissionRegistry::Global() {
  static AdmissionRegistry* registry = [] {
    auto* r = new AdmissionRegistry();
    r->Register(kAdmitAllName, [] { return std::make_unique<AdmitAllPolicy>(); });
    r->Register(kTieredName, [] { return std::make_unique<TieredAdmissionPolicy>(); });
    return r;
  }();
  return *registry;
}

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const std::string& name) {
  return AdmissionRegistry::Global().Make(name);
}

}  // namespace numaplace
