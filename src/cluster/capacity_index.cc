#include "src/cluster/capacity_index.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace numaplace {

void CapacityIndex::Bind(const std::vector<MachineMembership>* membership,
                         CellLayout layout) {
  NP_CHECK(membership != nullptr);
  NP_CHECK_MSG(!membership->empty(), "the capacity index needs at least one machine");
  NP_CHECK_MSG(layout.NumMachines() == static_cast<int>(membership->size()),
               "cell layout covers " << layout.NumMachines() << " machines, membership "
                                     << membership->size());
  membership_ = membership;
  layout_ = std::move(layout);
  const size_t n = membership_->size();
  known_free_.assign(n, 0);
  known_up_.assign(n, false);
  for (size_t m = 0; m < n; ++m) {
    NP_CHECK_MSG((*membership_)[m].machine_id == static_cast<int>(m),
                 "membership view must be in machine-id order");
    known_free_[m] = LiveFreeThreads(static_cast<int>(m));
    known_up_[m] = LiveUp(static_cast<int>(m));
  }
  summaries_ = RecomputeFromScratch();
  capacity_dirty_ = true;
}

const CellCapacity& CapacityIndex::cell(int cell_index) const {
  NP_CHECK(cell_index >= 0 && cell_index < NumCells());
  return summaries_[static_cast<size_t>(cell_index)];
}

int CapacityIndex::LiveFreeThreads(int machine_id) const {
  const MachineMembership& member = (*membership_)[static_cast<size_t>(machine_id)];
  return member.scheduler->occupancy().FreeThreadCount();
}

bool CapacityIndex::LiveUp(int machine_id) const {
  return (*membership_)[static_cast<size_t>(machine_id)].availability ==
         MachineAvailability::kUp;
}

void CapacityIndex::RescanCellExtrema(int cell_index) {
  CellCapacity& summary = summaries_[static_cast<size_t>(cell_index)];
  if (summary.up_machines == 0) {
    summary.min_free_threads = 0;
    summary.max_free_threads = 0;
    return;
  }
  int lo = std::numeric_limits<int>::max();
  int hi = std::numeric_limits<int>::min();
  for (int m : layout_.cells[static_cast<size_t>(cell_index)]) {
    if (!known_up_[static_cast<size_t>(m)]) {
      continue;
    }
    lo = std::min(lo, known_free_[static_cast<size_t>(m)]);
    hi = std::max(hi, known_free_[static_cast<size_t>(m)]);
  }
  summary.min_free_threads = lo;
  summary.max_free_threads = hi;
}

void CapacityIndex::OnOccupancyChange(int machine_id) {
  NP_CHECK(bound());
  NP_CHECK(machine_id >= 0 && machine_id < layout_.NumMachines());
  const size_t m = static_cast<size_t>(machine_id);
  const int free_now = LiveFreeThreads(machine_id);
  const int free_before = known_free_[m];
  if (free_now == free_before) {
    return;
  }
  known_free_[m] = free_now;
  if (free_now > free_before) {
    capacity_dirty_ = true;
  }
  if (!known_up_[m]) {
    return;  // a down machine is outside its cell's up-aggregates
  }
  const int cell = layout_.cell_of[m];
  CellCapacity& summary = summaries_[static_cast<size_t>(cell)];
  summary.free_threads += free_now - free_before;
  // The extrema need a cell-local rescan only when this machine held (or
  // now takes) an end of the range; a strictly interior move keeps both.
  if (free_now <= summary.min_free_threads || free_before <= summary.min_free_threads ||
      free_now >= summary.max_free_threads || free_before >= summary.max_free_threads) {
    RescanCellExtrema(cell);
  }
}

void CapacityIndex::OnAvailabilityChange(int machine_id) {
  NP_CHECK(bound());
  NP_CHECK(machine_id >= 0 && machine_id < layout_.NumMachines());
  const size_t m = static_cast<size_t>(machine_id);
  const bool up_now = LiveUp(machine_id);
  // Fold any occupancy change that rode along with the flip (an evacuated
  // machine empties while down) before moving the machine across the
  // up-boundary.
  known_free_[m] = LiveFreeThreads(machine_id);
  if (up_now == known_up_[m]) {
    return;
  }
  known_up_[m] = up_now;
  const int cell = layout_.cell_of[m];
  CellCapacity& summary = summaries_[static_cast<size_t>(cell)];
  if (up_now) {
    ++summary.up_machines;
    summary.free_threads += known_free_[m];
    capacity_dirty_ = true;  // returned capacity can serve waiting work
  } else {
    --summary.up_machines;
    summary.free_threads -= known_free_[m];
  }
  RescanCellExtrema(cell);
}

std::vector<int> CapacityIndex::PromisingCells(int vcpus, int limit) const {
  NP_CHECK(bound());
  std::vector<int> eligible;
  for (int c = 0; c < NumCells(); ++c) {
    const CellCapacity& summary = summaries_[static_cast<size_t>(c)];
    if (summary.up_machines > 0 && summary.max_free_threads >= vcpus) {
      eligible.push_back(c);
    }
  }
  std::stable_sort(eligible.begin(), eligible.end(), [&](int a, int b) {
    const CellCapacity& ca = summaries_[static_cast<size_t>(a)];
    const CellCapacity& cb = summaries_[static_cast<size_t>(b)];
    if (ca.max_free_threads != cb.max_free_threads) {
      return ca.max_free_threads > cb.max_free_threads;
    }
    if (ca.free_threads != cb.free_threads) {
      return ca.free_threads > cb.free_threads;
    }
    return a < b;
  });
  if (limit > 0 && static_cast<int>(eligible.size()) > limit) {
    eligible.resize(static_cast<size_t>(limit));
  }
  return eligible;
}

std::vector<CellCapacity> CapacityIndex::RecomputeFromScratch() const {
  NP_CHECK(bound());
  std::vector<CellCapacity> summaries(static_cast<size_t>(NumCells()));
  for (int c = 0; c < NumCells(); ++c) {
    CellCapacity& summary = summaries[static_cast<size_t>(c)];
    int lo = std::numeric_limits<int>::max();
    int hi = std::numeric_limits<int>::min();
    for (int m : layout_.cells[static_cast<size_t>(c)]) {
      if (!LiveUp(m)) {
        continue;
      }
      const int free = LiveFreeThreads(m);
      ++summary.up_machines;
      summary.free_threads += free;
      lo = std::min(lo, free);
      hi = std::max(hi, free);
    }
    summary.min_free_threads = summary.up_machines > 0 ? lo : 0;
    summary.max_free_threads = summary.up_machines > 0 ? hi : 0;
  }
  return summaries;
}

}  // namespace numaplace
