#include "src/cluster/dispatch.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "src/util/check.h"

namespace numaplace {

namespace {

const std::string kLeastLoadedName = "least-loaded";
const std::string kRoundRobinName = "round-robin";
const std::string kBestPredictedName = "best-predicted";
const std::string kShardedName = "sharded";

void ValidateContext(const DispatchContext& ctx) {
  NP_CHECK(ctx.request != nullptr);
  NP_CHECK(ctx.machines != nullptr);
  NP_CHECK(!ctx.machines->empty());
}

std::vector<size_t> IdentityOrder(size_t n) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// The shared tie-breaker: emptier machines first so dispatch pressure
// spreads instead of piling onto machine 0.
bool LessLoaded(const MachineCandidate& a, const MachineCandidate& b) {
  if (a.utilization != b.utilization) {
    return a.utilization < b.utilization;
  }
  if (a.pending != b.pending) {
    return a.pending < b.pending;
  }
  if (a.free_threads != b.free_threads) {
    return a.free_threads > b.free_threads;
  }
  return a.machine_id < b.machine_id;
}

}  // namespace

CellLayout MakeInterleavedCells(int num_machines, int requested_cells) {
  NP_CHECK_MSG(num_machines >= 1, "a cell layout needs at least one machine");
  NP_CHECK_MSG(requested_cells >= 0, "cell count cannot be negative (0 = auto)");
  int num_cells = requested_cells;
  if (num_cells == 0) {
    num_cells =
        static_cast<int>(std::lround(std::sqrt(static_cast<double>(num_machines))));
  }
  num_cells = std::max(1, std::min(num_cells, num_machines));
  CellLayout layout;
  layout.cells.assign(static_cast<size_t>(num_cells), {});
  layout.cell_of.assign(static_cast<size_t>(num_machines), 0);
  for (int m = 0; m < num_machines; ++m) {
    const int cell = m % num_cells;
    layout.cells[static_cast<size_t>(cell)].push_back(m);
    layout.cell_of[static_cast<size_t>(m)] = cell;
  }
  return layout;
}

// --- least-loaded ---

const std::string& LeastLoadedDispatch::name() const { return kLeastLoadedName; }

std::vector<size_t> LeastLoadedDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.machines->size());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return LessLoaded((*ctx.machines)[a], (*ctx.machines)[b]);
  });
  return order;
}

// --- round-robin ---

const std::string& RoundRobinDispatch::name() const { return kRoundRobinName; }

std::vector<size_t> RoundRobinDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  // The cursor cycles stable machine ids, not candidate indices: the fleet
  // filters out machines a container cannot fit on, so index-based rotation
  // would skew whenever the candidate list shrinks. Candidates arrive in
  // ascending machine-id order; start from the first id at or past the
  // cursor, wrapping to the lowest.
  const size_t n = ctx.machines->size();
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((*ctx.machines)[i].machine_id >= next_machine_id_) {
      start = i;
      break;
    }
  }
  next_machine_id_ = (*ctx.machines)[start].machine_id + 1;
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    order.push_back((start + i) % n);
  }
  return order;
}

// --- best-predicted ---

const std::string& BestPredictedDispatch::name() const { return kBestPredictedName; }

std::vector<size_t> BestPredictedDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  // Margin of a machine's top candidate over the decision goal, saturated
  // at 1: the previews are solo predictions, so headroom beyond the goal
  // says nothing about multi-tenant interference — among machines predicted
  // to meet the goal the differentiator is load, and the tie-break below
  // routes to the emptiest of them. Machines with model-free policies
  // preview zero prediction and zero goal; they get margin 0, ranking after
  // any machine the model vouches for but before machines where nothing
  // fits at all (which would queue the container).
  const auto margin = [&](const MachineCandidate& m) {
    NP_CHECK_MSG(m.preview_valid, "best-predicted dispatch needs previews");
    if (!m.preview.realizable) {
      return -1.0;
    }
    if (m.preview.goal_abs <= 0.0) {
      return 0.0;
    }
    return std::min(1.0, m.preview.predicted_abs / m.preview.goal_abs);
  };
  std::vector<size_t> order = IdentityOrder(ctx.machines->size());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double margin_a = margin((*ctx.machines)[a]);
    const double margin_b = margin((*ctx.machines)[b]);
    if (margin_a != margin_b) {
      return margin_a > margin_b;
    }
    return LessLoaded((*ctx.machines)[a], (*ctx.machines)[b]);
  });
  return order;
}

// --- sharded ---

ShardedDispatchPolicy::ShardedDispatchPolicy(ShardedDispatchConfig config)
    : config_(std::move(config)),
      inner_(MakeDispatchPolicy(config_.inner)),
      rng_(config_.seed) {
  NP_CHECK_MSG(config_.cells >= 0,
               "sharded dispatch cell count cannot be negative (0 = auto)");
  NP_CHECK_MSG(config_.probes >= 1,
               "sharded dispatch samples at least one cell per decision");
  NP_CHECK_MSG(config_.inner != kShardedName,
               "sharded dispatch cannot nest itself as the inner ranking");
}

const std::string& ShardedDispatchPolicy::name() const { return kShardedName; }

bool ShardedDispatchPolicy::NeedsPreviews() const { return inner_->NeedsPreviews(); }

void ShardedDispatchPolicy::BindMembership(
    const std::vector<MachineMembership>* membership) {
  NP_CHECK(membership != nullptr);
  NP_CHECK_MSG(!membership->empty(), "sharded dispatch needs at least one machine");
  membership_ = membership;
  inner_->BindMembership(membership);

  const int n = static_cast<int>(membership->size());
  for (int m = 0; m < n; ++m) {
    NP_CHECK_MSG((*membership)[static_cast<size_t>(m)].machine_id == m,
                 "membership view must be in machine-id order");
  }
  layout_ = MakeInterleavedCells(n, config_.cells);
}

int ShardedDispatchPolicy::CellOf(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < layout_.NumMachines());
  return layout_.cell_of[static_cast<size_t>(machine_id)];
}

std::vector<int> ShardedDispatchPolicy::Preselect(const ContainerRequest& request) {
  NP_CHECK_MSG(membership_ != nullptr,
               "sharded dispatch is fleet-owned: BindMembership must run before "
               "the first decision");
  // Level one, eligibility: cells that still hold an up machine the
  // container fits on.
  std::vector<int> eligible;
  for (int c = 0; c < NumCells(); ++c) {
    for (int m : layout_.cells[static_cast<size_t>(c)]) {
      const MachineMembership& member = (*membership_)[static_cast<size_t>(m)];
      if (member.availability == MachineAvailability::kUp &&
          request.vcpus <= member.hw_threads) {
        eligible.push_back(c);
        break;
      }
    }
  }
  last_sampled_.clear();
  if (eligible.empty()) {
    // Nothing is dispatchable anywhere: hand the decision back to the fleet
    // (full candidate build, which parks the container fleet-wide).
    return {};
  }
  // Sample d distinct eligible cells uniformly (partial Fisher-Yates) —
  // the power-of-d-choices step, one level up from machines. The "choice"
  // among the sampled cells is left to the inner dispatcher's per-machine
  // comparison over their union (load or predicted margin), a strictly
  // sharper signal than any cell-aggregate statistic.
  const size_t d = std::min(static_cast<size_t>(config_.probes), eligible.size());
  for (size_t i = 0; i < d; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng_.NextBelow(static_cast<uint64_t>(eligible.size() - i)));
    std::swap(eligible[i], eligible[j]);
  }
  eligible.resize(d);
  std::vector<int> machines;
  for (int c : eligible) {
    last_sampled_.push_back(c);
    for (int m : layout_.cells[static_cast<size_t>(c)]) {
      machines.push_back(m);
    }
  }
  return machines;
}

std::vector<size_t> ShardedDispatchPolicy::Rank(const DispatchContext& ctx) {
  // Level two: the inner dispatcher picks the best machine within the union
  // of the sampled cells (the fleet built candidates only for them).
  return inner_->Rank(ctx);
}

// --- registry ---

DispatchRegistry& DispatchRegistry::Global() {
  static DispatchRegistry* registry = [] {
    auto* r = new DispatchRegistry();
    r->Register(kLeastLoadedName, [] { return std::make_unique<LeastLoadedDispatch>(); });
    r->Register(kRoundRobinName, [] { return std::make_unique<RoundRobinDispatch>(); });
    r->Register(kBestPredictedName,
                [] { return std::make_unique<BestPredictedDispatch>(); });
    r->Register(kShardedName, [] { return std::make_unique<ShardedDispatchPolicy>(); });
    return r;
  }();
  return *registry;
}

std::unique_ptr<DispatchPolicy> MakeDispatchPolicy(const std::string& name) {
  return DispatchRegistry::Global().Make(name);
}

}  // namespace numaplace
