#include "src/cluster/dispatch.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

namespace {

const std::string kLeastLoadedName = "least-loaded";
const std::string kRoundRobinName = "round-robin";
const std::string kBestPredictedName = "best-predicted";

void ValidateContext(const DispatchContext& ctx) {
  NP_CHECK(ctx.request != nullptr);
  NP_CHECK(ctx.machines != nullptr);
  NP_CHECK(!ctx.machines->empty());
}

std::vector<size_t> IdentityOrder(size_t n) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// The shared tie-breaker: emptier machines first so dispatch pressure
// spreads instead of piling onto machine 0.
bool LessLoaded(const MachineCandidate& a, const MachineCandidate& b) {
  if (a.utilization != b.utilization) {
    return a.utilization < b.utilization;
  }
  if (a.pending != b.pending) {
    return a.pending < b.pending;
  }
  if (a.free_threads != b.free_threads) {
    return a.free_threads > b.free_threads;
  }
  return a.machine_id < b.machine_id;
}

}  // namespace

// --- least-loaded ---

const std::string& LeastLoadedDispatch::name() const { return kLeastLoadedName; }

std::vector<size_t> LeastLoadedDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  std::vector<size_t> order = IdentityOrder(ctx.machines->size());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return LessLoaded((*ctx.machines)[a], (*ctx.machines)[b]);
  });
  return order;
}

// --- round-robin ---

const std::string& RoundRobinDispatch::name() const { return kRoundRobinName; }

std::vector<size_t> RoundRobinDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  // The cursor cycles stable machine ids, not candidate indices: the fleet
  // filters out machines a container cannot fit on, so index-based rotation
  // would skew whenever the candidate list shrinks. Candidates arrive in
  // ascending machine-id order; start from the first id at or past the
  // cursor, wrapping to the lowest.
  const size_t n = ctx.machines->size();
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((*ctx.machines)[i].machine_id >= next_machine_id_) {
      start = i;
      break;
    }
  }
  next_machine_id_ = (*ctx.machines)[start].machine_id + 1;
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    order.push_back((start + i) % n);
  }
  return order;
}

// --- best-predicted ---

const std::string& BestPredictedDispatch::name() const { return kBestPredictedName; }

std::vector<size_t> BestPredictedDispatch::Rank(const DispatchContext& ctx) {
  ValidateContext(ctx);
  // Margin of a machine's top candidate over the decision goal, saturated
  // at 1: the previews are solo predictions, so headroom beyond the goal
  // says nothing about multi-tenant interference — among machines predicted
  // to meet the goal the differentiator is load, and the tie-break below
  // routes to the emptiest of them. Machines with model-free policies
  // preview zero prediction and zero goal; they get margin 0, ranking after
  // any machine the model vouches for but before machines where nothing
  // fits at all (which would queue the container).
  const auto margin = [&](const MachineCandidate& m) {
    NP_CHECK_MSG(m.preview_valid, "best-predicted dispatch needs previews");
    if (!m.preview.realizable) {
      return -1.0;
    }
    if (m.preview.goal_abs <= 0.0) {
      return 0.0;
    }
    return std::min(1.0, m.preview.predicted_abs / m.preview.goal_abs);
  };
  std::vector<size_t> order = IdentityOrder(ctx.machines->size());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double margin_a = margin((*ctx.machines)[a]);
    const double margin_b = margin((*ctx.machines)[b]);
    if (margin_a != margin_b) {
      return margin_a > margin_b;
    }
    return LessLoaded((*ctx.machines)[a], (*ctx.machines)[b]);
  });
  return order;
}

// --- registry ---

DispatchRegistry& DispatchRegistry::Global() {
  static DispatchRegistry* registry = [] {
    auto* r = new DispatchRegistry();
    r->Register(kLeastLoadedName, [] { return std::make_unique<LeastLoadedDispatch>(); });
    r->Register(kRoundRobinName, [] { return std::make_unique<RoundRobinDispatch>(); });
    r->Register(kBestPredictedName,
                [] { return std::make_unique<BestPredictedDispatch>(); });
    return r;
  }();
  return *registry;
}

std::unique_ptr<DispatchPolicy> MakeDispatchPolicy(const std::string& name) {
  return DispatchRegistry::Global().Make(name);
}

}  // namespace numaplace
