// Per-cell capacity index: the fleet's summary-before-scan layer.
//
// PR 5 made *dispatch* sublinear by sampling cells; rebalance and
// evacuation still walked every machine for every target search. This
// index removes that wall the way FFS cylinder-group free maps do for
// block allocation: keep a small per-group summary (here: per dispatch
// cell — up-machine count, aggregate free hardware threads, min/max
// per-machine free threads), consult it before any per-machine work, and
// only descend into the few groups the summary says are promising.
//
// The index is incremental by construction. It is bound once to the
// fleet's long-lived MachineMembership view and a static cell layout
// (mirroring the sharded dispatcher's cells when one is active), and the
// fleet notifies it at every occupancy- or availability-changing point —
// admit, depart, evacuation, rebalance move commit, fail/drain/rejoin.
// Each notification re-reads ONE machine's live free-thread count and
// folds the delta into its cell's summary; a cell-local extremum rescan
// (O(cell size), i.e. O(sqrt(fleet)) under the default layout) runs only
// when the min/max holder changed. Nothing ever rescans the fleet. Cell
// membership is static, so the summaries survive fail -> rejoin cycles
// exactly as the dispatcher's cell assignment does: a failed machine
// leaves its cell's up-aggregates and returns to the same cell on rejoin.
//
// The index also carries the fleet's capacity-changed dirty flag: set
// whenever free capacity grows, a machine comes back up, or the fleet
// reports a new mover candidate (queueing, degraded admission); cleared
// when a RebalancePass consumes it. A pass that finds the flag clear is
// provably a no-op and performs zero admission previews.
//
// RecomputeFromScratch exists for tests only: the property test replays
// randomized event sequences and asserts the incremental summaries equal
// a full recomputation after every event.
#ifndef NUMAPLACE_SRC_CLUSTER_CAPACITY_INDEX_H_
#define NUMAPLACE_SRC_CLUSTER_CAPACITY_INDEX_H_

#include <vector>

#include "src/cluster/dispatch.h"

namespace numaplace {

// The machine -> cell partition (CellLayout) and its modulo construction
// (MakeInterleavedCells) live in src/cluster/dispatch.h: the capacity
// index mirrors the sharded dispatcher's cells so "promising cell" means
// the same thing to dispatch sampling and to fleet-op target searches.

/// One cell's incrementally maintained capacity summary. Free-thread
/// aggregates cover only up members: a failed or draining machine
/// receives no placements, so its threads are not capacity.
struct CellCapacity {
  /// Members currently kUp.
  int up_machines = 0;
  /// Sum of free hardware threads over up members.
  int free_threads = 0;
  /// Smallest per-machine free-thread count among up members (0 when the
  /// cell has no up member).
  int min_free_threads = 0;
  /// Largest per-machine free-thread count among up members — the cell's
  /// best single-machine headroom, the eligibility signal for "could any
  /// member hold a vcpus-wide container".
  int max_free_threads = 0;
};

/// The fleet-wide per-cell capacity index; see the file comment.
class CapacityIndex {
 public:
  /// Binds the fleet's long-lived membership view (machine-id order,
  /// outlives the index) and the static cell layout, and computes the
  /// initial summaries (the only full pass the index ever makes). The
  /// dirty flag starts set: the first RebalancePass always runs.
  void Bind(const std::vector<MachineMembership>* membership, CellLayout layout);

  /// True after Bind.
  bool bound() const { return membership_ != nullptr; }
  int NumCells() const { return layout_.NumCells(); }
  const CellLayout& layout() const { return layout_; }
  /// The cell's current summary (CHECKs the index).
  const CellCapacity& cell(int cell_index) const;

  /// Re-reads one machine's live free-thread count and folds the delta
  /// into its cell summary; marks capacity changed when free capacity
  /// grew. O(1) plus a cell-local extremum rescan when the machine held
  /// the cell's min or max.
  void OnOccupancyChange(int machine_id);
  /// Re-reads one machine's availability, moving it into or out of its
  /// cell's up-aggregates; marks capacity changed when the machine came
  /// up. Same cost shape as OnOccupancyChange.
  void OnAvailabilityChange(int machine_id);

  /// Cells worth descending into for a vcpus-wide placement — cells with
  /// an up member whose free threads cover the request — best headroom
  /// first (max free desc, then total free desc, then cell id asc), at
  /// most `limit` of them (0 = every eligible cell). Deterministic: the
  /// fleet's target searches are replay-stable.
  std::vector<int> PromisingCells(int vcpus, int limit) const;

  /// The capacity-changed dirty flag (see file comment).
  bool capacity_dirty() const { return capacity_dirty_; }
  /// Fleet-side hook for capacity-relevant facts the occupancy delta
  /// cannot see (a new queued waiter, a below-goal admission).
  void MarkCapacityChanged() { capacity_dirty_ = true; }
  void ClearCapacityDirty() { capacity_dirty_ = false; }

  /// Full recomputation of every cell summary from the live membership
  /// view — the property-test oracle, never used on the hot path.
  std::vector<CellCapacity> RecomputeFromScratch() const;

 private:
  int LiveFreeThreads(int machine_id) const;
  bool LiveUp(int machine_id) const;
  // Recomputes one cell's min/max from its cached per-machine entries.
  void RescanCellExtrema(int cell_index);

  const std::vector<MachineMembership>* membership_ = nullptr;
  CellLayout layout_;
  std::vector<CellCapacity> summaries_;
  // Last-applied per-machine state, so notifications fold deltas instead
  // of rescanning.
  std::vector<int> known_free_;
  std::vector<bool> known_up_;
  bool capacity_dirty_ = true;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_CAPACITY_INDEX_H_
