#include "src/cluster/fleet.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/util/check.h"

namespace numaplace {

FleetScheduler::FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config)
    : FleetScheduler(std::move(specs), config, MakeDispatchPolicy(config.dispatch)) {}

FleetScheduler::FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config,
                               std::unique_ptr<DispatchPolicy> dispatch)
    : config_(std::move(config)),
      dispatch_(std::move(dispatch)),
      fast_migrator_(),
      throttled_migrator_() {
  NP_CHECK(dispatch_ != nullptr);
  NP_CHECK_MSG(!specs.empty(), "a fleet needs at least one machine");
  NP_CHECK(config_.network_seconds_per_gb >= 0.0);
  NP_CHECK(config_.rebalance_horizon_seconds > 0.0);
  NP_CHECK(config_.rebalance_min_gain >= 0.0);
  NP_CHECK_MSG(config_.fleet_cells >= 0,
               "fleet capacity-index cell count cannot be negative (0 = auto)");
  NP_CHECK_MSG(config_.fleet_probes >= 0,
               "fleet_probes cannot be negative (0 = every eligible cell)");
  NP_CHECK_MSG(config_.domain_racks >= 0,
               "domain_racks cannot be negative (0 = auto fan-out)");
  NP_CHECK_MSG(config_.domain_zones >= 0,
               "domain_zones cannot be negative (0 = auto fan-out)");
  NP_CHECK_MSG(config_.spread_weight >= 0.0, "spread_weight cannot be negative");
  NP_CHECK_MSG(config_.spread_max_per_rack >= 0,
               "spread_max_per_rack cannot be negative (0 = no cap)");
  NP_CHECK_MSG(config_.admission_defer_limit >= 0,
               "admission_defer_limit cannot be negative");
  if (!config_.admission.empty()) {
    admission_ = MakeAdmissionPolicy(config_.admission);
  }
  for (const auto& [group, tier_name] : config_.tier_overrides) {
    SloTier tier = SloTier::kStandard;
    NP_CHECK_MSG(ParseSloTier(tier_name, &tier),
                 "tier_overrides[" << group << "] = \"" << tier_name
                                   << "\" is not a tier (premium / standard / "
                                      "best-effort)");
    tier_map_[group] = tier;
  }
  machines_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Machine machine;
    machine.group = specs[i].topo.name();
    machine.topo = std::make_unique<Topology>(std::move(specs[i].topo));
    machine.solo = std::make_unique<PerformanceModel>(
        *machine.topo, config_.noise_sigma, config_.noise_seed + i);
    machine.multi = std::make_unique<MultiTenantModel>(
        *machine.topo, config_.noise_sigma, config_.noise_seed + i);
    Group& group = groups_[machine.group];
    if (group.registry == nullptr) {
      group.registry = std::make_unique<ModelRegistry>();
    }
    group.machine_ids.push_back(static_cast<int>(i));
    machine.scheduler = std::make_unique<MachineScheduler>(
        *machine.topo, *machine.solo, group.registry.get(), specs[i].scheduler);
    machines_.push_back(std::move(machine));
  }
  // The long-lived membership view for cell-aware dispatchers: built once
  // (heap-allocated, so the address the policy holds survives moving the
  // fleet) and kept current by SetAvailability.
  membership_ = std::make_unique<std::vector<MachineMembership>>();
  membership_->reserve(machines_.size());
  for (int m = 0; m < NumMachines(); ++m) {
    MachineMembership member;
    member.machine_id = m;
    member.hw_threads = machines_[static_cast<size_t>(m)].topo->NumHwThreads();
    member.scheduler = machines_[static_cast<size_t>(m)].scheduler.get();
    up_threads_ += member.hw_threads;  // every machine starts kUp
    membership_->push_back(member);
  }
  dispatch_->BindMembership(membership_.get());
  // The capacity index mirrors the sharded dispatcher's cell partition
  // when one is active (and config.fleet_cells doesn't override it), so
  // "promising cell" means the same thing to dispatch sampling and to
  // rebalance/evacuation target searches; under a flat dispatcher it
  // builds the same modulo layout the dispatcher would have.
  CellLayout layout;
  const auto* sharded = dynamic_cast<const ShardedDispatchPolicy*>(dispatch_.get());
  if (config_.fleet_cells == 0 && sharded != nullptr) {
    layout = sharded->layout();
  } else {
    layout = MakeInterleavedCells(NumMachines(), config_.fleet_cells);
  }
  capacity_index_.Bind(membership_.get(), std::move(layout));
  // The failure-domain topology (uniform by default; ProvideDomains swaps in
  // an explicit layout before traffic) and its live occupancy view, both
  // heap-allocated so the addresses the policy holds survive moving the
  // fleet. Unlike dispatch cells, domains are contiguous machine blocks —
  // racks are physical neighbors, not an interleaved spreading device.
  domains_ = std::make_unique<FailureDomainTopology>(FailureDomainTopology::Uniform(
      NumMachines(), config_.domain_racks, config_.domain_zones));
  domain_occupancy_ = std::make_unique<DomainOccupancy>();
  domain_occupancy_->Bind(domains_.get());
  dispatch_->BindDomains(domains_.get(), domain_occupancy_.get());
}

void FleetScheduler::ProvideDomains(FailureDomainTopology domains) {
  NP_CHECK_MSG(domains.NumMachines() == NumMachines(),
               "explicit failure-domain layout covers " << domains.NumMachines()
                                                        << " machines, fleet has "
                                                        << NumMachines());
  NP_CHECK_MSG(machine_of_.empty() && unplaced_.empty(),
               "failure-domain layout must be fixed before any container is live");
  *domains_ = std::move(domains);
  // Re-bind to resize the occupancy vectors to the new rack/zone counts
  // (the topology's address is unchanged, so the policy's pointers stand).
  domain_occupancy_->Bind(domains_.get());
}

std::map<std::string, int> FleetScheduler::DomainsToLoss(DomainScope scope) const {
  std::map<std::string, int> by_group;
  for (const std::string& group : domain_occupancy_->Groups()) {
    by_group[group] = domain_occupancy_->DomainsToLoss(group, scope);
  }
  return by_group;
}

int FleetScheduler::RackColocation(const ContainerRequest& request,
                                   int machine_id) const {
  return domain_occupancy_->CountIn(ServiceGroupOf(request.workload.name),
                                    DomainScope::kRack, domains_->RackOf(machine_id));
}

MachineScheduler& FleetScheduler::machine(int machine_id) {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].scheduler;
}

const MachineScheduler& FleetScheduler::machine(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].scheduler;
}

const Topology& FleetScheduler::topology(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].topo;
}

const MultiTenantModel& FleetScheduler::multi_model(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].multi;
}

MachineAvailability FleetScheduler::availability(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return machines_[static_cast<size_t>(machine_id)].availability;
}

std::vector<std::string> FleetScheduler::GroupNames() const {
  std::vector<std::string> names;
  for (const Machine& machine : machines_) {
    if (std::find(names.begin(), names.end(), machine.group) == names.end()) {
      names.push_back(machine.group);
    }
  }
  return names;
}

ModelRegistry& FleetScheduler::GroupRegistry(const std::string& group) {
  const auto it = groups_.find(group);
  NP_CHECK_MSG(it != groups_.end(), "no machine of topology '" << group << "' in the fleet");
  return *it->second.registry;
}

void FleetScheduler::ProvidePlacements(const std::string& group,
                                       const ImportantPlacementSet& ips) {
  const auto it = groups_.find(group);
  NP_CHECK_MSG(it != groups_.end(), "no machine of topology '" << group << "' in the fleet");
  for (int m : it->second.machine_ids) {
    machines_[static_cast<size_t>(m)].scheduler->ProvidePlacements(ips);
  }
}

void FleetScheduler::SyncClocks(double now) {
  if (now == last_synced_) {
    // Every machine clock already reads `now`; AdvanceClock with dt == 0
    // adds count * 0.0 to a non-negative accumulator and leaves the last
    // event time alone — a bitwise no-op, so skipping it is exact on the
    // serial path too.
    return;
  }
  last_synced_ = now;
  if (hooks_ != nullptr) {
    // Time advanced: close out the previous instant (commits, bookkeeping,
    // buffered callbacks), then walk the machine clocks in parallel — the
    // walk touches every machine, so it IS the inter-instant barrier.
    hooks_->FlushAll();
    std::vector<std::function<void()>> tasks;
    tasks.reserve(machines_.size());
    for (Machine& machine : machines_) {
      MachineScheduler* scheduler = machine.scheduler.get();
      tasks.push_back([scheduler, now] { scheduler->SyncClock(now); });
    }
    hooks_->RunBatch(&tasks);
    return;
  }
  for (Machine& machine : machines_) {
    machine.scheduler->SyncClock(now);
  }
}

const Migrator& FleetScheduler::MigratorFor(const ContainerRequest& request) const {
  return request.latency_sensitive ? static_cast<const Migrator&>(throttled_migrator_)
                                   : static_cast<const Migrator&>(fast_migrator_);
}

void FleetScheduler::EnsureGroupProbes(const std::string& group,
                                       const ContainerRequest& request) {
  for (int m : groups_.at(group).machine_ids) {
    Machine& machine = machines_[static_cast<size_t>(m)];
    // A failed or draining machine runs nothing, probes included.
    if (machine.availability != MachineAvailability::kUp) {
      continue;
    }
    MachineScheduler& scheduler = *machine.scheduler;
    if (!scheduler.policy().UsesModel()) {
      continue;
    }
    // The group's first model-using up machine probes on behalf of every
    // machine sharing the registry; a cached prediction makes this a no-op.
    const MachineScheduler::ProbeCharge charge = scheduler.EnsureProbes(request);
    if (charge.ran) {
      stats_.fleet_probe_runs += 2;
      stats_.fleet_probe_seconds += charge.seconds;
    }
    return;
  }
}

int FleetScheduler::GroupProberMachine(const std::string& group) const {
  for (int m : groups_.at(group).machine_ids) {
    const Machine& machine = machines_[static_cast<size_t>(m)];
    if (machine.availability != MachineAvailability::kUp) {
      continue;
    }
    if (!machine.scheduler->policy().UsesModel()) {
      continue;
    }
    return m;
  }
  return kNoMachine;
}

std::vector<MachineCandidate> FleetScheduler::BuildCandidates(
    const ContainerRequest& request, bool with_previews,
    const std::vector<int>* only) {
  // The machine ids under consideration, ascending (round-robin's cursor
  // relies on candidates arriving in machine-id order).
  std::vector<int> machine_ids;
  if (only != nullptr) {
    machine_ids = *only;
    std::sort(machine_ids.begin(), machine_ids.end());
    machine_ids.erase(std::unique(machine_ids.begin(), machine_ids.end()),
                      machine_ids.end());
    for (int m : machine_ids) {
      NP_CHECK_MSG(m >= 0 && m < NumMachines(), "dispatch policy '"
                                                    << dispatch_->name()
                                                    << "' preselected machine " << m
                                                    << " out of range");
    }
  } else {
    machine_ids.resize(static_cast<size_t>(NumMachines()));
    std::iota(machine_ids.begin(), machine_ids.end(), 0);
  }
  if (hooks_ != nullptr) {
    // This decision is about to read the considered machines' occupancy and
    // queues (and possibly probe through their group registries): wait out
    // any commit still in flight on them. Machines outside the flush set
    // keep committing concurrently — their state is not read here, and the
    // deferred fleet-side bookkeeping is not read by dispatch decisions.
    std::vector<int> flush = machine_ids;
    if (with_previews) {
      // The group's prober (its first up, model-using member) may sit
      // outside a preselection; its scheduler is mutated by EnsureProbes.
      std::set<std::string> groups_seen;
      for (int m : machine_ids) {
        const Machine& machine = machines_[static_cast<size_t>(m)];
        if (machine.availability == MachineAvailability::kUp &&
            request.vcpus <= machine.topo->NumHwThreads() &&
            groups_seen.insert(machine.group).second) {
          const int prober = GroupProberMachine(machine.group);
          if (prober != kNoMachine) {
            flush.push_back(prober);
          }
        }
      }
    }
    hooks_->FlushMachines(flush);
  }
  if (with_previews) {
    // Probe a group only when an up machine of it under consideration could
    // take the container — a preselection never probes groups outside it.
    std::set<std::string> probed;
    for (int m : machine_ids) {
      const Machine& machine = machines_[static_cast<size_t>(m)];
      if (machine.availability == MachineAvailability::kUp &&
          request.vcpus <= machine.topo->NumHwThreads() &&
          probed.insert(machine.group).second) {
        EnsureGroupProbes(machine.group, request);
      }
    }
  }
  std::vector<MachineCandidate> candidates;
  candidates.reserve(machine_ids.size());
  bool fits_any_topology = false;
  for (int m : machine_ids) {
    Machine& machine = machines_[static_cast<size_t>(m)];
    if (request.vcpus > machine.topo->NumHwThreads()) {
      continue;  // a machine the container cannot fit on is never a candidate
    }
    fits_any_topology = true;
    if (machine.availability != MachineAvailability::kUp) {
      continue;  // failed/draining machines receive no dispatches
    }
    MachineCandidate candidate;
    candidate.machine_id = m;
    candidate.scheduler = machine.scheduler.get();
    candidate.utilization = machine.scheduler->occupancy().Utilization();
    candidate.free_threads = machine.scheduler->occupancy().FreeThreadCount();
    candidate.pending = static_cast<int>(machine.scheduler->PendingIds().size());
    candidates.push_back(std::move(candidate));
  }
  if (with_previews) {
    // Previews are filled after the candidate walk (probes above made them
    // pure per-machine reads), so they can run as one parallel batch — one
    // task per candidate machine, no two touching the same scheduler. The
    // results are identical to the interleaved serial fill.
    if (hooks_ != nullptr && candidates.size() > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(candidates.size());
      for (MachineCandidate& candidate : candidates) {
        MachineCandidate* slot = &candidate;
        const ContainerRequest* req = &request;
        tasks.push_back([slot, req] {
          slot->preview = slot->scheduler->PreviewAdmission(*req);
          slot->preview_valid = true;
        });
      }
      hooks_->RunBatch(&tasks);
      stats_.dispatch_previews += static_cast<int>(candidates.size());
    } else {
      for (MachineCandidate& candidate : candidates) {
        candidate.preview = candidate.scheduler->PreviewAdmission(request);
        candidate.preview_valid = true;
        ++stats_.dispatch_previews;
      }
    }
  }
  // Only a full build can prove a configuration error; a preselection that
  // fits nothing falls back to a full build in Dispatch.
  NP_CHECK_MSG(fits_any_topology || only != nullptr,
               "container " << request.id << " (" << request.vcpus
                            << " vCPUs) is larger than every machine in the fleet");
  return candidates;
}

int FleetScheduler::ChooseMachine(const ContainerRequest& request,
                                  std::vector<MachineCandidate>& candidates) {
  NP_CHECK(!candidates.empty());
  DispatchContext ctx;
  ctx.request = &request;
  ctx.machines = &candidates;
  const std::vector<size_t> order = dispatch_->Rank(ctx);
  NP_CHECK_MSG(!order.empty(),
               "dispatch policy '" << dispatch_->name() << "' ranked no machines");
  size_t chosen = order.front();
  NP_CHECK_MSG(chosen < candidates.size(), "dispatch policy '" << dispatch_->name()
                                                               << "' ranked machine index "
                                                               << chosen << " out of range");
  if (SpreadActive()) {
    // Spread dimension: re-score the policy's ranking with a rack
    // co-location penalty — score = rank position + spread_weight * (group
    // replicas already in the candidate's rack), plus a dominating penalty
    // past the spread_max_per_rack cap. The policy still orders machines by
    // its own signal (load, predicted margin); spread only trades rank
    // positions against co-location, so it composes with any dispatcher,
    // sharded included. The cap is soft here — when every candidate's rack
    // is capped the least-bad one still takes the container (a placement
    // always beats stranding work; the hard cap lives in the fleet-op
    // target searches, where declining a move is safe).
    constexpr double kCapPenalty = 1e9;
    const auto score_of = [&](size_t position, size_t idx) {
      const int colocated = RackColocation(request, candidates[idx].machine_id);
      double score = static_cast<double>(position) + config_.spread_weight * colocated;
      if (config_.spread_max_per_rack > 0 && colocated >= config_.spread_max_per_rack) {
        score += kCapPenalty;
      }
      return score;
    };
    const auto best_by_score = [&](bool realizable_only) {
      size_t best = order.size();  // sentinel: none matched
      double best_score = 0.0;
      for (size_t position = 0; position < order.size(); ++position) {
        const size_t idx = order[position];
        NP_CHECK(idx < candidates.size());
        if (realizable_only && !candidates[idx].preview.realizable) {
          continue;
        }
        const double score = score_of(position, idx);
        if (best == order.size() || score < best_score) {
          best = idx;
          best_score = score;  // ties keep the earlier rank position
        }
      }
      return best;
    };
    size_t best = dispatch_->NeedsPreviews() ? best_by_score(/*realizable_only=*/true)
                                             : best_by_score(/*realizable_only=*/false);
    if (best == order.size()) {
      // No realizable candidate: queue on the spread-best machine overall.
      best = best_by_score(/*realizable_only=*/false);
    }
    NP_CHECK(best < candidates.size());
    return candidates[best].machine_id;
  }
  if (dispatch_->NeedsPreviews()) {
    // Prefer the best-ranked machine that can admit right now over queueing
    // on the overall favorite.
    for (size_t idx : order) {
      NP_CHECK(idx < candidates.size());
      if (candidates[idx].preview.realizable) {
        chosen = idx;
        break;
      }
    }
  }
  return candidates[chosen].machine_id;
}

void FleetScheduler::RecordAdmission(const ScheduleOutcome& outcome, double now) {
  if (!outcome.admitted || waiting_.erase(outcome.container_id) == 0) {
    return;
  }
  stats_.queue_wait_seconds += now - submit_time_.at(outcome.container_id);
  ++stats_.queue_admissions;
}

const AdmissionPolicy& FleetScheduler::admission() const {
  NP_CHECK_MSG(admission_ != nullptr, "no admission policy is configured");
  return *admission_;
}

SloTier FleetScheduler::TierOf(const std::string& workload_name) const {
  const std::string group = ServiceGroupOf(workload_name);
  const auto pinned = tier_map_.find(group);
  if (pinned != tier_map_.end()) {
    return pinned->second;
  }
  return TierFromGroupName(group);
}

AdmissionContext FleetScheduler::BuildAdmissionContext(
    const ContainerRequest& request, SloTier tier) const {
  AdmissionContext ctx;
  ctx.vcpus = request.vcpus;
  ctx.tier = tier;
  ctx.defer_limit = config_.admission_defer_limit;
  ctx.waiting = static_cast<int>(waiting_.size());
  ctx.total_threads = up_threads_;
  // Saturation from the per-cell summaries: O(cells), never a machine walk.
  for (int c = 0; c < capacity_index_.NumCells(); ++c) {
    const CellCapacity& cell = capacity_index_.cell(c);
    ctx.free_threads += cell.free_threads;
    if (cell.max_free_threads >= request.vcpus) {
      ctx.fits_now = true;
    }
  }
  // A preemption victim exists when some waiting container is best-effort;
  // waiting_ is a sorted set, so the scan (early-exited) is deterministic.
  for (const int id : waiting_) {
    const auto it = tier_of_.find(id);
    if (it != tier_of_.end() && it->second == SloTier::kBestEffort) {
      ctx.queued_best_effort = true;
      break;
    }
  }
  return ctx;
}

void FleetScheduler::PreemptQueuedBestEffort(double now, EventObserver* observer) {
  int victim = kNoMachine;
  for (const int id : waiting_) {
    const auto it = tier_of_.find(id);
    if (it != tier_of_.end() && it->second == SloTier::kBestEffort) {
      victim = id;
      break;
    }
  }
  if (victim == kNoMachine) {
    return;
  }
  int victim_vcpus = 0;
  int victim_machine = kNoMachine;
  const auto unplaced = unplaced_.find(victim);
  if (unplaced != unplaced_.end()) {
    // Waiting fleet-wide: nothing is held anywhere.
    victim_vcpus = unplaced->second.vcpus;
    unplaced_.erase(unplaced);
  } else {
    // Queued on a machine: removed through the same machine-level Depart
    // primitive the evacuation path uses, with replace=false — shedding
    // must not backfill the queue slot it just freed. A queued container
    // has no state, so the shed itself is free.
    victim_machine = MachineOf(victim);
    NP_CHECK_MSG(victim_machine >= 0,
                 "preemption victim " << victim << " is neither unplaced nor queued");
    MachineScheduler& source = *machines_[static_cast<size_t>(victim_machine)].scheduler;
    const ManagedContainer* managed = source.Find(victim);
    NP_CHECK(managed != nullptr);
    victim_vcpus = managed->request.vcpus;
    source.Depart(victim, now, /*forget_probes=*/true, /*replace=*/false);
    capacity_index_.OnOccupancyChange(victim_machine);
    machine_of_.erase(victim);
    domain_occupancy_->Remove(victim);
  }
  waiting_.erase(victim);
  submit_time_.erase(victim);
  tier_of_.erase(victim);
  for (auto& [group, members] : groups_) {
    members.registry->Forget(victim);
  }
  // The victim counts as a best-effort rejection (preemption is how the
  // rejection happened), and its future trace departure becomes a no-op.
  rejected_.insert(victim);
  ++stats_.tier_rejected[static_cast<size_t>(SloTier::kBestEffort)];
  ++stats_.tier_preempted[static_cast<size_t>(SloTier::kBestEffort)];
  if (observer != nullptr) {
    observer->OnAdmissionDecision(victim, victim_vcpus, SloTier::kBestEffort,
                                  AdmissionDecision::kReject, now);
    observer->OnDeparture(victim_machine, victim, now);
  }
}

FleetOutcome FleetScheduler::Dispatch(const ContainerRequest& request, double now,
                                      EventObserver* observer, DispatchOrigin origin) {
  ++stats_.dispatch_decisions;
  const int previews_before = stats_.dispatch_previews;
  const std::vector<int> preselected = dispatch_->Preselect(request);
  std::vector<MachineCandidate> candidates =
      BuildCandidates(request, dispatch_->NeedsPreviews(),
                      preselected.empty() ? nullptr : &preselected);
  if (candidates.empty() && !preselected.empty()) {
    // A preselection (e.g. sharded cells) that yields no candidate must not
    // park the container while a machine outside it could take it.
    candidates = BuildCandidates(request, dispatch_->NeedsPreviews());
  }
  if (observer != nullptr) {
    TargetSearchStats search;
    search.kind = TargetSearchStats::Kind::kDispatch;
    search.previews = stats_.dispatch_previews - previews_before;
    observer->OnTargetSearch(search, now);
  }
  if (candidates.empty()) {
    // Every machine that could hold the container is failed or draining:
    // wait fleet-wide until capacity returns (DrainUnplaced retries).
    unplaced_[request.id] = request;
    waiting_.insert(request.id);
    // A new fleet-wide waiter is a rebalance candidate the occupancy
    // deltas cannot see.
    capacity_index_.MarkCapacityChanged();
    if (origin == DispatchOrigin::kSubmit) {
      ++stats_.queued;
    }
    ScheduleOutcome outcome;
    outcome.container_id = request.id;
    if (observer != nullptr) {
      observer->OnQueued(kNoMachine, outcome, now);
    }
    return {kNoMachine, std::move(outcome)};
  }
  const int machine_id = ChooseMachine(request, candidates);

  // Decision-time fleet bookkeeping, before the machine-local commit: the
  // next same-instant decision must see this container as routed (it holds
  // its rack slot for the spread dimension, and is no longer unplaced)
  // whether the commit runs inline or on a worker. The machine's Submit
  // reads none of this, so the serial path is unchanged by the hoist.
  unplaced_.erase(request.id);
  machine_of_[request.id] = machine_id;
  domain_occupancy_->Add(request.id, ServiceGroupOf(request.workload.name), machine_id);

  if (hooks_ != nullptr && origin == DispatchOrigin::kSubmit) {
    // Defer the machine-local Submit to the target's cell worker. The
    // engine reserved this decision's callback slot; FinishDispatch runs
    // the tail (capacity index, wait set, counters, OnAdmission/OnQueued)
    // in decision order once the commit lands. The returned outcome is a
    // placeholder — Step ignores it, and direct Submit callers must not
    // run under hooks (see SetParallelHooks).
    auto ticket = std::make_shared<PendingDispatch>();
    ticket->request = request;
    ticket->machine_id = machine_id;
    ticket->now = now;
    ticket->observer = observer;
    hooks_->EnqueueDispatchCommit(std::move(ticket));
    ScheduleOutcome placeholder;
    placeholder.container_id = request.id;
    return {machine_id, std::move(placeholder)};
  }

  ScheduleOutcome outcome =
      machines_[static_cast<size_t>(machine_id)].scheduler->Submit(request, now);
  FinishDispatchTail(machine_id, outcome, now, observer,
                     origin == DispatchOrigin::kSubmit);
  return {machine_id, std::move(outcome)};
}

void FleetScheduler::FinishDispatchTail(int machine_id, const ScheduleOutcome& outcome,
                                        double now, EventObserver* observer,
                                        bool from_submit) {
  capacity_index_.OnOccupancyChange(machine_id);
  if (outcome.admitted) {
    if (!outcome.meets_goal) {
      // A degraded admission creates a rebalance mover; free capacity
      // elsewhere may already hold a better placement for it.
      capacity_index_.MarkCapacityChanged();
    }
    RecordAdmission(outcome, now);
    if (observer != nullptr) {
      observer->OnAdmission(machine_id, outcome, now);
    }
  } else {
    waiting_.insert(outcome.container_id);
    // Likewise a machine-queued waiter.
    capacity_index_.MarkCapacityChanged();
    if (observer != nullptr) {
      observer->OnQueued(machine_id, outcome, now);
    }
  }
  if (from_submit) {
    if (outcome.admitted) {
      ++stats_.dispatched_immediately;
    } else {
      ++stats_.queued;
    }
  }
}

void FleetScheduler::CommitDispatch(PendingDispatch* ticket) {
  ticket->outcome = machines_[static_cast<size_t>(ticket->machine_id)].scheduler->Submit(
      ticket->request, ticket->now);
  ticket->committed.store(true, std::memory_order_release);
}

void FleetScheduler::FinishDispatch(const PendingDispatch& ticket) {
  NP_CHECK_MSG(ticket.committed.load(std::memory_order_acquire),
               "FinishDispatch before the worker committed container "
                   << ticket.request.id);
  FinishDispatchTail(ticket.machine_id, ticket.outcome, ticket.now, ticket.observer,
                     /*from_submit=*/true);
}

FleetOutcome FleetScheduler::Submit(const ContainerRequest& request, double now,
                                    EventObserver* observer) {
  NP_CHECK_MSG(MachineOf(request.id) == kNoMachine && unplaced_.count(request.id) == 0,
               "container " << request.id << " is already live fleet-wide");
  SyncClocks(now);
  ++stats_.submitted;
  if (AdmissionActive()) {
    const SloTier tier = TierOf(request.workload.name);
    const size_t t = static_cast<size_t>(tier);
    ++stats_.tier_arrivals[t];
    if (hooks_ != nullptr) {
      // The admission context reads fleet-wide saturation (capacity-index
      // summaries, the wait set) that same-instant deferred commits update:
      // close them out so the decision sees exactly the serial state.
      hooks_->FlushAll();
    }
    const AdmissionContext ctx = BuildAdmissionContext(request, tier);
    AdmissionDecision decision = admission_->Decide(ctx);
    if (decision == AdmissionDecision::kPreempt && !ctx.queued_best_effort) {
      // Policy bug guard: preempting without a victim degrades to admit.
      decision = AdmissionDecision::kAdmit;
    }
    if (observer != nullptr) {
      observer->OnAdmissionDecision(request.id, request.vcpus, tier, decision, now);
    }
    switch (decision) {
      case AdmissionDecision::kReject:
        // Shed before any state is held: no submit_time_, no wait-set
        // entry, no dispatch — only the rejected_ entry that makes the
        // container's trace departure a no-op.
        ++stats_.tier_rejected[t];
        rejected_.insert(request.id);
        {
          ScheduleOutcome outcome;
          outcome.container_id = request.id;
          return {kNoMachine, std::move(outcome)};
        }
      case AdmissionDecision::kDefer: {
        // Park fleet-wide without a dispatch decision; DrainUnplaced
        // retries it the next time capacity may have returned.
        ++stats_.tier_deferred[t];
        ++stats_.queued;
        tier_of_[request.id] = tier;
        submit_time_[request.id] = now;
        unplaced_[request.id] = request;
        waiting_.insert(request.id);
        capacity_index_.MarkCapacityChanged();
        ScheduleOutcome outcome;
        outcome.container_id = request.id;
        if (observer != nullptr) {
          observer->OnQueued(kNoMachine, outcome, now);
        }
        return {kNoMachine, std::move(outcome)};
      }
      case AdmissionDecision::kPreempt:
        PreemptQueuedBestEffort(now, observer);
        [[fallthrough]];
      case AdmissionDecision::kAdmit:
        ++stats_.tier_admitted[t];
        tier_of_[request.id] = tier;
        break;
    }
  }
  submit_time_[request.id] = now;
  // The dispatched_immediately / queued counters moved into the dispatch
  // tail (FinishDispatchTail), which under parallel hooks runs when the
  // deferred commit's outcome is known.
  return Dispatch(request, now, observer, DispatchOrigin::kSubmit);
}

void FleetScheduler::Depart(int container_id, double now, EventObserver* observer) {
  if (hooks_ != nullptr) {
    // A departure at an already-synced instant would otherwise run with
    // same-instant commits still in flight (SyncClocks skips, so it does
    // not flush); departures read and mutate machine and fleet state, so
    // they are full barriers.
    hooks_->FlushAll();
  }
  SyncClocks(now);
  if (rejected_.erase(container_id) > 0) {
    // The admission layer shed this container (arrival reject or preemption
    // victim): it was never live, so its trace departure is a no-op — no
    // observer callback, no stats. Always empty with admission off.
    return;
  }
  if (unplaced_.erase(container_id) > 0) {
    // Departed while waiting fleet-wide: nothing was held anywhere.
    waiting_.erase(container_id);
    submit_time_.erase(container_id);
    tier_of_.erase(container_id);
    for (auto& [group, members] : groups_) {
      members.registry->Forget(container_id);
    }
    if (observer != nullptr) {
      observer->OnDeparture(kNoMachine, container_id, now);
    }
    return;
  }
  const int machine_id = MachineOf(container_id);
  NP_CHECK_MSG(machine_id >= 0,
               "container " << container_id << " is not live on any machine");

  std::vector<ScheduleOutcome> replaced =
      machines_[static_cast<size_t>(machine_id)].scheduler->Depart(container_id, now);
  capacity_index_.OnOccupancyChange(machine_id);
  if (!replaced.empty()) {
    // Queue admissions and upgrades can leave the free-thread count
    // unchanged while reshaping which threads are free (and which tenants
    // are degraded) — capacity-relevant facts the occupancy delta cannot
    // see.
    capacity_index_.MarkCapacityChanged();
  }
  // Dispatch previews may have cached probes in other topology groups too.
  for (auto& [group, members] : groups_) {
    members.registry->Forget(container_id);
  }
  machine_of_.erase(container_id);
  domain_occupancy_->Remove(container_id);
  waiting_.erase(container_id);
  submit_time_.erase(container_id);
  tier_of_.erase(container_id);
  if (observer != nullptr) {
    observer->OnDeparture(machine_id, container_id, now);
  }

  for (const ScheduleOutcome& outcome : replaced) {
    RecordAdmission(outcome, now);
    if (observer != nullptr) {
      observer->OnAdmission(machine_id, outcome, now);
    }
  }
  if (config_.rebalance_on_departure) {
    RebalancePass(now, observer);
  }
}

void FleetScheduler::SetAvailability(int machine_id, MachineAvailability availability,
                                     double now, EventObserver* observer) {
  // up_threads_ moves only on real up<->down transitions (draining then
  // failing the same machine must not be subtracted twice).
  const bool was_up = machines_[static_cast<size_t>(machine_id)].availability ==
                      MachineAvailability::kUp;
  const bool is_up = availability == MachineAvailability::kUp;
  if (was_up != is_up) {
    const long long threads =
        machines_[static_cast<size_t>(machine_id)].topo->NumHwThreads();
    up_threads_ += is_up ? threads : -threads;
  }
  machines_[static_cast<size_t>(machine_id)].availability = availability;
  // Keep the dispatch policy's membership view current: cell-aware
  // dispatchers read this in place instead of being rebuilt, so cell
  // assignments survive fail/drain/rejoin cycles.
  (*membership_)[static_cast<size_t>(machine_id)].availability = availability;
  // Same for the capacity index: the machine moves into or out of its
  // cell's up-aggregates while keeping its cell for a later rejoin.
  capacity_index_.OnAvailabilityChange(machine_id);
  if (observer != nullptr) {
    observer->OnMachineAvailability(machine_id, availability, now);
  }
}

void FleetScheduler::Fail(int machine_id, double now, EventObserver* observer) {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  NP_CHECK_MSG(availability(machine_id) != MachineAvailability::kFailed,
               "machine " << machine_id << " already failed");
  if (hooks_ != nullptr) {
    hooks_->FlushAll();  // machine events are coordinator barriers
  }
  SyncClocks(now);
  SetAvailability(machine_id, MachineAvailability::kFailed, now, observer);
  Evacuate(machine_id, /*graceful=*/false, now, observer);
}

void FleetScheduler::Drain(int machine_id, double now, EventObserver* observer) {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  NP_CHECK_MSG(availability(machine_id) == MachineAvailability::kUp,
               "only an up machine can drain — machine "
                   << machine_id << " is " << ToString(availability(machine_id)));
  if (hooks_ != nullptr) {
    hooks_->FlushAll();  // machine events are coordinator barriers
  }
  SyncClocks(now);
  SetAvailability(machine_id, MachineAvailability::kDraining, now, observer);
  Evacuate(machine_id, /*graceful=*/true, now, observer);
}

void FleetScheduler::Rejoin(int machine_id, double now, EventObserver* observer) {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  NP_CHECK_MSG(availability(machine_id) != MachineAvailability::kUp,
               "machine " << machine_id << " is already up");
  if (hooks_ != nullptr) {
    hooks_->FlushAll();  // machine events are coordinator barriers
  }
  SyncClocks(now);
  SetAvailability(machine_id, MachineAvailability::kUp, now, observer);
  // The returned (empty) capacity immediately serves waiting work.
  RebalancePass(now, observer);
}

void FleetScheduler::Evacuate(int machine_id, bool graceful, double now,
                              EventObserver* observer) {
  MachineScheduler& source = *machines_[static_cast<size_t>(machine_id)].scheduler;

  struct Evacuee {
    ContainerRequest request;
    bool was_queued = false;
    double current_abs = 0.0;  // producing rate at evacuation time
    double goal_abs = 0.0;
  };
  // Running containers first: they hold progress and were producing, so
  // they get the survivors' last slots ahead of work that was already
  // waiting (which the later requeue keeps in FIFO order anyway).
  std::vector<Evacuee> evacuees;
  for (int id : source.RunningIds()) {
    const ManagedContainer* managed = source.Find(id);
    evacuees.push_back({managed->request, false, managed->predicted_abs_throughput,
                        managed->goal_abs_throughput});
  }
  for (int id : source.PendingIds()) {
    const ManagedContainer* managed = source.Find(id);
    evacuees.push_back({managed->request, true, 0.0, managed->goal_abs_throughput});
  }

  // Empty the machine first. No local re-placement pass — nothing may be
  // re-admitted onto a machine leaving service — and probes are kept: they
  // are group knowledge in the shared registry, not state on the machine.
  for (const Evacuee& evacuee : evacuees) {
    source.Depart(evacuee.request.id, now, /*forget_probes=*/false, /*replace=*/false);
    machine_of_.erase(evacuee.request.id);
    // Off the domain map until it lands again (below or through Dispatch).
    domain_occupancy_->Remove(evacuee.request.id);
  }
  // The machine left the up-aggregates at SetAvailability; this keeps the
  // index's cached free count current for its eventual rejoin.
  capacity_index_.OnOccupancyChange(machine_id);

  EvacuationReport report;
  report.machine_id = machine_id;
  report.reason =
      graceful ? MachineAvailability::kDraining : MachineAvailability::kFailed;
  report.start_seconds = now;
  report.containers = static_cast<int>(evacuees.size());

  for (const Evacuee& evacuee : evacuees) {
    const ContainerRequest& request = evacuee.request;
    // Best target through the shared sharded gain-over-cost search
    // (FindBestTarget — the same capacity-index-guided path rebalance
    // uses), but the counterfactual is not-running (the source is leaving
    // service), so the whole predicted rate is the gain, for live evacuees
    // too. A graceful move of a live container pays the §7 migration
    // estimate plus the network copy of its memory image; a failed
    // machine's container lost its state — nothing to migrate or copy and
    // nothing it was producing, so the restart itself is free and the
    // damage shows up as lost goal attainment and queueing.
    TargetSearch search;
    search.request = &request;
    search.exclude_machine = machine_id;
    search.current_abs = evacuee.current_abs;
    search.goal_abs = evacuee.goal_abs;
    search.improvement_only = false;
    search.pay_migration = graceful && !evacuee.was_queued;
    search.was_queued = evacuee.was_queued;
    search.reason = graceful ? RebalanceMove::Reason::kDrain
                             : RebalanceMove::Reason::kFailover;
    search.previews = &stats_.evac_previews;
    ++stats_.evac_decisions;
    RebalanceMove best_move;
    const int evac_previews_before = stats_.evac_previews;
    const double search_seconds_before = stats_.fleet_op_search_seconds;
    const int best_target = FindBestTarget(search, &best_move);
    if (observer != nullptr) {
      TargetSearchStats search_stats;
      search_stats.kind = TargetSearchStats::Kind::kEvacuation;
      search_stats.previews = stats_.evac_previews - evac_previews_before;
      search_stats.host_seconds =
          stats_.fleet_op_search_seconds - search_seconds_before;
      observer->OnTargetSearch(search_stats, now);
    }

    if (best_target >= 0) {
      ScheduleOutcome moved =
          machines_[static_cast<size_t>(best_target)].scheduler->Submit(request, now);
      NP_CHECK_MSG(moved.admitted, "evacuation preview promised admission of container "
                                       << request.id << " on machine " << best_target);
      machine_of_[request.id] = best_target;
      domain_occupancy_->Add(request.id, ServiceGroupOf(request.workload.name),
                             best_target);
      capacity_index_.OnOccupancyChange(best_target);
      if (!moved.meets_goal) {
        capacity_index_.MarkCapacityChanged();  // the landing is a new mover
      }
      RecordAdmission(moved, now);
      ++stats_.evacuation_moves;
      ++(graceful ? stats_.drain_moves : stats_.failover_moves);
      stats_.cross_machine_move_seconds += best_move.move_seconds;
      stats_.network_copy_seconds += best_move.network_seconds;
      rebalance_log_.push_back(best_move);
      ++report.rehomed;
      report.last_landing_seconds =
          std::max(report.last_landing_seconds, best_move.move_seconds);
      report.move_seconds_total += best_move.move_seconds;
      report.network_seconds_total += best_move.network_seconds;
      if (observer != nullptr) {
        observer->OnAdmission(best_target, moved, now);
        observer->OnMove(best_move, now);
      }
    } else {
      // No target is worth a live migration (none realizable, or the copy
      // costs more than the horizon returns): stop the container — dropping
      // its memory image instead of copying it — and send it back through
      // dispatch, where it restarts from scratch or waits. Any wait is
      // measured from the disruption; Dispatch adds it to waiting_ only if
      // it actually queues, so an instant restart never counts as a queue
      // admission.
      if (!evacuee.was_queued) {
        submit_time_[request.id] = now;
      }
      const FleetOutcome redispatched = Dispatch(request, now, observer);
      if (redispatched.outcome.admitted) {
        ++report.rehomed;  // restarted on another machine, state lost
      } else {
        ++stats_.evacuation_requeues;
        ++report.requeued;
      }
    }
  }

  ++stats_.evacuations;
  evacuations_.push_back(report);
  if (observer != nullptr) {
    observer->OnEvacuation(report, now);
  }
}

void FleetScheduler::DrainUnplaced(double now, EventObserver* observer) {
  // UnplacedIds is oldest-submission-first — the FIFO the machine queues
  // honor locally.
  for (int id : UnplacedIds()) {
    const ContainerRequest request = unplaced_.at(id);
    // Dispatch moves the container onto a machine (even just its queue)
    // whenever one is available again; otherwise it stays unplaced.
    Dispatch(request, now, observer);
  }
}

std::vector<int> FleetScheduler::SelectFleetOpTargets(const ContainerRequest& request,
                                                      int exclude_machine) const {
  const auto eligible = [&](int m) {
    const Machine& machine = machines_[static_cast<size_t>(m)];
    // The free-thread filter is sound on the full-scan path too: every
    // important placement realizes on exactly vcpus free hardware threads,
    // so a machine with fewer free threads can never preview realizable —
    // skipping it changes no decision, only saves the preview.
    return m != exclude_machine && machine.availability == MachineAvailability::kUp &&
           request.vcpus <= machine.topo->NumHwThreads() &&
           machine.scheduler->occupancy().FreeThreadCount() >= request.vcpus;
  };
  std::vector<int> targets;
  if (config_.sharded_fleet_ops) {
    const std::vector<int> cells =
        capacity_index_.PromisingCells(request.vcpus, config_.fleet_probes);
    if (!cells.empty()) {
      for (int c : cells) {
        for (int m : capacity_index_.layout().cells[static_cast<size_t>(c)]) {
          if (eligible(m)) {
            targets.push_back(m);
          }
        }
      }
      // Ascending ids, so cell sampling only narrows the set the full scan
      // would consider — it never reorders ties.
      std::sort(targets.begin(), targets.end());
      return targets;
    }
    // The index proved no cell can fit the request right now. Fall through
    // to the full walk as a safety net: with a correct index the
    // per-machine filter rejects every machine, so this costs a scan but
    // zero previews and the sublinear preview bound stands.
  }
  for (int m = 0; m < NumMachines(); ++m) {
    if (eligible(m)) {
      targets.push_back(m);
    }
  }
  return targets;
}

int FleetScheduler::FindBestTarget(const TargetSearch& search, RebalanceMove* best_move) {
  const auto search_start = std::chrono::steady_clock::now();
  const ContainerRequest& request = *search.request;
  int best_target = -1;
  double best_score = 0.0;  // spread-discounted surplus the ranking compares
  // Pass 1 (coordinator): spread-filter the targets and make sure every
  // surviving target's group has probe measurements. EnsureGroupProbes is
  // idempotent per group, so running it here — in the same target order the
  // fused loop used — charges exactly the probe runs the serial code did.
  struct EligibleTarget {
    int machine_id = kNoMachine;
    int colocated = 0;
  };
  std::vector<EligibleTarget> eligible;
  for (int t : SelectFleetOpTargets(request, search.exclude_machine)) {
    // Spread dimension, mirrored from dispatch: a rack already holding
    // replicas of the mover's service group is discounted, and hard-skipped
    // past the cap (declining a move is always safe here — the container
    // stays where it is or falls back through Dispatch, where the cap is
    // soft). Checked before the preview, so capped racks also cost nothing.
    // A rebalance mover still occupies its source rack, so in-rack targets
    // see its own replica — the spread dimension deliberately prefers
    // moving it out. Both branches run on the indexed and full-scan target
    // paths alike, preserving their byte-identical equivalence.
    int colocated = 0;
    if (SpreadActive()) {
      colocated = RackColocation(request, t);
      if (config_.spread_max_per_rack > 0 && colocated >= config_.spread_max_per_rack) {
        continue;
      }
    }
    EnsureGroupProbes(machines_[static_cast<size_t>(t)].group, request);
    eligible.push_back({t, colocated});
  }
  // Pass 2: previews. Each one is a const read of its own machine (plus the
  // shard-locked registry), so under parallel hooks the batch fans out; the
  // serial path fills the same vector inline. Either way the previews land
  // indexed by eligible-target order, which pass 3 walks — identical
  // evaluation order, identical arithmetic, byte-identical result.
  std::vector<MachineScheduler::AdmissionPreview> previews(eligible.size());
  if (hooks_ != nullptr && eligible.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(eligible.size());
    for (size_t i = 0; i < eligible.size(); ++i) {
      const MachineScheduler* scheduler =
          machines_[static_cast<size_t>(eligible[i].machine_id)].scheduler.get();
      MachineScheduler::AdmissionPreview* slot = &previews[i];
      tasks.push_back([scheduler, slot, &request] {
        *slot = scheduler->PreviewAdmission(request);
      });
    }
    hooks_->RunBatch(&tasks);
  } else {
    for (size_t i = 0; i < eligible.size(); ++i) {
      previews[i] = machines_[static_cast<size_t>(eligible[i].machine_id)]
                        .scheduler->PreviewAdmission(request);
    }
  }
  if (search.previews != nullptr) {
    *search.previews += static_cast<int>(eligible.size());
  }
  // Pass 3: the scoring loop, verbatim from the fused version.
  for (size_t i = 0; i < eligible.size(); ++i) {
    const int t = eligible[i].machine_id;
    const int colocated = eligible[i].colocated;
    const MachineScheduler::AdmissionPreview& preview = previews[i];
    if (!preview.realizable) {
      continue;
    }
    double gain_rate = 0.0;
    if (search.improvement_only) {
      // A live incumbent only moves for a modeled, clearly better rate.
      if (preview.predicted_abs <=
          search.current_abs * (1.0 + config_.rebalance_min_gain)) {
        continue;
      }
      gain_rate = preview.predicted_abs - search.current_abs;
    } else {
      // Running anywhere beats waiting (or a source leaving service).
      // Under a model-free target policy the preview predicts nothing;
      // credit the operator goal instead.
      gain_rate = preview.predicted_abs > 0.0 ? preview.predicted_abs : search.goal_abs;
    }
    if (gain_rate <= 0.0) {
      continue;
    }
    // A container without live state (queued, or restarting off a failed
    // machine) moves for free; a live one pays the §7 migration estimate
    // plus the network copy of its memory image, and loses
    // overhead_fraction of its current rate for the whole copy.
    double move_seconds = 0.0;
    double network_seconds = 0.0;
    double cost_ops = 0.0;
    if (search.pay_migration) {
      const MigrationEstimate estimate = MigratorFor(request).Migrate(request.workload);
      network_seconds = config_.network_seconds_per_gb * request.workload.TotalMemoryGb();
      move_seconds = estimate.seconds + network_seconds;
      cost_ops = move_seconds * estimate.overhead_fraction * search.current_abs;
    }
    const double gain_ops = gain_rate * config_.rebalance_horizon_seconds;
    if (gain_ops <= cost_ops) {
      continue;
    }
    const double surplus = gain_ops - cost_ops;
    const double score = surplus / (1.0 + config_.spread_weight * colocated);
    if (best_target < 0 || score > best_score) {
      best_target = t;
      best_score = score;
      best_move->container_id = request.id;
      best_move->from_machine = search.exclude_machine;
      best_move->to_machine = t;
      best_move->was_queued = search.was_queued;
      best_move->reason = search.reason;
      best_move->predicted_gain_ops = gain_ops;
      best_move->modeled_cost_ops = cost_ops;
      best_move->move_seconds = move_seconds;
      best_move->network_seconds = network_seconds;
    }
  }
  stats_.fleet_op_search_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - search_start)
          .count();
  return best_target;
}

void FleetScheduler::RebalancePass(double now, EventObserver* observer) {
  if (!capacity_index_.capacity_dirty()) {
    // Nothing capacity-relevant changed since the last pass: re-running it
    // would reproduce its decisions. Skip — zero previews, zero dispatches.
    ++stats_.rebalance_passes_skipped;
    return;
  }
  // Consume the flag up front: anything this pass itself changes (moves,
  // freed capacity, new waiters) re-sets it, so the next trigger runs
  // another pass, until a pass changes nothing.
  capacity_index_.ClearCapacityDirty();
  ++stats_.rebalance_passes;
  DrainUnplaced(now, observer);
  if (machines_.size() < 2) {
    return;
  }
  struct Mover {
    int id = 0;
    int from = 0;
    bool queued = false;
  };
  // Queued containers first (oldest submission first, fleet-wide — the FIFO
  // the per-machine queues honor locally), then degraded incumbents.
  std::vector<Mover> movers;
  for (int m = 0; m < NumMachines(); ++m) {
    for (int id : machines_[static_cast<size_t>(m)].scheduler->PendingIds()) {
      movers.push_back({id, m, true});
    }
  }
  std::stable_sort(movers.begin(), movers.end(), [&](const Mover& a, const Mover& b) {
    return submit_time_.at(a.id) < submit_time_.at(b.id);
  });
  for (int m = 0; m < NumMachines(); ++m) {
    for (int id : machines_[static_cast<size_t>(m)].scheduler->RunningIds()) {
      const ManagedContainer* c = machines_[static_cast<size_t>(m)].scheduler->Find(id);
      if (!c->meets_goal && c->predicted_abs_throughput > 0.0) {
        movers.push_back({id, m, false});
      }
    }
  }

  for (const Mover& mover : movers) {
    // Re-check: an earlier move's source re-placement pass may have already
    // admitted or upgraded this container.
    if (MachineOf(mover.id) != mover.from) {
      continue;
    }
    MachineScheduler& source = *machines_[static_cast<size_t>(mover.from)].scheduler;
    const ManagedContainer* managed = source.Find(mover.id);
    if (managed == nullptr ||
        (mover.queued ? managed->state != ContainerState::kPending
                      : managed->state != ContainerState::kRunning || managed->meets_goal)) {
      continue;
    }
    const ContainerRequest request = managed->request;
    const double current_abs = mover.queued ? 0.0 : managed->predicted_abs_throughput;

    // Best target through the shared sharded gain-over-cost search. A
    // queued mover never ran — no memory on the source, nothing it was
    // producing — so the move is free and any realizable placement gains;
    // a live incumbent is min-gain gated and pays the migration model.
    TargetSearch search;
    search.request = &request;
    search.exclude_machine = mover.from;
    search.current_abs = current_abs;
    search.goal_abs = managed->goal_abs_throughput;
    search.improvement_only = !mover.queued;
    search.pay_migration = !mover.queued;
    search.was_queued = mover.queued;
    search.reason = RebalanceMove::Reason::kRebalance;
    search.previews = &stats_.rebalance_previews;
    ++stats_.rebalance_decisions;
    RebalanceMove best_move;
    const int rebalance_previews_before = stats_.rebalance_previews;
    const double search_seconds_before = stats_.fleet_op_search_seconds;
    const int best_target = FindBestTarget(search, &best_move);
    if (observer != nullptr) {
      TargetSearchStats search_stats;
      search_stats.kind = TargetSearchStats::Kind::kRebalance;
      search_stats.previews = stats_.rebalance_previews - rebalance_previews_before;
      search_stats.host_seconds =
          stats_.fleet_op_search_seconds - search_seconds_before;
      observer->OnTargetSearch(search_stats, now);
    }
    if (best_target < 0) {
      continue;
    }

    // Commit: free the container on the source (keeping its probes — they
    // travel with it when the target shares the topology group), then admit
    // it on the target the preview vouched for.
    std::vector<ScheduleOutcome> freed =
        source.Depart(mover.id, now, /*forget_probes=*/false);
    capacity_index_.OnOccupancyChange(mover.from);
    if (!freed.empty()) {
      capacity_index_.MarkCapacityChanged();
    }
    for (const ScheduleOutcome& outcome : freed) {
      RecordAdmission(outcome, now);
      if (observer != nullptr) {
        observer->OnAdmission(mover.from, outcome, now);
      }
    }
    ScheduleOutcome moved =
        machines_[static_cast<size_t>(best_target)].scheduler->Submit(request, now);
    NP_CHECK_MSG(moved.admitted, "rebalance preview promised admission of container "
                                     << mover.id << " on machine " << best_target);
    machine_of_[mover.id] = best_target;
    domain_occupancy_->Move(mover.id, best_target);
    capacity_index_.OnOccupancyChange(best_target);
    if (!moved.meets_goal) {
      capacity_index_.MarkCapacityChanged();
    }
    RecordAdmission(moved, now);
    ++stats_.rebalance_moves;
    stats_.cross_machine_move_seconds += best_move.move_seconds;
    stats_.network_copy_seconds += best_move.network_seconds;
    rebalance_log_.push_back(best_move);
    if (observer != nullptr) {
      observer->OnAdmission(best_target, moved, now);
      observer->OnMove(best_move, now);
    }
  }
}

void FleetScheduler::Step(const FleetEvent& event, EventObserver* observer) {
  const double now = event.time_seconds;
  if (const ContainerArrival* arrival = event.arrival()) {
    Submit(RequestFromArrival(*arrival), now, observer);
    return;
  }
  if (const ContainerDeparture* departure = event.departure()) {
    Depart(departure->container_id, now, observer);
    return;
  }
  NP_CHECK_MSG(event.domain_scope() == DomainScope::kMachine,
               ToString(event.domain_scope())
                   << "-scoped " << ToString(event.kind()) << " at t=" << now
                   << " reached Step() unexpanded — inject it through "
                      "InjectMachineEvents(stream, events, fleet.domains())");
  switch (event.kind()) {
    case FleetEventKind::kMachineFail:
      Fail(event.machine_id(), now, observer);
      return;
    case FleetEventKind::kMachineDrain:
      Drain(event.machine_id(), now, observer);
      return;
    case FleetEventKind::kMachineRejoin:
      Rejoin(event.machine_id(), now, observer);
      return;
    default:
      NP_CHECK_MSG(false, "unhandled event kind " << ToString(event.kind()));
  }
}

void FleetScheduler::Replay(const EventStream& trace, EventObserver* observer) {
  for (const FleetEvent& event : trace) {
    Step(event, observer);
  }
  if (hooks_ != nullptr) {
    // The caller reads fleet state (reports, snapshots) after Replay
    // returns; no dispatch commit may still be in flight.
    hooks_->FlushAll();
  }
}

int FleetScheduler::MachineOf(int container_id) const {
  const auto it = machine_of_.find(container_id);
  return it == machine_of_.end() ? kNoMachine : it->second;
}

std::vector<int> FleetScheduler::UnplacedIds() const {
  std::vector<int> ids;
  ids.reserve(unplaced_.size());
  for (const auto& [id, request] : unplaced_) {
    ids.push_back(id);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
    return submit_time_.at(a) < submit_time_.at(b);
  });
  return ids;
}

std::vector<double> FleetScheduler::TimeAveragedUtilizations() const {
  std::vector<double> utilizations;
  utilizations.reserve(machines_.size());
  for (const Machine& machine : machines_) {
    utilizations.push_back(machine.scheduler->TimeAveragedUtilization());
  }
  return utilizations;
}

FleetReport FleetScheduler::ReplayWithEvaluation(const EventStream& trace,
                                                 EventObserver* observer,
                                                 ReplaySampler* sampler) {
  FleetReport report;
  AdmissionCounter counter(observer);
  double last_time = 0.0;
  double attainment_weight = 0.0;
  double at_goal_weight = 0.0;
  double container_seconds = 0.0;
  // Per-tier parallel accumulators (admission runs only): fed from the same
  // snapshots as the aggregate integrals but kept in separate variables, so
  // the aggregate's accumulation order — and an admission-off replay — is
  // arithmetically untouched.
  std::array<double, kNumSloTiers> tier_attainment{};
  std::array<double, kNumSloTiers> tier_seconds{};
  const auto tier_index = [this](int container_id) {
    const auto it = tier_of_.find(container_id);
    return static_cast<size_t>(it == tier_of_.end() ? SloTier::kStandard
                                                    : it->second);
  };
  // Next snapshot instant; the first sample lands at one full interval.
  double next_sample = sampler != nullptr ? sampler->IntervalSeconds() : 0.0;

  for (const FleetEvent& event : trace) {
    const double dt = event.time_seconds - last_time;
    if (dt > 0.0) {
      if (hooks_ != nullptr) {
        // The snapshots below read every machine's live tenant set; commits
        // queued by same-instant arrivals must land first.
        hooks_->FlushAll();
      }
      // The tenant set is constant over (last_time, event.time], so the
      // integrals grow linearly across the interval. The sampler needs the
      // per-second rates to interpolate at snapshot instants; the report
      // integrals keep their original per-tenant accumulation order so a
      // sampler-free replay is arithmetically untouched.
      const double base_attainment = attainment_weight;
      const double base_at_goal = at_goal_weight;
      const double base_container = container_seconds;
      double ratio_rate = 0.0;
      double at_goal_rate = 0.0;
      double container_rate = 0.0;
      // Under parallel hooks the per-machine performance snapshots — the
      // dominant per-interval cost, a const model evaluation per tenant —
      // fan out across the workers into a scratch table; the fold below
      // then consumes them in machine-index order with the exact serial
      // arithmetic. Serial replay keeps the fused snapshot-and-fold loop.
      std::vector<std::vector<MachineScheduler::TenantSnapshot>> scratch;
      if (hooks_ != nullptr && machines_.size() > 1) {
        scratch.resize(machines_.size());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(machines_.size());
        for (size_t m = 0; m < machines_.size(); ++m) {
          const Machine* machine = &machines_[m];
          std::vector<MachineScheduler::TenantSnapshot>* slot = &scratch[m];
          tasks.push_back([machine, slot] {
            *slot = machine->scheduler->SnapshotPerformance(*machine->multi);
          });
        }
        hooks_->RunBatch(&tasks);
      }
      for (size_t mi = 0; mi < machines_.size(); ++mi) {
        const Machine& machine = machines_[mi];
        const std::vector<MachineScheduler::TenantSnapshot> snaps =
            scratch.empty()
                ? machine.scheduler->SnapshotPerformance(*machine.multi)
                : std::move(scratch[mi]);
        for (const MachineScheduler::TenantSnapshot& snap : snaps) {
          const double ratio =
              snap.goal_abs_throughput > 0.0
                  ? std::min(1.0, snap.measured_abs_throughput / snap.goal_abs_throughput)
                  : 1.0;
          attainment_weight += ratio * dt;
          ratio_rate += ratio;
          if (ratio >= 0.999) {
            at_goal_weight += dt;
            at_goal_rate += 1.0;
          }
          container_seconds += dt;
          container_rate += 1.0;
          if (AdmissionActive()) {
            const size_t t = tier_index(snap.container_id);
            tier_attainment[t] += ratio * dt;
            tier_seconds[t] += dt;
          }
        }
        // A queued container attains nothing while it waits.
        const std::vector<int> pending_ids = machine.scheduler->PendingIds();
        const double pending = static_cast<double>(pending_ids.size());
        container_seconds += pending * dt;
        container_rate += pending;
        if (AdmissionActive()) {
          for (const int id : pending_ids) {
            tier_seconds[tier_index(id)] += dt;
          }
        }
      }
      // Neither does one waiting fleet-wide for an available machine.
      container_seconds += static_cast<double>(unplaced_.size()) * dt;
      container_rate += static_cast<double>(unplaced_.size());
      if (AdmissionActive()) {
        for (const auto& [id, request] : unplaced_) {
          tier_seconds[tier_index(id)] += dt;
        }
      }

      // Snapshots due inside this interval see the fleet as it stood after
      // the previous event (a sample at exactly event time is pre-event).
      while (sampler != nullptr && next_sample <= event.time_seconds) {
        const double part = next_sample - last_time;
        const double cs = base_container + container_rate * part;
        sampler->Sample(next_sample,
                        cs > 0.0 ? (base_attainment + ratio_rate * part) / cs : 1.0,
                        cs > 0.0 ? (base_at_goal + at_goal_rate * part) / cs : 1.0);
        next_sample += sampler->IntervalSeconds();
      }
      last_time = event.time_seconds;
    }

    const auto start = std::chrono::steady_clock::now();
    Step(event, &counter);
    report.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  if (hooks_ != nullptr) {
    // Deferred commits tally their admission through the counter at drain
    // time; every one must have landed before the report reads the totals.
    hooks_->FlushAll();
  }
  report.decisions = counter.admissions;
  for (size_t t = 0; t < static_cast<size_t>(kNumSloTiers); ++t) {
    report.tier_container_seconds[t] = tier_seconds[t];
    report.tier_goal_attainment[t] =
        tier_seconds[t] > 0.0 ? tier_attainment[t] / tier_seconds[t] : 1.0;
  }
  report.goal_attainment =
      container_seconds > 0.0 ? attainment_weight / container_seconds : 1.0;
  report.container_seconds_at_goal =
      container_seconds > 0.0 ? at_goal_weight / container_seconds : 1.0;
  report.machine_utilizations = TimeAveragedUtilizations();
  double busy_weight = 0.0;
  double thread_weight = 0.0;
  report.utilization_min = 1.0;
  report.utilization_max = 0.0;
  for (size_t m = 0; m < machines_.size(); ++m) {
    const double threads = machines_[m].topo->NumHwThreads();
    busy_weight += report.machine_utilizations[m] * threads;
    thread_weight += threads;
    report.utilization_min = std::min(report.utilization_min, report.machine_utilizations[m]);
    report.utilization_max = std::max(report.utilization_max, report.machine_utilizations[m]);
  }
  report.mean_utilization = thread_weight > 0.0 ? busy_weight / thread_weight : 0.0;
  report.mean_queue_wait_seconds =
      stats_.queue_admissions > 0
          ? stats_.queue_wait_seconds / stats_.queue_admissions
          : 0.0;
  return report;
}

}  // namespace numaplace
