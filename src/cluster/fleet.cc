#include "src/cluster/fleet.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"

namespace numaplace {

namespace {

ContainerRequest RequestFromEvent(const TraceEvent& event) {
  ContainerRequest request;
  request.id = event.container_id;
  request.workload = event.workload;
  request.vcpus = event.vcpus;
  request.goal_fraction = event.goal_fraction;
  request.latency_sensitive = event.latency_sensitive;
  return request;
}

}  // namespace

FleetScheduler::FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config)
    : FleetScheduler(std::move(specs), config, MakeDispatchPolicy(config.dispatch)) {}

FleetScheduler::FleetScheduler(std::vector<MachineSpec> specs, FleetConfig config,
                               std::unique_ptr<DispatchPolicy> dispatch)
    : config_(std::move(config)),
      dispatch_(std::move(dispatch)),
      fast_migrator_(),
      throttled_migrator_() {
  NP_CHECK(dispatch_ != nullptr);
  NP_CHECK_MSG(!specs.empty(), "a fleet needs at least one machine");
  NP_CHECK(config_.network_seconds_per_gb >= 0.0);
  NP_CHECK(config_.rebalance_horizon_seconds > 0.0);
  NP_CHECK(config_.rebalance_min_gain >= 0.0);
  machines_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Machine machine;
    machine.group = specs[i].topo.name();
    machine.topo = std::make_unique<Topology>(std::move(specs[i].topo));
    machine.solo = std::make_unique<PerformanceModel>(
        *machine.topo, config_.noise_sigma, config_.noise_seed + i);
    machine.multi = std::make_unique<MultiTenantModel>(
        *machine.topo, config_.noise_sigma, config_.noise_seed + i);
    Group& group = groups_[machine.group];
    if (group.registry == nullptr) {
      group.registry = std::make_unique<ModelRegistry>();
    }
    group.machine_ids.push_back(static_cast<int>(i));
    machine.scheduler = std::make_unique<MachineScheduler>(
        *machine.topo, *machine.solo, group.registry.get(), specs[i].scheduler);
    machines_.push_back(std::move(machine));
  }
}

MachineScheduler& FleetScheduler::machine(int machine_id) {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].scheduler;
}

const MachineScheduler& FleetScheduler::machine(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].scheduler;
}

const Topology& FleetScheduler::topology(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].topo;
}

const MultiTenantModel& FleetScheduler::multi_model(int machine_id) const {
  NP_CHECK(machine_id >= 0 && machine_id < NumMachines());
  return *machines_[static_cast<size_t>(machine_id)].multi;
}

std::vector<std::string> FleetScheduler::GroupNames() const {
  std::vector<std::string> names;
  for (const Machine& machine : machines_) {
    if (std::find(names.begin(), names.end(), machine.group) == names.end()) {
      names.push_back(machine.group);
    }
  }
  return names;
}

ModelRegistry& FleetScheduler::GroupRegistry(const std::string& group) {
  const auto it = groups_.find(group);
  NP_CHECK_MSG(it != groups_.end(), "no machine of topology '" << group << "' in the fleet");
  return *it->second.registry;
}

void FleetScheduler::ProvidePlacements(const std::string& group,
                                       const ImportantPlacementSet& ips) {
  const auto it = groups_.find(group);
  NP_CHECK_MSG(it != groups_.end(), "no machine of topology '" << group << "' in the fleet");
  for (int m : it->second.machine_ids) {
    machines_[static_cast<size_t>(m)].scheduler->ProvidePlacements(ips);
  }
}

void FleetScheduler::SyncClocks(double now) {
  for (Machine& machine : machines_) {
    machine.scheduler->SyncClock(now);
  }
}

const Migrator& FleetScheduler::MigratorFor(const ContainerRequest& request) const {
  return request.latency_sensitive ? static_cast<const Migrator&>(throttled_migrator_)
                                   : static_cast<const Migrator&>(fast_migrator_);
}

void FleetScheduler::EnsureGroupProbes(const std::string& group,
                                       const ContainerRequest& request) {
  for (int m : groups_.at(group).machine_ids) {
    MachineScheduler& scheduler = *machines_[static_cast<size_t>(m)].scheduler;
    if (!scheduler.policy().UsesModel()) {
      continue;
    }
    // The group's first model-using machine probes on behalf of every
    // machine sharing the registry; a cached prediction makes this a no-op.
    const MachineScheduler::ProbeCharge charge = scheduler.EnsureProbes(request);
    if (charge.ran) {
      stats_.fleet_probe_runs += 2;
      stats_.fleet_probe_seconds += charge.seconds;
    }
    return;
  }
}

std::vector<MachineCandidate> FleetScheduler::BuildCandidates(
    const ContainerRequest& request, bool with_previews) {
  if (with_previews) {
    for (const auto& [group, members] : groups_) {
      const Topology& topo = *machines_[static_cast<size_t>(members.machine_ids.front())].topo;
      if (request.vcpus <= topo.NumHwThreads()) {
        EnsureGroupProbes(group, request);
      }
    }
  }
  std::vector<MachineCandidate> candidates;
  candidates.reserve(machines_.size());
  for (int m = 0; m < NumMachines(); ++m) {
    Machine& machine = machines_[static_cast<size_t>(m)];
    if (request.vcpus > machine.topo->NumHwThreads()) {
      continue;  // a machine the container cannot fit on is not a candidate
    }
    MachineCandidate candidate;
    candidate.machine_id = m;
    candidate.scheduler = machine.scheduler.get();
    candidate.utilization = machine.scheduler->occupancy().Utilization();
    candidate.free_threads = machine.scheduler->occupancy().FreeThreadCount();
    candidate.pending = static_cast<int>(machine.scheduler->PendingIds().size());
    if (with_previews) {
      candidate.preview = machine.scheduler->PreviewAdmission(request);
      candidate.preview_valid = true;
    }
    candidates.push_back(std::move(candidate));
  }
  NP_CHECK_MSG(!candidates.empty(),
               "container " << request.id << " (" << request.vcpus
                            << " vCPUs) is larger than every machine in the fleet");
  return candidates;
}

void FleetScheduler::RecordAdmission(const ScheduleOutcome& outcome, double now) {
  if (!outcome.admitted || waiting_.erase(outcome.container_id) == 0) {
    return;
  }
  stats_.queue_wait_seconds += now - submit_time_.at(outcome.container_id);
  ++stats_.queue_admissions;
}

FleetOutcome FleetScheduler::Submit(const ContainerRequest& request, double now) {
  NP_CHECK_MSG(MachineOf(request.id) == -1,
               "container " << request.id << " is already live fleet-wide");
  SyncClocks(now);
  ++stats_.submitted;

  std::vector<MachineCandidate> candidates =
      BuildCandidates(request, dispatch_->NeedsPreviews());
  DispatchContext ctx;
  ctx.request = &request;
  ctx.machines = &candidates;
  const std::vector<size_t> order = dispatch_->Rank(ctx);
  NP_CHECK_MSG(!order.empty(),
               "dispatch policy '" << dispatch_->name() << "' ranked no machines");
  size_t chosen = order.front();
  NP_CHECK_MSG(chosen < candidates.size(), "dispatch policy '" << dispatch_->name()
                                                               << "' ranked machine index "
                                                               << chosen << " out of range");
  if (dispatch_->NeedsPreviews()) {
    // Prefer the best-ranked machine that can admit right now over queueing
    // on the overall favorite.
    for (size_t idx : order) {
      NP_CHECK(idx < candidates.size());
      if (candidates[idx].preview.realizable) {
        chosen = idx;
        break;
      }
    }
  }
  const int machine_id = candidates[chosen].machine_id;

  ScheduleOutcome outcome =
      machines_[static_cast<size_t>(machine_id)].scheduler->Submit(request, now);
  machine_of_[request.id] = machine_id;
  submit_time_[request.id] = now;
  if (outcome.admitted) {
    ++stats_.dispatched_immediately;
  } else {
    waiting_.insert(request.id);
    ++stats_.queued;
  }
  return {machine_id, std::move(outcome)};
}

std::vector<FleetOutcome> FleetScheduler::Depart(int container_id, double now) {
  const int machine_id = MachineOf(container_id);
  NP_CHECK_MSG(machine_id >= 0,
               "container " << container_id << " is not live on any machine");
  SyncClocks(now);

  std::vector<ScheduleOutcome> replaced =
      machines_[static_cast<size_t>(machine_id)].scheduler->Depart(container_id, now);
  // Dispatch previews may have cached probes in other topology groups too.
  for (auto& [group, members] : groups_) {
    members.registry->Forget(container_id);
  }
  machine_of_.erase(container_id);
  waiting_.erase(container_id);
  submit_time_.erase(container_id);

  std::vector<FleetOutcome> outcomes;
  outcomes.reserve(replaced.size());
  for (ScheduleOutcome& outcome : replaced) {
    RecordAdmission(outcome, now);
    outcomes.push_back({machine_id, std::move(outcome)});
  }
  if (config_.rebalance_on_departure) {
    RebalancePass(now, outcomes);
  }
  return outcomes;
}

void FleetScheduler::RebalancePass(double now, std::vector<FleetOutcome>& outcomes) {
  if (machines_.size() < 2) {
    return;
  }
  struct Mover {
    int id = 0;
    int from = 0;
    bool queued = false;
  };
  // Queued containers first (oldest submission first, fleet-wide — the FIFO
  // the per-machine queues honor locally), then degraded incumbents.
  std::vector<Mover> movers;
  for (int m = 0; m < NumMachines(); ++m) {
    for (int id : machines_[static_cast<size_t>(m)].scheduler->PendingIds()) {
      movers.push_back({id, m, true});
    }
  }
  std::stable_sort(movers.begin(), movers.end(), [&](const Mover& a, const Mover& b) {
    return submit_time_.at(a.id) < submit_time_.at(b.id);
  });
  for (int m = 0; m < NumMachines(); ++m) {
    for (int id : machines_[static_cast<size_t>(m)].scheduler->RunningIds()) {
      const ManagedContainer* c = machines_[static_cast<size_t>(m)].scheduler->Find(id);
      if (!c->meets_goal && c->predicted_abs_throughput > 0.0) {
        movers.push_back({id, m, false});
      }
    }
  }

  for (const Mover& mover : movers) {
    // Re-check: an earlier move's source re-placement pass may have already
    // admitted or upgraded this container.
    if (MachineOf(mover.id) != mover.from) {
      continue;
    }
    MachineScheduler& source = *machines_[static_cast<size_t>(mover.from)].scheduler;
    const ManagedContainer* managed = source.Find(mover.id);
    if (managed == nullptr ||
        (mover.queued ? managed->state != ContainerState::kPending
                      : managed->state != ContainerState::kRunning || managed->meets_goal)) {
      continue;
    }
    const ContainerRequest request = managed->request;
    const double current_abs = mover.queued ? 0.0 : managed->predicted_abs_throughput;

    // Score every other machine the container fits on; keep the move with
    // the largest gain-over-cost surplus.
    int best_target = -1;
    double best_surplus = 0.0;
    RebalanceMove best_move;
    for (int t = 0; t < NumMachines(); ++t) {
      if (t == mover.from) {
        continue;
      }
      Machine& target = machines_[static_cast<size_t>(t)];
      if (request.vcpus > target.topo->NumHwThreads()) {
        continue;
      }
      EnsureGroupProbes(target.group, request);
      const MachineScheduler::AdmissionPreview preview =
          target.scheduler->PreviewAdmission(request);
      if (!preview.realizable) {
        continue;
      }
      double gain_rate = 0.0;
      if (mover.queued) {
        // Running anywhere beats waiting. Under a model-free target policy
        // the preview predicts nothing; credit the operator goal instead.
        gain_rate = preview.predicted_abs > 0.0 ? preview.predicted_abs
                                                : managed->goal_abs_throughput;
      } else {
        // A live incumbent only moves for a modeled, clearly better rate.
        if (preview.predicted_abs <=
            current_abs * (1.0 + config_.rebalance_min_gain)) {
          continue;
        }
        gain_rate = preview.predicted_abs - current_abs;
      }
      if (gain_rate <= 0.0) {
        continue;
      }
      // A queued mover never ran: it has no memory on the source machine,
      // so there is nothing to migrate or copy and nothing it was producing
      // — the move is free. A live incumbent pays the §7 migration estimate
      // plus the network copy of its memory image, and loses
      // overhead_fraction of its current rate for the whole copy.
      double move_seconds = 0.0;
      double network_seconds = 0.0;
      double cost_ops = 0.0;
      if (!mover.queued) {
        const MigrationEstimate estimate = MigratorFor(request).Migrate(request.workload);
        network_seconds = config_.network_seconds_per_gb * request.workload.TotalMemoryGb();
        move_seconds = estimate.seconds + network_seconds;
        cost_ops = move_seconds * estimate.overhead_fraction * current_abs;
      }
      const double gain_ops = gain_rate * config_.rebalance_horizon_seconds;
      if (gain_ops <= cost_ops) {
        continue;
      }
      const double surplus = gain_ops - cost_ops;
      if (best_target < 0 || surplus > best_surplus) {
        best_target = t;
        best_surplus = surplus;
        best_move = {mover.id,  mover.from, t,           mover.queued,
                     gain_ops,  cost_ops,   move_seconds, network_seconds};
      }
    }
    if (best_target < 0) {
      continue;
    }

    // Commit: free the container on the source (keeping its probes — they
    // travel with it when the target shares the topology group), then admit
    // it on the target the preview vouched for.
    std::vector<ScheduleOutcome> freed =
        source.Depart(mover.id, now, /*forget_probes=*/false);
    for (ScheduleOutcome& outcome : freed) {
      RecordAdmission(outcome, now);
      outcomes.push_back({mover.from, std::move(outcome)});
    }
    ScheduleOutcome moved =
        machines_[static_cast<size_t>(best_target)].scheduler->Submit(request, now);
    NP_CHECK_MSG(moved.admitted, "rebalance preview promised admission of container "
                                     << mover.id << " on machine " << best_target);
    machine_of_[mover.id] = best_target;
    RecordAdmission(moved, now);
    ++stats_.rebalance_moves;
    stats_.cross_machine_move_seconds += best_move.move_seconds;
    stats_.network_copy_seconds += best_move.network_seconds;
    rebalance_log_.push_back(best_move);
    outcomes.push_back({best_target, std::move(moved)});
  }
}

int FleetScheduler::MachineOf(int container_id) const {
  const auto it = machine_of_.find(container_id);
  return it == machine_of_.end() ? -1 : it->second;
}

std::vector<double> FleetScheduler::TimeAveragedUtilizations() const {
  std::vector<double> utilizations;
  utilizations.reserve(machines_.size());
  for (const Machine& machine : machines_) {
    utilizations.push_back(machine.scheduler->TimeAveragedUtilization());
  }
  return utilizations;
}

FleetReport FleetScheduler::ReplayWithEvaluation(const std::vector<TraceEvent>& trace) {
  FleetReport report;
  double last_time = 0.0;
  double attainment_weight = 0.0;
  double at_goal_weight = 0.0;
  double container_seconds = 0.0;

  for (const TraceEvent& event : trace) {
    const double dt = event.time_seconds - last_time;
    if (dt > 0.0) {
      for (const Machine& machine : machines_) {
        for (const MachineScheduler::TenantSnapshot& snap :
             machine.scheduler->SnapshotPerformance(*machine.multi)) {
          const double ratio =
              snap.goal_abs_throughput > 0.0
                  ? std::min(1.0, snap.measured_abs_throughput / snap.goal_abs_throughput)
                  : 1.0;
          attainment_weight += ratio * dt;
          if (ratio >= 0.999) {
            at_goal_weight += dt;
          }
          container_seconds += dt;
        }
        // A queued container attains nothing while it waits.
        container_seconds +=
            static_cast<double>(machine.scheduler->PendingIds().size()) * dt;
      }
      last_time = event.time_seconds;
    }

    const auto start = std::chrono::steady_clock::now();
    if (event.type == TraceEventType::kArrival) {
      FleetOutcome outcome = Submit(RequestFromEvent(event), event.time_seconds);
      if (outcome.outcome.admitted) {
        ++report.decisions;
      }
      report.outcomes.push_back(std::move(outcome));
    } else {
      std::vector<FleetOutcome> replaced = Depart(event.container_id, event.time_seconds);
      report.decisions += static_cast<int>(replaced.size());
      report.outcomes.insert(report.outcomes.end(),
                             std::make_move_iterator(replaced.begin()),
                             std::make_move_iterator(replaced.end()));
    }
    report.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  report.goal_attainment =
      container_seconds > 0.0 ? attainment_weight / container_seconds : 1.0;
  report.container_seconds_at_goal =
      container_seconds > 0.0 ? at_goal_weight / container_seconds : 1.0;
  report.machine_utilizations = TimeAveragedUtilizations();
  double busy_weight = 0.0;
  double thread_weight = 0.0;
  report.utilization_min = 1.0;
  report.utilization_max = 0.0;
  for (size_t m = 0; m < machines_.size(); ++m) {
    const double threads = machines_[m].topo->NumHwThreads();
    busy_weight += report.machine_utilizations[m] * threads;
    thread_weight += threads;
    report.utilization_min = std::min(report.utilization_min, report.machine_utilizations[m]);
    report.utilization_max = std::max(report.utilization_max, report.machine_utilizations[m]);
  }
  report.mean_utilization = thread_weight > 0.0 ? busy_weight / thread_weight : 0.0;
  report.mean_queue_wait_seconds =
      stats_.queue_admissions > 0
          ? stats_.queue_wait_seconds / stats_.queue_admissions
          : 0.0;
  return report;
}

}  // namespace numaplace
