// Failure-domain topology of the fleet: machine -> rack -> zone.
//
// Machine failures in a datacenter are correlated — a rack's power feed or
// a zone's switch takes out every machine behind it at once — so a fleet
// that wants to survive outages has to know which machines share a fate.
// This header gives the fleet that knowledge, in three parts:
//
//   * FailureDomainTopology: the static machine -> rack -> zone map. Built
//     either as a deterministic uniform layout (contiguous blocks of
//     machines per rack, contiguous blocks of racks per zone, with a
//     round(sqrt) default fan-out) or from validated explicit assignments.
//     Like the dispatch CellLayout, it is fixed for the fleet's lifetime:
//     fail/drain/rejoin change availability, never domain membership.
//
//   * Domain-scoped event expansion: `rack:3@T` / `zone:1@T` fail, drain
//     and rejoin events (DomainScope in src/workloads/trace.h) expand into
//     canonical per-machine FleetEvents — member machines ascending, input
//     order preserved across same-instant events — so a domain outage
//     replays byte-identically to the hand-written per-machine list it
//     stands for. Schedulers only ever see kMachine-scoped events.
//
//   * DomainOccupancy: the per-service-group domain-occupancy view behind
//     spread-aware dispatch. Containers whose workload names share a base
//     name (the part before the '#' the trace generators append) are
//     replicas of one service; the view counts replicas per (group, rack)
//     and (group, zone) incrementally, and answers the FLAQR-style
//     availability question "how many domain failures until this group has
//     no replica left" (DomainsToLoss). The FleetScheduler consults it at
//     dispatch and in rebalance/evacuation target searches to avoid
//     co-locating a group's replicas in a single domain (FleetConfig in
//     src/cluster/fleet.h holds the spread knobs).
#ifndef NUMAPLACE_SRC_CLUSTER_DOMAINS_H_
#define NUMAPLACE_SRC_CLUSTER_DOMAINS_H_

#include <map>
#include <string>
#include <vector>

#include "src/workloads/trace.h"

namespace numaplace {

/// Static machine -> rack -> zone map of one fleet; see the file comment.
/// Rack and zone ids are dense (0..NumRacks()-1 / 0..NumZones()-1) and every
/// domain is non-empty — both constructions validate this.
class FailureDomainTopology {
 public:
  /// An unbound topology (NumMachines() == 0); assign via Uniform or
  /// FromAssignments.
  FailureDomainTopology() = default;

  /// Deterministic uniform layout: `racks` contiguous machine blocks of
  /// near-equal size (rack r holds machines [r*n/racks, (r+1)*n/racks)),
  /// `zones` contiguous rack blocks likewise. 0 picks the default fan-out:
  /// racks = round(sqrt(machines)), zones = round(sqrt(racks)) — domain
  /// count and domain size grow together, mirroring the dispatch-cell
  /// default. CHECK-fails unless 1 <= racks <= machines and
  /// 1 <= zones <= racks.
  static FailureDomainTopology Uniform(int num_machines, int racks = 0, int zones = 0);

  /// Explicit layout: rack_of_machine[m] is machine m's rack,
  /// zone_of_rack[r] is rack r's zone. Validated: at least one machine,
  /// rack ids dense with no empty rack, zone ids dense with no empty zone.
  static FailureDomainTopology FromAssignments(std::vector<int> rack_of_machine,
                                               std::vector<int> zone_of_rack);

  int NumMachines() const { return static_cast<int>(rack_of_.size()); }
  int NumRacks() const { return static_cast<int>(rack_members_.size()); }
  int NumZones() const { return static_cast<int>(zone_members_.size()); }
  /// Domains of one scope (kMachine counts machines); CHECKs the scope.
  int NumDomains(DomainScope scope) const;

  /// The machine's rack / zone (CHECKs the id).
  int RackOf(int machine_id) const;
  int ZoneOf(int machine_id) const;
  /// The rack's zone (CHECKs the id).
  int ZoneOfRack(int rack) const;
  /// The machine's domain index under `scope` (the machine id itself for
  /// kMachine).
  int DomainOf(int machine_id, DomainScope scope) const;

  /// Member machines of one rack / zone, ascending (CHECKs the index).
  const std::vector<int>& MachinesInRack(int rack) const;
  const std::vector<int>& MachinesInZone(int zone) const;
  /// Member machines of one domain under `scope`, ascending. For kMachine
  /// the domain is the machine itself.
  std::vector<int> MachinesIn(DomainScope scope, int index) const;

 private:
  std::vector<int> rack_of_;                 // machine -> rack
  std::vector<int> zone_of_rack_;            // rack -> zone
  std::vector<std::vector<int>> rack_members_;  // rack -> machines, ascending
  std::vector<std::vector<int>> zone_members_;  // zone -> machines, ascending
};

/// Expands domain-scoped machine events into canonical per-machine events
/// against `domains`; kMachine-scoped events pass through unchanged. The
/// expansion is deterministic: events are emitted in input order, each
/// domain event replaced in place by its member machines ascending, so the
/// result is exactly the hand-written per-machine list it abbreviates (the
/// equivalence the replay test asserts byte-identically). Same-instant
/// ties between the expanded events are then resolved by the canonical
/// stream order alone — fail before drain before rejoin before container
/// traffic — so a rack fail and a member machine's rejoin at the same
/// instant settle as fail-then-rejoin: the machine ends the instant up and
/// empty. CHECK-fails on container events and on domain indices outside
/// the topology.
std::vector<FleetEvent> ExpandDomainEvents(const FailureDomainTopology& domains,
                                           const std::vector<FleetEvent>& machine_events);

/// InjectMachineEvents with domain expansion: equivalent to
/// InjectMachineEvents(stream, ExpandDomainEvents(domains, machine_events)).
EventStream InjectMachineEvents(EventStream stream,
                                const std::vector<FleetEvent>& machine_events,
                                const FailureDomainTopology& domains);

/// Service-group key of a workload name: the base name before the '#' the
/// trace generators append to uniquify per-container names. Containers of
/// one service group are treated as replicas of one service by the spread
/// dimension ("gcc#12" and "gcc#47" -> "gcc").
std::string ServiceGroupOf(const std::string& workload_name);

/// Per-service-group replica counts per failure domain, maintained
/// incrementally by the owning FleetScheduler at every point a container
/// gains, loses or changes its machine (dispatch, departure, rebalance
/// move, evacuation). Queued-on-machine containers count — they will run
/// where they queue — while fleet-wide waiters (no machine) do not.
class DomainOccupancy {
 public:
  /// Binds the topology (outlives the view) and clears all counts.
  void Bind(const FailureDomainTopology* domains);
  bool bound() const { return domains_ != nullptr; }

  /// Tracks a container landing on a machine (CHECKs the id is not already
  /// tracked), keyed by the service group of its workload name.
  void Add(int container_id, const std::string& service_group, int machine_id);
  /// Moves a tracked container to another machine, keeping its group.
  void Move(int container_id, int machine_id);
  /// Forgets a container (no-op when the id is not tracked — departures of
  /// fleet-wide waiters never entered the view).
  void Remove(int container_id);

  /// Replicas of the group in one domain (0 for unknown groups).
  int CountIn(const std::string& service_group, DomainScope scope, int index) const;
  /// Tracked replicas of the group fleet-wide.
  int Replicas(const std::string& service_group) const;
  /// Groups with at least one tracked replica, name-ascending.
  std::vector<std::string> Groups() const;

  /// Distinct domains of `scope` holding at least one replica of the group
  /// — the minimum number of simultaneous domain failures that leaves the
  /// group with no replica (FLAQR-style: a group spread over k racks
  /// survives any k-1 rack losses and collapses only when all k go). 0 for
  /// groups with no tracked replica.
  int DomainsToLoss(const std::string& service_group, DomainScope scope) const;

 private:
  struct Tracked {
    std::string group;
    int machine_id = 0;
  };
  // Per-group per-domain replica counts; vectors sized to the topology.
  struct GroupCounts {
    std::vector<int> per_rack;
    std::vector<int> per_zone;
    int replicas = 0;
  };

  GroupCounts& CountsOf(const std::string& service_group);
  void Apply(const Tracked& tracked, int delta);

  const FailureDomainTopology* domains_ = nullptr;
  std::map<int, Tracked> containers_;
  std::map<std::string, GroupCounts> groups_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_DOMAINS_H_
