// SLO-tiered admission control for the FleetScheduler.
//
// The fleet used to queue unconditionally whenever no machine previewed a
// goal-meeting placement — forced queueing acting as *accidental* admission
// control. This subsystem makes shedding deliberate and tiered: every
// container carries an SLO tier (premium / standard / best-effort, parsed
// from its service-group name or pinned through FleetConfig::tier_overrides),
// and a pluggable AdmissionPolicy — mirroring DispatchPolicy one decision
// earlier in the pipeline — rules admit / defer / reject / preempt per
// arrival from a saturation summary the fleet assembles out of its per-cell
// CapacityIndex. Best-effort sheds first under saturation; premium may
// preempt queued best-effort work (the victim is removed through the same
// machine-level Depart primitive the evacuation path uses, and the premium
// container's placement then flows through the ordinary dispatch machinery,
// so occupancy invariants hold by construction).
//
// Tier naming convention: a service-group name of the form `<tier>:<base>`
// (e.g. "premium:gcc", "best-effort:web#3" whose group is
// "best-effort:web") carries its tier in the prefix. Unknown prefixes and
// unprefixed groups default to standard. FleetConfig::tier_overrides —
// keyed by the full service-group name, prefix included — take precedence
// over the naming convention.
//
// Policies are constructible by name through the AdmissionRegistry. Built in:
//
//   admit-all   every arrival proceeds to dispatch — the null contender
//               that proves the wiring itself changes nothing
//   tiered      premium admits always (preempting a queued best-effort
//               container when nothing fits); lower tiers admit only while
//               the fleet keeps tier-reserved headroom — both a
//               per-container margin (standard 2x its demand, best-effort
//               3x plus an idle queue) and a fleet-utilization ceiling
//               (standard 70%, best-effort 60%) — so the last slots stay
//               free and uncrowded for premium. Standard defers up to a
//               bounded fleet-wide queue then rejects; best-effort is shed
//               on the spot
#ifndef NUMAPLACE_SRC_CLUSTER_ADMISSION_H_
#define NUMAPLACE_SRC_CLUSTER_ADMISSION_H_

#include <memory>
#include <string>

#include "src/scheduler/events.h"
#include "src/util/registry.h"

namespace numaplace {

/// Parses an exact lower-case tier name ("premium", "standard",
/// "best-effort") into `*tier`; returns false (leaving `*tier` untouched)
/// for anything else.
bool ParseSloTier(const std::string& token, SloTier* tier);

/// Tier of a service-group name under the `<tier>:<base>` naming
/// convention: the prefix before the first ':' when it parses as a tier,
/// kStandard otherwise (no ':' , unknown prefix like "gold:", empty name).
/// Callers owning a FleetConfig tier map consult it first — this is only
/// the convention fallback.
SloTier TierFromGroupName(const std::string& group);

/// Saturation summary for one admission decision, assembled by the fleet
/// from its CapacityIndex and wait set. All fields are deterministic
/// functions of fleet state — no wall time, no randomness.
struct AdmissionContext {
  /// Hardware threads the arriving container needs.
  int vcpus = 0;
  /// The arrival's SLO tier.
  SloTier tier = SloTier::kStandard;
  /// True when some up machine has enough free threads right now (from the
  /// capacity index's per-cell max-free-threads summaries — a necessary
  /// condition for immediate placement, not a goal-attainment promise).
  bool fits_now = false;
  /// Free hardware threads across all up machines.
  long long free_threads = 0;
  /// Hardware threads across all up machines — free_threads / total_threads
  /// is the fleet's headroom fraction, the signal utilization-ceiling
  /// policies gate on.
  long long total_threads = 0;
  /// Containers currently waiting fleet-wide or on machine queues.
  int waiting = 0;
  /// True when at least one waiting container is best-effort — i.e. a
  /// preemption victim exists.
  bool queued_best_effort = false;
  /// FleetConfig::admission_defer_limit — the fleet-wide waiting count at
  /// which deferring policies switch to rejecting.
  int defer_limit = 0;
};

/// Strategy interface: rules on one arrival. Constructible by name through
/// the AdmissionRegistry. Policies must be deterministic functions of the
/// context (replays are byte-identical for a fixed seed + flags).
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Registry name of the policy (stable, used in configs and reports).
  virtual const std::string& name() const = 0;

  /// The ruling for one arrival. Returning kPreempt when
  /// ctx.queued_best_effort is false is a policy bug; the fleet checks.
  virtual AdmissionDecision Decide(const AdmissionContext& ctx) = 0;
};

/// Admits everything — the null contender: a fleet running admit-all must
/// behave exactly like a fleet with admission off (tests assert it).
class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  const std::string& name() const override;
  AdmissionDecision Decide(const AdmissionContext& ctx) override;
};

/// The tiered overload policy:
///   premium      admit when something fits; otherwise preempt a queued
///                best-effort container when one exists, else admit anyway
///                (premium never waits behind a shed decision)
///   standard     admit while something fits, free threads are at least
///                twice its demand, and fleet utilization is at most 70%;
///                otherwise defer while fewer than defer_limit containers
///                wait, then reject
///   best-effort  admit only into a calm fleet — something fits, nothing
///                waits, free threads are at least three times its demand
///                and fleet utilization is at most 60% — otherwise reject
///                on the spot (shed first, shed cheap)
///
/// The graded headroom reserves the last slots for premium: a flash crowd
/// of lower-tier arrivals stops being admitted before the fleet saturates.
/// The per-container margins dominate on small fleets; the utilization
/// ceilings are what matter at scale, where even many multiples of one
/// container's demand is a rounding error of total capacity — and, because
/// dispatch spreads load, capping utilization also caps how crowded the
/// machine hosting a premium container can get (admission protects
/// attainment, not just placement).
class TieredAdmissionPolicy final : public AdmissionPolicy {
 public:
  const std::string& name() const override;
  AdmissionDecision Decide(const AdmissionContext& ctx) override;
};

/// Name -> factory registry, the same FactoryRegistry machinery as the
/// DispatchRegistry. The built-ins above are pre-registered; plugins may
/// Register additional names at startup.
class AdmissionRegistry : public FactoryRegistry<AdmissionPolicy> {
 public:
  AdmissionRegistry() : FactoryRegistry("admission policy") {}

  /// The process-wide registry (built-ins registered on first use).
  static AdmissionRegistry& Global();
};

/// Shorthand for AdmissionRegistry::Global().Make(name). Unknown names
/// throw std::logic_error listing every registered policy.
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const std::string& name);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_CLUSTER_ADMISSION_H_
