#include "src/cluster/domains.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/check.h"

namespace numaplace {

namespace {

// Default fan-out: count = round(sqrt(n)), clamped to [1, n] — domain count
// and domain size grow together with the fleet.
int DefaultFanOut(int n) {
  const int count = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  return std::max(1, std::min(count, n));
}

// Partition point of the uniform layout: block b of `blocks` near-equal
// contiguous blocks over [0, n) starts at b*n/blocks.
int BlockStart(int n, int blocks, int b) {
  return static_cast<int>((static_cast<long long>(b) * n) / blocks);
}

}  // namespace

FailureDomainTopology FailureDomainTopology::Uniform(int num_machines, int racks,
                                                     int zones) {
  NP_CHECK_MSG(num_machines > 0,
               "failure-domain topology needs at least one machine, got "
                   << num_machines);
  if (racks == 0) {
    racks = DefaultFanOut(num_machines);
  }
  NP_CHECK_MSG(racks >= 1 && racks <= num_machines,
               "rack count " << racks << " outside [1, " << num_machines
                             << "] for a " << num_machines << "-machine fleet");
  if (zones == 0) {
    zones = DefaultFanOut(racks);
  }
  NP_CHECK_MSG(zones >= 1 && zones <= racks,
               "zone count " << zones << " outside [1, " << racks << "] for a "
                             << racks << "-rack layout");

  std::vector<int> rack_of_machine(static_cast<size_t>(num_machines));
  for (int r = 0; r < racks; ++r) {
    const int begin = BlockStart(num_machines, racks, r);
    const int end = BlockStart(num_machines, racks, r + 1);
    for (int m = begin; m < end; ++m) {
      rack_of_machine[static_cast<size_t>(m)] = r;
    }
  }
  std::vector<int> zone_of_rack(static_cast<size_t>(racks));
  for (int z = 0; z < zones; ++z) {
    const int begin = BlockStart(racks, zones, z);
    const int end = BlockStart(racks, zones, z + 1);
    for (int r = begin; r < end; ++r) {
      zone_of_rack[static_cast<size_t>(r)] = z;
    }
  }
  return FromAssignments(std::move(rack_of_machine), std::move(zone_of_rack));
}

FailureDomainTopology FailureDomainTopology::FromAssignments(
    std::vector<int> rack_of_machine, std::vector<int> zone_of_rack) {
  NP_CHECK_MSG(!rack_of_machine.empty(),
               "failure-domain topology needs at least one machine");
  NP_CHECK_MSG(!zone_of_rack.empty(), "failure-domain topology needs at least one rack");
  const int num_racks = static_cast<int>(zone_of_rack.size());
  const int num_zones = 1 + *std::max_element(zone_of_rack.begin(), zone_of_rack.end());

  FailureDomainTopology topology;
  topology.rack_members_.resize(static_cast<size_t>(num_racks));
  for (size_t m = 0; m < rack_of_machine.size(); ++m) {
    const int rack = rack_of_machine[m];
    NP_CHECK_MSG(rack >= 0 && rack < num_racks,
                 "machine " << m << " assigned to rack " << rack
                            << " outside the " << num_racks << "-rack layout");
    topology.rack_members_[static_cast<size_t>(rack)].push_back(static_cast<int>(m));
  }
  topology.zone_members_.resize(static_cast<size_t>(num_zones));
  for (int r = 0; r < num_racks; ++r) {
    const int zone = zone_of_rack[static_cast<size_t>(r)];
    NP_CHECK_MSG(zone >= 0, "rack " << r << " assigned to negative zone " << zone);
    NP_CHECK_MSG(!topology.rack_members_[static_cast<size_t>(r)].empty(),
                 "rack " << r << " has no machines — rack ids must be dense");
    std::vector<int>& members = topology.zone_members_[static_cast<size_t>(zone)];
    for (int m : topology.rack_members_[static_cast<size_t>(r)]) {
      members.push_back(m);
    }
  }
  for (int z = 0; z < num_zones; ++z) {
    std::vector<int>& members = topology.zone_members_[static_cast<size_t>(z)];
    NP_CHECK_MSG(!members.empty(),
                 "zone " << z << " has no racks — zone ids must be dense");
    // Racks of one zone need not be contiguous under an explicit layout.
    std::sort(members.begin(), members.end());
  }
  topology.rack_of_ = std::move(rack_of_machine);
  topology.zone_of_rack_ = std::move(zone_of_rack);
  return topology;
}

int FailureDomainTopology::NumDomains(DomainScope scope) const {
  switch (scope) {
    case DomainScope::kMachine:
      return NumMachines();
    case DomainScope::kRack:
      return NumRacks();
    case DomainScope::kZone:
      return NumZones();
  }
  NP_CHECK_MSG(false, "unknown domain scope");
  __builtin_unreachable();
}

int FailureDomainTopology::RackOf(int machine_id) const {
  NP_CHECK_MSG(machine_id >= 0 && machine_id < NumMachines(),
               "machine " << machine_id << " outside the " << NumMachines()
                          << "-machine topology");
  return rack_of_[static_cast<size_t>(machine_id)];
}

int FailureDomainTopology::ZoneOf(int machine_id) const {
  return ZoneOfRack(RackOf(machine_id));
}

int FailureDomainTopology::ZoneOfRack(int rack) const {
  NP_CHECK_MSG(rack >= 0 && rack < NumRacks(),
               "rack " << rack << " outside the " << NumRacks() << "-rack topology");
  return zone_of_rack_[static_cast<size_t>(rack)];
}

int FailureDomainTopology::DomainOf(int machine_id, DomainScope scope) const {
  switch (scope) {
    case DomainScope::kMachine:
      NP_CHECK_MSG(machine_id >= 0 && machine_id < NumMachines(),
                   "machine " << machine_id << " outside the " << NumMachines()
                              << "-machine topology");
      return machine_id;
    case DomainScope::kRack:
      return RackOf(machine_id);
    case DomainScope::kZone:
      return ZoneOf(machine_id);
  }
  NP_CHECK_MSG(false, "unknown domain scope");
  __builtin_unreachable();
}

const std::vector<int>& FailureDomainTopology::MachinesInRack(int rack) const {
  NP_CHECK_MSG(rack >= 0 && rack < NumRacks(),
               "rack " << rack << " outside the " << NumRacks() << "-rack topology");
  return rack_members_[static_cast<size_t>(rack)];
}

const std::vector<int>& FailureDomainTopology::MachinesInZone(int zone) const {
  NP_CHECK_MSG(zone >= 0 && zone < NumZones(),
               "zone " << zone << " outside the " << NumZones() << "-zone topology");
  return zone_members_[static_cast<size_t>(zone)];
}

std::vector<int> FailureDomainTopology::MachinesIn(DomainScope scope, int index) const {
  switch (scope) {
    case DomainScope::kMachine:
      NP_CHECK_MSG(index >= 0 && index < NumMachines(),
                   "machine " << index << " outside the " << NumMachines()
                              << "-machine topology");
      return {index};
    case DomainScope::kRack:
      return MachinesInRack(index);
    case DomainScope::kZone:
      return MachinesInZone(index);
  }
  NP_CHECK_MSG(false, "unknown domain scope");
  __builtin_unreachable();
}

std::vector<FleetEvent> ExpandDomainEvents(const FailureDomainTopology& domains,
                                           const std::vector<FleetEvent>& machine_events) {
  std::vector<FleetEvent> expanded;
  expanded.reserve(machine_events.size());
  for (const FleetEvent& event : machine_events) {
    NP_CHECK_MSG(event.IsMachineEvent(),
                 "ExpandDomainEvents takes machine fail/drain/rejoin events, got "
                     << ToString(event.kind()) << " at t=" << event.time_seconds);
    const DomainScope scope = event.domain_scope();
    if (scope == DomainScope::kMachine) {
      expanded.push_back(event);
      continue;
    }
    const int index = event.machine_id();
    NP_CHECK_MSG(index >= 0 && index < domains.NumDomains(scope),
                 ToString(scope) << " " << index << " in " << ToString(event.kind())
                                 << " at t=" << event.time_seconds << " outside the "
                                 << domains.NumDomains(scope) << "-" << ToString(scope)
                                 << " topology");
    for (int machine : domains.MachinesIn(scope, index)) {
      switch (event.kind()) {
        case FleetEventKind::kMachineFail:
          expanded.push_back(FleetEvent::Fail(event.time_seconds, machine));
          break;
        case FleetEventKind::kMachineDrain:
          expanded.push_back(FleetEvent::Drain(event.time_seconds, machine));
          break;
        case FleetEventKind::kMachineRejoin:
          expanded.push_back(FleetEvent::Rejoin(event.time_seconds, machine));
          break;
        default:
          NP_CHECK_MSG(false, "unreachable: container event past the machine check");
      }
    }
  }
  return expanded;
}

EventStream InjectMachineEvents(EventStream stream,
                                const std::vector<FleetEvent>& machine_events,
                                const FailureDomainTopology& domains) {
  return InjectMachineEvents(std::move(stream),
                             ExpandDomainEvents(domains, machine_events));
}

std::string ServiceGroupOf(const std::string& workload_name) {
  return workload_name.substr(0, workload_name.find('#'));
}

void DomainOccupancy::Bind(const FailureDomainTopology* domains) {
  NP_CHECK(domains != nullptr);
  NP_CHECK(domains->NumMachines() > 0);
  domains_ = domains;
  containers_.clear();
  groups_.clear();
}

DomainOccupancy::GroupCounts& DomainOccupancy::CountsOf(
    const std::string& service_group) {
  GroupCounts& counts = groups_[service_group];
  if (counts.per_rack.empty()) {
    counts.per_rack.resize(static_cast<size_t>(domains_->NumRacks()), 0);
    counts.per_zone.resize(static_cast<size_t>(domains_->NumZones()), 0);
  }
  return counts;
}

void DomainOccupancy::Apply(const Tracked& tracked, int delta) {
  GroupCounts& counts = CountsOf(tracked.group);
  counts.per_rack[static_cast<size_t>(domains_->RackOf(tracked.machine_id))] += delta;
  counts.per_zone[static_cast<size_t>(domains_->ZoneOf(tracked.machine_id))] += delta;
  counts.replicas += delta;
}

void DomainOccupancy::Add(int container_id, const std::string& service_group,
                          int machine_id) {
  NP_CHECK_MSG(bound(), "DomainOccupancy used before Bind()");
  const auto [it, inserted] =
      containers_.emplace(container_id, Tracked{service_group, machine_id});
  NP_CHECK_MSG(inserted, "container " << container_id
                                      << " already tracked by the domain-occupancy "
                                         "view — Move() it instead");
  Apply(it->second, +1);
}

void DomainOccupancy::Move(int container_id, int machine_id) {
  NP_CHECK_MSG(bound(), "DomainOccupancy used before Bind()");
  const auto it = containers_.find(container_id);
  NP_CHECK_MSG(it != containers_.end(),
               "container " << container_id
                            << " not tracked by the domain-occupancy view");
  Apply(it->second, -1);
  it->second.machine_id = machine_id;
  Apply(it->second, +1);
}

void DomainOccupancy::Remove(int container_id) {
  const auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    return;
  }
  Apply(it->second, -1);
  containers_.erase(it);
}

int DomainOccupancy::CountIn(const std::string& service_group, DomainScope scope,
                             int index) const {
  NP_CHECK_MSG(bound(), "DomainOccupancy used before Bind()");
  const auto it = groups_.find(service_group);
  if (it == groups_.end() || it->second.per_rack.empty()) {
    return 0;
  }
  NP_CHECK_MSG(index >= 0 && index < domains_->NumDomains(scope),
               ToString(scope) << " " << index << " outside the "
                               << domains_->NumDomains(scope) << "-" << ToString(scope)
                               << " topology");
  switch (scope) {
    case DomainScope::kMachine: {
      // No per-machine vector is kept; count the tracked containers directly.
      int count = 0;
      for (const auto& [id, tracked] : containers_) {
        if (tracked.group == service_group && tracked.machine_id == index) {
          ++count;
        }
      }
      return count;
    }
    case DomainScope::kRack:
      return it->second.per_rack[static_cast<size_t>(index)];
    case DomainScope::kZone:
      return it->second.per_zone[static_cast<size_t>(index)];
  }
  NP_CHECK_MSG(false, "unknown domain scope");
  __builtin_unreachable();
}

int DomainOccupancy::Replicas(const std::string& service_group) const {
  const auto it = groups_.find(service_group);
  return it == groups_.end() ? 0 : it->second.replicas;
}

std::vector<std::string> DomainOccupancy::Groups() const {
  std::vector<std::string> names;
  for (const auto& [name, counts] : groups_) {
    if (counts.replicas > 0) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration is already name-ascending.
}

int DomainOccupancy::DomainsToLoss(const std::string& service_group,
                                   DomainScope scope) const {
  NP_CHECK_MSG(bound(), "DomainOccupancy used before Bind()");
  const auto it = groups_.find(service_group);
  if (it == groups_.end() || it->second.replicas == 0) {
    return 0;
  }
  const std::vector<int>* per_domain = nullptr;
  switch (scope) {
    case DomainScope::kMachine: {
      std::vector<bool> occupied(static_cast<size_t>(domains_->NumMachines()), false);
      for (const auto& [id, tracked] : containers_) {
        if (tracked.group == service_group) {
          occupied[static_cast<size_t>(tracked.machine_id)] = true;
        }
      }
      return static_cast<int>(std::count(occupied.begin(), occupied.end(), true));
    }
    case DomainScope::kRack:
      per_domain = &it->second.per_rack;
      break;
    case DomainScope::kZone:
      per_domain = &it->second.per_zone;
      break;
  }
  NP_CHECK(per_domain != nullptr);
  return static_cast<int>(std::count_if(per_domain->begin(), per_domain->end(),
                                        [](int count) { return count > 0; }));
}

}  // namespace numaplace
