#include "src/sim/hpe.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace numaplace {

namespace {

// Relative measurement noise of one counter sample. Single-placement counter
// readings on real PMUs vary considerably run to run (multiplexing, phase
// effects); the paper's HPE models were "a lot less reliable" partly for
// this reason.
constexpr double kCounterNoise = 0.08;

uint64_t HashName(const std::string& name, uint64_t seed) {
  uint64_t h = seed;
  for (char ch : name) {
    h = SplitMix64(h ^ static_cast<uint64_t>(ch));
  }
  return h;
}

}  // namespace

HpeSampler::HpeSampler(const PerformanceModel& model, int num_counters, uint64_t seed)
    : model_(&model), num_counters_(num_counters), seed_(seed) {
  NP_CHECK(num_counters_ >= kNumInformativeCounters);
  names_ = {
      "ipc",
      "l2_miss_rate",
      "l3_miss_rate",
      "dram_bw_utilization",
      "memory_stall_fraction",
      "remote_access_fraction",
      "interconnect_utilization",
      "tlb_miss_rate",
      "coherence_traffic",
      "prefetch_hit_rate",
      "frontend_stall_fraction",
      "instructions_retired",
  };
  for (int i = kNumInformativeCounters; i < num_counters_; ++i) {
    names_.push_back("noise_" + std::to_string(i - kNumInformativeCounters));
  }
}

std::vector<double> HpeSampler::Sample(const WorkloadProfile& profile,
                                       const Placement& placement) const {
  const PerfResult result = model_->Evaluate(profile, placement);
  const PerfBreakdown& b = result.breakdown;
  const Topology& topo = model_->topology();
  const auto num_nodes = static_cast<double>(placement.NodesUsed(topo).size());

  // Values observable in THIS placement only.
  std::vector<double> v;
  v.reserve(static_cast<size_t>(num_counters_));
  const double speed = result.throughput_ops /
                       (topo.perf().base_ops_per_thread *
                        static_cast<double>(placement.NumVcpus()));
  v.push_back(speed);                                        // ipc proxy
  v.push_back(1.0 - b.l2_hit);                               // l2 miss rate
  v.push_back(1.0 - b.l3_hit);                               // l3 miss rate
  v.push_back(b.dram_supply_gbps > 0.0
                  ? std::min(1.0, b.dram_demand_gbps / b.dram_supply_gbps)
                  : 0.0);                                    // dram utilization
  v.push_back(profile.mem_intensity * (1.0 - b.l3_hit));     // stall fraction
  v.push_back(num_nodes > 1.0 ? (num_nodes - 1.0) / num_nodes : 0.0);
  v.push_back(b.ic_supply_gbps > 0.0
                  ? std::min(1.0, b.ic_demand_gbps / b.ic_supply_gbps)
                  : 0.0);                                    // interconnect util
  // TLB pressure scales with the log of the private working set.
  v.push_back(std::log2(1.0 + profile.ws_private_mb) / 8.0);
  // Coherence traffic measures a *product* of causes — how often threads
  // communicate, how much data they share, and how memory-bound the phase
  // is. Sensitivity to latency (comm_intensity) cannot be factored out of
  // the product from one placement, which is the crux of why HPE-only
  // models mispredict latency-sensitive workloads (§6: "Separating the
  // sensitivity to latency from overall memory intensiveness ... is
  // difficult to do with HPEs").
  v.push_back(profile.comm_intensity * (0.3 + profile.mem_intensity) *
              (profile.ws_shared_mb / (profile.ws_shared_mb + 100.0)) *
              std::min(1.0, b.mean_latency_ns / 100.0));
  // Prefetch hits are dominated by plain spatial locality; cooperative
  // sharing contributes only through the shared-data volume.
  v.push_back(0.75 * b.l2_hit +
              0.25 * profile.cache_coop *
                  (profile.ws_shared_mb / (profile.ws_shared_mb + 100.0)));
  // Front-end stalls alias pipeline sharing with memory stalls.
  v.push_back(0.5 * (1.0 - b.pipeline_factor) +
              0.5 * profile.mem_intensity * (1.0 - b.l2_hit));
  v.push_back(speed * static_cast<double>(placement.NumVcpus()));  // inst retired

  // Machine-noise counters: stable per (workload, counter) but carrying no
  // placement signal — they model the hundreds of irrelevant PMU events.
  for (int i = kNumInformativeCounters; i < num_counters_; ++i) {
    Rng rng(HashName(profile.name + names_[static_cast<size_t>(i)], seed_));
    v.push_back(rng.NextDouble());
  }

  // Measurement noise on every counter.
  for (size_t i = 0; i < v.size(); ++i) {
    Rng rng(HashName(profile.name + names_[i] + placement.ToString(), seed_ + 17));
    v[i] *= std::exp(rng.NextGaussian(0.0, kCounterNoise));
  }
  return v;
}

}  // namespace numaplace
