#include "src/sim/perf_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace numaplace {

namespace {

// Relative cost of an operation serviced at each level (1.0 = core-local).
constexpr double kL2HitCost = 1.3;
constexpr double kL3HitCost = 3.0;
constexpr double kDramCost = 9.0;
// Fixed-point iterations for the bandwidth-saturation feedback loop.
constexpr int kBandwidthIterations = 4;
// Scale of the latency bonus when threads sit closer than one node apart.
constexpr double kProximityBonus = 0.3;
// Share of residual L3 misses that cooperative co-located threads absorb.
constexpr double kCoopEffect = 0.6;
// Effective bandwidth between nodes with no direct link, per node of the
// set, when traffic is routed through intermediate hops.
constexpr double kRoutedBandwidthFloorGbps = 1.0;

struct EngineTenant {
  const WorkloadProfile* profile;
  const Placement* placement;
};

// Combined throughput of `occupancy` threads sharing one L2 group, relative
// to a single thread running alone, linearly extrapolated from the pairwise
// smt_combined figure and capped at modest super-linearity.
double CombinedPipelineRate(double smt_combined, int occupancy) {
  if (occupancy <= 1) {
    return 1.0;
  }
  const double slope = smt_combined - 1.0;
  const double combined = 1.0 + slope * static_cast<double>(occupancy - 1);
  return std::min(combined, 1.15 * static_cast<double>(occupancy));
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

uint64_t NoiseStream(uint64_t seed, const WorkloadProfile& profile,
                     const Placement& placement, uint64_t run) {
  uint64_t h = seed;
  for (char ch : profile.name) {
    h = HashCombine(h, static_cast<uint64_t>(ch));
  }
  for (int t : placement.hw_threads) {
    h = HashCombine(h, static_cast<uint64_t>(t));
  }
  return HashCombine(h, run);
}

// The shared evaluation engine: handles one or many tenants.
std::vector<PerfResult> EvaluateTenants(const Topology& topo,
                                        const std::vector<EngineTenant>& tenants) {
  const size_t num_tenants = tenants.size();
  NP_CHECK(num_tenants >= 1);

  // --- Static occupancy maps across all tenants ---
  std::map<int, int> hw_occupancy;        // vCPUs per hardware thread
  std::map<int, int> group_occupancy;     // vCPUs per L2 group
  std::map<int, double> l3_group_demand;  // MB of working set pressing each L3
  std::map<int, double> group_l2_demand;  // MB pressing each L2 group
  std::vector<NodeSet> tenant_nodes(num_tenants);
  std::vector<int> tenant_threads(num_tenants);

  for (size_t c = 0; c < num_tenants; ++c) {
    const WorkloadProfile& w = *tenants[c].profile;
    const Placement& p = *tenants[c].placement;
    NP_CHECK(!p.hw_threads.empty());
    tenant_nodes[c] = p.NodesUsed(topo);
    tenant_threads[c] = p.NumVcpus();
    std::set<int> l3_groups_touched;
    for (int t : p.hw_threads) {
      hw_occupancy[t]++;
      group_occupancy[topo.L2GroupOf(t)]++;
      l3_group_demand[topo.L3GroupOf(t)] += w.ws_private_mb;
      group_l2_demand[topo.L2GroupOf(t)] += w.ws_l2_mb;
      l3_groups_touched.insert(topo.L3GroupOf(t));
    }
    // One copy of the shared working set per L3 cache the tenant spans.
    for (int g : l3_groups_touched) {
      l3_group_demand[g] += w.ws_shared_mb;
    }
  }

  const PerfParams& perf = topo.perf();

  // --- Per-tenant, per-thread static factors ---
  struct ThreadState {
    int hw_thread = 0;
    double pipeline = 1.0;   // L2-group sharing + hw-thread oversubscription
    double l2_hit = 0.0;
    double l3_hit = 0.0;
    double speed = 0.0;      // filled by the fixed point
  };
  std::vector<std::vector<ThreadState>> states(num_tenants);
  std::vector<double> comm_factor(num_tenants, 1.0);
  std::vector<double> mean_latency(num_tenants, 0.0);
  std::vector<double> share_frac(num_tenants, 0.0);

  for (size_t c = 0; c < num_tenants; ++c) {
    const WorkloadProfile& w = *tenants[c].profile;
    const Placement& p = *tenants[c].placement;
    const int total_threads = tenant_threads[c];

    mean_latency[c] = p.MeanPairwiseLatencyNs(topo);
    const double l0 = perf.lat_same_node_ns;
    const double rel = mean_latency[c] / l0;
    if (rel >= 1.0) {
      comm_factor[c] = 1.0 / (1.0 + w.comm_intensity * (rel - 1.0));
    } else {
      comm_factor[c] = 1.0 + w.comm_intensity * kProximityBonus * (1.0 - rel);
    }

    const double footprint =
        w.ws_shared_mb + static_cast<double>(total_threads) * w.ws_private_mb;
    share_frac[c] = footprint > 0.0 ? w.ws_shared_mb / footprint : 0.0;

    // Per-L3-group thread counts, for the cooperative-sharing bonus.
    std::map<int, int> own_l3_threads;
    for (int t : p.hw_threads) {
      own_l3_threads[topo.L3GroupOf(t)]++;
    }

    states[c].reserve(p.hw_threads.size());
    for (int t : p.hw_threads) {
      ThreadState s;
      s.hw_thread = t;
      const int group = topo.L2GroupOf(t);
      const int occ = group_occupancy[group];
      s.pipeline = CombinedPipelineRate(w.smt_combined, occ) / static_cast<double>(occ) /
                   static_cast<double>(hw_occupancy[t]);
      // Fraction of accesses served by the L2: accesses to the hot set, when
      // the group's combined hot sets fit the cache.
      const double l2_demand = group_l2_demand[group];
      const double l2_fit =
          l2_demand > 0.0 ? std::min(1.0, perf.l2_size_mb / l2_demand) : 1.0;
      s.l2_hit = w.l2_locality * l2_fit;
      const int l3_group = topo.L3GroupOf(t);
      const double l3_demand = l3_group_demand[l3_group];
      double l3_hit = l3_demand > 0.0 ? std::min(1.0, perf.l3_size_mb / l3_demand) : 1.0;
      // Cooperative sharing: co-located threads prefetch shared data for each
      // other; the effect scales with the fraction of the container's threads
      // sharing this L3.
      const double colocation =
          static_cast<double>(own_l3_threads[l3_group]) / static_cast<double>(total_threads);
      l3_hit += w.cache_coop * colocation * kCoopEffect * (1.0 - l3_hit);
      s.l3_hit = std::min(1.0, l3_hit);
      states[c].push_back(s);
    }
  }

  // --- Bandwidth fixed point ---
  // Saturation slows threads down, which lowers traffic; a few iterations
  // converge because the map demand -> slowdown -> demand is monotone.
  std::vector<double> bw_penalty(num_tenants, 1.0);  // >= 1, multiplies DRAM cost
  std::vector<double> dram_demand(num_tenants, 0.0);
  std::vector<double> ic_demand(num_tenants, 0.0);
  std::vector<double> dram_factor(num_tenants, 1.0);
  std::vector<double> ic_factor(num_tenants, 1.0);

  for (int iter = 0; iter < kBandwidthIterations; ++iter) {
    // Thread speeds under the current bandwidth penalty.
    for (size_t c = 0; c < num_tenants; ++c) {
      const WorkloadProfile& w = *tenants[c].profile;
      for (ThreadState& s : states[c]) {
        const double dram_cost = kDramCost * bw_penalty[c];
        const double cost =
            (1.0 - w.mem_intensity) +
            w.mem_intensity *
                (s.l2_hit * kL2HitCost +
                 (1.0 - s.l2_hit) *
                     (s.l3_hit * kL3HitCost + (1.0 - s.l3_hit) * dram_cost));
        s.speed = s.pipeline * comm_factor[c] / cost;
      }
    }

    // Demands given speeds.
    std::map<int, double> node_dram_demand;  // GB/s per node
    for (size_t c = 0; c < num_tenants; ++c) {
      const WorkloadProfile& w = *tenants[c].profile;
      // Traffic the thread generates at its natural memory-bound pace:
      // bw_per_thread filtered by the caches. Demand deliberately does not
      // scale with the achieved speed — saturation then feeds back through
      // the DRAM-cost penalty, matching how memory-bound applications pile
      // requests onto a saturated controller.
      double total_traffic = 0.0;
      for (const ThreadState& s : states[c]) {
        total_traffic += w.bw_per_thread_gbps * (1.0 - s.l2_hit) * (1.0 - s.l3_hit);
      }
      dram_demand[c] = total_traffic;
      const auto num_nodes = static_cast<double>(tenant_nodes[c].size());
      for (int n : tenant_nodes[c]) {
        node_dram_demand[n] += total_traffic / num_nodes;
      }
      ic_demand[c] = total_traffic * share_frac[c] * (num_nodes - 1.0) / num_nodes;
    }

    // Per-tenant saturation factors.
    for (size_t c = 0; c < num_tenants; ++c) {
      double dram_f = 1.0;
      for (int n : tenant_nodes[c]) {
        const double demand = node_dram_demand[n];
        if (demand > perf.dram_gbps_per_node) {
          dram_f = std::min(dram_f, perf.dram_gbps_per_node / demand);
        }
      }
      dram_factor[c] = dram_f;

      double ic_f = 1.0;
      // Node pairs without a direct link still exchange data through
      // intermediate hops; routed traffic shares the intermediate links, so
      // the effective floor is well below a direct link but not zero.
      double supply = topo.AggregateBandwidth(tenant_nodes[c]);
      if (tenant_nodes[c].size() > 1) {
        supply = std::max(
            supply, kRoutedBandwidthFloorGbps *
                        (static_cast<double>(tenant_nodes[c].size()) - 1.0));
      }
      // Tenants whose node sets overlap compete for the same links.
      double competing = 0.0;
      for (size_t o = 0; o < num_tenants; ++o) {
        bool overlaps = false;
        for (int n : tenant_nodes[o]) {
          overlaps |= std::find(tenant_nodes[c].begin(), tenant_nodes[c].end(), n) !=
                      tenant_nodes[c].end();
        }
        if (overlaps) {
          competing += ic_demand[o];
        }
      }
      if (competing > 0.0) {
        ic_f = supply > 0.0 ? std::min(1.0, supply / competing) : 0.05;
      }
      ic_factor[c] = ic_f;

      const double factor = std::min(dram_factor[c], ic_factor[c]);
      bw_penalty[c] = 1.0 / std::max(factor, 0.02);
    }
  }

  // --- Aggregate per tenant ---
  std::vector<PerfResult> results(num_tenants);
  for (size_t c = 0; c < num_tenants; ++c) {
    const WorkloadProfile& w = *tenants[c].profile;
    double sum_speed = 0.0;
    double min_speed = states[c].front().speed;
    double sum_l2 = 0.0;
    double sum_l3 = 0.0;
    double sum_pipe = 0.0;
    for (const ThreadState& s : states[c]) {
      sum_speed += s.speed;
      min_speed = std::min(min_speed, s.speed);
      sum_l2 += s.l2_hit;
      sum_l3 += s.l3_hit;
      sum_pipe += s.pipeline;
    }
    const auto n_threads = static_cast<double>(states[c].size());
    // Barrier-synchronized work is gated on the slowest thread.
    const double effective =
        (1.0 - w.barrier_sensitivity) * sum_speed +
        w.barrier_sensitivity * n_threads * min_speed;

    PerfResult& r = results[c];
    r.throughput_ops = perf.base_ops_per_thread * effective;
    r.breakdown.l2_hit = sum_l2 / n_threads;
    r.breakdown.l3_hit = sum_l3 / n_threads;
    r.breakdown.pipeline_factor = sum_pipe / n_threads;
    r.breakdown.comm_factor = comm_factor[c];
    r.breakdown.bandwidth_factor = std::min(dram_factor[c], ic_factor[c]);
    r.breakdown.dram_demand_gbps = dram_demand[c];
    r.breakdown.dram_supply_gbps =
        perf.dram_gbps_per_node * static_cast<double>(tenant_nodes[c].size());
    r.breakdown.ic_demand_gbps = ic_demand[c];
    r.breakdown.ic_supply_gbps = topo.AggregateBandwidth(tenant_nodes[c]);
    r.breakdown.mean_latency_ns = mean_latency[c];
    r.breakdown.cost_per_op =
        effective > 0.0 ? n_threads * comm_factor[c] / (sum_speed / n_threads) : 0.0;
  }
  return results;
}

double ApplyNoise(double value, double sigma, uint64_t stream) {
  if (sigma <= 0.0) {
    return value;
  }
  Rng rng(stream);
  return value * std::exp(rng.NextGaussian(0.0, sigma));
}

}  // namespace

PerformanceModel::PerformanceModel(const Topology& topo, double noise_sigma,
                                   uint64_t noise_seed)
    : topo_(&topo), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {
  NP_CHECK(noise_sigma >= 0.0);
}

PerfResult PerformanceModel::EvaluateDeterministic(const WorkloadProfile& profile,
                                                   const Placement& placement) const {
  const std::vector<EngineTenant> tenants = {{&profile, &placement}};
  return EvaluateTenants(*topo_, tenants)[0];
}

PerfResult PerformanceModel::Evaluate(const WorkloadProfile& profile,
                                      const Placement& placement) const {
  return Evaluate(profile, placement, 0);
}

PerfResult PerformanceModel::Evaluate(const WorkloadProfile& profile,
                                      const Placement& placement, uint64_t run) const {
  PerfResult r = EvaluateDeterministic(profile, placement);
  r.throughput_ops = ApplyNoise(r.throughput_ops, noise_sigma_,
                                NoiseStream(noise_seed_, profile, placement, run));
  return r;
}

MultiTenantModel::MultiTenantModel(const Topology& topo, double noise_sigma,
                                   uint64_t noise_seed)
    : topo_(&topo), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {
  NP_CHECK(noise_sigma >= 0.0);
}

std::vector<PerfResult> MultiTenantModel::Evaluate(const std::vector<Tenant>& tenants) const {
  NP_CHECK(!tenants.empty());
  std::vector<EngineTenant> engine_tenants;
  engine_tenants.reserve(tenants.size());
  for (const Tenant& t : tenants) {
    NP_CHECK(t.profile != nullptr);
    engine_tenants.push_back({t.profile, &t.placement});
  }
  std::vector<PerfResult> results = EvaluateTenants(*topo_, engine_tenants);
  for (size_t c = 0; c < results.size(); ++c) {
    results[c].throughput_ops = ApplyNoise(
        results[c].throughput_ops, noise_sigma_,
        NoiseStream(noise_seed_ + c, *tenants[c].profile, tenants[c].placement, 0));
  }
  return results;
}

}  // namespace numaplace
