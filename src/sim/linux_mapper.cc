#include "src/sim/linux_mapper.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/util/check.h"

namespace numaplace {

LinuxMapper::LinuxMapper(const Topology& topo, double imbalance)
    : topo_(&topo), imbalance_(imbalance) {
  NP_CHECK(imbalance >= 0.0 && imbalance <= 1.0);
}

Placement LinuxMapper::Map(int vcpus, const NodeSet& allowed_nodes,
                           const std::vector<int>& occupied, Rng& rng) const {
  NP_CHECK(vcpus > 0);
  NP_CHECK(!allowed_nodes.empty());
  const std::set<int> occupied_set(occupied.begin(), occupied.end());

  // Free hardware threads per allowed node.
  std::map<int, std::vector<int>> free_by_node;
  int total_free = 0;
  for (int node : allowed_nodes) {
    for (int t : topo_->HwThreadsOnNode(node)) {
      if (!occupied_set.count(t)) {
        free_by_node[node].push_back(t);
        ++total_free;
      }
    }
  }
  NP_CHECK_MSG(total_free >= vcpus, "not enough free hardware threads");

  Placement placement;
  placement.hw_threads.reserve(static_cast<size_t>(vcpus));
  std::set<int> used_groups;

  for (int i = 0; i < vcpus; ++i) {
    // Pick a node: usually the one with the most free threads (load
    // balancing), but with probability `imbalance` a random eligible node —
    // this is what skews the distribution.
    int node = -1;
    if (rng.NextDouble() < imbalance_) {
      std::vector<int> eligible;
      for (const auto& [n, threads] : free_by_node) {
        if (!threads.empty()) {
          eligible.push_back(n);
        }
      }
      node = eligible[rng.NextBelow(eligible.size())];
    } else {
      size_t most_free = 0;
      for (const auto& [n, threads] : free_by_node) {
        if (threads.size() > most_free) {
          most_free = threads.size();
          node = n;
        }
      }
    }
    NP_CHECK(node >= 0);

    // Pick a thread on the node: prefer a free L2 group, but with
    // probability `imbalance`/2 take any free thread (possibly doubling up
    // on a busy group while another group idles).
    std::vector<int>& threads = free_by_node[node];
    size_t chosen_index = threads.size();
    if (rng.NextDouble() >= imbalance_ * 0.5) {
      std::vector<size_t> fresh_group_indices;
      for (size_t idx = 0; idx < threads.size(); ++idx) {
        if (!used_groups.count(topo_->L2GroupOf(threads[idx]))) {
          fresh_group_indices.push_back(idx);
        }
      }
      if (!fresh_group_indices.empty()) {
        chosen_index = fresh_group_indices[rng.NextBelow(fresh_group_indices.size())];
      }
    }
    if (chosen_index == threads.size()) {
      chosen_index = rng.NextBelow(threads.size());
    }
    const int thread = threads[chosen_index];
    threads.erase(threads.begin() + static_cast<ptrdiff_t>(chosen_index));
    used_groups.insert(topo_->L2GroupOf(thread));
    placement.hw_threads.push_back(thread);
  }
  std::sort(placement.hw_threads.begin(), placement.hw_threads.end());
  return placement;
}

Placement LinuxMapper::Map(int vcpus, Rng& rng) const {
  NodeSet all(static_cast<size_t>(topo_->num_nodes()));
  for (int n = 0; n < topo_->num_nodes(); ++n) {
    all[static_cast<size_t>(n)] = n;
  }
  return Map(vcpus, all, {}, rng);
}

}  // namespace numaplace
