// Synthetic hardware-performance-event (HPE) sampler.
//
// The paper's second model variant feeds HPEs observed in a single placement
// to the Random Forest, and finds them markedly less predictive than actual
// performance observed in two placements (§5/§6). The reason is an
// information bottleneck: counters measured in one placement cannot separate
// latency sensitivity from memory intensity, nor reveal whether the working
// set would fit a different number of L3 caches.
//
// This sampler reproduces that bottleneck honestly: every counter is derived
// only from simulator state observable in the sampled placement (hit rates,
// bandwidth utilization, IPC), plus measurement noise. Workload parameters
// that only matter in *other* placements (comm_intensity, cache_coop,
// smt_combined) surface, if at all, only through aliased mixtures — exactly
// as coherence-traffic or prefetch counters alias multiple causes on real
// hardware. The remaining counters are machine-specific noise events, which
// stand in for the hundreds of irrelevant HPEs a real PMU exposes.
#ifndef NUMAPLACE_SRC_SIM_HPE_H_
#define NUMAPLACE_SRC_SIM_HPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/placement.h"
#include "src/sim/perf_model.h"
#include "src/workloads/profile.h"

namespace numaplace {

class HpeSampler {
 public:
  // `num_counters` models the size of the plausible candidate set the paper
  // starts from: 41 on the Intel system, 25 on the AMD system. Must be >=
  // kNumInformativeCounters.
  HpeSampler(const PerformanceModel& model, int num_counters, uint64_t seed);

  // Counter names, stable across calls ("l2_miss_rate", ..., "noise_07").
  const std::vector<std::string>& CounterNames() const { return names_; }

  // Samples all counters for the workload running in the given placement.
  std::vector<double> Sample(const WorkloadProfile& profile,
                             const Placement& placement) const;

  static constexpr int kNumInformativeCounters = 12;

 private:
  const PerformanceModel* model_;
  int num_counters_;
  uint64_t seed_;
  std::vector<std::string> names_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SIM_HPE_H_
