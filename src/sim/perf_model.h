// Analytic shared-resource performance simulator.
//
// Replaces the paper's physical NUMA testbeds (see DESIGN.md §2). Given a
// workload profile and a concrete placement, the model derives throughput
// from the same physical effects the paper attributes performance
// differences to (§1):
//   * pipeline sharing inside an L2 group (SMT siblings / CMT module cores),
//     contentious or cooperative depending on the workload;
//   * L2 and L3 capacity pressure from the threads mapped to each cache,
//     including per-L3 replication of the shared working set and the
//     cooperative-sharing bonus of co-located threads;
//   * DRAM bandwidth saturation per node and interconnect bandwidth
//     saturation for the remote share of the traffic;
//   * cross-thread communication latency determined by how far apart the
//     vCPUs sit in the topology;
//   * straggler effects for barrier-synchronized workloads under unbalanced
//     mappings.
// Throughput follows an average-memory-access-time cost model with a
// bandwidth fixed point (saturation slows threads, which lowers demand).
// A seeded lognormal noise term models run-to-run measurement variance.
#ifndef NUMAPLACE_SRC_SIM_PERF_MODEL_H_
#define NUMAPLACE_SRC_SIM_PERF_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/core/placement.h"
#include "src/topology/topology.h"
#include "src/workloads/profile.h"

namespace numaplace {

// Simulator internals for one evaluation, exposed for the synthetic HPE
// sampler and for tests.
struct PerfBreakdown {
  double l2_hit = 0.0;             // hit fraction in the thread's L2 group
  double l3_hit = 0.0;             // hit fraction in the node's L3
  double pipeline_factor = 0.0;    // per-thread rate from L2-group sharing
  double comm_factor = 0.0;        // latency slowdown/bonus factor
  double bandwidth_factor = 0.0;   // DRAM+interconnect saturation factor
  double dram_demand_gbps = 0.0;   // post-cache traffic demanded
  double dram_supply_gbps = 0.0;
  double ic_demand_gbps = 0.0;     // remote share of traffic
  double ic_supply_gbps = 0.0;
  double mean_latency_ns = 0.0;
  double cost_per_op = 0.0;        // average op cost (1.0 = cache-resident)
};

struct PerfResult {
  double throughput_ops = 0.0;     // aggregate ops/sec for the container
  PerfBreakdown breakdown;
};

class PerformanceModel {
 public:
  // `noise_sigma` is the lognormal sigma of the measurement noise; 0 gives
  // the deterministic mean behaviour.
  explicit PerformanceModel(const Topology& topo, double noise_sigma = 0.0,
                            uint64_t noise_seed = 0);

  // Evaluates one container running alone on the machine. `placement` may be
  // unbalanced (vCPUs stacked unevenly); balance is not assumed.
  PerfResult Evaluate(const WorkloadProfile& profile, const Placement& placement) const;

  // Same, with an explicit run index: measurements of the same (workload,
  // placement) pair differ run to run by the lognormal noise, reproducibly.
  PerfResult Evaluate(const WorkloadProfile& profile, const Placement& placement,
                      uint64_t run) const;

  const Topology& topology() const { return *topo_; }
  double noise_sigma() const { return noise_sigma_; }

 private:
  friend class MultiTenantModel;

  // Deterministic core of Evaluate, before measurement noise.
  PerfResult EvaluateDeterministic(const WorkloadProfile& profile,
                                   const Placement& placement) const;

  const Topology* topo_;
  double noise_sigma_;
  uint64_t noise_seed_;
};

// Several containers co-running on one machine: bandwidth demands add up on
// shared nodes and links, caches are partitioned proportionally to demand,
// and threads from different containers sharing an L2 group contend for its
// pipeline. This drives the §7 packing experiments where the Aggressive
// policies let containers share NUMA nodes.
class MultiTenantModel {
 public:
  explicit MultiTenantModel(const Topology& topo, double noise_sigma = 0.0,
                            uint64_t noise_seed = 0);

  struct Tenant {
    const WorkloadProfile* profile;
    Placement placement;
  };

  // Per-tenant throughput under interference.
  std::vector<PerfResult> Evaluate(const std::vector<Tenant>& tenants) const;

 private:
  const Topology* topo_;
  double noise_sigma_;
  uint64_t noise_seed_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SIM_PERF_MODEL_H_
