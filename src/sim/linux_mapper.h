// Simulated unpinned Linux vCPU mapping.
//
// The Conservative and Aggressive policies of §7 do not pin vCPUs; Linux maps
// them "in the way it wishes, and possibly creating unneeded contention" —
// the paper observes that even the whole-machine Conservative policy can
// violate performance targets because CFS occasionally maps vCPUs unevenly
// onto shared resources. This mapper reproduces that behaviour: mostly
// balanced placements with stochastic imbalance across nodes and occasional
// needless L2-group sharing while other groups sit idle.
#ifndef NUMAPLACE_SRC_SIM_LINUX_MAPPER_H_
#define NUMAPLACE_SRC_SIM_LINUX_MAPPER_H_

#include <vector>

#include "src/core/placement.h"
#include "src/topology/topology.h"
#include "src/util/rng.h"

namespace numaplace {

class LinuxMapper {
 public:
  // `imbalance` in [0,1]: 0 = perfect spreading, higher values make node
  // skew and needless L2 sharing more likely. The default matches the level
  // of mapping noise needed to reproduce the paper's occasional Conservative
  // violations.
  explicit LinuxMapper(const Topology& topo, double imbalance = 0.3);

  // Maps `vcpus` onto the allowed nodes without pinning. `occupied` lists
  // hardware threads already taken by other containers (never reused).
  Placement Map(int vcpus, const NodeSet& allowed_nodes,
                const std::vector<int>& occupied, Rng& rng) const;

  // Whole machine, nothing occupied.
  Placement Map(int vcpus, Rng& rng) const;

 private:
  const Topology* topo_;
  double imbalance_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_SIM_LINUX_MAPPER_H_
