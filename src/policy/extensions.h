// Extensions beyond the paper's evaluated policies, implementing the two
// alternatives §3 discusses:
//
//  * RandomSearchPolicy — the "radically different approach ... a statistical
//    technique that searches for an optimally performing placement by trying
//    a sufficient number of random placements" (Radojkovic et al.). The paper
//    dismisses it because the best known variants need thousands of trials;
//    this implementation makes that trade-off measurable: it samples N
//    random feasible placements, measures each (paying probe time per
//    sample), and keeps the best.
//
//  * InterleavedMlPolicy — the §3 future-work scenario: "Another alternative
//    would be to only interleave with 'safe' containers, e.g., those with
//    low CPU utilization or otherwise known to cause negligible
//    interference." After placing primary containers with the ML policy,
//    idle hardware threads are offered to a filler container type, but only
//    if the multi-tenant model predicts the primaries still meet their goal.
#ifndef NUMAPLACE_SRC_POLICY_EXTENSIONS_H_
#define NUMAPLACE_SRC_POLICY_EXTENSIONS_H_

#include <string>
#include <vector>

#include "src/policy/policies.h"

namespace numaplace {

class RandomSearchPolicy final : public PackingPolicy {
 public:
  // `samples`: how many random placements each trial may measure. The probe
  // cost (samples x probe seconds + migrations) is reported via
  // DecisionCostSeconds, since it is the approach's Achilles heel.
  RandomSearchPolicy(const PackingContext& ctx, int samples,
                     double probe_seconds = 2.0);

  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

  // The best placement found in one search, plus what the search cost.
  struct SearchResult {
    Placement best;
    double best_throughput = 0.0;
    double decision_cost_seconds = 0.0;
    int samples_used = 0;
  };
  SearchResult Search(const WorkloadProfile& workload, Rng& rng) const;

 private:
  PackingContext ctx_;
  int samples_;
  double probe_seconds_;
  LinuxMapper mapper_;
};

class InterleavedMlPolicy final : public PackingPolicy {
 public:
  // `filler` is the "safe" container type offered the leftover threads; it
  // must outlive the policy, as must `model`.
  InterleavedMlPolicy(const PackingContext& ctx, const TrainedPerfModel* model,
                      const WorkloadProfile* filler, int filler_vcpus);

  const std::string& name() const override;

  // The PolicyResult counts primary instances only; filler statistics are
  // available through EvaluateDetailed.
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

  struct DetailedResult {
    PolicyResult primary;
    int filler_instances = 0;
    double filler_mean_perf_vs_solo = 0.0;  // filler throughput vs running alone
  };
  DetailedResult EvaluateDetailed(const WorkloadProfile& workload,
                                  double goal_fraction) const;

 private:
  PackingContext ctx_;
  const TrainedPerfModel* model_;
  const WorkloadProfile* filler_;
  int filler_vcpus_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_POLICY_EXTENSIONS_H_
