#include "src/policy/extensions.h"

#include <algorithm>
#include <set>

#include "src/migration/migration.h"
#include "src/util/check.h"

namespace numaplace {

namespace {

const std::string kRandomSearchName = "RandomSearch";
const std::string kInterleavedName = "ML (interleaved)";

}  // namespace

RandomSearchPolicy::RandomSearchPolicy(const PackingContext& ctx, int samples,
                                       double probe_seconds)
    : ctx_(ctx), samples_(samples), probe_seconds_(probe_seconds), mapper_(*ctx.topo, 0.0) {
  NP_CHECK(samples_ >= 1);
  NP_CHECK(probe_seconds_ > 0.0);
}

const std::string& RandomSearchPolicy::name() const { return kRandomSearchName; }

RandomSearchPolicy::SearchResult RandomSearchPolicy::Search(const WorkloadProfile& workload,
                                                            Rng& rng) const {
  const FastMigrator migrator;
  SearchResult result;
  NodeSet previous_nodes;
  for (int s = 0; s < samples_; ++s) {
    // A random feasible placement: spread over a random node subset with a
    // balanced mapper (imbalance 0 keeps the sample space to sane candidates;
    // the statistical method's point is which *subset* wins, not pathological
    // mappings).
    const int num_nodes =
        1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(ctx_.topo->num_nodes())));
    std::vector<int> all_nodes(static_cast<size_t>(ctx_.topo->num_nodes()));
    for (int n = 0; n < ctx_.topo->num_nodes(); ++n) {
      all_nodes[static_cast<size_t>(n)] = n;
    }
    rng.Shuffle(all_nodes);
    NodeSet nodes(all_nodes.begin(), all_nodes.begin() + num_nodes);
    std::sort(nodes.begin(), nodes.end());
    if (ctx_.topo->NodeCapacity() * num_nodes < ctx_.vcpus) {
      continue;  // cannot host the container; costs nothing
    }
    const Placement candidate = mapper_.Map(ctx_.vcpus, nodes, {}, rng);

    // Measuring a placement costs a probe; switching node sets costs a
    // migration.
    result.decision_cost_seconds += probe_seconds_;
    if (s > 0 && nodes != previous_nodes) {
      result.decision_cost_seconds += migrator.Migrate(workload).seconds;
    }
    previous_nodes = nodes;
    ++result.samples_used;

    const double throughput =
        ctx_.solo_sim->Evaluate(workload, candidate, static_cast<uint64_t>(s)).throughput_ops;
    if (throughput > result.best_throughput) {
      result.best_throughput = throughput;
      result.best = candidate;
    }
  }
  NP_CHECK_MSG(result.samples_used > 0, "no feasible random placement sampled");
  return result;
}

PolicyResult RandomSearchPolicy::Evaluate(const WorkloadProfile& workload,
                                          double goal_fraction, Rng& rng,
                                          int trials) const {
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);
  PolicyResult result;
  result.policy = name();
  result.instances = 1;  // the statistical method places one container
  double violation_sum = 0.0;
  double perf_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    const SearchResult search = Search(workload, rng);
    perf_sum += search.best_throughput / goal;
    if (search.best_throughput < goal) {
      violation_sum += 100.0 * (goal - search.best_throughput) / goal;
    }
  }
  result.violation_pct = violation_sum / trials;
  result.mean_perf_vs_goal = perf_sum / trials;
  return result;
}

InterleavedMlPolicy::InterleavedMlPolicy(const PackingContext& ctx,
                                         const TrainedPerfModel* model,
                                         const WorkloadProfile* filler, int filler_vcpus)
    : ctx_(ctx), model_(model), filler_(filler), filler_vcpus_(filler_vcpus) {
  NP_CHECK(model_ != nullptr);
  NP_CHECK(filler_ != nullptr);
  NP_CHECK(filler_vcpus_ > 0);
}

const std::string& InterleavedMlPolicy::name() const { return kInterleavedName; }

InterleavedMlPolicy::DetailedResult InterleavedMlPolicy::EvaluateDetailed(
    const WorkloadProfile& workload, double goal_fraction) const {
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);

  // Primary containers exactly as the ML policy would place them.
  const MlPolicy ml(ctx_, model_);
  const ImportantPlacement& chosen = ml.ChoosePlacement(workload, goal_fraction);
  const std::vector<Placement> primary_slots = DisjointRealizations(ctx_, chosen);

  // Idle hardware threads: whatever the primary slots left unused.
  std::set<int> used;
  for (const Placement& slot : primary_slots) {
    used.insert(slot.hw_threads.begin(), slot.hw_threads.end());
  }
  std::vector<int> idle;
  for (int t = 0; t < ctx_.topo->NumHwThreads(); ++t) {
    if (!used.count(t)) {
      idle.push_back(t);
    }
  }

  // Candidate filler placements: greedy packing of idle threads, whole L2
  // groups first so fillers do not share pipelines with primaries.
  std::vector<Placement> filler_slots;
  std::vector<int> pool = idle;
  while (static_cast<int>(pool.size()) >= filler_vcpus_) {
    Placement f;
    f.hw_threads.assign(pool.begin(), pool.begin() + filler_vcpus_);
    pool.erase(pool.begin(), pool.begin() + filler_vcpus_);
    filler_slots.push_back(std::move(f));
  }

  // Accept fillers only while every primary still meets its goal under the
  // multi-tenant model ("only interleave with safe containers").
  std::vector<MultiTenantModel::Tenant> accepted;
  for (const Placement& slot : primary_slots) {
    accepted.push_back({&workload, slot});
  }
  size_t accepted_fillers = 0;
  for (const Placement& filler_slot : filler_slots) {
    std::vector<MultiTenantModel::Tenant> trial = accepted;
    trial.push_back({filler_, filler_slot});
    const std::vector<PerfResult> results = ctx_.multi_sim->Evaluate(trial);
    bool primaries_safe = true;
    for (size_t i = 0; i < primary_slots.size(); ++i) {
      primaries_safe &= results[i].throughput_ops >= goal;
    }
    if (primaries_safe) {
      accepted = std::move(trial);
      ++accepted_fillers;
    }
  }

  // Final measurement of the accepted mix.
  const std::vector<PerfResult> results = ctx_.multi_sim->Evaluate(accepted);
  DetailedResult detailed;
  detailed.primary.policy = name();
  detailed.primary.instances = static_cast<int>(primary_slots.size());
  double violation_sum = 0.0;
  double perf_sum = 0.0;
  for (size_t i = 0; i < primary_slots.size(); ++i) {
    perf_sum += results[i].throughput_ops / goal;
    if (results[i].throughput_ops < goal) {
      violation_sum += 100.0 * (goal - results[i].throughput_ops) / goal;
    }
  }
  detailed.primary.violation_pct = violation_sum / static_cast<double>(primary_slots.size());
  detailed.primary.mean_perf_vs_goal = perf_sum / static_cast<double>(primary_slots.size());
  detailed.filler_instances = static_cast<int>(accepted_fillers);

  if (accepted_fillers > 0) {
    // Filler throughput relative to running alone on the same threads.
    double ratio_sum = 0.0;
    for (size_t i = primary_slots.size(); i < accepted.size(); ++i) {
      const double solo =
          ctx_.solo_sim->Evaluate(*filler_, accepted[i].placement).throughput_ops;
      ratio_sum += results[i].throughput_ops / solo;
    }
    detailed.filler_mean_perf_vs_solo = ratio_sum / static_cast<double>(accepted_fillers);
  }
  return detailed;
}

PolicyResult InterleavedMlPolicy::Evaluate(const WorkloadProfile& workload,
                                           double goal_fraction, Rng& rng,
                                           int trials) const {
  (void)rng;
  (void)trials;  // deterministic
  return EvaluateDetailed(workload, goal_fraction).primary;
}

}  // namespace numaplace
