#include "src/policy/policies.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace numaplace {

namespace {

const std::string kConservative = "Conservative";
const std::string kAggressive = "Aggressive";
const std::string kSmartAggressive = "Aggressive (Smart)";
const std::string kMl = "ML";

void ValidateContext(const PackingContext& ctx) {
  NP_CHECK(ctx.topo != nullptr);
  NP_CHECK(ctx.ips != nullptr);
  NP_CHECK(ctx.solo_sim != nullptr);
  NP_CHECK(ctx.multi_sim != nullptr);
  NP_CHECK(ctx.vcpus > 0);
}

// Aggregates per-instance throughputs into a PolicyResult sample.
struct OutcomeAccumulator {
  double violation_sum = 0.0;
  double perf_vs_goal_sum = 0.0;
  int samples = 0;

  void Add(double throughput, double goal) {
    NP_CHECK(goal > 0.0);
    perf_vs_goal_sum += throughput / goal;
    if (throughput < goal) {
      violation_sum += 100.0 * (goal - throughput) / goal;
    }
    ++samples;
  }

  void FillResult(PolicyResult& result) const {
    NP_CHECK(samples > 0);
    result.violation_pct = violation_sum / samples;
    result.mean_perf_vs_goal = perf_vs_goal_sum / samples;
  }
};

int MaxInstances(const PackingContext& ctx) {
  return ctx.topo->NumHwThreads() / ctx.vcpus;
}

}  // namespace

double BaselineThroughput(const PackingContext& ctx, const WorkloadProfile& workload) {
  ValidateContext(ctx);
  const ImportantPlacement& baseline = ctx.ips->ById(ctx.baseline_id);
  const Placement placement = Realize(baseline, *ctx.topo, ctx.vcpus);
  // Deterministic (noise-free) reference: goals should not wobble run to run.
  PerformanceModel noiseless(*ctx.topo, 0.0, 0);
  return noiseless.Evaluate(workload, placement).throughput_ops;
}

std::vector<Placement> DisjointRealizations(const PackingContext& ctx,
                                            const ImportantPlacement& placement_class) {
  ValidateContext(ctx);
  const int m = placement_class.NodeCount();
  // Prefer the Pareto packing with the most parts of size m; tie-break on
  // total interconnect bandwidth of those parts (better instances).
  const Packing* best_packing = nullptr;
  int best_count = 0;
  double best_bw = -1.0;
  for (const Packing& packing : ctx.ips->pareto_packings) {
    int count = 0;
    double bw = 0.0;
    for (const NodeSet& part : packing) {
      if (static_cast<int>(part.size()) == m) {
        ++count;
        bw += ctx.topo->AggregateBandwidth(part);
      }
    }
    if (count > best_count || (count == best_count && bw > best_bw)) {
      best_count = count;
      best_bw = bw;
      best_packing = &packing;
    }
  }
  NP_CHECK_MSG(best_packing != nullptr && best_count > 0,
               "no packing contains a part of size " << m);

  std::vector<Placement> out;
  for (const NodeSet& part : *best_packing) {
    if (static_cast<int>(part.size()) == m) {
      out.push_back(RealizeOnNodes(placement_class, part, *ctx.topo, ctx.vcpus));
    }
  }
  return out;
}

// --- Conservative ---

ConservativePolicy::ConservativePolicy(const PackingContext& ctx, double mapper_imbalance)
    : ctx_(ctx), mapper_(*ctx.topo, mapper_imbalance) {
  ValidateContext(ctx_);
}

const std::string& ConservativePolicy::name() const { return kConservative; }

PolicyResult ConservativePolicy::Evaluate(const WorkloadProfile& workload,
                                          double goal_fraction, Rng& rng,
                                          int trials) const {
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);
  OutcomeAccumulator acc;
  for (int t = 0; t < trials; ++t) {
    const Placement mapped = mapper_.Map(ctx_.vcpus, rng);
    acc.Add(ctx_.solo_sim->Evaluate(workload, mapped).throughput_ops, goal);
  }
  PolicyResult result;
  result.policy = name();
  result.instances = 1;
  acc.FillResult(result);
  return result;
}

// --- Aggressive ---

AggressivePolicy::AggressivePolicy(const PackingContext& ctx, double mapper_imbalance)
    : ctx_(ctx), mapper_(*ctx.topo, mapper_imbalance) {
  ValidateContext(ctx_);
}

const std::string& AggressivePolicy::name() const { return kAggressive; }

PolicyResult AggressivePolicy::Evaluate(const WorkloadProfile& workload,
                                        double goal_fraction, Rng& rng,
                                        int trials) const {
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);
  const int instances = MaxInstances(ctx_);
  NP_CHECK(instances >= 1);
  OutcomeAccumulator acc;
  for (int t = 0; t < trials; ++t) {
    // Unpinned containers fill the machine one after another; each new one
    // can only use threads the previous ones left free.
    std::vector<int> occupied;
    NodeSet all_nodes;
    for (int n = 0; n < ctx_.topo->num_nodes(); ++n) {
      all_nodes.push_back(n);
    }
    std::vector<MultiTenantModel::Tenant> tenants;
    for (int i = 0; i < instances; ++i) {
      Placement p = mapper_.Map(ctx_.vcpus, all_nodes, occupied, rng);
      occupied.insert(occupied.end(), p.hw_threads.begin(), p.hw_threads.end());
      tenants.push_back({&workload, std::move(p)});
    }
    const std::vector<PerfResult> results = ctx_.multi_sim->Evaluate(tenants);
    for (const PerfResult& r : results) {
      acc.Add(r.throughput_ops, goal);
    }
  }
  PolicyResult result;
  result.policy = name();
  result.instances = instances;
  acc.FillResult(result);
  return result;
}

// --- Smart-Aggressive ---

SmartAggressivePolicy::SmartAggressivePolicy(const PackingContext& ctx) : ctx_(ctx) {
  ValidateContext(ctx_);
}

const std::string& SmartAggressivePolicy::name() const { return kSmartAggressive; }

PolicyResult SmartAggressivePolicy::Evaluate(const WorkloadProfile& workload,
                                             double goal_fraction, Rng& rng,
                                             int trials) const {
  (void)rng;
  (void)trials;  // deterministic policy
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);

  // Minimum node count that can host the container one-vCPU-per-thread.
  const int min_nodes =
      (ctx_.vcpus + ctx_.topo->NodeCapacity() - 1) / ctx_.topo->NodeCapacity();
  // The best minimum set is the min_nodes-sized placement class with the
  // highest interconnect score; shared L2 is forced at minimum size.
  const ImportantPlacement* best = nullptr;
  for (const ImportantPlacement& ip : ctx_.ips->placements) {
    if (ip.NodeCount() != min_nodes) {
      continue;
    }
    if (best == nullptr || ip.interconnect_gbps > best->interconnect_gbps ||
        (ip.interconnect_gbps == best->interconnect_gbps && ip.l2_score < best->l2_score)) {
      best = &ip;
    }
  }
  NP_CHECK_MSG(best != nullptr, "no minimum-size placement class");

  const std::vector<Placement> slots = DisjointRealizations(ctx_, *best);
  std::vector<MultiTenantModel::Tenant> tenants;
  for (const Placement& slot : slots) {
    tenants.push_back({&workload, slot});
  }
  const std::vector<PerfResult> results = ctx_.multi_sim->Evaluate(tenants);
  OutcomeAccumulator acc;
  for (const PerfResult& r : results) {
    acc.Add(r.throughput_ops, goal);
  }
  PolicyResult result;
  result.policy = name();
  result.instances = static_cast<int>(slots.size());
  acc.FillResult(result);
  return result;
}

// --- scheduling-policy adapter ---

ScheduledPackingPolicy::ScheduledPackingPolicy(const PackingContext& ctx,
                                               std::unique_ptr<SchedulingPolicy> policy,
                                               const TrainedPerfModel* model)
    : ctx_(ctx), policy_(std::move(policy)), model_(model) {
  ValidateContext(ctx_);
  NP_CHECK(policy_ != nullptr);
  NP_CHECK_MSG(!policy_->UsesModel() || model_ != nullptr,
               "scheduling policy '" << policy_->name() << "' needs a trained model");
}

const std::string& ScheduledPackingPolicy::name() const { return policy_->name(); }

const ImportantPlacement& ScheduledPackingPolicy::ChoosePlacement(
    const WorkloadProfile& workload, double goal_fraction) const {
  const OccupancyMap empty(*ctx_.topo);
  std::vector<int> placement_ids;
  std::vector<double> predicted_abs;
  PolicyContext decision;
  decision.topo = ctx_.topo;
  decision.ips = ctx_.ips;
  decision.occupancy = &empty;
  decision.vcpus = ctx_.vcpus;
  decision.placement_ids = &placement_ids;
  decision.predicted_abs = &predicted_abs;

  if (policy_->UsesModel()) {
    // Probe the two input placements (step 4 of §1: run briefly in two
    // placements, feed the measurements to the model).
    const Placement probe_a =
        Realize(ctx_.ips->ById(model_->input_a), *ctx_.topo, ctx_.vcpus);
    const Placement probe_b =
        Realize(ctx_.ips->ById(model_->input_b), *ctx_.topo, ctx_.vcpus);
    const double perf_a =
        ctx_.solo_sim->Evaluate(workload, probe_a, /*run=*/9001).throughput_ops;
    const double perf_b =
        ctx_.solo_sim->Evaluate(workload, probe_b, /*run=*/9001).throughput_ops;
    const std::vector<double> predicted = model_->Predict(perf_a, perf_b);

    // Convert relative predictions to absolute via the probe measurement.
    size_t index_a = 0;
    for (size_t i = 0; i < model_->placement_ids.size(); ++i) {
      if (model_->placement_ids[i] == model_->input_a) {
        index_a = i;
      }
    }
    NP_CHECK(predicted[index_a] > 0.0);
    const double abs_baseline = perf_a / predicted[index_a];

    placement_ids = model_->placement_ids;
    predicted_abs.reserve(predicted.size());
    for (double rel : predicted) {
      predicted_abs.push_back(abs_baseline * rel);
    }
    // Require a small safety margin above the goal: predictions carry a few
    // percent of error, and the operator's promise is "always meets the
    // performance goal", not "meets it in expectation". fallback_slack 0
    // keeps the unreachable-goal fallback at "best prediction wins".
    constexpr double kSafetyMargin = 1.04;
    decision.goal_abs =
        goal_fraction * BaselineThroughput(ctx_, workload) * kSafetyMargin;
    decision.fallback_slack = 0.0;
  } else {
    ModelFreeCandidates(*ctx_.ips, placement_ids, predicted_abs);
  }

  const std::vector<size_t> order = policy_->RankForAdmission(decision);
  NP_CHECK_MSG(!order.empty(), "policy '" << policy_->name() << "' ranked nothing");
  NP_CHECK_MSG(order.front() < placement_ids.size(),
               "policy '" << policy_->name() << "' ranked candidate index "
                          << order.front() << " out of range");
  return ctx_.ips->ById(placement_ids[order.front()]);
}

PolicyResult ScheduledPackingPolicy::Evaluate(const WorkloadProfile& workload,
                                              double goal_fraction, Rng& rng,
                                              int trials) const {
  (void)rng;
  (void)trials;  // deterministic given the trained model
  const double goal = goal_fraction * BaselineThroughput(ctx_, workload);
  const ImportantPlacement& chosen = ChoosePlacement(workload, goal_fraction);
  const std::vector<Placement> slots = DisjointRealizations(ctx_, chosen);
  std::vector<MultiTenantModel::Tenant> tenants;
  for (const Placement& slot : slots) {
    tenants.push_back({&workload, slot});
  }
  const std::vector<PerfResult> results = ctx_.multi_sim->Evaluate(tenants);
  OutcomeAccumulator acc;
  for (const PerfResult& r : results) {
    acc.Add(r.throughput_ops, goal);
  }
  PolicyResult result;
  result.policy = name();
  result.instances = static_cast<int>(slots.size());
  acc.FillResult(result);
  return result;
}

// --- ML ---

MlPolicy::MlPolicy(const PackingContext& ctx, const TrainedPerfModel* model)
    : inner_(ctx, MakePolicy("model"), model) {}

const std::string& MlPolicy::name() const { return kMl; }

const ImportantPlacement& MlPolicy::ChoosePlacement(const WorkloadProfile& workload,
                                                    double goal_fraction) const {
  return inner_.ChoosePlacement(workload, goal_fraction);
}

PolicyResult MlPolicy::Evaluate(const WorkloadProfile& workload, double goal_fraction,
                                Rng& rng, int trials) const {
  PolicyResult result = inner_.Evaluate(workload, goal_fraction, rng, trials);
  result.policy = name();  // the paper's label, not the registry name
  return result;
}

}  // namespace numaplace
