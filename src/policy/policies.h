// Container-packing policies (§7): ML (the paper's), Conservative,
// Aggressive, and Smart-Aggressive, evaluated by how many instances of a
// container they pack per machine and how badly they violate a performance
// goal expressed relative to the baseline placement.
//
// Since the pluggable-policy refactor the placement *decision* lives behind
// the SchedulingPolicy interface (src/scheduler/policy.h), shared with the
// multi-tenant MachineScheduler: ScheduledPackingPolicy evaluates any
// registered SchedulingPolicy under the Fig. 5 packing study, and MlPolicy
// is the "model" policy run through that adapter. PackingPolicy remains the
// evaluation-side interface (how a policy's choices score on one machine);
// Conservative/Aggressive pack unpinned containers and therefore bypass the
// placement-class decision entirely.
#ifndef NUMAPLACE_SRC_POLICY_POLICIES_H_
#define NUMAPLACE_SRC_POLICY_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/scheduler/policy.h"
#include "src/sim/linux_mapper.h"
#include "src/sim/perf_model.h"
#include "src/util/rng.h"
#include "src/workloads/profile.h"

namespace numaplace {

// Everything a packing evaluation needs to know about the machine under
// management.
struct PackingContext {
  const Topology* topo = nullptr;
  const ImportantPlacementSet* ips = nullptr;
  const PerformanceModel* solo_sim = nullptr;       // single-container model
  const MultiTenantModel* multi_sim = nullptr;      // co-located model
  int vcpus = 0;
  int baseline_id = 0;  // placement whose performance defines the goal
};

struct PolicyResult {
  std::string policy;
  int instances = 0;
  // Mean shortfall below the goal across instances and trials, as a percent
  // of the goal (0 when every instance meets it) — the "stars" in Fig. 5.
  double violation_pct = 0.0;
  // Mean per-instance throughput relative to the goal (can exceed 1).
  double mean_perf_vs_goal = 0.0;
};

class PackingPolicy {
 public:
  virtual ~PackingPolicy() = default;
  virtual const std::string& name() const = 0;
  // Packs instances of `workload` under `goal_fraction` (e.g. 0.9, 1.0, 1.1
  // of the baseline-placement throughput) and measures the outcome.
  // Stochastic policies average over `trials` runs.
  virtual PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction,
                                Rng& rng, int trials) const = 0;
};

// Throughput of the container alone in the baseline placement — the
// denominator of every goal.
double BaselineThroughput(const PackingContext& ctx, const WorkloadProfile& workload);

// One instance per machine, vCPUs left for Linux to map (unpinned).
class ConservativePolicy final : public PackingPolicy {
 public:
  explicit ConservativePolicy(const PackingContext& ctx, double mapper_imbalance = 0.3);
  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

 private:
  PackingContext ctx_;
  LinuxMapper mapper_;
};

// As many instances as the machine has hardware threads for, all unpinned;
// containers share NUMA nodes and interfere.
class AggressivePolicy final : public PackingPolicy {
 public:
  explicit AggressivePolicy(const PackingContext& ctx, double mapper_imbalance = 0.3);
  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

 private:
  PackingContext ctx_;
  LinuxMapper mapper_;
};

// Maximum instance count, but each instance pinned to the minimum node set
// with the highest interconnect bandwidth ("requires an analysis of the
// interconnect topology").
class SmartAggressivePolicy final : public PackingPolicy {
 public:
  explicit SmartAggressivePolicy(const PackingContext& ctx);
  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

 private:
  PackingContext ctx_;
};

// Packs a machine with disjoint instances of whatever placement class a
// SchedulingPolicy picks on an empty machine — the bridge between the
// scheduler's pluggable decision API and the Fig. 5 packing study. When the
// policy uses the model, the container is probed in the model's two input
// placements and the goal carries the ML policy's safety margin; model-free
// policies decide from the machine structure alone (goal 0).
class ScheduledPackingPolicy : public PackingPolicy {
 public:
  // `policy` must be non-null; `model` must be non-null when the policy uses
  // the model, and must outlive this object (as must everything in `ctx`).
  ScheduledPackingPolicy(const PackingContext& ctx,
                         std::unique_ptr<SchedulingPolicy> policy,
                         const TrainedPerfModel* model = nullptr);

  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

  // The placement class the wrapped SchedulingPolicy ranks first for this
  // workload and goal on an empty machine.
  const ImportantPlacement& ChoosePlacement(const WorkloadProfile& workload,
                                            double goal_fraction) const;

 private:
  PackingContext ctx_;
  std::unique_ptr<SchedulingPolicy> policy_;
  const TrainedPerfModel* model_;
};

// The paper's policy: probe two placements, predict the full performance
// vector with the trained model, allocate the fewest NUMA nodes that meet
// the goal, and pack the remaining nodes with more instances of the same
// placement class. Implemented as the scheduler's "model" policy run
// through the ScheduledPackingPolicy adapter, under the paper's name.
class MlPolicy final : public PackingPolicy {
 public:
  // `model` must outlive the policy.
  MlPolicy(const PackingContext& ctx, const TrainedPerfModel* model);
  const std::string& name() const override;
  PolicyResult Evaluate(const WorkloadProfile& workload, double goal_fraction, Rng& rng,
                        int trials) const override;

  // The placement class the model would choose for this workload and goal
  // (exposed for the examples and tests).
  const ImportantPlacement& ChoosePlacement(const WorkloadProfile& workload,
                                            double goal_fraction) const;

 private:
  ScheduledPackingPolicy inner_;
};

// Splits the machine into as many disjoint instances of the given placement
// class as fit, using the Pareto packings (best parts first).
std::vector<Placement> DisjointRealizations(const PackingContext& ctx,
                                            const ImportantPlacement& placement_class);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_POLICY_POLICIES_H_
