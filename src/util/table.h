// ASCII table and CSV emission for the benchmark harnesses. Every bench binary
// regenerates a paper table/figure as rows; TablePrinter renders them aligned
// for the terminal, and the same rows can be dumped as CSV for plotting.
#ifndef NUMAPLACE_SRC_UTIL_TABLE_H_
#define NUMAPLACE_SRC_UTIL_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace numaplace {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Row width must equal the header width.
  void AddRow(std::vector<std::string> row);

  // Convenience: format a double with the given precision.
  static std::string Num(double value, int precision = 2);

  // Render with column alignment and a separator line under the header.
  void Print(std::ostream& os) const;

  // RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  void PrintCsv(std::ostream& os) const;

  size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_UTIL_TABLE_H_
