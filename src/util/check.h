// Lightweight invariant-checking macros used across numaplace.
//
// NP_CHECK is always on (release included): library invariants whose violation
// means the caller misused the API or internal state is corrupt. It throws
// std::logic_error so tests can assert on misuse without aborting the process.
#ifndef NUMAPLACE_SRC_UTIL_CHECK_H_
#define NUMAPLACE_SRC_UTIL_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace numaplace {

[[noreturn]] inline void CheckFailure(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "NP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw std::logic_error(os.str());
}

}  // namespace numaplace

#define NP_CHECK(expr)                                            \
  do {                                                            \
    if (!(expr)) {                                                \
      ::numaplace::CheckFailure(#expr, __FILE__, __LINE__, "");   \
    }                                                             \
  } while (0)

#define NP_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream np_check_os;                               \
      np_check_os << msg;                                           \
      ::numaplace::CheckFailure(#expr, __FILE__, __LINE__,          \
                                np_check_os.str());                 \
    }                                                               \
  } while (0)

#endif  // NUMAPLACE_SRC_UTIL_CHECK_H_
