#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/check.h"

namespace numaplace {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  NP_CHECK_MSG(row.size() == headers_.size(),
               "row width " << row.size() << " != header width " << headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) {
        os << "  ";
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << CsvEscape(row[c]);
      if (c + 1 < row.size()) {
        os << ",";
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace numaplace
