#include "src/util/rng.h"

#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace numaplace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  // splitmix64 expansion guarantees a non-degenerate xoshiro state even for
  // seed == 0.
  uint64_t s = seed;
  for (auto& word : state_) {
    s = SplitMix64(s);
    word = s;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  NP_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  NP_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  NP_CHECK(stddev >= 0.0);
  return mean + stddev * NextGaussian();
}

Rng Rng::Fork(uint64_t stream_index) const {
  return Rng(SplitMix64(seed_ ^ SplitMix64(stream_index + 0x5bf03635ULL)));
}

}  // namespace numaplace
