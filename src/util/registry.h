// Name -> factory registry machinery, shared by the scheduling-policy
// registry (src/scheduler/policy.h) and the fleet-dispatch registry
// (src/cluster/dispatch.h) so the two cannot drift apart in behavior:
// duplicate registration CHECK-fails (silently replacing an implementation
// would make two benchmarks with the same config incomparable), unknown
// names CHECK-fail listing what is registered, Names() is sorted.
#ifndef NUMAPLACE_SRC_UTIL_REGISTRY_H_
#define NUMAPLACE_SRC_UTIL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace numaplace {

template <typename Interface>
class FactoryRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>()>;

  // `kind` names the registered thing in error messages, e.g. "scheduling
  // policy".
  explicit FactoryRegistry(std::string kind) : kind_(std::move(kind)) {}

  void Register(const std::string& name, Factory factory) {
    NP_CHECK(!name.empty());
    NP_CHECK(factory != nullptr);
    const auto [it, inserted] = factories_.try_emplace(name, std::move(factory));
    (void)it;
    NP_CHECK_MSG(inserted, kind_ << " '" << name << "' is already registered");
  }

  bool Has(const std::string& name) const { return factories_.count(name) > 0; }

  std::unique_ptr<Interface> Make(const std::string& name) const {
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream known;
      for (const auto& [key, factory] : factories_) {
        (void)factory;
        known << (known.tellp() > 0 ? ", " : "") << key;
      }
      NP_CHECK_MSG(false, "unknown " << kind_ << " '" << name
                                     << "' (registered: " << known.str() << ")");
    }
    std::unique_ptr<Interface> made = it->second();
    NP_CHECK_MSG(made != nullptr, "factory for " << kind_ << " '" << name
                                                 << "' returned null");
    return made;
  }

  // Registered names, sorted (std::map order).
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
      (void)factory;
      names.push_back(name);
    }
    return names;
  }

 private:
  std::string kind_;
  std::map<std::string, Factory> factories_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_UTIL_REGISTRY_H_
