#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace numaplace {

double Mean(std::span<const double> v) {
  if (v.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : v) {
    sum += x;
  }
  return sum / static_cast<double>(v.size());
}

double Variance(std::span<const double> v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) {
    const double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(v.size());
}

double StdDev(std::span<const double> v) { return std::sqrt(Variance(v)); }

double Percentile(std::span<const double> v, double p) {
  NP_CHECK(!v.empty());
  NP_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Min(std::span<const double> v) {
  NP_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Max(std::span<const double> v) {
  NP_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double MeanAbsoluteError(std::span<const double> actual, std::span<const double> predicted) {
  NP_CHECK(actual.size() == predicted.size());
  NP_CHECK(!actual.empty());
  double acc = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    acc += std::abs(actual[i] - predicted[i]);
  }
  return acc / static_cast<double>(actual.size());
}

double MeanAbsolutePercentageError(std::span<const double> actual,
                                   std::span<const double> predicted) {
  NP_CHECK(actual.size() == predicted.size());
  NP_CHECK(!actual.empty());
  double acc = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    NP_CHECK_MSG(actual[i] != 0.0, "MAPE undefined for zero actual value");
    acc += std::abs((actual[i] - predicted[i]) / actual[i]);
  }
  return 100.0 * acc / static_cast<double>(actual.size());
}

double RSquared(std::span<const double> actual, std::span<const double> predicted) {
  NP_CHECK(actual.size() == predicted.size());
  NP_CHECK(!actual.empty());
  const double mean = Mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b) {
  NP_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace numaplace
