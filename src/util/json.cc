#include "src/util/json.h"

#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace numaplace {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    NP_CHECK_MSG(!stack_.back().is_object,
                 "object members need Key() (or Field()) before the value");
    if (stack_.back().has_members) {
      os_ << ",";
    }
    stack_.back().has_members = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back({/*is_object=*/true, /*has_members=*/false});
  os_ << "{";
}

void JsonWriter::EndObject() {
  NP_CHECK(!stack_.empty() && stack_.back().is_object && !after_key_);
  stack_.pop_back();
  os_ << "}";
}

void JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back({/*is_object=*/false, /*has_members=*/false});
  os_ << "[";
}

void JsonWriter::EndArray() {
  NP_CHECK(!stack_.empty() && !stack_.back().is_object && !after_key_);
  stack_.pop_back();
  os_ << "]";
}

void JsonWriter::Key(const std::string& key) {
  NP_CHECK_MSG(!stack_.empty() && stack_.back().is_object && !after_key_,
               "Key() is only valid directly inside an object");
  if (stack_.back().has_members) {
    os_ << ",";
  }
  stack_.back().has_members = true;
  WriteEscaped(key);
  os_ << ":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  WriteEscaped(value);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    os_ << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  os_ << buffer;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  Number(value);
}

void JsonWriter::Field(const std::string& key, int value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

void JsonWriter::WriteEscaped(const std::string& s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os_ << buffer;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

}  // namespace numaplace
