// Small statistics helpers shared by the ML code, the simulator and the
// benchmark harnesses.
#ifndef NUMAPLACE_SRC_UTIL_STATS_H_
#define NUMAPLACE_SRC_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace numaplace {

// Arithmetic mean; 0.0 for an empty span.
double Mean(std::span<const double> v);

// Population variance (divide by N); 0.0 for fewer than two elements.
double Variance(std::span<const double> v);

double StdDev(std::span<const double> v);

// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::span<const double> v, double p);

double Min(std::span<const double> v);
double Max(std::span<const double> v);

// Mean absolute error between two equal-length vectors.
double MeanAbsoluteError(std::span<const double> actual, std::span<const double> predicted);

// Mean absolute percentage error, in percent. Elements of `actual` must be
// non-zero.
double MeanAbsolutePercentageError(std::span<const double> actual,
                                   std::span<const double> predicted);

// Coefficient of determination. Returns 1.0 when actual is constant and
// predictions match it exactly, 0.0 when actual is constant otherwise.
double RSquared(std::span<const double> actual, std::span<const double> predicted);

// Euclidean distance between two equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t Count() const { return n_; }
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }
  double Variance() const;  // population variance
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_UTIL_STATS_H_
