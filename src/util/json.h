// Minimal streaming JSON emitter for machine-readable benchmark results.
//
// The bench binaries print human tables; perf-trajectory tooling wants the
// same numbers as JSON (BENCH_*.json). This writer keeps a container stack
// and inserts commas itself, so emission code reads top-to-bottom:
//
//   JsonWriter json(os);
//   json.BeginObject();
//   json.Field("bench", "bench_fleet");
//   json.Key("results"); json.BeginArray(); ... json.EndArray();
//   json.EndObject();
//
// Strings are escaped per RFC 8259; non-finite doubles emit null (JSON has
// no NaN/Inf).
#ifndef NUMAPLACE_SRC_UTIL_JSON_H_
#define NUMAPLACE_SRC_UTIL_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace numaplace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value (or container).
  void Key(const std::string& key);

  // Values (array elements, or the value after a Key()).
  void String(const std::string& value);
  void Number(double value);
  void Int(int64_t value);
  void Bool(bool value);

  // Key() + value in one call.
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, int value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, bool value);

 private:
  // Comma/expectation bookkeeping before emitting a value or key.
  void BeforeValue();
  void WriteEscaped(const std::string& s);

  struct Frame {
    bool is_object = false;
    bool has_members = false;
  };
  std::ostream& os_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_UTIL_JSON_H_
