// Deterministic pseudo-random number generation.
//
// Every stochastic component in numaplace (forest bootstrap, k-means init,
// synthetic workload generation, measurement noise) draws from an explicitly
// seeded Rng so that experiments are reproducible run-to-run. The generator is
// xoshiro256++ seeded via splitmix64, which is fast, has a 2^256-1 period and
// passes BigCrush; we avoid std::mt19937 because its seeding from a single
// integer is notoriously weak and its state is large to copy.
#ifndef NUMAPLACE_SRC_UTIL_RNG_H_
#define NUMAPLACE_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace numaplace {

// Stateless mixing function; used to derive independent child seeds.
uint64_t SplitMix64(uint64_t x);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box–Muller (no cached spare: keeps state trivially
  // copyable and replayable).
  double NextGaussian();

  // Gaussian with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive a child generator with an independent stream; child streams are
  // stable functions of (parent seed, index), not of draw order.
  Rng Fork(uint64_t stream_index) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_UTIL_RNG_H_
