// Machine topology substrate.
//
// A Topology describes the shared-resource hierarchy of a NUMA multicore: NUMA
// nodes (one L3 cache + memory controller each), cores, SMT hardware threads,
// L2 sharing groups, and the inter-node interconnect as a weighted link graph.
// This is the "simple abstract specification of the shared resources present
// on the target hardware" that Step 1 of the paper asks the user for; the
// scheduling concerns (src/core) and the performance simulator (src/sim) both
// consume it.
//
// Hardware thread layout is regular by construction:
//   core id      = node * cores_per_node + core_in_node
//   hw thread id = core * smt_per_core + sibling
//   L2 group id  = core / cores_per_l2_group
//   L3 group id  = core / cores_per_l3_group
// which covers SMT sharing (Intel: 1 core per L2 group, 2 SMT threads), AMD
// CMT modules (2 cores per L2 group, 1 thread per core), and — per the
// paper's §8 outlook — architectures like AMD Zen where the L3 cache is
// shared at a finer granularity (the CCX) than the memory controller: set
// cores_per_l3_group below cores_per_node and each node carries several L3
// groups. Classic machines leave cores_per_l3_group == cores_per_node (one
// L3 per node), which every paper experiment uses.
#ifndef NUMAPLACE_SRC_TOPOLOGY_TOPOLOGY_H_
#define NUMAPLACE_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace numaplace {

// An undirected interconnect link between two NUMA nodes with its measured
// aggregate bandwidth (GB/s), as obtained with a stream-like benchmark.
struct Link {
  int node_a = 0;
  int node_b = 0;
  double bandwidth_gbps = 0.0;
};

// Physical parameters consumed by the performance simulator (not by the
// placement algorithms, which are deliberately independent of them).
struct PerfParams {
  double l2_size_mb = 2.0;          // per L2 group
  double l3_size_mb = 8.0;          // per L3 group (== per node classically)
  double dram_gbps_per_node = 12.0; // local memory bandwidth per node
  // Cross-thread communication latencies, nanoseconds.
  double lat_same_core_ns = 20.0;
  double lat_same_l2_ns = 25.0;
  // Within one L3 group; 0 means "same as lat_same_node_ns" (the classic
  // one-L3-per-node case).
  double lat_same_l3_ns = 0.0;
  double lat_same_node_ns = 45.0;
  double lat_one_hop_ns = 130.0;
  double lat_extra_hop_ns = 90.0;   // added per hop beyond the first
  // Single-thread execution rate in abstract ops/sec used to anchor absolute
  // throughput numbers in reports.
  double base_ops_per_thread = 100000.0;
};

class Topology {
 public:
  // `cores_per_l2_group` must divide `cores_per_l3_group`, which must divide
  // `cores_per_node`. `cores_per_l3_group` of 0 means one L3 group per node.
  // Links must reference valid nodes, carry positive bandwidth, and contain
  // no duplicates.
  Topology(std::string name, int num_nodes, int cores_per_node, int smt_per_core,
           int cores_per_l2_group, std::vector<Link> links, PerfParams perf,
           int cores_per_l3_group = 0);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  int cores_per_node() const { return cores_per_node_; }
  int smt_per_core() const { return smt_per_core_; }
  int cores_per_l2_group() const { return cores_per_l2_group_; }
  const PerfParams& perf() const { return perf_; }
  const std::vector<Link>& links() const { return links_; }

  int cores_per_l3_group() const { return cores_per_l3_group_; }

  int NumCores() const { return num_nodes_ * cores_per_node_; }
  int NumHwThreads() const { return NumCores() * smt_per_core_; }
  int NumL2Groups() const { return NumCores() / cores_per_l2_group_; }
  int NumL3Groups() const { return NumCores() / cores_per_l3_group_; }
  // Hardware threads per L2 group (the L2/SMT concern's Capacity).
  int L2GroupCapacity() const { return cores_per_l2_group_ * smt_per_core_; }
  // Hardware threads per L3 group (the L3 concern's Capacity).
  int L3GroupCapacity() const { return cores_per_l3_group_ * smt_per_core_; }
  // Hardware threads per node (the memory-controller concern's Capacity).
  int NodeCapacity() const { return cores_per_node_ * smt_per_core_; }
  int L2GroupsPerNode() const { return cores_per_node_ / cores_per_l2_group_; }
  int L3GroupsPerNode() const { return cores_per_node_ / cores_per_l3_group_; }
  int L2GroupsPerL3Group() const { return cores_per_l3_group_ / cores_per_l2_group_; }
  // True when the L3 is shared at finer granularity than the memory
  // controller (the paper's Zen case, §8).
  bool HasSplitL3() const { return cores_per_l3_group_ != cores_per_node_; }

  // Layout accessors for a hardware thread id in [0, NumHwThreads()).
  int CoreOf(int hw_thread) const;
  int NodeOf(int hw_thread) const;
  int L2GroupOf(int hw_thread) const;
  int L3GroupOf(int hw_thread) const;
  int SmtSiblingIndexOf(int hw_thread) const;

  // All hardware thread ids on the given node, ascending.
  std::vector<int> HwThreadsOnNode(int node) const;

  // Structural enumeration used by occupancy-aware placement realization
  // (src/core/occupancy.h): the hardware threads belonging to one cache
  // group, and the group ids nested inside a coarser resource. All ascending.
  std::vector<int> HwThreadsInL3Group(int l3_group) const;
  std::vector<int> HwThreadsInL2Group(int l2_group) const;
  std::vector<int> L3GroupsOnNode(int node) const;
  std::vector<int> L2GroupsInL3Group(int l3_group) const;

  // Direct-link bandwidth between two distinct nodes; 0.0 when not adjacent.
  double LinkBandwidth(int node_a, int node_b) const;

  // Minimal hop count between nodes (0 for a==b). Nodes with no path get a
  // large sentinel (NumHwThreads()+num_nodes), but catalog machines are all
  // connected.
  int HopDistance(int node_a, int node_b) const;

  // The interconnect score of §4: total bandwidth of all links whose both
  // endpoints lie in `nodes`. This is what the Interconnect concern reports
  // and what the Pareto filter of Algorithm 3 ranks on.
  double AggregateBandwidth(std::span<const int> nodes) const;

  // Cross-thread communication latency between two hardware threads (ns),
  // derived from their topological relationship.
  double CommunicationLatencyNs(int hw_thread_a, int hw_thread_b) const;

 private:
  std::string name_;
  int num_nodes_;
  int cores_per_node_;
  int smt_per_core_;
  int cores_per_l2_group_;
  int cores_per_l3_group_;
  std::vector<Link> links_;
  PerfParams perf_;
  std::vector<double> link_bw_;   // dense num_nodes x num_nodes matrix
  std::vector<int> hop_;          // dense num_nodes x num_nodes matrix
};

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TOPOLOGY_TOPOLOGY_H_
