#include "src/topology/topology.h"

#include <algorithm>
#include <deque>

#include "src/util/check.h"

namespace numaplace {

namespace {

// Ids in [first, first + count), ascending — the layout formulas make every
// resource's threads and subgroups a contiguous id range.
std::vector<int> ContiguousRange(int first, int count) {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(first + i);
  }
  return out;
}

}  // namespace

Topology::Topology(std::string name, int num_nodes, int cores_per_node, int smt_per_core,
                   int cores_per_l2_group, std::vector<Link> links, PerfParams perf,
                   int cores_per_l3_group)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      cores_per_node_(cores_per_node),
      smt_per_core_(smt_per_core),
      cores_per_l2_group_(cores_per_l2_group),
      cores_per_l3_group_(cores_per_l3_group == 0 ? cores_per_node : cores_per_l3_group),
      links_(std::move(links)),
      perf_(perf) {
  NP_CHECK(num_nodes_ > 0);
  NP_CHECK(cores_per_node_ > 0);
  NP_CHECK(smt_per_core_ > 0);
  NP_CHECK(cores_per_l2_group_ > 0);
  NP_CHECK(cores_per_l3_group_ > 0);
  NP_CHECK_MSG(cores_per_node_ % cores_per_l3_group_ == 0,
               "L3 groups must not straddle nodes: " << cores_per_node_ << " cores/node, "
                                                     << cores_per_l3_group_ << " cores/L3");
  NP_CHECK_MSG(cores_per_l3_group_ % cores_per_l2_group_ == 0,
               "L2 groups must not straddle L3 groups: " << cores_per_l3_group_
                                                         << " cores/L3, "
                                                         << cores_per_l2_group_
                                                         << " cores/L2");

  link_bw_.assign(static_cast<size_t>(num_nodes_) * num_nodes_, 0.0);
  for (const Link& link : links_) {
    NP_CHECK(link.node_a >= 0 && link.node_a < num_nodes_);
    NP_CHECK(link.node_b >= 0 && link.node_b < num_nodes_);
    NP_CHECK_MSG(link.node_a != link.node_b, "self-link on node " << link.node_a);
    NP_CHECK_MSG(link.bandwidth_gbps > 0.0, "non-positive link bandwidth");
    double& fwd = link_bw_[static_cast<size_t>(link.node_a) * num_nodes_ + link.node_b];
    NP_CHECK_MSG(fwd == 0.0, "duplicate link " << link.node_a << "-" << link.node_b);
    fwd = link.bandwidth_gbps;
    link_bw_[static_cast<size_t>(link.node_b) * num_nodes_ + link.node_a] =
        link.bandwidth_gbps;
  }

  // All-pairs hop distances by BFS from each node (graphs here are tiny).
  const int kUnreachable = NumHwThreads() + num_nodes_;
  hop_.assign(static_cast<size_t>(num_nodes_) * num_nodes_, kUnreachable);
  for (int src = 0; src < num_nodes_; ++src) {
    std::deque<int> queue;
    hop_[static_cast<size_t>(src) * num_nodes_ + src] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      const int cur_d = hop_[static_cast<size_t>(src) * num_nodes_ + cur];
      for (int next = 0; next < num_nodes_; ++next) {
        if (link_bw_[static_cast<size_t>(cur) * num_nodes_ + next] > 0.0 &&
            hop_[static_cast<size_t>(src) * num_nodes_ + next] == kUnreachable) {
          hop_[static_cast<size_t>(src) * num_nodes_ + next] = cur_d + 1;
          queue.push_back(next);
        }
      }
    }
  }
}

int Topology::CoreOf(int hw_thread) const {
  NP_CHECK(hw_thread >= 0 && hw_thread < NumHwThreads());
  return hw_thread / smt_per_core_;
}

int Topology::NodeOf(int hw_thread) const { return CoreOf(hw_thread) / cores_per_node_; }

int Topology::L2GroupOf(int hw_thread) const { return CoreOf(hw_thread) / cores_per_l2_group_; }

int Topology::L3GroupOf(int hw_thread) const { return CoreOf(hw_thread) / cores_per_l3_group_; }

int Topology::SmtSiblingIndexOf(int hw_thread) const {
  NP_CHECK(hw_thread >= 0 && hw_thread < NumHwThreads());
  return hw_thread % smt_per_core_;
}

std::vector<int> Topology::HwThreadsOnNode(int node) const {
  NP_CHECK(node >= 0 && node < num_nodes_);
  return ContiguousRange(node * NodeCapacity(), NodeCapacity());
}

std::vector<int> Topology::HwThreadsInL3Group(int l3_group) const {
  NP_CHECK(l3_group >= 0 && l3_group < NumL3Groups());
  return ContiguousRange(l3_group * L3GroupCapacity(), L3GroupCapacity());
}

std::vector<int> Topology::HwThreadsInL2Group(int l2_group) const {
  NP_CHECK(l2_group >= 0 && l2_group < NumL2Groups());
  return ContiguousRange(l2_group * L2GroupCapacity(), L2GroupCapacity());
}

std::vector<int> Topology::L3GroupsOnNode(int node) const {
  NP_CHECK(node >= 0 && node < num_nodes_);
  return ContiguousRange(node * L3GroupsPerNode(), L3GroupsPerNode());
}

std::vector<int> Topology::L2GroupsInL3Group(int l3_group) const {
  NP_CHECK(l3_group >= 0 && l3_group < NumL3Groups());
  return ContiguousRange(l3_group * L2GroupsPerL3Group(), L2GroupsPerL3Group());
}

double Topology::LinkBandwidth(int node_a, int node_b) const {
  NP_CHECK(node_a >= 0 && node_a < num_nodes_);
  NP_CHECK(node_b >= 0 && node_b < num_nodes_);
  if (node_a == node_b) {
    return 0.0;
  }
  return link_bw_[static_cast<size_t>(node_a) * num_nodes_ + node_b];
}

int Topology::HopDistance(int node_a, int node_b) const {
  NP_CHECK(node_a >= 0 && node_a < num_nodes_);
  NP_CHECK(node_b >= 0 && node_b < num_nodes_);
  return hop_[static_cast<size_t>(node_a) * num_nodes_ + node_b];
}

double Topology::AggregateBandwidth(std::span<const int> nodes) const {
  double total = 0.0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      total += LinkBandwidth(nodes[i], nodes[j]);
    }
  }
  return total;
}

double Topology::CommunicationLatencyNs(int hw_thread_a, int hw_thread_b) const {
  if (hw_thread_a == hw_thread_b) {
    return 0.0;
  }
  if (CoreOf(hw_thread_a) == CoreOf(hw_thread_b)) {
    return perf_.lat_same_core_ns;
  }
  if (L2GroupOf(hw_thread_a) == L2GroupOf(hw_thread_b)) {
    return perf_.lat_same_l2_ns;
  }
  if (L3GroupOf(hw_thread_a) == L3GroupOf(hw_thread_b)) {
    return perf_.lat_same_l3_ns > 0.0 ? perf_.lat_same_l3_ns : perf_.lat_same_node_ns;
  }
  const int node_a = NodeOf(hw_thread_a);
  const int node_b = NodeOf(hw_thread_b);
  if (node_a == node_b) {
    return perf_.lat_same_node_ns;
  }
  const int hops = HopDistance(node_a, node_b);
  return perf_.lat_one_hop_ns + perf_.lat_extra_hop_ns * static_cast<double>(hops - 1);
}

}  // namespace numaplace
