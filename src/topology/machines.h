// Machine catalog: the paper's two evaluation systems plus two extension
// machines from the conclusion (§8), and a synthetic generator for tests.
#ifndef NUMAPLACE_SRC_TOPOLOGY_MACHINES_H_
#define NUMAPLACE_SRC_TOPOLOGY_MACHINES_H_

#include "src/topology/topology.h"

namespace numaplace {

// Quad AMD Opteron 6272 (Fig. 2a/2b of the paper): 8 NUMA nodes, 8 cores per
// node (64 total), pairs of cores share the instruction front-end, L2 cache
// and FPU (CMT modules -> 32 L2 groups of capacity 2), asymmetric
// HyperTransport interconnect. The link bandwidth table is calibrated (see
// machines.cc) so that the important-placement pipeline reproduces the
// paper's results exactly: 13 important placements for 16 vCPUs, {2,3,4,5}
// the best 4-node set, {0,2,4,6}/{1,3,5,7} surviving the Pareto filter while
// {0,1,4,5}/{2,3,6,7} is removed, nodes (0,5) and (3,6) two hops apart, and
// 35 GB/s aggregate interconnect bandwidth over all 8 nodes.
Topology AmdOpteron6272();

// Quad Intel Xeon E7-4830 v3 (Fig. 2c): 4 NUMA nodes, 12 cores per node with
// 2-way SMT (96 hardware threads), private per-core L2 shared by the SMT
// pair (48 L2 groups of capacity 2), fully-connected symmetric QPI
// interconnect.
Topology IntelXeonE74830v3();

// AMD-Zen-like machine (conclusion, §8): "L3 cache sharing separate from
// sharing the memory controller". 4 nodes x 8 cores; each node carries two
// 4-core CCXs with their own L3 (split L3), private per-core L2, symmetric
// infinity-fabric-like links. Exercises the three-level concern hierarchy
// (L2 -> L3 group -> memory controller).
Topology AmdZenLike();

// Intel-Haswell-EP-like cluster-on-die machine (conclusion, §8): two sockets,
// each exposing two NUMA nodes; on-die links are much faster than QPI, which
// makes the interconnect asymmetric even with only 4 nodes.
Topology HaswellClusterOnDie();

// Fully-symmetric machine for property tests: every node pair is linked with
// the same bandwidth.
Topology SymmetricMachine(int num_nodes, int cores_per_node, int smt_per_core,
                          int cores_per_l2_group, double link_bandwidth_gbps);

}  // namespace numaplace

#endif  // NUMAPLACE_SRC_TOPOLOGY_MACHINES_H_
