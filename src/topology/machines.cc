#include "src/topology/machines.h"

#include <vector>

#include "src/util/check.h"

namespace numaplace {

Topology AmdOpteron6272() {
  // Stream-measured link bandwidths (GB/s). The adjacency is the quad-socket
  // Opteron HyperTransport mesh: each node has four links; the pairs (0,5),
  // (3,6), (0,3), (0,7), (1,2), (1,4), (1,6), (2,5), (2,7), (3,4), (4,7) and
  // (5,6) are not directly connected, so e.g. 0<->5 traffic takes two hops.
  //
  // Calibration (documented so the numbers are auditable):
  //   * total over all 16 links = 35.00 GB/s, matching the paper's 8-node
  //     interconnect score of 35000;
  //   * (0,1) and (6,7) tie at 3.50 -> the "packing companion" 2-node class;
  //     (2,3)=3.52 is the best pair, (4,5)=3.51 the second-best, giving the
  //     paper's three 2-node important placements;
  //   * {2,3,4,5} = 14.03 is the best 4-node set; its packing complement
  //     {0,1,6,7} = 9.87; the diagonal partition {0,2,4,6}/{1,3,5,7}
  //     (10.07/10.90) is Pareto-incomparable with it and survives, while
  //     {0,1,4,5}/{2,3,6,7} (9.81/9.77) is dominated and removed — exactly
  //     the paper's §4 walk-through.
  std::vector<Link> links = {
      // Intra-package (die-pair) links.
      {0, 1, 3.50},
      {2, 3, 3.52},
      {4, 5, 3.51},
      {6, 7, 3.50},
      // Wide cross-package diagonals.
      {2, 4, 3.50},
      {3, 5, 3.50},
      // Remaining HyperTransport links.
      {0, 6, 1.67},
      {1, 7, 1.20},
      {0, 2, 1.20},
      {0, 4, 1.25},
      {2, 6, 1.20},
      {4, 6, 1.25},
      {1, 3, 1.55},
      {1, 5, 1.55},
      {3, 7, 1.55},
      {5, 7, 1.55},
  };
  double total = 0.0;
  for (const Link& link : links) {
    total += link.bandwidth_gbps;
  }
  NP_CHECK_MSG(total > 34.99 && total < 35.01, "AMD link table must sum to 35 GB/s");

  PerfParams perf;
  perf.l2_size_mb = 2.0;             // per CMT module
  perf.l3_size_mb = 6.0;             // usable per-node L3
  perf.dram_gbps_per_node = 12.0;
  perf.lat_same_core_ns = 20.0;      // unused (no SMT threads per core)
  perf.lat_same_l2_ns = 30.0;        // within a CMT module
  perf.lat_same_node_ns = 50.0;
  perf.lat_one_hop_ns = 130.0;
  perf.lat_extra_hop_ns = 110.0;
  perf.base_ops_per_thread = 100000.0;

  return Topology("AMD Opteron 6272 (quad socket, 8 nodes, 64 cores)",
                  /*num_nodes=*/8, /*cores_per_node=*/8, /*smt_per_core=*/1,
                  /*cores_per_l2_group=*/2, std::move(links), perf);
}

Topology IntelXeonE74830v3() {
  // Fully-connected symmetric QPI: six links, identical bandwidth. The paper
  // treats the Intel interconnect as symmetric and uses no interconnect
  // concern on this machine.
  std::vector<Link> links;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      links.push_back({a, b, 12.0});
    }
  }

  PerfParams perf;
  perf.l2_size_mb = 0.256;           // per core, shared by the SMT pair
  perf.l3_size_mb = 30.0;
  perf.dram_gbps_per_node = 25.0;
  perf.lat_same_core_ns = 18.0;      // SMT siblings
  perf.lat_same_l2_ns = 18.0;        // same thing as same-core here
  perf.lat_same_node_ns = 42.0;
  perf.lat_one_hop_ns = 110.0;
  perf.lat_extra_hop_ns = 80.0;      // unused: diameter is 1
  perf.base_ops_per_thread = 130000.0;

  return Topology("Intel Xeon E7-4830 v3 (quad socket, 4 nodes, 96 hw threads)",
                  /*num_nodes=*/4, /*cores_per_node=*/12, /*smt_per_core=*/2,
                  /*cores_per_l2_group=*/1, std::move(links), perf);
}

Topology AmdZenLike() {
  // Zen's distinguishing feature (§8): "L3 cache sharing separate from
  // sharing the memory controller". Each node (one memory controller) holds
  // two 4-core CCXs, each with its own L3; every core has a private L2.
  std::vector<Link> links;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      links.push_back({a, b, 18.0});
    }
  }
  PerfParams perf;
  perf.l2_size_mb = 0.5;             // private per-core L2
  perf.l3_size_mb = 8.0;             // per CCX
  perf.dram_gbps_per_node = 30.0;
  perf.lat_same_core_ns = 20.0;
  perf.lat_same_l2_ns = 20.0;
  perf.lat_same_l3_ns = 28.0;        // within a CCX
  perf.lat_same_node_ns = 60.0;      // cross-CCX, same die
  perf.lat_one_hop_ns = 120.0;
  perf.lat_extra_hop_ns = 90.0;
  perf.base_ops_per_thread = 150000.0;
  return Topology("AMD Zen-like (4 nodes, 32 cores, split L3: 4-core CCX)",
                  /*num_nodes=*/4, /*cores_per_node=*/8, /*smt_per_core=*/1,
                  /*cores_per_l2_group=*/1, std::move(links), perf,
                  /*cores_per_l3_group=*/4);
}

Topology HaswellClusterOnDie() {
  // Nodes 0/1 share socket 0; nodes 2/3 share socket 1. On-die links are much
  // wider than the QPI links, and the QPI pattern is itself uneven, so the
  // interconnect is asymmetric with only four nodes.
  std::vector<Link> links = {
      {0, 1, 22.0},  // on-die
      {2, 3, 22.0},  // on-die
      {0, 2, 9.0},   // QPI
      {1, 3, 9.0},   // QPI
      {0, 3, 4.5},   // half-width QPI
      {1, 2, 4.5},   // half-width QPI
  };
  PerfParams perf;
  perf.l2_size_mb = 0.256;
  perf.l3_size_mb = 18.0;
  perf.dram_gbps_per_node = 28.0;
  perf.lat_same_core_ns = 18.0;
  perf.lat_same_l2_ns = 18.0;
  perf.lat_same_node_ns = 40.0;
  perf.lat_one_hop_ns = 100.0;
  perf.lat_extra_hop_ns = 80.0;
  perf.base_ops_per_thread = 140000.0;
  return Topology("Intel Haswell-EP cluster-on-die (2 sockets, 4 nodes)",
                  /*num_nodes=*/4, /*cores_per_node=*/9, /*smt_per_core=*/2,
                  /*cores_per_l2_group=*/1, std::move(links), perf);
}

Topology SymmetricMachine(int num_nodes, int cores_per_node, int smt_per_core,
                          int cores_per_l2_group, double link_bandwidth_gbps) {
  std::vector<Link> links;
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) {
      links.push_back({a, b, link_bandwidth_gbps});
    }
  }
  PerfParams perf;
  return Topology("symmetric test machine", num_nodes, cores_per_node, smt_per_core,
                  cores_per_l2_group, std::move(links), perf);
}

}  // namespace numaplace
