// Ablation: how much does the choice of the two probe placements matter?
//
// §5 says the training process "automatically finds the two of the important
// placements that give the highest accuracy when used as inputs". This bench
// sweeps every candidate pair on both machines and reports the
// cross-validated error, the best/worst pair, and the catalog error of each
// extreme — quantifying the value of the automatic search.
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

namespace {

using namespace numaplace;

double CatalogError(const ModelPipeline& pipeline, const TrainedPerfModel& model) {
  double total = 0.0;
  int count = 0;
  for (const WorkloadProfile& w : PaperWorkloads()) {
    const std::vector<double> actual = pipeline.MeasureVector(w, 600).relative;
    const double pa = pipeline.MeasureAbsolute(w, model.input_a, 600);
    const double pb = pipeline.MeasureAbsolute(w, model.input_b, 600);
    total += MeanAbsoluteError(actual, model.Predict(pa, pb));
    ++count;
  }
  return total / count;
}

void RunMachine(bool amd) {
  const Topology topo = amd ? AmdOpteron6272() : IntelXeonE74830v3();
  const int vcpus = amd ? 16 : 24;
  const ImportantPlacementSet ips = GenerateImportantPlacements(topo, vcpus, amd);
  PerformanceModel sim(topo, 0.015, 99);
  ModelPipeline pipeline(ips, sim, amd ? 1 : 2, 7);
  Rng rng(5);
  const auto train = SampleTrainingWorkloads(60, rng);
  PerfModelConfig config;

  std::printf("\n== %s: probe-pair sweep ==\n", topo.name().c_str());
  TablePrinter table({"pair", "cv error"});
  double best_err = std::numeric_limits<double>::infinity();
  double worst_err = 0.0;
  std::pair<int, int> best_pair;
  std::pair<int, int> worst_pair;
  for (size_t i = 0; i < ips.placements.size(); ++i) {
    for (size_t j = i + 1; j < ips.placements.size(); ++j) {
      const int a = ips.placements[i].id;
      const int b = ips.placements[j].id;
      const double err = pipeline.CrossValidatedMae(train, a, b, config);
      table.AddRow({"(#" + std::to_string(a) + ", #" + std::to_string(b) + ")",
                    TablePrinter::Num(err, 4)});
      if (err < best_err) {
        best_err = err;
        best_pair = {a, b};
      }
      if (err > worst_err) {
        worst_err = err;
        worst_pair = {a, b};
      }
    }
  }
  table.Print(std::cout);

  const TrainedPerfModel best =
      pipeline.TrainPerf(train, best_pair.first, best_pair.second, config);
  const TrainedPerfModel worst =
      pipeline.TrainPerf(train, worst_pair.first, worst_pair.second, config);
  std::printf("\nBest pair  (#%d, #%d): cv %.4f, paper-catalog mean |err| %.1f%%\n",
              best_pair.first, best_pair.second, best_err,
              100.0 * CatalogError(pipeline, best));
  std::printf("Worst pair (#%d, #%d): cv %.4f, paper-catalog mean |err| %.1f%%\n",
              worst_pair.first, worst_pair.second, worst_err,
              100.0 * CatalogError(pipeline, worst));
}

}  // namespace

int main() {
  std::printf("== Ablation: choice of the two probe placements ==\n");
  RunMachine(/*amd=*/true);
  RunMachine(/*amd=*/false);
  return 0;
}
