// Ablation: Random Forest hyperparameters and the §6 "hybrid" finding.
//
// The paper argues RF needs "very little or no tuning"; we sweep tree count
// and depth to confirm accuracy plateaus quickly. It also reports that
// adding HPEs to the two performance observations did NOT improve accuracy
// ("The third variant did not improve accuracy over the first one") — the
// hybrid row reproduces that comparison.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/important.h"
#include "src/ml/selection.h"
#include "src/model/pipeline.h"
#include "src/sim/hpe.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

namespace {

using namespace numaplace;

double CatalogError(const ModelPipeline& pipeline, const TrainedPerfModel& model) {
  double total = 0.0;
  int count = 0;
  for (const WorkloadProfile& w : PaperWorkloads()) {
    const std::vector<double> actual = pipeline.MeasureVector(w, 600).relative;
    const double pa = pipeline.MeasureAbsolute(w, model.input_a, 600);
    const double pb = pipeline.MeasureAbsolute(w, model.input_b, 600);
    total += MeanAbsoluteError(actual, model.Predict(pa, pb));
    ++count;
  }
  return total / count;
}

}  // namespace

int main() {
  std::printf("== Ablation: forest hyperparameters and the hybrid variant ==\n");

  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd, 0.015, 99);
  ModelPipeline pipeline(ips, sim, 1, 7);
  Rng rng(5);
  const auto train = SampleTrainingWorkloads(72, rng);

  // Tree-count sweep.
  std::printf("\nTree count (max_depth 12, AMD, probe pair from auto-search):\n");
  PerfModelConfig base;
  const TrainedPerfModel reference = pipeline.TrainPerfAuto(train, base);
  TablePrinter trees({"num_trees", "catalog mean |err|"});
  for (int n : {5, 20, 60, 120, 240}) {
    PerfModelConfig config = base;
    config.forest.num_trees = n;
    const TrainedPerfModel model =
        pipeline.TrainPerf(train, reference.input_a, reference.input_b, config);
    trees.AddRow({std::to_string(n),
                  TablePrinter::Num(100.0 * CatalogError(pipeline, model), 2) + "%"});
  }
  trees.Print(std::cout);

  // Depth sweep.
  std::printf("\nTree depth (120 trees):\n");
  TablePrinter depth({"max_depth", "catalog mean |err|"});
  for (int d : {2, 4, 8, 12, 20}) {
    PerfModelConfig config = base;
    config.forest.tree.max_depth = d;
    const TrainedPerfModel model =
        pipeline.TrainPerf(train, reference.input_a, reference.input_b, config);
    depth.AddRow({std::to_string(d),
                  TablePrinter::Num(100.0 * CatalogError(pipeline, model), 2) + "%"});
  }
  depth.Print(std::cout);

  // Hybrid variant: perf observations + HPE counters as joint features.
  // Built directly on the datasets: perf features, then appended counters.
  std::printf("\nHybrid (perf observations + 6 SFS-selected HPEs) vs. perf-only:\n");
  HpeSampler sampler(sim, 25, 13);
  const TrainedHpeModel hpe_model = pipeline.TrainHpe(train, sampler, 1, 6, base);

  Dataset hybrid = pipeline.BuildPerfDataset(train, reference.input_a,
                                             reference.input_b, base);
  {
    size_t row = 0;
    for (const WorkloadProfile& w : train) {
      const std::vector<double> counters = pipeline.SampleHpe(sampler, w, 1);
      for (int run = 0; run < base.runs_per_workload; ++run) {
        for (size_t idx : hpe_model.selected_counters) {
          hybrid.features[row].push_back(counters[idx]);
        }
        ++row;
      }
    }
  }
  RandomForest hybrid_forest;
  ForestParams params = base.forest;
  params.seed = 7;
  hybrid_forest.Fit(hybrid, params);

  double hybrid_err = 0.0;
  int count = 0;
  for (const WorkloadProfile& w : PaperWorkloads()) {
    const std::vector<double> actual = pipeline.MeasureVector(w, 600).relative;
    const double pa = pipeline.MeasureAbsolute(w, reference.input_a, 600);
    const double pb = pipeline.MeasureAbsolute(w, reference.input_b, 600);
    std::vector<double> features = {pa * reference.ipc_scale, pb * reference.ipc_scale,
                                    pb / pa};
    const std::vector<double> counters = pipeline.SampleHpe(sampler, w, 1);
    for (size_t idx : hpe_model.selected_counters) {
      features.push_back(counters[idx]);
    }
    hybrid_err += MeanAbsoluteError(actual, hybrid_forest.Predict(features));
    ++count;
  }
  std::printf("  perf-only:  %.2f%%\n", 100.0 * CatalogError(pipeline, reference));
  std::printf("  hybrid:     %.2f%%\n", 100.0 * hybrid_err / count);
  std::printf("(paper: the hybrid variant 'did not improve accuracy')\n");
  return 0;
}
