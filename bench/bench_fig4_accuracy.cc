// Regenerates Figure 4: per-workload, per-placement actual vs. predicted
// relative performance on both machines, with leave-one-workload-family-out
// cross-validation, for both model variants:
//   * "Predicted: Perf Measurements" — the paper's model (two observations)
//   * "Predicted: HPE"               — single-placement hardware counters
// and the §6 headline statistics (mean |error| ~4.4% AMD / ~6.6% Intel for
// the perf-measurement model; HPE noticeably worse, especially on Intel).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/sim/hpe.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

namespace {

using namespace numaplace;

void RunMachine(bool amd) {
  const Topology topo = amd ? AmdOpteron6272() : IntelXeonE74830v3();
  const int vcpus = amd ? 16 : 24;
  const int baseline_id = amd ? 1 : 2;
  const int hpe_counters = amd ? 25 : 41;  // the paper's candidate-set sizes

  const ImportantPlacementSet ips = GenerateImportantPlacements(topo, vcpus, amd);
  PerformanceModel sim(topo, 0.015, 99);
  ModelPipeline pipeline(ips, sim, baseline_id, /*seed=*/7);
  HpeSampler sampler(sim, hpe_counters, 13);

  Rng rng(5);
  const std::vector<WorkloadProfile> synthetic = SampleTrainingWorkloads(90, rng);
  PerfModelConfig config;
  config.runs_per_workload = 3;

  const std::vector<CrossValidationRow> rows =
      LeaveOneWorkloadOut(pipeline, PaperWorkloads(), synthetic, sampler, config);

  std::printf("\n== %s (%d vCPUs, %zu important placements) ==\n", topo.name().c_str(),
              vcpus, ips.placements.size());

  // Per-workload detail: actual vs. both predictions, per placement.
  for (const CrossValidationRow& row : rows) {
    std::printf("\n%s/%s\n", row.workload.c_str(), amd ? "AMD" : "Intel");
    std::vector<std::string> headers = {"series"};
    for (const auto& p : ips.placements) {
      headers.push_back("#" + std::to_string(p.id));
    }
    TablePrinter table(std::move(headers));
    auto add_series = [&](const char* label, const std::vector<double>& values) {
      std::vector<std::string> r = {label};
      for (double v : values) {
        r.push_back(TablePrinter::Num(v));
      }
      table.AddRow(std::move(r));
    };
    add_series("Actual", row.actual);
    add_series("Predicted: Perf Measurements", row.predicted_perf);
    add_series("Predicted: HPE", row.predicted_hpe);
    table.Print(std::cout);
  }

  // Summary statistics.
  std::printf("\nPer-workload mean |error| (relative-performance units):\n");
  TablePrinter summary({"workload", "perf-model", "hpe-model"});
  std::vector<double> perf_errors;
  std::vector<double> hpe_errors;
  for (const CrossValidationRow& row : rows) {
    summary.AddRow({row.workload, TablePrinter::Num(row.mae_perf, 3),
                    TablePrinter::Num(row.mae_hpe, 3)});
    perf_errors.push_back(row.mae_perf);
    hpe_errors.push_back(row.mae_hpe);
  }
  summary.Print(std::cout);
  std::printf("\nMean |error|: perf-measurement model %.1f%%, HPE model %.1f%%\n",
              100.0 * Mean(perf_errors), 100.0 * Mean(hpe_errors));
  std::printf("(paper: %.1f%% for the perf model on this machine; HPE noticeably worse)\n",
              amd ? 4.4 : 6.6);
}

}  // namespace

int main() {
  std::printf("== Figure 4: accuracy of predictions (leave-one-family-out CV) ==\n");
  RunMachine(/*amd=*/true);
  RunMachine(/*amd=*/false);
  return 0;
}
