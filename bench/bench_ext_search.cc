// Extension benchmark: the §3 alternative the paper rejects.
//
// "A radically different approach would be a statistical technique that
//  searches for an optimally performing placement by trying a sufficient
//  number of random placements. Unfortunately, the best known techniques
//  require trying thousands of placements..."
//
// This harness quantifies that trade-off on the AMD machine: random search
// with increasing sample budgets vs. the model's two probes, comparing the
// quality of the chosen placement AND the decision cost (probe time +
// memory migrations between samples).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/important.h"
#include "src/migration/migration.h"
#include "src/model/pipeline.h"
#include "src/policy/extensions.h"
#include "src/policy/policies.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

int main() {
  using namespace numaplace;
  std::printf("== Extension: random placement search vs. the model (§3) ==\n\n");

  const Topology amd = AmdOpteron6272();
  const int vcpus = 16;
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, vcpus, true);
  PerformanceModel solo(amd, 0.01, 5);
  MultiTenantModel multi(amd, 0.01, 5);
  PackingContext ctx;
  ctx.topo = &amd;
  ctx.ips = &ips;
  ctx.solo_sim = &solo;
  ctx.multi_sim = &multi;
  ctx.vcpus = vcpus;
  ctx.baseline_id = 1;

  ModelPipeline pipeline(ips, solo, 1, 17);
  Rng trng(40);
  PerfModelConfig config;
  const TrainedPerfModel model =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(72, trng), config);
  const MlPolicy ml(ctx, &model);

  const std::vector<const char*> workloads = {"WTbtree", "streamcluster", "canneal",
                                              "postgres-tpch"};

  for (const char* name : workloads) {
    const WorkloadProfile& w = PaperWorkload(name);

    // The true optimum over all important placements (oracle).
    double oracle = 0.0;
    for (const ImportantPlacement& p : ips.placements) {
      oracle = std::max(
          oracle, solo.Evaluate(w, Realize(p, amd, vcpus)).throughput_ops);
    }

    std::printf("%s (oracle best = %.0f ops/s)\n", name, oracle);
    TablePrinter table({"method", "samples", "best found (% of oracle)",
                        "decision cost (s)"});

    // The model: two probes, one optional migration between them, one to the
    // final placement.
    {
      const ImportantPlacement& chosen = ml.ChoosePlacement(w, /*goal=*/10.0);
      // goal=10x forces "best placement" mode: unreachable, so the policy
      // falls back to the highest prediction — a pure quality comparison.
      const double achieved =
          solo.Evaluate(w, Realize(chosen, amd, vcpus)).throughput_ops;
      const FastMigrator migrator;
      const double cost = 2.0 * 2.0 + 2.0 * migrator.Migrate(w).seconds;
      table.AddRow({"model (2 probes)", "2",
                    TablePrinter::Num(100.0 * achieved / oracle, 1) + "%",
                    TablePrinter::Num(cost, 1)});
    }

    for (int samples : {2, 5, 10, 25, 100, 400}) {
      const RandomSearchPolicy search(ctx, samples);
      RunningStats quality;
      RunningStats cost;
      Rng rng(4242);
      for (int rep = 0; rep < 5; ++rep) {
        const RandomSearchPolicy::SearchResult r = search.Search(w, rng);
        quality.Add(100.0 * r.best_throughput / oracle);
        cost.Add(r.decision_cost_seconds);
      }
      table.AddRow({"random search", std::to_string(samples),
                    TablePrinter::Num(quality.Mean(), 1) + "%",
                    TablePrinter::Num(cost.Mean(), 1)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("Reading: random search needs orders of magnitude more samples —\n");
  std::printf("and pays a memory migration between most samples — to match what\n");
  std::printf("the model extracts from two probe measurements.\n");
  return 0;
}
