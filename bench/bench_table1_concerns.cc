// Regenerates Table 1 (the AMD system's scheduling concerns) and prints the
// full important-placement enumeration for both machines — the §4 pipeline's
// headline outputs: 13 placements for 16 vCPUs on AMD, 7 for 24 vCPUs on
// Intel, including the score vectors the paper quotes
// ([16, 8, 35000] / [8, 8, 35000] for the 8-node AMD placements).
#include <cstdio>
#include <iostream>

#include "src/core/concern.h"
#include "src/core/important.h"
#include "src/topology/machines.h"
#include "src/util/table.h"

namespace {

using namespace numaplace;

void PrintConcerns(const Topology& topo, bool use_ic) {
  std::printf("\nScheduling concerns for %s:\n", topo.name().c_str());
  TablePrinter table({"Concern", "Score", "Resources", "Cost?", "Inverse Perf Possible?"});
  const auto concerns = ConcernsFor(topo, use_ic);
  for (const auto& concern : concerns) {
    std::string score_desc;
    if (concern->name() == "L2/SMT") {
      score_desc = "Number of L2 caches in use";
    } else if (concern->name() == "L3") {
      score_desc = "Number of L3 caches in use";
    } else {
      score_desc = "Aggregate bandwidth between nodes in use";
    }
    table.AddRow({concern->name(), score_desc, concern->resources(),
                  concern->AffectsCost() ? "Y" : "N",
                  concern->InversePerfPossible() ? "Y" : "N"});
  }
  table.Print(std::cout);
}

void PrintImportantPlacements(const Topology& topo, int vcpus, bool use_ic,
                              int baseline_id) {
  const ImportantPlacementSet set = GenerateImportantPlacements(topo, vcpus, use_ic);
  std::printf("\nImportant placements for %d vCPUs on %s (%zu total):\n", vcpus,
              topo.name().c_str(), set.placements.size());
  TablePrinter table({"#", "nodes", "L2 score", "L3 score", "IC score (GB/s)",
                      "shares L2", "role"});
  for (const auto& p : set.placements) {
    std::string nodes = "{";
    for (size_t i = 0; i < p.nodes.size(); ++i) {
      nodes += (i ? "," : "") + std::to_string(p.nodes[i]);
    }
    nodes += "}";
    table.AddRow({std::to_string(p.id), nodes, std::to_string(p.l2_score),
                  std::to_string(p.l3_score), TablePrinter::Num(p.interconnect_gbps),
                  p.shares_l2 ? "yes" : "no",
                  p.id == baseline_id ? "baseline" : ""});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("== Table 1: scheduling concerns, and the §4 important placements ==\n");

  const Topology amd = AmdOpteron6272();
  PrintConcerns(amd, true);
  PrintImportantPlacements(amd, 16, true, /*baseline_id=*/1);

  const Topology intel = IntelXeonE74830v3();
  PrintConcerns(intel, false);
  PrintImportantPlacements(intel, 24, false, /*baseline_id=*/2);

  std::printf("\nPaper checkpoints: AMD has 13 important placements (two 8-node,\n");
  std::printf("eight 4-node, three 2-node); Intel has 7; the AMD 8-node score\n");
  std::printf("vectors are [16, 8, 35000] and [8, 8, 35000] in the paper's units.\n");
  return 0;
}
