// §6 timing claims, measured with google-benchmark:
//   * "The algorithms used to determine important placements also run in a
//     matter of seconds."
//   * "training the model takes seconds"
//   * "The inference time is negligible (milliseconds)."
#include <benchmark/benchmark.h>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/workloads/synth.h"

namespace {

using namespace numaplace;

void BM_ImportantPlacementsAmd(benchmark::State& state) {
  const Topology amd = AmdOpteron6272();
  for (auto _ : state) {
    const ImportantPlacementSet set = GenerateImportantPlacements(amd, 16, true);
    benchmark::DoNotOptimize(set.placements.size());
  }
}
BENCHMARK(BM_ImportantPlacementsAmd);

void BM_ImportantPlacementsIntel(benchmark::State& state) {
  const Topology intel = IntelXeonE74830v3();
  for (auto _ : state) {
    const ImportantPlacementSet set = GenerateImportantPlacements(intel, 24, false);
    benchmark::DoNotOptimize(set.placements.size());
  }
}
BENCHMARK(BM_ImportantPlacementsIntel);

void BM_SimulatorEvaluate(benchmark::State& state) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd);
  const WorkloadProfile w = PaperWorkload("WTbtree");
  const Placement p = Realize(ips.placements.front(), amd, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Evaluate(w, p).throughput_ops);
  }
}
BENCHMARK(BM_SimulatorEvaluate);

// One fixed-pair training pass (dataset build amortized by the measurement
// cache; forest fit dominates).
void BM_TrainFixedPair(benchmark::State& state) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd, 0.015, 99);
  ModelPipeline pipeline(ips, sim, 1, 7);
  Rng rng(5);
  const auto train = SampleTrainingWorkloads(static_cast<int>(state.range(0)), rng);
  PerfModelConfig config;
  for (auto _ : state) {
    const TrainedPerfModel model = pipeline.TrainPerf(train, 1, 13, config);
    benchmark::DoNotOptimize(model.forest.NumTrees());
  }
}
BENCHMARK(BM_TrainFixedPair)->Arg(30)->Arg(60)->Arg(90)->Unit(benchmark::kMillisecond);

// The full automatic pipeline including the input-pair search ("seconds").
void BM_TrainAuto(benchmark::State& state) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd, 0.015, 99);
  ModelPipeline pipeline(ips, sim, 1, 7);
  Rng rng(5);
  const auto train = SampleTrainingWorkloads(48, rng);
  PerfModelConfig config;
  for (auto _ : state) {
    const TrainedPerfModel model = pipeline.TrainPerfAuto(train, config);
    benchmark::DoNotOptimize(model.input_b);
  }
}
BENCHMARK(BM_TrainAuto)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Inference(benchmark::State& state) {
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel sim(amd, 0.015, 99);
  ModelPipeline pipeline(ips, sim, 1, 7);
  Rng rng(5);
  const auto train = SampleTrainingWorkloads(36, rng);
  PerfModelConfig config;
  const TrainedPerfModel model = pipeline.TrainPerf(train, 1, 13, config);
  const double pa = pipeline.MeasureAbsolute(PaperWorkload("gcc"), 1, 0);
  const double pb = pipeline.MeasureAbsolute(PaperWorkload("gcc"), 13, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(pa, pb));
  }
}
BENCHMARK(BM_Inference);

}  // namespace

BENCHMARK_MAIN();
