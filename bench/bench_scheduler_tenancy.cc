// Multi-tenant scheduling benchmark: every policy registered in the
// PolicyRegistry, head-to-head on the same Poisson trace, on the paper's two
// evaluation machines.
//
// A Poisson arrival/departure trace of catalog containers is replayed
// through each policy on identical machines. Reported per policy:
//   * aggregate goal attainment — time-weighted mean over running containers
//     of min(1, measured multi-tenant throughput / goal), where the goal is
//     goal_fraction x the container's solo baseline-placement throughput;
//   * goal violation — the complement of attainment (the "stars" of Fig. 5
//     transplanted to the trace harness);
//   * container-seconds at goal — fraction of running time spent at goal;
//   * time-averaged machine utilization;
//   * probe cost — probe runs and cached-probe reuses (model policy only);
//   * decisions/sec of host wall time (probes and migrations are simulated
//     seconds and excluded; this measures the decision path itself).
//
// The model scheduler spends probe time and extra nodes to meet goals, so it
// must beat first-fit on goal attainment; first-fit and best-fit pack tight
// node sets, and spread burns the whole machine per container (the
// conservative operator).
//
// Each policy run replays through a telemetry MetricsObserver, so the JSON
// rows also carry percentile digests (count/p50/p95/p99/max) of the
// queue-wait and per-decision-cost histograms.
//
// `--json <path>` additionally emits the per-policy numbers as JSON for the
// BENCH_*.json perf trajectory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/important.h"
#include "src/model/pipeline.h"
#include "src/model/registry.h"
#include "src/scheduler/policy.h"
#include "src/scheduler/scheduler.h"
#include "src/sim/perf_model.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/metrics_observer.h"
#include "src/topology/machines.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"
#include "src/workloads/trace.h"

namespace {

using namespace numaplace;

// Percentile digest of one telemetry histogram, captured after the replay.
struct HistogramSummary {
  int64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

HistogramSummary Summarize(const Histogram& histogram) {
  return {histogram.count(), histogram.Percentile(50.0), histogram.Percentile(95.0),
          histogram.Percentile(99.0), histogram.max()};
}

struct PolicyRow {
  std::string name;
  TenancyReport report;
  SchedulerStats stats;
  HistogramSummary queue_wait;
  HistogramSummary decision_cost;
};

struct MachineRows {
  std::string machine;   // short name for the JSON key
  std::string topology;
  std::vector<PolicyRow> rows;
};

MachineRows RunMachine(bool amd) {
  const Topology topo = amd ? AmdOpteron6272() : IntelXeonE74830v3();
  const int vcpus = amd ? 16 : 24;
  const int baseline_id = amd ? 1 : 2;
  const bool use_ic = amd;

  const ImportantPlacementSet ips = GenerateImportantPlacements(topo, vcpus, use_ic);
  PerformanceModel solo(topo, 0.01, 5);
  MultiTenantModel multi(topo, 0.01, 5);

  // Train on synthetic workloads only; the scheduled containers are the
  // paper's (unseen) applications. The one model serves every policy that
  // asks for it.
  ModelPipeline pipeline(ips, solo, baseline_id, /*seed=*/17);
  PerfModelConfig config;
  config.forest.num_trees = 100;
  config.runs_per_workload = 3;
  Rng train_rng(40);
  const TrainedPerfModel trained =
      pipeline.TrainPerfAuto(SampleTrainingWorkloads(72, train_rng), config);

  TraceConfig trace_config;
  trace_config.num_containers = 48;
  trace_config.vcpus = vcpus;
  trace_config.goal_fraction = 1.1;
  trace_config.mean_interarrival_seconds = 240.0;
  trace_config.mean_lifetime_seconds = 450.0;
  Rng trace_rng(9);
  const EventStream trace = GeneratePoissonTrace(trace_config, trace_rng);

  std::vector<PolicyRow> rows;
  for (const std::string& policy_name : PolicyRegistry::Global().Names()) {
    // A fresh registry per policy: the prediction cache is per-container
    // probe state, and sharing it across runs would hand later model-using
    // policies free probes, corrupting the probe-cost comparison.
    ModelRegistry registry;
    registry.Register(topo.name(), vcpus, trained);
    SchedulerConfig sched_config;
    sched_config.policy = policy_name;
    sched_config.baseline_id = baseline_id;
    sched_config.use_interconnect_concern = use_ic;
    MachineScheduler scheduler(topo, solo, &registry, sched_config);
    scheduler.ProvidePlacements(ips);
    PolicyRow row;
    row.name = policy_name;
    MetricsRegistry telemetry;
    MetricsObserver metrics(&telemetry, nullptr, /*up_machines=*/1);
    row.report = ReplayWithEvaluation(scheduler, trace, multi, &metrics);
    row.stats = scheduler.stats();
    row.queue_wait = Summarize(*telemetry.FindHistogram("fleet.queue_wait_seconds"));
    row.decision_cost =
        Summarize(*telemetry.FindHistogram("fleet.decision_seconds"));
    rows.push_back(std::move(row));
  }

  std::printf("\n%s — %d containers of %d vCPUs, goal %.0f%% of baseline\n",
              topo.name().c_str(), trace_config.num_containers, vcpus, 110.0);
  TablePrinter table({"policy", "goal attainment", "goal violation", "at-goal time",
                      "utilization", "upgrades", "probe runs", "cache reuses",
                      "decisions/s"});
  for (const PolicyRow& row : rows) {
    table.AddRow({row.name,
                  TablePrinter::Num(100.0 * row.report.goal_attainment, 1) + "%",
                  TablePrinter::Num(100.0 * (1.0 - row.report.goal_attainment), 1) + "%",
                  TablePrinter::Num(100.0 * row.report.container_seconds_at_goal, 1) + "%",
                  TablePrinter::Num(100.0 * row.report.mean_utilization, 1) + "%",
                  std::to_string(row.stats.upgrades),
                  std::to_string(row.stats.probe_runs),
                  std::to_string(row.stats.cached_probe_reuses),
                  TablePrinter::Num(row.report.wall_seconds > 0.0
                                        ? row.report.decisions / row.report.wall_seconds
                                        : 0.0,
                                    0)});
  }
  table.Print(std::cout);

  const auto attainment_of = [&](const std::string& name) {
    for (const PolicyRow& row : rows) {
      if (row.name == name) {
        return row.report.goal_attainment;
      }
    }
    std::fprintf(stderr, "policy '%s' missing from the sweep\n", name.c_str());
    std::exit(1);
  };
  const double model_attainment = attainment_of("model");
  const double ff_attainment = attainment_of("first-fit");
  std::printf("model vs first-fit goal attainment: %+.1f pp %s\n",
              100.0 * (model_attainment - ff_attainment),
              model_attainment > ff_attainment ? "(model wins)" : "(FIRST-FIT WINS?)");

  return {amd ? "amd" : "intel", topo.name(), std::move(rows)};
}

void WriteJson(const std::string& path, const std::vector<MachineRows>& machines) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "bench_scheduler_tenancy");
  json.Key("machines");
  json.BeginArray();
  for (const MachineRows& machine : machines) {
    json.BeginObject();
    json.Field("machine", machine.machine);
    json.Field("topology", machine.topology);
    json.Key("policies");
    json.BeginArray();
    for (const PolicyRow& row : machine.rows) {
      json.BeginObject();
      json.Field("policy", row.name);
      json.Field("goal_attainment", row.report.goal_attainment);
      json.Field("container_seconds_at_goal", row.report.container_seconds_at_goal);
      json.Field("mean_utilization", row.report.mean_utilization);
      json.Field("upgrades", row.stats.upgrades);
      json.Field("probe_runs", row.stats.probe_runs);
      json.Field("cached_probe_reuses", row.stats.cached_probe_reuses);
      json.Field("decisions", row.report.decisions);
      json.Field("wall_seconds", row.report.wall_seconds);
      json.Field("queue_wait_seconds_count", row.queue_wait.count);
      json.Field("queue_wait_seconds_p50", row.queue_wait.p50);
      json.Field("queue_wait_seconds_p95", row.queue_wait.p95);
      json.Field("queue_wait_seconds_p99", row.queue_wait.p99);
      json.Field("queue_wait_seconds_max", row.queue_wait.max);
      json.Field("decision_seconds_count", row.decision_cost.count);
      json.Field("decision_seconds_p50", row.decision_cost.p50);
      json.Field("decision_seconds_p95", row.decision_cost.p95);
      json.Field("decision_seconds_p99", row.decision_cost.p99);
      json.Field("decision_seconds_max", row.decision_cost.max);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_scheduler_tenancy [--json <path>]\n");
      return 2;
    }
  }
  std::vector<MachineRows> machines;
  machines.push_back(RunMachine(/*amd=*/true));
  machines.push_back(RunMachine(/*amd=*/false));
  if (!json_path.empty()) {
    WriteJson(json_path, machines);
  }
  return 0;
}
