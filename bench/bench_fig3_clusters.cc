// Regenerates Figure 3: workloads naturally fall into a handful of
// categories according to the shape of their performance vectors. We measure
// the relative-performance vector of every catalog workload plus a synthetic
// population on the Intel system, cluster with k-means (k chosen by the
// maximum mean silhouette, as in §5), and print each cluster's centroid and
// members — including the two example categories the paper plots.
#include <cstdio>
#include <iostream>
#include <cmath>
#include <map>
#include <vector>

#include "src/core/important.h"
#include "src/ml/kmeans.h"
#include "src/model/pipeline.h"
#include "src/sim/perf_model.h"
#include "src/topology/machines.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/synth.h"

int main() {
  using namespace numaplace;
  std::printf("== Figure 3: workload categories by performance-vector shape ==\n");

  const Topology intel = IntelXeonE74830v3();
  const ImportantPlacementSet ips = GenerateImportantPlacements(intel, 24, false);
  PerformanceModel sim(intel, 0.01, 11);
  ModelPipeline pipeline(ips, sim, /*baseline_id=*/2, /*seed=*/29);

  // Population: the paper catalog plus synthetic workloads.
  std::vector<WorkloadProfile> population = PaperWorkloads();
  Rng rng(61);
  for (WorkloadProfile& w : SampleTrainingWorkloads(42, rng)) {
    population.push_back(std::move(w));
  }

  std::vector<std::vector<double>> vectors;    // raw, for centroid reporting
  std::vector<std::vector<double>> shapes;     // normalized, for clustering
  std::vector<std::string> names;
  for (const WorkloadProfile& w : population) {
    std::vector<double> v = pipeline.MeasureVector(w, 0).relative;
    // Cluster by *shape*: center and scale each vector so that categories
    // are defined by how performance varies across placements, not by the
    // overall magnitude of the variation.
    std::vector<double> shape = v;
    const double mean = Mean(shape);
    double norm = 0.0;
    for (double& x : shape) {
      x -= mean;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-9) {
      for (double& x : shape) {
        x /= norm;
      }
    }
    vectors.push_back(std::move(v));
    shapes.push_back(std::move(shape));
    names.push_back(w.name);
  }

  // k selected by the maximum mean silhouette coefficient (§5; the paper
  // reports six categories on its systems).
  Rng krng(62);
  const SilhouetteSelection sel = ChooseKBySilhouette(shapes, 2, 9, krng);
  std::printf("\nSilhouette scores by k:\n");
  TablePrinter ktable({"k", "mean silhouette"});
  for (const auto& [k, score] : sel.scores) {
    ktable.AddRow({std::to_string(k), TablePrinter::Num(score, 3)});
  }
  ktable.Print(std::cout);
  std::printf("\nSelected k = %d (paper: 6 categories)\n", sel.best_k);

  // Centroids: the per-placement relative performance of each category.
  std::printf("\nCluster centroids (relative performance in Intel placements 1..%zu,\n",
              ips.placements.size());
  std::printf("baseline placement #2 == 1.0):\n");
  std::vector<std::string> headers = {"cluster", "members"};
  for (const auto& p : ips.placements) {
    headers.push_back("#" + std::to_string(p.id));
  }
  TablePrinter ctable(headers);
  std::map<int, int> sizes;
  for (int a : sel.best.assignments) {
    sizes[a]++;
  }
  // Centroids in raw relative-performance units (clustering ran on shapes).
  for (int c = 0; c < sel.best_k; ++c) {
    std::vector<double> centroid(ips.placements.size(), 0.0);
    for (size_t i = 0; i < vectors.size(); ++i) {
      if (sel.best.assignments[i] == c) {
        for (size_t k = 0; k < centroid.size(); ++k) {
          centroid[k] += vectors[i][k];
        }
      }
    }
    std::vector<std::string> row = {std::to_string(c), std::to_string(sizes[c])};
    for (double v : centroid) {
      row.push_back(TablePrinter::Num(sizes[c] > 0 ? v / sizes[c] : 0.0));
    }
    ctable.AddRow(std::move(row));
  }
  ctable.Print(std::cout);

  // Catalog membership (which paper workload landed in which category).
  std::printf("\nPaper-workload cluster membership:\n");
  TablePrinter mtable({"workload", "cluster"});
  for (size_t i = 0; i < PaperWorkloads().size(); ++i) {
    mtable.AddRow({names[i], std::to_string(sel.best.assignments[i])});
  }
  mtable.Print(std::cout);

  // The paper's "six categories" figure is across its systems; the AMD
  // machine's 13 placements (with four interconnect classes) expose more
  // shape axes than Intel's 7, so rerun the same selection there.
  std::printf("\n-- Same clustering on the AMD system (13 placements) --\n");
  const Topology amd = AmdOpteron6272();
  const ImportantPlacementSet amd_ips = GenerateImportantPlacements(amd, 16, true);
  PerformanceModel amd_sim(amd, 0.01, 11);
  ModelPipeline amd_pipeline(amd_ips, amd_sim, /*baseline_id=*/1, /*seed=*/29);
  std::vector<std::vector<double>> amd_shapes;
  for (const WorkloadProfile& w : population) {
    std::vector<double> shape = amd_pipeline.MeasureVector(w, 0).relative;
    const double mean = Mean(shape);
    double norm = 0.0;
    for (double& x : shape) {
      x -= mean;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-9) {
      for (double& x : shape) {
        x /= norm;
      }
    }
    amd_shapes.push_back(std::move(shape));
  }
  Rng amd_krng(63);
  const SilhouetteSelection amd_sel = ChooseKBySilhouette(amd_shapes, 2, 9, amd_krng);
  TablePrinter amd_ktable({"k", "mean silhouette"});
  for (const auto& [k, score] : amd_sel.scores) {
    amd_ktable.AddRow({std::to_string(k), TablePrinter::Num(score, 3)});
  }
  amd_ktable.Print(std::cout);
  std::printf("Selected k = %d on AMD\n", amd_sel.best_k);

  std::printf("\nPaper checkpoint: vectors within a category are almost identical\n");
  std::printf("while categories differ strongly — this is why two performance\n");
  std::printf("observations suffice to pin down the whole vector. The paper\n");
  std::printf("reports six categories on its systems.\n");
  return 0;
}
